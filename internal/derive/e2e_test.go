package derive

// End-to-end proof that derived series are first-class: ingest routes
// retag pushed samples, a recorded rule rolls them up, the alert engine
// fires on the derived metric, /query serves tier-stitched derived
// history after raw eviction, the WAL replays derived appends across a
// simulated crash, and a derive engine's dispatcher ships derived
// samples over the v4 binary wire to a receiver.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"likwid/internal/alert"
	"likwid/internal/monitor"
	"likwid/internal/monitor/persist"
	"likwid/internal/telemetry"
)

// capturePublisher records alert events (the derive package's own view
// of an alert sink; the alert package has an identical internal one).
type capturePublisher struct {
	mu     sync.Mutex
	events []alert.Event
}

func (c *capturePublisher) Publish(ev alert.Event) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	return true
}

func (c *capturePublisher) snapshot() []alert.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]alert.Event(nil), c.events...)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE2EDerivedPipeline walks the full receiver path under -race:
// three agents push a legacy metric name, ingest routes rename and
// relabel it, a recorded rule rolls the fleet up into cluster_bw, an
// alert fires on the derived metric, and /query returns tier-stitched
// derived history after the raw ring evicted the early points.
func TestE2EDerivedPipeline(t *testing.T) {
	store := monitor.NewStore(8, monitor.Tier{Resolution: 4, Capacity: 64})
	recv, err := monitor.NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// Ingest routing: the fleet still pushes the legacy name; the
	// receiver renames it and tags the job before interning.
	_, routes, err := ParseFile(`
route rename */bw_legacy -> bw
route relabel */bw set job="lbm"
`)
	if err != nil {
		t.Fatal(err)
	}
	recv.SetRouter(monitor.NewRouter(routes))

	rules, _, err := ParseFile(`cluster_bw = sum(bw{job="lbm"}) over 8s every 4s`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Options{Store: store, Clock: monitor.NewFakeClock()}, rules)
	if err != nil {
		t.Fatal(err)
	}
	recv.Handle("/derive", StatusHandler(eng, func() []monitor.RouteStatus {
		return recv.Router().Statuses()
	}))

	base := "http://" + recv.Addr()
	nodes := []struct {
		name  string
		value float64
	}{{"nodeA", 10}, {"nodeB", 20}, {"nodeC", 30}}
	pushers := make([]*monitor.PushSink, len(nodes))
	for i, n := range nodes {
		p, err := monitor.NewPushSink(monitor.PushOptions{
			URL: base + "/ingest", FlushSamples: 1,
			RetryBase: time.Millisecond, Source: n.name,
		})
		if err != nil {
			t.Fatal(err)
		}
		pushers[i] = p
	}

	// 24 ticks at 4 s spacing: far more than the 8-point raw ring, so
	// the early derived history survives only in the 4 s tier.  The
	// derive engine evaluates after each tick lands (its dedupe guard
	// keys on the inputs' newest time, so one eval per tick emits one
	// derived point per tick).
	const ticks = 24
	storedKey := func(n string) monitor.Key {
		labels, err := monitor.MakeLabels(map[string]string{"job": "lbm"})
		if err != nil {
			t.Fatal(err)
		}
		return monitor.Key{Source: n, Metric: "bw", Scope: monitor.ScopeNode, Labels: labels}
	}
	for tick := 0; tick < ticks; tick++ {
		tm := float64(tick * 4)
		for i, n := range nodes {
			err := pushers[i].Write(monitor.Batch{Collector: "bench", Time: tm, Samples: []monitor.Sample{{
				Metric: "bw_legacy", Scope: monitor.ScopeNode, Time: tm, Value: n.value,
			}}})
			if err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, fmt.Sprintf("tick %d ingested", tick), func() bool {
			for _, n := range nodes {
				if p, ok := store.Latest(storedKey(n.name)); !ok || p.Time < tm {
					return false
				}
			}
			return true
		})
		eng.EvalNow()
	}
	for _, p := range pushers {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Routing proof: the legacy name never reached the store.
	for _, k := range store.Keys() {
		if k.Metric == "bw_legacy" {
			t.Fatalf("route rename leaked the legacy metric: %+v", k)
		}
	}

	// Every tick's roll-up is sum of per-node window means = 60.
	derived := monitor.Key{Metric: "cluster_bw", Scope: monitor.ScopeNode}
	if got := store.Len(derived); got != 8 {
		t.Fatalf("derived raw ring holds %d points, want 8 (eviction)", got)
	}

	// The alert engine fires on the derived series like any other.
	pub := &capturePublisher{}
	ar, err := alert.ParseRule("cluster_bw_low: avg(cluster_bw, node, 30s) < 100 for 0s", 1)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := alert.NewEngine(alert.Options{
		Store: store, Clock: monitor.NewFakeClock(), Notify: pub,
	}, []*alert.Rule{ar})
	if err != nil {
		t.Fatal(err)
	}
	ae.EvalNow()
	evs := pub.snapshot()
	if len(evs) != 1 || evs[0].Metric != "cluster_bw" || evs[0].State != alert.EventStateFiring {
		t.Fatalf("alert on derived metric = %+v, want one firing cluster_bw event", evs)
	}

	// /query stitches tier history under the raw ring: all 24 derived
	// points come back even though the ring holds only 8.
	var qr struct {
		Points []monitor.Point `json:"points"`
	}
	getJSON(t, base+"/query?metric=cluster_bw&source=", &qr)
	if len(qr.Points) != ticks {
		t.Fatalf("stitched derived window = %d points, want %d", len(qr.Points), ticks)
	}
	if qr.Points[0].Time != 0 || qr.Points[0].Value != 60 {
		t.Fatalf("oldest stitched point = %+v, want time 0 value 60 (tier bucket)", qr.Points[0])
	}
	if last := qr.Points[len(qr.Points)-1]; last.Time != float64((ticks-1)*4) || last.Value != 60 {
		t.Fatalf("newest stitched point = %+v", last)
	}

	// Metric wildcard composes with label selection: job=lbm slices the
	// three collected series; the (unlabelled) derived one stays out.
	var sr struct {
		Series []struct {
			Source string `json:"source"`
			Metric string `json:"metric"`
		} `json:"series"`
	}
	getJSON(t, base+"/query?metric=*&label.job=lbm", &sr)
	if len(sr.Series) != 3 {
		t.Fatalf("metric=*&label.job=lbm matched %d series, want 3: %+v", len(sr.Series), sr.Series)
	}
	for _, s := range sr.Series {
		if s.Metric != "bw" {
			t.Fatalf("label slice matched unexpected metric %q", s.Metric)
		}
	}

	// /derive reports both halves of the subsystem.
	var ds struct {
		Rules []struct {
			Name    string `json:"name"`
			Emitted uint64 `json:"emitted"`
		} `json:"rules"`
		Routes []monitor.RouteStatus `json:"routes"`
	}
	getJSON(t, base+"/derive", &ds)
	if len(ds.Rules) != 1 || ds.Rules[0].Name != "cluster_bw" || ds.Rules[0].Emitted != ticks {
		t.Fatalf("/derive rules = %+v, want cluster_bw with %d emitted", ds.Rules, ticks)
	}
	if len(ds.Routes) != 2 || ds.Routes[0].Matched == 0 {
		t.Fatalf("/derive routes = %+v, want 2 with matches", ds.Routes)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// countWALFrames counts whole CRC-framed records in a WAL file — a
// read-only mirror of the persist package's framing, so the test can
// wait for appends to be durable before "crashing".
func countWALFrames(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for len(b) >= 8 {
		size := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if size > 1<<20 || len(b) < 8+int(size) {
			break
		}
		if crc32.ChecksumIEEE(b[8:8+size]) != sum {
			break
		}
		b = b[8+size:]
		n++
	}
	return n
}

// TestE2EWALReplayRestoresDerived proves derived appends are as durable
// as collected ones: the manager is never closed (no snapshot), so the
// reopened store gets the derived series purely from WAL replay.
func TestE2EWALReplayRestoresDerived(t *testing.T) {
	dir := t.TempDir()
	st := monitor.NewStore(8, monitor.Tier{Resolution: 1, Capacity: 16})
	m, err := persist.Open(dir, st, persist.Options{
		SnapshotInterval: time.Hour, Registry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 6; i++ {
		tm := float64(i)
		st.Append(monitor.Key{Source: "nodeA", Metric: "bw", Scope: monitor.ScopeNode},
			monitor.Point{Time: tm, Value: 10})
		st.Append(monitor.Key{Source: "nodeB", Metric: "bw", Scope: monitor.ScopeNode},
			monitor.Point{Time: tm, Value: 20})
	}
	eng := newTestEngine(t, st, mustRule(t, `cluster_bw = sum(bw) over 10s`))
	eng.EvalNow()

	derived := monitor.Key{Metric: "cluster_bw", Scope: monitor.ScopeNode}
	want := st.Window(derived, 0, -1)
	if len(want) != 1 || want[0].Value != 30 {
		t.Fatalf("derived before crash = %+v, want one point of 30", want)
	}

	// 12 collected + 1 derived appends; wait until all 13 are framed in
	// the WAL, then "crash" by never closing the manager.
	walPath := filepath.Join(dir, "wal.log")
	waitFor(t, "13 WAL frames", func() bool { return countWALFrames(t, walPath) >= 13 })

	st2 := monitor.NewStore(8, monitor.Tier{Resolution: 1, Capacity: 16})
	m2, err := persist.Open(dir, st2, persist.Options{Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := st2.Window(derived, 0, -1); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed derived series = %+v, want %+v", got, want)
	}
	_ = m // keep the crashed manager alive past the reopen
}

// TestE2EDerivedShipsOverPushV4 proves a derive engine's dispatcher
// output rides the binary columnar wire like any collector batch: an
// agent-side roll-up lands in the receiver's store under the agent's
// source identity.
func TestE2EDerivedShipsOverPushV4(t *testing.T) {
	recvStore := monitor.NewStore(64)
	recv, err := monitor.NewHTTPSink("127.0.0.1:0", recvStore)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	agentStore := monitor.NewStore(64)
	for i := 0; i < 4; i++ {
		agentStore.Append(monitor.Key{Metric: "flops_dp", Scope: monitor.ScopeNode},
			monitor.Point{Time: float64(i * 10), Value: 100})
	}

	push, err := monitor.NewPushSink(monitor.PushOptions{
		URL: "http://" + recv.Addr() + "/ingest", FlushSamples: 1,
		RetryBase: time.Millisecond, Source: "agent1", Format: monitor.WireV4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dispatch := monitor.NewDispatcher(16, push)
	eng, err := NewEngine(Options{
		Store: agentStore, Clock: monitor.NewFakeClock(), Dispatcher: dispatch,
	}, []*Rule{mustRule(t, `node_flops = avg(flops_dp) over 40s`)})
	if err != nil {
		t.Fatal(err)
	}
	eng.EvalNow()
	if err := dispatch.Close(); err != nil { // drains the queue, flushes the push sink
		t.Fatal(err)
	}

	// The derived sample was sourceless on the agent; the push sink
	// stamps its source, so the receiver files it under agent1.
	shipped := monitor.Key{Source: "agent1", Metric: "node_flops", Scope: monitor.ScopeNode}
	waitFor(t, "derived sample over pushv4", func() bool {
		p, ok := recvStore.Latest(shipped)
		return ok && p.Time == 30 && p.Value == 100
	})
}
