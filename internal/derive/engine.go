package derive

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// Options wire an engine to its inputs and outputs.
type Options struct {
	// Store is both sides of the loop: rules evaluate against its
	// windows, and their outputs are appended back into it as
	// first-class series (required).
	Store *monitor.Store
	// Clock drives the per-rule evaluation cadence; defaults to the
	// wall clock (fake clocks make evaluation testable).
	Clock monitor.Clock
	// DefaultEvery is the evaluation cadence of rules without their own
	// "every" clause (default 10 s).
	DefaultEvery time.Duration
	// Dispatcher, when set, also receives every emitted sample as a
	// "derive/<rule>" batch, so the agent's sink fan-out (push wires,
	// /metrics snapshots, CSV) carries derived series exactly like
	// collected ones.  The store append does not depend on it.
	Dispatcher *monitor.Dispatcher
	// OnError observes per-rule evaluation problems (optional).
	OnError func(rule string, err error)
	// Telemetry, when set, instruments evaluation: per-eval duration
	// histogram, eval/emit counters, selector fan-out histogram, and a
	// loaded-rules gauge.
	Telemetry *telemetry.Registry
}

// ruleState is one rule's evaluation bookkeeping.
type ruleState struct {
	rule     *Rule
	evals    uint64
	emitted  uint64
	series   int       // selector fan-out of the newest evaluation
	groups   int       // output groups of the newest evaluation
	lastEval time.Time // wall time of the newest evaluation
	lastErr  string
}

// Engine evaluates recorded rules against the store on a per-rule wall
// cadence and appends their outputs back into it.  Reload swaps the
// rule set while Run keeps going — the hot-reload path behind
// likwid-agent's SIGHUP handler and POST /derive/reload.
type Engine struct {
	opts Options

	mu      sync.Mutex
	rules   []*Rule
	state   map[string]*ruleState
	derived map[string]bool // output-name set; replaced wholesale on reload

	reload chan struct{} // signals Run to restart its rule goroutines

	// Telemetry instruments, resolved once at construction (nil without
	// Options.Telemetry; the eval path nil-checks).
	tEvals   *telemetry.Counter
	tEvalSec *telemetry.Histogram
	tEmitted *telemetry.Counter
	tFanout  *telemetry.Histogram
}

// NewEngine creates an engine over the given rules.
func NewEngine(opts Options, rules []*Rule) (*Engine, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("derive: engine needs a store")
	}
	if opts.Clock == nil {
		opts.Clock = monitor.RealClock
	}
	if opts.DefaultEvery <= 0 {
		opts.DefaultEvery = 10 * time.Second
	}
	e := &Engine{
		opts:    opts,
		rules:   rules,
		state:   map[string]*ruleState{},
		derived: derivedSet(rules),
		reload:  make(chan struct{}, 1),
	}
	for _, r := range rules {
		e.state[r.Name] = &ruleState{rule: r}
	}
	if reg := opts.Telemetry; reg != nil {
		e.tEvals = reg.Counter("likwid_derive_evals_total")
		e.tEvalSec = reg.Histogram("likwid_derive_eval_seconds", telemetry.DurationBuckets)
		e.tEmitted = reg.Counter("likwid_derive_emitted_total")
		e.tFanout = reg.Histogram("likwid_derive_selector_series", telemetry.SizeBuckets)
		reg.GaugeFunc("likwid_derive_rules", func() float64 { return float64(len(e.Rules())) })
	}
	return e, nil
}

// derivedSet is the output-name set of a rule list.
func derivedSet(rules []*Rule) map[string]bool {
	out := make(map[string]bool, len(rules))
	for _, r := range rules {
		out[r.Name] = true
	}
	return out
}

// Rules returns a snapshot of the engine's rules in file order.
func (e *Engine) Rules() []*Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Rule(nil), e.rules...)
}

// Reload atomically swaps the rule set.  Validation is the caller's
// job (ParseFile): a file that fails to parse is never handed to
// Reload, so the old set stays live.  Rules whose rendered spec is
// unchanged keep their bookkeeping; a running Run loop restarts its
// goroutines on the new set — unless the whole set renders
// spec-identical, in which case the evaluation timers keep running, so
// a config-management loop re-posting the same file every few seconds
// cannot starve rules of their cadence.  Output series already in the
// store stay: they are first-class data with their own retention, not
// engine state.
func (e *Engine) Reload(rules []*Rule) {
	e.mu.Lock()
	oldSpec := make(map[string]string, len(e.rules))
	for _, r := range e.rules {
		oldSpec[r.Name] = r.String()
	}
	newState := make(map[string]*ruleState, len(rules))
	identical := len(rules) == len(e.rules)
	for i, r := range rules {
		if st, ok := e.state[r.Name]; ok {
			st.rule = r
			newState[r.Name] = st
		} else {
			newState[r.Name] = &ruleState{rule: r}
		}
		identical = identical && e.rules[i].Name == r.Name && oldSpec[r.Name] == r.String()
	}
	e.rules = rules
	e.state = newState
	e.derived = derivedSet(rules) // replaced, never mutated: eval reads the old map race-free
	e.mu.Unlock()
	if identical {
		return // same specs, same cadences: keep the running timers
	}
	select {
	case e.reload <- struct{}{}:
	default: // a restart is already pending
	}
}

// Run evaluates every rule on its cadence until the context is
// cancelled, then returns once all rule goroutines have stopped.  A
// Reload restarts the goroutines on the new rule set without dropping
// out of Run.
func (e *Engine) Run(ctx context.Context) {
	for {
		rctx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for _, r := range e.Rules() {
			wg.Add(1)
			go func(r *Rule) {
				defer wg.Done()
				every := r.Every
				if every <= 0 {
					every = e.opts.DefaultEvery
				}
				for {
					select {
					case <-rctx.Done():
						return
					case <-e.opts.Clock.After(every):
					}
					e.evalRule(r)
				}
			}(r)
		}
		select {
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return
		case <-e.reload:
			cancel()
			wg.Wait()
		}
	}
}

// EvalNow evaluates every rule once, synchronously — the one-shot
// entry for tests and callers that drive their own cadence.
func (e *Engine) EvalNow() {
	for _, r := range e.Rules() {
		e.evalRule(r)
	}
}

// group accumulates one output series' members during an evaluation.
type group struct {
	source string
	labels map[string]string
	keys   []monitor.Key
}

// evalRule runs one evaluation of one rule: select, group, reduce,
// emit.  The selection walks the store's lock-free key index; windows
// and appends go through the same store paths as every other reader
// and collector, so evaluation never touches the append hot path's
// locks.
func (e *Engine) evalRule(r *Rule) {
	if e.tEvals != nil {
		e.tEvals.Inc()
		start := time.Now()
		defer func() { e.tEvalSec.Observe(time.Since(start).Seconds()) }()
	}
	e.mu.Lock()
	derived := e.derived
	e.mu.Unlock()

	// Select and group.  Group identity is the by-dimension value tuple;
	// a series missing a grouped label lands in the group without it, so
	// partially-labelled fleets still roll up.
	groups := map[string]*group{}
	var order []string
	matched := 0
	e.opts.Store.ForEachKey(func(k monitor.Key) {
		if !r.Matches(k, derived) {
			return
		}
		matched++
		var sb strings.Builder
		var source string
		var labels map[string]string
		for _, dim := range r.By {
			if dim == BySource {
				source = k.Source
				sb.WriteString("s\x00" + source + "\x00")
				continue
			}
			if v, ok := k.Labels.Get(dim); ok {
				if labels == nil {
					labels = map[string]string{}
				}
				labels[dim] = v
				sb.WriteString("l\x00" + dim + "\x00" + v + "\x00")
			}
		}
		gk := sb.String()
		g := groups[gk]
		if g == nil {
			g = &group{source: source, labels: labels}
			groups[gk] = g
			order = append(order, gk)
		}
		g.keys = append(g.keys, k)
	})
	if e.tFanout != nil {
		e.tFanout.Observe(float64(matched))
	}

	var evalErr error
	var emitted []monitor.Sample
	if matched == 0 {
		evalErr = fmt.Errorf("no series matches %s(%s)", r.Fn, r.Metric)
	} else {
		sort.Strings(order) // deterministic emit order for batches and tests
		for _, gk := range order {
			if s, ok := e.evalGroup(r, groups[gk]); ok {
				emitted = append(emitted, s)
			}
		}
	}
	if len(emitted) > 0 {
		if e.tEmitted != nil {
			e.tEmitted.Add(uint64(len(emitted)))
		}
		if e.opts.Dispatcher != nil {
			maxT := emitted[0].Time
			for _, s := range emitted[1:] {
				maxT = math.Max(maxT, s.Time)
			}
			e.opts.Dispatcher.Publish(monitor.Batch{
				Collector: "derive/" + r.Name,
				Time:      maxT,
				Samples:   emitted,
			})
		}
	}

	e.mu.Lock()
	st := e.state[r.Name]
	if st == nil {
		// The rule was reloaded away while this evaluation ran; its
		// bookkeeping is gone and nothing is left to record.
		e.mu.Unlock()
		return
	}
	st.evals++
	st.emitted += uint64(len(emitted))
	st.series = matched
	st.groups = len(groups)
	st.lastEval = e.opts.Clock.Now()
	st.lastErr = ""
	if evalErr != nil {
		st.lastErr = evalErr.Error()
	}
	e.mu.Unlock()
	if evalErr != nil && e.opts.OnError != nil {
		e.opts.OnError(r.Name, evalErr)
	}
}

// evalGroup reduces one group's member windows to a single output
// point and appends it to the store.  ok is false when no member had
// data in the window or the point would duplicate the output's newest
// (no series advanced since the previous evaluation — the idempotence
// guard, derived from the store rather than engine memory so it
// survives reloads and restarts).
func (e *Engine) evalGroup(r *Rule, g *group) (monitor.Sample, bool) {
	var (
		agg    float64
		count  int
		simNow = math.Inf(-1)
	)
	for _, k := range g.keys {
		latest, ok := e.opts.Store.Latest(k)
		if !ok {
			continue
		}
		pts := e.opts.Store.Window(k, latest.Time-r.Over, -1)
		v, ok := memberValue(r.Fn, pts)
		if !ok {
			continue
		}
		switch {
		case count == 0:
			agg = v
		case r.Fn == FnMin:
			agg = math.Min(agg, v)
		case r.Fn == FnMax:
			agg = math.Max(agg, v)
		default: // sum, avg, count, rate accumulate
			agg += v
		}
		count++
		if latest.Time > simNow {
			simNow = latest.Time
		}
	}
	if count == 0 {
		return monitor.Sample{}, false
	}
	switch r.Fn {
	case FnAvg:
		agg /= float64(count)
	case FnCount:
		agg = float64(count)
	}

	labels, err := monitor.MakeLabels(g.labels)
	if err != nil {
		// Unreachable: group labels come off interned series keys, which
		// were validated on the way in.  Fail the group, not the process.
		if e.opts.OnError != nil {
			e.opts.OnError(r.Name, err)
		}
		return monitor.Sample{}, false
	}
	out := monitor.Key{Source: g.source, Metric: r.Name, Scope: monitor.ScopeNode, ID: 0, Labels: labels}
	if prev, ok := e.opts.Store.Latest(out); ok && prev.Time >= simNow {
		return monitor.Sample{}, false // inputs did not advance: emit nothing
	}
	e.opts.Store.Append(out, monitor.Point{Time: simNow, Value: agg})
	return monitor.Sample{
		Source: out.Source,
		Metric: out.Metric,
		Scope:  out.Scope,
		ID:     out.ID,
		Labels: out.Labels,
		Time:   simNow,
		Value:  agg,
	}, true
}

// memberValue reduces one member series' window to its contribution:
// the window mean for sum/avg, the extremum for min/max, presence for
// count, the per-second slope for rate.  ok is false when the window
// cannot support the function (empty, or a rate over a single
// instant).
func memberValue(fn Fn, pts []monitor.Point) (float64, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	switch fn {
	case FnSum, FnAvg:
		sum := 0.0
		for _, p := range pts {
			sum += p.Value
		}
		return sum / float64(len(pts)), true
	case FnMin:
		v := pts[0].Value
		for _, p := range pts[1:] {
			v = math.Min(v, p.Value)
		}
		return v, true
	case FnMax:
		v := pts[0].Value
		for _, p := range pts[1:] {
			v = math.Max(v, p.Value)
		}
		return v, true
	case FnCount:
		return 1, true
	case FnRate:
		first, last := pts[0], pts[len(pts)-1]
		if last.Time <= first.Time {
			return 0, false
		}
		return (last.Value - first.Value) / (last.Time - first.Time), true
	}
	return 0, false
}

// RuleStatus is one rule's bookkeeping in API shape.
type RuleStatus struct {
	Name      string `json:"name"`
	Spec      string `json:"spec"`
	Every     string `json:"every"`
	Evals     uint64 `json:"evals"`
	Emitted   uint64 `json:"emitted"`
	Series    int    `json:"series"`              // selector fan-out of the newest evaluation
	Groups    int    `json:"groups"`              // output groups of the newest evaluation
	LastEval  string `json:"last_eval,omitempty"` // RFC 3339 wall time
	LastError string `json:"last_error,omitempty"`
}

// RuleStatuses snapshots per-rule bookkeeping in file order.
func (e *Engine) RuleStatuses() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.state[r.Name]
		every := r.Every
		if every <= 0 {
			every = e.opts.DefaultEvery
		}
		rs := RuleStatus{
			Name:      r.Name,
			Spec:      r.String(),
			Every:     every.String(),
			Evals:     st.evals,
			Emitted:   st.emitted,
			Series:    st.series,
			Groups:    st.groups,
			LastError: st.lastErr,
		}
		if !st.lastEval.IsZero() {
			rs.LastEval = st.lastEval.Format(time.RFC3339)
		}
		out = append(out, rs)
	}
	return out
}
