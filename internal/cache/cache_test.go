package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"likwid/internal/hwdef"
)

func mustLevel(t *testing.T, cfg Config) (*Level, *Memory) {
	t.Helper()
	mem := &Memory{}
	l, err := NewLevel(cfg, nil, mem)
	if err != nil {
		t.Fatal(err)
	}
	return l, mem
}

func small() Config {
	return Config{Name: "T", Sets: 4, Ways: 2, LineSize: 64, WriteAllocate: true}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "x", Sets: 0, Ways: 2, LineSize: 64},
		{Name: "x", Sets: 4, Ways: 0, LineSize: 64},
		{Name: "x", Sets: 4, Ways: 2, LineSize: 48},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	if err := small().Validate(); err != nil {
		t.Error(err)
	}
	// Non-power-of-two set counts are legal (Westmere EP L3: 12288 sets).
	if err := (Config{Name: "L3", Sets: 12288, Ways: 16, LineSize: 64}).Validate(); err != nil {
		t.Errorf("12288 sets must validate: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	l, mem := mustLevel(t, small())
	l.Do(Access{Addr: 0, Size: 8})
	l.Do(Access{Addr: 8, Size: 8}) // same line
	st := l.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", st)
	}
	r, w := mem.Snapshot()
	if r != 1 || w != 0 {
		t.Fatalf("memory = %d reads %d writes, want 1/0", r, w)
	}
}

func TestLRUEviction(t *testing.T) {
	l, _ := mustLevel(t, small())
	// Three lines mapping to set 0: line addresses 0, 4, 8 (sets=4).
	for _, la := range []uint64{0, 4, 8} {
		l.Do(Access{Addr: la * 64, Size: 1})
	}
	// Line 0 is LRU and must have been evicted; touching it misses again.
	l.Do(Access{Addr: 0, Size: 1})
	st := l.Stats()
	if st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (LRU evicted line 0)", st.Misses)
	}
	if st.LinesOut != 2 {
		t.Fatalf("linesOut = %d, want 2", st.LinesOut)
	}
	// Line 8 was MRU before the re-access of 0, so it must still hit.
	l.Do(Access{Addr: 8 * 64, Size: 1})
	if got := l.Stats().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1 (line 8 must survive)", got)
	}
}

func TestDirtyWriteback(t *testing.T) {
	l, mem := mustLevel(t, small())
	l.Do(Access{Addr: 0, Size: 8, Write: true})
	// Force eviction of the dirty line.
	l.Do(Access{Addr: 4 * 64, Size: 1})
	l.Do(Access{Addr: 8 * 64, Size: 1})
	_, w := mem.Snapshot()
	if w != 1 {
		t.Fatalf("memory writes = %d, want 1 (dirty victim)", w)
	}
	if st := l.Stats(); st.DirtyOut != 1 {
		t.Fatalf("dirtyOut = %d, want 1", st.DirtyOut)
	}
}

func TestWriteAllocate(t *testing.T) {
	cfg := small()
	l, mem := mustLevel(t, cfg)
	l.Do(Access{Addr: 0, Size: 8, Write: true})
	r, _ := mem.Snapshot()
	if r != 1 {
		t.Fatalf("write-allocate must read the line from memory, got %d reads", r)
	}
	// Without write-allocate the store goes straight to memory.
	cfg.WriteAllocate = false
	l2, mem2 := mustLevel(t, cfg)
	l2.Do(Access{Addr: 0, Size: 8, Write: true})
	r2, w2 := mem2.Snapshot()
	if r2 != 0 || w2 != 1 {
		t.Fatalf("no-write-allocate: memory = %d reads %d writes, want 0/1", r2, w2)
	}
}

func TestNTStoreBypassesHierarchy(t *testing.T) {
	mem := &Memory{}
	l2, _ := NewLevel(Config{Name: "L2", Sets: 16, Ways: 4, LineSize: 64, WriteAllocate: true}, nil, mem)
	l1, _ := NewLevel(Config{Name: "L1", Sets: 4, Ways: 2, LineSize: 64, WriteAllocate: true}, l2, nil)
	l1.Do(Access{Addr: 0, Size: 64, Write: true, NT: true})
	r, w := mem.Snapshot()
	if r != 0 || w != 1 {
		t.Fatalf("NT store: memory = %d reads %d writes, want 0/1", r, w)
	}
	if l1.Stats().LinesIn != 0 || l2.Stats().LinesIn != 0 {
		t.Fatal("NT store must not allocate in any level")
	}
	// And it must not count as a demand access either.
	if l1.Stats().Accesses != 0 {
		t.Fatal("NT store counted as demand access")
	}
}

func TestAccessSpanningTwoLines(t *testing.T) {
	l, _ := mustLevel(t, small())
	l.Do(Access{Addr: 60, Size: 8}) // crosses the 64-byte boundary
	if st := l.Stats(); st.Accesses != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 accesses 2 misses", st)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	mem := &Memory{}
	l2, _ := NewLevel(Config{Name: "L2", Sets: 1, Ways: 2, LineSize: 64, WriteAllocate: true, Inclusive: true}, nil, mem)
	l1, _ := NewLevel(Config{Name: "L1", Sets: 4, Ways: 4, LineSize: 64, WriteAllocate: true}, l2, nil)
	// Fill L2's single set (2 ways) with lines A and B via L1.
	l1.Do(Access{Addr: 0, Size: 1})
	l1.Do(Access{Addr: 64, Size: 1})
	// Line C evicts A from L2; inclusion must kill A in L1 too.
	l1.Do(Access{Addr: 128, Size: 1})
	l1.ResetStats()
	l1.Do(Access{Addr: 0, Size: 1})
	if st := l1.Stats(); st.Misses != 1 {
		t.Fatalf("line A must have been back-invalidated from L1; stats %+v", st)
	}
}

func TestAdjacentLinePrefetch(t *testing.T) {
	l, mem := mustLevel(t, Config{Name: "L2", Sets: 64, Ways: 8, LineSize: 64, WriteAllocate: true})
	on := true
	l.AttachAdjacentLine(func() bool { return on })
	l.Do(Access{Addr: 0, Size: 1}) // miss: fetches line 0 and buddy line 1
	if st := l.Stats(); st.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", st.Prefetches)
	}
	l.Do(Access{Addr: 64, Size: 1}) // buddy already present
	if st := l.Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (buddy prefetched)", st.Hits)
	}
	r, _ := mem.Snapshot()
	if r != 2 {
		t.Fatalf("memory reads = %d, want 2", r)
	}
	// Disabled: no prefetch for a fresh pair.
	on = false
	l.Do(Access{Addr: 4096, Size: 1})
	l.Do(Access{Addr: 4096 + 64, Size: 1})
	if st := l.Stats(); st.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want still 1 after disabling", st.Prefetches)
	}
}

func TestStreamerCutsMisses(t *testing.T) {
	run := func(enabled bool) uint64 {
		l, _ := mustLevel(t, Config{Name: "L2", Sets: 256, Ways: 8, LineSize: 64, WriteAllocate: true})
		l.AttachStreamer(func() bool { return enabled }, 4)
		for addr := uint64(0); addr < 32*1024; addr += 64 {
			l.Do(Access{Addr: addr, Size: 8})
		}
		return l.Stats().Misses
	}
	off, on := run(false), run(true)
	if on >= off {
		t.Fatalf("streamer on: %d misses, off: %d — prefetching must cut demand misses", on, off)
	}
	if on > off/2 {
		t.Errorf("streamer only cut misses from %d to %d; expected a large reduction on a sequential stream", off, on)
	}
}

func TestIPStridePrefetch(t *testing.T) {
	run := func(enabled bool) uint64 {
		l, _ := mustLevel(t, Config{Name: "L1", Sets: 64, Ways: 8, LineSize: 64, WriteAllocate: true})
		l.AttachIPStride(func() bool { return enabled })
		// One instruction striding 256 bytes (a strided load the
		// streamer cannot catch but the IP prefetcher can).
		for i := uint64(0); i < 128; i++ {
			l.Do(Access{Addr: i * 256, Size: 8, IP: 0x400100})
		}
		return l.Stats().Misses
	}
	off, on := run(false), run(true)
	if on >= off {
		t.Fatalf("IP prefetcher on: %d misses, off: %d", on, off)
	}
}

func TestHierarchyFromArch(t *testing.T) {
	h, err := NewHierarchy(hwdef.Core2Quad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 2 {
		t.Fatalf("Core2 hierarchy has %d levels, want 2", len(h.Levels))
	}
	if h.Levels[0].Config().Sets != 64 || h.Levels[1].Config().Sets != 4096 {
		t.Errorf("unexpected geometry: %+v / %+v", h.Levels[0].Config(), h.Levels[1].Config())
	}
	h.Access(Access{Addr: 0, Size: 8})
	if h.Levels[0].Stats().Misses == 0 {
		t.Error("cold access must miss L1")
	}
	h.ResetStats()
	if h.Levels[0].Stats().Misses != 0 {
		t.Error("ResetStats must clear counters")
	}
}

// TestAssociativityInclusionProperty: with identical set count and line
// size, an LRU cache with more ways never misses more often on any trace
// (the classic stack-inclusion property per set).
func TestAssociativityInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint64, 400)
		for i := range trace {
			trace[i] = uint64(rng.Intn(64)) * 64 // 64 distinct lines, 16 sets
		}
		misses := func(ways int) uint64 {
			l, _ := mustLevel(t, Config{Name: "p", Sets: 16, Ways: ways, LineSize: 64, WriteAllocate: true})
			for _, a := range trace {
				l.Do(Access{Addr: a, Size: 1})
			}
			return l.Stats().Misses
		}
		return misses(4) >= misses(8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStatsConservationProperty: accesses = hits + misses, and lines in a
// finite cache never exceed capacity.
func TestStatsConservationProperty(t *testing.T) {
	f := func(seed int64, nAccess uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		l, _ := mustLevel(t, small())
		n := int(nAccess%1000) + 1
		for i := 0; i < n; i++ {
			l.Do(Access{
				Addr:  uint64(rng.Intn(4096)),
				Size:  1 + rng.Intn(16),
				Write: rng.Intn(2) == 0,
			})
		}
		st := l.Stats()
		if st.Accesses != st.Hits+st.Misses {
			return false
		}
		resident := int64(st.LinesIn) - int64(st.LinesOut)
		return resident >= 0 && resident <= int64(small().Sets*small().Ways)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMemoryTrafficNeverNegativeProperty: total memory reads is bounded by
// demand misses plus prefetches across all levels.
func TestMemoryTrafficBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHierarchy(hwdef.Core2Quad, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			h.Access(Access{Addr: uint64(rng.Intn(1 << 20)), Size: 8, Write: rng.Intn(3) == 0})
		}
		var missesPlusPF uint64
		for _, l := range h.Levels {
			st := l.Stats()
			missesPlusPF += st.Misses + st.Prefetches
		}
		r, _ := h.Mem.Snapshot()
		return r <= missesPlusPF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
