package monitor

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The ingest-throughput benchmarks report MB/s and samples/s (not just
// ns/op) for the two wire generations side by side, so the v3-vs-v4
// decode cost and wire density are visible in one `go test -bench
// IngestThroughput` run.  bytes/op (via b.SetBytes) is the *wire* size
// of one flush, so MB/s is on-the-wire throughput; samples/sec is the
// fan-in rate the receiver sustains.

// benchWireBatch is one full-buffer agent flush (8 series × 512 ticks =
// 4096 samples, the push sink's MaxBuffered default) of quantized,
// slowly-stepping values with a constant per-flush sent_at — the same
// fixture TestV4WireDensity gates the ≥3× bytes/sample ratio on.
func benchWireBatch() []jsonSample {
	return densityWireSamples(8, 512)
}

// benchV3Payload renders the batch as the v3 wire: gzipped JSON lines.
func benchV3Payload(b *testing.B, samples []jsonSample) []byte {
	b.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	enc := json.NewEncoder(zw)
	for _, js := range samples {
		if err := enc.Encode(js); err != nil {
			b.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchIngest(b *testing.B, payload []byte, contentType string, gzipped bool, nSamples int) {
	b.Helper()
	st := NewStore(1024)
	h := &HTTPSink{store: st, latest: map[Key]Sample{}}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(payload))
		req.Header.Set("Content-Type", contentType)
		if gzipped {
			req.Header.Set("Content-Encoding", "gzip")
		}
		w := httptest.NewRecorder()
		h.handleIngest(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(nSamples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	b.ReportMetric(float64(len(payload))/float64(nSamples), "wire_bytes/sample")
}

// BenchmarkIngestThroughputV3Gzip is the baseline: the gzipped
// JSON-lines wire decoded, validated and appended.
func BenchmarkIngestThroughputV3Gzip(b *testing.B) {
	samples := benchWireBatch()
	benchIngest(b, benchV3Payload(b, samples), "application/x-ndjson", true, len(samples))
}

// BenchmarkIngestThroughputV4 is the same flush on the v4 binary
// columnar wire.
func BenchmarkIngestThroughputV4(b *testing.B) {
	samples := benchWireBatch()
	payload, err := encodeV4(samples)
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, payload, V4ContentType, false, len(samples))
}

// BenchmarkEncodeV4 isolates the agent-side encode cost of one flush.
func BenchmarkEncodeV4(b *testing.B) {
	samples := benchWireBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeV4(samples); err != nil {
			b.Fatal(err)
		}
	}
}
