// Package hwdef holds the architecture definitions for every processor the
// suite models: socket/core/SMT geometry, cache hierarchies, performance
// event tables, counter inventories, and the calibrated memory-system
// parameters used by the machine model.
//
// hwdef is the single source of truth about a processor.  The cpuid package
// synthesizes CPUID register images from an Arch; the topology tool then
// decodes those images without ever looking at hwdef directly, mirroring how
// the real likwid-topology only sees the cpuid instruction.
package hwdef

import "fmt"

// Vendor identifies the processor manufacturer, mirroring the CPUID vendor
// string ("GenuineIntel" / "AuthenticAMD").
type Vendor int

// Supported vendors.
const (
	Intel Vendor = iota
	AMD
)

// String returns the CPUID vendor identification string.
func (v Vendor) String() string {
	switch v {
	case Intel:
		return "GenuineIntel"
	case AMD:
		return "AuthenticAMD"
	default:
		return "UnknownVendor"
	}
}

// CacheType classifies a cache level as data, instruction, or unified,
// following the encoding of CPUID leaf 0x4.
type CacheType int

// Cache types in CPUID leaf 0x4 order (1=data, 2=instruction, 3=unified).
const (
	DataCache CacheType = iota + 1
	InstructionCache
	UnifiedCache
)

// String returns the human-readable cache type used in topology reports.
func (t CacheType) String() string {
	switch t {
	case DataCache:
		return "Data cache"
	case InstructionCache:
		return "Instruction cache"
	case UnifiedCache:
		return "Unified cache"
	default:
		return "Unknown cache"
	}
}

// CacheLevel describes one level of the cache hierarchy of a single
// hardware-thread group.  Sets*Assoc*LineSize must equal SizeKB*1024.
type CacheLevel struct {
	Level     int       // 1-based cache level
	Type      CacheType // data / instruction / unified
	SizeKB    int       // total capacity in KiB
	Assoc     int       // ways of associativity
	LineSize  int       // line size in bytes
	Sets      int       // number of sets
	Inclusive bool      // inclusive of lower levels
	SharedBy  int       // number of hardware threads sharing one instance
}

// Size returns the capacity in bytes.
func (c CacheLevel) Size() int { return c.SizeKB * 1024 }

// Validate checks the internal consistency of the geometry.
func (c CacheLevel) Validate() error {
	if c.Sets*c.Assoc*c.LineSize != c.Size() {
		return fmt.Errorf("cache L%d: sets(%d)*assoc(%d)*line(%d) != size(%d)",
			c.Level, c.Sets, c.Assoc, c.LineSize, c.Size())
	}
	if c.SharedBy < 1 {
		return fmt.Errorf("cache L%d: SharedBy must be >= 1", c.Level)
	}
	return nil
}

// CounterDomain says which class of hardware counter an event can be
// scheduled on.
type CounterDomain int

// Counter domains.
const (
	DomainPMC    CounterDomain = iota // general-purpose programmable core counter
	DomainFixed                       // architectural fixed counter (Intel)
	DomainUncore                      // per-socket uncore counter (Nehalem and later)
)

// String names the domain as used in counter assignment listings.
func (d CounterDomain) String() string {
	switch d {
	case DomainPMC:
		return "PMC"
	case DomainFixed:
		return "FIXC"
	case DomainUncore:
		return "UPMC"
	default:
		return "?"
	}
}

// Event is one hardware performance event as documented in the vendor
// manuals: a name, the event-select code and unit mask programmed into a
// PERFEVTSEL register, and the counter domain it can be counted on.
type Event struct {
	Name   string
	Code   uint16
	Umask  uint8
	Domain CounterDomain
	// FixedIndex is the fixed-counter slot for DomainFixed events
	// (0 = INSTR_RETIRED_ANY, 1 = CPU_CLK_UNHALTED_CORE, 2 = CPU_CLK_UNHALTED_REF).
	FixedIndex int
}

// EncodesAs returns the 16-bit (umask<<8|code) selector value used when the
// event is programmed into an event-select register.
func (e Event) EncodesAs() uint16 { return uint16(e.Umask)<<8 | e.Code&0xFF }

// Prefetcher identifies one togglable hardware prefetch unit.
type Prefetcher struct {
	Name string // LIKWID feature name, e.g. "HW_PREFETCHER"
	// MiscEnableBit is the bit position in IA32_MISC_ENABLE controlling it.
	// Note: set bit means *disabled* for these units, as on real hardware.
	MiscEnableBit uint
}

// PerfModel carries the calibrated machine-model parameters that drive the
// simulated memory system and execution engine.  These numbers are fitted to
// the published measurements for each system (see EXPERIMENTS.md), not to a
// specific DIMM configuration.
type PerfModel struct {
	// SocketMemBW is the per-socket sustained memory bandwidth in bytes/s
	// achievable by multiple concurrent streams (saturated triad).
	SocketMemBW float64
	// CoreTriadBW is the bandwidth one core can extract running the
	// vectorized STREAM triad, bytes/s (limited by line-fill buffers).
	CoreTriadBW float64
	// CoreScalarBW is the same for non-vectorized (scalar) code.
	CoreScalarBW float64
	// SingleStreamBW is the bandwidth of a single leading load stream,
	// bytes/s; one stream cannot saturate the memory bus (Table II).
	SingleStreamBW float64
	// L3BW is the aggregate L3 bandwidth per socket, bytes/s.
	L3BW float64
	// RemoteFactor scales bandwidth for accesses to the remote NUMA node
	// (QPI / HyperTransport penalty), 0 < RemoteFactor <= 1.
	RemoteFactor float64
	// SMTVectorGain is the throughput multiplier from running two SMT
	// threads of dense vectorized code on one core (close to 1).
	SMTVectorGain float64
	// SMTScalarGain is the multiplier for sparse scalar code, which has
	// more latency to hide (noticeably above 1).
	SMTScalarGain float64
	// NTStoreEfficiency scales the effective bus utilization of
	// non-temporal store streams relative to regular streams.
	NTStoreEfficiency float64
	// OversubscribePenalty is the fractional throughput lost per extra
	// task timesharing one hardware thread (context switching, cache
	// thrash).
	OversubscribePenalty float64
}

// Arch is the complete definition of one processor microarchitecture
// instantiated as a node (one or more sockets).
type Arch struct {
	Name           string // registry key, e.g. "westmereEP"
	ModelName      string // marketing/topology name printed by the tools
	Vendor         Vendor
	Family         int // CPUID display family
	Model          int // CPUID display model
	Stepping       int
	ClockMHz       float64
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	// PhysCoreIDs are the physical (APIC-derived) core IDs within a
	// socket.  They are frequently non-contiguous on real silicon, e.g.
	// {0,1,2,8,9,10} on Westmere EP; the topology tool must report them
	// verbatim.
	PhysCoreIDs []int
	Caches      []CacheLevel

	// Counter inventory.
	NumPMC      int  // general-purpose counters per hardware thread
	HasFixedCtr bool // architectural fixed counters present (Intel Core2+)
	NumUncore   int  // uncore counters per socket (0 when absent)

	// CPUID capability switches steering the topology decode path.
	HasLeafB   bool // extended topology leaf 0xB (Nehalem and later)
	HasLeaf4   bool // deterministic cache parameters (Core 2 and later)
	UsesLeaf2  bool // descriptor-table cache reporting (Pentium M era)
	MaxLeaf    uint32
	MaxExtLeaf uint32

	Events      map[string]Event
	Prefetchers []Prefetcher
	Perf        PerfModel
}

// HWThreads returns the total number of hardware threads in the node.
func (a *Arch) HWThreads() int { return a.Sockets * a.CoresPerSocket * a.ThreadsPerCore }

// Cores returns the total number of physical cores in the node.
func (a *Arch) Cores() int { return a.Sockets * a.CoresPerSocket }

// ClockHz returns the core clock in Hz.
func (a *Arch) ClockHz() float64 { return a.ClockMHz * 1e6 }

// EventByName looks up an event in the architecture's event table.
func (a *Arch) EventByName(name string) (Event, error) {
	ev, ok := a.Events[name]
	if !ok {
		return Event{}, fmt.Errorf("event %q not defined for %s", name, a.Name)
	}
	return ev, nil
}

// Validate checks structural consistency of the definition.
func (a *Arch) Validate() error {
	if a.Sockets < 1 || a.CoresPerSocket < 1 || a.ThreadsPerCore < 1 {
		return fmt.Errorf("%s: invalid geometry %d/%d/%d", a.Name, a.Sockets, a.CoresPerSocket, a.ThreadsPerCore)
	}
	if len(a.PhysCoreIDs) != a.CoresPerSocket {
		return fmt.Errorf("%s: PhysCoreIDs has %d entries, want %d", a.Name, len(a.PhysCoreIDs), a.CoresPerSocket)
	}
	seen := make(map[int]bool, len(a.PhysCoreIDs))
	for _, id := range a.PhysCoreIDs {
		if id < 0 {
			return fmt.Errorf("%s: negative physical core id %d", a.Name, id)
		}
		if seen[id] {
			return fmt.Errorf("%s: duplicate physical core id %d", a.Name, id)
		}
		seen[id] = true
	}
	for _, c := range a.Caches {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		if c.SharedBy > a.HWThreads() {
			return fmt.Errorf("%s: cache L%d shared by %d threads, node has %d", a.Name, c.Level, c.SharedBy, a.HWThreads())
		}
	}
	for name, ev := range a.Events {
		if name != ev.Name {
			return fmt.Errorf("%s: event map key %q != event name %q", a.Name, name, ev.Name)
		}
		if ev.Domain == DomainFixed && !a.HasFixedCtr {
			return fmt.Errorf("%s: fixed event %s on arch without fixed counters", a.Name, name)
		}
		if ev.Domain == DomainUncore && a.NumUncore == 0 {
			return fmt.Errorf("%s: uncore event %s on arch without uncore counters", a.Name, name)
		}
	}
	if a.Perf.SocketMemBW <= 0 || a.Perf.CoreTriadBW <= 0 {
		return fmt.Errorf("%s: performance model not calibrated", a.Name)
	}
	return nil
}

// DataCaches returns only the data-bearing (data or unified) cache levels,
// ordered by level.  These are the levels likwid-topology reports.
func (a *Arch) DataCaches() []CacheLevel {
	var out []CacheLevel
	for _, c := range a.Caches {
		if c.Type == DataCache || c.Type == UnifiedCache {
			out = append(out, c)
		}
	}
	return out
}

// CacheAt returns the data/unified cache at the given level, if present.
func (a *Arch) CacheAt(level int) (CacheLevel, bool) {
	for _, c := range a.DataCaches() {
		if c.Level == level {
			return c, true
		}
	}
	return CacheLevel{}, false
}

// LastLevelCache returns the highest data/unified level.
func (a *Arch) LastLevelCache() (CacheLevel, bool) {
	dc := a.DataCaches()
	if len(dc) == 0 {
		return CacheLevel{}, false
	}
	best := dc[0]
	for _, c := range dc[1:] {
		if c.Level > best.Level {
			best = c
		}
	}
	return best, true
}
