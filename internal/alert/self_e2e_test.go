package alert

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// TestSelfTelemetryEndToEnd is the acceptance loop of the self-telemetry
// tentpole: a receiver instruments itself, a fleet agent pushes
// sent_at-stamped batches (wire latency lands in the per-peer
// histograms), a stream of malformed batches moves the receiver's own
// likwid_ingest_rejected_total, a SelfCollector republishes the registry
// as self/likwid_* series that survive raw-ring eviction into a
// retention tier and are windowable via /query?source=self — and one
// alert rule fires on the receiver's own rejection rate, exactly the
// "who watches the watcher" rule the alert DSL was built for.
func TestSelfTelemetryEndToEnd(t *testing.T) {
	// A fake wall clock drives the registry, so the self series' sample
	// times (registry uptime) advance deterministically.
	now := time.Unix(0, 0)
	reg := telemetry.NewWithClock(func() time.Time { return now })

	// Tiny raw ring + one tier: 30 self ticks must overflow the ring and
	// compact, proving self series ride retention like any other series.
	store := monitor.NewStore(8, monitor.Tier{Resolution: 5, Capacity: 64})
	store.Instrument(reg)
	recv, err := monitor.NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.Instrument(reg)
	recv.Handle("/status", telemetry.StatusHandler(reg))
	base := "http://" + recv.Addr()

	// A healthy fleet agent pushes with the default wall clock, so every
	// record carries sent_at and the receiver traces its wire latency.
	push, err := monitor.NewPushSink(monitor.PushOptions{
		URL:          base + "/ingest",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
		Source:       "nodeA",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := push.Write(monitor.Batch{Collector: "perfgroup", Time: 1, Samples: []monitor.Sample{
		{Metric: "bw", Scope: monitor.ScopeNode, ID: 0, Time: 1, Value: 500},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := push.Close(); err != nil {
		t.Fatal(err)
	}

	// A misbehaving agent pushes a malformed label map once a second;
	// every batch is rejected (all-or-nothing), moving the receiver's
	// own rejection counter while the SelfCollector snapshots it.
	self := monitor.NewSelfCollector(reg, time.Second)
	bad := `{"time":1,"labels":{"bad name":"x"},"metric":"bw","scope":"node","id":0,"value":1}` + "\n"
	for i := 0; i < 30; i++ {
		now = now.Add(time.Second)
		resp, err := http.Post(base+"/ingest", "application/x-ndjson", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed ingest = %d, want 400", resp.StatusCode)
		}
		samples, err := self.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		store.AppendBatch(monitor.Batch{Collector: "self", Time: float64(i + 1), Samples: samples})
	}

	// The registry saw both sides: rejects counted by reason, the good
	// push's wire latency recorded per peer (label "peer": "source" is a
	// reserved store label name).
	var rejected, wireCount float64
	for _, m := range reg.Snapshot().Metrics {
		switch {
		case m.Name == "likwid_ingest_rejected_total" && m.Labels["reason"] == "decode":
			rejected = m.Value
		case m.Name == "likwid_ingest_wire_seconds" && m.Labels["peer"] == "nodeA":
			wireCount = float64(m.Count)
		}
	}
	if rejected != 30 {
		t.Fatalf("likwid_ingest_rejected_total{reason=decode} = %v, want 30", rejected)
	}
	if wireCount < 1 {
		t.Fatal("likwid_ingest_wire_seconds{peer=nodeA} recorded no observations")
	}

	// The self series is a first-class store citizen: source-keyed,
	// windowable over HTTP, and stitched across the raw ring and the
	// retention tier (30 points through an 8-point ring must serve more
	// than the ring can hold).
	qr, err := http.Get(base + "/query?source=self&metric=likwid_ingest_rejected_total&scope=node&id=0&from=0&to=31&label.reason=decode")
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qr.Body)
	qr.Body.Close()
	var series struct {
		Series []struct {
			Source string          `json:"source"`
			Points []monitor.Point `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(qbody, &series); err != nil {
		t.Fatalf("bad /query JSON %q: %v", qbody, err)
	}
	if len(series.Series) != 1 || series.Series[0].Source != "self" {
		t.Fatalf("/query source=self = %s, want exactly the self series", qbody)
	}
	pts := series.Series[0].Points
	if len(pts) <= 8 {
		t.Fatalf("/query served %d points, want >8 (tier-compacted history stitched with raw)", len(pts))
	}
	if last := pts[len(pts)-1]; last.Value != 30 {
		t.Fatalf("newest self point = %+v, want the counter at 30", last)
	}

	// GET /status serves the live registry snapshot next to the store.
	sr, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	var status telemetry.Status
	if err := json.Unmarshal(sbody, &status); err != nil {
		t.Fatalf("bad /status JSON: %v", err)
	}
	if status.UptimeSeconds != 30 {
		t.Fatalf("/status uptime = %v, want 30 (fake clock)", status.UptimeSeconds)
	}

	// The watcher watches itself: an alert rule over the receiver's own
	// rejection rate fires, keyed source=self with the reason label.
	e, cap, _ := newTestEngine(t, store,
		`receiver_rejects: rate(self/likwid_ingest_rejected_total, node, 10s) > 0.5 for 0s`)
	e.EvalNow()
	evs := waitEvents(t, cap, 1)
	if evs[0].Source != "self" || evs[0].State != EventStateFiring {
		t.Fatalf("event = %+v, want a firing self-sourced alert", evs[0])
	}
	if evs[0].Labels["reason"] != "decode" {
		t.Fatalf("event labels = %v, want reason=decode", evs[0].Labels)
	}
}
