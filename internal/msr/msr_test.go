package msr

import (
	"sync"
	"testing"
	"testing/quick"

	"likwid/internal/hwdef"
)

func TestOpenRange(t *testing.T) {
	s := NewSpace(hwdef.WestmereEP)
	if s.NumCPUs() != 24 {
		t.Fatalf("NumCPUs = %d, want 24", s.NumCPUs())
	}
	if _, err := s.Open(23); err != nil {
		t.Error(err)
	}
	if _, err := s.Open(24); err == nil {
		t.Error("expected error opening device 24")
	}
	if _, err := s.Open(-1); err == nil {
		t.Error("expected error opening negative device")
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	s := NewSpace(hwdef.WestmereEP)
	d, _ := s.Open(0)
	if err := d.Write(IA32PerfEvtSel0, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	v, err := d.Read(IA32PerfEvtSel0)
	if err != nil || v != 0xDEAD {
		t.Fatalf("read = %#x err=%v, want 0xDEAD", v, err)
	}
}

func TestUnimplementedRegister(t *testing.T) {
	s := NewSpace(hwdef.WestmereEP)
	d, _ := s.Open(0)
	if _, err := d.Read(0xFFFF); err == nil {
		t.Error("expected EIO-style error reading unimplemented register")
	}
	if err := d.Write(0xFFFF, 1); err == nil {
		t.Error("expected error writing unimplemented register")
	}
	// AMD registers do not exist on an Intel part.
	if _, err := d.Read(AMDPerfEvtSel0); err == nil {
		t.Error("AMD PERFEVTSEL must not exist on Westmere")
	}
}

func TestAMDRegisterMap(t *testing.T) {
	s := NewSpace(hwdef.Istanbul)
	d, _ := s.Open(0)
	if err := d.Write(AMDPerfEvtSel0, 1); err != nil {
		t.Error(err)
	}
	if _, err := d.Read(IA32PerfEvtSel0); err == nil {
		t.Error("Intel PERFEVTSEL must not exist on K10")
	}
	if _, err := d.Read(IA32FixedCtr0); err == nil {
		t.Error("fixed counters must not exist on AMD")
	}
}

func TestUncoreIsSocketShared(t *testing.T) {
	s := NewSpace(hwdef.WestmereEP)
	// Procs 0 and 1 are cores 0 and 1 of socket 0; proc 6 is socket 1.
	d0, _ := s.Open(0)
	d1, _ := s.Open(1)
	d6, _ := s.Open(6)
	if err := d0.Write(UncPerfEvtSel, 0xABC); err != nil {
		t.Fatal(err)
	}
	v1, _ := d1.Read(UncPerfEvtSel)
	if v1 != 0xABC {
		t.Errorf("socket peer sees %#x, want 0xABC (uncore must be shared)", v1)
	}
	v6, _ := d6.Read(UncPerfEvtSel)
	if v6 != 0 {
		t.Errorf("other socket sees %#x, want 0 (uncore must not leak across sockets)", v6)
	}
	// SMT sibling of core 0 (proc 12) shares socket 0's bank too.
	d12, _ := s.Open(12)
	v12, _ := d12.Read(UncPerfEvtSel)
	if v12 != 0xABC {
		t.Errorf("SMT sibling sees %#x, want 0xABC", v12)
	}
}

func TestCounterWraps48Bits(t *testing.T) {
	s := NewSpace(hwdef.WestmereEP)
	d, _ := s.Open(0)
	if err := d.Write(IA32PMC0, CounterMask); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(IA32PMC0, 2); err != nil {
		t.Fatal(err)
	}
	v, _ := d.Read(IA32PMC0)
	if v != 1 {
		t.Errorf("counter after wrap = %d, want 1", v)
	}
}

func TestEvtselRoundtripProperty(t *testing.T) {
	f := func(code uint16, umask uint8) bool {
		v := EvtselEncode(code, umask)
		c, u, en := EvtselFields(v)
		return c == code&0xFF && u == umask && en
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultMiscEnable(t *testing.T) {
	s := NewSpace(hwdef.Core2Quad)
	d, _ := s.Open(0)
	v, err := d.Read(IA32MiscEnable)
	if err != nil {
		t.Fatal(err)
	}
	// Prefetcher-disable bits must be clear (prefetchers enabled).
	for _, bit := range []uint{hwdef.BitHWPrefetcher, hwdef.BitCLPrefetcher, hwdef.BitDCUPrefetcher, hwdef.BitIPPrefetcher} {
		if v&(1<<bit) != 0 {
			t.Errorf("prefetcher-disable bit %d set by default", bit)
		}
	}
	// SpeedStep (bit 16) enabled by default, as in the paper's listing.
	if v&(1<<16) == 0 {
		t.Error("Enhanced SpeedStep bit must default to enabled")
	}
}

func TestSetClearBits(t *testing.T) {
	s := NewSpace(hwdef.Core2Quad)
	d, _ := s.Open(0)
	if err := d.SetBits(IA32MiscEnable, 1<<hwdef.BitCLPrefetcher); err != nil {
		t.Fatal(err)
	}
	v, _ := d.Read(IA32MiscEnable)
	if v&(1<<hwdef.BitCLPrefetcher) == 0 {
		t.Error("SetBits did not set the CL prefetcher disable bit")
	}
	if err := d.ClearBits(IA32MiscEnable, 1<<hwdef.BitCLPrefetcher); err != nil {
		t.Fatal(err)
	}
	v, _ = d.Read(IA32MiscEnable)
	if v&(1<<hwdef.BitCLPrefetcher) != 0 {
		t.Error("ClearBits did not clear the bit")
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := NewSpace(hwdef.WestmereEP)
	d, _ := s.Open(0)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := d.Add(IA32PMC0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _ := d.Read(IA32PMC0)
	if v != workers*per {
		t.Errorf("counter = %d, want %d (increments must not race)", v, workers*per)
	}
}
