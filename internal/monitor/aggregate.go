package monitor

import (
	"sort"
	"sync"

	"likwid/internal/stats"
	"likwid/internal/topology"
)

// Aggregator rolls thread-scope samples up the topology tree
// (thread → core → socket → node) using the decoded likwid-topology view,
// and attaches node-level distribution statistics (min / median / max via
// stats.Summarize) so a sink can show imbalance, not just totals.
//
// Additive metrics (bandwidths, Flop rates, event rates) combine by sum;
// intensive metrics (CPI, ratios, runtimes) combine by mean.  Collectors
// declare their intensive metrics through the AggregationHinter interface.
type Aggregator struct {
	socketOf map[int]int // processor -> socket
	coreOf   map[int]int // processor -> dense node-wide core index
	sockets  []int

	mu   sync.RWMutex
	mean map[string]bool // metrics combined by mean instead of sum
}

// AggregationHinter is implemented by collectors whose metrics are not all
// additive; the scheduler forwards the hints to its aggregator.
type AggregationHinter interface {
	// MeanMetrics lists the metrics to combine by mean across domain
	// members (ratios, per-thread runtimes).
	MeanMetrics() []string
}

// NewAggregator derives the domain mapping for the monitored processors
// from a probed topology.
func NewAggregator(info *topology.Info, cpus []int) *Aggregator {
	a := &Aggregator{
		socketOf: map[int]int{},
		coreOf:   map[int]int{},
		mean:     map[string]bool{},
	}
	monitored := map[int]bool{}
	for _, c := range cpus {
		monitored[c] = true
	}
	// Dense core numbering: cores sorted by (socket, physical core id), so
	// core indexes are stable across runs and SMT siblings share one.
	type physCore struct{ socket, core int }
	coreIndex := map[physCore]int{}
	var cores []physCore
	seen := map[physCore]bool{}
	for _, t := range info.Threads {
		pc := physCore{socket: t.SocketID, core: t.CoreID}
		if !seen[pc] {
			seen[pc] = true
			cores = append(cores, pc)
		}
	}
	sort.Slice(cores, func(i, j int) bool {
		if cores[i].socket != cores[j].socket {
			return cores[i].socket < cores[j].socket
		}
		return cores[i].core < cores[j].core
	})
	for i, pc := range cores {
		coreIndex[pc] = i
	}
	socketSeen := map[int]bool{}
	for _, t := range info.Threads {
		if len(monitored) > 0 && !monitored[t.Proc] {
			continue
		}
		a.socketOf[t.Proc] = t.SocketID
		a.coreOf[t.Proc] = coreIndex[physCore{socket: t.SocketID, core: t.CoreID}]
		if !socketSeen[t.SocketID] {
			socketSeen[t.SocketID] = true
			a.sockets = append(a.sockets, t.SocketID)
		}
	}
	sort.Ints(a.sockets)
	return a
}

// SetMean marks metrics as intensive (combined by mean).
func (a *Aggregator) SetMean(metrics ...string) {
	a.mu.Lock()
	for _, m := range metrics {
		a.mean[m] = true
	}
	a.mu.Unlock()
}

func (a *Aggregator) isMean(metric string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.mean[metric]
}

// bucket accumulates one domain's member values.
type bucket struct {
	sum float64
	n   int
}

func (b *bucket) add(v float64) { b.sum += v; b.n++ }

func (b bucket) value(mean bool) float64 {
	if mean && b.n > 0 {
		return b.sum / float64(b.n)
	}
	return b.sum
}

// Rollup derives the higher-scope samples of a batch.  Thread samples roll
// into core, socket and node sums/means plus node min/median/max series
// ("<metric>/min", "<metric>/median", "<metric>/max"); socket samples
// (uncore metrics) roll into the node sum only.  The input samples are not
// returned; callers append the roll-ups to the batch.
func (a *Aggregator) Rollup(samples []Sample) []Sample {
	type metricAgg struct {
		cores   map[int]*bucket
		sockets map[int]*bucket
		node    bucket
		values  []float64 // per-member values for the distribution stats
		time    float64
	}
	perMetric := map[string]*metricAgg{}
	order := []string{}
	get := func(metric string) *metricAgg {
		ma := perMetric[metric]
		if ma == nil {
			ma = &metricAgg{cores: map[int]*bucket{}, sockets: map[int]*bucket{}}
			perMetric[metric] = ma
			order = append(order, metric)
		}
		return ma
	}
	getBucket := func(m map[int]*bucket, id int) *bucket {
		b := m[id]
		if b == nil {
			b = &bucket{}
			m[id] = b
		}
		return b
	}

	for _, s := range samples {
		ma := get(s.Metric)
		if s.Time > ma.time {
			ma.time = s.Time
		}
		switch s.Scope {
		case ScopeThread:
			core, ok := a.coreOf[s.ID]
			if !ok {
				continue // unmapped processor: nothing to attribute
			}
			getBucket(ma.cores, core).add(s.Value)
			getBucket(ma.sockets, a.socketOf[s.ID]).add(s.Value)
			ma.node.add(s.Value)
			ma.values = append(ma.values, s.Value)
		case ScopeSocket:
			ma.node.add(s.Value)
			ma.values = append(ma.values, s.Value)
		}
	}

	var out []Sample
	emit := func(metric string, scope Scope, id int, t, v float64) {
		out = append(out, Sample{Metric: metric, Scope: scope, ID: id, Time: t, Value: v})
	}
	for _, metric := range order {
		ma := perMetric[metric]
		if ma.node.n == 0 {
			continue
		}
		mean := a.isMean(metric)
		for _, id := range sortedIDs(ma.cores) {
			emit(metric, ScopeCore, id, ma.time, ma.cores[id].value(mean))
		}
		for _, id := range sortedIDs(ma.sockets) {
			emit(metric, ScopeSocket, id, ma.time, ma.sockets[id].value(mean))
		}
		emit(metric, ScopeNode, 0, ma.time, ma.node.value(mean))
		if len(ma.values) > 1 {
			sum := stats.Summarize(ma.values)
			emit(metric+"/min", ScopeNode, 0, ma.time, sum.Min)
			emit(metric+"/median", ScopeNode, 0, ma.time, sum.Median)
			emit(metric+"/max", ScopeNode, 0, ma.time, sum.Max)
		}
	}
	return out
}

// Sockets lists the monitored sockets.
func (a *Aggregator) Sockets() []int { return append([]int(nil), a.sockets...) }

func sortedIDs(m map[int]*bucket) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
