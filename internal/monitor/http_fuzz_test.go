package monitor

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"likwid/internal/telemetry"
)

// fuzzSink builds an HTTPSink handler harness without binding a socket:
// the fuzz targets drive the handlers directly through httptest.  It is
// instrumented, so hostile sent_at stamps run the whole skew/latency
// observation path (which must clamp, never panic).
func fuzzSink() *HTTPSink {
	st := NewStore(8, Tier{Resolution: 1, Capacity: 4})
	st.Append(Key{Metric: "bw", Scope: ScopeNode, ID: 0}, Point{Time: 1, Value: 100})
	h := &HTTPSink{store: st, latest: map[Key]Sample{}}
	h.Instrument(telemetry.New())
	return h
}

// FuzzQueryParams hammers the /query parameter parsing: arbitrary
// metric/scope/id/from/to values must produce 200 or 400, never a panic
// or a 5xx.
func FuzzQueryParams(f *testing.F) {
	f.Add("bw", "node", "0", "0.5", "2.0")
	f.Add("bw", "galaxy", "0", "", "")
	f.Add("", "", "", "", "")
	f.Add("likwid_bw", "node", "0", "-1e308", "1e308")
	f.Add("bw", "node", "99999999999999999999", "1.5x", "nope")
	f.Add("bw\x00", "thread", "-1", "NaN", "Inf")
	f.Fuzz(func(t *testing.T, metric, scope, id, from, to string) {
		h := fuzzSink()
		q := url.Values{}
		for key, v := range map[string]string{"metric": metric, "scope": scope, "id": id, "from": from, "to": to} {
			if v != "" {
				q.Set(key, v)
			}
		}
		req := httptest.NewRequest(http.MethodGet, "/query?"+q.Encode(), nil)
		w := httptest.NewRecorder()
		h.handleQuery(w, req)
		if c := w.Code; c != http.StatusOK && (c < 400 || c >= 500) {
			t.Fatalf("/query?%s returned %d, want 200 or 4xx", q.Encode(), c)
		}
		if w.Code == http.StatusOK {
			var resp queryResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 /query body is not valid JSON: %v", err)
			}
		}
	})
}

// FuzzIngestPayload hammers the /ingest body parsing: corrupt JSON,
// corrupt gzip framing and hostile field values must produce a 4xx,
// never a panic, a 5xx, or a partial batch in the store.
func FuzzIngestPayload(f *testing.F) {
	valid := []byte(`{"time":0.5,"collector":"c","metric":"bw","scope":"node","id":0,"value":1}` + "\n")
	var validGz bytes.Buffer
	zw := gzip.NewWriter(&validGz)
	zw.Write(valid)
	zw.Close()

	f.Add(valid, false)
	f.Add(validGz.Bytes(), true)
	f.Add(valid, true) // plain bytes with a gzip header claim
	f.Add([]byte("\x1f\x8b\x08garbage"), true)
	f.Add([]byte(`{"time":-1,"metric":"bw","scope":"node","id":0,"value":1}`), false)
	f.Add([]byte(`{"time":1,"metric":"bw","scope":"node","id":0,"value":1e999}`), false)
	f.Add([]byte("{}\n{}\n"), false)
	f.Add([]byte(nil), false)
	f.Add([]byte(`{"time":1,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false) // v2 source field
	f.Add([]byte(`{"time":1,"metric":"nodeA/bw","scope":"node","id":0,"value":1}`+"\n"), false)            // v1 prefix shim
	f.Add([]byte(`{"time":1,"source":"no spaces","metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false)
	f.Add([]byte(`{"time":1,"metric":"alert/r","scope":"node","id":0,"value":1}`+"\n"), false) // reserved namespace
	// v3 label records: valid sets must land, malformed label maps must
	// 400 all-or-nothing (the harness below checks no partial ingest).
	f.Add([]byte(`{"time":1,"source":"nodeA","labels":{"job":"lbm","cluster":"emmy"},"metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false)
	f.Add([]byte(`{"time":1,"labels":{},"metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false)               // empty set = v2
	f.Add([]byte(`{"time":1,"labels":{"bad name":"x"},"metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false) // bad label name
	f.Add([]byte(`{"time":1,"labels":{"job":"a,b"},"metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false)    // comma in value
	f.Add([]byte(`{"time":1,"metric":"ok","scope":"node","id":0,"value":1}`+"\n"+
		`{"time":1,"labels":{"job":""},"metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false) // good then bad label map
	f.Add([]byte(`{"time":1,"labels":"job=lbm","metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false) // labels not an object
	// sent_at is advisory latency metadata: absent, zero, negative and
	// far-future stamps must all land (clamped into the skew histogram's
	// edge buckets), never reject the batch, never panic.
	f.Add([]byte(`{"time":1,"sent_at":0,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false)
	f.Add([]byte(`{"time":1,"sent_at":-1.5,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false)
	f.Add([]byte(`{"time":1,"sent_at":9.9e300,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":1}`+"\n"), false)
	f.Fuzz(func(t *testing.T, body []byte, gz bool) {
		h := fuzzSink()
		before := len(h.store.Keys())
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		if gz {
			req.Header.Set("Content-Encoding", "gzip")
		}
		w := httptest.NewRecorder()
		h.handleIngest(w, req)
		switch c := w.Code; {
		case c == http.StatusOK:
			var resp ingestResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 /ingest body is not valid JSON: %v", err)
			}
			if resp.Accepted < 0 {
				t.Fatalf("accepted = %d", resp.Accepted)
			}
		case c >= 400 && c < 500:
			// Rejections are all-or-nothing: the store must be untouched.
			if after := len(h.store.Keys()); after != before {
				t.Fatalf("rejected ingest (status %d) still created %d series", c, after-before)
			}
		default:
			t.Fatalf("/ingest returned %d, want 200 or 4xx", c)
		}
	})
}

// fuzzV4Seeds is the shared seed set for FuzzIngestV4 and the checked-in
// corpus (TestV4FuzzCorpusSeeds keeps the testdata files in sync).
func fuzzV4Seeds() map[string]struct {
	Body []byte
	Gzip bool
} {
	valid, err := encodeV4(v4WireSamples())
	if err != nil {
		panic(err)
	}
	var validGz bytes.Buffer
	zw := gzip.NewWriter(&validGz)
	zw.Write(valid)
	zw.Close()
	shim, err := encodeV4([]jsonSample{
		{Time: 1, Collector: "c", Metric: "nodeA/bw", Scope: "node", ID: 0, Value: 1},
	})
	if err != nil {
		panic(err)
	}
	invalid, err := encodeV4([]jsonSample{
		{Time: -1, Metric: "bw", Scope: "node", ID: 0, Value: 1},
	})
	if err != nil {
		panic(err)
	}
	return map[string]struct {
		Body []byte
		Gzip bool
	}{
		"valid":        {valid, false},
		"valid_gzip":   {validGz.Bytes(), true},
		"v1_shim":      {shim, false},
		"invalid_time": {invalid, false},
		"truncated":    {valid[:len(valid)-4], false},
		"magic_only":   {[]byte("LKW4"), false},
		"bad_magic":    {[]byte("LKW3\x01\x02\x03"), false},
		"json_as_v4":   {[]byte(`{"time":1,"metric":"bw","scope":"node","id":0,"value":1}`), false},
		"empty":        {nil, false},
	}
}

// FuzzIngestV4 hammers the binary ingest path: arbitrary bytes under the
// v4 Content-Type must produce 200 or 4xx, never a panic, a 5xx, or a
// partial batch — and any payload that decodes must survive a
// re-encode/re-decode round trip unchanged (the codec is a fixpoint on
// its own output).
func FuzzIngestV4(f *testing.F) {
	for _, seed := range fuzzV4Seeds() {
		f.Add(seed.Body, seed.Gzip)
	}
	f.Fuzz(func(t *testing.T, body []byte, gz bool) {
		h := fuzzSink()
		before := len(h.store.Keys())
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
		req.Header.Set("Content-Type", V4ContentType)
		if gz {
			req.Header.Set("Content-Encoding", "gzip")
		}
		w := httptest.NewRecorder()
		h.handleIngest(w, req)
		switch c := w.Code; {
		case c == http.StatusOK:
			var resp ingestResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 /ingest body is not valid JSON: %v", err)
			}
			if resp.Accepted < 0 {
				t.Fatalf("accepted = %d", resp.Accepted)
			}
		case c >= 400 && c < 500:
			if after := len(h.store.Keys()); after != before {
				t.Fatalf("rejected ingest (status %d) still created %d series", c, after-before)
			}
		default:
			t.Fatalf("/ingest returned %d, want 200 or 4xx", c)
		}

		// Codec fixpoint property (independent of gzip framing): anything
		// that decodes must survive re-encode → re-decode with the same
		// sample count, and a second re-encode must be byte-identical.
		// (A hostile payload may carry duplicate-key groups, which one
		// re-encode canonicalizes into merged groups — order across keys
		// can shift once, but never twice.)
		reencode := func(samples []Sample, labelMaps []map[string]string, sentAts []float64) []byte {
			redo := make([]jsonSample, len(samples))
			for i, s := range samples {
				redo[i] = jsonSample{
					Time: s.Time, SentAt: sentAts[i], Source: s.Source,
					Labels: labelMaps[i], Metric: s.Metric,
					Scope: s.Scope.String(), ID: s.ID, Value: s.Value,
				}
			}
			payload, err := encodeV4(redo)
			if err != nil {
				t.Fatalf("re-encode of decoded payload failed: %v", err)
			}
			return payload
		}
		samples, labelMaps, sentAts, err := decodeV4(bytes.NewReader(body))
		if err != nil {
			return
		}
		payload := reencode(samples, labelMaps, sentAts)
		again, againMaps, againSentAts, err := decodeV4(bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed sample count %d -> %d", len(samples), len(again))
		}
		if payload2 := reencode(again, againMaps, againSentAts); !bytes.Equal(payload, payload2) {
			t.Fatalf("canonical re-encode is not a fixpoint:\n% x\nvs\n% x", payload, payload2)
		}
	})
}
