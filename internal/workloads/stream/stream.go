// Package stream models the OpenMP STREAM triad benchmark of the paper's
// first case study (a[i] = b[i] + s*c[i]) with per-compiler code-generation
// profiles, running on the simulated machine under a chosen pinning regime.
//
// The compiler matters twice (§IV-A):
//
//   - code generation: icc emits packed SSE (dense, high per-core bandwidth
//     demand, little SMT benefit), gcc scalar code (more instructions per
//     element, benefits from SMT);
//   - thread creation: the Intel runtime spawns OMP_NUM_THREADS+1 threads
//     whose first is an unpinnable shepherd, gcc spawns N-1.  Their spawn
//     patterns also place threads differently when unpinned, which is the
//     origin of the different variance shapes of Figs. 4 and 7.
package stream

import (
	"fmt"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/pin"
	"likwid/internal/sched"
)

// Compiler selects the code-generation and runtime model.
type Compiler int

// Supported compilers.
const (
	ICC Compiler = iota
	GCC
)

// String returns the compiler name.
func (c Compiler) String() string {
	if c == GCC {
		return "gcc"
	}
	return "icc"
}

// PinMode is the affinity regime of one run.
type PinMode int

// Pin modes of the case study.
const (
	// Unpinned leaves placement to the scheduler (Figs. 4, 7, 9).
	Unpinned PinMode = iota
	// PinScatter pins with likwid-pin round-robin across sockets,
	// physical cores first (Figs. 5, 8, 10).
	PinScatter
	// RuntimeScatter models KMP_AFFINITY=scatter, the Intel runtime's
	// own affinity interface (Fig. 6).
	RuntimeScatter
)

// String names the pin mode.
func (p PinMode) String() string {
	switch p {
	case PinScatter:
		return "likwid-pin"
	case RuntimeScatter:
		return "KMP_AFFINITY=scatter"
	default:
		return "unpinned"
	}
}

// Config is one STREAM run.
type Config struct {
	Arch     *hwdef.Arch
	Compiler Compiler
	Threads  int
	Mode     PinMode
	// TotalElems is the triad length (default 20M elements; every element
	// moves 24 counted bytes).
	TotalElems float64
	Seed       int64
}

// Result of one run.
type Result struct {
	BandwidthMBs float64 // STREAM-counted bandwidth (24 B/element), MB/s
	ElapsedSec   float64
	WorkerCPUs   []int // final placement, for diagnostics
}

// BytesPerElem is the STREAM accounting: 16 read + 8 written.
const BytesPerElem = 24.0

// PerElemFor returns the per-element cost vector of the triad kernel as the
// given compiler generates it; exported so external launchers (the CLI
// tools) can run the triad on a machine they own.
func PerElemFor(c Compiler) machine.PerElem { return perElem(c) }

// perElem builds the per-element cost vector for a compiler.
func perElem(c Compiler) machine.PerElem {
	switch c {
	case GCC:
		// Scalar code: one element per SSE lane, more instructions.
		return machine.PerElem{
			Cycles: 1.9,
			Counts: machine.Counts{
				machine.EvInstr:         6,
				machine.EvFlopsScalarDP: 2,
				machine.EvLoads:         2,
				machine.EvStores:        1,
				machine.EvL1LinesIn:     24.0 / 64,
				machine.EvL2LinesIn:     24.0 / 64,
			},
			MemReadBytes:  16,
			MemWriteBytes: 8,
			Streams:       3,
			Vector:        false,
		}
	default:
		// Packed SSE: two elements per instruction.
		return machine.PerElem{
			Cycles: 0.95,
			Counts: machine.Counts{
				machine.EvInstr:         3,
				machine.EvFlopsPackedDP: 1,
				machine.EvLoads:         1,
				machine.EvStores:        0.5,
				machine.EvL1LinesIn:     24.0 / 64,
				machine.EvL2LinesIn:     24.0 / 64,
			},
			MemReadBytes:  16,
			MemWriteBytes: 8,
			Streams:       3,
			Vector:        true,
		}
	}
}

// runtimeFor maps the compiler to its threading runtime.
func runtimeFor(c Compiler) sched.RuntimeModel {
	if c == GCC {
		return sched.RuntimeGccOMP
	}
	return sched.RuntimeIntelOMP
}

// policyFor maps the compiler's spawn behaviour to a placement policy:
// the Intel runtime's staggered spawn scatters threads, gcc's rapid
// sequential spawn clusters them near the master.
func policyFor(c Compiler) sched.Policy {
	if c == GCC {
		return sched.PolicyCompact
	}
	return sched.PolicySpread
}

// ScatterList builds the likwid-pin core list distributing threads
// round-robin across sockets, physical cores before SMT siblings — the
// paper's Fig. 5 pinning.
func ScatterList(a *hwdef.Arch) []int {
	var list []int
	for smt := 0; smt < a.ThreadsPerCore; smt++ {
		for core := 0; core < a.CoresPerSocket; core++ {
			for socket := 0; socket < a.Sockets; socket++ {
				proc := smt*a.Sockets*a.CoresPerSocket + socket*a.CoresPerSocket + core
				list = append(list, proc)
			}
		}
	}
	return list
}

// Run executes one STREAM triad sample.
func Run(cfg Config) (Result, error) {
	if cfg.Arch == nil {
		return Result{}, fmt.Errorf("stream: nil architecture")
	}
	if cfg.Threads < 1 || cfg.Threads > 64 {
		return Result{}, fmt.Errorf("stream: bad thread count %d", cfg.Threads)
	}
	if cfg.TotalElems <= 0 {
		cfg.TotalElems = 2e7
	}

	m := machine.New(cfg.Arch, machine.Options{Policy: policyFor(cfg.Compiler), Seed: cfg.Seed})
	master := m.OS.Spawn("stream", nil)

	var pinner *pin.Pinner
	var hook sched.SpawnHook
	runtime := runtimeFor(cfg.Compiler)
	if cfg.Mode == PinScatter {
		list := ScatterList(cfg.Arch)
		if cfg.Threads < len(list) {
			list = list[:cfg.Threads]
		}
		var err error
		pinner, err = pin.New(m.OS, list, pin.SkipMaskFor(runtime))
		if err != nil {
			return Result{}, err
		}
		if err := pinner.PinProcess(master); err != nil {
			return Result{}, err
		}
		hook = pinner.Hook()
	}

	team, err := sched.SpawnTeam(m.OS, runtime, cfg.Threads, master, hook)
	if err != nil {
		return Result{}, err
	}

	if cfg.Mode == RuntimeScatter {
		// KMP_AFFINITY=scatter: the runtime pins its own workers after
		// the team exists, spreading across sockets like likwid-pin.
		list := ScatterList(cfg.Arch)
		for i, w := range team.Workers {
			if i >= len(list) {
				break
			}
			if err := m.OS.Pin(w, list[i]); err != nil {
				return Result{}, err
			}
		}
	}

	pe := perElem(cfg.Compiler)
	elems := cfg.TotalElems / float64(cfg.Threads)
	works := make([]*machine.ThreadWork, len(team.Workers))
	for i, w := range team.Workers {
		works[i] = &machine.ThreadWork{Task: w, Elems: elems, PerElem: pe}
	}
	elapsed := m.RunPhase(works, 0)
	if elapsed <= 0 {
		return Result{}, fmt.Errorf("stream: zero elapsed time")
	}
	cpus := make([]int, len(team.Workers))
	for i, w := range team.Workers {
		cpus[i] = w.CPU
	}
	return Result{
		BandwidthMBs: cfg.TotalElems * BytesPerElem / elapsed / 1e6,
		ElapsedSec:   elapsed,
		WorkerCPUs:   cpus,
	}, nil
}

// RunSamples runs n independent samples (fresh machine, varied seed) and
// returns the bandwidths — the data behind one box of the paper's plots.
func RunSamples(cfg Config, n int) ([]float64, error) {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed*1000003 + int64(i)*7919
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r.BandwidthMBs)
	}
	return out, nil
}
