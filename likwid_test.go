package likwid_test

import (
	"strings"
	"testing"

	"likwid"
)

func TestOpenAndTopology(t *testing.T) {
	node, err := likwid.Open("westmereEP")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := node.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Sockets != 2 || topo.CoresPerSocket != 6 || topo.ThreadsPerCore != 2 {
		t.Errorf("topology = %d/%d/%d", topo.Sockets, topo.CoresPerSocket, topo.ThreadsPerCore)
	}
	if !strings.Contains(node.String(), "2 sockets x 6 cores") {
		t.Errorf("node string = %q", node.String())
	}
}

func TestOpenUnknownArch(t *testing.T) {
	if _, err := likwid.Open("z80"); err == nil {
		t.Fatal("unknown architecture must fail")
	}
}

func TestArchitecturesList(t *testing.T) {
	names := likwid.Architectures()
	if len(names) < 7 {
		t.Fatalf("architectures = %v", names)
	}
	for _, want := range []string{"core2", "nehalemEP", "westmereEP", "istanbul", "k8", "atom", "pentiumM"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("architecture %s missing", want)
		}
	}
}

func TestGroupsFacade(t *testing.T) {
	node, err := likwid.Open("westmereEP")
	if err != nil {
		t.Fatal(err)
	}
	groups := node.Groups()
	// The paper's 11 preconfigured groups plus MEM_DP, the combined
	// bandwidth+Flops set the monitoring agent samples.
	if len(groups) != 12 {
		t.Errorf("groups = %v, want the paper's 11 plus MEM_DP", groups)
	}
	found := false
	for _, g := range groups {
		if g == "MEM_DP" {
			found = true
		}
	}
	if !found {
		t.Errorf("groups = %v, missing MEM_DP", groups)
	}
	g, err := node.Group("FLOPS_DP")
	if err != nil || g.Name != "FLOPS_DP" {
		t.Fatalf("Group: %+v, %v", g, err)
	}
	if _, err := node.Group("NOPE"); err == nil {
		t.Error("unknown group must fail")
	}
}

func TestMeasureGroupWrapperFlow(t *testing.T) {
	node, err := likwid.Open("westmereEP")
	if err != nil {
		t.Fatal(err)
	}
	task := node.Spawn("kernel")
	if err := node.M.OS.Pin(task, 1); err != nil {
		t.Fatal(err)
	}
	results, report, err := node.MeasureGroup([]int{0, 1}, "FLOPS_DP", func() error {
		node.Run([]*likwid.ThreadWork{{
			Task: task, Elems: 1e6,
			PerElem: likwid.PerElem{Cycles: 2, Vector: true},
		}})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results.CPUs) != 2 {
		t.Errorf("cpus = %v", results.CPUs)
	}
	for _, want := range []string{"CPU type:", "| Event", "| Metric", "DP MFlops/s"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Cycles land on core 1 only.
	cyc := results.Counts["CPU_CLK_UNHALTED_CORE"]
	if cyc[1] == 0 || cyc[0] != 0 {
		t.Errorf("cycle attribution wrong: %v", cyc)
	}
}

func TestPinnerFacade(t *testing.T) {
	node, err := likwid.Open("westmereEP")
	if err != nil {
		t.Fatal(err)
	}
	p, err := node.NewPinner("0-3", likwid.SkipMaskFor(likwid.RuntimeIntelOMP))
	if err != nil {
		t.Fatal(err)
	}
	master := node.Spawn("a.out")
	if err := p.PinProcess(master); err != nil {
		t.Fatal(err)
	}
	team, err := node.SpawnTeam(likwid.RuntimeIntelOMP, 4, master, p.Hook())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range team.Workers {
		if w.CPU != i {
			t.Errorf("worker %d on cpu %d", i, w.CPU)
		}
	}
}

func TestFeaturesFacade(t *testing.T) {
	node, err := likwid.Open("core2")
	if err != nil {
		t.Fatal(err)
	}
	f, err := node.Features(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Disable("HW_PREFETCHER"); err != nil {
		t.Fatal(err)
	}
	on, err := f.Enabled("HW_PREFETCHER")
	if err != nil || on {
		t.Errorf("prefetcher still on: %v, %v", on, err)
	}
}
