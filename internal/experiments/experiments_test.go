package experiments

import (
	"strings"
	"testing"
)

// reduced returns a spec with few samples for test speed.
func reduced(s StreamSpec, samples int) StreamSpec {
	s.Samples = samples
	return s
}

func TestFig4UnpinnedVsFig5Pinned(t *testing.T) {
	unpinned, err := reduced(Fig4, 15).Run()
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := reduced(Fig5, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(unpinned) != 24 || len(pinned) != 24 {
		t.Fatalf("series lengths %d/%d, want 24", len(unpinned), len(pinned))
	}
	// Pinned saturates near 41.6 GB/s from 6 threads on.  Odd thread
	// counts split unevenly across the sockets, so the loaded socket
	// straggles and the run-average dips — only even counts must sit at
	// the plateau.
	for _, p := range pinned[5:] {
		if p.Stats.Median < 33000 || p.Stats.Median > 43000 {
			t.Errorf("Fig5 %d threads median %v MB/s, want near the 41600 plateau", p.Threads, p.Stats.Median)
		}
		if p.Threads%2 == 0 && p.Stats.Median < 39500 {
			t.Errorf("Fig5 %d threads (balanced) median %v MB/s, want ≈ 41600", p.Threads, p.Stats.Median)
		}
	}
	// The unpinned IQR at low thread counts dwarfs the pinned one.
	if unpinned[3].Stats.IQR() < 4*pinned[3].Stats.IQR()+1 {
		t.Errorf("Fig4 4-thread IQR %v vs Fig5 %v: unpinned variance missing",
			unpinned[3].Stats.IQR(), pinned[3].Stats.IQR())
	}
	// Unpinned never beats pinned's best.
	for i := range unpinned {
		if unpinned[i].Stats.Max > pinned[i].Stats.Max*1.12 {
			t.Errorf("thread %d: unpinned max %v above pinned max %v",
				i+1, unpinned[i].Stats.Max, pinned[i].Stats.Max)
		}
	}
}

func TestFig6MatchesFig5(t *testing.T) {
	kmp, err := reduced(Fig6, 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	likwid, err := reduced(Fig5, 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range kmp {
		ratio := kmp[i].Stats.Median / likwid[i].Stats.Median
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("threads %d: KMP scatter %v vs likwid-pin %v",
				kmp[i].Threads, kmp[i].Stats.Median, likwid[i].Stats.Median)
		}
	}
}

func TestFig7GccLowCountsBad(t *testing.T) {
	gccUnpinned, err := reduced(Fig7, 15).Run()
	if err != nil {
		t.Fatal(err)
	}
	gccPinned, err := reduced(Fig8, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "for gcc the variance for this region is small and results
	// are bad with high probability" — at 6 threads the unpinned median
	// sits well below the pinned one.
	six := gccUnpinned[5].Stats
	pinnedSix := gccPinned[5].Stats
	if six.Median > pinnedSix.Median*0.75 {
		t.Errorf("gcc 6 threads: unpinned median %v not clearly below pinned %v",
			six.Median, pinnedSix.Median)
	}
	// At 12 threads the clustered placement costs a factor ~2.
	twelve := gccUnpinned[11].Stats
	pinnedTwelve := gccPinned[11].Stats
	if twelve.Median > pinnedTwelve.Median*0.65 {
		t.Errorf("gcc 12 threads: unpinned median %v vs pinned %v, want ≈ half",
			twelve.Median, pinnedTwelve.Median)
	}
}

func TestFig9And10Istanbul(t *testing.T) {
	unpinned, err := reduced(Fig9, 15).Run()
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := reduced(Fig10, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) != 12 {
		t.Fatalf("Istanbul series length %d, want 12", len(pinned))
	}
	// Pinned: monotone scaling to ~25.6 GB/s.
	last := pinned[11].Stats.Median
	if last < 22000 || last > 27000 {
		t.Errorf("Fig10 12-thread median %v, want ≈ 25600", last)
	}
	// Scaling is monotone up to socket-imbalance dips at odd counts.
	for i := 1; i < 12; i++ {
		if pinned[i].Stats.Median < pinned[i-1].Stats.Median*0.90 {
			t.Errorf("Fig10 not monotone at %d threads: %v -> %v",
				i+1, pinned[i-1].Stats.Median, pinned[i].Stats.Median)
		}
	}
	// Unpinned shows spread across the whole range (Fig. 9).
	var spreads int
	for _, p := range unpinned[2:] {
		if p.Stats.IQR() > p.Stats.Median*0.04 {
			spreads++
		}
	}
	if spreads < 4 {
		t.Errorf("Fig9: only %d of %d thread counts show spread", spreads, len(unpinned)-2)
	}
}

func TestFig11Shape(t *testing.T) {
	points, err := Fig11([]int{100, 300, 500}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.WavefrontOneSock <= p.ThreadedBaseline {
			t.Errorf("size %d: correct wavefront %v must beat baseline %v",
				p.Size, p.WavefrontOneSock, p.ThreadedBaseline)
		}
		if p.WavefrontSplit >= p.ThreadedBaseline {
			t.Errorf("size %d: wrong pinning %v must fall below baseline %v",
				p.Size, p.WavefrontSplit, p.ThreadedBaseline)
		}
		factor := p.WavefrontOneSock / p.WavefrontSplit
		if factor < 1.5 || factor > 3.0 {
			t.Errorf("size %d: wrong-pinning factor %v, want ≈ 2", p.Size, factor)
		}
	}
	out := RenderFig11(points)
	if !strings.Contains(out, "wavefront 1x4") {
		t.Error("Fig11 render missing series header")
	}
}

func TestTableIIAgainstPaper(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	within := func(got, want, tol float64) bool {
		return got > want*(1-tol) && got < want*(1+tol)
	}
	// Performance within 5% of the paper's numbers.
	for _, r := range rows {
		if !within(r.MLUPS, r.PaperMLUPS, 0.05) {
			t.Errorf("%s: %0.f MLUPS, paper %0.f", r.Variant, r.MLUPS, r.PaperMLUPS)
		}
		// Counter plausibility: in ≈ out as the paper measured.
		if !within(r.L3LinesIn, r.L3LinesOut, 0.05) {
			t.Errorf("%s: lines in %v != lines out %v", r.Variant, r.L3LinesIn, r.L3LinesOut)
		}
	}
	// Traffic ratios: blocked saves ≈4.5-6x vs threaded; NT saves ≈
	// one-third to one-half.
	ratioBlocked := rows[0].VolumeGB / rows[2].VolumeGB
	if ratioBlocked < 4 || ratioBlocked > 7 {
		t.Errorf("blocked traffic reduction = %vx, paper 4.5x", ratioBlocked)
	}
	ratioNT := rows[1].VolumeGB / rows[0].VolumeGB
	if ratioNT < 0.45 || ratioNT > 0.7 {
		t.Errorf("NT/threaded volume = %v, paper 0.58", ratioNT)
	}
	// The blocked volume magnitude lands on the paper's 16.57 GB.
	if !within(rows[2].VolumeGB, rows[2].PaperVolume, 0.1) {
		t.Errorf("blocked volume %v GB, paper %v", rows[2].VolumeGB, rows[2].PaperVolume)
	}
	out := RenderTableII(rows)
	for _, want := range []string{"UNC_L3_LINES_IN_ANY", "Performance [MLUPS]", "threaded (NT)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II render missing %q", want)
		}
	}
}

func TestFig1TopologyListings(t *testing.T) {
	out, err := Fig1Topology("nehalemEP")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sockets:\t\t2", "Cores per socket:\t4", "Threads per core:\t2", "8 MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 nehalem missing %q", want)
		}
	}
	out, err = Fig1Topology("westmereEP")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )") {
		t.Error("Fig1 westmere missing the paper's socket line")
	}
}

func TestFig2GroupMapping(t *testing.T) {
	out, err := Fig2GroupMapping("core2", "FLOPS_DP")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FIXC0 <- INSTR_RETIRED_ANY",
		"PMC0  <- SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
		"DP MFlops/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 missing %q\n%s", want, out)
		}
	}
}

func TestFig3PinMechanism(t *testing.T) {
	out, err := Fig3PinMechanism()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"likwid-pin -c 0-3 -t intel",
		"skipped by mask",
		"worker0->core0 worker1->core1 worker2->core2 worker3->core3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 missing %q\n%s", want, out)
		}
	}
}

func TestMarkerListing(t *testing.T) {
	out, err := MarkerListing()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CPU type:\tIntel Core 2 45nm processor",
		"Measuring group FLOPS_DP",
		"Region: Init",
		"Region: Benchmark",
		"DP MFlops/s",
		"8.192e+06", // the paper's packed count per core
	} {
		if !strings.Contains(out, want) {
			t.Errorf("marker listing missing %q", want)
		}
	}
}

func TestEventGroupTable(t *testing.T) {
	out, err := EventGroupTable("westmereEP")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FLOPS_DP", "Double Precision MFlops/s",
		"MEM", "Main memory bandwidth in MBytes/s",
		"TLB", "Translation lookaside buffer miss rate/ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("group table missing %q", want)
		}
	}
}

func TestFeaturesListing(t *testing.T) {
	out, err := FeaturesListing()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Intel Core 2 65nm processor",
		"Hardware Prefetcher: enabled",
		"$ likwid-features -u CL_PREFETCHER",
		"CL_PREFETCHER: disabled",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("features listing missing %q", want)
		}
	}
}

func TestAblationMultiplexErrorShrinks(t *testing.T) {
	points, err := AblationMultiplex()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatal("too few points")
	}
	first, last := points[0], points[len(points)-1]
	if last.RelError >= first.RelError {
		t.Errorf("multiplex error must shrink with run length: %v -> %v",
			first.RelError, last.RelError)
	}
	if last.RelError > 0.08 {
		t.Errorf("long-run multiplex error %v, want < 8%%", last.RelError)
	}
}

func TestAblationSocketLock(t *testing.T) {
	r, err := AblationSocketLock()
	if err != nil {
		t.Fatal(err)
	}
	if r.Overcount < 3.5 || r.Overcount > 4.5 {
		t.Errorf("naive overcount = %vx, want ≈ 4x (4 measured cores)", r.Overcount)
	}
	rel := (r.LockedSum - r.TrueLines) / r.TrueLines
	if rel > 0.02 || rel < -0.02 {
		t.Errorf("locked sum %v vs truth %v", r.LockedSum, r.TrueLines)
	}
}

func TestAblationPrefetchers(t *testing.T) {
	points, err := AblationPrefetchers()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, p := range points {
		byName[p.Disabled] = p.BandwidthMBs
	}
	if byName["all"] >= byName["none"] {
		t.Errorf("disabling all prefetchers must cost bandwidth: %v vs %v",
			byName["all"], byName["none"])
	}
	if byName["HW_PREFETCHER"] >= byName["none"] {
		t.Errorf("disabling the streamer must cost bandwidth: %v vs %v",
			byName["HW_PREFETCHER"], byName["none"])
	}
}

func TestAblationPlacement(t *testing.T) {
	points, err := AblationPlacement(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Compact clusters on one socket: lower median than spread.
	if points[1].Stats.Median >= points[0].Stats.Median {
		t.Errorf("compact median %v not below spread median %v",
			points[1].Stats.Median, points[0].Stats.Median)
	}
}

func TestAblationSMTOrder(t *testing.T) {
	r, err := AblationSMTOrder()
	if err != nil {
		t.Fatal(err)
	}
	if r.PhysicalFirstMBs <= r.SiblingFirstMBs*1.5 {
		t.Errorf("physical-first %v vs sibling-first %v: expected ~2x gap",
			r.PhysicalFirstMBs, r.SiblingFirstMBs)
	}
}

func TestStreamRender(t *testing.T) {
	points, err := reduced(Fig10, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	out := Fig10.Render(points)
	if !strings.Contains(out, "Fig. 10") || !strings.Contains(out, "median") {
		t.Error("render missing headers")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 14 {
		t.Errorf("render row count wrong:\n%s", out)
	}
}
