package machine

import (
	"math"

	"likwid/internal/memsys"
	"likwid/internal/sched"
)

// PerElem describes what one element (loop iteration, lattice-site update,
// …) of a workload costs on one thread.
type PerElem struct {
	// Cycles is the core execution time per element with all operands in
	// cache — the in-core bottleneck.
	Cycles float64
	// Counts are the core-scope canonical events per element
	// (instructions, SIMD ops, loads/stores, cache line movements, …).
	// Socket-scope keys are allowed and routed to the thread's socket.
	Counts Counts
	// Main-memory traffic per element in bytes.  The engine derives the
	// socket-scope line events from these (read lines fill the L3, write
	// lines victimize it, NT stores bypass it), so workloads must not put
	// EvMem*/EvL3Lines* into Counts as well.
	MemReadBytes  float64
	MemWriteBytes float64
	MemNTBytes    float64
	// L3Bytes is the traffic through the shared L3 per element, used for
	// the L3-bandwidth bound (relevant for cache-blocked kernels).
	L3Bytes float64
	// RemoteFraction of memory traffic that targets the other socket's
	// controller (broken ccNUMA locality).
	RemoteFraction float64
	// Streams is the number of concurrent memory streams; a single
	// stream cannot saturate the bus.
	Streams int
	// MemBWCap, when positive, is an explicit per-task memory-bandwidth
	// ceiling in bytes/s, overriding the Streams-derived one.  Pipeline
	// workloads use it to express a *group-wide* single leading stream
	// (the whole wavefront team shares one stream's worth of bandwidth).
	MemBWCap float64
	// Vector marks dense vectorized code (affects SMT gain and the
	// per-core bandwidth ceiling).
	Vector bool
}

// BytesPerElem is the total memory traffic per element.
func (p PerElem) BytesPerElem() float64 {
	return p.MemReadBytes + p.MemWriteBytes + p.MemNTBytes
}

// ThreadWork is one thread's share of a phase.
type ThreadWork struct {
	Task    *sched.Task
	Elems   float64
	PerElem PerElem
	// HomeSocket is the NUMA domain owning this thread's data, honored
	// only when HomeExplicit is set; otherwise the home is bound by first
	// touch — the socket the task runs on when the phase starts.
	HomeSocket   int
	HomeExplicit bool

	Done       float64
	FinishTime float64 // simulated time the work completed
}

// Remaining returns the unprocessed element count.
func (w *ThreadWork) Remaining() float64 { return w.Elems - w.Done }

// DefaultSlice is the engine time slice in seconds.
const DefaultSlice = 0.0005

// RunPhase executes the works to completion and returns the elapsed
// simulated time.  Counting, contention and scheduling happen per time
// slice:
//
//  1. each active task's in-core rate is computed from its cycle cost,
//     SMT-sibling activity and time-sharing on its hardware thread;
//  2. memory demands are arbitrated per socket controller (max-min fair,
//     NT and remote traffic weighted) and per-socket L3 bandwidth;
//  3. the task advances at the minimum of the core and memory rates and
//     its events are delivered to whatever counters are armed;
//  4. the scheduler's balancer may migrate unpinned tasks.
func (m *Machine) RunPhase(works []*ThreadWork, dt float64) float64 {
	if dt <= 0 {
		dt = DefaultSlice
	}
	start := m.now
	// First touch: bind data homes.
	for _, w := range works {
		if !w.HomeExplicit {
			w.HomeSocket = m.SocketOf(w.Task.CPU)
			w.HomeExplicit = true
		}
	}
	for {
		active := works[:0:0]
		for _, w := range works {
			if w.Remaining() > 1e-9 {
				active = append(active, w)
			}
		}
		if len(active) == 0 {
			break
		}
		m.step(active, dt)
		for _, h := range m.sliceHooks {
			h(m.now)
		}
		m.OS.Rebalance(m.migrationProb())
	}
	return m.now - start
}

// migrationProb is the balancer probability per slice.
func (m *Machine) migrationProb() float64 { return 0.04 }

// RunIdle advances simulated time with no work running (the "sleep"
// workload of the monitoring use case): counters stay put, slice hooks
// still fire (multiplex rotation keeps going).
func (m *Machine) RunIdle(duration, dt float64) {
	if dt <= 0 {
		dt = DefaultSlice
	}
	end := m.now + duration
	for m.now < end {
		m.now += dt
		for _, h := range m.sliceHooks {
			h(m.now)
		}
	}
}

func (m *Machine) step(active []*ThreadWork, dt float64) {
	clock := m.Arch.ClockHz()
	perf := m.Arch.Perf

	// Occupancy.
	onCPU := map[int][]*ThreadWork{}
	for _, w := range active {
		onCPU[w.Task.CPU] = append(onCPU[w.Task.CPU], w)
	}
	coreBusy := map[[2]int]int{} // physical core -> busy hardware threads
	for cpu := range onCPU {
		s, c := m.OS.CoreOf(cpu)
		coreBusy[[2]int{s, c}]++
	}

	// Phase A: in-core rates and memory demands.
	coreRate := make([]float64, len(active))
	demands := make([]memsys.Demand, 0, 2*len(active))
	demandIdx := make([][2]int, len(active)) // [local, remote] indexes, -1 none
	l3Demand := map[int][]float64{}
	l3Who := map[int][]int{}
	for i, w := range active {
		cpu := w.Task.CPU
		nShare := len(onCPU[cpu])
		share := 1.0 / float64(nShare)
		if nShare > 1 {
			share *= 1 - perf.OversubscribePenalty*float64(nShare-1)
			if share < 0.05 {
				share = 0.05
			}
		}
		s, c := m.OS.CoreOf(cpu)
		smtFactor := 1.0
		if coreBusy[[2]int{s, c}] > 1 {
			gain := perf.SMTVectorGain
			if !w.PerElem.Vector {
				gain = perf.SMTScalarGain
			}
			smtFactor = gain / float64(coreBusy[[2]int{s, c}])
		}
		rate := math.Inf(1)
		if w.PerElem.Cycles > 0 {
			rate = clock / w.PerElem.Cycles * smtFactor * share
		}
		coreRate[i] = rate

		demandIdx[i] = [2]int{-1, -1}
		bpe := w.PerElem.BytesPerElem()
		if bpe > 0 && !math.IsInf(rate, 1) {
			// The per-core bandwidth ceiling (line-fill buffers) is a
			// physical-core resource: SMT siblings share it, scaled by
			// the same SMT gain as the execution units.
			cap := m.Mem.SingleStreamCap(w.PerElem.Streams, w.PerElem.Vector) * smtFactor * share
			if w.PerElem.MemBWCap > 0 {
				cap = w.PerElem.MemBWCap * share
			}
			// Remote accesses throttle the core's own fill buffers too:
			// the added interconnect latency cuts achievable per-core
			// bandwidth by the same remote factor.
			if rf := w.PerElem.RemoteFraction; rf > 0 {
				cap /= (1 - rf) + rf/perf.RemoteFactor
			}
			bytesWanted := math.Min(rate*bpe, cap)
			ntFrac := w.PerElem.MemNTBytes / bpe
			local := bytesWanted * (1 - w.PerElem.RemoteFraction)
			remote := bytesWanted * w.PerElem.RemoteFraction
			from := m.SocketOf(cpu)
			if local > 0 {
				demandIdx[i][0] = len(demands)
				demands = append(demands, memsys.Demand{
					Task: i, HomeSocket: w.HomeSocket, FromSocket: from,
					Bytes: local, NTFraction: ntFrac,
				})
			}
			if remote > 0 {
				other := (w.HomeSocket + 1) % m.Arch.Sockets
				demandIdx[i][1] = len(demands)
				demands = append(demands, memsys.Demand{
					Task: i, HomeSocket: other, FromSocket: from,
					Bytes: remote, NTFraction: ntFrac,
				})
			}
		}
		if w.PerElem.L3Bytes > 0 && !math.IsInf(rate, 1) {
			sock := m.SocketOf(cpu)
			l3Demand[sock] = append(l3Demand[sock], rate*w.PerElem.L3Bytes)
			l3Who[sock] = append(l3Who[sock], i)
		}
	}

	grants := m.Mem.Arbitrate(demands)
	l3Rate := make([]float64, len(active))
	for i := range l3Rate {
		l3Rate[i] = math.Inf(1)
	}
	for sock, dms := range l3Demand {
		granted := memsys.Waterfill(perf.L3BW, dms)
		for j, i := range l3Who[sock] {
			if w := active[i]; w.PerElem.L3Bytes > 0 {
				l3Rate[i] = granted[j] / w.PerElem.L3Bytes
			}
		}
	}

	// Phase B: advance each task at its bottleneck rate and deliver
	// events.
	socketDeltas := map[int]Counts{}
	cpuTime := map[int]float64{}
	for i, w := range active {
		rate := coreRate[i]
		if bpe := w.PerElem.BytesPerElem(); bpe > 0 {
			var granted float64
			for _, gi := range demandIdx[i] {
				if gi >= 0 {
					granted += grants[gi].Bytes
				}
			}
			rate = math.Min(rate, granted/bpe)
		}
		rate = math.Min(rate, l3Rate[i])

		var dElems, used float64
		switch {
		case math.IsInf(rate, 1):
			dElems, used = w.Remaining(), 0
		case rate <= 0:
			continue
		default:
			dElems = math.Min(w.Remaining(), rate*dt)
			used = dElems / rate
		}
		w.Done += dElems
		if w.Remaining() <= 1e-9 && w.FinishTime == 0 {
			w.FinishTime = m.now + used
		}
		if used > cpuTime[w.Task.CPU] {
			cpuTime[w.Task.CPU] = used
		}

		// Derived traffic events of this work's slice.
		line := 64.0
		if llc, ok := m.Arch.LastLevelCache(); ok {
			line = float64(llc.LineSize)
		}
		derived := make(Counts, 6)
		derived[EvMemReadLines] = w.PerElem.MemReadBytes * dElems / line
		derived[EvMemWriteLines] = (w.PerElem.MemWriteBytes + w.PerElem.MemNTBytes) * dElems / line
		derived[EvL3LinesIn] = w.PerElem.MemReadBytes * dElems / line
		// In steady state every allocated line is eventually victimized,
		// so UNC_L3_LINES_OUT tracks the allocation flow (clean drops +
		// dirty write-backs) — the near-equality of lines-in and
		// lines-out across all three Jacobi variants in Table II.
		derived[EvL3LinesOut] = w.PerElem.MemReadBytes * dElems / line
		derived[EvL3Misses] = (w.PerElem.MemReadBytes + w.PerElem.MemWriteBytes) * dElems / line
		if w.PerElem.L3Bytes > 0 {
			hits := (w.PerElem.L3Bytes - w.PerElem.MemReadBytes - w.PerElem.MemWriteBytes) * dElems / line
			if hits > 0 {
				derived[EvL3Hits] = hits
			}
		}

		// Core-scope delivery: explicit per-element counts plus the
		// derived traffic — on parts without uncore counters (Core 2,
		// Pentium M, Atom, K8) the memory traffic is observable through
		// per-core bus events like BUS_TRANS_MEM_ALL, so traffic keys
		// must reach the issuing core's counters too.  No event is
		// defined in both domains, so nothing double-counts.
		coreDeltas := make(Counts, len(w.PerElem.Counts)+len(derived))
		sock := m.SocketOf(w.Task.CPU)
		if socketDeltas[sock] == nil {
			socketDeltas[sock] = make(Counts)
		}
		sd := socketDeltas[sock]
		for k, v := range w.PerElem.Counts {
			if k.SocketScope() {
				sd[k] += v * dElems
				coreDeltas[k] += v * dElems
				continue
			}
			coreDeltas[k] += v * dElems
		}
		for k, v := range derived {
			sd[k] += v
			coreDeltas[k] += v
		}
		m.deliverCore(w.Task.CPU, coreDeltas)
	}

	// Unhalted cycles per busy hardware thread.
	for cpu, used := range cpuTime {
		if used <= 0 {
			continue
		}
		m.deliverCore(cpu, Counts{
			EvCycles:    used * clock,
			EvCyclesRef: used * clock,
		})
	}
	for sock, deltas := range socketDeltas {
		m.deliverSocket(sock, deltas)
	}
	m.now += dt
}
