package hwdef

import (
	"fmt"
	"sort"
)

// Intel prefetcher control bits in IA32_MISC_ENABLE.  A *set* bit disables
// the unit, exactly as on Core 2 silicon, which is why likwid-features
// reports "enabled" when the bit is clear.
const (
	BitHWPrefetcher  = 9  // mid-level (L2) hardware prefetcher
	BitCLPrefetcher  = 19 // adjacent cache line prefetch
	BitDCUPrefetcher = 37 // L1 data cache unit streamer
	BitIPPrefetcher  = 39 // L1 instruction-pointer strided prefetcher
)

func intelPrefetchers() []Prefetcher {
	return []Prefetcher{
		{Name: "HW_PREFETCHER", MiscEnableBit: BitHWPrefetcher},
		{Name: "CL_PREFETCHER", MiscEnableBit: BitCLPrefetcher},
		{Name: "DCU_PREFETCHER", MiscEnableBit: BitDCUPrefetcher},
		{Name: "IP_PREFETCHER", MiscEnableBit: BitIPPrefetcher},
	}
}

func contiguous(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// The registry of node definitions.  Each entry models one of the systems
// the paper supports or evaluates on.
var registry = map[string]*Arch{}

func register(a *Arch) *Arch {
	if err := a.Validate(); err != nil {
		panic(fmt.Sprintf("hwdef: invalid arch: %v", err))
	}
	if _, dup := registry[a.Name]; dup {
		panic("hwdef: duplicate arch " + a.Name)
	}
	registry[a.Name] = a
	return a
}

// Lookup returns the architecture registered under name.
func Lookup(name string) (*Arch, error) {
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("hwdef: unknown architecture %q (known: %v)", name, Names())
	}
	return a, nil
}

// Names lists all registered architecture keys in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PentiumM models a Dothan-era laptop processor: single core, leaf-0x2
// descriptor-table cache reporting, two bare programmable counters.
var PentiumM = register(&Arch{
	Name: "pentiumM", ModelName: "Intel Pentium M (Dothan) processor",
	Vendor: Intel, Family: 6, Model: 13, Stepping: 8,
	ClockMHz: 1600, Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1,
	PhysCoreIDs: contiguous(1),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 2, Type: UnifiedCache, SizeKB: 2048, Assoc: 8, LineSize: 64, Sets: 4096, SharedBy: 1},
	},
	NumPMC: 2, HasFixedCtr: false, NumUncore: 0,
	HasLeafB: false, HasLeaf4: false, UsesLeaf2: true,
	MaxLeaf: 0x2, MaxExtLeaf: 0x80000004,
	Events:      pentiumMEvents(),
	Prefetchers: []Prefetcher{{Name: "HW_PREFETCHER", MiscEnableBit: BitHWPrefetcher}},
	Perf: PerfModel{
		SocketMemBW: 3.2e9, CoreTriadBW: 2.4e9, CoreScalarBW: 1.8e9,
		SingleStreamBW: 2.0e9, L3BW: 8e9, RemoteFactor: 1,
		SMTVectorGain: 1, SMTScalarGain: 1, NTStoreEfficiency: 0.9,
		OversubscribePenalty: 0.08,
	},
})

// PentiumMBanias models the older 130 nm Banias with its 1 MiB L2 — the
// paper's support list names both Banias and Dothan.
var PentiumMBanias = register(&Arch{
	Name: "pentiumM-banias", ModelName: "Intel Pentium M (Banias) processor",
	Vendor: Intel, Family: 6, Model: 9, Stepping: 5,
	ClockMHz: 1500, Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1,
	PhysCoreIDs: contiguous(1),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 2, Type: UnifiedCache, SizeKB: 1024, Assoc: 8, LineSize: 64, Sets: 2048, SharedBy: 1},
	},
	NumPMC: 2, HasFixedCtr: false, NumUncore: 0,
	HasLeafB: false, HasLeaf4: false, UsesLeaf2: true,
	MaxLeaf: 0x2, MaxExtLeaf: 0x80000004,
	Events:      pentiumMEvents(),
	Prefetchers: []Prefetcher{{Name: "HW_PREFETCHER", MiscEnableBit: BitHWPrefetcher}},
	Perf: PerfModel{
		SocketMemBW: 2.7e9, CoreTriadBW: 2.0e9, CoreScalarBW: 1.5e9,
		SingleStreamBW: 1.7e9, L3BW: 7e9, RemoteFactor: 1,
		SMTVectorGain: 1, SMTScalarGain: 1, NTStoreEfficiency: 0.9,
		OversubscribePenalty: 0.08,
	},
})

// Atom models a dual-core in-order Atom 330 with 2-way SMT.
var Atom = register(&Arch{
	Name: "atom", ModelName: "Intel Atom (Diamondville) processor",
	Vendor: Intel, Family: 6, Model: 28, Stepping: 2,
	ClockMHz: 1600, Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 2,
	PhysCoreIDs: contiguous(2),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 24, Assoc: 6, LineSize: 64, Sets: 64, SharedBy: 2},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 2},
		{Level: 2, Type: UnifiedCache, SizeKB: 512, Assoc: 8, LineSize: 64, Sets: 1024, SharedBy: 2},
	},
	NumPMC: 2, HasFixedCtr: true, NumUncore: 0,
	HasLeafB: false, HasLeaf4: true, UsesLeaf2: false,
	MaxLeaf: 0xA, MaxExtLeaf: 0x80000004,
	Events:      atomEvents(),
	Prefetchers: []Prefetcher{{Name: "HW_PREFETCHER", MiscEnableBit: BitHWPrefetcher}},
	Perf: PerfModel{
		SocketMemBW: 4.2e9, CoreTriadBW: 1.6e9, CoreScalarBW: 1.1e9,
		SingleStreamBW: 1.8e9, L3BW: 10e9, RemoteFactor: 1,
		SMTVectorGain: 1.15, SMTScalarGain: 1.4, NTStoreEfficiency: 0.9,
		OversubscribePenalty: 0.1,
	},
})

// Core2Quad models the 45 nm Core 2 Quad of the paper's marker-mode listing
// (2.83 GHz, two dual-core dies each sharing a 6 MiB L2).
var Core2Quad = register(&Arch{
	Name: "core2", ModelName: "Intel Core 2 45nm processor",
	Vendor: Intel, Family: 6, Model: 23, Stepping: 10,
	ClockMHz: 2833, Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 1,
	PhysCoreIDs: contiguous(4),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 2, Type: UnifiedCache, SizeKB: 6144, Assoc: 24, LineSize: 64, Sets: 4096, SharedBy: 2},
	},
	NumPMC: 2, HasFixedCtr: true, NumUncore: 0,
	HasLeafB: false, HasLeaf4: true, UsesLeaf2: false,
	MaxLeaf: 0xA, MaxExtLeaf: 0x80000004,
	Events:      core2Events(),
	Prefetchers: intelPrefetchers(),
	Perf: PerfModel{
		SocketMemBW: 7.4e9, CoreTriadBW: 3.9e9, CoreScalarBW: 2.8e9,
		SingleStreamBW: 3.4e9, L3BW: 25e9, RemoteFactor: 1,
		SMTVectorGain: 1, SMTScalarGain: 1, NTStoreEfficiency: 0.9,
		OversubscribePenalty: 0.08,
	},
})

// Core2Duo65 models the 65 nm mobile Core 2 of the likwid-features listing.
var Core2Duo65 = register(&Arch{
	Name: "core2-65nm", ModelName: "Intel Core 2 65nm processor",
	Vendor: Intel, Family: 6, Model: 15, Stepping: 6,
	ClockMHz: 2333, Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1,
	PhysCoreIDs: contiguous(2),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: 1},
		{Level: 2, Type: UnifiedCache, SizeKB: 4096, Assoc: 16, LineSize: 64, Sets: 4096, SharedBy: 2},
	},
	NumPMC: 2, HasFixedCtr: true, NumUncore: 0,
	HasLeafB: false, HasLeaf4: true, UsesLeaf2: false,
	MaxLeaf: 0xA, MaxExtLeaf: 0x80000004,
	Events:      core2Events(),
	Prefetchers: intelPrefetchers(),
	Perf: PerfModel{
		SocketMemBW: 6.4e9, CoreTriadBW: 3.4e9, CoreScalarBW: 2.5e9,
		SingleStreamBW: 3.0e9, L3BW: 20e9, RemoteFactor: 1,
		SMTVectorGain: 1, SMTScalarGain: 1, NTStoreEfficiency: 0.9,
		OversubscribePenalty: 0.08,
	},
})

// NehalemEP models the dual-socket quad-core Xeon X5550 node (2.66 GHz,
// SMT-2) used for the stencil case studies (Fig. 11, Table II).
var NehalemEP = register(&Arch{
	Name: "nehalemEP", ModelName: "Intel Core i7 (Nehalem EP) processor",
	Vendor: Intel, Family: 6, Model: 26, Stepping: 5,
	ClockMHz: 2666, Sockets: 2, CoresPerSocket: 4, ThreadsPerCore: 2,
	PhysCoreIDs: contiguous(4),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, Inclusive: true, SharedBy: 2},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 4, LineSize: 64, Sets: 128, SharedBy: 2},
		{Level: 2, Type: UnifiedCache, SizeKB: 256, Assoc: 8, LineSize: 64, Sets: 512, Inclusive: true, SharedBy: 2},
		{Level: 3, Type: UnifiedCache, SizeKB: 8192, Assoc: 16, LineSize: 64, Sets: 8192, Inclusive: false, SharedBy: 8},
	},
	NumPMC: 4, HasFixedCtr: true, NumUncore: 8,
	HasLeafB: true, HasLeaf4: true, UsesLeaf2: false,
	MaxLeaf: 0xB, MaxExtLeaf: 0x80000008,
	Events:      nehalemEvents(),
	Prefetchers: intelPrefetchers(),
	Perf: PerfModel{
		// Calibrated against Table II: 784 MLUPS * 24 B/LUP = 18.8 GB/s
		// saturated; 1331 MLUPS * 5.28 B/LUP = 7.0 GB/s single-stream;
		// NT-store Jacobi at 1032 MLUPS * (8 + 8/e) B/LUP = 18.8 GB/s
		// gives bus efficiency e = 0.783 for the NT write stream.
		SocketMemBW: 18.8e9, CoreTriadBW: 6.5e9, CoreScalarBW: 4.3e9,
		SingleStreamBW: 7.0e9, L3BW: 38e9, RemoteFactor: 0.55,
		SMTVectorGain: 1.05, SMTScalarGain: 1.30, NTStoreEfficiency: 0.783,
		OversubscribePenalty: 0.08,
	},
})

// WestmereEP models the dual-socket hexa-core Xeon X5670 node (2.93 GHz,
// SMT-2) of the STREAM case study and the topology listing in the paper.
// Note the non-contiguous physical core IDs {0,1,2,8,9,10}: the topology
// tool must report them verbatim.
var WestmereEP = register(&Arch{
	Name: "westmereEP", ModelName: "Intel Xeon (Westmere EP) processor",
	Vendor: Intel, Family: 6, Model: 44, Stepping: 2,
	ClockMHz: 2933, Sockets: 2, CoresPerSocket: 6, ThreadsPerCore: 2,
	PhysCoreIDs: []int{0, 1, 2, 8, 9, 10},
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, Inclusive: true, SharedBy: 2},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 4, LineSize: 64, Sets: 128, SharedBy: 2},
		{Level: 2, Type: UnifiedCache, SizeKB: 256, Assoc: 8, LineSize: 64, Sets: 512, Inclusive: true, SharedBy: 2},
		{Level: 3, Type: UnifiedCache, SizeKB: 12288, Assoc: 16, LineSize: 64, Sets: 12288, Inclusive: false, SharedBy: 12},
	},
	NumPMC: 4, HasFixedCtr: true, NumUncore: 8,
	HasLeafB: true, HasLeaf4: true, UsesLeaf2: false,
	MaxLeaf: 0xB, MaxExtLeaf: 0x80000008,
	Events:      nehalemEvents(),
	Prefetchers: intelPrefetchers(),
	Perf: PerfModel{
		// Calibrated against Figs. 4-6: ~41 GB/s node saturation, about
		// three vectorized cores saturate one socket.
		SocketMemBW: 20.8e9, CoreTriadBW: 6.9e9, CoreScalarBW: 4.4e9,
		SingleStreamBW: 7.2e9, L3BW: 45e9, RemoteFactor: 0.55,
		SMTVectorGain: 1.05, SMTScalarGain: 1.35, NTStoreEfficiency: 0.88,
		OversubscribePenalty: 0.08,
	},
})

// WestmereEX models a four-socket hexa-core Xeon E7-4807 node: the largest
// shared-memory configuration in the registry, exercising the >2-socket
// paths of the topology decoder and the NUMA model.
var WestmereEX = register(&Arch{
	Name: "westmereEX", ModelName: "Intel Xeon E7 (Westmere EX) processor",
	Vendor: Intel, Family: 6, Model: 47, Stepping: 2,
	ClockMHz: 1867, Sockets: 4, CoresPerSocket: 6, ThreadsPerCore: 2,
	PhysCoreIDs: contiguous(6),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, Inclusive: true, SharedBy: 2},
		{Level: 1, Type: InstructionCache, SizeKB: 32, Assoc: 4, LineSize: 64, Sets: 128, SharedBy: 2},
		{Level: 2, Type: UnifiedCache, SizeKB: 256, Assoc: 8, LineSize: 64, Sets: 512, Inclusive: true, SharedBy: 2},
		{Level: 3, Type: UnifiedCache, SizeKB: 18432, Assoc: 24, LineSize: 64, Sets: 12288, Inclusive: false, SharedBy: 12},
	},
	NumPMC: 4, HasFixedCtr: true, NumUncore: 8,
	HasLeafB: true, HasLeaf4: true, UsesLeaf2: false,
	MaxLeaf: 0xB, MaxExtLeaf: 0x80000008,
	Events:      nehalemEvents(),
	Prefetchers: intelPrefetchers(),
	Perf: PerfModel{
		SocketMemBW: 15.5e9, CoreTriadBW: 5.2e9, CoreScalarBW: 3.6e9,
		SingleStreamBW: 5.5e9, L3BW: 34e9, RemoteFactor: 0.5,
		SMTVectorGain: 1.05, SMTScalarGain: 1.32, NTStoreEfficiency: 0.8,
		OversubscribePenalty: 0.08,
	},
})

// K8 models a dual-socket dual-core Opteron 2218 (Santa Rosa).
var K8 = register(&Arch{
	Name: "k8", ModelName: "AMD K8 (Opteron Santa Rosa) processor",
	Vendor: AMD, Family: 15, Model: 65, Stepping: 2,
	ClockMHz: 2600, Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 1,
	PhysCoreIDs: contiguous(2),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 64, Assoc: 2, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 1, Type: InstructionCache, SizeKB: 64, Assoc: 2, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 2, Type: UnifiedCache, SizeKB: 1024, Assoc: 16, LineSize: 64, Sets: 1024, SharedBy: 1},
	},
	NumPMC: 4, HasFixedCtr: false, NumUncore: 0,
	HasLeafB: false, HasLeaf4: false, UsesLeaf2: false,
	MaxLeaf: 0x1, MaxExtLeaf: 0x80000008,
	Events: k8Events(),
	Perf: PerfModel{
		SocketMemBW: 6.4e9, CoreTriadBW: 3.0e9, CoreScalarBW: 2.3e9,
		SingleStreamBW: 2.8e9, L3BW: 16e9, RemoteFactor: 0.65,
		SMTVectorGain: 1, SMTScalarGain: 1, NTStoreEfficiency: 0.9,
		OversubscribePenalty: 0.08,
	},
})

// Shanghai models a dual-socket quad-core Opteron 2378 (K10).
var Shanghai = register(&Arch{
	Name: "shanghai", ModelName: "AMD K10 (Opteron Shanghai) processor",
	Vendor: AMD, Family: 16, Model: 4, Stepping: 2,
	ClockMHz: 2400, Sockets: 2, CoresPerSocket: 4, ThreadsPerCore: 1,
	PhysCoreIDs: contiguous(4),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 64, Assoc: 2, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 1, Type: InstructionCache, SizeKB: 64, Assoc: 2, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 2, Type: UnifiedCache, SizeKB: 512, Assoc: 16, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 3, Type: UnifiedCache, SizeKB: 6144, Assoc: 48, LineSize: 64, Sets: 2048, SharedBy: 4},
	},
	NumPMC: 4, HasFixedCtr: false, NumUncore: 4,
	HasLeafB: false, HasLeaf4: false, UsesLeaf2: false,
	MaxLeaf: 0x1, MaxExtLeaf: 0x8000001D,
	Events: k10Events(),
	Perf: PerfModel{
		SocketMemBW: 10.0e9, CoreTriadBW: 2.7e9, CoreScalarBW: 2.1e9,
		SingleStreamBW: 3.6e9, L3BW: 22e9, RemoteFactor: 0.6,
		SMTVectorGain: 1, SMTScalarGain: 1, NTStoreEfficiency: 0.85,
		OversubscribePenalty: 0.08,
	},
})

// Istanbul models the dual-socket hexa-core Opteron 2435 node of the
// paper's Figs. 9 and 10 (no SMT; per-socket L3 and memory controller).
var Istanbul = register(&Arch{
	Name: "istanbul", ModelName: "AMD K10 (Opteron Istanbul) processor",
	Vendor: AMD, Family: 16, Model: 8, Stepping: 0,
	ClockMHz: 2600, Sockets: 2, CoresPerSocket: 6, ThreadsPerCore: 1,
	PhysCoreIDs: contiguous(6),
	Caches: []CacheLevel{
		{Level: 1, Type: DataCache, SizeKB: 64, Assoc: 2, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 1, Type: InstructionCache, SizeKB: 64, Assoc: 2, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 2, Type: UnifiedCache, SizeKB: 512, Assoc: 16, LineSize: 64, Sets: 512, SharedBy: 1},
		{Level: 3, Type: UnifiedCache, SizeKB: 6144, Assoc: 48, LineSize: 64, Sets: 2048, SharedBy: 6},
	},
	NumPMC: 4, HasFixedCtr: false, NumUncore: 4,
	HasLeafB: false, HasLeaf4: false, UsesLeaf2: false,
	MaxLeaf: 0x1, MaxExtLeaf: 0x8000001D,
	Events: k10Events(),
	Perf: PerfModel{
		// Calibrated against Figs. 9-10: ~25 GB/s node saturation with
		// near-linear scaling to about five cores per socket.
		SocketMemBW: 12.8e9, CoreTriadBW: 2.6e9, CoreScalarBW: 2.2e9,
		SingleStreamBW: 4.0e9, L3BW: 24e9, RemoteFactor: 0.6,
		SMTVectorGain: 1, SMTScalarGain: 1, NTStoreEfficiency: 0.85,
		OversubscribePenalty: 0.08,
	},
})
