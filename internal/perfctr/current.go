package perfctr

import "likwid/internal/msr"

// Current returns the accumulated counts including the not-yet-harvested
// live counter registers, without disturbing the measurement.  The marker
// API is built on this: region deltas are differences of two Current
// snapshots.
func (c *Collector) Current() Results {
	wall := c.M.Now() - c.startTime
	r := Results{
		CPUs:     c.CPUs(),
		Events:   c.EventNames(),
		Counts:   map[string][]float64{},
		WallTime: wall,
		Scaled:   len(c.sets) > 1,
	}

	// Copy accumulated counts.
	for name, vals := range c.acc {
		r.Counts[name] = append([]float64(nil), vals...)
	}

	if c.active {
		set := c.sets[c.current]
		for _, cpu := range c.cpus {
			dev, err := c.M.MSRs.Open(cpu)
			if err != nil {
				continue
			}
			idx := c.cpuIndex(cpu)
			for _, e := range c.fixed {
				if v, err := dev.Read(msr.IA32FixedCtr0 + uint32(e.Slot)); err == nil {
					r.Counts[e.Name][idx] += float64(v)
				}
			}
			for _, e := range set.pmc {
				if v, err := dev.Read(c.pmcReg(e.Slot)); err == nil {
					r.Counts[e.Name][idx] += float64(v)
				}
			}
		}
		for _, leader := range c.socketLeaders() {
			dev, err := c.M.MSRs.Open(leader)
			if err != nil {
				continue
			}
			idx := c.cpuIndex(leader)
			for _, e := range set.uncore {
				if v, err := dev.Read(msr.UncPMC + uint32(e.Slot)); err == nil {
					r.Counts[e.Name][idx] += float64(v)
				}
			}
		}
	}

	// Multiplex extrapolation, charging in-flight time to the active set.
	if len(c.sets) > 1 {
		setOf := map[string]int{}
		for i, set := range c.sets {
			for _, e := range set.pmc {
				setOf[e.Name] = i
			}
			for _, e := range set.uncore {
				setOf[e.Name] = i
			}
		}
		inflight := 0.0
		if c.active {
			inflight = c.M.Now() - c.lastSwitch
		}
		for name, vals := range r.Counts {
			si, ok := setOf[name]
			if !ok {
				continue // fixed events run in every set
			}
			active := c.setActive[si]
			if si == c.current {
				active += inflight
			}
			if active <= 0 || wall <= 0 {
				continue
			}
			scale := wall / active
			for i := range vals {
				vals[i] *= scale
			}
		}
	}
	return r
}
