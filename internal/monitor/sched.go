package monitor

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"likwid/internal/telemetry"
)

// Clock abstracts time so the scheduler is testable without sleeping.
type Clock interface {
	Now() time.Time
	// After fires once after d; the scheduler re-arms it every tick.
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock is the wall clock.
var RealClock Clock = realClock{}

// FakeClock is a manually advanced clock for deterministic scheduler tests.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(0, 0)}
}

// Now returns the fake time.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After returns a channel fired by a future Advance crossing the deadline.
func (f *FakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{at: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- f.now
		return w.ch
	}
	f.waiters = append(f.waiters, w)
	return w.ch
}

// Advance moves the fake time forward, firing every timer that comes due.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	remaining := f.waiters[:0]
	var due []*fakeWaiter
	for _, w := range f.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// Waiters reports the number of armed timers (test synchronization aid).
func (f *FakeClock) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// SchedulerOptions wire a scheduler to its outputs.
type SchedulerOptions struct {
	// Clock defaults to the wall clock.
	Clock Clock
	// Store receives every batch (optional).
	Store *Store
	// Aggregator derives domain roll-ups appended to each batch (optional).
	Aggregator *Aggregator
	// Dispatcher receives every batch asynchronously (optional).
	Dispatcher *Dispatcher
	// MaxBackoff caps the per-collector error backoff (default 30 s).
	MaxBackoff time.Duration
	// AdaptiveMax enables adaptive sampling: while a collector's batches
	// are unchanged within AdaptiveEpsilon, its interval stretches
	// (doubling per unchanged tick) up to this cap, and snaps back to the
	// declared interval on the first change.  Static sources (topology,
	// features) then cost almost nothing while counters keep their
	// cadence.  Zero disables stretching.
	AdaptiveMax time.Duration
	// AdaptiveEpsilon is the relative difference below which two sample
	// values count as unchanged (default 1e-9; it is also used as the
	// absolute floor for values near zero).
	AdaptiveEpsilon float64
	// Labels stamps this agent's label set (likwid-agent -labels, e.g.
	// job=lbm,cluster=emmy) onto every collected sample — roll-ups
	// included — before it reaches the store and the sinks, so local
	// series, pushed batches, and alert events all carry it.  Labels a
	// collector sets itself win per name; the agent identity fills in
	// underneath (the receiver's ingest-default semantics).
	Labels Labels
	// OnError observes collector failures (optional; e.g. logging).
	OnError func(collector string, err error)
	// Logger receives structured scheduler events (collector failures,
	// backoff entries); nil stays silent.  It complements OnError rather
	// than replacing it, so tests can keep hooking errors directly.
	Logger *slog.Logger
	// Telemetry, when set, instruments every collector goroutine:
	// per-collector run/error/backoff/stretch counters and run-duration
	// histograms, plus the shared tick-lag histogram.  Instruments are
	// resolved once per goroutine at startup — the tick path pays only
	// the atomic updates.
	Telemetry *telemetry.Registry
}

// CollectorStats is one collector's lifetime accounting.
type CollectorStats struct {
	Name      string
	Batches   uint64
	Samples   uint64
	Errors    uint64
	Stretches uint64  // ticks deferred by adaptive interval stretching
	LastTime  float64 // simulated time of the newest sample
}

type schedEntry struct {
	c         Collector
	batches   atomic.Uint64
	samples   atomic.Uint64
	errors    atomic.Uint64
	stretches atomic.Uint64
	last      atomic.Uint64 // float64 bits of the newest sample time
}

// Scheduler runs collectors concurrently, each on its own interval, with
// exponential backoff on failing collectors and context cancellation for
// shutdown.  Each tick produces one batch: read → aggregate → store → sink.
type Scheduler struct {
	opts    SchedulerOptions
	entries []*schedEntry
}

// NewScheduler creates a scheduler; add collectors before Run.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	if opts.Clock == nil {
		opts.Clock = RealClock
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 30 * time.Second
	}
	return &Scheduler{opts: opts}
}

// Add registers a collector and forwards its aggregation hints.
func (s *Scheduler) Add(c Collector) {
	s.entries = append(s.entries, &schedEntry{c: c})
	if h, ok := c.(AggregationHinter); ok && s.opts.Aggregator != nil {
		s.opts.Aggregator.SetMean(h.MeanMetrics()...)
	}
}

// Run ticks every collector until the context is cancelled, then returns
// after all collector goroutines have stopped.  The dispatcher is not
// closed: the caller owns its lifecycle (it may outlive one Run).
func (s *Scheduler) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, e := range s.entries {
		wg.Add(1)
		go func(e *schedEntry) {
			defer wg.Done()
			s.runOne(ctx, e)
		}(e)
	}
	wg.Wait()
}

func (s *Scheduler) runOne(ctx context.Context, e *schedEntry) {
	interval := e.c.Interval()
	if interval <= 0 {
		interval = time.Second
	}
	// Telemetry instruments, resolved once per collector goroutine so
	// the tick path below is pure atomic updates.
	var (
		tRuns, tErrors, tBackoffs, tStretches, tSamples *telemetry.Counter
		tRunSec, tLag                                   *telemetry.Histogram
	)
	if reg := s.opts.Telemetry; reg != nil {
		name := e.c.Name()
		tRuns = reg.Counter("likwid_collector_runs_total", "collector", name)
		tErrors = reg.Counter("likwid_collector_errors_total", "collector", name)
		tBackoffs = reg.Counter("likwid_collector_backoffs_total", "collector", name)
		tStretches = reg.Counter("likwid_collector_stretches_total", "collector", name)
		tSamples = reg.Counter("likwid_collector_samples_total", "collector", name)
		tRunSec = reg.Histogram("likwid_collector_run_seconds", telemetry.DurationBuckets, "collector", name)
		tLag = reg.Histogram("likwid_sched_tick_lag_seconds", telemetry.DurationBuckets)
	}
	delay := interval
	stretch := interval // adaptive interval, doubled while samples are static
	failures := 0
	// A cap at or below the collector's own interval cannot stretch it —
	// and clamping to it would *speed the collector up*, the inverse of
	// the feature.  Such collectors just keep their declared cadence.
	adaptive := s.opts.AdaptiveMax > interval
	var prev map[Key]float64
	// Per-goroutine (so lock-free) memo of the -labels stamp merge: a
	// collector emits the same few label sets every tick, and the merge
	// must not re-intern (global mutex + allocs) per sample per tick.
	var stampCache map[Labels]Labels
	for {
		armed := s.opts.Clock.Now()
		select {
		case <-ctx.Done():
			return
		case <-s.opts.Clock.After(delay):
		}
		if tLag != nil {
			// Tick lag: how far past the intended deadline the wake-up
			// landed.  A loaded node (or a slow sink back-pressuring the
			// runtime) shows up here before it shows up as data gaps.
			if lag := s.opts.Clock.Now().Sub(armed) - delay; lag > 0 {
				tLag.Observe(lag.Seconds())
			} else {
				tLag.Observe(0)
			}
		}
		start := s.opts.Clock.Now()
		samples, err := e.c.Collect(ctx)
		if tRuns != nil {
			tRuns.Inc()
			tRunSec.Observe(s.opts.Clock.Now().Sub(start).Seconds())
		}
		if err != nil {
			e.errors.Add(1)
			if tErrors != nil {
				tErrors.Inc()
				tBackoffs.Inc()
			}
			if s.opts.OnError != nil {
				s.opts.OnError(e.c.Name(), err)
			}
			// Exponential backoff: a broken collector must not spin, and
			// must not take the healthy ones down with it.
			failures++
			delay = interval << uint(failures)
			if delay > s.opts.MaxBackoff || delay <= 0 {
				delay = s.opts.MaxBackoff
			}
			if s.opts.Logger != nil {
				s.opts.Logger.Warn("collector failed, backing off",
					"collector", e.c.Name(), "failures", failures, "next_delay", delay, "err", err)
			}
			continue
		}
		failures = 0
		delay = interval
		if adaptive {
			// Adaptive sampling: an unchanged batch doubles this
			// collector's next delay (capped); any changed value snaps the
			// cadence back to the declared interval.
			if prev != nil && samplesUnchanged(prev, samples, s.opts.AdaptiveEpsilon) {
				stretch *= 2
				if stretch > s.opts.AdaptiveMax {
					stretch = s.opts.AdaptiveMax
				}
				if stretch > interval {
					e.stretches.Add(1)
					if tStretches != nil {
						tStretches.Inc()
					}
				}
			} else {
				stretch = interval
			}
			if prev == nil {
				prev = map[Key]float64{}
			}
			for k := range prev {
				delete(prev, k)
			}
			for _, sm := range samples {
				prev[sm.Key()] = sm.Value
			}
			delay = stretch
		}
		if len(samples) == 0 {
			continue
		}
		if s.opts.Aggregator != nil {
			samples = append(samples, s.opts.Aggregator.Rollup(samples)...)
		}
		if !s.opts.Labels.Empty() {
			for i := range samples {
				ls := samples[i].Labels
				merged, ok := stampCache[ls]
				if !ok {
					if !ls.Empty() && len(mergePairs(s.opts.Labels, ls)) > maxLabels {
						// The union would break the wire cap every
						// downstream receiver enforces: the agent stamp
						// yields (before the over-cap union can reach the
						// intern table), keeping the collector's own valid
						// set — loudly, once per distinct set.
						merged = ls
						if s.opts.OnError != nil {
							s.opts.OnError(e.c.Name(), fmt.Errorf(
								"monitor: sample labels %q merged with the agent labels exceed the limit of %d; keeping the collector's set", ls, maxLabels))
						}
						if s.opts.Logger != nil {
							s.opts.Logger.Warn("label merge exceeds the wire cap, keeping the collector's set",
								"collector", e.c.Name(), "labels", ls.String(), "max", maxLabels)
						}
					} else {
						merged = MergeLabels(s.opts.Labels, ls)
					}
					if stampCache == nil || len(stampCache) >= maxMergeCacheEntries {
						stampCache = map[Labels]Labels{}
					}
					stampCache[ls] = merged
				}
				samples[i].Labels = merged
			}
		}
		batch := Batch{Collector: e.c.Name(), Time: maxTime(samples), Samples: samples}
		e.batches.Add(1)
		e.samples.Add(uint64(len(samples)))
		if tSamples != nil {
			tSamples.Add(uint64(len(samples)))
		}
		storeFloat(&e.last, batch.Time)
		if s.opts.Store != nil {
			s.opts.Store.AppendBatch(batch)
		}
		if s.opts.Dispatcher != nil {
			s.opts.Dispatcher.Publish(batch)
		}
	}
}

// Stats reports per-collector accounting sorted by name.
func (s *Scheduler) Stats() []CollectorStats {
	out := make([]CollectorStats, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, CollectorStats{
			Name:      e.c.Name(),
			Batches:   e.batches.Load(),
			Samples:   e.samples.Load(),
			Errors:    e.errors.Load(),
			Stretches: e.stretches.Load(),
			LastTime:  loadFloat(&e.last),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// samplesUnchanged reports whether a batch matches the previous one
// within a relative epsilon: same series set, every value within
// eps * max(|old|, |new|) (eps doubling as the absolute floor near
// zero).  Sample times are ignored — time always advances; the question
// is whether the *values* moved.
func samplesUnchanged(prev map[Key]float64, cur []Sample, eps float64) bool {
	if eps <= 0 {
		eps = 1e-9
	}
	if len(prev) != len(cur) {
		return false
	}
	for _, s := range cur {
		p, ok := prev[s.Key()]
		if !ok {
			return false
		}
		d := math.Abs(s.Value - p)
		if d > eps*math.Max(math.Abs(s.Value), math.Abs(p)) && d > eps {
			return false
		}
	}
	return true
}

func maxTime(samples []Sample) float64 {
	t := 0.0
	for _, s := range samples {
		if s.Time > t {
			t = s.Time
		}
	}
	return t
}

func storeFloat(a *atomic.Uint64, v float64) { a.Store(math.Float64bits(v)) }
func loadFloat(a *atomic.Uint64) float64     { return math.Float64frombits(a.Load()) }
