// likwid-features views and toggles the hardware prefetchers of a core via
// the IA32_MISC_ENABLE register and reports switchable processor features
// (§II-D of the paper).
//
// Usage:
//
//	likwid-features [-a arch] [-c core] [-e FEATURE | -u FEATURE]
//
//	-a arch     node architecture (default core2-65nm, the paper's listing)
//	-c core     core to operate on (default 0)
//	-e FEATURE  enable a prefetcher (e.g. CL_PREFETCHER)
//	-u FEATURE  disable a prefetcher
package main

import (
	"flag"
	"fmt"
	"os"

	"likwid"
)

func main() {
	arch := flag.String("a", "core2-65nm", "node architecture")
	core := flag.Int("c", 0, "core id")
	enable := flag.String("e", "", "feature to enable")
	disable := flag.String("u", "", "feature to disable")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-features:", err)
		os.Exit(1)
	}
	node, err := likwid.Open(*arch)
	if err != nil {
		fail(err)
	}
	tool, err := node.Features(*core)
	if err != nil {
		fail(err)
	}
	switch {
	case *enable != "":
		if err := tool.Enable(*enable); err != nil {
			fail(err)
		}
		on, _ := tool.Enabled(*enable)
		fmt.Printf("%s: %s\n", *enable, state(on))
	case *disable != "":
		if err := tool.Disable(*disable); err != nil {
			fail(err)
		}
		on, _ := tool.Enabled(*disable)
		fmt.Printf("%s: %s\n", *disable, state(on))
	default:
		out, err := tool.Render()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
}

func state(on bool) string {
	if on {
		return "enabled"
	}
	return "disabled"
}
