package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseAgentFlags(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string // substring of the expected error; "" = success
		check   func(t *testing.T, cfg *agentConfig)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.arch != "westmereEP" || cfg.group != "MEM_DP" {
					t.Errorf("defaults = %s/%s, want westmereEP/MEM_DP", cfg.arch, cfg.group)
				}
				if cfg.interval != 500*time.Millisecond || cfg.retain != 1024 {
					t.Errorf("interval=%v retain=%d, want 500ms/1024", cfg.interval, cfg.retain)
				}
				if cfg.node == nil {
					t.Error("validation must open the node for reuse")
				}
				if len(cfg.tiers) != 0 {
					t.Errorf("tiers = %v, want none by default", cfg.tiers)
				}
			},
		},
		{
			name: "full agent spec",
			args: []string{"-a", "istanbul", "-g", "MEM_DP", "-c", "0-3", "-i", "250ms",
				"-tiers", "10s:360,1m:720", "-sink", "csv:/tmp/x.csv", "-sink", "push:collector:8090",
				"-collectors", "perfgroup, membw", "-load", "stream:2"},
			check: func(t *testing.T, cfg *agentConfig) {
				if len(cfg.cpus) != 4 || cfg.cpus[3] != 3 {
					t.Errorf("cpus = %v, want 0..3", cfg.cpus)
				}
				if len(cfg.tiers) != 2 || cfg.tiers[0].Resolution != 10 || cfg.tiers[1].Capacity != 720 {
					t.Errorf("tiers = %+v, want 10s:360,1m:720", cfg.tiers)
				}
				if len(cfg.collectors) != 2 || cfg.collectors[1] != "membw" {
					t.Errorf("collectors = %v, want [perfgroup membw]", cfg.collectors)
				}
				if len(cfg.sinks) != 2 {
					t.Errorf("sinks = %v, want 2 specs", cfg.sinks)
				}
			},
		},
		{
			name: "receiver mode skips machine validation",
			args: []string{"-receiver", ":8090", "-g", "NO_SUCH_GROUP", "-tiers", "10s:60"},
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.receiver != ":8090" {
					t.Errorf("receiver = %q", cfg.receiver)
				}
				if cfg.node != nil {
					t.Error("receiver mode must not open a node")
				}
			},
		},
		{name: "bad arch", args: []string{"-a", "pentium4"}, wantErr: "pentium4"},
		{name: "bad group", args: []string{"-g", "NOT_A_GROUP"}, wantErr: "NOT_A_GROUP"},
		{name: "bad cpu list", args: []string{"-c", "0-x"}, wantErr: "0-x"},
		{name: "cpu out of range", args: []string{"-c", "900"}, wantErr: "out of range"},
		{name: "bad flag", args: []string{"-bogus"}, wantErr: "bogus"},
		{name: "positional junk", args: []string{"extra"}, wantErr: "unexpected arguments"},
		{name: "zero interval", args: []string{"-i", "0s"}, wantErr: "interval"},
		{name: "negative duration", args: []string{"-duration", "-1s"}, wantErr: "duration"},
		{name: "zero buffer", args: []string{"-buffer", "0"}, wantErr: "queue depth"},
		{name: "bad sink kind", args: []string{"-sink", "kafka:topic"}, wantErr: "unknown sink kind"},
		{name: "csv sink without path", args: []string{"-sink", "csv"}, wantErr: "file path"},
		{name: "push sink without host", args: []string{"-sink", "push:"}, wantErr: "receiver URL"},
		{name: "push sink bad scheme", args: []string{"-sink", "push:ftp://h/ingest"}, wantErr: "http or https"},
		{name: "bad load kind", args: []string{"-load", "spin"}, wantErr: "unknown load spec"},
		{name: "bad load count", args: []string{"-load", "stream:zero"}, wantErr: "task count"},
		{name: "negative load count", args: []string{"-load", "stream:-2"}, wantErr: "task count"},
		{name: "idle load with argument", args: []string{"-load", "idle:3"}, wantErr: "no argument"},
		{name: "tier missing capacity", args: []string{"-tiers", "10s"}, wantErr: "RESOLUTION:CAPACITY"},
		{name: "tier bad resolution", args: []string{"-tiers", "ten:5"}, wantErr: "resolution"},
		{name: "tier zero capacity", args: []string{"-tiers", "10s:0"}, wantErr: "capacity"},
		{name: "tiers not ascending", args: []string{"-tiers", "1m:10,10s:10"}, wantErr: "ascend"},
		{name: "receiver with sink", args: []string{"-receiver", ":8090", "-sink", "stdout"}, wantErr: "-sink not allowed"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg, err := parseAgentFlags(tt.args, io.Discard)
			if tt.wantErr != "" {
				if err == nil {
					t.Fatalf("parseAgentFlags(%v) succeeded, want error containing %q", tt.args, tt.wantErr)
				}
				if !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseAgentFlags(%v) failed: %v", tt.args, err)
			}
			if tt.check != nil {
				tt.check(t, cfg)
			}
		})
	}
}

func TestParseLoadSpec(t *testing.T) {
	if kind, n, err := parseLoadSpec("stream"); err != nil || kind != "stream" || n != 0 {
		t.Errorf("stream = (%q, %d, %v), want (stream, 0, nil)", kind, n, err)
	}
	if kind, n, err := parseLoadSpec("stream:8"); err != nil || kind != "stream" || n != 8 {
		t.Errorf("stream:8 = (%q, %d, %v), want (stream, 8, nil)", kind, n, err)
	}
	if _, _, err := parseLoadSpec("idle"); err != nil {
		t.Errorf("idle = %v, want nil", err)
	}
}
