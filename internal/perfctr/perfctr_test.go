package perfctr

import (
	"math"
	"strings"
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/sched"
)

func newMachine(t *testing.T, arch string) *machine.Machine {
	t.Helper()
	m, err := machine.NewNamed(arch, machine.Options{Policy: sched.PolicySpread, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseEventList(t *testing.T) {
	specs, err := ParseEventList("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Counter != "PMC0" || specs[1].Event != "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE" {
		t.Fatalf("specs = %+v", specs)
	}
	if _, err := ParseEventList(""); err == nil {
		t.Error("empty list must fail")
	}
	specs, err = ParseEventList("L1D_REPL")
	if err != nil || specs[0].Counter != "" {
		t.Fatalf("bare event failed: %+v, %v", specs, err)
	}
}

func TestCollectorWrapperMode(t *testing.T) {
	m := newMachine(t, "westmereEP")
	task := m.OS.Spawn("a.out", nil)
	if err := m.OS.Pin(task, 1); err != nil {
		t.Fatal(err)
	}

	specs, _ := ParseEventList("FP_COMP_OPS_EXE_SSE_FP_PACKED:PMC0,FP_COMP_OPS_EXE_SSE_FP_SCALAR:PMC1")
	col, err := NewCollector(m, []int{0, 1, 2, 3}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	const elems = 2e7
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{
			Cycles: 2,
			Counts: machine.Counts{machine.EvInstr: 3, machine.EvFlopsPackedDP: 1},
			Vector: true,
		},
	}}, 0)
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	r := col.Read()

	// Events measured on core 1 (column 1), nothing on the others.
	packed := r.Counts["FP_COMP_OPS_EXE_SSE_FP_PACKED"]
	if math.Abs(packed[1]-elems) > 1 {
		t.Errorf("packed on core 1 = %v, want %v", packed[1], elems)
	}
	for _, colIdx := range []int{0, 2, 3} {
		if packed[colIdx] != 0 {
			t.Errorf("packed on column %d = %v, want 0", colIdx, packed[colIdx])
		}
	}
	// Fixed events counted implicitly.
	instr := r.Counts["INSTR_RETIRED_ANY"]
	if math.Abs(instr[1]-3*elems) > 1 {
		t.Errorf("INSTR_RETIRED_ANY = %v, want %v", instr[1], 3*elems)
	}
	// Derived metric environment: DP MFlops/s = 2*packed/time/1e6.
	env := r.Env(1, m.Arch.ClockHz())
	if env["time"] <= 0 {
		t.Fatal("time must be positive on the measured core")
	}
	g, err := GroupFor(m.Arch, "FLOPS_DP")
	if err != nil {
		t.Fatal(err)
	}
	expr, _ := CompileExpr(g.Metrics[2].Formula)
	mflops, err := expr.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: elems packed instr * 2 flops over ~elems*2/clock seconds.
	wantTime := 2 * elems / m.Arch.ClockHz()
	want := 1e-6 * 2 * elems / wantTime
	if math.Abs(mflops-want) > want*0.05 {
		t.Errorf("DP MFlops/s = %v, want ≈ %v", mflops, want)
	}
}

func TestCollectorRejectsOverflowWithoutMultiplex(t *testing.T) {
	m := newMachine(t, "core2") // only 2 PMCs
	specs, _ := ParseEventList("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE,L1D_REPL")
	if _, err := NewCollector(m, []int{0}, specs, Options{}); err == nil {
		t.Fatal("3 PMC events on 2 counters must fail without multiplexing")
	}
	if _, err := NewCollector(m, []int{0}, specs, Options{Multiplex: true}); err != nil {
		t.Fatalf("multiplex mode must accept: %v", err)
	}
}

func TestCollectorCounterConstraints(t *testing.T) {
	m := newMachine(t, "westmereEP")
	// A core event cannot be pinned to an uncore counter.
	specs := []EventSpec{{Event: "L1D_REPL", Counter: "UPMC0"}}
	if _, err := NewCollector(m, []int{0}, specs, Options{}); err == nil {
		t.Error("domain mismatch must fail")
	}
	if _, err := NewCollector(m, []int{0}, []EventSpec{{Event: "NO_SUCH_EVENT"}}, Options{}); err == nil {
		t.Error("unknown event must fail")
	}
	if _, err := NewCollector(m, []int{99}, nil, Options{}); err == nil {
		t.Error("nonexistent cpu must fail")
	}
	if _, err := NewCollector(m, []int{0, 0}, nil, Options{}); err == nil {
		t.Error("duplicate cpu must fail")
	}
}

func TestUncoreSocketLock(t *testing.T) {
	m := newMachine(t, "nehalemEP")
	// Work on two cores of socket 0, measuring an uncore event on all
	// four cores of the socket.
	var works []*machine.ThreadWork
	for _, cpu := range []int{0, 1} {
		task := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(task, cpu); err != nil {
			t.Fatal(err)
		}
		works = append(works, &machine.ThreadWork{
			Task: task, Elems: 1e7,
			PerElem: machine.PerElem{
				Cycles: 1, MemReadBytes: 16, MemWriteBytes: 8,
				Streams: 3, Vector: true,
			},
		})
	}
	specs, _ := ParseEventList("UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1")
	col, err := NewCollector(m, []int{0, 1, 2, 3}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	m.RunPhase(works, 0)
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	r := col.Read()
	in := r.Counts["UNC_L3_LINES_IN_ANY"]
	// Socket lock: only column 0 (leader of socket 0) carries counts.
	wantLines := 16.0 * 2e7 / 64
	if math.Abs(in[0]-wantLines) > wantLines*0.01 {
		t.Errorf("leader lines-in = %v, want ≈ %v", in[0], wantLines)
	}
	for i := 1; i < 4; i++ {
		if in[i] != 0 {
			t.Errorf("non-leader column %d has uncore count %v (double counting!)", i, in[i])
		}
	}
	// The sum over all columns must equal the true socket count exactly
	// once — the invariant socket locks exist to protect.
	var sum float64
	for _, v := range in {
		sum += v
	}
	if math.Abs(sum-wantLines) > wantLines*0.01 {
		t.Errorf("total lines-in = %v, want %v (counted once)", sum, wantLines)
	}
}

func TestMultiplexExtrapolation(t *testing.T) {
	m := newMachine(t, "core2") // 2 PMCs force multiplexing for 4 events
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	specs, _ := ParseEventList("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE,L1D_REPL,L2_LINES_IN_ANY")
	col, err := NewCollector(m, []int{0}, specs, Options{Multiplex: true, MuxInterval: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if col.NumSets() != 2 {
		t.Fatalf("sets = %d, want 2", col.NumSets())
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	const elems = 4e7 // long run so extrapolation converges
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{
			Cycles: 2,
			Counts: machine.Counts{
				machine.EvInstr:         3,
				machine.EvFlopsPackedDP: 1,
				machine.EvL1LinesIn:     0.125,
			},
			Vector: true,
		},
	}}, 0)
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	r := col.Read()
	if !r.Scaled {
		t.Error("results must be flagged as multiplex-scaled")
	}
	packed := r.Counts["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"][0]
	if math.Abs(packed-elems) > elems*0.10 {
		t.Errorf("extrapolated packed count = %v, want %v ± 10%%", packed, elems)
	}
	l1 := r.Counts["L1D_REPL"][0]
	if math.Abs(l1-elems*0.125) > elems*0.125*0.10 {
		t.Errorf("extrapolated L1D_REPL = %v, want %v ± 10%%", l1, elems*0.125)
	}
	// Fixed events are never scaled and must be exact.
	if instr := r.Counts["INSTR_RETIRED_ANY"][0]; math.Abs(instr-3*elems) > 1 {
		t.Errorf("INSTR_RETIRED_ANY = %v, want exactly %v", instr, 3*elems)
	}
}

func TestAMDMandatoryEventsOccupyPMCs(t *testing.T) {
	m := newMachine(t, "istanbul")
	specs, _ := ParseEventList("RETIRED_SSE_OPERATIONS_PACKED_DOUBLE,RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE")
	col, err := NewCollector(m, []int{0}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 mandatory + 2 requested = exactly the 4 K10 counters, one set.
	if col.NumSets() != 1 {
		t.Fatalf("sets = %d, want 1", col.NumSets())
	}
	// One more PMC event must overflow.
	specs3, _ := ParseEventList("RETIRED_SSE_OPERATIONS_PACKED_DOUBLE,RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE,DATA_CACHE_REFILLS_ALL")
	if _, err := NewCollector(m, []int{0}, specs3, Options{}); err == nil {
		t.Error("5 events on 4 AMD counters must fail without multiplexing")
	}
}

func TestGroupAvailabilityMatrix(t *testing.T) {
	// The 11 groups of the paper, with per-arch availability following
	// native event support.
	all := []string{"FLOPS_DP", "FLOPS_SP", "L2", "L3", "MEM", "CACHE", "L2CACHE", "L3CACHE", "DATA", "BRANCH", "TLB"}
	wantAvailable := map[string][]string{
		"westmereEP": all,
		"nehalemEP":  all,
		"core2":      {"FLOPS_DP", "FLOPS_SP", "L2", "L3", "MEM", "CACHE", "L2CACHE", "DATA", "BRANCH", "TLB"},
		"istanbul":   all,
		"k8":         {"FLOPS_DP", "FLOPS_SP", "L2", "L3", "CACHE", "L2CACHE", "DATA", "BRANCH", "TLB"},
		"pentiumM":   {"FLOPS_DP", "FLOPS_SP", "MEM", "BRANCH", "TLB"},
	}
	for archName, want := range wantAvailable {
		a, err := hwdef.Lookup(archName)
		if err != nil {
			t.Fatal(err)
		}
		got := GroupNames(a)
		gotSet := map[string]bool{}
		for _, g := range got {
			gotSet[g] = true
		}
		for _, g := range want {
			if !gotSet[g] {
				t.Errorf("%s: group %s missing (got %v)", archName, g, got)
			}
		}
	}
	// L3CACHE must not resolve on Core 2 (no L3, no uncore).
	a, _ := hwdef.Lookup("core2")
	if _, err := GroupFor(a, "L3CACHE"); err == nil {
		t.Error("L3CACHE on core2 must fail")
	}
}

func TestAllGroupsCompileAndResolve(t *testing.T) {
	for _, archName := range hwdef.Names() {
		a, _ := hwdef.Lookup(archName)
		for _, gName := range GroupNames(a) {
			g, err := GroupFor(a, gName)
			if err != nil {
				t.Errorf("%s/%s: %v", archName, gName, err)
				continue
			}
			for _, mtr := range g.Metrics {
				expr, err := CompileExpr(mtr.Formula)
				if err != nil {
					t.Errorf("%s/%s/%s: %v", archName, gName, mtr.Name, err)
					continue
				}
				// Every referenced variable must be an event of the
				// group, a mandatory event, or a pseudo-variable.
				valid := map[string]bool{"time": true, "clock": true,
					"INSTR_RETIRED_ANY": true, "CPU_CLK_UNHALTED_CORE": true}
				for _, ev := range g.Events {
					valid[ev] = true
				}
				for _, v := range expr.Vars() {
					if !valid[v] {
						t.Errorf("%s/%s/%s references %q which is not measured", archName, gName, mtr.Name, v)
					}
				}
			}
		}
	}
}

func TestReportRendering(t *testing.T) {
	m := newMachine(t, "core2")
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	g, err := GroupFor(m.Arch, "FLOPS_DP")
	if err != nil {
		t.Fatal(err)
	}
	var specs []EventSpec
	for _, ev := range g.Events {
		specs = append(specs, EventSpec{Event: ev})
	}
	col, err := NewCollector(m, []int{0, 1, 2, 3}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col.Start()
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: 1e6,
		PerElem: machine.PerElem{Cycles: 2, Counts: machine.Counts{machine.EvInstr: 3, machine.EvFlopsPackedDP: 1}, Vector: true},
	}}, 0)
	col.Stop()
	out := Header(m.Arch.ModelName, m.Arch.ClockMHz) + Report(col.Read(), &g, m.Arch.ClockHz())
	for _, want := range []string{
		"CPU type:\tIntel Core 2 45nm processor",
		"CPU clock:\t2.83 GHz",
		"| Event",
		"| core 0 | core 1 | core 2 | core 3 |",
		"INSTR_RETIRED_ANY",
		"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
		"| Metric",
		"Runtime [s]",
		"CPI",
		"DP MFlops/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n%s", want, out)
		}
	}
}

func TestExprEngine(t *testing.T) {
	cases := []struct {
		src  string
		env  map[string]float64
		want float64
	}{
		{"1+2*3", nil, 7},
		{"(1+2)*3", nil, 9},
		{"-4+6", nil, 2},
		{"1.0E-06*2000000", nil, 2},
		{"A/B", map[string]float64{"A": 10, "B": 4}, 2.5},
		{"A/B", map[string]float64{"A": 10, "B": 0}, 0}, // div by zero -> 0
		{"1.0E-06*(X*2+Y)/time", map[string]float64{"X": 3e6, "Y": 1e6, "time": 2}, 3.5},
	}
	for _, c := range cases {
		expr, err := CompileExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		got, err := expr.Eval(c.env)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	for _, src := range []string{"", "1+", "(1", "1)", "a b", "1..2", "$x"} {
		if _, err := CompileExpr(src); err == nil {
			t.Errorf("CompileExpr(%q) must fail", src)
		}
	}
	expr, _ := CompileExpr("UNKNOWN_EVENT+1")
	if _, err := expr.Eval(map[string]float64{}); err == nil {
		t.Error("evaluating unknown variable must fail")
	}
}

func TestExprVars(t *testing.T) {
	expr, err := CompileExpr("1.0E-06*(FP_A*2+FP_B)/time")
	if err != nil {
		t.Fatal(err)
	}
	vars := expr.Vars()
	want := map[string]bool{"FP_A": true, "FP_B": true, "time": true}
	if len(vars) != len(want) {
		t.Fatalf("vars = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %q", v)
		}
	}
}
