// Hybrid-mpi: the paper's §II-C hybrid pinning scenario —
//
//	$ export OMP_NUM_THREADS=8
//	$ mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out
//
// — scaled to one simulated node: two Intel-MPI ranks, each with an Intel
// OpenMP team, pinned with the 0x3 skip mask so neither the MPI
// communication thread nor the OpenMP shepherd consumes a core slot.  The
// example then shows what goes wrong without the skip mask.
//
// Run with: go run ./examples/hybrid-mpi
package main

import (
	"fmt"
	"log"

	"likwid"
	"likwid/internal/machine"
	"likwid/internal/mpi"
	"likwid/internal/workloads/stream"
)

func main() {
	run := func(label string, mask uint64) {
		node, err := likwid.Open("westmereEP")
		if err != nil {
			log.Fatal(err)
		}
		ranks, err := mpi.Launch(node.M, mpi.LaunchSpec{
			Ranks: 2, ThreadsPerRank: 6,
			Runtime:  likwid.RuntimeIntelOMP,
			SkipMask: mask,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (skip mask %#x):\n", label, mask)
		for i, placement := range mpi.Placement(ranks) {
			fmt.Printf("  rank %d workers on cores %v\n", i, placement)
		}
		pe := stream.PerElemFor(stream.ICC)
		var works []*likwid.ThreadWork
		for _, r := range ranks {
			for _, w := range r.Team.Workers {
				works = append(works, &machine.ThreadWork{Task: w, Elems: 2e6, PerElem: pe})
			}
		}
		elapsed := node.Run(works)
		bw := 12 * 2e6 * stream.BytesPerElem / elapsed / 1e6
		fmt.Printf("  aggregate bandwidth: %.0f MB/s\n\n", bw)
	}

	// Correct: 0x3 skips the MPI shepherd and the OpenMP shepherd.
	run("correct hybrid pinning", 0x3)
	// Wrong: without the mask, both shepherds consume core-list slots,
	// shifting workers onto wrong cores and off the end of the list.
	run("without the skip mask", 0x4000) // mask with no low bits set
}
