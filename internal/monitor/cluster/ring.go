package cluster

import (
	"sort"

	"likwid/internal/monitor"
)

// DefaultVirtualNodes is the ring positions each target owns.  More
// vnodes smooth the partition (the balance property test holds ±20 %
// across 5 targets at 160) at the cost of a larger sorted ring; lookups
// stay one binary search either way.
const DefaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring over a target set: each
// target owns vnodes pseudo-random positions on the 64-bit circle, and a
// key belongs to the target owning the first position at or after the
// key's hash (wrapping).  Because a target's positions depend only on
// its own name, membership changes remap only the keys whose owning
// position vanished (leave) or was newly claimed (join) — ≤ ~K/N of K
// keys per single-target change — while every other key stays put.
// Rebuild a new ring on membership change and swap it atomically; the
// zero-cost reads need no lock.
type Ring struct {
	vnodes  []ringNode
	targets []string
}

type ringNode struct {
	hash   uint64
	target int32 // index into targets
}

// NewRing builds a ring over the target names with vnodes positions
// each (DefaultVirtualNodes when vnodes <= 0).  An empty target set
// yields an empty ring whose Lookup returns "".
func NewRing(targets []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{targets: append([]string(nil), targets...)}
	r.vnodes = make([]ringNode, 0, len(targets)*vnodes)
	for ti, name := range r.targets {
		// Each vnode position hashes the target name plus a replica
		// counter — independent of every other target, which is what
		// makes remaps minimal on membership change.
		h := uint64(fnvOffset)
		h = fnvString(h, name)
		for i := 0; i < vnodes; i++ {
			h2 := fnvByte(h, '#')
			h2 = fnvUint64(h2, uint64(i))
			r.vnodes = append(r.vnodes, ringNode{hash: mix64(h2), target: int32(ti)})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A 64-bit collision between two targets' vnodes is astronomically
		// unlikely but must still order deterministically, or two agents
		// could disagree about the owner.
		return r.targets[a.target] < r.targets[b.target]
	})
	return r
}

// Lookup returns the target owning hash h, or "" on an empty ring.
func (r *Ring) Lookup(h uint64) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap past the highest position
	}
	return r.targets[r.vnodes[i].target]
}

// LookupKey returns the target owning a series key.
func (r *Ring) LookupKey(k monitor.Key) string { return r.Lookup(KeyHash(k)) }

// Targets returns the member names the ring was built over.
func (r *Ring) Targets() []string { return r.targets }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.targets) }

// VNodes reports the total ring positions (members × virtual nodes).
func (r *Ring) VNodes() int { return len(r.vnodes) }

// FNV-1a, inlined so hashing a Key allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// mix64 is the 64-bit avalanche finalizer (the MurmurHash3 fmix64
// constants): FNV-1a alone leaves correlated high bits on short,
// low-entropy inputs like "name#counter", which clumps vnode positions
// on the circle and skews the partition far beyond ±20 %.  One extra
// mix spreads the positions uniformly.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// KeyHash positions one interned series key on the ring: every
// dimension of the key — source, metric, scope, id, canonical label
// set — feeds the hash, separated by NUL so ("a","bc") and ("ab","c")
// cannot collide.  All agents and receivers hash identically, so a
// shard pool agrees on ownership without coordination.
func KeyHash(k monitor.Key) uint64 {
	h := uint64(fnvOffset)
	h = fnvString(h, k.Source)
	h = fnvByte(h, 0)
	h = fnvString(h, k.Metric)
	h = fnvByte(h, 0)
	h = fnvUint64(h, uint64(k.Scope))
	h = fnvUint64(h, uint64(k.ID))
	h = fnvString(h, k.Labels.String())
	return mix64(h)
}
