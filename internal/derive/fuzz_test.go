package derive

import (
	"strings"
	"testing"
)

// FuzzDeriveSpec throws arbitrary bytes at the derive-file parser: it
// must never panic, and every accepted declaration must round-trip
// through its canonical rendering (parse → render → parse yields the
// same rendering — the property GET /derive and reload diffing rely
// on).
func FuzzDeriveSpec(f *testing.F) {
	seeds := []string{
		`cluster_flops = sum(flops_dp{cluster="emmy"}) by (source) over 30s every 10s`,
		`fleet_bw = avg(memory_bandwidth_mbytes_s, socket) over 1m`,
		`job_nodes = count(*/dp_mflops_s) by (job, partition) over 30s`,
		`ramp = rate("DP MFlops/s") over 1m30s`,
		`floor = min(node*/bw) over 10s` + "\nceil = max(node*/bw) over 10s",
		"# comment\n\nroute drop */cpu_temp*",
		`route rename */DP_MFLOPS -> flops_dp`,
		`route relabel node*/flops_dp{job="lbm"} set cluster="emmy", rack=""`,
		`x = sum(bw) over 30s nonsense`,
		`route rename bw -> "alert/x"`,
		"x = sum(bw) over 30s\nx = avg(bw) over 30s",
		`x = sum(bw{a="*"}) over 0s`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rules, routes, err := ParseFile(src)
		if err != nil {
			return
		}
		for _, r := range rules {
			rendered := r.String()
			r2, err := ParseRule(rendered, r.Line)
			if err != nil {
				t.Fatalf("accepted rule %q renders unparseable %q: %v", src, rendered, err)
			}
			if got := r2.String(); got != rendered {
				t.Fatalf("rule rendering not canonical: %q -> %q", rendered, got)
			}
		}
		for _, route := range routes {
			if !strings.HasPrefix(route.Spec, "route ") {
				t.Fatalf("route spec %q lacks the route keyword", route.Spec)
			}
			_, reparsed, err := ParseFile(route.Spec)
			if err != nil {
				t.Fatalf("accepted route %q renders unparseable %q: %v", src, route.Spec, err)
			}
			if len(reparsed) != 1 || reparsed[0].Spec != route.Spec {
				t.Fatalf("route rendering not canonical: %q -> %+v", route.Spec, reparsed)
			}
		}
	})
}
