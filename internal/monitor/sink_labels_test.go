package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// labelledBatch is one fleet batch with a mix of labelled and
// unlabelled samples.
func labelledBatch(t *testing.T) Batch {
	return Batch{
		Collector: "perfgroup/MEM_DP",
		Time:      0.5,
		Samples: []Sample{
			{Source: "nodeA", Metric: "bw", Scope: ScopeSocket, ID: 0, Time: 0.5, Value: 100,
				Labels: mustLabels(t, "job=lbm,cluster=emmy")},
			{Source: "nodeB", Metric: "bw", Scope: ScopeSocket, ID: 0, Time: 0.5, Value: 200},
		},
	}
}

func TestTableSinkLabelsColumn(t *testing.T) {
	var buf bytes.Buffer
	s := NewTableSink(&buf)
	if err := s.Write(labelledBatch(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Source", "Labels", "cluster=emmy,job=lbm", "nodeA", "nodeB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// A plain local batch keeps the compact table: no Labels column.
	buf.Reset()
	if err := s.Write(Batch{Collector: "c", Samples: []Sample{
		{Metric: "bw", Scope: ScopeNode, Value: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Labels") {
		t.Errorf("unlabelled batch grew a Labels column:\n%s", buf.String())
	}
}

func TestCSVSinkLabelsColumn(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf, nil)
	if err := s.Write(labelledBatch(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time,collector,source,labels,metric,scope,id,value" {
		t.Errorf("header = %q", lines[0])
	}
	if want := `0.500000,perfgroup/MEM_DP,nodeA,"cluster=emmy,job=lbm",bw,socket,0,100`; lines[1] != want {
		t.Errorf("labelled row = %q, want %q", lines[1], want)
	}
	// The unlabelled sample keeps an empty (not quoted-empty) cell.
	if want := `0.500000,perfgroup/MEM_DP,nodeB,,bw,socket,0,200`; lines[2] != want {
		t.Errorf("unlabelled row = %q, want %q", lines[2], want)
	}
}

func TestJSONLSinkLabelsField(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf, nil)
	if err := s.Write(labelledBatch(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var rec struct {
		Labels map[string]string `json:"labels"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Labels["job"] != "lbm" || rec.Labels["cluster"] != "emmy" {
		t.Errorf("jsonl labels = %v", rec.Labels)
	}
	if strings.Contains(lines[1], "labels") {
		t.Errorf("unlabelled record carries a labels field: %s", lines[1])
	}
}

// TestSchedulerStampsLabels covers the agent half of -labels: every
// sample of every batch — roll-ups included — carries the configured
// set by the time it reaches the store and the dispatcher.
func TestSchedulerStampsLabels(t *testing.T) {
	clock := NewFakeClock()
	store := NewStore(16)
	ls := mustLabels(t, "cluster=emmy,job=lbm")
	own := mustLabels(t, "gpu=0,job=own")
	sched := NewScheduler(SchedulerOptions{Clock: clock, Store: store, Labels: ls})
	sched.Add(&stubCollector{name: "stub", interval: time.Second, samples: func(tick int) []Sample {
		return []Sample{
			{Metric: "bw", Scope: ScopeNode, Time: float64(tick), Value: float64(tick)},
			// A collector that labels its own samples: its labels win per
			// name, the agent identity fills in underneath.
			{Metric: "gpu_bw", Scope: ScopeNode, Labels: own, Time: float64(tick), Value: float64(tick)},
		}
	}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sched.Run(ctx); close(done) }()
	for i := 0; i < 3; i++ {
		waitForWaiters(t, clock, 1)
		clock.Advance(time.Second)
	}
	waitForWaiters(t, clock, 1)
	cancel()
	<-done

	labelled := Key{Metric: "bw", Scope: ScopeNode, Labels: ls}
	if n := store.Len(labelled); n == 0 {
		t.Fatalf("no points on the labelled key; store keys: %+v", store.Keys())
	}
	if n := store.Len(Key{Metric: "bw", Scope: ScopeNode}); n != 0 {
		t.Errorf("unlabelled key has %d points, want everything stamped", n)
	}
	// The collector's own labels survived (job=own beat the agent's
	// job=lbm) and the agent's cluster filled in underneath.
	merged := Key{Metric: "gpu_bw", Scope: ScopeNode, Labels: mustLabels(t, "cluster=emmy,gpu=0,job=own")}
	if n := store.Len(merged); n == 0 {
		t.Errorf("no points on the merged key; store keys: %+v", store.Keys())
	}
}

// TestSchedulerStampYieldsOnOverflow pins the wire-cap invariant on the
// agent stamp: when the agent set unioned with a collector's own labels
// would exceed maxLabels, the stamp yields and the sample keeps the
// collector's (wire-valid) set instead of shipping an over-cap union
// every receiver would 400.
func TestSchedulerStampYieldsOnOverflow(t *testing.T) {
	clock := NewFakeClock()
	store := NewStore(16)
	agentSpec := make([]string, 0, 9)
	ownSpec := make([]string, 0, 9)
	for i := 0; i < 9; i++ {
		agentSpec = append(agentSpec, fmt.Sprintf("a%d=x", i))
		ownSpec = append(ownSpec, fmt.Sprintf("o%d=x", i))
	}
	own := mustLabels(t, strings.Join(ownSpec, ","))
	sched := NewScheduler(SchedulerOptions{
		Clock: clock, Store: store,
		Labels: mustLabels(t, strings.Join(agentSpec, ",")),
	})
	sched.Add(&stubCollector{name: "stub", interval: time.Second, samples: func(tick int) []Sample {
		return []Sample{{Metric: "bw", Scope: ScopeNode, Labels: own, Time: float64(tick), Value: 1}}
	}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sched.Run(ctx); close(done) }()
	waitForWaiters(t, clock, 1)
	clock.Advance(time.Second)
	waitForWaiters(t, clock, 1)
	cancel()
	<-done
	if n := store.Len(Key{Metric: "bw", Scope: ScopeNode, Labels: own}); n == 0 {
		t.Fatalf("overflowing stamp did not yield to the collector's own set; keys: %+v", store.Keys())
	}
	for _, k := range store.Keys() {
		if k.Labels.Len() > maxLabels {
			t.Fatalf("store holds an over-cap label set: %q", k.Labels)
		}
	}
}

// stubCollector emits one deterministic sample per tick.
type stubCollector struct {
	name     string
	interval time.Duration
	tick     int
	samples  func(tick int) []Sample
}

func (s *stubCollector) Name() string            { return s.name }
func (s *stubCollector) Scope() Scope            { return ScopeNode }
func (s *stubCollector) Interval() time.Duration { return s.interval }
func (s *stubCollector) Collect(context.Context) ([]Sample, error) {
	s.tick++
	return s.samples(s.tick), nil
}
