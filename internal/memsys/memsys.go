// Package memsys models the ccNUMA memory system of a node: one integrated
// memory controller per socket with a finite sustained bandwidth, max-min
// fair arbitration among the cores that demand it, a bandwidth penalty for
// remote (cross-socket) traffic, and reduced bus efficiency for
// non-temporal store streams.
//
// The model captures the two effects the paper's case studies hinge on:
//
//   - Saturation: a few streaming cores saturate a socket's controller, so
//     unpinned placements that land all threads on one socket halve the
//     STREAM bandwidth (Figs. 4-10).
//   - Single-stream limit: one load stream cannot saturate the bus, which
//     is why the temporally blocked Jacobi's 4.5× traffic reduction buys
//     only a 1.7× speedup (Table II discussion).
package memsys

import (
	"fmt"

	"likwid/internal/hwdef"
)

// Demand is one task's memory-bandwidth request for a time slice.
type Demand struct {
	Task       int     // opaque task identifier, echoed in the grant
	HomeSocket int     // socket whose controller owns the pages (first touch)
	FromSocket int     // socket the requesting core sits on
	Bytes      float64 // demanded bandwidth in bytes/s
	NTFraction float64 // fraction of the traffic that is non-temporal stores
}

// Grant is the arbitrated bandwidth for one demand.
type Grant struct {
	Task  int
	Bytes float64 // granted bandwidth in bytes/s
}

// System is the memory system of one node.
type System struct {
	arch *hwdef.Arch
}

// New builds the memory system for an architecture.
func New(a *hwdef.Arch) *System { return &System{arch: a} }

// Arbitrate distributes controller bandwidth across the demands of one time
// slice and returns per-task grants in the same order.
//
// Algorithm: demands are grouped by home controller and water-filled
// (max-min fairness) against the controller's capacity.  A demand's
// *effective* capacity cost is inflated by the NT-store efficiency factor
// and by the remote-access penalty when the requesting core is on a
// different socket than the memory.
func (s *System) Arbitrate(demands []Demand) []Grant {
	grants := make([]Grant, len(demands))
	byHome := make(map[int][]int)
	for i, d := range demands {
		grants[i] = Grant{Task: d.Task}
		byHome[d.HomeSocket] = append(byHome[d.HomeSocket], i)
	}
	for home, idxs := range byHome {
		_ = home
		// Effective demand in controller-capacity units.
		eff := make([]float64, len(idxs))
		for j, i := range idxs {
			eff[j] = s.effectiveCost(demands[i])
		}
		granted := Waterfill(s.arch.Perf.SocketMemBW, eff)
		for j, i := range idxs {
			if eff[j] <= 0 {
				continue
			}
			// Convert the granted capacity back to payload bytes.
			grants[i].Bytes = granted[j] * (demands[i].Bytes / eff[j])
		}
	}
	return grants
}

// effectiveCost converts a payload demand into controller-capacity units.
func (s *System) effectiveCost(d Demand) float64 {
	if d.Bytes <= 0 {
		return 0
	}
	cost := d.Bytes
	if nt := clamp01(d.NTFraction); nt > 0 {
		// NT streams use the bus less efficiently; the controller burns
		// proportionally more capacity per payload byte.
		ntEff := s.arch.Perf.NTStoreEfficiency
		cost = d.Bytes * ((1 - nt) + nt/ntEff)
	}
	if d.FromSocket != d.HomeSocket {
		// Remote traffic crosses the socket interconnect.
		cost /= s.arch.Perf.RemoteFactor
	}
	return cost
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Waterfill implements max-min fair sharing: capacity is divided equally
// among unsatisfied demands, freed slack is redistributed, and no demand
// receives more than it asked for.  It returns the grant per demand.
func Waterfill(capacity float64, demands []float64) []float64 {
	grants := make([]float64, len(demands))
	if capacity <= 0 {
		return grants
	}
	remaining := capacity
	active := make([]int, 0, len(demands))
	for i, d := range demands {
		if d > 0 {
			active = append(active, i)
		}
	}
	for len(active) > 0 && remaining > 1e-9 {
		share := remaining / float64(len(active))
		next := active[:0]
		progressed := false
		for _, i := range active {
			need := demands[i] - grants[i]
			if need <= share {
				grants[i] = demands[i]
				remaining -= need
				progressed = true
				continue
			}
			next = append(next, i)
		}
		if !progressed {
			// Everyone still needs at least a full share: hand it out.
			for _, i := range next {
				grants[i] += share
			}
			remaining = 0
		}
		active = next
	}
	return grants
}

// SingleStreamCap returns the per-task bandwidth ceiling implied by its
// concurrency: a single leading stream cannot saturate the controller.
// Vectorized multi-stream kernels reach CoreTriadBW, scalar ones
// CoreScalarBW.
func (s *System) SingleStreamCap(streams int, vector bool) float64 {
	p := s.arch.Perf
	if streams <= 1 {
		return p.SingleStreamBW
	}
	if vector {
		return p.CoreTriadBW
	}
	return p.CoreScalarBW
}

// Validate sanity-checks the model parameters.
func (s *System) Validate() error {
	p := s.arch.Perf
	if p.SocketMemBW <= 0 {
		return fmt.Errorf("memsys: %s has no controller bandwidth", s.arch.Name)
	}
	if p.NTStoreEfficiency <= 0 || p.NTStoreEfficiency > 1 {
		return fmt.Errorf("memsys: %s NT efficiency %v out of (0,1]", s.arch.Name, p.NTStoreEfficiency)
	}
	return nil
}
