// Package stats provides the sample statistics the case studies report:
// the paper's STREAM figures are box plots over 100 samples per thread
// count, so the experiment drivers need quartiles, medians and spreads.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary are the box-plot statistics of one sample set.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	Stddev float64
}

// Summarize computes the summary of a sample set.  It copies the input
// before sorting.
func Summarize(samples []float64) Summary {
	return SummarizeInPlace(append([]float64(nil), samples...))
}

// SummarizeInPlace computes the summary of a sample set, sorting the
// slice in place.  It is the allocation-free variant for hot paths that
// own a scratch buffer (the monitor store's bucket compaction seals one
// bucket per resolution interval per series).
func SummarizeInPlace(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := samples
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		sq += (v - mean) * (v - mean)
	}
	stddev := 0.0
	if len(s) > 1 {
		stddev = math.Sqrt(sq / float64(len(s)-1))
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		Stddev: stddev,
	}
}

// Quantile returns the q-quantile (0..1) of an ascending-sorted sample set
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IQR is the interquartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// String renders one box-plot row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.0f q1=%.0f med=%.0f q3=%.0f max=%.0f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max)
}
