package monitor

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func newTestHTTPSink(t *testing.T) (*HTTPSink, *Store) {
	t.Helper()
	store := NewStore(16)
	h, err := NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h, store
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPSinkMetricsAndQuery(t *testing.T) {
	h, store := newTestHTTPSink(t)
	batch := goldenBatches()[0]
	store.AppendBatch(batch)
	if err := h.Write(batch); err != nil {
		t.Fatal(err)
	}
	base := "http://" + h.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `likwid_memory_bandwidth_mbytes_s{scope="socket",id="0"} 13714.3`) {
		t.Errorf("/metrics missing socket bandwidth line:\n%s", body)
	}
	if !strings.Contains(body, `likwid_dp_mflops_s{scope="thread",id="0"} 571.25`) {
		t.Errorf("/metrics missing thread flops line:\n%s", body)
	}

	code, body = get(t, base+"/query?metric=memory_bandwidth_mbytes_s&scope=socket&id=0")
	if code != http.StatusOK {
		t.Fatalf("/query status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad /query JSON %q: %v", body, err)
	}
	if len(resp.Points) != 1 || resp.Points[0].Value != 13714.285 {
		t.Errorf("/query points = %+v, want one 13714.285", resp.Points)
	}

	// The sanitized exposition name resolves to the stored metric too.
	code, body = get(t, base+"/query?metric=likwid_memory_bandwidth_mbytes_s&scope=socket&id=0")
	if code != http.StatusOK {
		t.Fatalf("/query by exposition name status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil || len(resp.Points) != 1 {
		t.Errorf("/query by exposition name = %q (err %v)", body, err)
	}

	if code, _ = get(t, base+"/query"); code != http.StatusBadRequest {
		t.Errorf("/query without metric: status %d, want 400", code)
	}
	if code, _ = get(t, base+"/query?metric=x&scope=galaxy"); code != http.StatusBadRequest {
		t.Errorf("/query with bad scope: status %d, want 400", code)
	}
	if code, _ = get(t, base+"/query?metric=x&from=1.5x"); code != http.StatusBadRequest {
		t.Errorf("/query with bad from: status %d, want 400", code)
	}
	if code, _ = get(t, base+"/query?metric=x&to=nope"); code != http.StatusBadRequest {
		t.Errorf("/query with bad to: status %d, want 400", code)
	}
	if code, body = get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
}

func TestHTTPSinkWindowedQuery(t *testing.T) {
	h, store := newTestHTTPSink(t)
	k := Key{Metric: "bw", Scope: ScopeNode, ID: 0}
	for i := 0; i < 6; i++ {
		store.Append(k, Point{Time: float64(i), Value: float64(i * 10)})
	}
	code, body := get(t, "http://"+h.Addr()+"/query?metric=bw&scope=node&from=2&to=4")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 3 || resp.Points[0].Time != 2 || resp.Points[2].Time != 4 {
		t.Errorf("windowed points = %+v, want times 2..4", resp.Points)
	}
}

// ---- /ingest ---------------------------------------------------------------

func postIngest(t *testing.T, base string, body []byte, gzipped bool) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func gzipped(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestAcceptsPlainAndGzippedBatches(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	payload := []byte(`{"time":0.5,"collector":"c","metric":"bw","scope":"node","id":0,"value":100}
{"time":1.0,"collector":"c","metric":"bw","scope":"node","id":0,"value":200}
`)
	code, body := postIngest(t, base, payload, false)
	if code != http.StatusOK || !strings.Contains(body, `"accepted":2`) {
		t.Fatalf("plain ingest = %d %q, want 200 accepted:2", code, body)
	}
	code, body = postIngest(t, base, gzipped(t, []byte(`{"time":1.5,"collector":"c","metric":"bw","scope":"node","id":0,"value":300}`+"\n")), true)
	if code != http.StatusOK || !strings.Contains(body, `"accepted":1`) {
		t.Fatalf("gzip ingest = %d %q, want 200 accepted:1", code, body)
	}

	k := Key{Metric: "bw", Scope: ScopeNode, ID: 0}
	pts := store.Window(k, 0, -1)
	if len(pts) != 3 || pts[2].Value != 300 {
		t.Fatalf("store after ingest = %+v, want the 3 pushed points", pts)
	}
	// /metrics reflects the ingested series.
	code, body = get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, `likwid_bw{scope="node",id="0"} 300`) {
		t.Errorf("/metrics after ingest = %d %q", code, body)
	}
	// /healthz counts ingested samples.
	if _, body = get(t, base+"/healthz"); !strings.Contains(body, `"ingested":3`) {
		t.Errorf("/healthz = %q, want ingested:3", body)
	}
}

func TestIngestRejectsMalformedPayloads(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	valid := `{"time":1,"collector":"c","metric":"ok","scope":"node","id":0,"value":1}` + "\n"
	tests := []struct {
		name   string
		body   []byte
		gzip   bool
		status int
	}{
		{"not json", []byte("hello\n"), false, http.StatusBadRequest},
		{"truncated object", []byte(`{"time":1,"metric":`), false, http.StatusBadRequest},
		{"bad scope", []byte(`{"time":1,"metric":"bw","scope":"galaxy","id":0,"value":1}` + "\n"), false, http.StatusBadRequest},
		{"empty metric", []byte(`{"time":1,"metric":" ","scope":"node","id":0,"value":1}` + "\n"), false, http.StatusBadRequest},
		{"negative id", []byte(`{"time":1,"metric":"bw","scope":"node","id":-1,"value":1}` + "\n"), false, http.StatusBadRequest},
		{"negative time", []byte(`{"time":-1,"metric":"bw","scope":"node","id":0,"value":1}` + "\n"), false, http.StatusBadRequest},
		{"value overflow", []byte(`{"time":1,"metric":"bw","scope":"node","id":0,"value":1e999}` + "\n"), false, http.StatusBadRequest},
		{"corrupt gzip", []byte("\x1f\x8b\x08garbage"), true, http.StatusBadRequest},
		{"plain body claimed gzip", []byte(valid), true, http.StatusBadRequest},
		{"good then bad is all-or-nothing", []byte(valid + "{bad}\n"), false, http.StatusBadRequest},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, body := postIngest(t, base, tt.body, tt.gzip)
			if code != tt.status {
				t.Errorf("status = %d %q, want %d", code, body, tt.status)
			}
		})
	}
	// Nothing leaked into the store, not even from the mixed batch.
	if n := len(store.Keys()); n != 0 {
		t.Errorf("store has %d series after rejected ingests, want 0", n)
	}

	if code, _ := get(t, base+"/ingest"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest = %d, want 405", code)
	}
	req, _ := http.NewRequest(http.MethodPost, base+"/ingest", strings.NewReader("x"))
	req.Header.Set("Content-Encoding", "br")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("br-encoded ingest = %d, want 415", resp.StatusCode)
	}
}

func TestIngestWithoutStoreIsNotImplemented(t *testing.T) {
	h, err := NewHTTPSink("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	code, _ := postIngest(t, "http://"+h.Addr(), []byte("{}"), false)
	if code != http.StatusNotImplemented {
		t.Errorf("ingest without store = %d, want 501", code)
	}
}

func TestIngestSourceBecomesKeyDimension(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	payload := []byte(`{"time":1,"collector":"c","source":"nodeA-7","metric":"bw","scope":"node","id":0,"value":10}
{"time":1,"collector":"c","source":"nodeB-9","metric":"bw","scope":"node","id":0,"value":20}
`)
	if code, body := postIngest(t, base, payload, false); code != http.StatusOK {
		t.Fatalf("ingest = %d %q", code, body)
	}
	a := store.Window(Key{Source: "nodeA-7", Metric: "bw", Scope: ScopeNode, ID: 0}, 0, -1)
	b := store.Window(Key{Source: "nodeB-9", Metric: "bw", Scope: ScopeNode, ID: 0}, 0, -1)
	if len(a) != 1 || len(b) != 1 || a[0].Value != 10 || b[0].Value != 20 {
		t.Errorf("sourced series = %+v / %+v, want one point each", a, b)
	}
	if pts := store.Window(Key{Metric: "bw", Scope: ScopeNode, ID: 0}, 0, -1); pts != nil {
		t.Errorf("sourceless series exists with %d points, want none", len(pts))
	}
	// The metric name is never mangled: no "SOURCE/metric" series appears.
	if pts := store.Window(Key{Metric: "nodeA-7/bw", Scope: ScopeNode, ID: 0}, 0, -1); pts != nil {
		t.Errorf("prefix-mangled series exists with %d points, want none", len(pts))
	}
	// /metrics carries the source as a label.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, `likwid_bw{source="nodeA-7",scope="node",id="0"} 10`) {
		t.Errorf("/metrics = %d %q, want a source-labelled bw line", code, body)
	}
}

// TestIngestKeepsArbitrarySourceField pins v1 wire parity: an explicit
// source field is stored verbatim even when it is not a plain label (a
// pre-refactor agent was free to configure any string); only the v1
// prefix shim is conservative about what counts as a source.
func TestIngestKeepsArbitrarySourceField(t *testing.T) {
	h, store := newTestHTTPSink(t)
	payload := []byte(`{"time":1,"collector":"c","source":"rack1 node7","metric":"bw","scope":"node","id":0,"value":10}` + "\n")
	if code, body := postIngest(t, "http://"+h.Addr(), payload, false); code != http.StatusOK {
		t.Fatalf("ingest = %d %q, want the odd-but-v1-legal source accepted", code, body)
	}
	k := Key{Source: "rack1 node7", Metric: "bw", Scope: ScopeNode, ID: 0}
	if p, ok := store.Latest(k); !ok || p.Value != 10 {
		t.Fatalf("Latest = %+v (%v), want the sample under its verbatim source", p, ok)
	}
}

// TestIngestMixedVersionsLandOnSameKeys is the compat contract across
// wire generations: a v1 payload (source smuggled as a "SOURCE/metric"
// prefix), a v2 payload (source as its own field) and a v4 binary
// payload of the same series must all land on the same store keys, so
// one Window query stitches history pushed by a mixed-version fleet.
// The v4 leg reuses each case's v2 record re-encoded on the binary wire
// (including the sourceless ones, which must take the same v1 shim).
func TestIngestMixedVersionsLandOnSameKeys(t *testing.T) {
	tests := []struct {
		name    string
		v1, v2  string
		key     Key
		times   []float64
		values  []float64
		listLen int
	}{
		{
			name:   "prefix form equals source field",
			v1:     `{"time":1,"collector":"c","metric":"nodeA/bw","scope":"node","id":0,"value":10}`,
			v2:     `{"time":2,"collector":"c","source":"nodeA","metric":"bw","scope":"node","id":0,"value":20}`,
			key:    Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, ID: 0},
			times:  []float64{1, 2},
			values: []float64{10, 20},
		},
		{
			name:   "reserved namespace is a metric, not a source",
			v1:     `{"time":1,"collector":"c","metric":"topo/socket_hw_threads","scope":"node","id":0,"value":6}`,
			v2:     `{"time":2,"collector":"c","metric":"topo/socket_hw_threads","scope":"node","id":0,"value":6}`,
			key:    Key{Metric: "topo/socket_hw_threads", Scope: ScopeNode, ID: 0},
			times:  []float64{1, 2},
			values: []float64{6, 6},
		},
		{
			name:   "slash after an invalid label stays in the metric",
			v1:     `{"time":1,"collector":"c","metric":"DP MFlops/s","scope":"node","id":0,"value":7}`,
			v2:     `{"time":2,"collector":"c","metric":"DP MFlops/s","scope":"node","id":0,"value":8}`,
			key:    Key{Metric: "DP MFlops/s", Scope: ScopeNode, ID: 0},
			times:  []float64{1, 2},
			values: []float64{7, 8},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, store := newTestHTTPSink(t)
			base := "http://" + h.Addr()
			if code, body := postIngest(t, base, []byte(tt.v1+"\n"), false); code != http.StatusOK {
				t.Fatalf("v1 ingest = %d %q", code, body)
			}
			if code, body := postIngest(t, base, []byte(tt.v2+"\n"), false); code != http.StatusOK {
				t.Fatalf("v2 ingest = %d %q", code, body)
			}
			// v4 leg: the same record on the binary wire at time 3.
			var js jsonSample
			if err := json.Unmarshal([]byte(tt.v2), &js); err != nil {
				t.Fatal(err)
			}
			js.Time = 3
			payload, err := encodeV4([]jsonSample{js})
			if err != nil {
				t.Fatal(err)
			}
			if code, body := postIngest4(t, base, payload, false); code != http.StatusOK {
				t.Fatalf("v4 ingest = %d %q", code, body)
			}
			wantTimes := append(append([]float64{}, tt.times...), 3)
			wantValues := append(append([]float64{}, tt.values...), tt.values[len(tt.values)-1])
			if n := len(store.Keys()); n != 1 {
				t.Fatalf("store has %d series, want all three payloads on one key (keys: %+v)", n, store.Keys())
			}
			pts := store.Window(tt.key, 0, -1)
			if len(pts) != len(wantTimes) {
				t.Fatalf("window = %+v, want %d stitched points", pts, len(wantTimes))
			}
			for i, p := range pts {
				if p.Time != wantTimes[i] || p.Value != wantValues[i] {
					t.Errorf("point %d = %+v, want t=%v v=%v", i, p, wantTimes[i], wantValues[i])
				}
			}
		})
	}
}

// TestQuerySourceParameter covers the /query source dimension: exact
// selection, default local-only, and the '*' wildcard fanning out one
// response entry per source.
func TestQuerySourceParameter(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	store.Append(Key{Metric: "bw", Scope: ScopeNode, ID: 0}, Point{Time: 1, Value: 1})
	store.Append(Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, ID: 0}, Point{Time: 1, Value: 10})
	store.Append(Key{Source: "nodeB", Metric: "bw", Scope: ScopeNode, ID: 0}, Point{Time: 1, Value: 20})

	// Exact source.
	code, body := get(t, base+"/query?metric=bw&scope=node&source=nodeA")
	if code != http.StatusOK {
		t.Fatalf("/query source=nodeA status %d: %s", code, body)
	}
	var one queryResponse
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	if one.Source != "nodeA" || len(one.Points) != 1 || one.Points[0].Value != 10 {
		t.Errorf("source=nodeA response = %+v, want nodeA's point", one)
	}

	// No source parameter: local series only.
	code, body = get(t, base+"/query?metric=bw&scope=node")
	if code != http.StatusOK {
		t.Fatalf("/query local status %d: %s", code, body)
	}
	one = queryResponse{}
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	if one.Source != "" || len(one.Points) != 1 || one.Points[0].Value != 1 {
		t.Errorf("local response = %+v, want the sourceless point", one)
	}

	// Wildcard: one entry per source, local included, sorted by source.
	code, body = get(t, base+"/query?metric=bw&scope=node&source=*")
	if code != http.StatusOK {
		t.Fatalf("/query source=* status %d: %s", code, body)
	}
	var many querySeriesResponse
	if err := json.Unmarshal([]byte(body), &many); err != nil {
		t.Fatal(err)
	}
	if len(many.Series) != 3 {
		t.Fatalf("source=* returned %d series, want 3: %s", len(many.Series), body)
	}
	wantSources := []string{"", "nodeA", "nodeB"}
	for i, s := range many.Series {
		if s.Source != wantSources[i] {
			t.Errorf("series %d source = %q, want %q", i, s.Source, wantSources[i])
		}
	}

	// Prefix wildcard narrows the fleet.
	code, body = get(t, base+"/query?metric=bw&scope=node&source=node*")
	if code != http.StatusOK {
		t.Fatalf("/query source=node* status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &many); err != nil {
		t.Fatal(err)
	}
	if len(many.Series) != 2 {
		t.Errorf("source=node* returned %d series, want 2: %s", len(many.Series), body)
	}
}

func TestIngestOutOfOrderTimesStayQueryable(t *testing.T) {
	// An agent restart resets its simulated clock: the receiver's series
	// sees t=100,101 then t=0,1.  Window must still return time-ordered
	// points.
	h, store := newTestHTTPSink(t)
	payload := []byte(`{"time":100,"metric":"bw","scope":"node","id":0,"value":1}
{"time":101,"metric":"bw","scope":"node","id":0,"value":2}
{"time":0,"metric":"bw","scope":"node","id":0,"value":3}
{"time":1,"metric":"bw","scope":"node","id":0,"value":4}
`)
	if code, body := postIngest(t, "http://"+h.Addr(), payload, false); code != http.StatusOK {
		t.Fatalf("ingest = %d %q", code, body)
	}
	pts := store.Window(Key{Metric: "bw", Scope: ScopeNode, ID: 0}, 0, -1)
	if len(pts) != 4 {
		t.Fatalf("window = %+v, want 4 points", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time < pts[i-1].Time {
			t.Errorf("window not time-ordered at %d: %v after %v", i, pts[i].Time, pts[i-1].Time)
		}
	}
}

// TestHTTPSinkHandleMountsExtraEndpoints covers the extension hook the
// alert engine uses for /alerts and /rules: handlers mounted after the
// server is already serving must work.
func TestHTTPSinkHandleMountsExtraEndpoints(t *testing.T) {
	h, _ := newTestHTTPSink(t)
	h.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "mounted")
	}))
	code, body := get(t, "http://"+h.Addr()+"/extra")
	if code != http.StatusOK || body != "mounted" {
		t.Fatalf("GET /extra = %d %q, want 200 \"mounted\"", code, body)
	}
	// The built-in endpoints are untouched.
	if code, _ := get(t, "http://"+h.Addr()+"/healthz"); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d after Handle, want 200", code)
	}
}
