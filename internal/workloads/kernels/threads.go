package kernels

import (
	"fmt"

	"likwid/internal/cache"
	"likwid/internal/hwdef"
)

// Multi-threaded kernel runs: the thread-group mode of likwid-bench.  Each
// thread owns a private L1/L2 chain; threads of one socket share the L3
// instance (and the memory sink), so shared-cache capacity contention and
// inclusive back-invalidation are visible in the measurements.

// SharedHierarchy is a node-level cache build: per-thread private chains
// over per-socket shared last-level caches.
type SharedHierarchy struct {
	Threads []*cache.Level   // entry point (L1) per thread
	Chains  [][]*cache.Level // full private chain per thread, L1 first
	Shared  []*cache.Level   // one LLC per socket
	Mem     *cache.Memory
}

// NewSharedHierarchy builds private chains for nThreads threads placed
// round-robin across sockets (one thread per physical core, scatter order).
func NewSharedHierarchy(a *hwdef.Arch, nThreads int, gates cache.PrefetchGates) (*SharedHierarchy, error) {
	if nThreads < 1 {
		return nil, fmt.Errorf("kernels: need at least one thread")
	}
	if nThreads > a.Cores() {
		return nil, fmt.Errorf("kernels: %d threads exceed %d cores", nThreads, a.Cores())
	}
	data := a.DataCaches()
	if len(data) == 0 {
		return nil, fmt.Errorf("kernels: %s has no data caches", a.Name)
	}
	llc := data[len(data)-1]
	private := data[:len(data)-1]
	sharedPerSocket := llc.SharedBy >= a.CoresPerSocket*a.ThreadsPerCore

	mem := &cache.Memory{}
	sh := &SharedHierarchy{Mem: mem}

	// One shared LLC per socket (or per LLC group when narrower).
	llcCfg := cache.Config{
		Name: fmt.Sprintf("L%d", llc.Level), Sets: llc.Sets, Ways: llc.Assoc,
		LineSize: llc.LineSize, WriteAllocate: true, Inclusive: llc.Inclusive,
	}
	numShared := a.Sockets
	if !sharedPerSocket {
		coresPerGroup := llc.SharedBy / a.ThreadsPerCore
		if coresPerGroup < 1 {
			coresPerGroup = 1
		}
		numShared = a.Cores() / coresPerGroup
	}
	for i := 0; i < numShared; i++ {
		lvl, err := cache.NewLevel(llcCfg, nil, mem)
		if err != nil {
			return nil, err
		}
		sh.Shared = append(sh.Shared, lvl)
	}

	// Threads scatter across sockets: thread i on socket i%Sockets.
	for tid := 0; tid < nThreads; tid++ {
		group := tid % numShared
		below := sh.Shared[group]
		chain := make([]*cache.Level, len(private))
		for lvl := len(private) - 1; lvl >= 0; lvl-- {
			cl := private[lvl]
			cfg := cache.Config{
				Name: fmt.Sprintf("t%d-L%d", tid, cl.Level), Sets: cl.Sets, Ways: cl.Assoc,
				LineSize: cl.LineSize, WriteAllocate: true, Inclusive: cl.Inclusive,
			}
			next, err := cache.NewLevel(cfg, below, nil)
			if err != nil {
				return nil, err
			}
			below = next
			chain[lvl] = next
		}
		entry := below // top of the chain (the LLC itself when no private levels)
		if len(private) > 0 {
			entry.AttachStreamer(gates.Gate("HW_PREFETCHER"), 3)
		}
		sh.Threads = append(sh.Threads, entry)
		sh.Chains = append(sh.Chains, chain)
	}
	return sh, nil
}

// ResetStats clears every level's counters, private and shared.
func (sh *SharedHierarchy) ResetStats() {
	for _, chain := range sh.Chains {
		for _, l := range chain {
			l.ResetStats()
		}
	}
	for _, l := range sh.Shared {
		l.ResetStats()
	}
}

// RunThreads measures one kernel with nThreads threads, each streaming its
// own slice of the working set.  Accesses interleave round-robin element by
// element, so shared-LLC capacity is genuinely contended.  Returns the
// aggregate bandwidth point.
func RunThreads(a *hwdef.Arch, k Kernel, workingSet, nThreads int, gates cache.PrefetchGates) (Point, error) {
	sh, err := NewSharedHierarchy(a, nThreads, gates)
	if err != nil {
		return Point{}, err
	}
	arrays := k.LoadArrays + k.StoreArrays
	if arrays == 0 {
		return Point{}, fmt.Errorf("kernels: kernel %s moves no data", k.Name)
	}
	elemsPerThread := workingSet / (8 * arrays * nThreads)
	if elemsPerThread < 8 {
		return Point{}, fmt.Errorf("kernels: working set %d too small for %d threads", workingSet, nThreads)
	}
	const threadGap = 1 << 32
	const arrayGap = 64 << 20
	addr := func(tid, array, i int) uint64 {
		return uint64(tid)*threadGap + uint64(array)*arrayGap + uint64(i)*8
	}
	sweep := func() {
		for i := 0; i < elemsPerThread; i++ {
			for tid := 0; tid < nThreads; tid++ {
				for l := 0; l < k.LoadArrays; l++ {
					sh.Threads[tid].Do(cache.Access{Addr: addr(tid, l, i), Size: 8, IP: uint64(0x1000 + l)})
				}
				for s := 0; s < k.StoreArrays; s++ {
					sh.Threads[tid].Do(cache.Access{
						Addr: addr(tid, k.LoadArrays+s, i), Size: 8,
						Write: true, NT: k.NTStores, IP: uint64(0x2000 + s),
					})
				}
			}
		}
	}
	sweep()
	sh.ResetStats()
	sweep()

	// Cost model: per-thread cycles as in the single-thread runner; the
	// slowest thread sets the pace (barrier semantics), and memory-line
	// costs are shared bus time.
	cost := costsFor(a)
	perThreadCycles := make([]float64, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		chain := sh.Chains[tid]
		var cycles float64
		for lvl, l := range chain {
			st := l.Stats()
			if lvl == 0 {
				cycles += float64(st.Accesses) * cost.l1Access
			}
			price := cost.l2Line
			if lvl == len(chain)-1 {
				price = cost.l3Line // fills from the shared LLC
			}
			cycles += float64(st.Misses)*price + float64(st.Prefetches)*price*0.25
		}
		perThreadCycles[tid] = cycles
	}
	var sharedCycles float64
	for _, l := range sh.Shared {
		st := l.Stats()
		sharedCycles += float64(st.Misses) * cost.memLine
	}
	memReads, memWrites := sh.Mem.Snapshot()
	var slowest float64
	for _, c := range perThreadCycles {
		if c > slowest {
			slowest = c
		}
	}
	cycles := slowest + sharedCycles/float64(len(sh.Shared))
	if cycles <= 0 {
		return Point{}, fmt.Errorf("kernels: zero cycle estimate")
	}
	bytes := float64(elemsPerThread) * float64(nThreads) * float64(k.BytesPerElem())
	seconds := cycles / a.ClockHz()
	return Point{
		WorkingSetBytes: workingSet,
		BandwidthMBs:    bytes / seconds / 1e6,
		CyclesPerElem:   cycles / float64(elemsPerThread*nThreads),
		MemLines:        memReads + memWrites,
	}, nil
}
