package cache

import (
	"fmt"

	"likwid/internal/hwdef"
)

// Hierarchy is a private chain of data cache levels for one hardware
// thread, bottoming out in a Memory sink.  It is what likwid-bench runs its
// kernels against.
type Hierarchy struct {
	Levels []*Level // ordered L1 first
	Mem    *Memory
}

// PrefetchGates supplies the enable state per prefetcher name; missing
// entries default to enabled.  likwid-features wires these callbacks to the
// IA32_MISC_ENABLE bits of the owning core.
type PrefetchGates map[string]Enabled

// Gate returns the enable callback for a prefetcher name; missing entries
// default to always-enabled.
func (g PrefetchGates) Gate(name string) Enabled {
	if g != nil {
		if e, ok := g[name]; ok {
			return e
		}
	}
	return func() bool { return true }
}

// NewHierarchy builds the data-cache chain of an architecture for a single
// hardware thread and attaches the architecture's prefetch units:
// DCU (streamer) and IP prefetchers at L1, streamer and adjacent-line at
// the mid level, matching the Core 2 unit placement that likwid-features
// controls.
func NewHierarchy(a *hwdef.Arch, gates PrefetchGates) (*Hierarchy, error) {
	mem := &Memory{}
	data := a.DataCaches()
	if len(data) == 0 {
		return nil, fmt.Errorf("cache: %s has no data caches", a.Name)
	}
	// Build bottom-up so each level links to the one below.
	levels := make([]*Level, len(data))
	var below *Level
	for i := len(data) - 1; i >= 0; i-- {
		cl := data[i]
		cfg := Config{
			Name:          fmt.Sprintf("L%d", cl.Level),
			Sets:          cl.Sets,
			Ways:          cl.Assoc,
			LineSize:      cl.LineSize,
			WriteAllocate: true,
			Inclusive:     cl.Inclusive,
		}
		var memSink *Memory
		if below == nil {
			memSink = mem
		}
		lvl, err := NewLevel(cfg, below, memSink)
		if err != nil {
			return nil, err
		}
		levels[i] = lvl
		below = lvl
	}

	hasPrefetcher := func(name string) bool {
		for _, p := range a.Prefetchers {
			if p.Name == name {
				return true
			}
		}
		return false
	}
	l1 := levels[0]
	if hasPrefetcher("DCU_PREFETCHER") {
		l1.AttachStreamer(gates.Gate("DCU_PREFETCHER"), 1)
	}
	if hasPrefetcher("IP_PREFETCHER") {
		l1.AttachIPStride(gates.Gate("IP_PREFETCHER"))
	}
	if len(levels) > 1 {
		mid := levels[1]
		if hasPrefetcher("HW_PREFETCHER") {
			mid.AttachStreamer(gates.Gate("HW_PREFETCHER"), 3)
		}
		if hasPrefetcher("CL_PREFETCHER") {
			mid.AttachAdjacentLine(gates.Gate("CL_PREFETCHER"))
		}
	}
	return &Hierarchy{Levels: levels, Mem: mem}, nil
}

// Access runs one access through the hierarchy from L1.
func (h *Hierarchy) Access(a Access) { h.Levels[0].Do(a) }

// ResetStats clears the statistics of every level and the memory sink.
func (h *Hierarchy) ResetStats() {
	for _, l := range h.Levels {
		l.ResetStats()
	}
	h.Mem.mu.Lock()
	h.Mem.ReadLines, h.Mem.WriteLines = 0, 0
	h.Mem.wcOpen = false
	h.Mem.mu.Unlock()
}
