// Package monitor turns the one-shot tool suite into a continuous
// node-monitoring agent, after the LIKWID Monitoring Stack (Röhl et al.,
// arXiv:1708.01476) and ClusterCockpit's cc-metric-collector: collectors
// wrap the existing tools (perfctr groups, topology, features, memsys) and
// sample on an interval, a scheduler runs them concurrently with error
// backoff, samples land in a ring-buffer time-series store, are rolled up
// per topology domain (thread → core → socket → node), and fan out
// asynchronously to pluggable sinks (table, CSV, JSON lines, HTTP).
package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode"

	"likwid/internal/machine"
)

// Scope is the topology domain a sample describes.
type Scope int

const (
	// ScopeThread is one hardware thread (OS processor).
	ScopeThread Scope = iota
	// ScopeCore is one physical core (SMT siblings merged).
	ScopeCore
	// ScopeSocket is one package with its shared uncore resources.
	ScopeSocket
	// ScopeNode is the whole shared-memory node.
	ScopeNode
)

var scopeNames = [...]string{"thread", "core", "socket", "node"}

// String returns the lowercase domain name.
func (s Scope) String() string {
	if s < 0 || int(s) >= len(scopeNames) {
		return fmt.Sprintf("scope(%d)", int(s))
	}
	return scopeNames[s]
}

// ParseScope resolves a domain name.
func ParseScope(name string) (Scope, error) {
	for i, n := range scopeNames {
		if n == name {
			return Scope(i), nil
		}
	}
	return 0, fmt.Errorf("monitor: unknown scope %q (thread, core, socket, node)", name)
}

// Sample is one measured value of one metric on one topology entity at one
// point of simulated time.
type Sample struct {
	// Source is the identity of the agent the sample came from; empty
	// for samples collected on this node.  It is a first-class series
	// dimension, never folded into the metric name.
	Source string
	Metric string
	Scope  Scope
	ID     int // processor, core, or socket index; 0 for node scope
	// Labels is the sample's structured label set (job=lbm,
	// cluster=emmy) — the fleet-slicing dimensions beyond Source.  The
	// zero value is the empty set.
	Labels Labels
	Time   float64 // simulated seconds
	Value  float64
}

// Key identifies one time series in the store: which agent measured
// (Source, empty for local series), what was measured (Metric), where
// (Scope, ID), and under which label set (Labels, empty for unlabelled
// series).  Labels is an interned handle, so Key stays a comparable,
// cheaply hashable map key.
type Key struct {
	Source string
	Metric string
	Scope  Scope
	ID     int
	Labels Labels
}

// Key returns the sample's series identity.
func (s Sample) Key() Key {
	return Key{Source: s.Source, Metric: s.Metric, Scope: s.Scope, ID: s.ID, Labels: s.Labels}
}

// Batch is the output of one collector tick, forwarded to store and sinks
// as a unit so sinks can render one table / flush one block per read.
type Batch struct {
	Collector string
	Time      float64 // simulated seconds of the read
	Samples   []Sample
}

// Collector is one metric source.  Collect is called on the declared
// interval by the scheduler; it must return the full batch of samples for
// this tick.  Implementations are not required to be concurrency-safe:
// collectors sharing mutable state (the simulated machine) serialize
// through the mutex handed to their factory.
type Collector interface {
	Name() string
	Scope() Scope
	Interval() time.Duration
	Collect(ctx context.Context) ([]Sample, error)
}

// Config is the construction context handed to collector factories.
type Config struct {
	Machine *machine.Machine
	// MachineMu serializes machine access across concurrently scheduled
	// collectors (the simulated node, like real MSR device files, is not
	// reentrant).  Factories may ignore it for read-only sources.
	MachineMu *sync.Mutex
	// CPUs are the processors to monitor; empty means all.
	CPUs []int
	// Group is the perfctr event group for counter collectors.
	Group string
	// Interval is the sampling period for the built collector.
	Interval time.Duration
	// Advance moves simulated time forward by dt seconds under the
	// machine mutex; counter collectors call it before each read.  Nil
	// defaults to idling the machine (the "sleep" monitoring mode).
	Advance func(dt float64)
	// RawEvents also emits per-event rates (events/s) next to the group's
	// derived metrics.
	RawEvents bool
}

// cpusOrAll resolves the processor list.
func (c Config) cpusOrAll() []int {
	if len(c.CPUs) > 0 {
		return append([]int(nil), c.CPUs...)
	}
	all := make([]int, c.Machine.OS.NumCPUs())
	for i := range all {
		all[i] = i
	}
	return all
}

// Factory builds one collector from the shared config.
type Factory func(cfg Config) (Collector, error)

// Registry maps collector names to factories.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]Factory{}}
}

// Register adds a factory; re-registering a name is an error so plugins
// cannot silently shadow each other.
func (r *Registry) Register(name string, f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("monitor: collector %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Build constructs the named collector.
func (r *Registry) Build(name string, cfg Config) (Collector, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("monitor: unknown collector %q (available: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return f(cfg)
}

// Names lists the registered collectors sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry holds the built-in collectors (perfgroup, topology,
// features, membw).
var DefaultRegistry = NewRegistry()

func mustRegister(name string, f Factory) {
	if err := DefaultRegistry.Register(name, f); err != nil {
		panic(err)
	}
}

// ValidSourceLabel reports whether s looks like an agent source
// identity: letters, digits, '_', '-', '.' — the shape of the default
// hostname-pid label.  The v1 ingest compat shim uses it to tell a
// source prefix from a slash inside a metric name; an explicit v2
// source field is never subjected to it.
func ValidSourceLabel(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// reservedNamespaces are the suite's own slash-namespaced metric
// families.  A leading "event/", "topo/", "feature/", "membw/" or
// "alert/" is part of the metric name, never an agent source label.
var reservedNamespaces = map[string]bool{
	"alert":   true,
	"event":   true,
	"feature": true,
	"membw":   true,
	"topo":    true,
}

// ReservedNamespace reports whether seg is one of the suite's metric
// namespaces rather than a plausible source label.
func ReservedNamespace(seg string) bool { return reservedNamespaces[seg] }

// SplitSourceMetric is the v1 compat shim: it splits the legacy
// "SOURCE/metric" prefix form into its dimensions.  It is deliberately
// conservative — the prefix must be a valid source label and must not
// be one of the suite's reserved metric namespaces — because a slash
// inside a metric name ("DP MFlops/s", "topo/socket_hw_threads") is
// not a source boundary.  New code carries Source in the Key and never
// needs this.
func SplitSourceMetric(name string) (source, metric string, ok bool) {
	i := strings.IndexByte(name, '/')
	if i <= 0 || i == len(name)-1 {
		return "", name, false
	}
	prefix := name[:i]
	if !ValidSourceLabel(prefix) || ReservedNamespace(prefix) {
		return "", name, false
	}
	return prefix, name[i+1:], true
}

// WildcardMatch matches a pattern whose '*' runs match any characters
// (including '/'), the selector idiom shared by the alert DSL and the
// /query source parameter.
func WildcardMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		idx := strings.Index(s, part)
		if idx < 0 {
			return false
		}
		s = s[idx+len(part):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// MatchSource reports whether a source selector picks a series source.
// An empty pattern selects only local (sourceless) series; '*'
// wildcards match across the fleet, the empty local source included.
func MatchSource(pattern, source string) bool {
	if strings.Contains(pattern, "*") {
		return WildcardMatch(pattern, source)
	}
	return pattern == source
}

// MatchMetric reports whether a metric selector picks a series metric:
// exact match, '*' wildcards (against the raw name), or sanitized-form
// equality so a flat selector ("memory_bandwidth_mbytes_s") finds the
// display-named series ("Memory bandwidth [MBytes/s]").  The selector
// idiom shared by the alert DSL, the derive DSL, ingest routes and the
// /query metric parameter.
func MatchMetric(pattern, name string) bool {
	if pattern == name {
		return true
	}
	if strings.Contains(pattern, "*") {
		return WildcardMatch(pattern, name)
	}
	return SanitizeMetric(name) == SanitizeMetric(pattern)
}

// SanitizeMetric converts a display metric name ("DP MFlops/s",
// "Memory bandwidth [MBytes/s]") into a flat series name
// ("dp_mflops_s", "memory_bandwidth_mbytes_s") usable in CSV headers and
// the HTTP exposition format.
func SanitizeMetric(name string) string {
	var b strings.Builder
	lastUnderscore := true // trim leading separators
	for _, r := range strings.ToLower(name) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}
