package apic

import (
	"testing"
	"testing/quick"

	"likwid/internal/hwdef"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 6: 3, 8: 3, 11: 4, 12: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestComposeDecodeRoundtripProperty(t *testing.T) {
	// For any layout and in-range fields, Decode(Compose(x)) == x.
	f := func(smtBits, coreBits uint8, socket, core, smt uint16) bool {
		l := Layout{SMTBits: int(smtBits%3) + 1, CoreBits: int(coreBits%5) + 1}
		s := int(socket) % 8
		c := int(core) % (1 << l.CoreBits)
		m := int(smt) % (1 << l.SMTBits)
		d := l.Decode(l.Compose(s, c, m))
		return d.Socket == s && d.PhysCore == c && d.SMT == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWestmereLayout(t *testing.T) {
	l := LayoutFor(hwdef.WestmereEP)
	if l.SMTBits != 1 || l.CoreBits != 4 {
		t.Fatalf("layout = %+v, want SMTBits=1 CoreBits=4 (core IDs reach 10)", l)
	}
	if l.PkgShift() != 5 {
		t.Errorf("PkgShift = %d, want 5", l.PkgShift())
	}
}

func TestEnumerateWestmereMatchesPaperListing(t *testing.T) {
	// The paper's likwid-topology listing for Westmere EP: processors 0-5
	// are socket 0 cores {0,1,2,8,9,10} thread 0; 6-11 socket 1; 12-23
	// are the SMT siblings in the same order.
	threads := Enumerate(hwdef.WestmereEP)
	if len(threads) != 24 {
		t.Fatalf("got %d threads, want 24", len(threads))
	}
	type row struct{ proc, smt, core, socket int }
	checks := []row{
		{0, 0, 0, 0}, {1, 0, 1, 0}, {2, 0, 2, 0}, {3, 0, 8, 0},
		{4, 0, 9, 0}, {5, 0, 10, 0}, {6, 0, 0, 1}, {11, 0, 10, 1},
		{12, 1, 0, 0}, {17, 1, 10, 0}, {18, 1, 0, 1}, {23, 1, 10, 1},
	}
	for _, c := range checks {
		got := threads[c.proc]
		if got.SMT != c.smt || got.PhysCore != c.core || got.Socket != c.socket {
			t.Errorf("proc %d = (smt %d, core %d, socket %d), want (%d, %d, %d)",
				c.proc, got.SMT, got.PhysCore, got.Socket, c.smt, c.core, c.socket)
		}
	}
}

func TestEnumerateAPICUniqueness(t *testing.T) {
	for _, name := range hwdef.Names() {
		a, _ := hwdef.Lookup(name)
		seen := map[uint32]bool{}
		for _, ti := range Enumerate(a) {
			if seen[ti.APICID] {
				t.Errorf("%s: duplicate APIC ID %d", name, ti.APICID)
			}
			seen[ti.APICID] = true
		}
	}
}

func TestEnumerateDecodeConsistency(t *testing.T) {
	// Decoding any enumerated APIC ID must recover the enumerated fields.
	for _, name := range hwdef.Names() {
		a, _ := hwdef.Lookup(name)
		l := LayoutFor(a)
		for _, ti := range Enumerate(a) {
			d := l.Decode(ti.APICID)
			if d.Socket != ti.Socket || d.PhysCore != ti.PhysCore || d.SMT != ti.SMT {
				t.Errorf("%s proc %d: decode %+v != enum %+v", name, ti.Proc, d, ti)
			}
		}
	}
}

func TestByProc(t *testing.T) {
	ti, err := ByProc(hwdef.WestmereEP, 13)
	if err != nil {
		t.Fatal(err)
	}
	if ti.SMT != 1 || ti.PhysCore != 1 || ti.Socket != 0 {
		t.Errorf("proc 13 = %+v, want SMT sibling of core 1 socket 0", ti)
	}
	if _, err := ByProc(hwdef.WestmereEP, 24); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := ByProc(hwdef.WestmereEP, -1); err == nil {
		t.Error("expected out-of-range error for negative proc")
	}
}
