package cluster

import (
	"strings"
	"testing"

	"likwid/internal/monitor"
)

func TestIsSpec(t *testing.T) {
	cases := []struct {
		spec string
		want bool
	}{
		{"push:http://r1:8090", false}, // single URL, no policy: plain push sink
		{"pushv4:r1:8090", false},
		{"push:shard@http://r1:8090", true},
		{"push:failover@http://r1:8090", true},
		{"push:http://r1:8090,http://r2:8090", true},
		{"pushv4:mirror@http://r1:8090,http://r2:8090", true},
		{"stdout", false},
		{"csv:/tmp/a,b.csv", false}, // comma in a csv path is not a pool
		{"http::8090", false},
		{"push:quorum@http://r1:8090", false}, // unknown policy: not ours to claim
	}
	for _, c := range cases {
		if got := IsSpec(c.spec); got != c.want {
			t.Errorf("IsSpec(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	// Multi-URL without a policy defaults to shard.
	s, err := ParseSpec("push:http://r1:8090,http://r2:8090")
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy != PolicyShard || s.Format != monitor.WireJSON || len(s.Targets) != 2 {
		t.Errorf("multi-URL spec = %+v, want shard/json/2 targets", s)
	}
	// Singleton with an explicit policy keeps it; singleton without one
	// is ordered-fallback-of-one.
	s, err = ParseSpec("pushv4:mirror@http://r1:8090")
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy != PolicyMirror || s.Format != monitor.WireV4 || len(s.Targets) != 1 {
		t.Errorf("explicit mirror singleton = %+v", s)
	}
	if s, err = ParseSpec("push:http://r1:8090"); err != nil || s.Policy != PolicyFailover {
		t.Errorf("plain singleton = %+v, %v; want failover", s, err)
	}
	// Target URLs are normalized exactly like a plain push sink's.
	s, err = ParseSpec("push:failover@r1:8090, r2:8090")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range s.Targets {
		if !strings.HasPrefix(u, "http://") || !strings.HasSuffix(u, "/ingest") {
			t.Errorf("target %q not normalized to an http ingest URL", u)
		}
	}

	for _, bad := range []string{
		"push:",
		"push:quorum@http://r1:8090,http://r2:8090",
		"push:http://r1:8090,",
		"push:http://r1:8090,http://r1:8090/ingest", // same target twice
		"csv:/tmp/x.csv",
		"push:ftp://r1:8090,http://r2:8090",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyShard, PolicyMirror, PolicyFailover} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("quorum"); err == nil {
		t.Error("ParsePolicy(quorum) succeeded, want error")
	}
}
