// Package cpuid emulates the x86 CPUID instruction at register level.
//
// Each hardware thread of a simulated node owns one CPU value; querying it
// with a (leaf, subleaf) pair returns the four 32-bit registers EAX..EDX
// exactly as the silicon of the modeled architecture would.  The topology
// decoder consumes only these registers — never the hwdef definition — so
// the decode logic is exercised the same way the real likwid-topology
// exercises the instruction.
//
// Implemented leaves:
//
//	0x0        vendor identification and maximum standard leaf
//	0x1        family/model/stepping, initial APIC ID, feature flags
//	0x2        cache descriptor bytes (Pentium M era)
//	0x4        deterministic cache parameters (Core 2 and later)
//	0xA        architectural performance monitoring
//	0xB        extended topology enumeration (Nehalem and later)
//	0x80000000 maximum extended leaf
//	0x80000002..4 processor brand string
//	0x80000005/6  AMD L1 / L2+L3 cache descriptors
//	0x80000008    AMD physical core count
package cpuid

import (
	"likwid/internal/apic"
	"likwid/internal/hwdef"
)

// Regs is the CPUID result register set.
type Regs struct {
	EAX, EBX, ECX, EDX uint32
}

// CPU emulates the CPUID instruction as seen from one hardware thread.
type CPU struct {
	Arch   *hwdef.Arch
	Thread apic.ThreadInfo
	layout apic.Layout
}

// NewNode builds one CPU per hardware thread of the architecture, indexed by
// OS processor ID.
func NewNode(a *hwdef.Arch) []*CPU {
	layout := apic.LayoutFor(a)
	threads := apic.Enumerate(a)
	cpus := make([]*CPU, len(threads))
	for i, t := range threads {
		cpus[i] = &CPU{Arch: a, Thread: t, layout: layout}
	}
	return cpus
}

// Query executes CPUID with the given leaf and subleaf.
func (c *CPU) Query(leaf, subleaf uint32) Regs {
	switch {
	case leaf == 0x0:
		return c.leaf0()
	case leaf == 0x1:
		return c.leaf1()
	case leaf == 0x2 && c.Arch.UsesLeaf2:
		return c.leaf2()
	case leaf == 0x4 && c.Arch.HasLeaf4:
		return c.leaf4(subleaf)
	case leaf == 0xA && c.Arch.Vendor == hwdef.Intel && c.Arch.MaxLeaf >= 0xA:
		return c.leafA()
	case leaf == 0xB && c.Arch.HasLeafB:
		return c.leafB(subleaf)
	case leaf == 0x80000000:
		return Regs{EAX: c.Arch.MaxExtLeaf}
	case leaf >= 0x80000002 && leaf <= 0x80000004:
		return c.brandString(leaf)
	case leaf == 0x80000005 && c.Arch.Vendor == hwdef.AMD:
		return c.amdL1()
	case leaf == 0x80000006 && c.Arch.Vendor == hwdef.AMD:
		return c.amdL2L3()
	case leaf == 0x80000008 && c.Arch.MaxExtLeaf >= 0x80000008:
		return c.extLeaf8()
	default:
		return Regs{}
	}
}

func (c *CPU) leaf0() Regs {
	vendor := c.Arch.Vendor.String() // 12 characters
	return Regs{
		EAX: c.Arch.MaxLeaf,
		EBX: pack4(vendor[0:4]),
		EDX: pack4(vendor[4:8]),
		ECX: pack4(vendor[8:12]),
	}
}

// pack4 packs four ASCII bytes little-endian into a register.
func pack4(s string) uint32 {
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
}

// Signature encodes family/model/stepping in the leaf-1 EAX format,
// including the extended family/model fields.
func Signature(family, model, stepping int) uint32 {
	baseFam := family
	extFam := 0
	if family > 0xF {
		baseFam = 0xF
		extFam = family - 0xF
	}
	baseMod := model & 0xF
	extMod := model >> 4
	return uint32(extFam)<<20 | uint32(extMod)<<16 |
		uint32(baseFam)<<8 | uint32(baseMod)<<4 | uint32(stepping)&0xF
}

// DecodeSignature recovers display family and model from a leaf-1 EAX value.
func DecodeSignature(eax uint32) (family, model, stepping int) {
	baseFam := int(eax>>8) & 0xF
	extFam := int(eax>>20) & 0xFF
	baseMod := int(eax>>4) & 0xF
	extMod := int(eax>>16) & 0xF
	family = baseFam
	if baseFam == 0xF {
		family += extFam
	}
	model = baseMod
	if baseFam == 0x6 || baseFam == 0xF {
		model |= extMod << 4
	}
	return family, model, int(eax) & 0xF
}

// Leaf-1 EDX feature bits used by the decoder.
const (
	FeatTSC  = 1 << 4
	FeatMSR  = 1 << 5
	FeatAPIC = 1 << 9
	FeatSSE  = 1 << 25
	FeatSSE2 = 1 << 26
	FeatHTT  = 1 << 28
)

func (c *CPU) leaf1() Regs {
	logicalPerPkg := uint32(1) << c.layout.PkgShift()
	ebx := c.Thread.APICID<<24 | logicalPerPkg<<16 | 8<<8 // CLFLUSH size 8*8=64
	edx := uint32(FeatTSC | FeatMSR | FeatAPIC | FeatSSE | FeatSSE2)
	if c.Arch.HWThreads() > c.Arch.Cores() || c.Arch.Cores() > c.Arch.Sockets {
		edx |= FeatHTT // multiple logical processors per package
	}
	return Regs{
		EAX: Signature(c.Arch.Family, c.Arch.Model, c.Arch.Stepping),
		EBX: ebx,
		ECX: 1, // SSE3
		EDX: edx,
	}
}

// leafA reports architectural performance monitoring capabilities: the
// version, the number of programmable counters per thread, and the number of
// fixed-function counters.
func (c *CPU) leafA() Regs {
	version := uint32(2)
	if c.Arch.HasLeafB {
		version = 3
	}
	fixed := uint32(0)
	if c.Arch.HasFixedCtr {
		fixed = 3
	}
	return Regs{
		EAX: version | uint32(c.Arch.NumPMC)<<8 | 48<<16, // 48-bit counters
		EDX: fixed | 48<<5,
	}
}

// Level types reported in leaf 0xB ECX[15:8].
const (
	LevelTypeInvalid = 0
	LevelTypeSMT     = 1
	LevelTypeCore    = 2
)

func (c *CPU) leafB(subleaf uint32) Regs {
	x2apic := c.Thread.APICID
	switch subleaf {
	case 0: // SMT level
		return Regs{
			EAX: uint32(c.layout.SMTBits),
			EBX: uint32(c.Arch.ThreadsPerCore),
			ECX: subleaf | LevelTypeSMT<<8,
			EDX: x2apic,
		}
	case 1: // core level
		return Regs{
			EAX: uint32(c.layout.PkgShift()),
			EBX: uint32(c.Arch.ThreadsPerCore * c.Arch.CoresPerSocket),
			ECX: subleaf | LevelTypeCore<<8,
			EDX: x2apic,
		}
	default:
		return Regs{ECX: subleaf, EDX: x2apic}
	}
}

func (c *CPU) brandString(leaf uint32) Regs {
	name := c.Arch.ModelName
	for len(name) < 48 {
		name += "\x00"
	}
	off := int(leaf-0x80000002) * 16
	chunk := name[off : off+16]
	return Regs{
		EAX: pack4(chunk[0:4]),
		EBX: pack4(chunk[4:8]),
		ECX: pack4(chunk[8:12]),
		EDX: pack4(chunk[12:16]),
	}
}

func (c *CPU) extLeaf8() Regs {
	// ECX[7:0] = number of physical cores per package - 1 (AMD); Intel
	// leaves this zero.  EAX carries address sizes (40 bits phys).
	regs := Regs{EAX: 40 | 48<<8}
	if c.Arch.Vendor == hwdef.AMD {
		regs.ECX = uint32(c.Arch.CoresPerSocket - 1)
	}
	return regs
}
