package derive

import (
	"testing"

	"likwid/internal/monitor"
)

// TestResolutionCacheTracksNewSeries pins the generation contract: a
// series created after the cached resolution must be picked up on the
// next evaluation, because the store's index generation moved.
func TestResolutionCacheTracksNewSeries(t *testing.T) {
	st := fleetStore(t)
	r := mustRule(t, "total = sum(flops_dp) over 30s")
	e := newTestEngine(t, st, r)
	e.EvalNow() // caches the 3-series resolution
	out := monitor.Key{Metric: "total", Scope: monitor.ScopeNode}
	if got := latestValue(t, st, out); got != 145 {
		t.Fatalf("first eval total = %v, want 145", got)
	}
	// A new agent joins the fleet after the cache warmed.
	d := monitor.Key{Source: "nodeD", Metric: "flops_dp", Scope: monitor.ScopeNode}
	st.Append(d, monitor.Point{Time: 20, Value: 55})
	e.EvalNow()
	if got := latestValue(t, st, out); got != 200 {
		t.Fatalf("total after new series = %v, want 200 (15+30+100+55)", got)
	}
	if got := e.RuleStatuses()[0].Series; got != 4 {
		t.Fatalf("fan-out after new series = %d, want 4", got)
	}
}

// TestResolutionCacheServesUnchangedStore pins the steady state: with
// the store's key set unchanged, repeated evaluations are served from
// the cached resolution (observable through the hit counter).
func TestResolutionCacheServesUnchangedStore(t *testing.T) {
	st := fleetStore(t)
	r := mustRule(t, "total = sum(flops_dp) over 30s")
	e := newTestEngine(t, st, r)
	e.EvalNow() // cold: resolves and emits (creating the output series)
	e.EvalNow() // cold again: the emit moved the generation
	for i := 0; i < 3; i++ {
		e.EvalNow() // steady state
	}
	e.mu.Lock()
	st2 := e.state[r.Name]
	hits := st2.res != nil
	e.mu.Unlock()
	if !hits {
		t.Fatal("no cached resolution after steady-state evals")
	}
	gen := e.opts.Store.IndexGen()
	e.EvalNow()
	if got := e.opts.Store.IndexGen(); got != gen {
		t.Fatalf("steady-state eval moved the index generation %d -> %d", gen, got)
	}
}

// TestReloadInvalidatesResolutions pins the reload hazard: replacing
// the rule set changes the derived output-name exclusion that wildcard
// selectors apply, so even a spec-unchanged rule must re-resolve.  Here
// sweep's wildcard initially feeds on other_out (not a loaded rule's
// output); after a reload that adds a rule named other_out, the sweep
// must stop feeding on it even though sweep's own spec never changed.
func TestReloadInvalidatesResolutions(t *testing.T) {
	st := monitor.NewStore(64)
	in := monitor.Key{Metric: "flops_dp", Scope: monitor.ScopeNode}
	other := monitor.Key{Metric: "other_out", Scope: monitor.ScopeNode}
	st.Append(in, monitor.Point{Time: 0, Value: 10})
	st.Append(other, monitor.Point{Time: 0, Value: 1000})

	sweep := mustRule(t, "sweep = sum(*) over 30s")
	e := newTestEngine(t, st, sweep)
	e.EvalNow()
	out := monitor.Key{Metric: "sweep", Scope: monitor.ScopeNode}
	if got := latestValue(t, st, out); got != 1010 {
		t.Fatalf("sweep before reload = %v, want 1010", got)
	}

	// other_out becomes a loaded rule's output name: the sweep's cached
	// resolution (which includes it) is now wrong.
	e.Reload([]*Rule{
		mustRule(t, "sweep = sum(*) over 30s"),
		mustRule(t, "other_out = sum(flops_dp) over 30s"),
	})
	// Advance the inputs so the dedupe guard lets sweep re-emit.
	st.Append(in, monitor.Point{Time: 10, Value: 10})
	st.Append(other, monitor.Point{Time: 10, Value: 1000})
	e.EvalNow()
	if got := latestValue(t, st, out); got != 10 {
		t.Fatalf("sweep after reload = %v, want 10 (other_out now excluded)", got)
	}
}
