package jacobi

import (
	"math"
	"testing"

	"likwid/internal/hwdef"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Table II's performance row: threaded 784, threaded (NT) 1032, blocked
// 1331 MLUPS on one Nehalem EP socket.  The model must land within 5%.
func TestTableIIPerformance(t *testing.T) {
	paper := map[Variant]float64{
		Threaded:   784,
		ThreadedNT: 1032,
		Wavefront:  1331,
	}
	for variant, want := range paper {
		r := run(t, TableIIConfig(hwdef.NehalemEP, variant))
		if math.Abs(r.MLUPS-want)/want > 0.05 {
			t.Errorf("%s: %0.f MLUPS, paper %v (>5%% off)", variant, r.MLUPS, want)
		}
	}
}

// The Table II ordering and ratios: NT stores save ≈1/3 of traffic but only
// ≈1.3× performance; blocking cuts traffic ≈4.5× but gains only ≈1.7×.
func TestTableIIRatios(t *testing.T) {
	threaded := run(t, TableIIConfig(hwdef.NehalemEP, Threaded))
	nt := run(t, TableIIConfig(hwdef.NehalemEP, ThreadedNT))
	blocked := run(t, TableIIConfig(hwdef.NehalemEP, Wavefront))
	if !(threaded.MLUPS < nt.MLUPS && nt.MLUPS < blocked.MLUPS) {
		t.Fatalf("ordering broken: %v / %v / %v", threaded.MLUPS, nt.MLUPS, blocked.MLUPS)
	}
	speedup := blocked.MLUPS / threaded.MLUPS
	if speedup < 1.5 || speedup > 2.0 {
		t.Errorf("blocked speedup = %v, paper 1.70", speedup)
	}
}

// Fig. 11's central claim: wrong pinning reverses the optimization — the
// wavefront split across sockets falls below the threaded baseline, about
// a factor 2 under the correctly pinned wavefront.
func TestFig11WrongPinningReversesOptimization(t *testing.T) {
	size := 300
	correct := run(t, Config{Arch: hwdef.NehalemEP, Variant: Wavefront, Size: size, Iters: 20, Threads: 4, Placement: OneSocket})
	wrong := run(t, Config{Arch: hwdef.NehalemEP, Variant: Wavefront, Size: size, Iters: 20, Threads: 4, Placement: SplitPairs})
	baseline := run(t, Config{Arch: hwdef.NehalemEP, Variant: ThreadedNT, Size: size, Iters: 20, Threads: 4, Placement: OneSocket})

	factor := correct.MLUPS / wrong.MLUPS
	if factor < 1.6 || factor > 2.6 {
		t.Errorf("wrong-pinning penalty = %vx, paper ≈ 2x (correct %v, wrong %v)",
			factor, correct.MLUPS, wrong.MLUPS)
	}
	if wrong.MLUPS >= baseline.MLUPS {
		t.Errorf("wrong pinning (%v) must fall below the threaded baseline (%v)",
			wrong.MLUPS, baseline.MLUPS)
	}
}

// Fig. 11 size series for the correct wavefront: rises from small grids,
// peaks mid-range, declines toward 500.
func TestFig11SizeShape(t *testing.T) {
	mlups := map[int]float64{}
	for _, size := range []int{50, 150, 300, 500} {
		r := run(t, Config{Arch: hwdef.NehalemEP, Variant: Wavefront, Size: size, Iters: 30, Threads: 4, Placement: OneSocket})
		mlups[size] = r.MLUPS
	}
	if mlups[150] <= mlups[50] {
		t.Errorf("wavefront must rise from N=50 (%v) to N=150 (%v)", mlups[50], mlups[150])
	}
	if mlups[500] >= mlups[300] {
		t.Errorf("wavefront must decline from N=300 (%v) to N=500 (%v)", mlups[300], mlups[500])
	}
}

// The threaded baseline is flat once out of cache and faster in-cache.
func TestBaselineCacheBump(t *testing.T) {
	small := run(t, Config{Arch: hwdef.NehalemEP, Variant: ThreadedNT, Size: 50, Iters: 400, Threads: 4, Placement: OneSocket})
	large1 := run(t, Config{Arch: hwdef.NehalemEP, Variant: ThreadedNT, Size: 300, Iters: 30, Threads: 4, Placement: OneSocket})
	large2 := run(t, Config{Arch: hwdef.NehalemEP, Variant: ThreadedNT, Size: 450, Iters: 10, Threads: 4, Placement: OneSocket})
	if small.MLUPS <= large1.MLUPS {
		t.Errorf("in-cache run (%v) must beat memory-bound run (%v)", small.MLUPS, large1.MLUPS)
	}
	if math.Abs(large1.MLUPS-large2.MLUPS)/large1.MLUPS > 0.05 {
		t.Errorf("baseline must be flat out of cache: %v vs %v", large1.MLUPS, large2.MLUPS)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Arch: hwdef.NehalemEP, Variant: Wavefront, Size: 4, Iters: 1, Threads: 4},
		{Arch: hwdef.NehalemEP, Variant: Wavefront, Size: 100, Iters: 0, Threads: 4},
		{Arch: hwdef.NehalemEP, Variant: Wavefront, Size: 100, Iters: 1, Threads: 0},
		{Arch: hwdef.NehalemEP, Variant: Wavefront, Size: 100, Iters: 1, Threads: 9}, // > cores/socket
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %+v must fail", cfg)
		}
	}
}

func TestSplitPlacementPinsAcrossSockets(t *testing.T) {
	in, err := Prepare(Config{
		Arch: hwdef.NehalemEP, Variant: Wavefront, Size: 100, Iters: 2,
		Threads: 4, Placement: SplitPairs,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sockets := map[int]int{}
	for _, w := range in.Team.Workers {
		sockets[in.M.SocketOf(w.CPU)]++
	}
	if sockets[0] != 2 || sockets[1] != 2 {
		t.Errorf("split placement = %v, want 2 threads per socket", sockets)
	}
}

func TestLUPsAccounting(t *testing.T) {
	cfg := Config{Arch: hwdef.NehalemEP, Variant: Threaded, Size: 100, Iters: 7, Threads: 4}
	if got, want := cfg.LUPs(), 7e6; got != want {
		t.Errorf("LUPs = %v, want %v", got, want)
	}
	r := run(t, cfg)
	if r.LUPs != cfg.LUPs() {
		t.Errorf("result LUPs = %v, want %v", r.LUPs, cfg.LUPs())
	}
}
