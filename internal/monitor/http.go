package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HTTPSink is the in-process scrape endpoint of the agent.  It implements
// Sink (keeping a latest-value snapshot per series) and serves:
//
//	/metrics  latest value of every series, Prometheus-style text:
//	          likwid_<metric>{scope="socket",id="0"} <value> <sim time>
//	/query    windowed time series from the ring-buffer store as JSON:
//	          /query?metric=NAME&scope=socket&id=0&from=0.5&to=2.0
//	/healthz  liveness plus batch accounting
type HTTPSink struct {
	store *Store
	ln    net.Listener
	srv   *http.Server

	mu      sync.RWMutex
	latest  map[Key]Sample
	batches uint64
}

// NewHTTPSink listens on addr immediately (so scrapes work as soon as the
// agent is up) and serves in a background goroutine.  The store backs
// /query and may be nil to disable windowed queries.
func NewHTTPSink(addr string, store *Store) (*HTTPSink, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: http sink: %w", err)
	}
	h := &HTTPSink{store: store, ln: ln, latest: map[Key]Sample{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/healthz", h.handleHealth)
	h.srv = &http.Server{Handler: mux}
	go func() { _ = h.srv.Serve(ln) }()
	return h, nil
}

// Addr returns the bound listen address (useful with port 0 in tests).
func (h *HTTPSink) Addr() string { return h.ln.Addr().String() }

// Name implements Sink.
func (h *HTTPSink) Name() string { return "http" }

// Write updates the latest-value snapshot served by /metrics.
func (h *HTTPSink) Write(b Batch) error {
	h.mu.Lock()
	for _, s := range b.Samples {
		h.latest[s.Key()] = s
	}
	h.batches++
	h.mu.Unlock()
	return nil
}

// Close stops the server.
func (h *HTTPSink) Close() error { return h.srv.Close() }

func (h *HTTPSink) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	samples := make([]Sample, 0, len(h.latest))
	for _, s := range h.latest {
		samples = append(samples, s)
	}
	h.mu.RUnlock()
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		return a.ID < b.ID
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, s := range samples {
		fmt.Fprintf(w, "likwid_%s{scope=%q,id=%q} %s %s\n",
			SanitizeMetric(s.Metric), s.Scope, strconv.Itoa(s.ID),
			formatValue(s.Value), formatTime(s.Time))
	}
}

// queryResponse is the /query JSON payload.
type queryResponse struct {
	Metric string  `json:"metric"`
	Scope  string  `json:"scope"`
	ID     int     `json:"id"`
	Points []Point `json:"points"`
}

func (h *HTTPSink) handleQuery(w http.ResponseWriter, r *http.Request) {
	if h.store == nil {
		http.Error(w, "no store attached", http.StatusNotImplemented)
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		http.Error(w, "missing metric parameter", http.StatusBadRequest)
		return
	}
	scope := ScopeNode
	if sc := q.Get("scope"); sc != "" {
		var err error
		if scope, err = ParseScope(sc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	id := 0
	if is := q.Get("id"); is != "" {
		var err error
		if id, err = strconv.Atoi(is); err != nil {
			http.Error(w, "bad id parameter", http.StatusBadRequest)
			return
		}
	}
	from, to := 0.0, -1.0
	if fs := q.Get("from"); fs != "" {
		v, err := strconv.ParseFloat(fs, 64)
		if err != nil {
			http.Error(w, "bad from parameter", http.StatusBadRequest)
			return
		}
		from = v
	}
	if ts := q.Get("to"); ts != "" {
		v, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			http.Error(w, "bad to parameter", http.StatusBadRequest)
			return
		}
		to = v
	}
	key := h.resolveKey(metric, scope, id)
	resp := queryResponse{
		Metric: key.Metric,
		Scope:  key.Scope.String(),
		ID:     key.ID,
		Points: h.store.Window(key, from, to),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// resolveKey accepts either the exact stored metric name or its sanitized
// exposition form, so /query?metric=memory_bandwidth_mbytes_s works after
// scraping /metrics.
func (h *HTTPSink) resolveKey(metric string, scope Scope, id int) Key {
	key := Key{Metric: metric, Scope: scope, ID: id}
	if h.store.Len(key) > 0 {
		return key
	}
	want := strings.TrimPrefix(metric, "likwid_")
	for _, k := range h.store.Keys() {
		if k.Scope == scope && k.ID == id && SanitizeMetric(k.Metric) == want {
			return k
		}
	}
	return key
}

func (h *HTTPSink) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	batches := h.batches
	h.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"batches\":%d,\"uptime\":%q}\n",
		batches, time.Now().Format(time.RFC3339))
}
