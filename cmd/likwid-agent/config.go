package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"likwid"
	"likwid/internal/alert"
	"likwid/internal/derive"
	"likwid/internal/monitor"
	"likwid/internal/monitor/cluster"
	"likwid/internal/pin"
)

// agentConfig is the parsed and validated likwid-agent configuration.
// Everything checkable without side effects is validated at parse time
// (architecture, event group, CPU list, sink/load/tier spec shapes), so
// a typo fails fast instead of surfacing after collectors are up.
type agentConfig struct {
	arch         string
	group        string
	cpus         []int // nil = all
	interval     time.Duration
	duration     time.Duration
	collectors   []string // nil = all registered
	loadSpec     string
	buffer       int
	retain       int
	tiers        []monitor.Tier
	raw          bool
	sinks        []string
	receiver     string         // listen address; receiver mode when non-empty
	forward      string         // -forward: receiver re-push spec (federation hop)
	forwardEvery time.Duration  // -forward-downsample: per-hop averaging window
	labels       monitor.Labels // -labels: agent stamp / receiver ingest defaults
	adaptive     time.Duration
	rules        []*alert.Rule // parsed -rules file; nil = no alerting
	rulesFile    string
	groupWait    time.Duration         // -group-wait: alert grouping window; 0 = off
	deriveRules  []*derive.Rule        // parsed -derive file; nil with no routes = off
	deriveRoutes []monitor.IngestRoute // ingest routes of the -derive file
	deriveFile   string
	notifiers    []string   // -notify specs; default stdout when rules are set
	logLevel     slog.Level // -log-level, parsed
	logJSON      bool       // -log-format json
	pprof        bool       // -pprof: mount /debug/pprof/ on http sinks

	walDir           string        // -wal: durability state directory; empty = off
	snapshotInterval time.Duration // -snapshot-interval: ring/tier snapshot period

	// node is the simulated machine opened during validation, reused by
	// main so the group check and the monitored node agree.
	node *likwid.Node
}

// sinkSpecs collects repeated -sink flags.
type sinkSpecs []string

func (s *sinkSpecs) String() string { return strings.Join(*s, ",") }
func (s *sinkSpecs) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// parseAgentFlags parses argv (without the program name) into a
// validated configuration.  Usage and errors are written to errOut.
func parseAgentFlags(args []string, errOut io.Writer) (*agentConfig, error) {
	fs := flag.NewFlagSet("likwid-agent", flag.ContinueOnError)
	fs.SetOutput(errOut)
	arch := fs.String("a", "westmereEP", "node architecture")
	cpuList := fs.String("c", "", "processors to monitor (default: all)")
	group := fs.String("g", "MEM_DP", "perfctr event group to sample")
	interval := fs.Duration("i", 500*time.Millisecond, "sampling interval")
	duration := fs.Duration("duration", 0, "stop after this wall time (0 = until SIGINT)")
	collectorSet := fs.String("collectors", "", "comma-separated collectors (default: all registered)")
	loadSpec := fs.String("load", "stream", "background load: stream[:NTASKS] | idle")
	buffer := fs.Int("buffer", 64, "sink queue depth")
	retain := fs.Int("retain", 1024, "raw ring-buffer points per series")
	tierSpec := fs.String("tiers", "", "downsampled retention tiers, e.g. 10s:360,1m:720")
	raw := fs.Bool("raw", false, "emit per-event rates too")
	receiver := fs.String("receiver", "", "run as aggregation receiver on this listen address (no collectors)")
	forward := fs.String("forward", "", "receiver mode: re-push accepted samples upstream, push:[shard@|mirror@|failover@]URL[,URL...] — composes receivers into node→rack→cluster federation trees")
	forwardEvery := fs.Duration("forward-downsample", 0, "average each forwarded series into windows of this width before re-pushing (0 = forward every point; needs -forward)")
	labelSpec := fs.String("labels", "", "label set stamped onto every sample, e.g. job=lbm,cluster=emmy (receiver mode: defaults merged under each ingested sample's own labels)")
	adaptive := fs.Duration("adaptive", 0, "stretch unchanged collectors' intervals up to this cap (0 = off)")
	rulesFile := fs.String("rules", "", "alerting rule file (one rule per line; see internal/alert)")
	groupWait := fs.Duration("group-wait", 0, "coalesce alert events of one rule and state arriving within this window into a single grouped notification (0 = off; needs -rules)")
	deriveFile := fs.String("derive", "", "recorded-rule file: derived-series rules and ingest routes (see internal/derive)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug | info | warn | error")
	logFormat := fs.String("log-format", "text", "log encoding: text | json")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on every http sink and receiver")
	walDir := fs.String("wal", "", "durability directory: append WAL + periodic snapshots restore the store across restarts")
	snapInterval := fs.Duration("snapshot-interval", time.Minute, "ring/tier snapshot period; the WAL truncates at each snapshot (needs -wal)")
	var sinks sinkSpecs
	fs.Var(&sinks, "sink", "sink spec (repeatable): stdout | csv:PATH | jsonl:PATH | http:ADDR | push:URL | pushv4:URL; push/pushv4 also take a pool, push:[shard@|mirror@|failover@]URL,URL,...")
	var notifiers sinkSpecs
	fs.Var(&notifiers, "notify", "alert notifier spec (repeatable): stdout | jsonl:PATH | webhook:URL")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	// -snapshot-interval without -wal is a silent no-op; fail fast
	// instead.  fs.Visit sees only flags the user actually set, so the
	// default never trips this.
	var snapSet bool
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "snapshot-interval" {
			snapSet = true
		}
	})
	if snapSet && *walDir == "" {
		return nil, fmt.Errorf("-snapshot-interval needs -wal (no durability directory, nothing to snapshot)")
	}

	cfg := &agentConfig{
		arch:         *arch,
		group:        *group,
		interval:     *interval,
		duration:     *duration,
		loadSpec:     *loadSpec,
		buffer:       *buffer,
		retain:       *retain,
		raw:          *raw,
		sinks:        sinks,
		receiver:     *receiver,
		forward:      *forward,
		forwardEvery: *forwardEvery,
		adaptive:     *adaptive,
		rulesFile:    *rulesFile,
		groupWait:    *groupWait,
		deriveFile:   *deriveFile,
		notifiers:    notifiers,
		pprof:        *pprofFlag,

		walDir:           *walDir,
		snapshotInterval: *snapInterval,
	}
	switch strings.ToLower(*logLevel) {
	case "debug":
		cfg.logLevel = slog.LevelDebug
	case "info":
		cfg.logLevel = slog.LevelInfo
	case "warn", "warning":
		cfg.logLevel = slog.LevelWarn
	case "error":
		cfg.logLevel = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug | info | warn | error)", *logLevel)
	}
	switch strings.ToLower(*logFormat) {
	case "text":
	case "json":
		cfg.logJSON = true
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text | json)", *logFormat)
	}
	if *collectorSet != "" {
		for _, name := range strings.Split(*collectorSet, ",") {
			cfg.collectors = append(cfg.collectors, strings.TrimSpace(name))
		}
	}
	var err error
	if cfg.tiers, err = monitor.ParseTiers(*tierSpec); err != nil {
		return nil, err
	}
	if cfg.labels, err = monitor.ParseLabelSpec(*labelSpec); err != nil {
		return nil, err
	}
	if cfg.rulesFile != "" {
		src, rerr := os.ReadFile(cfg.rulesFile)
		if rerr != nil {
			return nil, fmt.Errorf("rules file: %w", rerr)
		}
		if cfg.rules, err = alert.ParseRules(string(src)); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.rulesFile, err)
		}
		if len(cfg.rules) == 0 {
			return nil, fmt.Errorf("rules file %s defines no rules", cfg.rulesFile)
		}
	}
	if cfg.deriveFile != "" {
		src, derr := os.ReadFile(cfg.deriveFile)
		if derr != nil {
			return nil, fmt.Errorf("derive file: %w", derr)
		}
		if cfg.deriveRules, cfg.deriveRoutes, err = derive.ParseFile(string(src)); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.deriveFile, err)
		}
		if len(cfg.deriveRules) == 0 && len(cfg.deriveRoutes) == 0 {
			return nil, fmt.Errorf("derive file %s defines no rules or routes", cfg.deriveFile)
		}
	}
	if *cpuList != "" {
		if cfg.cpus, err = pin.ParseCPUList(*cpuList); err != nil {
			return nil, err
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// newLogger builds the process logger from -log-level and -log-format.
func (c *agentConfig) newLogger(w io.Writer) *slog.Logger {
	opts := &slog.HandlerOptions{Level: c.logLevel}
	if c.logJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// validate cross-checks the configuration.  Receiver mode needs no
// machine: it only listens, so collector-side settings are skipped.
func (c *agentConfig) validate() error {
	if c.interval <= 0 {
		return fmt.Errorf("interval must be positive, got %v", c.interval)
	}
	if c.duration < 0 {
		return fmt.Errorf("duration must not be negative, got %v", c.duration)
	}
	if c.buffer <= 0 {
		return fmt.Errorf("sink queue depth must be positive, got %d", c.buffer)
	}
	if c.adaptive < 0 {
		return fmt.Errorf("adaptive cap must not be negative, got %v", c.adaptive)
	}
	if c.adaptive > 0 && c.adaptive < c.interval {
		return fmt.Errorf("adaptive cap %v is below the sampling interval %v", c.adaptive, c.interval)
	}
	if c.walDir != "" && c.snapshotInterval <= 0 {
		return fmt.Errorf("snapshot interval must be positive, got %v", c.snapshotInterval)
	}
	for _, spec := range c.sinks {
		// Multi-target push pools (shard@/mirror@/failover@, comma lists)
		// are cluster sink specs; single-URL push specs keep the plain
		// push sink's validation for backward compatibility.
		if cluster.IsSpec(spec) {
			if _, err := cluster.ParseSpec(spec); err != nil {
				return err
			}
			continue
		}
		if err := monitor.ValidateSinkSpec(spec); err != nil {
			return err
		}
	}
	if len(c.notifiers) > 0 && c.rulesFile == "" {
		return fmt.Errorf("-notify needs -rules (no rules, nothing to notify about)")
	}
	if c.groupWait < 0 {
		return fmt.Errorf("group wait must not be negative, got %v", c.groupWait)
	}
	if c.groupWait > 0 && c.rulesFile == "" {
		return fmt.Errorf("-group-wait needs -rules (no alerts, nothing to group)")
	}
	for _, spec := range c.notifiers {
		if err := alert.ValidateNotifierSpec(spec); err != nil {
			return err
		}
	}
	if c.forward != "" && c.receiver == "" {
		return fmt.Errorf("-forward needs -receiver (agents push with -sink push:URL; forwarding is the receiver-to-receiver hop)")
	}
	if c.forwardEvery < 0 {
		return fmt.Errorf("forward downsample window must not be negative, got %v", c.forwardEvery)
	}
	if c.forwardEvery > 0 && c.forward == "" {
		return fmt.Errorf("-forward-downsample needs -forward (nothing to downsample)")
	}
	if c.forward != "" {
		if _, err := cluster.ParseSpec(c.forward); err != nil {
			return err
		}
	}
	if c.receiver != "" {
		if len(c.sinks) > 0 {
			return fmt.Errorf("-receiver mode has no collectors to sink (-sink not allowed)")
		}
		return nil
	}

	node, err := likwid.Open(c.arch)
	if err != nil {
		return err
	}
	// A typo'd group is a configuration error, not a degraded collector:
	// fail fast instead of monitoring a node with no counters armed.
	if _, err := node.Group(c.group); err != nil {
		return err
	}
	c.node = node
	for _, cpu := range c.cpus {
		if cpu < 0 || cpu >= node.M.OS.NumCPUs() {
			return fmt.Errorf("cpu %d out of range (node has %d processors)", cpu, node.M.OS.NumCPUs())
		}
	}
	if _, _, err := parseLoadSpec(c.loadSpec); err != nil {
		return err
	}
	return nil
}

// reloadRules re-reads the -rules file and atomically swaps the
// engine's rule set — the SIGHUP / POST /rules/reload path.  Any error
// (unreadable file, parse error, empty file) leaves the running rules
// untouched, so a bad edit can never take alerting down.
func reloadRules(engine *alert.Engine, path string) (int, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("rules file: %w", err)
	}
	rules, err := alert.ParseRules(string(src))
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if len(rules) == 0 {
		return 0, fmt.Errorf("rules file %s defines no rules", path)
	}
	engine.Reload(rules)
	return len(rules), nil
}

// reloadDerive re-reads the -derive file, atomically swaps the engine's
// rule set, and returns the file's ingest routes for the caller to
// install on its HTTP sinks — the SIGHUP / POST /derive/reload path.
// Any error leaves the running rules and routes untouched.
func reloadDerive(engine *derive.Engine, path string) (rules int, routes []monitor.IngestRoute, err error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("derive file: %w", err)
	}
	parsed, routes, err := derive.ParseFile(string(src))
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(parsed) == 0 && len(routes) == 0 {
		return 0, nil, fmt.Errorf("derive file %s defines no rules or routes", path)
	}
	engine.Reload(parsed)
	return len(parsed), routes, nil
}

// parseLoadSpec validates a -load specification and returns its kind
// and task count (0 = the architecture default).
func parseLoadSpec(spec string) (kind string, nTasks int, err error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "idle":
		if arg != "" {
			return "", 0, fmt.Errorf("load spec %q: idle takes no argument", spec)
		}
		return kind, 0, nil
	case "stream":
		if arg == "" {
			return kind, 0, nil
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return "", 0, fmt.Errorf("bad load task count %q", arg)
		}
		return kind, n, nil
	default:
		return "", 0, fmt.Errorf("unknown load spec %q (stream[:NTASKS], idle)", spec)
	}
}
