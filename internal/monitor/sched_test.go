package monitor

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fakeCollector ticks a counter and optionally fails.
type fakeCollector struct {
	name     string
	interval time.Duration
	calls    atomic.Int64
	failures int64 // fail the first N calls
	value    float64
}

func (f *fakeCollector) Name() string            { return f.name }
func (f *fakeCollector) Scope() Scope            { return ScopeNode }
func (f *fakeCollector) Interval() time.Duration { return f.interval }

func (f *fakeCollector) Collect(ctx context.Context) ([]Sample, error) {
	n := f.calls.Add(1)
	if n <= f.failures {
		return nil, errors.New("transient failure")
	}
	return []Sample{{Metric: f.name, Scope: ScopeNode, Time: float64(n), Value: f.value}}, nil
}

// waitForWaiters blocks until the fake clock has n armed timers — i.e. the
// scheduler goroutines are parked in After and an Advance will be seen.
func waitForWaiters(t *testing.T, fc *FakeClock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fc.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d armed timers (have %d)", n, fc.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerTicksOnFakeClock(t *testing.T) {
	fc := NewFakeClock()
	st := NewStore(16)
	c := &fakeCollector{name: "fake", interval: time.Second, value: 42}
	s := NewScheduler(SchedulerOptions{Clock: fc, Store: st})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	for i := 0; i < 3; i++ {
		waitForWaiters(t, fc, 1)
		fc.Advance(time.Second)
		// The next After arms only once the tick was processed.
		waitForWaiters(t, fc, 1)
	}
	cancel()
	<-done

	if got := c.calls.Load(); got != 3 {
		t.Errorf("Collect called %d times, want 3", got)
	}
	k := Key{Metric: "fake", Scope: ScopeNode, ID: 0}
	if n := st.Len(k); n != 3 {
		t.Errorf("store holds %d points, want 3", n)
	}
	stats := s.Stats()
	if len(stats) != 1 || stats[0].Batches != 3 || stats[0].Samples != 3 {
		t.Errorf("Stats = %+v, want 3 batches / 3 samples", stats)
	}
}

func TestSchedulerCancellationStopsTicks(t *testing.T) {
	fc := NewFakeClock()
	c := &fakeCollector{name: "fake", interval: time.Second}
	s := NewScheduler(SchedulerOptions{Clock: fc})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()
	waitForWaiters(t, fc, 1)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if got := c.calls.Load(); got != 0 {
		t.Errorf("Collect called %d times after pure cancellation, want 0", got)
	}
}

func TestSchedulerErrorBackoff(t *testing.T) {
	fc := NewFakeClock()
	var reported atomic.Int64
	c := &fakeCollector{name: "flaky", interval: time.Second, failures: 2}
	s := NewScheduler(SchedulerOptions{
		Clock:      fc,
		MaxBackoff: 8 * time.Second,
		OnError:    func(string, error) { reported.Add(1) },
	})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	// Tick 1 fails -> backoff doubles to 2 s.
	waitForWaiters(t, fc, 1)
	fc.Advance(time.Second)
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 1 {
		t.Fatalf("after first tick: %d calls, want 1", got)
	}
	// 1 s is not enough any more: the timer needs the full 2 s.
	fc.Advance(time.Second)
	time.Sleep(5 * time.Millisecond)
	if got := c.calls.Load(); got != 1 {
		t.Fatalf("backoff ignored: %d calls after 1s, want still 1", got)
	}
	fc.Advance(time.Second) // completes the 2 s backoff -> second failure
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 2 {
		t.Fatalf("after backoff tick: %d calls, want 2", got)
	}
	// Third call succeeds after a 4 s backoff and resets to the interval.
	fc.Advance(4 * time.Second)
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 3 {
		t.Fatalf("after second backoff: %d calls, want 3", got)
	}
	fc.Advance(time.Second) // back to the 1 s interval
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 4 {
		t.Fatalf("after recovery: %d calls, want 4 (interval reset)", got)
	}
	cancel()
	<-done

	stats := s.Stats()
	if stats[0].Errors != 2 {
		t.Errorf("Errors = %d, want 2", stats[0].Errors)
	}
	if reported.Load() != 2 {
		t.Errorf("OnError observed %d failures, want 2", reported.Load())
	}
}

// changingCollector emits a controllable node-scope value, for the
// adaptive-interval tests.
type changingCollector struct {
	calls atomic.Int64
	value atomic.Int64 // value emitted by the next Collect
}

func (c *changingCollector) Name() string            { return "adaptive" }
func (c *changingCollector) Scope() Scope            { return ScopeNode }
func (c *changingCollector) Interval() time.Duration { return time.Second }

func (c *changingCollector) Collect(context.Context) ([]Sample, error) {
	n := c.calls.Add(1)
	return []Sample{{Metric: "gauge", Scope: ScopeNode, Time: float64(n),
		Value: float64(c.value.Load())}}, nil
}

// TestSchedulerAdaptiveIntervalStretch pins the adaptive cadence: an
// unchanged collector's interval doubles per tick up to the cap, and the
// first changed sample snaps it back to the declared interval.
func TestSchedulerAdaptiveIntervalStretch(t *testing.T) {
	fc := NewFakeClock()
	c := &changingCollector{}
	c.value.Store(42)
	s := NewScheduler(SchedulerOptions{Clock: fc, AdaptiveMax: 4 * time.Second})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	step := func(d time.Duration, wantCalls int64, what string) {
		t.Helper()
		waitForWaiters(t, fc, 1)
		fc.Advance(d)
		waitForWaiters(t, fc, 1)
		if got := c.calls.Load(); got != wantCalls {
			t.Fatalf("%s: %d calls, want %d", what, got, wantCalls)
		}
	}

	step(time.Second, 1, "first tick (no baseline yet)")
	step(time.Second, 2, "second tick (unchanged, stretches to 2s)")
	// The stretched delay must actually defer the next tick.
	fc.Advance(time.Second)
	time.Sleep(5 * time.Millisecond)
	if got := c.calls.Load(); got != 2 {
		t.Fatalf("stretch ignored: %d calls 1s into a 2s delay, want still 2", got)
	}
	step(time.Second, 3, "completing the 2s stretch (doubles to 4s)")
	step(4*time.Second, 4, "4s stretch (stays at the cap)")
	// A changed value snaps the cadence back to the 1 s interval.
	c.value.Store(43)
	step(4*time.Second, 5, "capped stretch with the change pending")
	step(time.Second, 6, "snapped back to the declared interval")

	cancel()
	<-done
	stats := s.Stats()
	if stats[0].Stretches != 4 {
		// Ticks 2, 3 and 4 stretched on the stable 42; tick 6 stretches
		// again because 43 is already stable against tick 5.
		t.Errorf("Stretches = %d, want 4", stats[0].Stretches)
	}
	if stats[0].Batches != 6 {
		t.Errorf("Batches = %d, want 6", stats[0].Batches)
	}
}

// TestSchedulerAdaptiveCapBelowIntervalIsInert pins the guard: a cap at
// or below a collector's own interval must not speed it up (clamping
// would sample *faster* than declared) — it keeps the declared cadence.
func TestSchedulerAdaptiveCapBelowIntervalIsInert(t *testing.T) {
	fc := NewFakeClock()
	c := &changingCollector{} // 1 s interval, constant value
	s := NewScheduler(SchedulerOptions{Clock: fc, AdaptiveMax: 500 * time.Millisecond})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	for i := int64(1); i <= 3; i++ {
		waitForWaiters(t, fc, 1)
		fc.Advance(time.Second)
		waitForWaiters(t, fc, 1)
		if got := c.calls.Load(); got != i {
			t.Fatalf("tick %d: %d calls, want %d (declared 1s cadence)", i, got, i)
		}
	}
	cancel()
	<-done
	if st := s.Stats(); st[0].Stretches != 0 {
		t.Errorf("Stretches = %d, want 0 with an inert cap", st[0].Stretches)
	}
}

// TestSamplesUnchangedEpsilon pins the comparison: relative epsilon with
// an absolute floor, mismatched series sets always count as changed.
func TestSamplesUnchangedEpsilon(t *testing.T) {
	k := func(v float64) []Sample {
		return []Sample{{Metric: "m", Scope: ScopeNode, Time: 9, Value: v}}
	}
	prev := map[Key]float64{{Metric: "m", Scope: ScopeNode}: 1e9}
	if !samplesUnchanged(prev, k(1e9+0.1), 1e-9) {
		t.Error("0.1 absolute on 1e9 must be within a 1e-9 relative epsilon")
	}
	if samplesUnchanged(prev, k(1e9+10), 1e-9) {
		t.Error("10 absolute on 1e9 must exceed a 1e-9 relative epsilon")
	}
	if !samplesUnchanged(map[Key]float64{{Metric: "m", Scope: ScopeNode}: 0}, k(0), 1e-9) {
		t.Error("exact zeros must count as unchanged")
	}
	if samplesUnchanged(prev, nil, 1e-9) {
		t.Error("a vanished series must count as changed")
	}
	other := []Sample{{Metric: "other", Scope: ScopeNode, Value: 1e9}}
	if samplesUnchanged(prev, other, 1e-9) {
		t.Error("a renamed series must count as changed")
	}
}

func TestFakeClockAdvanceFiresDueTimersOnly(t *testing.T) {
	fc := NewFakeClock()
	short := fc.After(time.Second)
	long := fc.After(3 * time.Second)
	fc.Advance(time.Second)
	select {
	case <-short:
	default:
		t.Fatal("1 s timer did not fire after 1 s advance")
	}
	select {
	case <-long:
		t.Fatal("3 s timer fired after only 1 s")
	default:
	}
	fc.Advance(2 * time.Second)
	select {
	case <-long:
	default:
		t.Fatal("3 s timer did not fire after 3 s total")
	}
}
