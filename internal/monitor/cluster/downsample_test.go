package cluster

import (
	"testing"
	"time"

	"likwid/internal/monitor"
)

// captureSink records every batch it receives.
type captureSink struct {
	batches []monitor.Batch
	closed  bool
}

func (c *captureSink) Name() string                { return "capture" }
func (c *captureSink) Write(b monitor.Batch) error { c.batches = append(c.batches, b); return nil }
func (c *captureSink) Close() error                { c.closed = true; return nil }

func (c *captureSink) samples() []monitor.Sample {
	var out []monitor.Sample
	for _, b := range c.batches {
		out = append(out, b.Samples...)
	}
	return out
}

// TestDownsamplerAveragesWindows pins the hop semantics: a 5 s window
// over a 1 Hz ramp forwards one CompactMean-style average per window,
// stamped at the window start.
func TestDownsamplerAveragesWindows(t *testing.T) {
	cap := &captureSink{}
	d := NewDownsampler(5*time.Second, cap)
	for i := 0; i < 10; i++ {
		tm := float64(i)
		err := d.Write(monitor.Batch{Collector: "fwd", Time: tm, Samples: []monitor.Sample{
			{Source: "n1", Metric: "bw", Scope: monitor.ScopeNode, Time: tm, Value: tm},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	// t=0..4 closed when t=5 arrived: avg 2 at window start 0.
	got := cap.samples()
	if len(got) != 1 || got[0].Time != 0 || got[0].Value != 2 {
		t.Fatalf("mid-stream emission = %+v, want one sample t=0 v=2", got)
	}
	// Close flushes the open window t=5..9: avg 7 at start 5.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	got = cap.samples()
	if len(got) != 2 || got[1].Time != 5 || got[1].Value != 7 {
		t.Fatalf("flush emission = %+v, want second sample t=5 v=7", got)
	}
	if !cap.closed {
		t.Error("downsampler did not close the wrapped sink")
	}
	if got[0].Source != "n1" || got[0].Metric != "bw" {
		t.Errorf("emitted sample lost its identity: %+v", got[0])
	}
}

// TestDownsamplerKeepsSeriesApart pins that windows accumulate per
// series key, not per metric name: two sources' streams average
// independently.
func TestDownsamplerKeepsSeriesApart(t *testing.T) {
	cap := &captureSink{}
	d := NewDownsampler(10*time.Second, cap)
	for i := 0; i < 5; i++ {
		tm := float64(i)
		_ = d.Write(monitor.Batch{Collector: "fwd", Time: tm, Samples: []monitor.Sample{
			{Source: "n1", Metric: "bw", Scope: monitor.ScopeNode, Time: tm, Value: 10},
			{Source: "n2", Metric: "bw", Scope: monitor.ScopeNode, Time: tm, Value: 20},
		}})
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	got := cap.samples()
	if len(got) != 2 {
		t.Fatalf("flush emitted %d samples, want 2 (one per source)", len(got))
	}
	// Close flushes in deterministic key order: n1 before n2.
	if got[0].Source != "n1" || got[0].Value != 10 || got[1].Source != "n2" || got[1].Value != 20 {
		t.Errorf("per-source averages = %+v, want n1=10 then n2=20", got)
	}
}

// TestDownsamplerDisabledPassesThrough pins that a zero window is the
// identity: the wrapped sink is returned unwrapped.
func TestDownsamplerDisabledPassesThrough(t *testing.T) {
	cap := &captureSink{}
	if s := NewDownsampler(0, cap); s != monitor.Sink(cap) {
		t.Error("NewDownsampler(0) wrapped the sink; want pass-through")
	}
}
