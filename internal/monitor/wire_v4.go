package monitor

// The v4 wire format: a binary columnar batch encoding, content-negotiated
// on POST /ingest alongside the v1–v3 JSON-lines schemas via the
// Content-Type "application/x-likwid-v4".
//
// A batch is grouped into per-series column groups — all samples sharing
// one (collector, source, metric, scope, id, labels) identity — so the
// per-sample cost is three columns, not a repeated JSON object:
//
//	payload := "LKW4" uvarint(groupCount) group*
//	group   := str(collector) str(source) str(metric) str(scope)
//	           uvarint(id)
//	           uvarint(labelCount) (str(name) str(value))*   // sorted by name
//	           uvarint(sampleCount)
//	           col(times) col(sentAts) col(values)
//	str     := uvarint(len) bytes
//	col     := uvarint(len) bytes
//
// The time and sent_at columns are delta-of-delta codes over the int64
// reinterpretation of each float64's bit pattern (Gorilla-style
// prefix-coded zigzag fields, two's-complement wrap): lossless for every
// float64, and because the bit patterns of a regularly-sampled monotone
// series have near-constant deltas within a binade, the second
// difference is usually zero — one bit per sample, and sent_at
// (constant per flush) is one bit always.
// The value column is the classic Gorilla XOR bitstream (Pelkonen et
// al., VLDB 2015): 1 bit for a repeated value, a reused
// leading/trailing-zero window for slowly-moving ones.
//
// Decoding mirrors decodeIngest's contract exactly: all-or-nothing
// validation, Samples with Labels unset, index-aligned wire label maps
// and sent_at stamps, and the v1 source/metric prefix shim for groups
// without a source.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// V4ContentType is the Content-Type negotiating the v4 binary columnar
// batch format on POST /ingest.
const V4ContentType = "application/x-likwid-v4"

// v4Magic leads every v4 payload; a JSON-lines body posted with the v4
// Content-Type fails here, loudly.
const v4Magic = "LKW4"

// v4 sanity caps: group and sample counts are validated against these
// (and against the remaining payload size) before any allocation, so a
// four-byte header cannot declare a billion-entry batch.
const (
	v4MaxGroups          = 1 << 20
	v4MaxSamplesPerGroup = 1 << 24
)

// ---- encoding -------------------------------------------------------------

// v4GroupKey is the series identity a column group shares.  Labels ride
// as their canonical rendering so map identity does not split groups.
type v4GroupKey struct {
	collector string
	source    string
	metric    string
	scope     string
	id        int
	labels    string
}

type v4Group struct {
	key     v4GroupKey
	labels  map[string]string
	times   []float64
	sentAts []float64
	values  []float64
}

// appendString is the length-prefixed string primitive every group
// header field is built from.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeV4 renders pending wire samples as one v4 payload.  Group order
// is first-appearance order and sample order within a group is arrival
// order, so the encoding is deterministic (golden-testable) and the
// receiver appends in the same order a JSON-lines push would.
func encodeV4(samples []jsonSample) ([]byte, error) {
	groups := make([]*v4Group, 0, 8)
	index := make(map[v4GroupKey]*v4Group, 8)
	for i, js := range samples {
		if js.ID < 0 {
			return nil, fmt.Errorf("monitor: v4 encode: sample %d: negative id %d", i, js.ID)
		}
		k := v4GroupKey{
			collector: js.Collector,
			source:    js.Source,
			metric:    js.Metric,
			scope:     js.Scope,
			id:        js.ID,
			labels:    FormatLabelMap(js.Labels),
		}
		g := index[k]
		if g == nil {
			g = &v4Group{key: k, labels: js.Labels}
			index[k] = g
			groups = append(groups, g)
		}
		g.times = append(g.times, js.Time)
		g.sentAts = append(g.sentAts, js.SentAt)
		g.values = append(g.values, js.Value)
	}

	out := make([]byte, 0, 64+len(samples)*4)
	out = append(out, v4Magic...)
	out = binary.AppendUvarint(out, uint64(len(groups)))
	for _, g := range groups {
		out = appendString(out, g.key.collector)
		out = appendString(out, g.key.source)
		out = appendString(out, g.key.metric)
		out = appendString(out, g.key.scope)
		out = binary.AppendUvarint(out, uint64(g.key.id))
		names := make([]string, 0, len(g.labels))
		for name := range g.labels {
			names = append(names, name)
		}
		sort.Strings(names)
		out = binary.AppendUvarint(out, uint64(len(names)))
		for _, name := range names {
			out = appendString(out, name)
			out = appendString(out, g.labels[name])
		}
		out = binary.AppendUvarint(out, uint64(len(g.times)))
		out = appendColumn(out, encodeDeltaColumn(g.times))
		out = appendColumn(out, encodeDeltaColumn(g.sentAts))
		out = appendColumn(out, encodeXORColumn(g.values))
	}
	return out, nil
}

func appendColumn(dst, col []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(col)))
	return append(dst, col...)
}

// encodeDeltaColumn delta-of-delta codes a float64 column over the int64
// reinterpretation of each value's bit pattern.  Wrapping int64
// arithmetic makes the round trip exact for every input, including NaN
// and infinities (the ingest validator rejects those later, not the
// codec).  The first entry is 64 raw bits; every later entry is the
// second difference under a Gorilla-style prefix code, so a regular
// series (second difference zero) costs one bit per sample:
//
//	'0'                 dod == 0
//	'10'    + 7 bits    zigzag(dod) < 2^7
//	'110'   + 12 bits   zigzag(dod) < 2^12
//	'1110'  + 20 bits   zigzag(dod) < 2^20
//	'11110' + 32 bits   zigzag(dod) < 2^32
//	'11111' + 64 bits   everything else
func encodeDeltaColumn(vals []float64) []byte {
	var w bitWriter
	var prev, prevDelta int64
	for i, v := range vals {
		b := int64(math.Float64bits(v))
		if i == 0 {
			w.writeBits(uint64(b), 64)
			prev = b
			continue
		}
		delta := b - prev
		prev = b
		dod := delta - prevDelta
		prevDelta = delta
		z := uint64(dod)<<1 ^ uint64(dod>>63) // zigzag
		switch {
		case z == 0:
			w.writeBit(0)
		case z < 1<<7:
			w.writeBits(0b10, 2)
			w.writeBits(z, 7)
		case z < 1<<12:
			w.writeBits(0b110, 3)
			w.writeBits(z, 12)
		case z < 1<<20:
			w.writeBits(0b1110, 4)
			w.writeBits(z, 20)
		case z < 1<<32:
			w.writeBits(0b11110, 5)
			w.writeBits(z, 32)
		default:
			w.writeBits(0b11111, 5)
			w.writeBits(z, 64)
		}
	}
	return w.bytes()
}

func decodeDeltaColumn(col []byte, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, 4096))
	r := bitReader{b: col}
	var prev, prevDelta int64
	for i := 0; i < n; i++ {
		if i == 0 {
			v, err := r.readBits(64)
			if err != nil {
				return nil, fmt.Errorf("truncated delta column at entry 0")
			}
			prev = int64(v)
			out = append(out, math.Float64frombits(v))
			continue
		}
		var nbits uint
		var prefix int
		for prefix = 0; prefix < 5; prefix++ {
			bit, err := r.readBit()
			if err != nil {
				return nil, fmt.Errorf("truncated delta column at entry %d", i)
			}
			if bit == 0 {
				break
			}
		}
		switch prefix {
		case 0:
			nbits = 0
		case 1:
			nbits = 7
		case 2:
			nbits = 12
		case 3:
			nbits = 20
		case 4:
			nbits = 32
		default:
			nbits = 64
		}
		var dod int64
		if nbits > 0 {
			z, err := r.readBits(nbits)
			if err != nil {
				return nil, fmt.Errorf("truncated delta column at entry %d", i)
			}
			dod = int64(z>>1) ^ -int64(z&1) // unzigzag
		}
		prevDelta += dod
		prev += prevDelta
		out = append(out, math.Float64frombits(uint64(prev)))
	}
	if rest := uint(len(col))*8 - r.pos; rest >= 8 {
		return nil, fmt.Errorf("%d trailing bits after delta column", rest)
	}
	return out, nil
}

// ---- Gorilla XOR value column ---------------------------------------------

type bitWriter struct {
	b   []byte
	cur byte
	n   uint // bits used in cur
}

func (w *bitWriter) writeBit(bit uint64) {
	w.cur |= byte(bit&1) << (7 - w.n)
	w.n++
	if w.n == 8 {
		w.b = append(w.b, w.cur)
		w.cur, w.n = 0, 0
	}
}

func (w *bitWriter) writeBits(v uint64, nbits uint) {
	for i := nbits; i > 0; i-- {
		w.writeBit(v >> (i - 1))
	}
}

func (w *bitWriter) bytes() []byte {
	if w.n > 0 {
		w.b = append(w.b, w.cur)
		w.cur, w.n = 0, 0
	}
	return w.b
}

type bitReader struct {
	b   []byte
	pos uint // bit cursor
}

func (r *bitReader) readBit() (uint64, error) {
	if r.pos >= uint(len(r.b))*8 {
		return 0, io.ErrUnexpectedEOF
	}
	bit := uint64(r.b[r.pos/8]>>(7-r.pos%8)) & 1
	r.pos++
	return bit, nil
}

func (r *bitReader) readBits(nbits uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < nbits; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | bit
	}
	return v, nil
}

// encodeXORColumn is the Gorilla value codec: the first value verbatim
// (64 bits); then per value either a 0 bit (unchanged), or 1+0 and the
// XOR's meaningful bits inside the previous leading/trailing-zero
// window, or 1+1 and an explicit 5-bit leading-zero count, 6-bit
// significant-bit count minus one, and the bits themselves.
func encodeXORColumn(vals []float64) []byte {
	var w bitWriter
	var prev uint64
	prevLead, prevSig := uint(0), uint(0) // prevSig==0: no window yet
	for i, v := range vals {
		b := math.Float64bits(v)
		if i == 0 {
			w.writeBits(b, 64)
			prev = b
			continue
		}
		xor := b ^ prev
		prev = b
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31 // 5-bit field; more zeros just ride inside the window
		}
		trail := uint(bits.TrailingZeros64(xor))
		sig := 64 - lead - trail
		if prevSig > 0 && lead >= prevLead && 64-prevLead-prevSig <= trail {
			// The XOR fits the previous window: reuse it.
			w.writeBit(0)
			w.writeBits(xor>>(64-prevLead-prevSig), prevSig)
			continue
		}
		w.writeBit(1)
		w.writeBits(uint64(lead), 5)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>trail, sig)
		prevLead, prevSig = lead, sig
	}
	return w.bytes()
}

func decodeXORColumn(col []byte, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, 4096))
	r := bitReader{b: col}
	var prev uint64
	prevLead, prevSig := uint(0), uint(0)
	for i := 0; i < n; i++ {
		if i == 0 {
			v, err := r.readBits(64)
			if err != nil {
				return nil, fmt.Errorf("truncated value column at entry 0")
			}
			prev = v
			out = append(out, math.Float64frombits(v))
			continue
		}
		changed, err := r.readBit()
		if err != nil {
			return nil, fmt.Errorf("truncated value column at entry %d", i)
		}
		if changed == 0 {
			out = append(out, math.Float64frombits(prev))
			continue
		}
		newWindow, err := r.readBit()
		if err != nil {
			return nil, fmt.Errorf("truncated value column at entry %d", i)
		}
		if newWindow == 1 {
			lead, err := r.readBits(5)
			if err != nil {
				return nil, fmt.Errorf("truncated value column at entry %d", i)
			}
			sigM1, err := r.readBits(6)
			if err != nil {
				return nil, fmt.Errorf("truncated value column at entry %d", i)
			}
			prevLead, prevSig = uint(lead), uint(sigM1)+1
			if prevLead+prevSig > 64 {
				return nil, fmt.Errorf("value column entry %d: window %d+%d exceeds 64 bits", i, prevLead, prevSig)
			}
		} else if prevSig == 0 {
			return nil, fmt.Errorf("value column entry %d reuses a window before one was set", i)
		}
		mbits, err := r.readBits(prevSig)
		if err != nil {
			return nil, fmt.Errorf("truncated value column at entry %d", i)
		}
		prev ^= mbits << (64 - prevLead - prevSig)
		out = append(out, math.Float64frombits(prev))
	}
	// Only the final byte's padding may remain.
	if rest := uint(len(col))*8 - r.pos; rest >= 8 {
		return nil, fmt.Errorf("%d trailing bits after value column", rest)
	}
	return out, nil
}

// ---- decoding -------------------------------------------------------------

// v4Decoder walks a payload slice with positioned errors.
type v4Decoder struct {
	b   []byte
	off int
}

func (d *v4Decoder) uvarint(what string) (uint64, error) {
	v, sz := binary.Uvarint(d.b[d.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("truncated %s at offset %d", what, d.off)
	}
	d.off += sz
	return v, nil
}

func (d *v4Decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)-d.off) {
		return "", fmt.Errorf("%s of %d bytes overruns payload at offset %d", what, n, d.off)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *v4Decoder) column(what string) ([]byte, error) {
	n, err := d.uvarint(what + " column length")
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("%s column of %d bytes overruns payload at offset %d", what, n, d.off)
	}
	col := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return col, nil
}

// decodeV4 parses and validates one v4 binary ingest payload with
// decodeIngest's exact contract: all-or-nothing (any malformed group
// rejects the whole batch), Samples with Labels unset, the validated
// wire label maps and sent_at stamps index-aligned alongside, and the v1
// prefix shim applied to sourceless groups.  The reader is expected to
// be size-bounded by the caller (MaxBytesReader / limitedReader).
func decodeV4(r io.Reader) ([]Sample, []map[string]string, []float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(data) < len(v4Magic) || string(data[:len(v4Magic)]) != v4Magic {
		return nil, nil, nil, fmt.Errorf("not a v4 payload (missing %q magic)", v4Magic)
	}
	d := &v4Decoder{b: data, off: len(v4Magic)}
	groupCount, err := d.uvarint("group count")
	if err != nil {
		return nil, nil, nil, err
	}
	if groupCount > v4MaxGroups || groupCount > uint64(len(data)) {
		return nil, nil, nil, fmt.Errorf("implausible group count %d", groupCount)
	}
	var (
		out       []Sample
		labelMaps []map[string]string
		sentAts   []float64
	)
	for gi := uint64(0); gi < groupCount; gi++ {
		// Collector is identity metadata on the wire (like v1–v3's
		// "collector" field); the store keys on source/metric/scope/id/
		// labels, so it is decoded and dropped.
		if _, err := d.str("collector"); err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		source, err := d.str("source")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		metric, err := d.str("metric")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		scopeName, err := d.str("scope")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		id, err := d.uvarint("id")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		labelCount, err := d.uvarint("label count")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		if labelCount > uint64(len(data)) {
			return nil, nil, nil, fmt.Errorf("group %d: implausible label count %d", gi, labelCount)
		}
		var labels map[string]string
		for li := uint64(0); li < labelCount; li++ {
			name, err := d.str("label name")
			if err != nil {
				return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
			}
			value, err := d.str("label value")
			if err != nil {
				return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
			}
			if labels == nil {
				labels = make(map[string]string, labelCount)
			}
			if _, dup := labels[name]; dup {
				return nil, nil, nil, fmt.Errorf("group %d: duplicate label %q", gi, name)
			}
			labels[name] = value
		}
		sampleCount, err := d.uvarint("sample count")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		if sampleCount > v4MaxSamplesPerGroup {
			return nil, nil, nil, fmt.Errorf("group %d: implausible sample count %d", gi, sampleCount)
		}
		timeCol, err := d.column("time")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		sentAtCol, err := d.column("sent_at")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		valueCol, err := d.column("value")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		times, err := decodeDeltaColumn(timeCol, int(sampleCount))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: time: %w", gi, err)
		}
		groupSentAts, err := decodeDeltaColumn(sentAtCol, int(sampleCount))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: sent_at: %w", gi, err)
		}
		values, err := decodeXORColumn(valueCol, int(sampleCount))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: value: %w", gi, err)
		}

		// Per-record validation, mirroring decodeIngest rule for rule.
		scope, err := ParseScope(scopeName)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		if strings.TrimSpace(metric) == "" {
			return nil, nil, nil, fmt.Errorf("group %d: empty metric", gi)
		}
		if id > math.MaxInt32 {
			return nil, nil, nil, fmt.Errorf("group %d: implausible id %d", gi, id)
		}
		if err := CheckLabelMap(labels); err != nil {
			return nil, nil, nil, fmt.Errorf("group %d: %w", gi, err)
		}
		sampleSource, sampleMetric := source, metric
		if sampleSource == "" {
			// The same v1 compat shim decodeIngest applies.
			sampleSource, sampleMetric, _ = SplitSourceMetric(metric)
		}
		for si := 0; si < int(sampleCount); si++ {
			t, v := times[si], values[si]
			if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
				return nil, nil, nil, fmt.Errorf("group %d sample %d: bad time %v", gi, si, t)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, nil, fmt.Errorf("group %d sample %d: bad value %v", gi, si, v)
			}
			out = append(out, Sample{
				Source: sampleSource,
				Metric: sampleMetric,
				Scope:  scope,
				ID:     int(id),
				Time:   t,
				Value:  v,
			})
			labelMaps = append(labelMaps, labels)
			sentAts = append(sentAts, groupSentAts[si])
		}
	}
	if d.off != len(data) {
		return nil, nil, nil, fmt.Errorf("%d trailing bytes after last group", len(data)-d.off)
	}
	return out, labelMaps, sentAts, nil
}
