package monitor

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Point is one (time, value) observation of a series.
type Point struct {
	Time  float64 `json:"time"`
	Value float64 `json:"value"`
}

// series is one metric's fixed-capacity ring buffer.  Old points are
// overwritten in place once the ring is full, bounding the agent's memory
// no matter how long it runs.
type series struct {
	mu   sync.RWMutex
	buf  []Point
	head int // next write position
	n    int // filled entries, <= len(buf)
}

func (s *series) append(p Point) {
	s.mu.Lock()
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// snapshot copies the retained points oldest-first.
func (s *series) snapshot() []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Point, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

func (s *series) latest() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.n == 0 {
		return Point{}, false
	}
	idx := s.head - 1
	if idx < 0 {
		idx += len(s.buf)
	}
	return s.buf[idx], true
}

func (s *series) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// storeShards is the lock-striping width of the store: writers of
// different series contend only within their shard, so concurrent
// collectors rarely serialize on each other.
const storeShards = 16

type storeShard struct {
	mu     sync.RWMutex
	series map[Key]*series
}

// Store is the agent's in-memory time-series database: one bounded ring
// buffer per (metric, scope, id) series behind RWMutex-sharded maps.
type Store struct {
	capacity int
	shards   [storeShards]storeShard
}

// NewStore creates a store retaining up to capacity points per series
// (default 1024 when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = 1024
	}
	st := &Store{capacity: capacity}
	for i := range st.shards {
		st.shards[i].series = map[Key]*series{}
	}
	return st
}

func (st *Store) shardOf(k Key) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(k.Metric))
	h.Write([]byte{byte(k.Scope), byte(k.ID), byte(k.ID >> 8)})
	return &st.shards[h.Sum32()%storeShards]
}

func (st *Store) getOrCreate(k Key) *series {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s = sh.series[k]; s == nil {
		s = &series{buf: make([]Point, st.capacity)}
		sh.series[k] = s
	}
	return s
}

// Append records one observation.
func (st *Store) Append(k Key, p Point) { st.getOrCreate(k).append(p) }

// AppendBatch records every sample of a batch.
func (st *Store) AppendBatch(b Batch) {
	for _, s := range b.Samples {
		st.Append(s.Key(), Point{Time: s.Time, Value: s.Value})
	}
}

// Window returns the retained points of one series with from <= Time <= to,
// oldest first.  A negative "to" means "until the newest point".
func (st *Store) Window(k Key, from, to float64) []Point {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s == nil {
		return nil
	}
	all := s.snapshot()
	out := all[:0:0]
	for _, p := range all {
		if p.Time < from || (to >= 0 && p.Time > to) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Latest returns the newest point of a series.
func (st *Store) Latest(k Key) (Point, bool) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s == nil {
		return Point{}, false
	}
	return s.latest()
}

// Len reports the retained point count of a series.
func (st *Store) Len(k Key) int {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s == nil {
		return 0
	}
	return s.len()
}

// Keys lists every series, sorted by metric, scope, id for stable output.
func (st *Store) Keys() []Key {
	var out []Key
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for k := range sh.series {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].ID < out[j].ID
	})
	return out
}
