package monitor

import "math"

// SeriesState is the portable snapshot of one series: everything needed
// to rebuild its raw ring and retention tiers in a fresh store.  It is
// the unit the persist package serializes — domain types here, wire
// DTOs there.
type SeriesState struct {
	Key        Key
	Raw        []Point // oldest first
	Tiers      []TierState
	Compaction Compaction
}

// TierState is one tier's sealed buckets plus its open accumulator.
type TierState struct {
	Res     float64
	Buckets []Bucket // sealed, oldest first
	Open    *OpenBucketState
}

// OpenBucketState is the open bucket's accumulator, carried verbatim so
// a restored series seals the identical bucket the crashed one would
// have (count-weighted average, exact min/max, the median scratch set).
type OpenBucketState struct {
	Start        float64
	Count        int
	Min, Max     float64
	Sum          float64
	LastT, LastV float64
	Medians      []float64
}

// DumpState snapshots every series, sorted by key for deterministic
// output.  Each series is copied under its read lock, so individual
// series are internally consistent; the store keeps serving appends on
// other series while the dump runs.
func (st *Store) DumpState() []SeriesState {
	keys := st.Keys()
	out := make([]SeriesState, 0, len(keys))
	for _, k := range keys {
		s := st.lookup(k)
		if s == nil {
			continue
		}
		out = append(out, s.dumpState())
	}
	return out
}

func (s *series) dumpState() SeriesState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	state := SeriesState{Key: s.key}
	state.Raw = make([]Point, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		state.Raw = append(state.Raw, s.buf[(start+i)%len(s.buf)])
	}
	for _, t := range s.tiers {
		ts := TierState{Res: t.res}
		ts.Buckets = make([]Bucket, 0, t.n)
		bstart := t.head - t.n
		if bstart < 0 {
			bstart += len(t.buf)
		}
		for i := 0; i < t.n; i++ {
			ts.Buckets = append(ts.Buckets, t.buf[(bstart+i)%len(t.buf)])
		}
		if t.open && t.count > 0 {
			ts.Open = &OpenBucketState{
				Start: t.openStart, Count: t.count,
				Min: t.min, Max: t.max, Sum: t.sum,
				LastT: t.lastT, LastV: t.lastV,
				Medians: append([]float64(nil), t.medians...),
			}
		}
		state.Tiers = append(state.Tiers, ts)
	}
	if len(s.tiers) > 0 && s.tiers[0].step {
		state.Compaction = CompactLast
	}
	return state
}

// RestoreState loads series states into the store, replacing any prior
// contents of the named series.  Intended for boot-time recovery before
// traffic (and before SetJournal, so restored points are not
// re-journaled).  States are adapted to the store's current shape: raw
// points beyond the ring capacity keep the newest, and tier states are
// matched to configured tiers by resolution — a tier dumped under an
// old configuration that no longer exists is dropped rather than
// mis-folded.
func (st *Store) RestoreState(states []SeriesState) {
	// Bulk-create first: one snapshot clone and one index re-sort for
	// the whole restore, instead of per-series clones at O(N²) cost on
	// a large snapshot.
	keys := make([]Key, len(states))
	for i := range states {
		keys[i] = states[i].Key
	}
	st.ensureMany(keys)
	for _, state := range states {
		st.lookup(state.Key).restoreState(state)
	}
}

func (s *series) restoreState(state SeriesState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw := state.Raw
	if len(raw) > len(s.buf) {
		raw = raw[len(raw)-len(s.buf):]
	}
	n := copy(s.buf, raw)
	s.n = n
	s.head = n % len(s.buf)
	s.appends += uint64(len(state.Raw))
	for _, t := range s.tiers {
		t.step = state.Compaction == CompactLast
		for _, ts := range state.Tiers {
			if ts.Res != t.res {
				continue
			}
			t.restoreState(ts)
			break
		}
	}
}

func (t *tierRing) restoreState(ts TierState) {
	buckets := ts.Buckets
	if len(buckets) > len(t.buf) {
		buckets = buckets[len(buckets)-len(t.buf):]
	}
	n := copy(t.buf, buckets)
	t.n = n
	t.head = n % len(t.buf)
	t.seals += uint64(len(ts.Buckets))
	t.open = false
	if o := ts.Open; o != nil && o.Count > 0 {
		t.open = true
		t.openStart = o.Start
		t.count = o.Count
		t.min, t.max = o.Min, o.Max
		t.sum = o.Sum
		t.lastT, t.lastV = o.LastT, o.LastV
		t.medians = append(t.medians[:0], o.Medians...)
	} else {
		t.count = 0
		t.sum = 0
		t.min = math.Inf(1)
		t.max = math.Inf(-1)
		t.lastT = math.Inf(-1)
		t.medians = t.medians[:0]
	}
}
