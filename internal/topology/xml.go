package topology

import (
	"encoding/xml"
	"fmt"
)

// XML output — "On popular demand, future releases will also include
// support for XML output" (§V of the paper).

// xmlTopology is the XML document schema of a topology report.
type xmlTopology struct {
	XMLName        xml.Name    `xml:"topology"`
	CPUName        string      `xml:"cpu>name"`
	ClockMHz       float64     `xml:"cpu>clockMHz"`
	Family         int         `xml:"cpu>family"`
	Model          int         `xml:"cpu>model"`
	Stepping       int         `xml:"cpu>stepping"`
	Sockets        int         `xml:"geometry>sockets"`
	CoresPerSocket int         `xml:"geometry>coresPerSocket"`
	ThreadsPerCore int         `xml:"geometry>threadsPerCore"`
	Threads        []xmlThread `xml:"hwThreads>thread"`
	Caches         []xmlCache  `xml:"caches>cache"`
	NUMA           []xmlNUMA   `xml:"numa>domain,omitempty"`
}

type xmlThread struct {
	Proc     int    `xml:"id,attr"`
	ThreadID int    `xml:"smt,attr"`
	CoreID   int    `xml:"core,attr"`
	SocketID int    `xml:"socket,attr"`
	APICID   uint32 `xml:"apic,attr"`
}

type xmlCache struct {
	Level     int        `xml:"level,attr"`
	Type      string     `xml:"type,attr"`
	SizeKB    int        `xml:"sizeKB"`
	Assoc     int        `xml:"associativity"`
	Sets      int        `xml:"sets"`
	LineSize  int        `xml:"lineSize"`
	Inclusive bool       `xml:"inclusive"`
	SharedBy  int        `xml:"sharedBy"`
	Groups    []xmlGroup `xml:"groups>group"`
}

type xmlGroup struct {
	Processors []int `xml:"proc"`
}

type xmlNUMA struct {
	ID         int   `xml:"id,attr"`
	Processors []int `xml:"proc"`
	TotalMemMB int   `xml:"totalMemMB"`
	Distances  []int `xml:"distance"`
}

// XML renders the decoded topology as an XML document.
func (info *Info) XML() (string, error) {
	doc := xmlTopology{
		CPUName:        info.CPUName,
		ClockMHz:       info.ClockMHz,
		Family:         info.Family,
		Model:          info.Model,
		Stepping:       info.Stepping,
		Sockets:        info.Sockets,
		CoresPerSocket: info.CoresPerSocket,
		ThreadsPerCore: info.ThreadsPerCore,
	}
	for _, t := range info.Threads {
		doc.Threads = append(doc.Threads, xmlThread{
			Proc: t.Proc, ThreadID: t.ThreadID, CoreID: t.CoreID,
			SocketID: t.SocketID, APICID: t.APICID,
		})
	}
	for _, c := range info.Caches {
		xc := xmlCache{
			Level: c.Level, Type: c.Type.String(), SizeKB: c.SizeKB,
			Assoc: c.Assoc, Sets: c.Sets, LineSize: c.LineSize,
			Inclusive: c.Inclusive, SharedBy: c.SharedBy,
		}
		for _, g := range c.Groups {
			xc.Groups = append(xc.Groups, xmlGroup{Processors: g})
		}
		doc.Caches = append(doc.Caches, xc)
	}
	for _, d := range info.NUMA {
		doc.NUMA = append(doc.NUMA, xmlNUMA{
			ID: d.ID, Processors: d.Processors,
			TotalMemMB: d.TotalMemMB, Distances: d.Distances,
		})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("topology: xml rendering: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// ParseXML decodes an XML topology document back into the schema type,
// enabling round-trip tests and external consumption.
func ParseXML(data []byte) (*xmlTopology, error) {
	var doc xmlTopology
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("topology: xml parsing: %w", err)
	}
	return &doc, nil
}

// Geometry returns the decoded geometry triple of a parsed XML document.
func (x *xmlTopology) Geometry() (sockets, coresPerSocket, threadsPerCore int) {
	return x.Sockets, x.CoresPerSocket, x.ThreadsPerCore
}
