// Package monitor turns the one-shot tool suite into a continuous
// node-monitoring agent, after the LIKWID Monitoring Stack (Röhl et al.,
// arXiv:1708.01476) and ClusterCockpit's cc-metric-collector: collectors
// wrap the existing tools (perfctr groups, topology, features, memsys) and
// sample on an interval, a scheduler runs them concurrently with error
// backoff, samples land in a ring-buffer time-series store, are rolled up
// per topology domain (thread → core → socket → node), and fan out
// asynchronously to pluggable sinks (table, CSV, JSON lines, HTTP).
package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode"

	"likwid/internal/machine"
)

// Scope is the topology domain a sample describes.
type Scope int

const (
	// ScopeThread is one hardware thread (OS processor).
	ScopeThread Scope = iota
	// ScopeCore is one physical core (SMT siblings merged).
	ScopeCore
	// ScopeSocket is one package with its shared uncore resources.
	ScopeSocket
	// ScopeNode is the whole shared-memory node.
	ScopeNode
)

var scopeNames = [...]string{"thread", "core", "socket", "node"}

// String returns the lowercase domain name.
func (s Scope) String() string {
	if s < 0 || int(s) >= len(scopeNames) {
		return fmt.Sprintf("scope(%d)", int(s))
	}
	return scopeNames[s]
}

// ParseScope resolves a domain name.
func ParseScope(name string) (Scope, error) {
	for i, n := range scopeNames {
		if n == name {
			return Scope(i), nil
		}
	}
	return 0, fmt.Errorf("monitor: unknown scope %q (thread, core, socket, node)", name)
}

// Sample is one measured value of one metric on one topology entity at one
// point of simulated time.
type Sample struct {
	Metric string
	Scope  Scope
	ID     int     // processor, core, or socket index; 0 for node scope
	Time   float64 // simulated seconds
	Value  float64
}

// Key identifies one time series in the store.
type Key struct {
	Metric string
	Scope  Scope
	ID     int
}

// Key returns the sample's series identity.
func (s Sample) Key() Key { return Key{Metric: s.Metric, Scope: s.Scope, ID: s.ID} }

// Batch is the output of one collector tick, forwarded to store and sinks
// as a unit so sinks can render one table / flush one block per read.
type Batch struct {
	Collector string
	Time      float64 // simulated seconds of the read
	Samples   []Sample
}

// Collector is one metric source.  Collect is called on the declared
// interval by the scheduler; it must return the full batch of samples for
// this tick.  Implementations are not required to be concurrency-safe:
// collectors sharing mutable state (the simulated machine) serialize
// through the mutex handed to their factory.
type Collector interface {
	Name() string
	Scope() Scope
	Interval() time.Duration
	Collect(ctx context.Context) ([]Sample, error)
}

// Config is the construction context handed to collector factories.
type Config struct {
	Machine *machine.Machine
	// MachineMu serializes machine access across concurrently scheduled
	// collectors (the simulated node, like real MSR device files, is not
	// reentrant).  Factories may ignore it for read-only sources.
	MachineMu *sync.Mutex
	// CPUs are the processors to monitor; empty means all.
	CPUs []int
	// Group is the perfctr event group for counter collectors.
	Group string
	// Interval is the sampling period for the built collector.
	Interval time.Duration
	// Advance moves simulated time forward by dt seconds under the
	// machine mutex; counter collectors call it before each read.  Nil
	// defaults to idling the machine (the "sleep" monitoring mode).
	Advance func(dt float64)
	// RawEvents also emits per-event rates (events/s) next to the group's
	// derived metrics.
	RawEvents bool
}

// cpusOrAll resolves the processor list.
func (c Config) cpusOrAll() []int {
	if len(c.CPUs) > 0 {
		return append([]int(nil), c.CPUs...)
	}
	all := make([]int, c.Machine.OS.NumCPUs())
	for i := range all {
		all[i] = i
	}
	return all
}

// Factory builds one collector from the shared config.
type Factory func(cfg Config) (Collector, error)

// Registry maps collector names to factories.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]Factory{}}
}

// Register adds a factory; re-registering a name is an error so plugins
// cannot silently shadow each other.
func (r *Registry) Register(name string, f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("monitor: collector %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Build constructs the named collector.
func (r *Registry) Build(name string, cfg Config) (Collector, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("monitor: unknown collector %q (available: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return f(cfg)
}

// Names lists the registered collectors sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry holds the built-in collectors (perfgroup, topology,
// features, membw).
var DefaultRegistry = NewRegistry()

func mustRegister(name string, f Factory) {
	if err := DefaultRegistry.Register(name, f); err != nil {
		panic(err)
	}
}

// SanitizeMetric converts a display metric name ("DP MFlops/s",
// "Memory bandwidth [MBytes/s]") into a flat series name
// ("dp_mflops_s", "memory_bandwidth_mbytes_s") usable in CSV headers and
// the HTTP exposition format.
func SanitizeMetric(name string) string {
	var b strings.Builder
	lastUnderscore := true // trim leading separators
	for _, r := range strings.ToLower(name) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}
