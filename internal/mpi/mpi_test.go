package mpi

import (
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/sched"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.NewNamed("westmereEP", machine.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPaperHybridExample: likwid-pin -c 0-7 -s 0x3 with Intel MPI + Intel
// OpenMP, one rank, eight threads (§II-C).
func TestPaperHybridExample(t *testing.T) {
	m := newMachine(t)
	ranks, err := Launch(m, LaunchSpec{
		Ranks: 1, ThreadsPerRank: 8, Runtime: sched.RuntimeIntelOMP,
		Cores: []int{0, 1, 2, 3, 4, 5, 6, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := ranks[0]
	if r.Shepherds != 2 {
		t.Errorf("shepherds = %d, want 2 (MPI + OpenMP)", r.Shepherds)
	}
	// Workers must land on cores 0-7 in order; master is worker 0 on 0.
	for i, w := range r.Team.Workers {
		if w.CPU != i {
			t.Errorf("worker %d on cpu %d, want %d", i, w.CPU, i)
		}
		if !w.Pinned {
			t.Errorf("worker %d not pinned", i)
		}
	}
	// Neither shepherd is pinned.
	for _, tk := range m.OS.Tasks() {
		if tk.Name == "mpi-shepherd-0" && tk.Pinned {
			t.Error("MPI shepherd was pinned")
		}
		if tk.Name == "omp-shepherd" && tk.Pinned {
			t.Error("OpenMP shepherd was pinned")
		}
	}
}

// TestTwoRanksPartitionTheNode: 2 ranks x 6 threads split the 12 physical
// cores, each rank on its own socket's processors.
func TestTwoRanksPartitionTheNode(t *testing.T) {
	m := newMachine(t)
	ranks, err := Launch(m, LaunchSpec{
		Ranks: 2, ThreadsPerRank: 6, Runtime: sched.RuntimeGccOMP,
	})
	if err != nil {
		t.Fatal(err)
	}
	placement := Placement(ranks)
	for i := 0; i < 6; i++ {
		if placement[0][i] != i {
			t.Fatalf("rank 0 placement = %v", placement[0])
		}
		if placement[1][i] != 6+i {
			t.Fatalf("rank 1 placement = %v", placement[1])
		}
	}
	// Socket disjointness.
	for _, cpu := range placement[0] {
		if m.SocketOf(cpu) != 0 {
			t.Errorf("rank 0 leaked to socket %d", m.SocketOf(cpu))
		}
	}
	for _, cpu := range placement[1] {
		if m.SocketOf(cpu) != 1 {
			t.Errorf("rank 1 leaked to socket %d", m.SocketOf(cpu))
		}
	}
}

// TestGccHybridDefaultMask: with gcc OpenMP only the MPI shepherd needs
// skipping (mask 0x1).
func TestGccHybridDefaultMask(t *testing.T) {
	spec := LaunchSpec{Ranks: 1, ThreadsPerRank: 4, Runtime: sched.RuntimeGccOMP}
	if got := spec.defaultSkipMask(); got != 0x1 {
		t.Errorf("gcc hybrid mask = %#x, want 0x1", got)
	}
	spec.Runtime = sched.RuntimeIntelOMP
	if got := spec.defaultSkipMask(); got != 0x3 {
		t.Errorf("intel hybrid mask = %#x, want 0x3", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	m := newMachine(t)
	if _, err := Launch(m, LaunchSpec{Ranks: 0, ThreadsPerRank: 4}); err == nil {
		t.Error("zero ranks must fail")
	}
	if _, err := Launch(m, LaunchSpec{Ranks: 4, ThreadsPerRank: 8}); err == nil {
		t.Error("oversubscribing the node must fail")
	}
	if _, err := Launch(m, LaunchSpec{Ranks: 2, ThreadsPerRank: 4, Cores: []int{0, 1}}); err == nil {
		t.Error("short core list must fail")
	}
}

// TestHybridRunEndToEnd: both ranks stream concurrently; each saturates its
// own socket.
func TestHybridRunEndToEnd(t *testing.T) {
	m := newMachine(t)
	ranks, err := Launch(m, LaunchSpec{Ranks: 2, ThreadsPerRank: 6, Runtime: sched.RuntimeGccOMP})
	if err != nil {
		t.Fatal(err)
	}
	var works []*machine.ThreadWork
	const elemsPerThread = 2e6
	for _, r := range ranks {
		for _, w := range r.Team.Workers {
			works = append(works, &machine.ThreadWork{
				Task: w, Elems: elemsPerThread,
				PerElem: machine.PerElem{
					Cycles: 0.95, MemReadBytes: 16, MemWriteBytes: 8,
					Streams: 3, Vector: true,
				},
			})
		}
	}
	elapsed := m.RunPhase(works, 0)
	bw := 12 * elemsPerThread * 24 / elapsed
	want := 2 * hwdef.WestmereEP.Perf.SocketMemBW
	if bw < want*0.9 {
		t.Errorf("hybrid node bandwidth = %v, want ≈ %v", bw, want)
	}
}
