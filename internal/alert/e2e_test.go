package alert

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"likwid/internal/monitor"
)

// tempCollector is the synthetic collector of the end-to-end test: one
// node-scope gauge whose value the test flips, with simulated time
// advancing one second per tick.
type tempCollector struct {
	value atomic.Uint64 // float64 bits
	ticks atomic.Int64
}

func (c *tempCollector) Name() string            { return "temp" }
func (c *tempCollector) Scope() monitor.Scope    { return monitor.ScopeNode }
func (c *tempCollector) Interval() time.Duration { return time.Second }

func (c *tempCollector) set(v float64) { c.value.Store(math.Float64bits(v)) }

func (c *tempCollector) Collect(context.Context) ([]monitor.Sample, error) {
	n := c.ticks.Add(1)
	return []monitor.Sample{{
		Metric: "temp", Scope: monitor.ScopeNode, ID: 0,
		Time: float64(n), Value: math.Float64frombits(c.value.Load()),
	}}, nil
}

// TestEndToEndAlertPipeline is the acceptance path of the subsystem: a
// scheduled collector samples into the store, a rule crosses its
// threshold, the alert walks pending → firing, the webhook notifier
// delivers the transition, GET /alerts reports it, the history series
// records it — and after recovery the alert resolves the same way.
func TestEndToEndAlertPipeline(t *testing.T) {
	// Webhook endpoint capturing delivered events.
	var hookMu sync.Mutex
	var hooks []Event
	hookSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook payload: %v", err)
		}
		hookMu.Lock()
		hooks = append(hooks, ev)
		hookMu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer hookSrv.Close()
	hooksByState := func(state string) []Event {
		hookMu.Lock()
		defer hookMu.Unlock()
		var out []Event
		for _, ev := range hooks {
			if ev.State == state {
				out = append(out, ev)
			}
		}
		return out
	}

	// The monitoring side: fake clock, store, scheduler, one collector.
	fc := monitor.NewFakeClock()
	store := monitor.NewStore(256)
	col := &tempCollector{}
	col.set(50) // cool
	sched := monitor.NewScheduler(monitor.SchedulerOptions{Clock: fc, Store: store})
	sched.Add(col)

	// The alerting side: webhook notifier behind the fanout, engine on
	// the same fake clock, endpoints mounted on a live HTTP sink.
	wn, err := NewWebhookNotifier(WebhookOptions{URL: hookSrv.URL, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fanout := NewFanout(16, wn)
	defer fanout.Close()
	engine, err := NewEngine(Options{Store: store, Clock: fc, Fanout: fanout},
		mustRules(t, "overheat: avg(temp, node, 3s) > 100 for 2s every 1s"))
	if err != nil {
		t.Fatal(err)
	}
	hsink, err := monitor.NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer hsink.Close()
	hsink.Handle("/alerts", http.HandlerFunc(engine.HandleAlerts))
	hsink.Handle("/rules", http.HandlerFunc(engine.HandleRules))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sched.Run(ctx) }()
	go func() { defer wg.Done(); engine.Run(ctx) }()

	// tick advances one simulated second once both loops are parked.
	tick := func() {
		waitForTimers(t, fc, 2)
		fc.Advance(time.Second)
		waitForTimers(t, fc, 2)
	}
	// tickUntil drives time until cond holds (transitions may lag a tick
	// behind the data because collector and engine race within one tick).
	tickUntil := func(what string, cond func() bool) {
		t.Helper()
		for i := 0; i < 30; i++ {
			if cond() {
				return
			}
			tick()
		}
		t.Fatalf("%s did not happen within 30 ticks", what)
	}

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", hsink.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	// Cool node: a few ticks, no alerts.
	tick()
	tick()
	var ar struct {
		Alerts []InstanceStatus `json:"alerts"`
	}
	getJSON("/alerts", &ar)
	if len(ar.Alerts) != 0 {
		t.Fatalf("cool node has alerts: %+v", ar.Alerts)
	}

	// Overheat.  The rule must pass through pending before firing: catch
	// it via the API while the hold time runs.
	col.set(150)
	tickUntil("pending", func() bool {
		getJSON("/alerts", &ar)
		return len(ar.Alerts) == 1 && ar.Alerts[0].State == "pending"
	})

	// Hold for 2 s: firing, delivered through the webhook.
	tickUntil("firing webhook delivery", func() bool {
		return len(hooksByState(EventStateFiring)) > 0
	})
	firing := hooksByState(EventStateFiring)[0]
	if firing.Rule != "overheat" || firing.Metric != "temp" || firing.Value <= 100 {
		t.Fatalf("firing event = %+v", firing)
	}
	getJSON("/alerts", &ar)
	if len(ar.Alerts) != 1 || ar.Alerts[0].State != "firing" {
		t.Fatalf("GET /alerts = %+v, want one firing", ar.Alerts)
	}
	if ar.Alerts[0].FiringSince-ar.Alerts[0].Since < 2 {
		t.Errorf("fired after %v sim seconds, want >= 2 (the for clause)",
			ar.Alerts[0].FiringSince-ar.Alerts[0].Since)
	}
	// History series recorded into the store.
	histKey := monitor.Key{Metric: "alert/overheat", Scope: monitor.ScopeNode, ID: 0}
	if p, ok := store.Latest(histKey); !ok || p.Value != 1 {
		t.Fatalf("history = %+v (%v), want value 1", p, ok)
	}

	// /rules reports the spec and live bookkeeping.
	var rr struct {
		Rules []RuleStatus `json:"rules"`
	}
	getJSON("/rules", &rr)
	if len(rr.Rules) != 1 || rr.Rules[0].Name != "overheat" || rr.Rules[0].Evals == 0 {
		t.Fatalf("GET /rules = %+v", rr.Rules)
	}
	if rr.Rules[0].Firing != 1 {
		t.Errorf("rule reports %d firing, want 1", rr.Rules[0].Firing)
	}

	// Recovery: cool back down, the alert resolves through the same path.
	col.set(50)
	tickUntil("resolved webhook delivery", func() bool {
		return len(hooksByState(EventStateResolved)) > 0
	})
	resolved := hooksByState(EventStateResolved)[0]
	if resolved.Rule != "overheat" || resolved.Since != firing.Time {
		t.Fatalf("resolved event = %+v, want since=%v", resolved, firing.Time)
	}
	getJSON("/alerts", &ar)
	if len(ar.Alerts) != 0 {
		t.Fatalf("GET /alerts after recovery = %+v, want none", ar.Alerts)
	}
	if p, _ := store.Latest(histKey); p.Value != 0 {
		t.Fatalf("history after resolve = %+v, want value 0", p)
	}
	// Exactly one firing and one resolved: no duplicate notifications.
	if f, r := len(hooksByState(EventStateFiring)), len(hooksByState(EventStateResolved)); f != 1 || r != 1 {
		t.Errorf("delivered %d firing / %d resolved events, want 1/1", f, r)
	}

	cancel()
	wg.Wait()
}
