// likwid-agent is the continuous node-monitoring daemon grown out of the
// paper's one-shot tools, after the LIKWID Monitoring Stack: collectors
// wrap the suite (perfctr groups, topology, features, memory system),
// a scheduler samples them on an interval, samples are aggregated per
// topology domain into a tiered time-series store, and batches fan
// out asynchronously to sinks — including a push sink that ships them to
// a remote likwid-agent running in receiver mode.
//
// Usage:
//
//	likwid-agent [options]
//
//	-a arch        node architecture (default westmereEP)
//	-c CPULIST     processors to monitor, e.g. 0-7 (default: all)
//	-g GROUP       perfctr event group to sample (default MEM_DP)
//	-i DURATION    sampling interval (default 500ms)
//	-duration D    stop after D of wall time (default: run until SIGINT)
//	-sink SPEC     repeatable: stdout | csv:PATH | jsonl:PATH | http:ADDR
//	               | push:URL (batch+gzip POST to a receiver's /ingest)
//	               | pushv4:URL (same, on the binary columnar v4 wire).
//	               push/pushv4 also accept a receiver pool,
//	               push:[shard@|mirror@|failover@]URL,URL,...: targets
//	               are health-checked (/readyz probes, exponential
//	               re-probe) and series are hash-partitioned across the
//	               healthy pool (shard, the multi-URL default), mirrored
//	               to every target (HA), or sent to the first healthy
//	               target in order (failover); a failed target's
//	               buffered samples re-route to the survivors
//	-collectors L  comma-separated collector set (default all registered)
//	-load SPEC     synthetic background load: stream[:NTASKS] | idle
//	-buffer N      sink queue depth (drop-and-count beyond it, default 64)
//	-retain N      raw ring-buffer points kept per series (default 1024)
//	-tiers SPEC    downsampled retention tiers, e.g. 10s:360,1m:720:
//	               evicted raw points compact into min/median/max/avg
//	               buckets, and windowed queries stitch tiers with raw
//	-raw           also emit per-event rates next to derived metrics
//	-labels L      label set k=v,k=v stamped onto every collected sample
//	               (job=lbm,cluster=emmy) — carried end to end through
//	               the store, sinks, push wire (v3 "labels" field),
//	               /metrics exposition, /query?label.K=V selectors and
//	               alert events.  In receiver mode the labels are ingest
//	               defaults, merged under each pushed sample's own set
//	-adaptive D    stretch a collector's interval (doubling, up to D)
//	               while its samples are unchanged; snap back on change
//	-receiver ADDR aggregation mode: no collectors, just an HTTP server
//	               whose /ingest accepts push batches from other agents
//	               (v2 per-sample source fields, or the legacy v1
//	               SOURCE/metric prefix via the compat shim) and serves
//	               the merged store on /metrics and /query — each
//	               agent's series keyed by source, selectable with
//	               /query?source=NAME (or a '*' wildcard across agents)
//	-forward SPEC  receiver mode: re-push every accepted sample upstream,
//	               push:[shard@|mirror@|failover@]URL[,URL...] — the
//	               receiver-to-receiver hop that composes receivers into
//	               node → rack → cluster federation trees.  Forwarded
//	               batches keep each sample's original source and are
//	               journaled only where they were accepted (no double
//	               write on the hop); SIGTERM drains the forward buffers
//	               before exit
//	-forward-downsample D
//	               average each forwarded series into D-wide windows
//	               before re-pushing (CompactMean on the wire), so every
//	               hop up the tree can coarsen the stream; 0 (default)
//	               forwards every point.  Needs -forward
//	-rules FILE    alerting rules evaluated against the store; firing and
//	               resolved transitions go to the notifiers, are recorded
//	               as alert/NAME series, and show on GET /alerts and
//	               GET /rules of any http sink or receiver.  SIGHUP
//	               re-reads the file (bad edits are rejected atomically,
//	               the old rules stay live); POST /rules/reload does the
//	               same over HTTP
//	-notify SPEC   repeatable alert notifier: stdout | jsonl:PATH |
//	               webhook:URL (default stdout when -rules is set)
//	-group-wait D  coalesce alert events of one rule and state arriving
//	               within D into a single grouped notification carrying
//	               every instance — one webhook POST per incident, not
//	               one per node (needs -rules; 0 = off)
//	-derive FILE   recorded rules and ingest routes.  Rules like
//	               "cluster_flops = sum(flops_dp) by (source) over 30s"
//	               evaluate windowed aggregations over matching series
//	               and append the result back into the store as
//	               first-class series (tiers, /query, /metrics, WAL,
//	               push wires and the alert DSL all see them); routes
//	               ("route drop|rename|relabel SELECTOR ...") retag
//	               pushed samples before they are interned.  SIGHUP and
//	               POST /derive/reload re-read the file atomically;
//	               GET /derive shows rule and route bookkeeping
//	-log-level L   stderr log verbosity: debug | info | warn | error
//	-log-format F  stderr log encoding: text | json (structured log/slog
//	               either way)
//	-pprof         mount net/http/pprof under /debug/pprof/ on every
//	               http sink and receiver (off by default)
//	-wal DIR       durability directory: every append is journaled to a
//	               write-ahead log and the store's rings and tiers are
//	               snapshotted periodically, so a restarted agent or
//	               receiver resumes with its history intact (snapshot
//	               restored, WAL replayed, torn tail truncated)
//	-snapshot-interval D
//	               ring/tier snapshot period (default 1m); the WAL is
//	               truncated at each snapshot.  Needs -wal
//
// Every http sink and receiver also serves the operational surface:
// GET /status (telemetry registry snapshot + Go runtime stats),
// GET /healthz (liveness) and GET /readyz (named readiness checks).
// A SelfCollector republishes the agent's own telemetry as
// self/likwid_* series — retention, /metrics, /query?source=self and
// the alert DSL all work on them unchanged.
//
// Example, one receiver aggregating two node agents and alerting over
// the fleet's series:
//
//	likwid-agent -receiver :8090 -tiers 10s:360,1m:720 \
//	    -rules fleet.rules -notify webhook:http://ops:9093/hook
//	likwid-agent -g MEM_DP -i 500ms -sink push:localhost:8090
//	likwid-agent -a istanbul -g MEM_DP -sink push:localhost:8090
package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"likwid/internal/alert"
	"likwid/internal/derive"
	"likwid/internal/machine"
	"likwid/internal/monitor"
	"likwid/internal/monitor/cluster"
	"likwid/internal/monitor/persist"
	"likwid/internal/telemetry"
	"likwid/internal/topology"
)

// openPersist enables -wal durability: restore the store from the state
// directory, install the append journal, start the snapshot loop.  It
// must run before any append source (collectors, /ingest) comes up, so
// the replay is not interleaved with live traffic.  nil without -wal.
func openPersist(cfg *agentConfig, store *monitor.Store, reg *telemetry.Registry, log *slog.Logger) (*persist.Manager, error) {
	if cfg.walDir == "" {
		return nil, nil
	}
	pm, err := persist.Open(cfg.walDir, store, persist.Options{
		SnapshotInterval: cfg.snapshotInterval,
		Logger:           log,
		Registry:         reg,
	})
	if err != nil {
		return nil, err
	}
	log.Info("durability enabled",
		"dir", cfg.walDir, "snapshot_interval", cfg.snapshotInterval)
	return pm, nil
}

// closePersist snapshots and stops the manager after appends have
// ceased; nil-safe for runs without -wal.
func closePersist(pm *persist.Manager, log *slog.Logger) {
	if pm == nil {
		return
	}
	if err := pm.Close(); err != nil {
		log.Warn("durability shutdown failed", "err", err)
	}
}

func main() {
	cfg, err := parseAgentFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "likwid-agent:", err)
		os.Exit(1)
	}
	log := cfg.newLogger(os.Stderr)
	slog.SetDefault(log)
	fail := func(err error) {
		log.Error("likwid-agent failed", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	if cfg.duration > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), cfg.duration)
	}
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()

	if cfg.receiver != "" {
		if err := runReceiver(ctx, cfg, log); err != nil {
			fail(err)
		}
		return
	}
	if err := runAgent(ctx, cfg, log); err != nil {
		fail(err)
	}
}

// mountOps mounts the operational surface on one HTTP sink: ingest
// instrumentation, GET /status (telemetry snapshot plus Go runtime
// stats), a store readiness check, and — with -pprof — the net/http/pprof
// handlers under /debug/pprof/.  /healthz and /readyz are built into the
// sink itself.
func mountOps(h *monitor.HTTPSink, reg *telemetry.Registry, cfg *agentConfig, store *monitor.Store) {
	h.Instrument(reg)
	h.Handle("/status", telemetry.StatusHandler(reg))
	h.AddReadyCheck("store", func() error {
		if store == nil {
			return fmt.Errorf("no store attached")
		}
		return nil
	})
	if cfg.pprof {
		h.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
		h.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
		h.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
		h.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
		h.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	}
}

// runReceiver is the aggregation mode: no collectors, just a store behind
// an HTTP server whose /ingest accepts push batches from other agents —
// and, with -rules, an alert engine watching the merged fleet series.
// The receiver also monitors itself: a SelfCollector republishes its
// telemetry registry as self/likwid_* series, so fleet rules can watch
// the watcher.
func runReceiver(ctx context.Context, cfg *agentConfig, log *slog.Logger) error {
	reg := telemetry.New()
	store := monitor.NewStore(cfg.retain, cfg.tiers...)
	store.Instrument(reg)
	// Durability comes up before the listener: /ingest must not race the
	// WAL replay.
	pm, err := openPersist(cfg, store, reg, log)
	if err != nil {
		return err
	}
	h, err := monitor.NewHTTPSink(cfg.receiver, store)
	if err != nil {
		closePersist(pm, log)
		return err
	}
	// Receiver -labels are ingest defaults: merged under each pushed
	// sample's own labels, so e.g. cluster=emmy stamps a whole fleet
	// while each agent's job= label survives.
	h.SetIngestLabels(cfg.labels)
	mountOps(h, reg, cfg, store)
	// Federation hop: -forward re-pushes every accepted batch upstream
	// through a cluster sink riding its own dispatcher, so a slow or dead
	// upstream costs forward backlog (bounded, counted), never ingest
	// latency.  The forward hook fires after a batch is accepted and
	// appended here — the samples are journaled exactly once per hop, at
	// the receiver that accepted them.
	var (
		fwdDispatch *monitor.Dispatcher
		fwdCluster  *cluster.Sink
	)
	closeForward := func() error {
		if fwdDispatch == nil {
			return nil
		}
		ferr := fwdDispatch.Close()
		for _, ts := range fwdCluster.Status() {
			log.Info("forward target finished", "target", ts.Target, "healthy", ts.Healthy,
				"sent", ts.Sent, "pushes", ts.Pushes, "failovers", ts.Failovers, "dropped", ts.Dropped)
		}
		return ferr
	}
	if cfg.forward != "" {
		spec, serr := cluster.ParseSpec(cfg.forward)
		if serr == nil {
			fwdCluster, serr = cluster.New(cluster.Options{
				Targets: spec.Targets,
				Policy:  spec.Policy,
				Format:  spec.Format,
				Source:  monitor.DefaultPushSource(),
				// The agent already batched; re-push each accepted batch as
				// it arrives.  Re-batching at the hop would add latency and
				// leave up to FlushSamples-1 samples to lose on a hard kill.
				FlushSamples: 1,
				Context:      ctx,
				Logger:       log,
			})
		}
		if serr != nil {
			_ = h.Close()
			closePersist(pm, log)
			return serr
		}
		fwdCluster.Instrument(reg)
		fwdDispatch = monitor.NewDispatcher(cfg.buffer, cluster.NewDownsampler(cfg.forwardEvery, fwdCluster))
		fwdDispatch.SetLogger(log)
		h.SetForward(func(b monitor.Batch) { fwdDispatch.Publish(b) })
		log.Info("forwarding enabled", "spec", cfg.forward,
			"policy", spec.Policy.String(), "targets", len(spec.Targets), "downsample", cfg.forwardEvery)
	}
	alerting, err := startAlerting(ctx, cfg, store, []*monitor.HTTPSink{h}, reg, log)
	if err != nil {
		_ = h.Close()
		_ = closeForward()
		closePersist(pm, log)
		return err
	}
	// Self-monitoring loop: the dispatcher carries SelfCollector batches
	// to the HTTP sink (so self series show on /metrics) while the
	// scheduler appends them to the store (so /query?source=self, tier
	// compaction and the alert DSL see them).  With -forward the batches
	// also tee onto the federation hop: the receiver's own self and
	// derived series never pass /ingest, so the hook there cannot carry
	// them.
	selfSinks := []monitor.Sink{h}
	if fwdDispatch != nil {
		selfSinks = append(selfSinks, teeSink{fwdDispatch})
	}
	selfDispatch := monitor.NewDispatcher(8, selfSinks...)
	selfDispatch.SetLogger(log)
	selfDispatch.Instrument(reg)
	// Derived series ride the same dispatcher, so a receiver's roll-ups
	// show on its /metrics exposition like its self-telemetry does.
	deriving, err := startDeriving(ctx, cfg, store, []*monitor.HTTPSink{h}, selfDispatch, reg, log)
	if err != nil {
		alerting.stop(log)
		_ = selfDispatch.Close()
		_ = closeForward()
		closePersist(pm, log)
		return err
	}
	selfSched := monitor.NewScheduler(monitor.SchedulerOptions{
		Store:      store,
		Dispatcher: selfDispatch,
		Labels:     cfg.labels,
		Logger:     log,
		Telemetry:  reg,
	})
	selfSched.Add(monitor.NewSelfCollector(reg, 0))
	schedDone := make(chan struct{})
	go func() {
		selfSched.Run(ctx)
		close(schedDone)
	}()
	log.Info("receiver listening", "addr", h.Addr(),
		"endpoints", "/ingest /metrics /query /status /healthz /readyz", "pprof", cfg.pprof)
	<-ctx.Done()
	<-schedDone
	deriving.stop(log)         // evaluation stops before its dispatcher closes
	err = selfDispatch.Close() // closes the HTTP sink with it
	// Graceful drain: the listener is down (nothing new arrives), so the
	// forward pipeline can flush its buffered and downsampler-open
	// samples upstream instead of counting them as shutdown drops.
	if ferr := closeForward(); ferr != nil {
		log.Warn("forward drain failed", "err", ferr)
		if err == nil {
			err = ferr
		}
	}
	alerting.stop(log)
	// Appends have stopped (scheduler drained, listener down): take the
	// final snapshot and release the WAL.
	closePersist(pm, log)
	return err
}

// teeSink republishes every batch into another dispatcher — the bridge
// that puts a receiver's own self and derived series onto the forward
// hop, which otherwise only sees what crosses /ingest.  Close is a
// no-op: the forward dispatcher outlives the tee and is drained
// explicitly after the listener goes down.
type teeSink struct{ d *monitor.Dispatcher }

func (t teeSink) Name() string                { return "forward-tee" }
func (t teeSink) Write(b monitor.Batch) error { t.d.Publish(b); return nil }
func (t teeSink) Close() error                { return nil }

// alerting bundles a running alert engine with its teardown.
type alerting struct {
	engine  *alert.Engine
	fanout  *alert.Fanout
	grouper *alert.Grouper // nil without -group-wait
	done    chan struct{}
	cancel  context.CancelFunc
}

// stop cancels the engine, waits for its rule goroutines, flushes any
// open grouping windows, drains the notifier queue, and logs the
// delivery accounting.
func (a *alerting) stop(log *slog.Logger) {
	if a.engine == nil {
		return
	}
	a.cancel()
	<-a.done
	if a.grouper != nil {
		_ = a.grouper.Close()
	}
	if err := a.fanout.Close(); err != nil {
		log.Warn("notifier close failed", "err", err)
	}
	log.Info("alerting stopped",
		"delivered", a.fanout.Delivered(), "dropped", a.fanout.Dropped(), "notifier_errors", a.fanout.Errors())
	for _, rs := range a.engine.RuleStatuses() {
		if rs.LastError != "" {
			log.Warn("rule finished with error", "rule", rs.Name, "err", rs.LastError)
		}
	}
}

// startAlerting builds notifiers, engine and endpoints from -rules and
// -notify and starts the evaluation loop.  A no-op (nil engine) without
// -rules.
func startAlerting(ctx context.Context, cfg *agentConfig, store *monitor.Store, https []*monitor.HTTPSink, reg *telemetry.Registry, log *slog.Logger) (*alerting, error) {
	if len(cfg.rules) == 0 {
		return &alerting{}, nil
	}
	specs := cfg.notifiers
	if len(specs) == 0 {
		specs = []string{"stdout"}
	}
	notifiers := make([]alert.Notifier, 0, len(specs))
	for _, spec := range specs {
		n, err := alert.ParseNotifier(ctx, spec)
		if err != nil {
			return nil, err
		}
		if w, ok := n.(*alert.WebhookNotifier); ok {
			w.SetLogger(log)
		}
		notifiers = append(notifiers, n)
	}
	fanout := alert.NewFanout(cfg.buffer, notifiers...)
	fanout.SetLogger(log)
	fanout.Instrument(reg)
	// -group-wait puts a coalescing window in front of the fanout: N
	// instances of one rule tripping together become one notification.
	var grouper *alert.Grouper
	var notify alert.Publisher
	if cfg.groupWait > 0 {
		grouper = alert.NewGrouper(fanout, cfg.groupWait, nil)
		notify = grouper
	}
	// "Notifiers up" readiness: not ready once the fanout is closed.
	for _, h := range https {
		h.AddReadyCheck("notifiers", func() error {
			if fanout.Closed() {
				return fmt.Errorf("notifier fanout closed")
			}
			return nil
		})
	}
	// Agent mode tracks the sampling cadence; receiver mode has no
	// sampling of its own, so rules fall back to the engine's default
	// (10 s) instead of the meaningless -i value.
	defaultEvery := cfg.interval
	if cfg.receiver != "" {
		defaultEvery = 0
	}
	// Log each distinct rule error once, not once per evaluation — a
	// receiver evaluating fleet rules before the first agent pushes
	// would otherwise repeat "no series matches" at the full cadence.
	var errMu sync.Mutex
	lastErr := map[string]string{}
	engine, err := alert.NewEngine(alert.Options{
		Store:        store,
		DefaultEvery: defaultEvery,
		Fanout:       fanout,
		Notify:       notify,
		Telemetry:    reg,
		// A fleet agent that stops pushing must not keep its alerts
		// firing forever off the frozen last window.  The horizon stays
		// clear of the adaptive stretch cap: a healthy static series
		// sampled every -adaptive interval must not be mistaken for a
		// dead one between its (legitimately sparse) collections.
		StaleAfter: staleHorizon(cfg.adaptive),
		OnError: func(rule string, err error) {
			errMu.Lock()
			repeat := lastErr[rule] == err.Error()
			lastErr[rule] = err.Error()
			errMu.Unlock()
			if !repeat {
				log.Warn("rule evaluation failed", "rule", rule, "err", err)
			}
		},
	}, cfg.rules)
	if err != nil {
		return nil, err
	}
	// reload re-reads -rules and swaps the rule set; a bad file is
	// rejected atomically, keeping the old rules live.
	reload := func(trigger string) (int, error) {
		n, rerr := reloadRules(engine, cfg.rulesFile)
		if rerr != nil {
			log.Warn("rules reload rejected, old rules stay live", "trigger", trigger, "err", rerr)
			return 0, rerr
		}
		log.Info("rules reloaded", "trigger", trigger, "rules", n, "file", cfg.rulesFile)
		return n, nil
	}
	for _, h := range https {
		h.Handle("/alerts", http.HandlerFunc(engine.HandleAlerts))
		h.Handle("/rules", http.HandlerFunc(engine.HandleRules))
		h.Handle("/rules/reload", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			n, rerr := reload("POST /rules/reload")
			if rerr != nil {
				http.Error(w, "rules reload rejected: "+rerr.Error(), http.StatusUnprocessableEntity)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"rules\":%d}\n", n)
		}))
	}
	ectx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		engine.Run(ectx)
		close(done)
	}()
	// SIGHUP hot-reloads the rule file in both agent and receiver modes.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		defer signal.Stop(hup)
		for {
			select {
			case <-ectx.Done():
				return
			case <-hup:
				_, _ = reload("SIGHUP")
			}
		}
	}()
	log.Info("alerting started", "rules", len(cfg.rules), "file", cfg.rulesFile, "group_wait", cfg.groupWait)
	return &alerting{engine: engine, fanout: fanout, grouper: grouper, done: done, cancel: cancel}, nil
}

// deriving bundles a running derive engine with its teardown.
type deriving struct {
	engine *derive.Engine
	done   chan struct{}
	cancel context.CancelFunc
}

// stop cancels the engine and waits for its rule goroutines; evaluation
// must cease before the dispatcher it publishes to closes.
func (d *deriving) stop(log *slog.Logger) {
	if d.engine == nil {
		return
	}
	d.cancel()
	<-d.done
	for _, rs := range d.engine.RuleStatuses() {
		if rs.LastError != "" {
			log.Warn("derive rule finished with error", "rule", rs.Name, "err", rs.LastError)
		}
	}
}

// startDeriving builds the recorded-rule engine and ingest routes from
// -derive and starts the evaluation loop.  Routes install on every HTTP
// sink's /ingest; emitted samples are appended to the store and also
// published to dispatch (when non-nil) as "derive/<rule>" batches so
// push wires and /metrics carry derived series like collected ones.  A
// no-op (nil engine) without -derive.
func startDeriving(ctx context.Context, cfg *agentConfig, store *monitor.Store, https []*monitor.HTTPSink, dispatch *monitor.Dispatcher, reg *telemetry.Registry, log *slog.Logger) (*deriving, error) {
	if cfg.deriveFile == "" {
		return &deriving{}, nil
	}
	installRoutes := func(routes []monitor.IngestRoute) {
		router := monitor.NewRouter(routes)
		router.Instrument(reg)
		for _, h := range https {
			h.SetRouter(router)
		}
	}
	installRoutes(cfg.deriveRoutes)
	// Agent mode tracks the sampling cadence; receiver mode falls back
	// to the engine default (10 s), exactly like the alert engine.
	defaultEvery := cfg.interval
	if cfg.receiver != "" {
		defaultEvery = 0
	}
	var errMu sync.Mutex
	lastErr := map[string]string{}
	engine, err := derive.NewEngine(derive.Options{
		Store:        store,
		DefaultEvery: defaultEvery,
		Dispatcher:   dispatch,
		Telemetry:    reg,
		OnError: func(rule string, err error) {
			errMu.Lock()
			repeat := lastErr[rule] == err.Error()
			lastErr[rule] = err.Error()
			errMu.Unlock()
			if !repeat {
				log.Warn("derive rule evaluation failed", "rule", rule, "err", err)
			}
		},
	}, cfg.deriveRules)
	if err != nil {
		return nil, err
	}
	reload := func(trigger string) (int, error) {
		n, routes, rerr := reloadDerive(engine, cfg.deriveFile)
		if rerr != nil {
			log.Warn("derive reload rejected, old rules and routes stay live", "trigger", trigger, "err", rerr)
			return 0, rerr
		}
		installRoutes(routes)
		log.Info("derive reloaded", "trigger", trigger, "rules", n, "routes", len(routes), "file", cfg.deriveFile)
		return n, nil
	}
	routeStatuses := func() []monitor.RouteStatus {
		if len(https) == 0 {
			return nil
		}
		if r := https[0].Router(); r != nil {
			return r.Statuses()
		}
		return nil
	}
	for _, h := range https {
		h.Handle("/derive", derive.StatusHandler(engine, routeStatuses))
		h.Handle("/derive/reload", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			n, rerr := reload("POST /derive/reload")
			if rerr != nil {
				http.Error(w, "derive reload rejected: "+rerr.Error(), http.StatusUnprocessableEntity)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"rules\":%d}\n", n)
		}))
	}
	ectx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		engine.Run(ectx)
		close(done)
	}()
	// SIGHUP hot-reloads the derive file; the kernel delivers the signal
	// to every registered channel, so -rules and -derive both react.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		defer signal.Stop(hup)
		for {
			select {
			case <-ectx.Done():
				return
			case <-hup:
				_, _ = reload("SIGHUP")
			}
		}
	}()
	log.Info("derive started",
		"rules", len(cfg.deriveRules), "routes", len(cfg.deriveRoutes), "file", cfg.deriveFile)
	return &deriving{engine: engine, done: done, cancel: cancel}, nil
}

// staleHorizon is the alert staleness cut-off: 5 minutes, pushed out to
// four adaptive stretch caps so stretched-but-healthy collectors never
// look stale.
func staleHorizon(adaptive time.Duration) time.Duration {
	const base = 5 * time.Minute
	if h := 4 * adaptive; h > base {
		return h
	}
	return base
}

func runAgent(ctx context.Context, cfg *agentConfig, log *slog.Logger) error {
	reg := telemetry.New()
	node := cfg.node
	mcfg := monitor.Config{
		Machine:   node.M,
		MachineMu: new(sync.Mutex),
		CPUs:      cfg.cpus,
		Group:     cfg.group,
		Interval:  cfg.interval,
		RawEvents: cfg.raw,
	}
	loadCPUs := cfg.cpus
	if len(loadCPUs) == 0 {
		loadCPUs = make([]int, node.M.OS.NumCPUs())
		for i := range loadCPUs {
			loadCPUs[i] = i
		}
	}
	load, err := newLoadDriver(node.M, loadCPUs, cfg.loadSpec)
	if err != nil {
		return err
	}
	mcfg.Advance = load.advance

	names := cfg.collectors
	if len(names) == 0 {
		names = monitor.DefaultRegistry.Names()
	}
	store := monitor.NewStore(cfg.retain, cfg.tiers...)
	store.Instrument(reg)
	pm, err := openPersist(cfg, store, reg, log)
	if err != nil {
		return err
	}
	defer closePersist(pm, log)
	info, err := topology.Probe(node.M.CPUs, node.M.Arch.ClockMHz)
	if err != nil {
		return err
	}
	agg := monitor.NewAggregator(info, cfg.cpus)

	sinks := cfg.sinks
	if len(sinks) == 0 {
		sinks = []string{"stdout"}
	}
	built := make([]monitor.Sink, 0, len(sinks))
	var https []*monitor.HTTPSink
	for _, spec := range sinks {
		// Multi-target push pools are cluster sinks: health-checked
		// targets, consistent-hash sharding, mirror and failover modes.
		if cluster.IsSpec(spec) {
			parsed, err := cluster.ParseSpec(spec)
			if err != nil {
				return err
			}
			cs, err := cluster.New(cluster.Options{
				Targets: parsed.Targets,
				Policy:  parsed.Policy,
				Format:  parsed.Format,
				Source:  monitor.DefaultPushSource(),
				Context: ctx,
				Logger:  log,
			})
			if err != nil {
				return err
			}
			cs.Instrument(reg)
			log.Info("cluster sink configured",
				"policy", parsed.Policy.String(), "targets", len(parsed.Targets))
			built = append(built, cs)
			continue
		}
		// The context bounds the push sink's retry backoff: a shutdown
		// flush against a dead receiver tries once instead of walking
		// the whole ladder.
		s, err := monitor.ParseSink(ctx, spec, store)
		if err != nil {
			return err
		}
		switch s := s.(type) {
		case *monitor.HTTPSink:
			log.Info("http sink listening", "addr", s.Addr(), "pprof", cfg.pprof)
			mountOps(s, reg, cfg, store)
			https = append(https, s)
		case *monitor.PushSink:
			s.SetLogger(log)
			s.Instrument(reg)
		}
		built = append(built, s)
	}
	dispatcher := monitor.NewDispatcher(cfg.buffer, built...)
	dispatcher.SetLogger(log)
	dispatcher.Instrument(reg)
	alerting, err := startAlerting(ctx, cfg, store, https, reg, log)
	if err != nil {
		return err
	}
	deriving, err := startDeriving(ctx, cfg, store, https, dispatcher, reg, log)
	if err != nil {
		return err
	}

	sched := monitor.NewScheduler(monitor.SchedulerOptions{
		Store:       store,
		Aggregator:  agg,
		Dispatcher:  dispatcher,
		AdaptiveMax: cfg.adaptive,
		Labels:      cfg.labels,
		Logger:      log,
		Telemetry:   reg,
	})
	var stops []func() error
	var active []monitor.Collector
	for _, name := range names {
		c, err := monitor.DefaultRegistry.Build(strings.TrimSpace(name), mcfg)
		if err != nil {
			// A collector that cannot come up on this node (e.g. features
			// on AMD) is skipped, not fatal: monitoring degrades, it does
			// not die.
			log.Warn("skipping collector", "collector", name, "err", err)
			continue
		}
		sched.Add(c)
		if s, ok := c.(interface{ Stop() error }); ok {
			stops = append(stops, s.Stop)
		}
		active = append(active, c)
	}
	if len(active) == 0 {
		return fmt.Errorf("no collector could be built; nothing to monitor")
	}
	// The agent monitors itself alongside the hardware: the SelfCollector
	// rides the same scheduler, store and sinks as every other collector.
	sched.Add(monitor.NewSelfCollector(reg, 0))

	log.Info("monitoring started",
		"node", node.String(), "group", cfg.group, "interval", cfg.interval)
	sched.Run(ctx)

	for _, stop := range stops {
		_ = stop()
	}
	alerting.stop(log)
	deriving.stop(log) // evaluation stops before its dispatcher closes
	if err := dispatcher.Close(); err != nil {
		log.Warn("sink close failed", "err", err)
	}

	for _, st := range sched.Stats() {
		log.Info("collector finished",
			"collector", st.Name, "batches", st.Batches, "samples", st.Samples,
			"errors", st.Errors, "stretches", st.Stretches)
	}
	if d := dispatcher.Dropped(); d > 0 {
		log.Warn("batches dropped at the sink queue", "dropped", d)
	}
	for _, s := range built {
		switch s := s.(type) {
		case *monitor.PushSink:
			log.Info("push sink finished",
				"sent", s.Sent(), "pushes", s.Pushes(), "retries", s.Retries(), "dropped", s.Dropped())
		case *cluster.Sink:
			for _, ts := range s.Status() {
				log.Info("cluster target finished", "target", ts.Target, "healthy", ts.Healthy,
					"sent", ts.Sent, "pushes", ts.Pushes, "failovers", ts.Failovers, "dropped", ts.Dropped)
			}
		}
	}
	return nil
}

// loadDriver advances simulated machine time between counter samples.  The
// "stream" mode keeps streaming tasks busy so the monitored counters move;
// it adapts the per-tick element count so one tick of work costs roughly
// one interval of simulated time.
type loadDriver struct {
	m           *machine.Machine
	works       []*machine.ThreadWork
	elemsPerSec float64
}

func newLoadDriver(m *machine.Machine, cpus []int, spec string) (*loadDriver, error) {
	kind, nTasks, err := parseLoadSpec(spec)
	if err != nil {
		return nil, err
	}
	d := &loadDriver{m: m, elemsPerSec: 1e8}
	if kind == "idle" {
		return d, nil
	}
	if nTasks == 0 {
		nTasks = 2 * m.Arch.Sockets
	}
	if nTasks > len(cpus) {
		nTasks = len(cpus)
	}
	// Spread tasks round-robin over sockets so every controller sees
	// traffic and the socket roll-ups have something to show.
	bySocket := map[int][]int{}
	var sockets []int
	for _, cpu := range cpus {
		s := m.SocketOf(cpu)
		if _, ok := bySocket[s]; !ok {
			sockets = append(sockets, s)
		}
		bySocket[s] = append(bySocket[s], cpu)
	}
	perElem := machine.PerElem{
		Cycles: 1.0,
		Counts: machine.Counts{
			machine.EvInstr:         3,
			machine.EvFlopsPackedDP: 1,
			machine.EvLoads:         2,
			machine.EvStores:        1,
		},
		MemReadBytes: 16, MemWriteBytes: 8,
		Streams: 3, Vector: true,
	}
	for i := 0; i < nTasks; i++ {
		socket := sockets[i%len(sockets)]
		socketCPUs := bySocket[socket]
		cpu := socketCPUs[(i/len(sockets))%len(socketCPUs)]
		task := m.OS.Spawn(fmt.Sprintf("agent-load-%d", i), nil)
		if err := m.OS.Pin(task, cpu); err != nil {
			return nil, err
		}
		d.works = append(d.works, &machine.ThreadWork{Task: task, PerElem: perElem})
	}
	return d, nil
}

// advance moves simulated time forward by roughly dt seconds.
func (d *loadDriver) advance(dt float64) {
	if len(d.works) == 0 {
		d.m.RunIdle(dt, 0)
		return
	}
	elems := d.elemsPerSec * dt
	for _, w := range d.works {
		w.Elems = elems
		w.Done = 0
		w.FinishTime = 0
	}
	elapsed := d.m.RunPhase(d.works, 0)
	if elapsed < dt {
		d.m.RunIdle(dt-elapsed, 0)
	}
	// Calibrate toward one interval of simulated work per tick.
	if elapsed > 0 {
		factor := dt / elapsed
		if factor < 0.25 {
			factor = 0.25
		}
		if factor > 4 {
			factor = 4
		}
		d.elemsPerSec *= factor
	}
}
