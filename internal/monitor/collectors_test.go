package monitor

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"likwid/internal/machine"
)

// streamAdvance drives two streaming tasks (one per socket) for dt
// simulated seconds per tick, so the counters have traffic to show.
func streamAdvance(t *testing.T, m *machine.Machine) func(float64) {
	t.Helper()
	perElem := machine.PerElem{
		Cycles:       1.0,
		Counts:       machine.Counts{machine.EvInstr: 3, machine.EvFlopsPackedDP: 1},
		MemReadBytes: 16, MemWriteBytes: 8,
		Streams: 3, Vector: true,
	}
	var works []*machine.ThreadWork
	for _, cpu := range []int{0, 6} {
		task := m.OS.Spawn(fmt.Sprintf("load-%d", cpu), nil)
		if err := m.OS.Pin(task, cpu); err != nil {
			t.Fatal(err)
		}
		works = append(works, &machine.ThreadWork{Task: task, PerElem: perElem})
	}
	return func(dt float64) {
		for _, w := range works {
			w.Elems = 2e8 * dt
			w.Done = 0
			w.FinishTime = 0
		}
		if elapsed := m.RunPhase(works, 0); elapsed < dt {
			m.RunIdle(dt-elapsed, 0)
		}
	}
}

func TestPerfGroupCollectorEndToEnd(t *testing.T) {
	m := testMachine(t, "westmereEP")
	cfg := Config{
		Machine:   m,
		MachineMu: new(sync.Mutex),
		Group:     "MEM_DP",
		Interval:  10 * time.Millisecond,
		Advance:   streamAdvance(t, m),
	}
	c, err := DefaultRegistry.Build("perfgroup", cfg)
	if err != nil {
		t.Fatal(err)
	}
	pg := c.(*PerfGroupCollector)
	if pg.Name() != "perfgroup/MEM_DP" {
		t.Errorf("Name = %q", pg.Name())
	}

	samples, err := pg.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Socket-scope memory bandwidth on both sockets, nonzero under load.
	for socket := 0; socket < 2; socket++ {
		s, ok := find(samples, "memory_bandwidth_mbytes_s", ScopeSocket, socket)
		if !ok {
			t.Fatalf("no socket %d bandwidth sample in %+v", socket, samples)
		}
		if s.Value <= 0 {
			t.Errorf("socket %d bandwidth = %v, want > 0 under streaming load", socket, s.Value)
		}
	}
	// Thread-scope flops on the loaded processors.
	if s, ok := find(samples, "dp_mflops_s", ScopeThread, 0); !ok || s.Value <= 0 {
		t.Errorf("cpu 0 dp_mflops_s = %+v ok=%v, want > 0", s, ok)
	}
	if s, ok := find(samples, "dp_mflops_s", ScopeThread, 1); !ok || s.Value != 0 {
		t.Errorf("idle cpu 1 dp_mflops_s = %+v ok=%v, want 0", s, ok)
	}
	// Intensive metrics are declared for mean aggregation, rates are not.
	means := map[string]bool{}
	for _, name := range pg.MeanMetrics() {
		means[name] = true
	}
	if !means["cpi"] {
		t.Error("cpi not declared as a mean metric")
	}
	if means["dp_mflops_s"] || means["memory_bandwidth_mbytes_s"] {
		t.Errorf("rate metrics declared mean: %v", pg.MeanMetrics())
	}

	// A second tick keeps the series moving monotonically in time.
	again, err := pg.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := find(samples, "cpi", ScopeThread, 0)
	s2, ok := find(again, "cpi", ScopeThread, 0)
	if !ok || s2.Time <= s1.Time {
		t.Errorf("second tick time %v not after first %v", s2.Time, s1.Time)
	}
	if err := pg.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestPerfGroupCollectorCancelledContext(t *testing.T) {
	m := testMachine(t, "westmereEP")
	c, err := DefaultRegistry.Build("perfgroup", Config{Machine: m, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.(*PerfGroupCollector).Collect(ctx); err == nil {
		t.Error("Collect on cancelled context must fail")
	}
}

func TestAuxiliaryCollectors(t *testing.T) {
	m := testMachine(t, "westmereEP")
	cfg := Config{Machine: m, MachineMu: new(sync.Mutex), Interval: time.Second}
	ctx := context.Background()

	topo, err := DefaultRegistry.Build("topology", cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := topo.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := find(samples, "topo/sockets", ScopeNode, 0); !ok || s.Value != 2 {
		t.Errorf("topo/sockets = %+v ok=%v, want 2", s, ok)
	}
	if s, ok := find(samples, "topo/hw_threads", ScopeNode, 0); !ok || s.Value != 24 {
		t.Errorf("topo/hw_threads = %+v ok=%v, want 24", s, ok)
	}

	feat, err := DefaultRegistry.Build("features", cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err = feat.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := find(samples, "feature/prefetchers_enabled", ScopeNode, 0); !ok || s.Value <= 0 {
		t.Errorf("prefetchers_enabled = %+v ok=%v, want > 0 at boot", s, ok)
	}

	bw, err := DefaultRegistry.Build("membw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err = bw.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for socket := 0; socket < 2; socket++ {
		if s, ok := find(samples, "membw/socket_capacity_bytes", ScopeSocket, socket); !ok || s.Value <= 0 {
			t.Errorf("socket %d capacity = %+v ok=%v", socket, s, ok)
		}
	}
}

func TestFeaturesCollectorRejectsAMD(t *testing.T) {
	m := testMachine(t, "shanghai")
	if _, err := DefaultRegistry.Build("features", Config{Machine: m, Interval: time.Second}); err == nil {
		t.Error("features collector must fail on AMD (no IA32_MISC_ENABLE)")
	}
}

func TestRegistryRejectsDuplicatesAndUnknown(t *testing.T) {
	r := NewRegistry()
	f := func(Config) (Collector, error) { return nil, nil }
	if err := r.Register("x", f); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", f); err == nil {
		t.Error("duplicate registration must fail")
	}
	if _, err := r.Build("nope", Config{}); err == nil {
		t.Error("unknown collector must fail")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Names = %v", got)
	}
}

func TestSanitizeMetric(t *testing.T) {
	cases := map[string]string{
		"DP MFlops/s":                 "dp_mflops_s",
		"Memory bandwidth [MBytes/s]": "memory_bandwidth_mbytes_s",
		"CPI":                         "cpi",
		"Runtime [s]":                 "runtime_s",
		"__weird--name__":             "weird_name",
	}
	for in, want := range cases {
		if got := SanitizeMetric(in); got != want {
			t.Errorf("SanitizeMetric(%q) = %q, want %q", in, got, want)
		}
	}
}
