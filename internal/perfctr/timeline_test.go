package perfctr

import (
	"math"
	"strings"
	"testing"

	"likwid/internal/machine"
)

// timelineFixture runs two distinct phases under a sampling timeline.
func timelineFixture(t *testing.T, interval float64) (*Timeline, *machine.Machine) {
	t.Helper()
	m := newMachine(t, "westmereEP")
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	specs, _ := ParseEventList("FP_COMP_OPS_EXE_SSE_FP_PACKED:PMC0")
	col, err := NewCollector(m, []int{0, 1}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	tl, err := NewTimeline(col, interval)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: flop-heavy.
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: 2e7,
		PerElem: machine.PerElem{Cycles: 2, Counts: machine.Counts{machine.EvFlopsPackedDP: 1, machine.EvInstr: 3}, Vector: true},
	}}, 0)
	// Phase 2: no flops at all.
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: 2e7,
		PerElem: machine.PerElem{Cycles: 2, Counts: machine.Counts{machine.EvInstr: 3}, Vector: true},
	}}, 0)
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	tl.Stop()
	return tl, m
}

func TestTimelineCapturesPhases(t *testing.T) {
	tl, _ := timelineFixture(t, 0.002)
	series, err := tl.Series("FP_COMP_OPS_EXE_SSE_FP_PACKED")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 6 {
		t.Fatalf("only %d intervals sampled", len(series))
	}
	// Early intervals show flops, late intervals none.
	if series[0] <= 0 {
		t.Error("first interval shows no flops")
	}
	last := series[len(series)-1]
	if last != 0 {
		t.Errorf("final interval shows %v flops, want 0 (phase 2)", last)
	}
	// Total across intervals ≈ phase-1 total (sampling must not lose
	// counts beyond the final partial interval).
	var sum float64
	for _, v := range series {
		sum += v
	}
	if math.Abs(sum-2e7) > 2e7*0.05 {
		t.Errorf("timeline total = %v, want ≈ 2e7", sum)
	}
}

func TestTimelineDeltasAreIncrements(t *testing.T) {
	tl, _ := timelineFixture(t, 0.002)
	series, _ := tl.Series("INSTR_RETIRED_ANY")
	// Instructions flow in both phases: every interval positive.
	for i, v := range series[:len(series)-1] {
		if v <= 0 {
			t.Errorf("interval %d instruction delta = %v", i, v)
		}
	}
}

func TestTimelineRender(t *testing.T) {
	tl, _ := timelineFixture(t, 0.002)
	out, err := tl.RenderTimeline("FP_COMP_OPS_EXE_SSE_FP_PACKED")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "timeline of FP_COMP_OPS_EXE_SSE_FP_PACKED") ||
		!strings.Contains(out, "core 0") {
		t.Errorf("render:\n%s", out)
	}
	if _, err := tl.RenderTimeline("NOT_MEASURED"); err == nil {
		t.Error("unknown event must fail")
	}
}

func TestTimelineSummary(t *testing.T) {
	tl, _ := timelineFixture(t, 0.002)
	sum, err := tl.Summary("FP_COMP_OPS_EXE_SSE_FP_PACKED")
	if err != nil {
		t.Fatal(err)
	}
	series, _ := tl.Series("FP_COMP_OPS_EXE_SSE_FP_PACKED")
	if sum.N != len(series) {
		t.Errorf("Summary.N = %d, want %d intervals", sum.N, len(series))
	}
	// Phase 2 has no flops, so the min is 0; phase 1 intervals dominate
	// the max.
	if sum.Min != 0 {
		t.Errorf("Summary.Min = %v, want 0 (idle phase)", sum.Min)
	}
	if sum.Max <= 0 || sum.Max < sum.Median {
		t.Errorf("Summary Max=%v Median=%v inconsistent", sum.Max, sum.Median)
	}
	if _, err := tl.Summary("NOT_MEASURED"); err == nil {
		t.Error("unknown event must fail")
	}
	// The rendered report surfaces the distribution line.
	out, err := tl.RenderTimeline("FP_COMP_OPS_EXE_SSE_FP_PACKED")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "per-interval totals: min=") {
		t.Errorf("render misses summary footer:\n%s", out)
	}
}

func TestTimelineTimestampsMonotone(t *testing.T) {
	tl, _ := timelineFixture(t, 0.001)
	prev := -1.0
	for _, p := range tl.Points() {
		if p.Time <= prev {
			t.Fatalf("timestamps not monotone: %v after %v", p.Time, prev)
		}
		prev = p.Time
	}
}
