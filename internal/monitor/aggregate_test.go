package monitor

import (
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/topology"
)

func testMachine(t *testing.T, arch string) *machine.Machine {
	t.Helper()
	a, err := hwdef.Lookup(arch)
	if err != nil {
		t.Fatal(err)
	}
	return machine.New(a, machine.Options{})
}

func testAggregator(t *testing.T, cpus []int) *Aggregator {
	t.Helper()
	m := testMachine(t, "westmereEP")
	info, err := topology.Probe(m.CPUs, m.Arch.ClockMHz)
	if err != nil {
		t.Fatal(err)
	}
	return NewAggregator(info, cpus)
}

func find(samples []Sample, metric string, scope Scope, id int) (Sample, bool) {
	for _, s := range samples {
		if s.Metric == metric && s.Scope == scope && s.ID == id {
			return s, true
		}
	}
	return Sample{}, false
}

func TestRollupThreadToNode(t *testing.T) {
	a := testAggregator(t, nil)
	// Westmere EP: 2 sockets; processor 0 is on socket 0, processor 6 on
	// socket 1 (spread numbering, verified through the roll-up itself).
	in := []Sample{
		{Metric: "bw", Scope: ScopeThread, ID: 0, Time: 1, Value: 100},
		{Metric: "bw", Scope: ScopeThread, ID: 1, Time: 1, Value: 50},
		{Metric: "bw", Scope: ScopeThread, ID: 6, Time: 1, Value: 30},
	}
	out := a.Rollup(in)

	node, ok := find(out, "bw", ScopeNode, 0)
	if !ok || node.Value != 180 {
		t.Fatalf("node sum = %+v (ok=%v), want 180", node, ok)
	}
	// Socket sums partition the node total.
	var socketTotal float64
	socketCount := 0
	for _, s := range out {
		if s.Metric == "bw" && s.Scope == ScopeSocket {
			socketTotal += s.Value
			socketCount++
		}
	}
	if socketCount != 2 || socketTotal != 180 {
		t.Errorf("socket roll-ups: %d sockets, total %v, want 2 and 180", socketCount, socketTotal)
	}
	// Distribution stats across the thread values.
	if s, ok := find(out, "bw/min", ScopeNode, 0); !ok || s.Value != 30 {
		t.Errorf("bw/min = %+v ok=%v, want 30", s, ok)
	}
	if s, ok := find(out, "bw/median", ScopeNode, 0); !ok || s.Value != 50 {
		t.Errorf("bw/median = %+v ok=%v, want 50", s, ok)
	}
	if s, ok := find(out, "bw/max", ScopeNode, 0); !ok || s.Value != 100 {
		t.Errorf("bw/max = %+v ok=%v, want 100", s, ok)
	}
	// Core roll-ups exist and carry the timestamps.
	foundCore := false
	for _, s := range out {
		if s.Metric == "bw" && s.Scope == ScopeCore {
			foundCore = true
			if s.Time != 1 {
				t.Errorf("core sample time = %v, want 1", s.Time)
			}
		}
	}
	if !foundCore {
		t.Error("no core-scope roll-ups emitted")
	}
}

func TestRollupSMTSiblingsShareACore(t *testing.T) {
	a := testAggregator(t, nil)
	// Find two processors mapped to the same core by feeding every
	// processor and checking one core bucket got two members.
	in := []Sample{}
	for cpu := 0; cpu < 24; cpu++ {
		in = append(in, Sample{Metric: "x", Scope: ScopeThread, ID: cpu, Time: 1, Value: 1})
	}
	out := a.Rollup(in)
	cores := 0
	for _, s := range out {
		if s.Metric == "x" && s.Scope == ScopeCore {
			cores++
			if s.Value != 2 {
				t.Errorf("core %d sum = %v, want 2 (SMT siblings merged)", s.ID, s.Value)
			}
		}
	}
	if cores != 12 {
		t.Errorf("%d core buckets, want 12 (2 sockets x 6 cores)", cores)
	}
	if node, ok := find(out, "x", ScopeNode, 0); !ok || node.Value != 24 {
		t.Errorf("node sum = %+v, want 24", node)
	}
}

func TestRollupMeanMetrics(t *testing.T) {
	a := testAggregator(t, nil)
	a.SetMean("cpi")
	in := []Sample{
		{Metric: "cpi", Scope: ScopeThread, ID: 0, Time: 1, Value: 1},
		{Metric: "cpi", Scope: ScopeThread, ID: 6, Time: 1, Value: 3},
	}
	out := a.Rollup(in)
	if node, ok := find(out, "cpi", ScopeNode, 0); !ok || node.Value != 2 {
		t.Errorf("mean node cpi = %+v, want 2", node)
	}
}

func TestRollupSocketSamplesToNode(t *testing.T) {
	a := testAggregator(t, nil)
	in := []Sample{
		{Metric: "mem_bw", Scope: ScopeSocket, ID: 0, Time: 2, Value: 10},
		{Metric: "mem_bw", Scope: ScopeSocket, ID: 1, Time: 2, Value: 20},
	}
	out := a.Rollup(in)
	node, ok := find(out, "mem_bw", ScopeNode, 0)
	if !ok || node.Value != 30 || node.Time != 2 {
		t.Fatalf("node roll-up of socket samples = %+v ok=%v, want 30 @ t=2", node, ok)
	}
	// Socket inputs must not be re-emitted at socket scope.
	for _, s := range out {
		if s.Metric == "mem_bw" && s.Scope == ScopeSocket {
			t.Errorf("socket input re-emitted: %+v", s)
		}
	}
}

func TestRollupIgnoresUnmappedAndNodeScope(t *testing.T) {
	a := testAggregator(t, []int{0, 1})
	out := a.Rollup([]Sample{
		{Metric: "y", Scope: ScopeThread, ID: 23, Time: 1, Value: 5}, // not monitored
		{Metric: "z", Scope: ScopeNode, ID: 0, Time: 1, Value: 7},    // already top level
	})
	if len(out) != 0 {
		t.Errorf("Rollup emitted %+v for unmapped/node inputs, want nothing", out)
	}
}
