package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"likwid/internal/cpuid"
	"likwid/internal/hwdef"
)

// syntheticArch builds an unregistered Intel architecture with arbitrary
// geometry — the input generator for the decode roundtrip property.
func syntheticArch(sockets, cores, smt int, sparseCores bool, leafB bool) *hwdef.Arch {
	physIDs := make([]int, cores)
	for i := range physIDs {
		if sparseCores {
			// Non-contiguous numbering like Westmere EP: leave gaps.
			physIDs[i] = i + i/3
		} else {
			physIDs[i] = i
		}
	}
	threadsPerSocket := cores * smt
	a := &hwdef.Arch{
		Name: "synthetic", ModelName: "Synthetic Test Processor",
		Vendor: hwdef.Intel, Family: 6, Model: 30, Stepping: 1,
		ClockMHz: 2000, Sockets: sockets, CoresPerSocket: cores, ThreadsPerCore: smt,
		PhysCoreIDs: physIDs,
		Caches: []hwdef.CacheLevel{
			{Level: 1, Type: hwdef.DataCache, SizeKB: 32, Assoc: 8, LineSize: 64, Sets: 64, SharedBy: smt},
			{Level: 2, Type: hwdef.UnifiedCache, SizeKB: 256, Assoc: 8, LineSize: 64, Sets: 512, SharedBy: smt},
			{Level: 3, Type: hwdef.UnifiedCache, SizeKB: 4096, Assoc: 16, LineSize: 64, Sets: 4096,
				SharedBy: threadsPerSocket},
		},
		NumPMC: 4, HasFixedCtr: true,
		HasLeafB: leafB, HasLeaf4: true,
		MaxLeaf: 0xB, MaxExtLeaf: 0x80000008,
		Events: map[string]hwdef.Event{
			"INSTR_RETIRED_ANY":     {Name: "INSTR_RETIRED_ANY", Domain: hwdef.DomainFixed, FixedIndex: 0},
			"CPU_CLK_UNHALTED_CORE": {Name: "CPU_CLK_UNHALTED_CORE", Domain: hwdef.DomainFixed, FixedIndex: 1},
		},
		Perf: hwdef.PerfModel{
			SocketMemBW: 10e9, CoreTriadBW: 5e9, CoreScalarBW: 3e9,
			SingleStreamBW: 4e9, L3BW: 20e9, RemoteFactor: 0.6,
			SMTVectorGain: 1.05, SMTScalarGain: 1.3, NTStoreEfficiency: 0.8,
			OversubscribePenalty: 0.08,
		},
	}
	if !leafB {
		a.MaxLeaf = 0xA
	}
	return a
}

// TestDecodeRoundtripProperty: for any geometry, decoding the emulated
// CPUID recovers exactly the defined geometry, on both the modern (leaf
// 0xB) and legacy decode paths.
func TestDecodeRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sockets := 1 + rng.Intn(4)
		cores := 1 + rng.Intn(8)
		smt := 1 + rng.Intn(2)
		sparse := rng.Intn(2) == 0
		leafB := rng.Intn(2) == 0
		if sparse && !leafB {
			// The legacy decode path cannot recover sparse core IDs on
			// multi-socket parts (neither can real tools on such BIOSes
			// without leaf 0xB); real sparse parts all have leaf 0xB.
			leafB = true
		}
		a := syntheticArch(sockets, cores, smt, sparse, leafB)
		if err := a.Validate(); err != nil {
			t.Logf("invalid synthetic arch: %v", err)
			return false
		}
		info, err := Probe(cpuid.NewNode(a), a.ClockMHz)
		if err != nil {
			t.Logf("probe: %v", err)
			return false
		}
		if info.Sockets != sockets || info.CoresPerSocket != cores || info.ThreadsPerCore != smt {
			t.Logf("geometry: got %d/%d/%d want %d/%d/%d (sparse=%v leafB=%v)",
				info.Sockets, info.CoresPerSocket, info.ThreadsPerCore,
				sockets, cores, smt, sparse, leafB)
			return false
		}
		// Physical core IDs reported verbatim.
		seen := map[int]bool{}
		for _, th := range info.Threads {
			if th.SocketID == 0 && th.ThreadID == 0 {
				seen[th.CoreID] = true
			}
		}
		for _, id := range a.PhysCoreIDs {
			if !seen[id] {
				t.Logf("core id %d missing from decode (sparse=%v)", id, sparse)
				return false
			}
		}
		// L3 sharing groups: one per socket, holding all its threads.
		for _, c := range info.Caches {
			if c.Level != 3 {
				continue
			}
			if len(c.Groups) != sockets {
				t.Logf("L3 groups = %d, want %d", len(c.Groups), sockets)
				return false
			}
			if c.SharedBy != cores*smt {
				t.Logf("L3 sharedBy = %d, want %d", c.SharedBy, cores*smt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestLegacyVsLeafBAgree: for dense geometries both decode paths must
// produce identical topologies.
func TestLegacyVsLeafBAgree(t *testing.T) {
	for _, geo := range [][3]int{{1, 4, 1}, {2, 4, 2}, {2, 6, 1}, {4, 2, 2}} {
		modern := syntheticArch(geo[0], geo[1], geo[2], false, true)
		legacy := syntheticArch(geo[0], geo[1], geo[2], false, false)
		im, err := Probe(cpuid.NewNode(modern), 2000)
		if err != nil {
			t.Fatal(err)
		}
		il, err := Probe(cpuid.NewNode(legacy), 2000)
		if err != nil {
			t.Fatal(err)
		}
		if im.Sockets != il.Sockets || im.CoresPerSocket != il.CoresPerSocket ||
			im.ThreadsPerCore != il.ThreadsPerCore {
			t.Errorf("geometry %v: leafB %d/%d/%d vs legacy %d/%d/%d", geo,
				im.Sockets, im.CoresPerSocket, im.ThreadsPerCore,
				il.Sockets, il.CoresPerSocket, il.ThreadsPerCore)
		}
		for p := range im.Threads {
			if im.Threads[p] != il.Threads[p] {
				t.Errorf("geometry %v proc %d: %+v vs %+v", geo, p, im.Threads[p], il.Threads[p])
				break
			}
		}
	}
}
