package perfctr

import (
	"math"
	"strings"
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
)

const sampleGroupFile = `
SHORT  Double precision MFlops/s (custom)
EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
PMC0  SIMD_COMP_INST_RETIRED_PACKED_DOUBLE
PMC1  SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE
METRICS
Runtime [s]  FIXC1/clock
CPI  FIXC1/FIXC0
DP MFlops/s  1.0E-06*(PMC0*2+PMC1)/time
LONG
This text documents the group and is ignored by the parser.
Formulas above reference counters, as in the original file format.
`

func TestParseGroupFile(t *testing.T) {
	a := hwdef.Core2Quad
	g, err := ParseGroupFile(a, "MY_FLOPS", sampleGroupFile)
	if err != nil {
		t.Fatal(err)
	}
	if g.Function != "Double precision MFlops/s (custom)" {
		t.Errorf("function = %q", g.Function)
	}
	if len(g.Events) != 2 {
		t.Fatalf("events = %v", g.Events)
	}
	if len(g.Metrics) != 3 {
		t.Fatalf("metrics = %d", len(g.Metrics))
	}
	// Counter names rewritten to event names.
	if g.Metrics[2].Formula != "1.0E-06*(SIMD_COMP_INST_RETIRED_PACKED_DOUBLE*2+SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE)/time" {
		t.Errorf("formula = %q", g.Metrics[2].Formula)
	}
	if g.Metrics[1].Formula != "CPU_CLK_UNHALTED_CORE/INSTR_RETIRED_ANY" {
		t.Errorf("CPI formula = %q", g.Metrics[1].Formula)
	}
}

func TestParseGroupFileErrors(t *testing.T) {
	a := hwdef.Core2Quad
	cases := map[string]string{
		"unknown event": "EVENTSET\nPMC0 NO_SUCH_EVENT\n",
		"bad eventset":  "EVENTSET\nPMC0\n",
		"counter reuse": "EVENTSET\nPMC0 L1D_REPL\nPMC0 L1D_M_EVICT\n",
		"orphan line":   "PMC0 L1D_REPL\n",
		"bad metric":    "EVENTSET\nPMC0 L1D_REPL\nMETRICS\nBandwidth\n",
		"unknown ctr":   "EVENTSET\nPMC0 L1D_REPL\nMETRICS\nX PMC5*2\n",
		"empty":         "LONG\nnothing\n",
		"bad formula":   "EVENTSET\nPMC0 L1D_REPL\nMETRICS\nX PMC0*\n",
	}
	for what, src := range cases {
		if _, err := ParseGroupFile(a, "BAD", src); err == nil {
			t.Errorf("%s: must fail", what)
		}
	}
}

// TestCustomGroupEndToEnd: a parsed group file drives a real measurement.
func TestCustomGroupEndToEnd(t *testing.T) {
	m := newMachine(t, "core2")
	g, err := ParseGroupFile(m.Arch, "MY_FLOPS", sampleGroupFile)
	if err != nil {
		t.Fatal(err)
	}
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	var specs []EventSpec
	for _, ev := range g.Events {
		specs = append(specs, EventSpec{Event: ev})
	}
	col, err := NewCollector(m, []int{0}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col.Start()
	const elems = 1e6
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{
			Cycles: 2,
			Counts: machine.Counts{machine.EvInstr: 3, machine.EvFlopsPackedDP: 1},
			Vector: true,
		},
	}}, 0)
	col.Stop()
	r := col.Read()
	expr, err := CompileExpr(g.Metrics[2].Formula)
	if err != nil {
		t.Fatal(err)
	}
	mflops, err := expr.Eval(r.Env(0, m.Arch.ClockHz()))
	if err != nil {
		t.Fatal(err)
	}
	wantTime := 2 * elems / m.Arch.ClockHz()
	want := 1e-6 * 2 * elems / wantTime
	if math.Abs(mflops-want) > want*0.05 {
		t.Errorf("custom DP MFlops/s = %v, want ≈ %v", mflops, want)
	}
	out := Report(r, &g, m.Arch.ClockHz())
	if !strings.Contains(out, "DP MFlops/s") {
		t.Error("custom group metrics missing from report")
	}
}

func TestReplaceIdent(t *testing.T) {
	cases := []struct{ s, old, new, want string }{
		{"PMC0+PMC1", "PMC0", "EV_A", "EV_A+PMC1"},
		{"PMC0*PMC0", "PMC0", "B", "B*B"},
		{"XPMC0", "PMC0", "B", "XPMC0"}, // not a whole identifier
		{"PMC01", "PMC0", "B", "PMC01"},
	}
	for _, c := range cases {
		if got := replaceIdent(c.s, c.old, c.new); got != c.want {
			t.Errorf("replaceIdent(%q,%q,%q) = %q, want %q", c.s, c.old, c.new, got, c.want)
		}
	}
}
