package monitor

import (
	"strings"
	"testing"
)

func mustLabels(t *testing.T, spec string) Labels {
	t.Helper()
	ls, err := ParseLabelSpec(spec)
	if err != nil {
		t.Fatalf("ParseLabelSpec(%q): %v", spec, err)
	}
	return ls
}

func TestParseLabelSpec(t *testing.T) {
	ls := mustLabels(t, "job=lbm,cluster=emmy")
	if got := ls.String(); got != "cluster=emmy,job=lbm" {
		t.Errorf("canonical form = %q, want sorted cluster=emmy,job=lbm", got)
	}
	if v, ok := ls.Get("job"); !ok || v != "lbm" {
		t.Errorf("Get(job) = %q %v", v, ok)
	}
	if _, ok := ls.Get("rack"); ok {
		t.Error("Get(rack) found a label that was never set")
	}
	if ls.Len() != 2 || ls.Empty() {
		t.Errorf("Len/Empty = %d/%v, want 2/false", ls.Len(), ls.Empty())
	}
	if m := ls.Map(); len(m) != 2 || m["cluster"] != "emmy" {
		t.Errorf("Map = %v", m)
	}

	empty := mustLabels(t, "")
	if !empty.Empty() || empty.String() != "" || empty.Map() != nil {
		t.Errorf("empty spec = %+v, want the zero set", empty)
	}
	if spaced := mustLabels(t, " job=lbm , cluster=emmy "); spaced != ls {
		t.Errorf("whitespace-tolerant parse = %q, want %q", spaced, ls)
	}

	for _, bad := range []string{
		"job",                             // no '='
		"job=",                            // empty value
		"=lbm",                            // empty name
		"1job=x",                          // name starts with a digit
		"jo b=x",                          // space in name
		"job=a\"b",                        // quote in value
		"job=x,job=y",                     // duplicate name
		"job=" + strings.Repeat("v", 200), // value too long
		"source=nodeA",                    // reserved: /metrics emits source=
		"scope=prod",                      // reserved: /metrics emits scope=
		"id=7",                            // reserved: /metrics emits id=
	} {
		if _, err := ParseLabelSpec(bad); err == nil {
			t.Errorf("ParseLabelSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestMakeLabelsValidation(t *testing.T) {
	if _, err := MakeLabels(map[string]string{"job": "lbm"}); err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]map[string]string{
		"bad name":       {"bad name": "x"},
		"empty value":    {"job": ""},
		"comma in value": {"job": "a,b"},
		"control char":   {"job": "a\x01b"},
		"reserved name":  {"scope": "prod"},
	} {
		if _, err := MakeLabels(m); err == nil {
			t.Errorf("MakeLabels(%s) succeeded, want error", name)
		}
	}
	big := map[string]string{}
	for i := 0; i < maxLabels+1; i++ {
		big["l"+strings.Repeat("l", i)] = "x"
	}
	if _, err := MakeLabels(big); err == nil {
		t.Errorf("MakeLabels with %d labels succeeded, want error", len(big))
	}
}

// TestLabelsInterning is the identity contract behind Key comparability:
// equal sets intern to the same handle regardless of construction path,
// so == and map lookups just work.
func TestLabelsInterning(t *testing.T) {
	a := mustLabels(t, "job=lbm,cluster=emmy")
	b, err := MakeLabels(map[string]string{"cluster": "emmy", "job": "lbm"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal sets did not intern to one handle: %q vs %q", a, b)
	}
	if c := mustLabels(t, "job=lbm"); c == a {
		t.Error("distinct sets interned to one handle")
	}
	ka := Key{Metric: "bw", Scope: ScopeNode, Labels: a}
	kb := Key{Metric: "bw", Scope: ScopeNode, Labels: b}
	if ka != kb {
		t.Error("keys with equal label sets do not compare equal")
	}
	m := map[Key]int{ka: 7}
	if m[kb] != 7 {
		t.Error("map lookup through a separately constructed label set missed")
	}
}

func TestMergeLabels(t *testing.T) {
	base := mustLabels(t, "cluster=emmy,job=default")
	over := mustLabels(t, "job=lbm,rack=r1")
	got := MergeLabels(base, over)
	if got.String() != "cluster=emmy,job=lbm,rack=r1" {
		t.Errorf("merge = %q, want over to win per name", got)
	}
	if MergeLabels(Labels{}, over) != over || MergeLabels(base, Labels{}) != base {
		t.Error("merge with the empty set must return the other side's handle")
	}
}

func TestMatchLabels(t *testing.T) {
	ls := mustLabels(t, "cluster=emmy,job=lbm")
	tests := []struct {
		sels []Label
		want bool
	}{
		{nil, true},
		{[]Label{{"job", "lbm"}}, true},
		{[]Label{{"job", "lbm"}, {"cluster", "emmy"}}, true},
		{[]Label{{"job", "ep"}}, false},
		{[]Label{{"rack", "*"}}, false}, // label must be present
		{[]Label{{"job", "lb*"}}, true},
		{[]Label{{"job", "*"}}, true},
		{[]Label{{"cluster", "e*y"}}, true},
		{[]Label{{"cluster", "x*"}}, false},
	}
	for _, tt := range tests {
		if got := MatchLabels(tt.sels, ls); got != tt.want {
			t.Errorf("MatchLabels(%v, %q) = %v, want %v", tt.sels, ls, got, tt.want)
		}
	}
	if !MatchLabels(nil, Labels{}) {
		t.Error("no selectors must match the empty set")
	}
	if MatchLabels([]Label{{"job", "*"}}, Labels{}) {
		t.Error("a selector must not match the empty set")
	}
}

// TestStoreKeepsLabeledSeriesDistinct pins the tentpole invariant: the
// same (source, metric, scope, id) under different label sets is
// different series, and the unlabelled key is untouched by labelled
// appends.
func TestStoreKeepsLabeledSeriesDistinct(t *testing.T) {
	st := NewStore(8)
	lbm := mustLabels(t, "job=lbm")
	ep := mustLabels(t, "job=ep")
	base := Key{Metric: "bw", Scope: ScopeNode, ID: 0}
	st.Append(base, Point{Time: 1, Value: 1})
	st.Append(Key{Metric: "bw", Scope: ScopeNode, ID: 0, Labels: lbm}, Point{Time: 1, Value: 10})
	st.Append(Key{Metric: "bw", Scope: ScopeNode, ID: 0, Labels: ep}, Point{Time: 1, Value: 20})

	if n := len(st.Keys()); n != 3 {
		t.Fatalf("store has %d series, want 3 (keys: %+v)", n, st.Keys())
	}
	if p, _ := st.Latest(base); p.Value != 1 {
		t.Errorf("unlabelled latest = %v, want 1", p.Value)
	}
	if p, _ := st.Latest(Key{Metric: "bw", Scope: ScopeNode, ID: 0, Labels: lbm}); p.Value != 10 {
		t.Errorf("job=lbm latest = %v, want 10", p.Value)
	}
	// Keys are sorted with the labels canon as the final tiebreak:
	// unlabelled first, then job=ep, then job=lbm.
	keys := st.Keys()
	wantLabels := []string{"", "job=ep", "job=lbm"}
	for i, k := range keys {
		if k.Labels.String() != wantLabels[i] {
			t.Errorf("Keys()[%d].Labels = %q, want %q", i, k.Labels, wantLabels[i])
		}
	}
}
