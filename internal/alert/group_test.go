package alert

import (
	"strings"
	"sync"
	"testing"
	"time"

	"likwid/internal/monitor"
)

// capturePublisher records published events.
type capturePublisher struct {
	mu     sync.Mutex
	events []Event
}

func (c *capturePublisher) Publish(ev Event) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	return true
}

func (c *capturePublisher) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGrouperCoalescesSameRuleAndState(t *testing.T) {
	next := &capturePublisher{}
	clock := monitor.NewFakeClock()
	g := NewGrouper(next, 30*time.Second, clock)

	for _, source := range []string{"node001", "node002", "node003"} {
		if !g.Publish(Event{Rule: "mem_bw_low", State: EventStateFiring, Source: source,
			Metric: "bw", Value: 1, Threshold: 2, Time: 60}) {
			t.Fatal("publish into an open window must be accepted")
		}
	}
	if got := next.snapshot(); len(got) != 0 {
		t.Fatalf("events before the window closed: %+v", got)
	}
	if g.Pending() != 1 {
		t.Fatalf("pending windows = %d, want 1", g.Pending())
	}

	clock.Advance(30 * time.Second)
	waitFor(t, "grouped delivery", func() bool { return len(next.snapshot()) == 1 })
	ev := next.snapshot()[0]
	if len(ev.Instances) != 3 {
		t.Fatalf("instances = %d, want 3", len(ev.Instances))
	}
	if ev.Rule != "mem_bw_low" || ev.State != EventStateFiring || ev.Source != "node001" {
		t.Fatalf("grouped event = %+v", ev)
	}
	if ev.Instances[2].Source != "node003" {
		t.Fatalf("instance order lost: %+v", ev.Instances)
	}
}

func TestGrouperSeparatesRulesAndStates(t *testing.T) {
	next := &capturePublisher{}
	clock := monitor.NewFakeClock()
	g := NewGrouper(next, 10*time.Second, clock)

	g.Publish(Event{Rule: "a", State: EventStateFiring, Time: 1})
	g.Publish(Event{Rule: "a", State: EventStateResolved, Time: 2})
	g.Publish(Event{Rule: "b", State: EventStateFiring, Time: 3})
	if g.Pending() != 3 {
		t.Fatalf("pending windows = %d, want 3 (rule+state keyed)", g.Pending())
	}
	clock.Advance(10 * time.Second)
	waitFor(t, "all windows", func() bool { return len(next.snapshot()) == 3 })
	// Lone events pass through ungrouped.
	for _, ev := range next.snapshot() {
		if len(ev.Instances) != 0 {
			t.Fatalf("lone event carries instances: %+v", ev)
		}
	}
}

func TestGrouperGroupedEventTimeIsNewest(t *testing.T) {
	next := &capturePublisher{}
	clock := monitor.NewFakeClock()
	g := NewGrouper(next, 10*time.Second, clock)
	g.Publish(Event{Rule: "a", State: EventStateFiring, Time: 60})
	g.Publish(Event{Rule: "a", State: EventStateFiring, Time: 75})
	g.Publish(Event{Rule: "a", State: EventStateFiring, Time: 70})
	clock.Advance(10 * time.Second)
	waitFor(t, "delivery", func() bool { return len(next.snapshot()) == 1 })
	if ev := next.snapshot()[0]; ev.Time != 75 {
		t.Fatalf("grouped time = %v, want the newest member's 75", ev.Time)
	}
}

func TestGrouperZeroWaitPassesThrough(t *testing.T) {
	next := &capturePublisher{}
	g := NewGrouper(next, 0, monitor.NewFakeClock())
	g.Publish(Event{Rule: "a", State: EventStateFiring})
	if got := next.snapshot(); len(got) != 1 || len(got[0].Instances) != 0 {
		t.Fatalf("zero wait must pass straight through, got %+v", got)
	}
}

func TestGrouperCloseFlushesSynchronously(t *testing.T) {
	next := &capturePublisher{}
	g := NewGrouper(next, time.Hour, monitor.NewFakeClock())
	g.Publish(Event{Rule: "a", State: EventStateFiring, Source: "n1"})
	g.Publish(Event{Rule: "a", State: EventStateFiring, Source: "n2"})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	got := next.snapshot()
	if len(got) != 1 || len(got[0].Instances) != 2 {
		t.Fatalf("Close must flush the open window, got %+v", got)
	}
	// After Close events bypass grouping.
	g.Publish(Event{Rule: "a", State: EventStateFiring})
	if len(next.snapshot()) != 2 {
		t.Fatal("post-Close publish must pass through")
	}
}

func TestLogNotifierGroupedLine(t *testing.T) {
	var sb strings.Builder
	n := NewLogNotifier(&sb)
	ev := Event{Rule: "mem_bw_low", State: EventStateFiring, Metric: "bw",
		Scope: "socket", Value: 1, Threshold: 2, Time: 60,
		Instances: []Event{{}, {}, {}}}
	if err := n.Notify(ev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), " instances=3") {
		t.Fatalf("log line %q lacks instances=3", sb.String())
	}
}

func TestEngineNotifyTakesPrecedence(t *testing.T) {
	st := monitor.NewStore(64)
	k := monitor.Key{Metric: "bw", Scope: monitor.ScopeNode}
	st.Append(k, monitor.Point{Time: 0, Value: 1})
	st.Append(k, monitor.Point{Time: 30, Value: 1})

	next := &capturePublisher{}
	r, err := ParseRule("low: avg(bw, node, 30s) < 2.0 for 0s", 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Options{
		Store:  st,
		Clock:  monitor.NewFakeClock(),
		Notify: next,
	}, []*Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	e.EvalNow()
	if got := next.snapshot(); len(got) != 1 || got[0].Rule != "low" {
		t.Fatalf("Notify publisher events = %+v, want one firing", got)
	}
}
