package monitor

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HTTPSink is the in-process scrape endpoint of the agent.  It implements
// Sink (keeping a latest-value snapshot per series) and serves:
//
//	/metrics  latest value of every series, Prometheus-style text:
//	          likwid_<metric>{source="nodeA",scope="socket",id="0"} <value> <sim time>
//	          (the source label appears only on ingested fleet series)
//	/query    windowed time series from the ring-buffer store as JSON:
//	          /query?metric=NAME&scope=socket&id=0&from=0.5&to=2.0
//	          plus source=NAME for one agent's series or a '*' wildcard
//	          (source=node*) fanning out across sources
//	/ingest   POST endpoint receiving (optionally gzipped) JSON-lines
//	          sample batches from remote push sinks; valid batches are
//	          appended to the store and the /metrics snapshot, so one
//	          receiver aggregates several node agents
//	/healthz  liveness plus batch accounting
type HTTPSink struct {
	store *Store
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux

	mu       sync.RWMutex
	latest   map[Key]Sample
	batches  uint64
	ingested uint64 // samples accepted via /ingest
}

// NewHTTPSink listens on addr immediately (so scrapes work as soon as the
// agent is up) and serves in a background goroutine.  The store backs
// /query and may be nil to disable windowed queries.
func NewHTTPSink(addr string, store *Store) (*HTTPSink, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: http sink: %w", err)
	}
	h := &HTTPSink{store: store, ln: ln, latest: map[Key]Sample{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/ingest", h.handleIngest)
	mux.HandleFunc("/healthz", h.handleHealth)
	h.mux = mux
	h.srv = &http.Server{Handler: mux}
	go func() { _ = h.srv.Serve(ln) }()
	return h, nil
}

// Handle mounts an extra endpoint on the sink's server — the extension
// point for layers above the monitor (the alert engine's /alerts and
// /rules) without this package depending on them.  ServeMux registration
// is internally locked, so mounting after the server is up is safe;
// registering a pattern twice panics, exactly like http.Handle.
func (h *HTTPSink) Handle(pattern string, handler http.Handler) {
	h.mux.Handle(pattern, handler)
}

// Addr returns the bound listen address (useful with port 0 in tests).
func (h *HTTPSink) Addr() string { return h.ln.Addr().String() }

// Name implements Sink.
func (h *HTTPSink) Name() string { return "http" }

// Write updates the latest-value snapshot served by /metrics.
func (h *HTTPSink) Write(b Batch) error {
	h.mu.Lock()
	for _, s := range b.Samples {
		h.latest[s.Key()] = s
	}
	h.batches++
	h.mu.Unlock()
	return nil
}

// Close stops the server.
func (h *HTTPSink) Close() error { return h.srv.Close() }

func (h *HTTPSink) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	samples := make([]Sample, 0, len(h.latest))
	for _, s := range h.latest {
		samples = append(samples, s)
	}
	h.mu.RUnlock()
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		return a.ID < b.ID
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, s := range samples {
		if s.Source != "" {
			fmt.Fprintf(w, "likwid_%s{source=%q,scope=%q,id=%q} %s %s\n",
				SanitizeMetric(s.Metric), s.Source, s.Scope, strconv.Itoa(s.ID),
				formatValue(s.Value), formatTime(s.Time))
			continue
		}
		fmt.Fprintf(w, "likwid_%s{scope=%q,id=%q} %s %s\n",
			SanitizeMetric(s.Metric), s.Scope, strconv.Itoa(s.ID),
			formatValue(s.Value), formatTime(s.Time))
	}
}

// queryResponse is the /query JSON payload for one series.
type queryResponse struct {
	Source string  `json:"source,omitempty"`
	Metric string  `json:"metric"`
	Scope  string  `json:"scope"`
	ID     int     `json:"id"`
	Points []Point `json:"points"`
}

// querySeriesResponse is the /query payload for a wildcard source
// selector: one entry per matched series, sorted by source.
type querySeriesResponse struct {
	Series []queryResponse `json:"series"`
}

func (h *HTTPSink) handleQuery(w http.ResponseWriter, r *http.Request) {
	if h.store == nil {
		http.Error(w, "no store attached", http.StatusNotImplemented)
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		http.Error(w, "missing metric parameter", http.StatusBadRequest)
		return
	}
	source := q.Get("source")
	scope := ScopeNode
	if sc := q.Get("scope"); sc != "" {
		var err error
		if scope, err = ParseScope(sc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	id := 0
	if is := q.Get("id"); is != "" {
		var err error
		if id, err = strconv.Atoi(is); err != nil {
			http.Error(w, "bad id parameter", http.StatusBadRequest)
			return
		}
	}
	from, to := 0.0, -1.0
	if fs := q.Get("from"); fs != "" {
		v, err := strconv.ParseFloat(fs, 64)
		if err != nil {
			http.Error(w, "bad from parameter", http.StatusBadRequest)
			return
		}
		from = v
	}
	if ts := q.Get("to"); ts != "" {
		v, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			http.Error(w, "bad to parameter", http.StatusBadRequest)
			return
		}
		to = v
	}
	w.Header().Set("Content-Type", "application/json")
	if strings.Contains(source, "*") {
		// Wildcard across sources: one response entry per matched series.
		resp := querySeriesResponse{Series: []queryResponse{}}
		for _, k := range h.queryKeys(source, metric, scope, id) {
			resp.Series = append(resp.Series, queryResponse{
				Source: k.Source,
				Metric: k.Metric,
				Scope:  k.Scope.String(),
				ID:     k.ID,
				Points: h.store.Window(k, from, to),
			})
		}
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	key := h.resolveKey(source, metric, scope, id)
	resp := queryResponse{
		Source: key.Source,
		Metric: key.Metric,
		Scope:  key.Scope.String(),
		ID:     key.ID,
		Points: h.store.Window(key, from, to),
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// resolveKey accepts either the exact stored metric name or its sanitized
// exposition form, so /query?metric=memory_bandwidth_mbytes_s works after
// scraping /metrics.
func (h *HTTPSink) resolveKey(source, metric string, scope Scope, id int) Key {
	key := Key{Source: source, Metric: metric, Scope: scope, ID: id}
	if h.store.Len(key) > 0 {
		return key
	}
	want := strings.TrimPrefix(metric, "likwid_")
	for _, k := range h.store.Keys() {
		if k.Source == source && k.Scope == scope && k.ID == id && SanitizeMetric(k.Metric) == want {
			return k
		}
	}
	return key
}

// queryKeys lists the stored series matching a wildcard source pattern
// plus an exact (or sanitized) metric at one scope/id, sorted by source.
func (h *HTTPSink) queryKeys(sourcePattern, metric string, scope Scope, id int) []Key {
	want := strings.TrimPrefix(metric, "likwid_")
	var out []Key
	for _, k := range h.store.Keys() { // sorted by source already
		if k.Scope != scope || k.ID != id {
			continue
		}
		if !MatchSource(sourcePattern, k.Source) {
			continue
		}
		if k.Metric != metric && SanitizeMetric(k.Metric) != want {
			continue
		}
		out = append(out, k)
	}
	return out
}

// ingest limits: the compressed body is capped by MaxBytesReader, the
// decompressed stream by limitedReader, so a gzip bomb cannot balloon
// the receiver.
const (
	maxIngestCompressed   = 8 << 20
	maxIngestDecompressed = 64 << 20
)

// errTooLarge marks a decompressed payload exceeding the ingest limit.
var errTooLarge = errors.New("payload too large")

// limitedReader errors (rather than silently truncating, as
// io.LimitReader would) once n bytes have been read.
type limitedReader struct {
	r io.Reader
	n int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, errTooLarge
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// decodeIngest parses and validates one JSON-lines ingest payload.  It
// is all-or-nothing: any malformed record rejects the whole batch, so a
// 400 never leaves a partial batch in the store.
//
// Two schema generations are accepted:
//
//	v2: {"source":"nodeA", "metric":"bw", ...} — source is a field and
//	    lands verbatim in Key.Source.
//	v1: {"metric":"nodeA/bw", ...} — the legacy prefix form, split by
//	    the SplitSourceMetric compat shim so old payloads land on the
//	    same store keys as their v2 equivalents.
func decodeIngest(r io.Reader) ([]Sample, error) {
	dec := json.NewDecoder(r)
	var out []Sample
	for i := 0; ; i++ {
		var js jsonSample
		if err := dec.Decode(&js); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		scope, err := ParseScope(js.Scope)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		switch {
		case strings.TrimSpace(js.Metric) == "":
			return nil, fmt.Errorf("record %d: empty metric", i)
		case js.ID < 0:
			return nil, fmt.Errorf("record %d: negative id %d", i, js.ID)
		case math.IsNaN(js.Time) || math.IsInf(js.Time, 0) || js.Time < 0:
			return nil, fmt.Errorf("record %d: bad time %v", i, js.Time)
		case math.IsNaN(js.Value) || math.IsInf(js.Value, 0):
			return nil, fmt.Errorf("record %d: bad value %v", i, js.Value)
		}
		// An explicit source field is stored verbatim — any label a v1
		// agent was free to configure keeps working.  Only the compat
		// shim below, guessing at a prefix, insists on a conservative
		// label shape.
		source, metric := js.Source, js.Metric
		if source == "" {
			// v1 compat shim: the only place in the suite that still
			// parses a source out of a metric name.
			source, metric, _ = SplitSourceMetric(js.Metric)
		}
		out = append(out, Sample{
			Source: source,
			Metric: metric,
			Scope:  scope,
			ID:     js.ID,
			Time:   js.Time,
			Value:  js.Value,
		})
	}
}

// ingestResponse is the /ingest JSON payload.
type ingestResponse struct {
	Accepted int `json:"accepted"`
}

func (h *HTTPSink) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if h.store == nil {
		http.Error(w, "no store attached", http.StatusNotImplemented)
		return
	}
	body := io.Reader(http.MaxBytesReader(w, r.Body, maxIngestCompressed))
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			http.Error(w, "bad gzip payload: "+err.Error(), http.StatusBadRequest)
			return
		}
		defer zr.Close()
		body = &limitedReader{r: zr, n: maxIngestDecompressed}
	case "", "identity":
	default:
		http.Error(w, "unsupported content encoding "+enc, http.StatusUnsupportedMediaType)
		return
	}
	samples, err := decodeIngest(body)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.Is(err, errTooLarge) || errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "bad ingest payload: "+err.Error(), status)
		return
	}
	// A pushed flush is dozens of samples over a handful of series:
	// intern each key once and append points through the handles instead
	// of paying the shard lookup per sample.
	var (
		lastKey Key
		handle  Series
		have    bool
	)
	for _, s := range samples {
		if k := s.Key(); !have || k != lastKey {
			handle, lastKey, have = h.store.Intern(k), k, true
		}
		handle.Append(Point{Time: s.Time, Value: s.Value})
	}
	h.mu.Lock()
	for _, s := range samples {
		h.latest[s.Key()] = s
	}
	h.ingested += uint64(len(samples))
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ingestResponse{Accepted: len(samples)})
}

func (h *HTTPSink) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	batches, ingested := h.batches, h.ingested
	h.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"batches\":%d,\"ingested\":%d,\"uptime\":%q}\n",
		batches, ingested, time.Now().Format(time.RFC3339))
}
