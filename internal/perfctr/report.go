package perfctr

import (
	"fmt"
	"strings"

	"likwid/internal/cli"
)

// Report renders measurement results as the paper's bordered tables: one
// event table (rows = events, columns = cores) and, when a group is given,
// one metric table with the derived values.
func Report(r Results, group *GroupDef, clockHz float64) string {
	var b strings.Builder
	b.WriteString(eventTable(r))
	if group != nil {
		b.WriteString(metricTable(r, *group, clockHz))
	}
	return b.String()
}

func eventTable(r Results) string {
	header := []string{"Event"}
	for _, cpu := range r.CPUs {
		header = append(header, fmt.Sprintf("core %d", cpu))
	}
	t := cli.NewTable(header...)
	for _, ev := range r.Events {
		row := []string{ev}
		for i := range r.CPUs {
			row = append(row, cli.FormatCount(r.Counts[ev][i]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

func metricTable(r Results, g GroupDef, clockHz float64) string {
	header := []string{"Metric"}
	for _, cpu := range r.CPUs {
		header = append(header, fmt.Sprintf("core %d", cpu))
	}
	t := cli.NewTable(header...)
	for _, m := range g.Metrics {
		expr, err := CompileExpr(m.Formula)
		if err != nil {
			continue
		}
		row := []string{m.Name}
		for i := range r.CPUs {
			v, err := expr.Eval(r.Env(i, clockHz))
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, cli.FormatMetric(v))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Header renders the preamble of a likwid-perfCtr run, as in the paper:
//
//	-------------------------------------------------------------
//	CPU type: Intel Core 2 45nm processor
//	CPU clock: 2.83 GHz
//	-------------------------------------------------------------
func Header(cpuName string, clockMHz float64) string {
	var b strings.Builder
	b.WriteString(cli.Rule + "\n")
	fmt.Fprintf(&b, "CPU type:\t%s\n", cpuName)
	fmt.Fprintf(&b, "CPU clock:\t%.2f GHz\n", clockMHz/1000)
	b.WriteString(cli.Rule + "\n")
	return b.String()
}
