package monitor

import (
	"sort"
	"sync"
	"sync/atomic"

	"likwid/internal/telemetry"
)

// Point is one (time, value) observation of a series.
type Point struct {
	Time  float64 `json:"time"`
	Value float64 `json:"value"`
}

// Compaction selects how a series' evicted raw points fold into its
// retention buckets.
type Compaction int

const (
	// CompactMean is the default for gauges and rates: a bucket's
	// windowed value is the average of its members.
	CompactMean Compaction = iota
	// CompactLast keeps last-value semantics for sparse step series
	// (alert transitions, state flags): a bucket's windowed value is
	// its chronologically newest member, so a 1→0 transition pair
	// landing in one bucket reads as 0 — the state at the bucket end —
	// instead of averaging into 0.5 noise.
	CompactLast
)

// series is one metric's fixed-capacity ring buffer plus its downsampled
// retention tiers.  Old points are not discarded when the ring is full:
// they are compacted into the tiers' buckets before being overwritten, so
// long retentions degrade in resolution instead of silently losing
// history.
type series struct {
	mu    sync.RWMutex
	key   Key // immutable after create; lets interned handles journal
	buf   []Point
	head  int // next write position
	n     int // filled entries, <= len(buf)
	tiers []*tierRing

	// Self-telemetry accounting.  Plain (non-atomic) counters bumped
	// under the mutex the append already holds: no extra atomics on the
	// hot path, no shared cache line across series, and Store.Stats sums
	// them at snapshot time — the pull model the telemetry package asks
	// components to use.
	appends   uint64
	evictions uint64
}

func (s *series) append(p Point) {
	s.mu.Lock()
	if s.n == len(s.buf) {
		s.evictions++
		if len(s.tiers) > 0 {
			// Evictions feed the finest tier only; buckets evicted from tier
			// N's ring cascade into tier N+1 inside seal, so each tier's data
			// flows downward instead of every tier re-reading raw points.
			s.tiers[0].absorb(s.buf[s.head])
		}
	}
	s.appends++
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// retainedInto copies the raw points (into buf's backing array when it
// fits) and every tier's buckets under one lock, so stitched Window
// queries see a consistent cut of the series.
func (s *series) retainedInto(buf []Point) ([]Point, [][]Bucket) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	raw := buf
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		raw = append(raw, s.buf[(start+i)%len(s.buf)])
	}
	var tiers [][]Bucket
	for _, t := range s.tiers {
		tiers = append(tiers, t.snapshot())
	}
	return raw, tiers
}

func (s *series) latest() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.n == 0 {
		return Point{}, false
	}
	idx := s.head - 1
	if idx < 0 {
		idx += len(s.buf)
	}
	return s.buf[idx], true
}

func (s *series) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Store is the agent's in-memory time-series database: one bounded ring
// buffer per (source, metric, scope, id) series behind an interned,
// copy-on-write key index, with optional downsampled retention tiers
// fed by ring evictions.
//
// The index is an immutable map snapshot behind an atomic pointer: the
// hot lookup is one atomic load plus one typed map access — the runtime
// hashes the small Key struct in place, with no string building, no
// interface boxing, no striped locks, and no shared atomic
// read-modify-write, so concurrent appenders scale without touching a
// common cache line.  Series creation (rare: the key set of a node is
// tiny and stable) clones the map under a mutex and publishes the new
// snapshot.
type Store struct {
	capacity int
	tiers    []Tier

	index atomic.Pointer[map[Key]*series] // immutable snapshot
	mu    sync.Mutex                      // serializes snapshot replacement

	// journal, when set, observes every append after it lands in the
	// ring — the write-ahead-log hook.  It is an atomic pointer so the
	// hot append path pays one load and no lock; implementations must
	// not block (the persist WAL hands records to a buffered channel
	// and drops-with-a-counter when full).
	journal atomic.Pointer[Journal]

	// inv is the read-side inverted selector index (see index.go),
	// maintained on the series-creation slow path only.
	inv *invertedIndex
}

// Journal observes appends for durability.  Record runs on the append
// path after the point lands in the ring: it receives plain values (no
// boxing), must be safe for concurrent use, and must not block.
type Journal interface {
	Record(k Key, p Point)
}

// SetJournal installs (or, with nil, removes) the append journal.
// Install it after restoring state and before serving traffic so
// replayed points are not re-journaled.
func (st *Store) SetJournal(j Journal) {
	if j == nil {
		st.journal.Store(nil)
		return
	}
	st.journal.Store(&j)
}

func (st *Store) record(k Key, p Point) {
	if jp := st.journal.Load(); jp != nil {
		(*jp).Record(k, p)
	}
}

// NewStore creates a store retaining up to capacity raw points per series
// (default 1024 when capacity <= 0).  Optional tiers add downsampled
// retention: raw points evicted from the ring are compacted into
// min/median/max/avg buckets of the finest tier, and buckets evicted
// from each tier's ring cascade into the next-coarser tier.
func NewStore(capacity int, tiers ...Tier) *Store {
	st := &Store{capacity: capacity, tiers: append([]Tier(nil), tiers...), inv: newInvertedIndex()}
	if st.capacity <= 0 {
		st.capacity = 1024
	}
	idx := map[Key]*series{}
	st.index.Store(&idx)
	return st
}

// lookup resolves a key through the interned snapshot; nil means the
// series does not exist.
func (st *Store) lookup(k Key) *series {
	return (*st.index.Load())[k]
}

// getOrCreate stays small enough to inline into the hot append paths:
// the snapshot hit returns directly, the miss defers to create.
func (st *Store) getOrCreate(k Key) *series {
	if s := (*st.index.Load())[k]; s != nil {
		return s
	}
	return st.create(k)
}

// create clones the index snapshot with the new series and publishes it
// — the rare cold path of getOrCreate.
func (st *Store) create(k Key) *series {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := *st.index.Load()
	if s := cur[k]; s != nil { // lost the creation race
		return s
	}
	s := st.newSeries(k)
	next := make(map[Key]*series, len(cur)+1)
	for kk, vv := range cur {
		next[kk] = vv
	}
	next[k] = s
	st.index.Store(&next)
	// Index after publishing: the generation bump is the read-side
	// "something new exists" signal, so caches that read the generation
	// before resolving can never miss this series at a stale generation.
	st.inv.add(k)
	return s
}

// newSeries builds one series ring with the store's tier configuration.
func (st *Store) newSeries(k Key) *series {
	s := &series{key: k, buf: make([]Point, st.capacity)}
	for _, t := range st.tiers {
		s.tiers = append(s.tiers, newTierRing(t))
	}
	// Chain the cascade: tier N's ring evictions compact into tier N+1.
	for i := 0; i+1 < len(s.tiers); i++ {
		s.tiers[i].next = s.tiers[i+1]
	}
	return s
}

// ensureMany creates every not-yet-present key in one snapshot clone
// and one bulk index insert — the cold-batch path (WAL replay, snapshot
// restore, first push from a new agent), where per-key create would
// clone an O(N) map N times.
func (st *Store) ensureMany(keys []Key) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := *st.index.Load()
	var fresh []Key
	for _, k := range keys {
		if cur[k] == nil {
			fresh = append(fresh, k)
		}
	}
	if len(fresh) == 0 {
		return
	}
	next := make(map[Key]*series, len(cur)+len(fresh))
	for kk, vv := range cur {
		next[kk] = vv
	}
	created := fresh[:0]
	for _, k := range fresh {
		if next[k] != nil { // duplicate within the batch
			continue
		}
		next[k] = st.newSeries(k)
		created = append(created, k)
	}
	st.index.Store(&next)
	st.inv.addMany(created)
}

// Series is an interned handle to one series: resolving the key once
// pins the ring, so hot paths appending the same series repeatedly (a
// receiver fanning in a pushed batch, a benchmark loop) skip the shard
// map lookup per point.
type Series struct {
	st *Store
	s  *series
}

// Intern resolves (creating if needed) the series for k and returns a
// reusable handle.  Handles stay valid for the life of the store.
func (st *Store) Intern(k Key) Series { return Series{st: st, s: st.getOrCreate(k)} }

// Append records one observation through the interned handle.
func (h Series) Append(p Point) {
	h.s.append(p)
	h.st.record(h.s.key, p)
}

// Latest returns the newest point of the interned series.
func (h Series) Latest() (Point, bool) { return h.s.latest() }

// Append records one observation.
func (st *Store) Append(k Key, p Point) {
	st.getOrCreate(k).append(p)
	st.record(k, p)
}

// AppendBatch records every sample of a batch.  Unseen series are
// created in one bulk pass first (one snapshot clone, one index
// re-sort), and consecutive same-key samples — the layout v4 columnar
// decode and per-collector batches produce — share one interned handle.
func (st *Store) AppendBatch(b Batch) {
	idx := *st.index.Load()
	var fresh []Key
	for _, s := range b.Samples {
		if k := s.Key(); idx[k] == nil {
			fresh = append(fresh, k)
		}
	}
	if len(fresh) > 0 {
		st.ensureMany(fresh)
	}
	var h Series
	var last Key
	for i, s := range b.Samples {
		k := s.Key()
		if i == 0 || k != last {
			h = st.Intern(k)
			last = k
		}
		h.Append(Point{Time: s.Time, Value: s.Value})
	}
}

// SetCompaction fixes how one series folds evicted raw points into its
// retention tiers.  The engine marks its sparse 0/1 "alert/<name>"
// transition series CompactLast so downsampled history keeps the state
// at each bucket end instead of averaging transitions into noise.
// Idempotent; safe to call on every append.
func (st *Store) SetCompaction(k Key, c Compaction) {
	s := st.getOrCreate(k)
	s.mu.Lock()
	for _, t := range s.tiers {
		t.step = c == CompactLast
	}
	s.mu.Unlock()
}

// Window returns the retained points of one series with from <= Time <= to,
// oldest first.  A negative "to" means "until the newest point".  Ranges
// older than the raw ring are served from the downsampled tiers, finest
// resolution first: each bucket becomes one point (bucket start, average —
// or newest member for CompactLast series), clipped so the stitched
// result is non-overlapping and time-ordered.
func (st *Store) Window(k Key, from, to float64) []Point {
	return st.WindowInto(k, from, to, nil)
}

// WindowInto is Window with caller-owned buffer reuse: the result is
// built in buf's backing array when it fits, so a caller evaluating
// windows in a loop (the alert and derive engines, the streaming /query
// encoder) amortizes the copy to zero steady-state allocations.  The
// returned slice aliases buf; pass it back (or its cap-grown successor)
// on the next call.  Tiered series still allocate for the stitched
// portion.
func (st *Store) WindowInto(k Key, from, to float64, buf []Point) []Point {
	s := st.lookup(k)
	if s == nil {
		return nil
	}
	raw, tiers := s.retainedInto(buf[:0])
	// Appends are normally time-ordered, but ingested batches may not be
	// (an agent restart resets its clock): sort defensively so the
	// oldest-first contract — and stitch's coverage boundary — hold.
	sorted := true
	for i := 1; i < len(raw); i++ {
		if raw[i].Time < raw[i-1].Time {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(raw, func(i, j int) bool { return raw[i].Time < raw[j].Time })
	}
	if len(tiers) == 0 {
		// Filter in place: the write index never passes the read index.
		out := raw[:0]
		for _, p := range raw {
			if p.Time < from || (to >= 0 && p.Time > to) {
				continue
			}
			out = append(out, p)
		}
		return out
	}
	return stitch(raw, tiers, from, to)
}

// Latest returns the newest point of a series.
func (st *Store) Latest(k Key) (Point, bool) {
	s := st.lookup(k)
	if s == nil {
		return Point{}, false
	}
	return s.latest()
}

// Len reports the retained point count of a series.
func (st *Store) Len(k Key) int {
	s := st.lookup(k)
	if s == nil {
		return 0
	}
	return s.len()
}

// ForEachKey calls f for every series key in unspecified order — the
// allocation-light path for filters (the alert engine's selectors run
// once per rule per evaluation tick) that do not need Keys' sorted
// copy.  f iterates an immutable index snapshot: no lock is held, and
// series created while it runs may or may not be visited.
func (st *Store) ForEachKey(f func(Key)) {
	for k := range *st.index.Load() {
		f(k)
	}
}

// StoreStats is one pass over the store's self-accounting: series count
// and the summed per-series append/eviction/compaction counters.
type StoreStats struct {
	Series      int
	Appends     uint64
	Evictions   uint64
	Compactions uint64 // tier buckets sealed across all series and tiers
}

// Stats sums the per-series counters over the current index snapshot.
// It takes each series' read lock briefly; appends proceed on other
// series concurrently.
func (st *Store) Stats() StoreStats {
	idx := *st.index.Load()
	out := StoreStats{Series: len(idx)}
	for _, s := range idx {
		s.mu.RLock()
		out.Appends += s.appends
		out.Evictions += s.evictions
		for _, t := range s.tiers {
			out.Compactions += t.seals
		}
		s.mu.RUnlock()
	}
	return out
}

// Instrument registers the store's self-metrics on reg as
// read-on-snapshot funcs — the store keeps its cheap per-series
// accounting and pays nothing extra per append.
func (st *Store) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("likwid_store_series", func() float64 {
		return float64(len(*st.index.Load()))
	})
	reg.CounterFunc("likwid_store_appends_total", func() float64 {
		return float64(st.Stats().Appends)
	})
	reg.CounterFunc("likwid_store_evictions_total", func() float64 {
		return float64(st.Stats().Evictions)
	})
	reg.CounterFunc("likwid_store_compactions_total", func() float64 {
		return float64(st.Stats().Compactions)
	})
	reg.GaugeFunc("likwid_store_label_sets", func() float64 {
		return float64(InternedLabelSets())
	})
	// Selector-index health: the generation says how often the key set
	// grows (engines re-resolve rule caches when it moves), postings is
	// the index's footprint in list entries.
	reg.GaugeFunc("likwid_store_index_generation", func() float64 {
		return float64(st.inv.gen.Load())
	})
	reg.GaugeFunc("likwid_store_index_postings", func() float64 {
		return float64(st.inv.size())
	})
}

// Keys lists every series, sorted by source, metric, scope, id, labels
// for stable output (local series first, then one block per agent,
// unlabelled before labelled variants of the same series).  The order
// is read off the index's incrementally maintained permutation — one
// O(N) copy, no per-call sort, no comparator string building.
func (st *Store) Keys() []Key {
	return st.inv.sortedKeys()
}
