package cli

import (
	"fmt"
	"strconv"
	"strings"

	"likwid/internal/machine"
	"likwid/internal/pin"
	"likwid/internal/sched"
	"likwid/internal/workloads/jacobi"
	"likwid/internal/workloads/stream"
)

// WorkloadSpec is a built-in workload the wrapper tools can launch in place
// of a real executable: the original likwid-perfCtr and likwid-pin wrap
// arbitrary binaries; the simulated suite wraps these.
//
// Syntax (the positional argument of likwid-perfctr / likwid-pin):
//
//	triad[:elems]          OpenMP STREAM triad (default 2e7 elements)
//	triad-gcc[:elems]      the gcc-compiled variant
//	jacobi:VARIANT[:size[:iters]]
//	                       VARIANT = threaded | nt | wavefront
//	sleep:SECONDS          idle (whole-node monitoring mode)
type WorkloadSpec struct {
	Kind     string
	Compiler stream.Compiler
	Elems    float64
	Variant  jacobi.Variant
	Size     int
	Iters    int
	Seconds  float64
}

// ParseWorkload parses the positional workload argument.
func ParseWorkload(arg string) (WorkloadSpec, error) {
	parts := strings.Split(arg, ":")
	switch parts[0] {
	case "triad", "triad-gcc":
		w := WorkloadSpec{Kind: "triad", Compiler: stream.ICC, Elems: 2e7}
		if parts[0] == "triad-gcc" {
			w.Compiler = stream.GCC
		}
		if len(parts) > 1 {
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || v <= 0 {
				return w, fmt.Errorf("cli: bad element count %q", parts[1])
			}
			w.Elems = v
		}
		return w, nil
	case "jacobi":
		w := WorkloadSpec{Kind: "jacobi", Variant: jacobi.Wavefront, Size: 300, Iters: 20}
		if len(parts) > 1 {
			switch parts[1] {
			case "threaded":
				w.Variant = jacobi.Threaded
			case "nt":
				w.Variant = jacobi.ThreadedNT
			case "wavefront", "blocked":
				w.Variant = jacobi.Wavefront
			default:
				return w, fmt.Errorf("cli: unknown jacobi variant %q", parts[1])
			}
		}
		if len(parts) > 2 {
			n, err := strconv.Atoi(parts[2])
			if err != nil || n < 8 {
				return w, fmt.Errorf("cli: bad jacobi size %q", parts[2])
			}
			w.Size = n
		}
		if len(parts) > 3 {
			n, err := strconv.Atoi(parts[3])
			if err != nil || n < 1 {
				return w, fmt.Errorf("cli: bad jacobi iters %q", parts[3])
			}
			w.Iters = n
		}
		return w, nil
	case "sleep":
		w := WorkloadSpec{Kind: "sleep", Seconds: 1}
		if len(parts) > 1 {
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || v <= 0 {
				return w, fmt.Errorf("cli: bad sleep duration %q", parts[1])
			}
			w.Seconds = v
		}
		return w, nil
	default:
		return WorkloadSpec{}, fmt.Errorf("cli: unknown workload %q (triad, triad-gcc, jacobi, sleep)", arg)
	}
}

// RunResult summarizes a launched workload.
type RunResult struct {
	Summary string
	Team    *sched.Team
}

// Run launches the workload on the machine with the given thread count and
// runtime model; pinner, when non-nil, is engaged exactly as likwid-pin
// engages it (process first, then the creation hook).
func (w WorkloadSpec) Run(m *machine.Machine, threads int, model sched.RuntimeModel, pinner *pin.Pinner) (RunResult, error) {
	switch w.Kind {
	case "sleep":
		m.RunIdle(w.Seconds, 0)
		return RunResult{Summary: fmt.Sprintf("slept %.2f s", w.Seconds)}, nil
	case "triad":
		master := m.OS.Spawn("triad", nil)
		var hook sched.SpawnHook
		if pinner != nil {
			if err := pinner.PinProcess(master); err != nil {
				return RunResult{}, err
			}
			hook = pinner.Hook()
		}
		team, err := sched.SpawnTeam(m.OS, model, threads, master, hook)
		if err != nil {
			return RunResult{}, err
		}
		pe := stream.PerElemFor(w.Compiler)
		var works []*machine.ThreadWork
		for _, worker := range team.Workers {
			works = append(works, &machine.ThreadWork{
				Task: worker, Elems: w.Elems / float64(threads), PerElem: pe,
			})
		}
		elapsed := m.RunPhase(works, 0)
		bw := w.Elems * stream.BytesPerElem / elapsed / 1e6
		return RunResult{
			Summary: fmt.Sprintf("triad (%s): %.0f MB/s over %.1f ms", w.Compiler, bw, elapsed*1e3),
			Team:    team,
		}, nil
	case "jacobi":
		inst, err := jacobi.Prepare(jacobi.Config{
			Arch: m.Arch, Variant: w.Variant, Size: w.Size, Iters: w.Iters,
			Threads: threads, Placement: jacobi.OneSocket,
		}, m)
		if err != nil {
			return RunResult{}, err
		}
		res, err := inst.Run()
		if err != nil {
			return RunResult{}, err
		}
		return RunResult{
			Summary: fmt.Sprintf("jacobi %s N=%d: %.0f MLUPS", w.Variant, w.Size, res.MLUPS),
			Team:    inst.Team,
		}, nil
	default:
		return RunResult{}, fmt.Errorf("cli: unknown workload kind %q", w.Kind)
	}
}
