package perfctr

import (
	"fmt"
	"sort"

	"likwid/internal/hwdef"
)

// Metric is one derived value of an event group.
type Metric struct {
	Name    string
	Formula string
}

// GroupDef is a preconfigured event set with derived metrics (the paper's
// §II-A table: FLOPS_DP … TLB).  Defs are written per vendor family; a
// group is available on an architecture iff that architecture defines every
// event the group needs, matching the paper: "We try to provide the same
// preconfigured event groups on all supported architectures, as long as the
// native events support them."
type GroupDef struct {
	Name     string
	Function string // one-line description from the paper's table
	Events   []string
	Metrics  []Metric
}

// groupCatalogue returns every group definition that could apply to the
// architecture's vendor family (before availability filtering).
func groupCatalogue(a *hwdef.Arch) []GroupDef {
	timeMetrics := []Metric{
		{"Runtime [s]", "CPU_CLK_UNHALTED_CORE/clock"},
		{"CPI", "CPU_CLK_UNHALTED_CORE/INSTR_RETIRED_ANY"},
	}
	withTime := func(extra ...Metric) []Metric {
		return append(append([]Metric{}, timeMetrics...), extra...)
	}

	switch a.Vendor {
	case hwdef.Intel:
		flopsDPEvents := []string{"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE"}
		flopsDPFormula := "1.0E-06*(SIMD_COMP_INST_RETIRED_PACKED_DOUBLE*2+SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE)/time"
		flopsSPEvents := []string{"SIMD_COMP_INST_RETIRED_PACKED_SINGLE", "SIMD_COMP_INST_RETIRED_SCALAR_SINGLE"}
		flopsSPFormula := "1.0E-06*(SIMD_COMP_INST_RETIRED_PACKED_SINGLE*4+SIMD_COMP_INST_RETIRED_SCALAR_SINGLE)/time"
		memEvents := []string{"BUS_TRANS_MEM_ALL"}
		memFormula := "1.0E-06*BUS_TRANS_MEM_ALL*64/time"
		loadsName, storesName := "INST_RETIRED_LOADS", "INST_RETIRED_STORES"
		if _, nehalem := a.Events["FP_COMP_OPS_EXE_SSE_FP_PACKED"]; nehalem {
			flopsDPEvents = []string{"FP_COMP_OPS_EXE_SSE_FP_PACKED", "FP_COMP_OPS_EXE_SSE_FP_SCALAR"}
			flopsDPFormula = "1.0E-06*(FP_COMP_OPS_EXE_SSE_FP_PACKED*2+FP_COMP_OPS_EXE_SSE_FP_SCALAR)/time"
			flopsSPEvents = []string{"FP_COMP_OPS_EXE_SSE_FP_PACKED", "FP_COMP_OPS_EXE_SSE_FP_SCALAR"}
			flopsSPFormula = "1.0E-06*(FP_COMP_OPS_EXE_SSE_FP_PACKED*4+FP_COMP_OPS_EXE_SSE_FP_SCALAR)/time"
			memEvents = []string{"UNC_QMC_NORMAL_READS_ANY", "UNC_QMC_WRITES_FULL_ANY"}
			memFormula = "1.0E-06*(UNC_QMC_NORMAL_READS_ANY+UNC_QMC_WRITES_FULL_ANY)*64/time"
			loadsName, storesName = "MEM_INST_RETIRED_LOADS", "MEM_INST_RETIRED_STORES"
		}
		if _, pm := a.Events["EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DOUBLE"]; pm {
			flopsDPEvents = []string{"EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DOUBLE", "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DOUBLE"}
			flopsDPFormula = "1.0E-06*(EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DOUBLE*2+EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DOUBLE)/time"
			flopsSPEvents = []string{"EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SINGLE", "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_SINGLE"}
			flopsSPFormula = "1.0E-06*(EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SINGLE*4+EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_SINGLE)/time"
		}
		return []GroupDef{
			{
				Name: "FLOPS_DP", Function: "Double Precision MFlops/s",
				Events:  flopsDPEvents,
				Metrics: withTime(Metric{"DP MFlops/s", flopsDPFormula}),
			},
			{
				Name: "FLOPS_SP", Function: "Single Precision MFlops/s",
				Events:  flopsSPEvents,
				Metrics: withTime(Metric{"SP MFlops/s", flopsSPFormula}),
			},
			{
				Name: "L2", Function: "L2 cache bandwidth in MBytes/s",
				Events: []string{"L1D_REPL", "L1D_M_EVICT"},
				Metrics: withTime(
					Metric{"L2 bandwidth [MBytes/s]", "1.0E-06*(L1D_REPL+L1D_M_EVICT)*64/time"},
					Metric{"L2 refill bandwidth [MBytes/s]", "1.0E-06*L1D_REPL*64/time"},
				),
			},
			{
				Name: "L3", Function: "L3 cache bandwidth in MBytes/s",
				Events: []string{"L2_LINES_IN_ANY", "L2_LINES_OUT_ANY"},
				Metrics: withTime(
					Metric{"L3 bandwidth [MBytes/s]", "1.0E-06*(L2_LINES_IN_ANY+L2_LINES_OUT_ANY)*64/time"},
				),
			},
			{
				Name: "MEM", Function: "Main memory bandwidth in MBytes/s",
				Events:  memEvents,
				Metrics: withTime(Metric{"Memory bandwidth [MBytes/s]", memFormula}),
			},
			{
				// The monitoring-stack staple: memory bandwidth and DP
				// Flop rate in one set, so an agent sees both sides of the
				// roofline from a single programming.
				Name: "MEM_DP", Function: "Memory bandwidth and double precision MFlops/s",
				Events: append(append([]string{}, memEvents...), flopsDPEvents...),
				Metrics: withTime(
					Metric{"DP MFlops/s", flopsDPFormula},
					Metric{"Memory bandwidth [MBytes/s]", memFormula},
				),
			},
			{
				Name: "CACHE", Function: "L1 Data cache miss rate/ratio",
				Events: []string{"L1D_REPL", "L1D_ALL_REF"},
				Metrics: withTime(
					Metric{"Data cache misses", "L1D_REPL"},
					Metric{"Data cache miss rate", "L1D_REPL/INSTR_RETIRED_ANY"},
					Metric{"Data cache miss ratio", "L1D_REPL/L1D_ALL_REF"},
				),
			},
			{
				Name: "L2CACHE", Function: "L2 Data cache miss rate/ratio",
				Events: []string{"L2_RQSTS_REFERENCES", "L2_RQSTS_MISS"},
				Metrics: withTime(
					Metric{"L2 miss rate", "L2_RQSTS_MISS/INSTR_RETIRED_ANY"},
					Metric{"L2 miss ratio", "L2_RQSTS_MISS/L2_RQSTS_REFERENCES"},
				),
			},
			{
				Name: "L3CACHE", Function: "L3 Data cache miss rate/ratio",
				Events: []string{"UNC_L3_HITS_ANY", "UNC_L3_MISS_ANY"},
				Metrics: withTime(
					Metric{"L3 miss rate", "UNC_L3_MISS_ANY/INSTR_RETIRED_ANY"},
					Metric{"L3 miss ratio", "UNC_L3_MISS_ANY/(UNC_L3_HITS_ANY+UNC_L3_MISS_ANY)"},
				),
			},
			{
				Name: "DATA", Function: "Load to store ratio",
				Events: []string{loadsName, storesName},
				Metrics: withTime(
					Metric{"Load to store ratio", loadsName + "/" + storesName},
				),
			},
			{
				Name: "BRANCH", Function: "Branch prediction miss rate/ratio",
				Events: []string{"BR_INST_RETIRED_ANY", "BR_INST_RETIRED_MISPRED"},
				Metrics: withTime(
					Metric{"Branch rate", "BR_INST_RETIRED_ANY/INSTR_RETIRED_ANY"},
					Metric{"Branch misprediction rate", "BR_INST_RETIRED_MISPRED/INSTR_RETIRED_ANY"},
					Metric{"Branch misprediction ratio", "BR_INST_RETIRED_MISPRED/BR_INST_RETIRED_ANY"},
				),
			},
			{
				Name: "TLB", Function: "Translation lookaside buffer miss rate/ratio",
				Events: []string{"DTLB_MISSES_ANY"},
				Metrics: withTime(
					Metric{"DTLB miss rate", "DTLB_MISSES_ANY/INSTR_RETIRED_ANY"},
				),
			},
		}
	case hwdef.AMD:
		return []GroupDef{
			{
				Name: "FLOPS_DP", Function: "Double Precision MFlops/s",
				Events: []string{"RETIRED_SSE_OPERATIONS_PACKED_DOUBLE", "RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE"},
				Metrics: withTime(
					// K10 counts FLOPs directly, no packed multiplier.
					Metric{"DP MFlops/s", "1.0E-06*(RETIRED_SSE_OPERATIONS_PACKED_DOUBLE+RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE)/time"},
				),
			},
			{
				Name: "FLOPS_SP", Function: "Single Precision MFlops/s",
				Events: []string{"RETIRED_SSE_OPERATIONS_PACKED_SINGLE", "RETIRED_SSE_OPERATIONS_SCALAR_SINGLE"},
				Metrics: withTime(
					Metric{"SP MFlops/s", "1.0E-06*(RETIRED_SSE_OPERATIONS_PACKED_SINGLE+RETIRED_SSE_OPERATIONS_SCALAR_SINGLE)/time"},
				),
			},
			{
				Name: "L2", Function: "L2 cache bandwidth in MBytes/s",
				Events: []string{"DATA_CACHE_REFILLS_ALL", "DATA_CACHE_EVICTED_ALL"},
				Metrics: withTime(
					Metric{"L2 bandwidth [MBytes/s]", "1.0E-06*(DATA_CACHE_REFILLS_ALL+DATA_CACHE_EVICTED_ALL)*64/time"},
				),
			},
			{
				Name: "L3", Function: "L3 cache bandwidth in MBytes/s",
				Events: []string{"L2_FILL_ALL", "L2_WRITEBACK_ALL"},
				Metrics: withTime(
					Metric{"L3 bandwidth [MBytes/s]", "1.0E-06*(L2_FILL_ALL+L2_WRITEBACK_ALL)*64/time"},
				),
			},
			{
				Name: "MEM", Function: "Main memory bandwidth in MBytes/s",
				Events: []string{"UNC_DRAM_ACCESSES_READS", "UNC_DRAM_ACCESSES_WRITES"},
				Metrics: withTime(
					Metric{"Memory bandwidth [MBytes/s]", "1.0E-06*(UNC_DRAM_ACCESSES_READS+UNC_DRAM_ACCESSES_WRITES)*64/time"},
				),
			},
			{
				Name: "MEM_DP", Function: "Memory bandwidth and double precision MFlops/s",
				Events: []string{
					"UNC_DRAM_ACCESSES_READS", "UNC_DRAM_ACCESSES_WRITES",
					"RETIRED_SSE_OPERATIONS_PACKED_DOUBLE", "RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE",
				},
				Metrics: withTime(
					Metric{"DP MFlops/s", "1.0E-06*(RETIRED_SSE_OPERATIONS_PACKED_DOUBLE+RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE)/time"},
					Metric{"Memory bandwidth [MBytes/s]", "1.0E-06*(UNC_DRAM_ACCESSES_READS+UNC_DRAM_ACCESSES_WRITES)*64/time"},
				),
			},
			{
				Name: "CACHE", Function: "L1 Data cache miss rate/ratio",
				Events: []string{"DATA_CACHE_REFILLS_ALL", "DATA_CACHE_ACCESSES"},
				Metrics: withTime(
					Metric{"Data cache misses", "DATA_CACHE_REFILLS_ALL"},
					Metric{"Data cache miss rate", "DATA_CACHE_REFILLS_ALL/INSTR_RETIRED_ANY"},
					Metric{"Data cache miss ratio", "DATA_CACHE_REFILLS_ALL/DATA_CACHE_ACCESSES"},
				),
			},
			{
				Name: "L2CACHE", Function: "L2 Data cache miss rate/ratio",
				Events: []string{"L2_REQUESTS_ALL", "L2_MISSES_ALL"},
				Metrics: withTime(
					Metric{"L2 miss rate", "L2_MISSES_ALL/INSTR_RETIRED_ANY"},
					Metric{"L2 miss ratio", "L2_MISSES_ALL/L2_REQUESTS_ALL"},
				),
			},
			{
				Name: "L3CACHE", Function: "L3 Data cache miss rate/ratio",
				Events: []string{"UNC_L3_READ_REQUESTS_ALL", "UNC_L3_MISSES_ALL"},
				Metrics: withTime(
					Metric{"L3 miss rate", "UNC_L3_MISSES_ALL/INSTR_RETIRED_ANY"},
					Metric{"L3 miss ratio", "UNC_L3_MISSES_ALL/UNC_L3_READ_REQUESTS_ALL"},
				),
			},
			{
				Name: "DATA", Function: "Load to store ratio",
				Events: []string{"LS_DISPATCH_LOADS", "LS_DISPATCH_STORES"},
				Metrics: withTime(
					Metric{"Load to store ratio", "LS_DISPATCH_LOADS/LS_DISPATCH_STORES"},
				),
			},
			{
				Name: "BRANCH", Function: "Branch prediction miss rate/ratio",
				Events: []string{"BR_INST_RETIRED_ANY", "BR_INST_RETIRED_MISPRED"},
				Metrics: withTime(
					Metric{"Branch rate", "BR_INST_RETIRED_ANY/INSTR_RETIRED_ANY"},
					Metric{"Branch misprediction rate", "BR_INST_RETIRED_MISPRED/INSTR_RETIRED_ANY"},
					Metric{"Branch misprediction ratio", "BR_INST_RETIRED_MISPRED/BR_INST_RETIRED_ANY"},
				),
			},
			{
				Name: "TLB", Function: "Translation lookaside buffer miss rate/ratio",
				Events: []string{"DTLB_MISSES_ANY"},
				Metrics: withTime(
					Metric{"DTLB miss rate", "DTLB_MISSES_ANY/INSTR_RETIRED_ANY"},
				),
			},
		}
	}
	return nil
}

// GroupFor resolves a named group for an architecture, failing when the
// architecture lacks one of the group's native events.
func GroupFor(a *hwdef.Arch, name string) (GroupDef, error) {
	for _, g := range groupCatalogue(a) {
		if g.Name != name {
			continue
		}
		for _, ev := range g.Events {
			if _, ok := a.Events[ev]; !ok {
				return GroupDef{}, fmt.Errorf("perfctr: group %s not supported on %s (missing event %s)", name, a.Name, ev)
			}
		}
		for _, mtr := range g.Metrics {
			if _, err := CompileExpr(mtr.Formula); err != nil {
				return GroupDef{}, fmt.Errorf("perfctr: group %s metric %q: %w", name, mtr.Name, err)
			}
		}
		return g, nil
	}
	return GroupDef{}, fmt.Errorf("perfctr: unknown group %q (available: %v)", name, GroupNames(a))
}

// GroupNames lists the groups available on the architecture.
func GroupNames(a *hwdef.Arch) []string {
	var names []string
outer:
	for _, g := range groupCatalogue(a) {
		for _, ev := range g.Events {
			if _, ok := a.Events[ev]; !ok {
				continue outer
			}
		}
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
