// likwid-mpirun launches a hybrid MPI+OpenMP job on the simulated node with
// correct per-rank pinning — automating the §II-C incantation
//
//	mpiexec -n N likwid-pin -c <slice> -s 0x3 ./a.out
//
// the way the later likwid-mpirun tool did.
//
// Usage:
//
//	likwid-mpirun [-a arch] -np RANKS -nt THREADS [-t TYPE] [workload]
//
//	-a arch    node architecture (default westmereEP)
//	-np N      MPI ranks on the node
//	-nt N      OpenMP threads per rank (OMP_NUM_THREADS)
//	-t TYPE    OpenMP runtime: intel | gnu  (intel adds the 0x3 skip mask)
//
// The workload (default "triad") runs in every rank concurrently.
package main

import (
	"flag"
	"fmt"
	"os"

	"likwid"
	"likwid/internal/cli"
	"likwid/internal/machine"
	"likwid/internal/mpi"
	"likwid/internal/sched"
	"likwid/internal/workloads/stream"
)

func main() {
	arch := flag.String("a", "westmereEP", "node architecture")
	ranks := flag.Int("np", 2, "MPI ranks")
	threads := flag.Int("nt", 4, "OpenMP threads per rank")
	runtimeType := flag.String("t", "intel", "OpenMP runtime (intel, gnu)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-mpirun:", err)
		os.Exit(1)
	}
	node, err := likwid.Open(*arch)
	if err != nil {
		fail(err)
	}
	model, err := sched.ParseRuntime(*runtimeType)
	if err != nil {
		fail(err)
	}
	workArg := "triad"
	if flag.NArg() == 1 {
		workArg = flag.Arg(0)
	}
	work, err := cli.ParseWorkload(workArg)
	if err != nil {
		fail(err)
	}
	if work.Kind != "triad" {
		fail(fmt.Errorf("likwid-mpirun only launches the triad workload, got %q", work.Kind))
	}

	launched, err := mpi.Launch(node.M, mpi.LaunchSpec{
		Ranks: *ranks, ThreadsPerRank: *threads, Runtime: model,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("likwid-mpirun: %d ranks x %d threads (%s) on %s\n",
		*ranks, *threads, model, node.Arch().ModelName)
	for i, placement := range mpi.Placement(launched) {
		fmt.Printf("rank %d: cores %v (skipped %d shepherd threads)\n",
			i, placement, launched[i].Shepherds)
	}

	pe := stream.PerElemFor(work.Compiler)
	var works []*machine.ThreadWork
	perThread := work.Elems / float64(*ranks**threads)
	for _, r := range launched {
		for _, w := range r.Team.Workers {
			works = append(works, &machine.ThreadWork{Task: w, Elems: perThread, PerElem: pe})
		}
	}
	elapsed := node.Run(works)
	bw := work.Elems * stream.BytesPerElem / elapsed / 1e6
	fmt.Printf("aggregate triad bandwidth: %.0f MB/s over %.1f ms\n", bw, elapsed*1e3)
}
