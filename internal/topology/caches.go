package topology

import (
	"fmt"

	"likwid/internal/cpuid"
	"likwid/internal/hwdef"
)

// decodeCaches recovers the data/unified cache hierarchy from CPUID,
// choosing the decode path the way likwid-topology does: deterministic
// cache parameters (leaf 0x4) on Core 2 and later Intel parts, the
// descriptor table (leaf 0x2) on older ones, and the extended leaves on
// AMD.  Instruction caches are decoded but dropped, matching the tool's
// report ("nondata caches are omitted").
func decodeCaches(c *cpuid.CPU, vendor hwdef.Vendor, pkgShift int) ([]Cache, error) {
	if vendor == hwdef.AMD {
		return amdCaches(c, pkgShift)
	}
	maxLeaf := c.Query(0, 0).EAX
	if maxLeaf >= 4 {
		if caches := intelLeaf4Caches(c); len(caches) > 0 {
			return caches, nil
		}
	}
	if maxLeaf >= 2 {
		return intelLeaf2Caches(c)
	}
	return nil, fmt.Errorf("topology: no cache reporting mechanism available")
}

func intelLeaf4Caches(c *cpuid.CPU) []Cache {
	var out []Cache
	for sub := uint32(0); ; sub++ {
		r := c.Query(4, sub)
		typ := hwdef.CacheType(r.EAX & 0x1F)
		if typ == 0 {
			break
		}
		level := int(r.EAX >> 5 & 0x7)
		span := int(r.EAX>>14&0xFFF) + 1
		ways := int(r.EBX>>22&0x3FF) + 1
		partitions := int(r.EBX>>12&0x3FF) + 1
		line := int(r.EBX&0xFFF) + 1
		sets := int(r.ECX) + 1
		if typ == hwdef.InstructionCache {
			continue
		}
		out = append(out, Cache{
			Level:       level,
			Type:        typ,
			SizeKB:      ways * partitions * line * sets / 1024,
			Assoc:       ways,
			Sets:        sets,
			LineSize:    line,
			Inclusive:   r.EDX&(1<<1) != 0,
			spanThreads: span,
		})
	}
	return out
}

func intelLeaf2Caches(c *cpuid.CPU) ([]Cache, error) {
	r := c.Query(2, 0)
	if r.EAX&0xFF != 0x01 {
		return nil, fmt.Errorf("topology: unexpected leaf-2 iteration count %#x", r.EAX&0xFF)
	}
	var out []Cache
	consume := func(reg uint32, skipLow bool) {
		if reg&(1<<31) != 0 {
			return // register holds no valid descriptors
		}
		for i := 0; i < 4; i++ {
			if skipLow && i == 0 {
				continue // AL is the iteration count, not a descriptor
			}
			b := byte(reg >> (8 * i))
			d, ok := cpuid.DescriptorTable[b]
			if !ok || d.Type == hwdef.InstructionCache {
				continue
			}
			out = append(out, Cache{
				Level:       d.Level,
				Type:        d.Type,
				SizeKB:      d.SizeKB,
				Assoc:       d.Assoc,
				Sets:        d.SizeKB * 1024 / (d.Assoc * d.LineSize),
				LineSize:    d.LineSize,
				spanThreads: 1,
			})
		}
	}
	consume(r.EAX, true)
	consume(r.EBX, false)
	consume(r.ECX, false)
	consume(r.EDX, false)
	return out, nil
}

func amdCaches(c *cpuid.CPU, pkgShift int) ([]Cache, error) {
	maxExt := c.Query(0x80000000, 0).EAX
	if maxExt < 0x80000006 {
		return nil, fmt.Errorf("topology: AMD extended cache leaves unavailable")
	}
	var out []Cache
	l1 := c.Query(0x80000005, 0)
	if size := int(l1.ECX >> 24); size > 0 {
		line := int(l1.ECX & 0xFF)
		assoc := int(l1.ECX >> 16 & 0xFF)
		out = append(out, Cache{
			Level: 1, Type: hwdef.DataCache, SizeKB: size, Assoc: assoc,
			Sets: size * 1024 / (assoc * line), LineSize: line, spanThreads: 1,
		})
	}
	l23 := c.Query(0x80000006, 0)
	if size := int(l23.ECX >> 16); size > 0 {
		line := int(l23.ECX & 0xFF)
		assoc, ok := cpuid.AMDAssocDecode[l23.ECX>>12&0xF]
		if !ok {
			return nil, fmt.Errorf("topology: unknown AMD L2 associativity encoding %#x", l23.ECX>>12&0xF)
		}
		out = append(out, Cache{
			Level: 2, Type: hwdef.UnifiedCache, SizeKB: size, Assoc: assoc,
			Sets: size * 1024 / (assoc * line), LineSize: line, spanThreads: 1,
		})
	}
	if units := int(l23.EDX >> 18); units > 0 {
		size := units * 512
		line := int(l23.EDX & 0xFF)
		assoc, ok := cpuid.AMDAssocDecode[l23.EDX>>12&0xF]
		if !ok {
			return nil, fmt.Errorf("topology: unknown AMD L3 associativity encoding %#x", l23.EDX>>12&0xF)
		}
		// The K10 L3 is shared by the whole package.
		out = append(out, Cache{
			Level: 3, Type: hwdef.UnifiedCache, SizeKB: size, Assoc: assoc,
			Sets: size * 1024 / (assoc * line), LineSize: line,
			spanThreads: 1 << pkgShift,
		})
	}
	return out, nil
}
