package main

import (
	"os"
	"testing"

	"likwid/internal/alert"
	"likwid/internal/derive"
)

// The walkthrough ships ready-made rule files; they must keep parsing
// as the DSLs evolve.
func TestExampleRuleFilesParse(t *testing.T) {
	b, err := os.ReadFile("../../examples/node-monitoring/alerts.rules")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := alert.ParseRules(string(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("example alerts.rules parsed to no rules")
	}

	b, err = os.ReadFile("../../examples/node-monitoring/derive.rules")
	if err != nil {
		t.Fatal(err)
	}
	drules, routes, err := derive.ParseFile(string(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(drules) == 0 {
		t.Fatal("example derive.rules parsed to no rules")
	}
	// The receiver-only forms stay commented in the walkthrough file.
	if len(routes) != 0 {
		t.Fatalf("example derive.rules has %d live routes, want commented examples only", len(routes))
	}
}
