module likwid

go 1.24
