// Stream-pinning: the paper's first case study (§IV-A) in miniature.
//
// Runs the OpenMP STREAM triad on a two-socket Westmere EP node at several
// thread counts, 25 samples each, first unpinned and then pinned round-robin
// across the sockets with likwid-pin — showing the unpinned variance
// collapse the paper's Figs. 4 and 5 document.
//
// Run with: go run ./examples/stream-pinning
package main

import (
	"fmt"
	"log"

	"likwid"
	"likwid/internal/stats"
	"likwid/internal/workloads/stream"
)

func main() {
	arch, err := likwid.LookupArch("westmereEP")
	if err != nil {
		log.Fatal(err)
	}
	const samples = 25
	fmt.Printf("STREAM triad on %s, %d samples per point [MB/s]\n\n", arch.ModelName, samples)
	fmt.Printf("%8s | %28s | %28s\n", "", "unpinned (Fig. 4)", "likwid-pin scatter (Fig. 5)")
	fmt.Printf("%8s | %9s %9s %8s | %9s %9s %8s\n",
		"threads", "median", "min", "IQR", "median", "min", "IQR")
	for _, threads := range []int{1, 2, 4, 6, 12, 24} {
		unpinned := sample(arch, threads, stream.Unpinned, samples)
		pinned := sample(arch, threads, stream.PinScatter, samples)
		fmt.Printf("%8d | %9.0f %9.0f %8.0f | %9.0f %9.0f %8.0f\n",
			threads,
			unpinned.Median, unpinned.Min, unpinned.IQR(),
			pinned.Median, pinned.Min, pinned.IQR())
	}
	fmt.Println("\nPinned medians saturate both memory controllers; unpinned runs")
	fmt.Println("scatter between single-socket and full-node bandwidth.")
}

func sample(arch *likwid.Arch, threads int, mode stream.PinMode, n int) stats.Summary {
	bw, err := stream.RunSamples(stream.Config{
		Arch: arch, Compiler: stream.ICC, Threads: threads, Mode: mode, Seed: int64(threads),
	}, n)
	if err != nil {
		log.Fatal(err)
	}
	return stats.Summarize(bw)
}
