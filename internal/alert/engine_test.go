package alert

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"likwid/internal/monitor"
)

// captureNotifier records events for assertions.
type captureNotifier struct {
	mu     sync.Mutex
	events []Event
}

func (c *captureNotifier) Name() string { return "capture" }
func (c *captureNotifier) Notify(ev Event) error {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
	return nil
}
func (c *captureNotifier) Close() error { return nil }

func (c *captureNotifier) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// waitEvents polls until the capture holds n events (fanout delivery is
// asynchronous) or the deadline passes.
func waitEvents(t *testing.T, c *captureNotifier, n int) []Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs := c.snapshot()
		if len(evs) >= n {
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d events (have %v)", n, evs)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustRules(t *testing.T, src string) []*Rule {
	t.Helper()
	rules, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func newTestEngine(t *testing.T, store *monitor.Store, src string) (*Engine, *captureNotifier, *Fanout) {
	t.Helper()
	cap := &captureNotifier{}
	fanout := NewFanout(64, cap)
	t.Cleanup(func() { _ = fanout.Close() })
	e, err := NewEngine(Options{Store: store, Fanout: fanout}, mustRules(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return e, cap, fanout
}

func appendNode(store *monitor.Store, metric string, from, to, step, value float64) {
	k := monitor.Key{Metric: metric, Scope: monitor.ScopeNode, ID: 0}
	for ts := from; ts <= to; ts += step {
		store.Append(k, monitor.Point{Time: ts, Value: value})
	}
}

// TestEngineLifecycle drives one rule through the full
// inactive → pending → firing → resolved lifecycle with EvalNow and
// checks the transition events, the /alerts snapshot shape, and the
// alert history series recorded into the store.
func TestEngineLifecycle(t *testing.T) {
	store := monitor.NewStore(256)
	e, cap, _ := newTestEngine(t, store,
		"bw_low: avg(bw, node, 10s) < 100 for 20s")

	// Healthy data: no instance.
	appendNode(store, "bw", 0, 10, 1, 500)
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy data produced alerts: %+v", alerts)
	}

	// Condition turns true: pending, not yet firing.
	appendNode(store, "bw", 11, 25, 1, 50)
	e.EvalNow()
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != "pending" {
		t.Fatalf("alerts = %+v, want one pending", alerts)
	}
	if alerts[0].Since != 25 {
		t.Errorf("pending since %v, want 25", alerts[0].Since)
	}
	if len(cap.snapshot()) != 0 {
		t.Fatalf("pending must not notify, got %+v", cap.snapshot())
	}

	// Still below threshold but the hold time has not elapsed.
	appendNode(store, "bw", 26, 40, 1, 50)
	e.EvalNow()
	if alerts := e.Alerts(); alerts[0].State != "pending" {
		t.Fatalf("hold not elapsed, state = %s, want pending", alerts[0].State)
	}

	// Hold elapsed (45 - 25 >= 20): firing, one notification, history 1.
	appendNode(store, "bw", 41, 45, 1, 50)
	e.EvalNow()
	alerts = e.Alerts()
	if len(alerts) != 1 || alerts[0].State != "firing" || alerts[0].FiringSince != 45 {
		t.Fatalf("alerts = %+v, want firing since 45", alerts)
	}
	evs := waitEvents(t, cap, 1)
	if evs[0].State != EventStateFiring || evs[0].Rule != "bw_low" || evs[0].Time != 45 {
		t.Fatalf("event = %+v, want firing bw_low at t=45", evs[0])
	}
	histKey := monitor.Key{Metric: "alert/bw_low", Scope: monitor.ScopeNode, ID: 0}
	if p, ok := store.Latest(histKey); !ok || p.Value != 1 || p.Time != 45 {
		t.Fatalf("history = %+v (%v), want value 1 at t=45", p, ok)
	}

	// Continued firing does not re-notify (dedup).
	appendNode(store, "bw", 46, 60, 1, 50)
	e.EvalNow()
	e.EvalNow()
	if evs := cap.snapshot(); len(evs) != 1 {
		t.Fatalf("firing re-notified: %+v", evs)
	}

	// Recovery: resolved event, instance gone, history 0.
	appendNode(store, "bw", 61, 75, 1, 500)
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 0 {
		t.Fatalf("alerts after recovery = %+v, want none", alerts)
	}
	evs = waitEvents(t, cap, 2)
	if evs[1].State != EventStateResolved || evs[1].Since != 45 {
		t.Fatalf("event = %+v, want resolved with since=45", evs[1])
	}
	if p, _ := store.Latest(histKey); p.Value != 0 {
		t.Fatalf("history after resolve = %+v, want value 0", p)
	}
}

// TestEngineFlapping pins the dedup guarantee: a condition that flaps
// below the "for" horizon never notifies.
func TestEngineFlapping(t *testing.T) {
	store := monitor.NewStore(256)
	e, cap, _ := newTestEngine(t, store,
		"flappy: max(bw, node, 2s) > 100 for 30s")

	ts := 0.0
	for cycle := 0; cycle < 5; cycle++ {
		// 10 s hot (pending, below the 30 s hold), then 10 s cool.
		appendNode(store, "bw", ts, ts+9, 1, 500)
		e.EvalNow()
		if alerts := e.Alerts(); len(alerts) != 1 || alerts[0].State != "pending" {
			t.Fatalf("cycle %d: alerts = %+v, want one pending", cycle, alerts)
		}
		appendNode(store, "bw", ts+10, ts+19, 1, 10)
		e.EvalNow()
		if alerts := e.Alerts(); len(alerts) != 0 {
			t.Fatalf("cycle %d: pending not cancelled: %+v", cycle, alerts)
		}
		ts += 20
	}
	if evs := cap.snapshot(); len(evs) != 0 {
		t.Fatalf("flapping notified: %+v", evs)
	}
}

// TestEngineForZeroFiresImmediately covers the for-0 fast path.
func TestEngineForZeroFiresImmediately(t *testing.T) {
	store := monitor.NewStore(64)
	e, cap, _ := newTestEngine(t, store, "hot: min(bw, node, 5s) > 10 for 0s")
	appendNode(store, "bw", 0, 5, 1, 50)
	e.EvalNow()
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("alerts = %+v, want immediate firing", alerts)
	}
	waitEvents(t, cap, 1)
}

// TestEngineRate checks the rate() function: a flat-lining counter.
func TestEngineRate(t *testing.T) {
	store := monitor.NewStore(64)
	e, _, _ := newTestEngine(t, store, "flat: rate(ops, node, 10s) <= 0 for 0s")
	k := monitor.Key{Metric: "ops", Scope: monitor.ScopeNode, ID: 0}
	// Rising counter: rate 10/s, no alert.
	for i := 0; i <= 5; i++ {
		store.Append(k, monitor.Point{Time: float64(i), Value: float64(i) * 10})
	}
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 0 {
		t.Fatalf("rising rate alerted: %+v", alerts)
	}
	// Flat counter over the lookback: rate 0 -> firing.
	for i := 6; i <= 20; i++ {
		store.Append(k, monitor.Point{Time: float64(i), Value: 50})
	}
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("flat rate alerts = %+v, want firing", alerts)
	}
}

// TestEngineImbalance checks the cross-series spread function: one
// instance for the whole selector, (max-min)/|mean| of window averages.
func TestEngineImbalance(t *testing.T) {
	store := monitor.NewStore(64)
	e, cap, _ := newTestEngine(t, store,
		"skew: imbalance(bw, socket, 10s) > 0.5 for 0s")
	k0 := monitor.Key{Metric: "bw", Scope: monitor.ScopeSocket, ID: 0}
	k1 := monitor.Key{Metric: "bw", Scope: monitor.ScopeSocket, ID: 1}
	for i := 0; i <= 10; i++ {
		store.Append(k0, monitor.Point{Time: float64(i), Value: 100})
		store.Append(k1, monitor.Point{Time: float64(i), Value: 110})
	}
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 0 {
		t.Fatalf("balanced sockets alerted: %+v", alerts)
	}
	// Socket 1 collapses: spread (300-100)/200 = 1 > 0.5.
	for i := 11; i <= 20; i++ {
		store.Append(k0, monitor.Point{Time: float64(i), Value: 300})
		store.Append(k1, monitor.Point{Time: float64(i), Value: 100})
	}
	e.EvalNow()
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("imbalance alerts = %+v, want one firing", alerts)
	}
	evs := waitEvents(t, cap, 1)
	if evs[0].Metric != "bw" || evs[0].Scope != "socket" {
		t.Fatalf("imbalance event = %+v, want selector-keyed instance", evs[0])
	}
	if evs[0].Value <= 0.5 {
		t.Fatalf("imbalance value = %v, want > 0.5", evs[0].Value)
	}
}

// TestEngineImbalanceZeroMeanStaysFinite pins the JSON-safety guard:
// signed members cancelling to a zero mean must not produce an infinite
// spread (events and /alerts are JSON, which cannot carry Inf).
func TestEngineImbalanceZeroMeanStaysFinite(t *testing.T) {
	store := monitor.NewStore(64)
	e, cap, _ := newTestEngine(t, store,
		"skew: imbalance(delta, socket, 10s) > 1 for 0s")
	k0 := monitor.Key{Metric: "delta", Scope: monitor.ScopeSocket, ID: 0}
	k1 := monitor.Key{Metric: "delta", Scope: monitor.ScopeSocket, ID: 1}
	for i := 0; i <= 5; i++ {
		store.Append(k0, monitor.Point{Time: float64(i), Value: 5})
		store.Append(k1, monitor.Point{Time: float64(i), Value: -5})
	}
	e.EvalNow()
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("alerts = %+v, want firing (spread 2 > 1)", alerts)
	}
	if v := alerts[0].Value; math.IsInf(v, 0) || math.IsNaN(v) || v != 2 {
		t.Fatalf("imbalance value = %v, want finite 2 ((5-(-5))/((5+5)/2))", v)
	}
	evs := waitEvents(t, cap, 1)
	if _, err := json.Marshal(evs[0]); err != nil {
		t.Fatalf("event not JSON-encodable: %v", err)
	}
}

// appendSourced appends a fleet series: one agent's metric at node scope.
func appendSourced(store *monitor.Store, source, metric string, from, to, step, value float64) {
	k := monitor.Key{Source: source, Metric: metric, Scope: monitor.ScopeNode, ID: 0}
	for ts := from; ts <= to; ts += step {
		store.Append(k, monitor.Point{Time: ts, Value: value})
	}
}

// TestEngineWildcardFleet pins the receiver use case: one rule watching
// every source's series through the '*' source selector, one alert
// instance per source, history keyed per source.
func TestEngineWildcardFleet(t *testing.T) {
	store := monitor.NewStore(64)
	e, cap, _ := newTestEngine(t, store,
		"fleet_idle: avg(*/bw, node, 10s) < 100 for 0s")
	appendSourced(store, "nodeA", "bw", 0, 10, 1, 50)
	appendSourced(store, "nodeB", "bw", 0, 10, 1, 500)
	e.EvalNow()
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].Source != "nodeA" || alerts[0].Metric != "bw" {
		t.Fatalf("alerts = %+v, want only nodeA's bw firing", alerts)
	}
	evs := waitEvents(t, cap, 1)
	if evs[0].Source != "nodeA" || evs[0].Metric != "bw" {
		t.Fatalf("event = %+v, want source nodeA metric bw", evs[0])
	}
	// Per-source history keys so two fleet nodes do not collapse into
	// one series — source is a Key dimension, not a metric suffix.
	k := monitor.Key{Source: "nodeA", Metric: "alert/fleet_idle", Scope: monitor.ScopeNode, ID: 0}
	if p, ok := store.Latest(k); !ok || p.Value != 1 {
		t.Fatalf("fleet history = %+v (%v), want value 1", p, ok)
	}
	if _, ok := store.Latest(monitor.Key{Source: "nodeB", Metric: "alert/fleet_idle", Scope: monitor.ScopeNode, ID: 0}); ok {
		t.Fatal("healthy nodeB grew a history transition")
	}
}

// TestEngineReload pins hot reload: the rule set swaps atomically,
// unchanged rules keep their live instances, removed or edited rules
// drop theirs, and new rules evaluate immediately.
func TestEngineReload(t *testing.T) {
	store := monitor.NewStore(256)
	e, cap, _ := newTestEngine(t, store,
		"bw_low: avg(bw, node, 10s) < 100 for 0s\nunchanged: max(bw, node, 10s) < 100 for 0s")
	appendNode(store, "bw", 0, 10, 1, 50)
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want both rules firing", alerts)
	}
	waitEvents(t, cap, 2)

	// Reload: bw_low edited (new threshold), unchanged kept verbatim,
	// bw_high added.
	e.Reload(mustRules(t,
		"bw_low: avg(bw, node, 10s) < 60 for 0s\nunchanged: max(bw, node, 10s) < 100 for 0s\nbw_high: min(bw, node, 10s) > 10 for 0s"))
	rules := e.Rules()
	if len(rules) != 3 || rules[2].Name != "bw_high" {
		t.Fatalf("rules after reload = %+v, want 3 with bw_high last", rules)
	}
	// The edited rule's old instance is gone until the next eval; the
	// unchanged rule keeps its firing instance (no duplicate event).
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != "unchanged" {
		t.Fatalf("alerts after reload = %+v, want only the unchanged rule's instance", alerts)
	}
	e.EvalNow()
	alerts = e.Alerts()
	if len(alerts) != 3 {
		t.Fatalf("alerts after re-eval = %+v, want all three firing", alerts)
	}
	// unchanged must NOT have re-fired: 2 initial + bw_low re-fire +
	// bw_high fire = 4 events total.
	evs := waitEvents(t, cap, 4)
	if len(evs) != 4 {
		t.Fatalf("events = %+v, want exactly 4", evs)
	}
	count := map[string]int{}
	for _, ev := range evs {
		count[ev.Rule]++
	}
	if count["unchanged"] != 1 || count["bw_low"] != 2 || count["bw_high"] != 1 {
		t.Fatalf("event counts = %+v, want unchanged:1 bw_low:2 bw_high:1", count)
	}
	// Rule bookkeeping for surviving rules keeps its eval counter.
	for _, rs := range e.RuleStatuses() {
		if rs.Name == "unchanged" && rs.Evals != 2 {
			t.Errorf("unchanged evals = %d, want 2 (bookkeeping preserved)", rs.Evals)
		}
	}
}

// TestEngineReloadIdenticalKeepsTimers pins that re-posting the same
// rule file does not restart the evaluation goroutines: a
// config-management loop reloading every few seconds must not starve a
// rule whose cadence is longer than the reload period.
func TestEngineReloadIdenticalKeepsTimers(t *testing.T) {
	store := monitor.NewStore(64)
	appendNode(store, "bw", 0, 10, 1, 50)
	spec := "bw_low: avg(bw, node, 10s) < 100 for 0s\n"
	e, cap, _ := newTestEngine(t, store, spec)
	e.EvalNow()
	waitEvents(t, cap, 1)

	e.Reload(mustRules(t, spec))
	select {
	case <-e.reload:
		t.Fatal("spec-identical reload signalled a goroutine restart")
	default:
	}
	// Instances and bookkeeping survive untouched.
	if alerts := e.Alerts(); len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("alerts after identical reload = %+v, want the firing instance kept", alerts)
	}
	if sts := e.RuleStatuses(); sts[0].Evals != 1 {
		t.Fatalf("evals = %d after identical reload, want 1 preserved", sts[0].Evals)
	}

	// A genuinely different set still signals.
	e.Reload(mustRules(t, "other: max(bw, node, 10s) < 100 for 0s"))
	select {
	case <-e.reload:
	default:
		t.Fatal("changed reload did not signal a restart")
	}
}

// TestEngineReloadRestartsRunLoop drives Reload under a running engine:
// the new rule set takes over the evaluation goroutines.
func TestEngineReloadRestartsRunLoop(t *testing.T) {
	fc := monitor.NewFakeClock()
	store := monitor.NewStore(64)
	appendNode(store, "bw", 0, 10, 1, 50)
	cap := &captureNotifier{}
	fanout := NewFanout(16, cap)
	defer fanout.Close()
	e, err := NewEngine(Options{Store: store, Clock: fc, Fanout: fanout},
		mustRules(t, "old: avg(bw, node, 10s) < 100 for 0s every 2s"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()
	waitForTimers(t, fc, 1)

	e.Reload(mustRules(t, "new: min(bw, node, 10s) < 100 for 0s every 2s"))
	// The cancelled goroutine's timer stays armed in the fake clock (it
	// fires into a buffered channel nobody reads), so the restarted
	// goroutine's arm is the second waiter.
	waitForTimers(t, fc, 2)
	fc.Advance(2 * time.Second)
	evs := waitEvents(t, cap, 1)
	if evs[0].Rule != "new" {
		t.Fatalf("event = %+v, want the new rule firing", evs[0])
	}
	sts := e.RuleStatuses()
	if len(sts) != 1 || sts[0].Name != "new" || sts[0].Evals == 0 {
		t.Fatalf("statuses after reload = %+v, want the new rule evaluated", sts)
	}
	cancel()
	<-done
}

// TestAlertHistoryCompactsByLastValue pins the step compaction of the
// sparse 0/1 transition series: once a fire/resolve pair is evicted
// into a retention bucket, the windowed history reads 0 or 1 — never a
// 0.5 average.
func TestAlertHistoryCompactsByLastValue(t *testing.T) {
	// Tiny raw ring (2 points) with one coarse tier, so the second
	// firing episode evicts the first into a bucket.
	store := monitor.NewStore(2, monitor.Tier{Resolution: 1000, Capacity: 8})
	e, cap, _ := newTestEngine(t, store, "bw_low: avg(bw, node, 10s) < 100 for 0s")

	flip := func(from, to float64, low bool) {
		v := 500.0
		if low {
			v = 50
		}
		appendNode(store, "bw", from, to, 1, v)
		e.EvalNow()
	}
	flip(0, 10, true)   // fire at 10
	flip(11, 30, false) // resolve at 30
	flip(31, 50, true)  // fire again at 50 — evicts the first pair
	flip(51, 70, false) // resolve at 70
	waitEvents(t, cap, 4)

	histKey := monitor.Key{Metric: "alert/bw_low", Scope: monitor.ScopeNode, ID: 0}
	pts := store.Window(histKey, 0, -1)
	if len(pts) == 0 {
		t.Fatal("no history points")
	}
	for _, p := range pts {
		if p.Value != 0 && p.Value != 1 {
			t.Errorf("history point %+v shows a value never recorded (mean-compaction noise)", p)
		}
	}
	// The bucket covering the evicted fire(1)/resolve(0) pair reads the
	// last state, 0.
	buckets := store.Buckets(histKey, 1000, 0, -1)
	if len(buckets) == 0 {
		t.Fatal("no history buckets compacted")
	}
	if b := buckets[0]; b.Avg != 0 || b.Min != 0 || b.Max != 1 {
		t.Errorf("history bucket = %+v, want last=0 with exact min/max", b)
	}
}

// TestEngineStaleSeriesResolves pins the staleness path: a firing alert
// whose series stops advancing (a decommissioned fleet agent) resolves
// after StaleAfter of wall time, stays parked instead of re-firing off
// the frozen window, and restarts its lifecycle when data resumes.
func TestEngineStaleSeriesResolves(t *testing.T) {
	fc := monitor.NewFakeClock()
	store := monitor.NewStore(256)
	cap := &captureNotifier{}
	fanout := NewFanout(16, cap)
	defer fanout.Close()
	e, err := NewEngine(Options{
		Store: store, Clock: fc, Fanout: fanout, StaleAfter: time.Minute,
	}, mustRules(t, "hot: avg(temp, node, 10s) > 100 for 0s"))
	if err != nil {
		t.Fatal(err)
	}

	appendNode(store, "temp", 0, 10, 1, 200)
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("alerts = %+v, want firing", alerts)
	}
	waitEvents(t, cap, 1)

	// Frozen data, wall time below the horizon: still firing.
	fc.Advance(30 * time.Second)
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 1 {
		t.Fatalf("alerts froze early: %+v", alerts)
	}

	// Past the horizon: resolved and parked — no re-fire on later evals.
	fc.Advance(31 * time.Second)
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 0 {
		t.Fatalf("stale alert still visible: %+v", alerts)
	}
	evs := waitEvents(t, cap, 2)
	if evs[1].State != EventStateResolved {
		t.Fatalf("event = %+v, want resolved", evs[1])
	}
	e.EvalNow()
	e.EvalNow()
	if evs := cap.snapshot(); len(evs) != 2 {
		t.Fatalf("parked instance re-notified: %+v", evs)
	}

	// Data resumes hot: a fresh firing episode.
	appendNode(store, "temp", 11, 20, 1, 200)
	e.EvalNow()
	if alerts := e.Alerts(); len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("resumed alerts = %+v, want firing again", alerts)
	}
	if evs := waitEvents(t, cap, 3); evs[2].State != EventStateFiring {
		t.Fatalf("event = %+v, want a fresh firing", evs[2])
	}
}

// TestEngineRuleStatusBookkeeping covers per-rule evals / last error.
func TestEngineRuleStatusBookkeeping(t *testing.T) {
	store := monitor.NewStore(64)
	e, _, _ := newTestEngine(t, store, "ghost: avg(no_such, node, 10s) < 1 for 0s")
	e.EvalNow()
	e.EvalNow()
	sts := e.RuleStatuses()
	if len(sts) != 1 {
		t.Fatalf("statuses = %+v, want 1", sts)
	}
	if sts[0].Evals != 2 {
		t.Errorf("evals = %d, want 2", sts[0].Evals)
	}
	if !strings.Contains(sts[0].LastError, "no series matches") {
		t.Errorf("last error = %q, want 'no series matches'", sts[0].LastError)
	}
	if sts[0].LastEval == "" {
		t.Errorf("last eval not recorded")
	}
	// The series appears: the error clears.
	appendNode(store, "no_such", 0, 5, 1, 10)
	e.EvalNow()
	if sts := e.RuleStatuses(); sts[0].LastError != "" {
		t.Errorf("last error = %q, want cleared", sts[0].LastError)
	}
}

// TestEngineRunOnFakeClock drives the scheduled loop: each rule
// evaluates on its own cadence under a fake clock.
func TestEngineRunOnFakeClock(t *testing.T) {
	fc := monitor.NewFakeClock()
	store := monitor.NewStore(64)
	appendNode(store, "bw", 0, 10, 1, 50)
	cap := &captureNotifier{}
	fanout := NewFanout(16, cap)
	defer fanout.Close()
	e, err := NewEngine(Options{Store: store, Clock: fc, Fanout: fanout},
		mustRules(t, "low: avg(bw, node, 10s) < 100 for 0s every 2s"))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	waitForTimers(t, fc, 1)
	fc.Advance(time.Second) // 1 s: below the 2 s cadence, no eval
	if n := e.RuleStatuses()[0].Evals; n != 0 {
		t.Fatalf("evaluated %d times after 1s, want 0 (cadence 2s)", n)
	}
	fc.Advance(time.Second) // 2 s: evaluates, fires
	waitForTimers(t, fc, 1)
	if n := e.RuleStatuses()[0].Evals; n != 1 {
		t.Fatalf("evaluated %d times after 2s, want 1", n)
	}
	waitEvents(t, cap, 1)
	cancel()
	<-done
}

// waitForTimers blocks until the fake clock has n armed timers.
func waitForTimers(t *testing.T, fc *monitor.FakeClock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fc.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d armed timers (have %d)", n, fc.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}
