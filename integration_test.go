package likwid_test

import (
	"strings"
	"testing"

	"likwid"
	"likwid/internal/topology"
	"likwid/internal/workloads/kernels"
)

// TestFeaturesGateKernels: the §II-D coupling — toggling a prefetcher via
// likwid-features (an MSR write) changes what likwid-bench measures.
func TestFeaturesGateKernels(t *testing.T) {
	node, err := likwid.Open("core2")
	if err != nil {
		t.Fatal(err)
	}
	gates, err := node.PrefetchGates(0)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.ByName("load")
	if err != nil {
		t.Fatal(err)
	}
	const ws = 16 << 20
	before, err := kernels.Run(node.Arch(), k, ws, gates)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := node.Features(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Disable("HW_PREFETCHER"); err != nil {
		t.Fatal(err)
	}
	after, err := kernels.Run(node.Arch(), k, ws, gates)
	if err != nil {
		t.Fatal(err)
	}
	if after.BandwidthMBs >= before.BandwidthMBs*0.8 {
		t.Fatalf("MSR toggle had no effect: %v -> %v MB/s", before.BandwidthMBs, after.BandwidthMBs)
	}
	// Re-enabling restores the bandwidth.
	if err := tool.Enable("HW_PREFETCHER"); err != nil {
		t.Fatal(err)
	}
	restored, err := kernels.Run(node.Arch(), k, ws, gates)
	if err != nil {
		t.Fatal(err)
	}
	if restored.BandwidthMBs < before.BandwidthMBs*0.95 {
		t.Errorf("re-enable did not restore bandwidth: %v vs %v", restored.BandwidthMBs, before.BandwidthMBs)
	}
	// Gates follow a *different* core's register independently.
	gates1, err := node.PrefetchGates(1)
	if err != nil {
		t.Fatal(err)
	}
	tool1, err := node.Features(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool1.Disable("HW_PREFETCHER"); err != nil {
		t.Fatal(err)
	}
	onCore0, err := kernels.Run(node.Arch(), k, ws, gates)
	if err != nil {
		t.Fatal(err)
	}
	onCore1, err := kernels.Run(node.Arch(), k, ws, gates1)
	if err != nil {
		t.Fatal(err)
	}
	if onCore1.BandwidthMBs >= onCore0.BandwidthMBs*0.8 {
		t.Errorf("per-core MISC_ENABLE not independent: core0 %v, core1 %v",
			onCore0.BandwidthMBs, onCore1.BandwidthMBs)
	}
}

// TestTopologyNUMAAndXMLFacade: the three future-work features through the
// public API.
func TestTopologyNUMAAndXMLFacade(t *testing.T) {
	node, err := likwid.Open("istanbul")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := node.Topology()
	if err != nil {
		t.Fatal(err)
	}
	domains := node.NUMA(topo)
	if len(domains) != 2 {
		t.Fatalf("Istanbul NUMA domains = %d, want 2", len(domains))
	}
	out := topo.Render(likwid.TopologyOptions{NUMA: true})
	if !strings.Contains(out, "NUMA domains: 2") {
		t.Error("NUMA section missing from facade rendering")
	}
	xmlOut, err := topo.XML()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := topology.ParseXML([]byte(xmlOut))
	if err != nil {
		t.Fatal(err)
	}
	if s, c, th := doc.Geometry(); s != 2 || c != 6 || th != 1 {
		t.Errorf("XML geometry = %d/%d/%d", s, c, th)
	}
}

// TestPinnerDomainExpressionFacade: logical core IDs through the facade.
func TestPinnerDomainExpressionFacade(t *testing.T) {
	node, err := likwid.Open("westmereEP")
	if err != nil {
		t.Fatal(err)
	}
	p, err := node.NewPinner("S1:0-3", 0)
	if err != nil {
		t.Fatal(err)
	}
	master := node.Spawn("a.out")
	if err := p.PinProcess(master); err != nil {
		t.Fatal(err)
	}
	if master.CPU != 6 {
		t.Errorf("S1:0 resolved to cpu %d, want 6 (socket 1 physical core 0)", master.CPU)
	}
	if _, err := node.NewPinner("S7:0", 0); err == nil {
		t.Error("bad domain must fail through the facade")
	}
}

// TestFullSuiteWalkthrough drives all four tools on one node in sequence —
// the paper's intended workflow end to end.
func TestFullSuiteWalkthrough(t *testing.T) {
	node, err := likwid.OpenOptions("nehalemEP", likwid.Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// 1. likwid-topology: find the physical cores of socket 0.
	topo, err := node.Topology()
	if err != nil {
		t.Fatal(err)
	}
	socket0 := topo.SocketGroups[0]
	var physCores []int
	for _, p := range socket0 {
		if topo.Threads[p].ThreadID == 0 {
			physCores = append(physCores, p)
		}
	}
	if len(physCores) != 4 {
		t.Fatalf("socket 0 physical cores = %v", physCores)
	}
	// 2. likwid-pin: pin a team there.
	pinner, err := node.NewPinner("S0:0-3", 0)
	if err != nil {
		t.Fatal(err)
	}
	master := node.Spawn("app")
	if err := pinner.PinProcess(master); err != nil {
		t.Fatal(err)
	}
	team, err := node.SpawnTeam(likwid.RuntimePthreads, 3, master, pinner.Hook())
	if err != nil {
		t.Fatal(err)
	}
	// 3. likwid-perfctr: measure FLOPS_DP while the team works.
	col, group, err := node.NewCollector(physCores, "FLOPS_DP", likwid.CollectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	var works []*likwid.ThreadWork
	for _, w := range append(team.Workers, master) {
		works = append(works, &likwid.ThreadWork{
			Task: w, Elems: 1e6,
			PerElem: likwid.PerElem{Cycles: 2, Vector: true},
		})
	}
	node.Run(works)
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	report := likwid.Report(node, col.Read(), group)
	if !strings.Contains(report, "DP MFlops/s") {
		t.Error("report incomplete")
	}
	// 4. likwid-features: confirm the prefetchers are reported.
	feat, err := node.Features(0)
	if err != nil {
		t.Fatal(err)
	}
	states, err := feat.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 10 {
		t.Errorf("feature list = %d rows", len(states))
	}
}
