package machine

import (
	"math"
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/msr"
	"likwid/internal/sched"
)

func newWestmere(t *testing.T) *Machine {
	t.Helper()
	m, err := NewNamed("westmereEP", Options{Policy: sched.PolicySpread, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// armPMC programs PMC slot on a cpu for the named event and enables it.
func armPMC(t *testing.T, m *Machine, cpu, slot int, event string) {
	t.Helper()
	ev, err := m.Arch.EventByName(event)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := m.MSRs.Open(cpu)
	base := uint32(msr.IA32PerfEvtSel0)
	if m.Arch.Vendor == hwdef.AMD {
		base = msr.AMDPerfEvtSel0
	}
	if err := dev.Write(base+uint32(slot), msr.EvtselEncode(ev.Code, ev.Umask)); err != nil {
		t.Fatal(err)
	}
	if m.Arch.Vendor == hwdef.Intel {
		ctl, _ := dev.Read(msr.IA32PerfGlobalCtl)
		dev.Write(msr.IA32PerfGlobalCtl, ctl|1<<uint(slot)|0x7<<32)
	}
}

func readPMC(t *testing.T, m *Machine, cpu, slot int) uint64 {
	t.Helper()
	dev, _ := m.MSRs.Open(cpu)
	base := uint32(msr.IA32PMC0)
	if m.Arch.Vendor == hwdef.AMD {
		base = msr.AMDPMC0
	}
	v, err := dev.Read(base + uint32(slot))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestInjectRoutesToArmedCounter(t *testing.T) {
	m := newWestmere(t)
	armPMC(t, m, 3, 0, "FP_COMP_OPS_EXE_SSE_FP_PACKED")
	if err := m.Inject(3, Counts{EvFlopsPackedDP: 1000}); err != nil {
		t.Fatal(err)
	}
	if got := readPMC(t, m, 3, 0); got != 1000 {
		t.Fatalf("PMC0 = %d, want 1000", got)
	}
	// Unarmed cpu stays silent.
	if got := readPMC(t, m, 4, 0); got != 0 {
		t.Fatalf("cpu 4 PMC0 = %d, want 0", got)
	}
}

func TestInjectIgnoresDisabledCounter(t *testing.T) {
	m := newWestmere(t)
	ev, _ := m.Arch.EventByName("FP_COMP_OPS_EXE_SSE_FP_PACKED")
	dev, _ := m.MSRs.Open(0)
	// Evtsel programmed but enable bit clear, global ctrl off.
	dev.Write(msr.IA32PerfEvtSel0, msr.EvtselEncode(ev.Code, ev.Umask)&^msr.EvtselEnable)
	m.Inject(0, Counts{EvFlopsPackedDP: 500})
	if got := readPMC(t, m, 0, 0); got != 0 {
		t.Fatalf("disabled counter counted %d events", got)
	}
}

func TestFixedCountersViaCtrl(t *testing.T) {
	m := newWestmere(t)
	dev, _ := m.MSRs.Open(0)
	dev.Write(msr.IA32FixedCtrCtrl, 0x33)             // enable fixed 0 and 1
	dev.Write(msr.IA32PerfGlobalCtl, uint64(0x7)<<32) // global fixed enables
	m.Inject(0, Counts{EvInstr: 777, EvCycles: 999})
	if v, _ := dev.Read(msr.IA32FixedCtr0); v != 777 {
		t.Errorf("FIXED_CTR0 = %d, want 777", v)
	}
	if v, _ := dev.Read(msr.IA32FixedCtr0 + 1); v != 999 {
		t.Errorf("FIXED_CTR1 = %d, want 999", v)
	}
	// Fixed 2 was not enabled in the ctrl register.
	if v, _ := dev.Read(msr.IA32FixedCtr0 + 2); v != 0 {
		t.Errorf("FIXED_CTR2 = %d, want 0", v)
	}
}

func TestSocketScopeDelivery(t *testing.T) {
	m := newWestmere(t)
	ev, _ := m.Arch.EventByName("UNC_L3_LINES_IN_ANY")
	dev, _ := m.MSRs.Open(0) // any core of socket 0 sees the bank
	dev.Write(msr.UncPerfEvtSel, msr.EvtselEncode(ev.Code, ev.Umask))
	dev.Write(msr.UncGlobalCtl, 1)
	// Inject via a *different* core of socket 0: cpu 13 (SMT of core 1).
	m.Inject(13, Counts{EvL3LinesIn: 4242})
	v, _ := dev.Read(msr.UncPMC)
	if v != 4242 {
		t.Fatalf("uncore PMC = %d, want 4242", v)
	}
	// Socket 1's bank must be untouched.
	dev6, _ := m.MSRs.Open(6)
	if v, _ := dev6.Read(msr.UncPMC); v != 0 {
		t.Fatalf("socket 1 uncore PMC = %d, want 0", v)
	}
}

func TestAMDCounters(t *testing.T) {
	m, err := NewNamed("istanbul", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	armPMC(t, m, 0, 2, "RETIRED_SSE_OPERATIONS_PACKED_DOUBLE")
	m.Inject(0, Counts{EvFlopsPackedDP: 100})
	// K10 counts FLOPs: 2 per packed DP instruction.
	if got := readPMC(t, m, 0, 2); got != 200 {
		t.Fatalf("K10 packed-double counter = %d, want 200 (2 flops/instr)", got)
	}
}

func TestRunPhaseComputeBound(t *testing.T) {
	m := newWestmere(t)
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	// 1e8 elements at 2 cycles each on a 2.93 GHz core: ~68 ms.
	w := &ThreadWork{
		Task: task, Elems: 1e8,
		PerElem: PerElem{Cycles: 2, Counts: Counts{EvInstr: 4}, Vector: true},
	}
	elapsed := m.RunPhase([]*ThreadWork{w}, 0)
	want := 2 * 1e8 / m.Arch.ClockHz()
	if math.Abs(elapsed-want) > want*0.05 {
		t.Fatalf("elapsed = %v, want ≈ %v (compute bound)", elapsed, want)
	}
	if w.FinishTime <= 0 {
		t.Error("finish time not recorded")
	}
}

func TestRunPhaseMemoryBound(t *testing.T) {
	m := newWestmere(t)
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	// Memory-dominated: 24 bytes/elem, trivial core cost.  One vector
	// core is limited by CoreTriadBW.
	w := &ThreadWork{
		Task: task, Elems: 1e8,
		PerElem: PerElem{Cycles: 0.5, MemReadBytes: 16, MemWriteBytes: 8, Streams: 3, Vector: true},
	}
	elapsed := m.RunPhase([]*ThreadWork{w}, 0)
	bw := 24 * 1e8 / elapsed
	want := m.Arch.Perf.CoreTriadBW
	if math.Abs(bw-want) > want*0.05 {
		t.Fatalf("single-core bandwidth = %v, want ≈ %v", bw, want)
	}
}

func TestRunPhaseSocketSaturation(t *testing.T) {
	m := newWestmere(t)
	var works []*ThreadWork
	for i := 0; i < 6; i++ {
		task := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(task, i); err != nil { // all six cores of socket 0
			t.Fatal(err)
		}
		works = append(works, &ThreadWork{
			Task: task, Elems: 1e8,
			PerElem: PerElem{Cycles: 0.5, MemReadBytes: 16, MemWriteBytes: 8, Streams: 3, Vector: true},
		})
	}
	elapsed := m.RunPhase(works, 0)
	bw := 6 * 24 * 1e8 / elapsed
	want := m.Arch.Perf.SocketMemBW
	if math.Abs(bw-want) > want*0.08 {
		t.Fatalf("socket bandwidth = %v, want ≈ %v (saturation)", bw, want)
	}
}

func TestRunPhaseTwoSocketsScale(t *testing.T) {
	m := newWestmere(t)
	mk := func(cpu int) *ThreadWork {
		task := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(task, cpu); err != nil {
			t.Fatal(err)
		}
		return &ThreadWork{
			Task: task, Elems: 5e7,
			PerElem: PerElem{Cycles: 0.5, MemReadBytes: 16, MemWriteBytes: 8, Streams: 3, Vector: true},
		}
	}
	// Three cores per socket saturate both controllers.
	var works []*ThreadWork
	for _, cpu := range []int{0, 1, 2, 6, 7, 8} {
		works = append(works, mk(cpu))
	}
	elapsed := m.RunPhase(works, 0)
	bw := 6 * 24 * 5e7 / elapsed
	want := 2 * m.Arch.Perf.SocketMemBW
	if math.Abs(bw-want) > want*0.08 {
		t.Fatalf("node bandwidth = %v, want ≈ %v (both sockets)", bw, want)
	}
}

func TestRunPhaseSingleStreamCap(t *testing.T) {
	m, err := NewNamed("nehalemEP", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	w := &ThreadWork{
		Task: task, Elems: 1e8,
		PerElem: PerElem{Cycles: 0.5, MemReadBytes: 5.3, Streams: 1, Vector: true},
	}
	elapsed := m.RunPhase([]*ThreadWork{w}, 0)
	bw := 5.3 * 1e8 / elapsed
	want := m.Arch.Perf.SingleStreamBW
	if math.Abs(bw-want) > want*0.05 {
		t.Fatalf("single-stream bandwidth = %v, want ≈ %v", bw, want)
	}
}

func TestRunPhaseCountsEventsEndToEnd(t *testing.T) {
	m := newWestmere(t)
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 2); err != nil {
		t.Fatal(err)
	}
	armPMC(t, m, 2, 0, "FP_COMP_OPS_EXE_SSE_FP_PACKED")
	dev, _ := m.MSRs.Open(2)
	dev.Write(msr.IA32FixedCtrCtrl, 0x333)
	ctl, _ := dev.Read(msr.IA32PerfGlobalCtl)
	dev.Write(msr.IA32PerfGlobalCtl, ctl|0x7<<32)

	const elems = 1e7
	w := &ThreadWork{
		Task: task, Elems: elems,
		PerElem: PerElem{
			Cycles: 2,
			Counts: Counts{EvInstr: 3, EvFlopsPackedDP: 1},
			Vector: true,
		},
	}
	m.RunPhase([]*ThreadWork{w}, 0)
	if got := readPMC(t, m, 2, 0); math.Abs(float64(got)-elems) > 1 {
		t.Errorf("packed-DP count = %d, want %v", got, elems)
	}
	instr, _ := dev.Read(msr.IA32FixedCtr0)
	if math.Abs(float64(instr)-3*elems) > 1 {
		t.Errorf("INSTR_RETIRED = %d, want %v", instr, 3*elems)
	}
	cycles, _ := dev.Read(msr.IA32FixedCtr0 + 1)
	// CPI = cycles/instr should be ≈ 2/3.
	cpi := float64(cycles) / float64(instr)
	if math.Abs(cpi-2.0/3) > 0.05 {
		t.Errorf("CPI = %v, want ≈ 0.667", cpi)
	}
}

func TestFractionalResidualsAreExact(t *testing.T) {
	m := newWestmere(t)
	armPMC(t, m, 0, 0, "FP_COMP_OPS_EXE_SSE_FP_SCALAR")
	// Deliver 0.25 events 1000 times: the counter must end at exactly 250
	// (0.25 is binary-exact, so no float drift can excuse a loss).
	for i := 0; i < 1000; i++ {
		m.Inject(0, Counts{EvFlopsScalarDP: 0.25})
	}
	got := readPMC(t, m, 0, 0)
	if got != 250 {
		t.Fatalf("residual accumulation lost counts: %d, want 250", got)
	}
}

func TestRunIdleFiresHooksAndAdvancesClock(t *testing.T) {
	m := newWestmere(t)
	var fired int
	m.AddSliceHook(func(now float64) { fired++ })
	m.RunIdle(0.01, 0.001)
	if fired != 10 {
		t.Errorf("hook fired %d times, want 10", fired)
	}
	if math.Abs(m.Now()-0.01) > 1e-9 {
		t.Errorf("clock = %v, want 0.01", m.Now())
	}
}
