package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"likwid/internal/monitor"
)

// TestFleetMixedVersionEndToEnd is the acceptance loop of the series
// identity refactor: a v1 agent (legacy "SOURCE/metric" prefix payload)
// and a v2 agent (push sink with a Source identity) push into one
// receiver; both land on the same kind of source-keyed series, are
// queryable per source and across sources via /query, and one fleet
// rule raises per-source alert instances with per-source history.
func TestFleetMixedVersionEndToEnd(t *testing.T) {
	store := monitor.NewStore(64)
	recv, err := monitor.NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	base := "http://" + recv.Addr()

	// Agent A is v2: a real push sink carrying its Source per sample.
	push, err := monitor.NewPushSink(monitor.PushOptions{
		URL:          base + "/ingest",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
		Source:       "nodeA",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 10; i++ {
		err := push.Write(monitor.Batch{Collector: "perfgroup", Time: float64(i), Samples: []monitor.Sample{
			{Metric: "bw", Scope: monitor.ScopeNode, ID: 0, Time: float64(i), Value: 50}, // idle: will fire
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := push.Close(); err != nil {
		t.Fatal(err)
	}

	// Agent B is v1: its source rides as a metric prefix, no source field.
	var v1 bytes.Buffer
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(&v1, `{"time":%d,"collector":"perfgroup","metric":"nodeB/bw","scope":"node","id":0,"value":500}`+"\n", i)
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", &v1)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 ingest = %d %q", resp.StatusCode, body)
	}

	// Both agents' series are source-keyed: nothing prefix-mangled.
	for _, source := range []string{"nodeA", "nodeB"} {
		k := monitor.Key{Source: source, Metric: "bw", Scope: monitor.ScopeNode, ID: 0}
		if n := store.Len(k); n != 11 {
			t.Fatalf("%s series has %d points, want 11 (keys: %+v)", source, n, store.Keys())
		}
	}

	// /query fans out across the fleet with a source wildcard.
	qr, err := http.Get(base + "/query?metric=bw&scope=node&source=*")
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qr.Body)
	qr.Body.Close()
	var series struct {
		Series []struct {
			Source string          `json:"source"`
			Points []monitor.Point `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(qbody, &series); err != nil {
		t.Fatalf("bad /query JSON %q: %v", qbody, err)
	}
	if len(series.Series) != 2 || series.Series[0].Source != "nodeA" || series.Series[1].Source != "nodeB" {
		t.Fatalf("/query source=* = %s, want nodeA and nodeB series", qbody)
	}

	// One fleet rule: only the idle agent fires, keyed by its source.
	e, cap, _ := newTestEngine(t, store, "fleet_idle: avg(*/bw, node, 10s) < 100 for 0s")
	recv.Handle("/alerts", http.HandlerFunc(e.HandleAlerts))
	e.EvalNow()
	evs := waitEvents(t, cap, 1)
	if evs[0].Source != "nodeA" || evs[0].Metric != "bw" || evs[0].State != EventStateFiring {
		t.Fatalf("event = %+v, want nodeA firing", evs[0])
	}
	ar, err := http.Get(base + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	abody, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if !strings.Contains(string(abody), `"source":"nodeA"`) {
		t.Fatalf("GET /alerts = %s, want a nodeA-sourced instance", abody)
	}
	// History is a per-source series, windowable through /query.
	hist := monitor.Key{Source: "nodeA", Metric: "alert/fleet_idle", Scope: monitor.ScopeNode, ID: 0}
	if p, ok := store.Latest(hist); !ok || p.Value != 1 {
		t.Fatalf("history = %+v (%v), want value 1", p, ok)
	}
}

// TestFleetLabeledEndToEnd is the acceptance loop of the labels
// tentpole: two labelled agents (the -labels stamp) push into a
// receiver carrying its own ingest-default labels, the merged store is
// sliceable by /query?label.*, and a label-matcher rule fires only for
// the matching label set — with the labels on the event, the /alerts
// instance, and a per-label-set history series.
func TestFleetLabeledEndToEnd(t *testing.T) {
	store := monitor.NewStore(64)
	recv, err := monitor.NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	// The receiver stamps the machine-room identity under every push.
	cluster, err := monitor.ParseLabelSpec("cluster=emmy")
	if err != nil {
		t.Fatal(err)
	}
	recv.SetIngestLabels(cluster)
	base := "http://" + recv.Addr()

	// Two agents running different jobs: same metric, same scope — only
	// the labels (and sources) keep them apart.
	for agent, jobSpec := range map[string]string{"nodeA": "job=lbm", "nodeB": "job=ep"} {
		job, err := monitor.ParseLabelSpec(jobSpec)
		if err != nil {
			t.Fatal(err)
		}
		value := 50.0 // lbm idles below the threshold...
		if agent == "nodeB" {
			value = 500 // ...ep is healthy
		}
		push, err := monitor.NewPushSink(monitor.PushOptions{
			URL:          base + "/ingest",
			FlushSamples: 1,
			RetryBase:    time.Millisecond,
			Source:       agent,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= 10; i++ {
			err := push.Write(monitor.Batch{Collector: "perfgroup", Time: float64(i), Samples: []monitor.Sample{
				{Metric: "bw", Scope: monitor.ScopeNode, ID: 0, Labels: job, Time: float64(i), Value: value},
			}})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := push.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The store keys carry the merged sets: agent job + receiver cluster.
	lbm := monitor.Key{Source: "nodeA", Metric: "bw", Scope: monitor.ScopeNode, ID: 0,
		Labels: mustParseLabels(t, "cluster=emmy,job=lbm")}
	if n := store.Len(lbm); n != 11 {
		t.Fatalf("lbm series has %d points, want 11 (keys: %+v)", n, store.Keys())
	}

	// /query slices the fleet by label, across sources.
	qr, err := http.Get(base + "/query?metric=bw&scope=node&source=*&label.job=lbm&label.cluster=em*")
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qr.Body)
	qr.Body.Close()
	var series struct {
		Series []struct {
			Source string            `json:"source"`
			Labels map[string]string `json:"labels"`
			Points []monitor.Point   `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(qbody, &series); err != nil {
		t.Fatalf("bad /query JSON %q: %v", qbody, err)
	}
	if len(series.Series) != 1 || series.Series[0].Source != "nodeA" {
		t.Fatalf("/query label.job=lbm = %s, want exactly nodeA's series", qbody)
	}
	if series.Series[0].Labels["job"] != "lbm" || series.Series[0].Labels["cluster"] != "emmy" {
		t.Fatalf("/query series labels = %v, want the merged set", series.Series[0].Labels)
	}

	// A label-matcher fleet rule: only the lbm series is below the
	// threshold AND matches, so exactly one instance fires.
	e, cap, _ := newTestEngine(t, store, `lbm_idle: avg(*/bw{job="lbm"}, node, 10s) < 100 for 0s`)
	recv.Handle("/alerts", http.HandlerFunc(e.HandleAlerts))
	e.EvalNow()
	evs := waitEvents(t, cap, 1)
	if evs[0].Source != "nodeA" || evs[0].State != EventStateFiring {
		t.Fatalf("event = %+v, want nodeA firing", evs[0])
	}
	if evs[0].Labels["job"] != "lbm" || evs[0].Labels["cluster"] != "emmy" {
		t.Fatalf("event labels = %v, want the series' full set", evs[0].Labels)
	}

	// GET /alerts carries the label set on the instance.
	ar, err := http.Get(base + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	abody, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if !strings.Contains(string(abody), `"labels":{"cluster":"emmy","job":"lbm"}`) {
		t.Fatalf("GET /alerts = %s, want a labelled instance", abody)
	}

	// History is a per-label-set series: the labelled key holds the
	// transition, the unlabelled one does not exist.
	hist := monitor.Key{Source: "nodeA", Metric: "alert/lbm_idle", Scope: monitor.ScopeNode, ID: 0,
		Labels: mustParseLabels(t, "cluster=emmy,job=lbm")}
	if p, ok := store.Latest(hist); !ok || p.Value != 1 {
		t.Fatalf("labelled history = %+v (%v), want value 1", p, ok)
	}
	bare := monitor.Key{Source: "nodeA", Metric: "alert/lbm_idle", Scope: monitor.ScopeNode, ID: 0}
	if _, ok := store.Latest(bare); ok {
		t.Fatal("unlabelled history series exists, want the label set on the key")
	}
}

// mustParseLabels builds a monitor label set or fails the test.
func mustParseLabels(t *testing.T, spec string) monitor.Labels {
	t.Helper()
	ls, err := monitor.ParseLabelSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}
