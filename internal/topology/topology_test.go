package topology

import (
	"strings"
	"testing"

	"likwid/internal/cpuid"
	"likwid/internal/hwdef"
)

func probe(t *testing.T, name string) *Info {
	t.Helper()
	a, err := hwdef.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Probe(cpuid.NewNode(a), a.ClockMHz)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestWestmereDecodeMatchesPaper(t *testing.T) {
	info := probe(t, "westmereEP")
	if info.Sockets != 2 || info.CoresPerSocket != 6 || info.ThreadsPerCore != 2 {
		t.Fatalf("geometry = %d/%d/%d, want 2/6/2",
			info.Sockets, info.CoresPerSocket, info.ThreadsPerCore)
	}
	// Spot-check the paper's HWThread table.
	checks := map[int][3]int{ // proc -> {thread, core, socket}
		0:  {0, 0, 0},
		3:  {0, 8, 0},
		6:  {0, 0, 1},
		11: {0, 10, 1},
		12: {1, 0, 0},
		23: {1, 10, 1},
	}
	for proc, want := range checks {
		th := info.Threads[proc]
		if th.ThreadID != want[0] || th.CoreID != want[1] || th.SocketID != want[2] {
			t.Errorf("proc %d = (%d,%d,%d), want (%d,%d,%d)", proc,
				th.ThreadID, th.CoreID, th.SocketID, want[0], want[1], want[2])
		}
	}
	// Socket groups, paper order: ( 0 12 1 13 2 14 3 15 4 16 5 17 ).
	want0 := []int{0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17}
	for i, p := range info.SocketGroups[0] {
		if p != want0[i] {
			t.Fatalf("socket 0 group = %v, want %v", info.SocketGroups[0], want0)
		}
	}
	want1 := []int{6, 18, 7, 19, 8, 20, 9, 21, 10, 22, 11, 23}
	for i, p := range info.SocketGroups[1] {
		if p != want1[i] {
			t.Fatalf("socket 1 group = %v, want %v", info.SocketGroups[1], want1)
		}
	}
}

func TestWestmereCachesMatchPaper(t *testing.T) {
	info := probe(t, "westmereEP")
	if len(info.Caches) != 3 {
		t.Fatalf("got %d data cache levels, want 3 (instruction caches omitted)", len(info.Caches))
	}
	l1 := info.Caches[0]
	if l1.SizeKB != 32 || l1.Assoc != 8 || l1.Sets != 64 || l1.LineSize != 64 || !l1.Inclusive {
		t.Errorf("L1 = %+v, want 32kB 8-way 64 sets inclusive", l1)
	}
	if l1.SharedBy != 2 {
		t.Errorf("L1 shared by %d, want 2", l1.SharedBy)
	}
	// Paper: L1 groups ( 0 12 ) ( 1 13 ) ...
	if got := l1.Groups[0]; got[0] != 0 || got[1] != 12 {
		t.Errorf("L1 group 0 = %v, want [0 12]", got)
	}
	l3 := info.Caches[2]
	if l3.SizeKB != 12288 || l3.Assoc != 16 || l3.Sets != 12288 || l3.Inclusive {
		t.Errorf("L3 = %+v, want 12MB 16-way 12288 sets non-inclusive", l3)
	}
	if l3.SharedBy != 12 {
		t.Errorf("L3 shared by %d, want 12", l3.SharedBy)
	}
	if len(l3.Groups) != 2 {
		t.Fatalf("L3 groups = %d, want 2", len(l3.Groups))
	}
	want := []int{0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17}
	for i, p := range l3.Groups[0] {
		if p != want[i] {
			t.Fatalf("L3 group 0 = %v, want %v", l3.Groups[0], want)
		}
	}
}

func TestCore2Decode(t *testing.T) {
	info := probe(t, "core2")
	if info.Sockets != 1 || info.CoresPerSocket != 4 || info.ThreadsPerCore != 1 {
		t.Fatalf("geometry = %d/%d/%d, want 1/4/1", info.Sockets, info.CoresPerSocket, info.ThreadsPerCore)
	}
	// L2 is shared per die pair: groups {0,1} and {2,3}.
	var l2 *Cache
	for i := range info.Caches {
		if info.Caches[i].Level == 2 {
			l2 = &info.Caches[i]
		}
	}
	if l2 == nil {
		t.Fatal("no L2 decoded")
	}
	if l2.SharedBy != 2 || len(l2.Groups) != 2 {
		t.Fatalf("L2 sharing = %d × %d groups, want 2 threads × 2 groups", l2.SharedBy, len(l2.Groups))
	}
	if l2.Groups[0][0] != 0 || l2.Groups[0][1] != 1 || l2.Groups[1][0] != 2 || l2.Groups[1][1] != 3 {
		t.Errorf("L2 groups = %v, want [[0 1] [2 3]]", l2.Groups)
	}
}

func TestIstanbulDecode(t *testing.T) {
	info := probe(t, "istanbul")
	if info.Vendor != hwdef.AMD {
		t.Fatal("vendor must decode as AMD")
	}
	if info.Sockets != 2 || info.CoresPerSocket != 6 || info.ThreadsPerCore != 1 {
		t.Fatalf("geometry = %d/%d/%d, want 2/6/1", info.Sockets, info.CoresPerSocket, info.ThreadsPerCore)
	}
	var l3 *Cache
	for i := range info.Caches {
		if info.Caches[i].Level == 3 {
			l3 = &info.Caches[i]
		}
	}
	if l3 == nil {
		t.Fatal("Istanbul L3 not decoded")
	}
	if l3.SizeKB != 6144 || l3.Assoc != 48 {
		t.Errorf("L3 = %+v, want 6MB 48-way", l3)
	}
	if l3.SharedBy != 6 || len(l3.Groups) != 2 {
		t.Errorf("L3 sharing = %d × %d groups, want 6 × 2", l3.SharedBy, len(l3.Groups))
	}
}

func TestPentiumMDecodeViaLeaf2(t *testing.T) {
	info := probe(t, "pentiumM")
	if info.Sockets != 1 || info.CoresPerSocket != 1 {
		t.Fatalf("geometry = %d/%d, want 1/1", info.Sockets, info.CoresPerSocket)
	}
	found := map[int]int{}
	for _, c := range info.Caches {
		found[c.Level] = c.SizeKB
	}
	if found[1] != 32 || found[2] != 2048 {
		t.Errorf("caches = %v, want L1 32kB and L2 2MB from descriptor table", found)
	}
}

func TestAllArchsDecodeCleanly(t *testing.T) {
	for _, name := range hwdef.Names() {
		a, _ := hwdef.Lookup(name)
		info, err := Probe(cpuid.NewNode(a), a.ClockMHz)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if info.Sockets != a.Sockets || info.CoresPerSocket != a.CoresPerSocket ||
			info.ThreadsPerCore != a.ThreadsPerCore {
			t.Errorf("%s: decoded %d/%d/%d, definition %d/%d/%d", name,
				info.Sockets, info.CoresPerSocket, info.ThreadsPerCore,
				a.Sockets, a.CoresPerSocket, a.ThreadsPerCore)
		}
		if len(info.Threads) != a.HWThreads() {
			t.Errorf("%s: %d threads decoded, want %d", name, len(info.Threads), a.HWThreads())
		}
	}
}

func TestRenderContainsPaperLandmarks(t *testing.T) {
	info := probe(t, "westmereEP")
	out := info.Render(RenderOptions{ExtendedCaches: true})
	for _, want := range []string{
		"Hardware Thread Topology",
		"Sockets:\t\t2",
		"Cores per socket:\t6",
		"Threads per core:\t2",
		"Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )",
		"Socket 1: ( 6 18 7 19 8 20 9 21 10 22 11 23 )",
		"Cache Topology",
		"Size:\t12 MB",
		"Non Inclusive cache",
		"Shared among 12 threads",
		"CPU clock:\t2.93 GHz",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestASCIIArt(t *testing.T) {
	info := probe(t, "westmereEP")
	art := info.ASCIIArt()
	if !strings.Contains(art, "12 MB") {
		t.Error("ASCII art missing the shared L3 box")
	}
	if !strings.Contains(art, "256 kB") {
		t.Error("ASCII art missing L2 boxes")
	}
	if !strings.Contains(art, "0 12") {
		t.Error("ASCII art missing SMT thread pairs")
	}
	lines := strings.Split(art, "\n")
	if len(lines) < 10 {
		t.Errorf("suspiciously short ASCII art: %d lines", len(lines))
	}
}

func TestProbeEmpty(t *testing.T) {
	if _, err := Probe(nil, 1000); err == nil {
		t.Error("expected error for empty node")
	}
}
