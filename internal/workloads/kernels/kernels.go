// Package kernels implements the likwid-bench microkernels the paper
// announces as future work ("low-level benchmarking with a tool creating a
// 'bandwidth map'"): streaming kernels swept over working-set sizes to
// expose the cache and memory bandwidth bottlenecks of a node.
//
// Unlike the analytic case-study workloads, these kernels run address by
// address through the trace-driven cache simulator, so hardware-prefetcher
// state (likwid-features) changes the measured bandwidth — the coupling the
// likwid-features case study needs.
package kernels

import (
	"fmt"

	"likwid/internal/cache"
	"likwid/internal/hwdef"
)

// Kernel is one streaming microkernel.
type Kernel struct {
	Name string
	// Per-element behaviour, elements are 8-byte doubles.
	LoadArrays  int  // arrays read per element
	StoreArrays int  // arrays written per element
	NTStores    bool // write with non-temporal stores
	Flops       int
}

// Catalogue is the kernel set of likwid-bench.
var Catalogue = []Kernel{
	{Name: "load", LoadArrays: 1},
	{Name: "store", StoreArrays: 1},
	{Name: "store_nt", StoreArrays: 1, NTStores: true},
	{Name: "copy", LoadArrays: 1, StoreArrays: 1},
	{Name: "update", LoadArrays: 1, StoreArrays: 1, Flops: 1},
	{Name: "daxpy", LoadArrays: 2, StoreArrays: 1, Flops: 2},
	{Name: "triad", LoadArrays: 2, StoreArrays: 1, Flops: 2},
}

// ByName finds a kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range Catalogue {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// BytesPerElem is the per-element traffic of the kernel.
func (k Kernel) BytesPerElem() int { return 8 * (k.LoadArrays + k.StoreArrays) }

// Point is one measurement of the bandwidth map.
type Point struct {
	WorkingSetBytes int
	BandwidthMBs    float64
	CyclesPerElem   float64
	// Fractions of demand loads served per level (diagnostics).
	L1HitRatio float64
	MemLines   uint64
}

// costs are the per-transfer cycle costs derived from the architecture's
// calibrated performance model.
type costs struct {
	l1Access float64 // cycles per demand access hitting L1
	l2Line   float64 // cycles per line filled from L2
	l3Line   float64 // cycles per line filled from L3
	memLine  float64 // cycles per line filled from memory
}

func costsFor(a *hwdef.Arch) costs {
	clock := a.ClockHz()
	c := costs{
		l1Access: 0.5,                                // two accesses per cycle
		l2Line:   2,                                  // 32 B/cycle L2 port
		memLine:  clock * 64 / a.Perf.SingleStreamBW, // single-stream fill
		l3Line:   clock * 64 / (a.Perf.L3BW / 2),     // per-core L3 share
	}
	if _, hasL3 := a.CacheAt(3); !hasL3 {
		c.l3Line = c.l2Line // two-level hierarchies skip the L3 hop
	}
	return c
}

// Run measures one kernel at one working-set size on a fresh hierarchy of
// the architecture.  The prefetch gates connect the hierarchy's units to
// whatever controls the caller wires up (defaults to everything enabled).
func Run(a *hwdef.Arch, k Kernel, workingSet int, gates cache.PrefetchGates) (Point, error) {
	if workingSet < 1024 {
		return Point{}, fmt.Errorf("kernels: working set %d too small", workingSet)
	}
	h, err := cache.NewHierarchy(a, gates)
	if err != nil {
		return Point{}, err
	}
	arrays := k.LoadArrays + k.StoreArrays
	if arrays == 0 {
		return Point{}, fmt.Errorf("kernels: kernel %s moves no data", k.Name)
	}
	elems := workingSet / (8 * arrays)
	if elems < 8 {
		return Point{}, fmt.Errorf("kernels: working set %d too small for %s", workingSet, k.Name)
	}

	// Lay the arrays out 2 MiB apart so they do not alias pathologically.
	const arrayGap = 64 << 20
	addr := func(array, i int) uint64 { return uint64(array)*arrayGap + uint64(i)*8 }

	sweep := func(record bool) {
		for i := 0; i < elems; i++ {
			for l := 0; l < k.LoadArrays; l++ {
				h.Access(cache.Access{Addr: addr(l, i), Size: 8, IP: uint64(0x1000 + l)})
			}
			for s := 0; s < k.StoreArrays; s++ {
				h.Access(cache.Access{
					Addr: addr(k.LoadArrays+s, i), Size: 8, Write: true,
					NT: k.NTStores, IP: uint64(0x2000 + s),
				})
			}
		}
		_ = record
	}
	// Warm-up pass, then the measured pass.
	sweep(false)
	h.ResetStats()
	sweep(true)

	// Cost accounting over the measured pass.
	cost := costsFor(a)
	var cycles float64
	l1 := h.Levels[0].Stats()
	cycles += float64(l1.Accesses) * cost.l1Access
	// Line fills per boundary: what each level brought in, charged at the
	// price of the level below it.
	levelCost := []float64{cost.l2Line, cost.l3Line, cost.memLine}
	for i, lvl := range h.Levels {
		st := lvl.Stats()
		price := cost.memLine
		if i < len(levelCost) {
			price = levelCost[i]
		}
		if i == len(h.Levels)-1 {
			price = cost.memLine
		}
		// Prefetched fills overlap with compute: charge only demand
		// misses at full price and prefetches at a quarter.
		cycles += float64(st.Misses)*price + float64(st.Prefetches)*price*0.25
		if k.NTStores {
			cycles += float64(st.NTStores) * 0 // counted at the memory sink
		}
	}
	memReads, memWrites := h.Mem.Snapshot()
	if k.NTStores {
		cycles += float64(memWrites) * cost.memLine / a.Perf.NTStoreEfficiency * 0.5
	}
	if cycles <= 0 {
		return Point{}, fmt.Errorf("kernels: zero cycle estimate")
	}

	bytes := float64(elems) * float64(k.BytesPerElem())
	seconds := cycles / a.ClockHz()
	hitRatio := 0.0
	if l1.Accesses > 0 {
		hitRatio = float64(l1.Hits) / float64(l1.Accesses)
	}
	return Point{
		WorkingSetBytes: workingSet,
		BandwidthMBs:    bytes / seconds / 1e6,
		CyclesPerElem:   cycles / float64(elems),
		L1HitRatio:      hitRatio,
		MemLines:        memReads + memWrites,
	}, nil
}

// Sweep measures the kernel across working-set sizes, producing one row of
// the bandwidth map.
func Sweep(a *hwdef.Arch, k Kernel, sizes []int, gates cache.PrefetchGates) ([]Point, error) {
	out := make([]Point, 0, len(sizes))
	for _, ws := range sizes {
		p, err := Run(a, k, ws, gates)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// DefaultSizes spans the cache levels of the architecture: two points
// inside every level and two beyond the last.
func DefaultSizes(a *hwdef.Arch) []int {
	var sizes []int
	add := func(b int) {
		for _, s := range sizes {
			if s == b {
				return
			}
		}
		sizes = append(sizes, b)
	}
	for _, c := range a.DataCaches() {
		add(c.Size() / 2)
		add(c.Size() * 2)
	}
	if llc, ok := a.LastLevelCache(); ok {
		add(llc.Size() * 4)
	}
	// Ascending.
	for i := 0; i < len(sizes); i++ {
		for j := i + 1; j < len(sizes); j++ {
			if sizes[j] < sizes[i] {
				sizes[i], sizes[j] = sizes[j], sizes[i]
			}
		}
	}
	return sizes
}
