package cluster

import (
	"fmt"
	"strings"

	"likwid/internal/monitor"
)

// Spec is a parsed cluster sink spec: the policy, wire format and
// normalized target URLs from a "push:[policy@]URL[,URL...]" argument.
type Spec struct {
	Policy  Policy
	Format  monitor.WireFormat
	Targets []string
}

// IsSpec reports whether a -sink/-forward argument names a multi-target
// cluster pool rather than a plain single-URL push sink: a push/pushv4
// kind whose argument carries a policy prefix ("shard@", "mirror@",
// "failover@") or more than one comma-separated URL.  Single-URL specs
// without a policy stay on the plain push sink for backward
// compatibility.
func IsSpec(spec string) bool {
	_, arg, ok := splitKind(spec)
	if !ok {
		return false
	}
	if strings.Contains(arg, ",") {
		return true
	}
	if policy, _, found := strings.Cut(arg, "@"); found {
		if _, err := ParsePolicy(policy); err == nil {
			return true
		}
	}
	return false
}

// ParseSpec parses a cluster sink spec.  The grammar extends the push
// sink's: "push:" or "pushv4:" selects the wire format, an optional
// "shard@" / "mirror@" / "failover@" prefix selects the policy (default
// shard for multi-target pools, failover for a singleton — one URL with
// an explicit policy is a pool of one awaiting growth), and the rest is
// one or more comma-separated receiver URLs, each normalized exactly
// like a single push sink's.
func ParseSpec(spec string) (Spec, error) {
	kind, arg, ok := splitKind(spec)
	if !ok {
		return Spec{}, fmt.Errorf("cluster: spec %q is not a push:/pushv4: sink", spec)
	}
	out := Spec{Format: monitor.WireJSON}
	if kind == "pushv4" {
		out.Format = monitor.WireV4
	}
	explicitPolicy := false
	if policy, rest, found := strings.Cut(arg, "@"); found && !strings.Contains(policy, "/") {
		p, err := ParsePolicy(policy)
		if err != nil {
			return Spec{}, fmt.Errorf("cluster: spec %q: %w", spec, err)
		}
		out.Policy, explicitPolicy, arg = p, true, rest
	}
	seen := make(map[string]bool)
	for _, raw := range strings.Split(arg, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return Spec{}, fmt.Errorf("cluster: spec %q has an empty target URL", spec)
		}
		u, err := normalizeTarget(raw)
		if err != nil {
			return Spec{}, err
		}
		if seen[u.name] {
			return Spec{}, fmt.Errorf("cluster: spec %q lists target %q twice", spec, u.name)
		}
		seen[u.name] = true
		out.Targets = append(out.Targets, u.url)
	}
	if !explicitPolicy {
		if len(out.Targets) > 1 {
			out.Policy = PolicyShard
		} else {
			out.Policy = PolicyFailover
		}
	}
	return out, nil
}

// splitKind splits "push:..." / "pushv4:..." into kind and argument.
func splitKind(spec string) (kind, arg string, ok bool) {
	kind, arg, found := strings.Cut(strings.TrimSpace(spec), ":")
	if !found {
		return "", "", false
	}
	kind = strings.ToLower(strings.TrimSpace(kind))
	if kind != "push" && kind != "pushv4" {
		return "", "", false
	}
	return kind, strings.TrimSpace(arg), true
}
