// Package marker implements the likwid-perfCtr marker API (§II-A): named
// code regions whose event counts accumulate across repeated executions,
// measured per thread on the core the thread runs on.
//
// It is the Go rendition of the C API in the paper:
//
//	likwid_markerInit(numberOfThreads, numberOfRegions)
//	id := likwid_markerRegisterRegion("Main")
//	likwid_markerStartRegion(threadID, coreID)
//	likwid_markerStopRegion(threadID, coreID, id)
//	likwid_markerClose()
//
// Nesting or partial overlap of regions on one thread is rejected, and
// counts accumulate automatically over repeated Start/Stop pairs of the
// same region, exactly as documented.
package marker

import (
	"fmt"
	"strings"

	"likwid/internal/cli"
	"likwid/internal/perfctr"
)

// Region accumulates measurements of one named code region.
type Region struct {
	Name string
	// Counts per event per collector cpu column.
	Counts map[string][]float64
	// Time per cpu column in seconds (cycle-derived).
	Time []float64
	// Calls counts Start/Stop pairs accumulated.
	Calls int
}

// Marker is one marker-API session bound to a running collector.
type Marker struct {
	col      *perfctr.Collector
	clockHz  float64
	nThreads int
	regions  []*Region
	byName   map[string]int
	// open[threadID] is the Start snapshot, nil when no region is open.
	open []*openState
}

type openState struct {
	coreID   int
	snapshot perfctr.Results
}

// New creates a marker session for at most nThreads application threads
// using the given (already configured) collector.
func New(col *perfctr.Collector, clockHz float64, nThreads int) (*Marker, error) {
	if nThreads < 1 {
		return nil, fmt.Errorf("marker: need at least one thread, got %d", nThreads)
	}
	return &Marker{
		col:      col,
		clockHz:  clockHz,
		nThreads: nThreads,
		byName:   map[string]int{},
		open:     make([]*openState, nThreads),
	}, nil
}

// RegisterRegion names a region and returns its ID.  Registering the same
// name twice returns the same ID, enabling accumulation across call sites.
func (m *Marker) RegisterRegion(name string) int {
	if id, ok := m.byName[name]; ok {
		return id
	}
	id := len(m.regions)
	cols := len(m.col.CPUs())
	r := &Region{
		Name:   name,
		Counts: map[string][]float64{},
		Time:   make([]float64, cols),
	}
	for _, ev := range m.col.EventNames() {
		r.Counts[ev] = make([]float64, cols)
	}
	m.regions = append(m.regions, r)
	m.byName[name] = id
	return id
}

// StartRegion opens a region on a thread running on coreID.
func (m *Marker) StartRegion(threadID, coreID int) error {
	if threadID < 0 || threadID >= m.nThreads {
		return fmt.Errorf("marker: thread %d out of range [0,%d)", threadID, m.nThreads)
	}
	if m.open[threadID] != nil {
		return fmt.Errorf("marker: thread %d already has an open region (nesting is not allowed)", threadID)
	}
	if m.colIndex(coreID) < 0 {
		return fmt.Errorf("marker: core %d is not measured by the collector (cpus %v)", coreID, m.col.CPUs())
	}
	m.open[threadID] = &openState{coreID: coreID, snapshot: m.col.Current()}
	return nil
}

// StopRegion closes the open region of a thread, attributing the counter
// deltas of the thread's core to the region.
func (m *Marker) StopRegion(threadID, coreID, regionID int) error {
	if threadID < 0 || threadID >= m.nThreads {
		return fmt.Errorf("marker: thread %d out of range [0,%d)", threadID, m.nThreads)
	}
	st := m.open[threadID]
	if st == nil {
		return fmt.Errorf("marker: thread %d has no open region", threadID)
	}
	if st.coreID != coreID {
		return fmt.Errorf("marker: region started on core %d but stopped on core %d", st.coreID, coreID)
	}
	if regionID < 0 || regionID >= len(m.regions) {
		return fmt.Errorf("marker: unknown region id %d", regionID)
	}
	m.open[threadID] = nil

	now := m.col.Current()
	col := m.colIndex(coreID)
	region := m.regions[regionID]
	for ev, vals := range now.Counts {
		delta := vals[col] - st.snapshot.Counts[ev][col]
		if delta > 0 {
			region.Counts[ev][col] += delta
		}
	}
	if cyc, ok := now.Counts["CPU_CLK_UNHALTED_CORE"]; ok && m.clockHz > 0 {
		dt := (cyc[col] - st.snapshot.Counts["CPU_CLK_UNHALTED_CORE"][col]) / m.clockHz
		if dt > 0 {
			region.Time[col] += dt
		}
	}
	region.Calls++
	return nil
}

// Close rejects dangling regions.
func (m *Marker) Close() error {
	for tid, st := range m.open {
		if st != nil {
			return fmt.Errorf("marker: thread %d closed with an open region", tid)
		}
	}
	return nil
}

// Regions returns the accumulated regions in registration order.
func (m *Marker) Regions() []*Region { return m.regions }

func (m *Marker) colIndex(cpu int) int {
	for i, c := range m.col.CPUs() {
		if c == cpu {
			return i
		}
	}
	return -1
}

// Report renders all regions in the paper's marker-mode format: a
// "Region:" banner per region followed by the event and metric tables.
func (m *Marker) Report(group *perfctr.GroupDef) string {
	var b strings.Builder
	for _, region := range m.regions {
		fmt.Fprintf(&b, "Region: %s\n", region.Name)
		res := perfctr.Results{
			CPUs:   m.col.CPUs(),
			Events: m.col.EventNames(),
			Counts: region.Counts,
		}
		b.WriteString(regionTables(res, region, group, m.clockHz))
	}
	return b.String()
}

func regionTables(res perfctr.Results, region *Region, group *perfctr.GroupDef, clockHz float64) string {
	var b strings.Builder
	header := []string{"Event"}
	for _, cpu := range res.CPUs {
		header = append(header, fmt.Sprintf("core %d", cpu))
	}
	t := cli.NewTable(header...)
	for _, ev := range res.Events {
		row := []string{ev}
		for i := range res.CPUs {
			row = append(row, cli.FormatCount(region.Counts[ev][i]))
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	if group == nil {
		return b.String()
	}
	mh := []string{"Metric"}
	for _, cpu := range res.CPUs {
		mh = append(mh, fmt.Sprintf("core %d", cpu))
	}
	mt := cli.NewTable(mh...)
	for _, metric := range group.Metrics {
		expr, err := perfctr.CompileExpr(metric.Formula)
		if err != nil {
			continue
		}
		row := []string{metric.Name}
		for i := range res.CPUs {
			env := map[string]float64{"clock": clockHz, "time": region.Time[i]}
			for ev, vals := range region.Counts {
				env[ev] = vals[i]
			}
			v, err := expr.Eval(env)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, cli.FormatMetric(v))
		}
		mt.AddRow(row...)
	}
	b.WriteString(mt.String())
	return b.String()
}
