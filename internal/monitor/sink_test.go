package monitor

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenBatches is a fixed two-tick stream covering every scope.
func goldenBatches() []Batch {
	return []Batch{
		{
			Collector: "perfgroup/MEM_DP",
			Time:      0.5,
			Samples: []Sample{
				{Metric: "dp_mflops_s", Scope: ScopeThread, ID: 0, Time: 0.5, Value: 571.25},
				{Metric: "dp_mflops_s", Scope: ScopeThread, ID: 1, Time: 0.5, Value: 0},
				{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0, Time: 0.5, Value: 13714.285},
				{Metric: "dp_mflops_s", Scope: ScopeNode, ID: 0, Time: 0.5, Value: 571.25},
			},
		},
		{
			Collector: "perfgroup/MEM_DP",
			Time:      1.0,
			Samples: []Sample{
				{Metric: "dp_mflops_s", Scope: ScopeThread, ID: 0, Time: 1.0, Value: 570.75},
				{Metric: "dp_mflops_s", Scope: ScopeThread, ID: 1, Time: 1.0, Value: 12.5},
				{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0, Time: 1.0, Value: 13710},
				{Metric: "dp_mflops_s", Scope: ScopeNode, ID: 0, Time: 1.0, Value: 583.25},
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestCSVSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf, nil)
	for _, b := range goldenBatches() {
		if err := s.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sink_csv.golden", buf.Bytes())
}

func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf, nil)
	for _, b := range goldenBatches() {
		if err := s.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sink_jsonl.golden", buf.Bytes())
}

func TestTableSinkFiltersScopes(t *testing.T) {
	var buf bytes.Buffer
	s := NewTableSink(&buf, ScopeSocket, ScopeNode)
	if err := s.Write(goldenBatches()[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "memory_bandwidth_mbytes_s") || !strings.Contains(out, "socket") {
		t.Errorf("table misses socket rows:\n%s", out)
	}
	if strings.Contains(out, "thread") {
		t.Errorf("table shows filtered thread rows:\n%s", out)
	}
}

// sourcedBatch is one fleet batch: samples carrying agent identities,
// the shape a receiver-side sink sees.
func sourcedBatch() Batch {
	return Batch{
		Collector: "perfgroup/MEM_DP",
		Time:      0.5,
		Samples: []Sample{
			{Source: "nodeA", Metric: "bw", Scope: ScopeNode, ID: 0, Time: 0.5, Value: 100},
			{Source: "nodeB", Metric: "bw", Scope: ScopeNode, ID: 0, Time: 0.5, Value: 200},
		},
	}
}

// TestSinksCarrySourceColumn pins that every file/terminal sink renders
// the source dimension when fleet samples carry one — and leaves the
// compact local formats untouched otherwise (the goldens above pin
// that).
func TestSinksCarrySourceColumn(t *testing.T) {
	t.Run("csv", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewCSVSink(&buf, nil)
		if err := s.Write(sourcedBatch()); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "time,collector,source,metric,scope,id,value\n") {
			t.Errorf("csv header misses the source column:\n%s", out)
		}
		if !strings.Contains(out, ",nodeA,bw,node,0,100") || !strings.Contains(out, ",nodeB,bw,node,0,200") {
			t.Errorf("csv rows miss sources:\n%s", out)
		}
	})
	t.Run("jsonl", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf, nil)
		if err := s.Write(sourcedBatch()); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"source":"nodeA"`) {
			t.Errorf("jsonl record misses the source field:\n%s", buf.String())
		}
	})
	t.Run("table", func(t *testing.T) {
		var buf bytes.Buffer
		s := NewTableSink(&buf)
		if err := s.Write(sourcedBatch()); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "Source") || !strings.Contains(out, "nodeA") {
			t.Errorf("table misses the Source column:\n%s", out)
		}
		// A local batch keeps the four-column layout.
		buf.Reset()
		if err := s.Write(goldenBatches()[0]); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(buf.String(), "Source") {
			t.Errorf("local table grew a Source column:\n%s", buf.String())
		}
	})
}

// blockingSink parks in Write until released, to force queue overflow.
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
	written int
}

func (b *blockingSink) Name() string { return "blocking" }
func (b *blockingSink) Write(Batch) error {
	b.entered <- struct{}{}
	<-b.release
	b.written++
	return nil
}
func (b *blockingSink) Close() error { return nil }

func TestDispatcherOverflowDropsAndCounts(t *testing.T) {
	sink := &blockingSink{entered: make(chan struct{}, 4), release: make(chan struct{}, 4)}
	d := NewDispatcher(1, sink)

	batch := Batch{Collector: "c", Samples: []Sample{{Metric: "m"}}}
	if !d.Publish(batch) {
		t.Fatal("first publish rejected with empty queue")
	}
	<-sink.entered // dispatcher now blocked inside the sink
	if !d.Publish(batch) {
		t.Fatal("second publish rejected: queue slot was free")
	}
	if d.Publish(batch) {
		t.Fatal("third publish accepted: queue should be full")
	}
	if got := d.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	// Release both queued writes and drain.
	sink.release <- struct{}{}
	<-sink.entered
	sink.release <- struct{}{}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.written != 2 {
		t.Errorf("sink wrote %d batches, want 2 (1 dropped)", sink.written)
	}
	if got := d.Written(); got != 2 {
		t.Errorf("Written = %d, want 2", got)
	}
	// Publishing after Close only counts drops.
	if d.Publish(batch) {
		t.Error("publish after Close must be rejected")
	}
	if got := d.Dropped(); got != 2 {
		t.Errorf("Dropped after close = %d, want 2", got)
	}
}

// errorSink always fails to write.
type errorSink struct{}

func (errorSink) Name() string      { return "err" }
func (errorSink) Write(Batch) error { return errors.New("disk full") }
func (errorSink) Close() error      { return nil }

func TestDispatcherFailedWritesAreNotCountedDelivered(t *testing.T) {
	d := NewDispatcher(4, errorSink{})
	d.Publish(goldenBatches()[0])
	deadline := time.Now().Add(5 * time.Second)
	for d.SinkErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got := d.Written(); got != 0 {
		t.Errorf("Written = %d after all-failing sink, want 0", got)
	}
	if got := d.SinkErrors(); got != 1 {
		t.Errorf("SinkErrors = %d, want 1", got)
	}
}

func TestParseSinkSpecs(t *testing.T) {
	dir := t.TempDir()
	store := NewStore(8)

	csvPath := filepath.Join(dir, "out.csv")
	s, err := ParseSink(context.Background(), "csv:"+csvPath, store)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(goldenBatches()[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,collector,metric,scope,id,value\n") {
		t.Errorf("csv sink output:\n%s", data)
	}

	if _, err := ParseSink(context.Background(), "csv", nil); err == nil {
		t.Error("csv without path must fail")
	}
	if _, err := ParseSink(context.Background(), "bogus:x", nil); err == nil {
		t.Error("unknown sink kind must fail")
	}
	if _, err := ParseSink(context.Background(), "http", nil); err == nil {
		t.Error("http without address must fail")
	}

	h, err := ParseSink(context.Background(), "http:127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.(*HTTPSink); !ok {
		t.Errorf("http spec built %T", h)
	}
	_ = h.Close()
}

func TestDispatcherDeliversInOrder(t *testing.T) {
	var buf bytes.Buffer
	d := NewDispatcher(8, NewCSVSink(&buf, nil))
	for _, b := range goldenBatches() {
		if !d.Publish(b) {
			t.Fatal("publish rejected under capacity")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Written() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sink_csv.golden", buf.Bytes())
}
