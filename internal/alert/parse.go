package alert

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/spec"
)

// The rule spec language, one rule per line:
//
//	name: FN([SOURCE/]METRIC[{LABEL="VALUE",...}], SCOPE[, ID], LOOKBACK) CMP THRESHOLD for DURATION [every DURATION]
//
//	mem_bw_low: avg(memory_bandwidth_mbytes_s, socket, 30s) < 2000 for 60s
//	flops_flat: rate("DP MFlops/s", node, 10s) <= 0 for 30s every 5s
//	bw_skew:    imbalance(memory_bandwidth_mbytes_s, socket, 30s) > 0.5 for 1m
//	fleet_bw:   avg(*/dp_mflops_s, node, 30s) < 1 for 60s
//	job_bw:     avg(*/dp_mflops_s{job="lbm"}, node, 30s) < 1 for 60s
//
// FN is avg | min | max | rate | imbalance; SCOPE is thread | core |
// socket | node; METRIC may be quoted (names with spaces) and may use
// '*' wildcards; ID is optional (default: every matching id, one alert
// instance per series).  SOURCE is an optional agent selector matched
// against Key.Source as its own dimension ('*' wildcards allowed;
// omitted = local series only); the suite's slash-namespaced metric
// families (event/, topo/, feature/, membw/, alert/) are recognized and
// never read as a source.  The optional {LABEL="VALUE",...} matcher
// block restricts the selector to series whose label set carries every
// named label with a matching value ('*' wildcards allowed in values).
// Blank lines and '#' comments are ignored.  Errors carry line:column
// positions so a typo in a 50-rule file is findable.
//
// The tokenizer and selector machinery live in internal/spec, shared
// with the derived-series DSL (internal/derive) — one parser family.

// ParseRule parses one rule line; lineNo is the 1-based line for error
// positions.
func ParseRule(line string, lineNo int) (*Rule, error) {
	s := spec.New("alert", line, lineNo)

	name, col := s.Word()
	if name == "" {
		return nil, s.Errf(col, "expected rule name")
	}
	if !spec.ValidName(name) {
		return nil, s.Errf(col, "bad rule name %q (letters, digits, '_', '-', '.')", name)
	}
	if err := s.Expect(':', "after the rule name"); err != nil {
		return nil, err
	}

	fnWord, col := s.Word()
	fn, ok := parseFn(fnWord)
	if !ok {
		return nil, s.Errf(col, "unknown function %q (avg, min, max, rate, imbalance)", fnWord)
	}
	if err := s.Expect('(', "after the function"); err != nil {
		return nil, err
	}

	source, metric, col, err := s.Selector()
	if err != nil {
		return nil, err
	}
	if metric == "" {
		return nil, s.Errf(col, "expected a metric selector")
	}
	matchers, err := s.Matchers()
	if err != nil {
		return nil, err
	}
	if err := s.Expect(',', "after the metric"); err != nil {
		return nil, err
	}

	scopeWord, col := s.Word()
	scope, err := monitor.ParseScope(scopeWord)
	if err != nil {
		return nil, s.Errf(col, "bad scope %q (thread, core, socket, node)", scopeWord)
	}
	if err := s.Expect(',', "after the scope"); err != nil {
		return nil, err
	}

	// The next argument is an optional integer id; a bare integer cannot
	// be a duration (those need a unit), so the forms stay unambiguous.
	id := AllIDs
	w, col := s.Word()
	if n, aerr := strconv.Atoi(w); aerr == nil {
		if n < 0 {
			return nil, s.Errf(col, "id must not be negative, got %d", n)
		}
		if fn == FnImbalance {
			return nil, s.Errf(col, "imbalance aggregates across ids; drop the id argument")
		}
		id = n
		if err := s.Expect(',', "after the id"); err != nil {
			return nil, err
		}
		w, col = s.Word()
	}
	if w == "" {
		return nil, s.Errf(col, "expected lookback duration (like 30s)")
	}
	lookback, derr := time.ParseDuration(w)
	if derr != nil || lookback <= 0 {
		return nil, s.Errf(col, "bad lookback %q (want a positive duration like 30s)", w)
	}
	if err := s.Expect(')', "after the lookback"); err != nil {
		return nil, err
	}

	cmp, err := parseCmp(s)
	if err != nil {
		return nil, err
	}

	threshWord, col := s.Word()
	if threshWord == "" {
		return nil, s.Errf(col, "expected threshold number")
	}
	threshold, perr := strconv.ParseFloat(threshWord, 64)
	if perr != nil || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return nil, s.Errf(col, "bad threshold %q (want a finite number like 2.0e9)", threshWord)
	}

	kw, col := s.Word()
	if kw != "for" {
		return nil, s.Errf(col, "expected \"for DURATION\", got %q", kw)
	}
	hold, err := s.Duration("hold (\"for\")", true)
	if err != nil {
		return nil, err
	}

	every := time.Duration(0)
	if !s.EOF() {
		kw, col := s.Word()
		if kw != "every" {
			return nil, s.Errf(col, "unexpected %q (only \"every DURATION\" may follow)", kw)
		}
		if every, err = s.Duration("evaluation (\"every\")", false); err != nil {
			return nil, err
		}
	}
	if !s.EOF() {
		w, col := s.Word()
		if w == "" {
			col = s.Col()
			w = string(s.Peek())
		}
		return nil, s.Errf(col, "unexpected trailing %q", w)
	}

	return &Rule{
		Name:      name,
		Fn:        fn,
		Source:    source,
		Metric:    metric,
		Matchers:  matchers,
		Scope:     scope,
		ID:        id,
		Lookback:  lookback.Seconds(),
		Cmp:       cmp,
		Threshold: threshold,
		For:       hold.Seconds(),
		Every:     every,
		Line:      lineNo,
	}, nil
}

func parseCmp(s *spec.Scanner) (Cmp, error) {
	s.SkipSpace()
	col := s.Col()
	var cmp Cmp
	switch {
	case s.AcceptRaw('<'):
		cmp = CmpLT
	case s.AcceptRaw('>'):
		cmp = CmpGT
	case s.EOF():
		return 0, s.Errf(col, "expected comparison (<, <=, >, >=)")
	default:
		return 0, s.Errf(col, "expected comparison (<, <=, >, >=), got %q", string(s.Peek()))
	}
	if s.AcceptRaw('=') {
		cmp++ // LT→LE, GT→GE
	}
	return cmp, nil
}

// ParseRules parses a whole rule file: one rule per line, blank lines
// and '#' comments ignored, duplicate names rejected (they would share
// one "alert/<name>" history series and dedup key).
func ParseRules(src string) ([]*Rule, error) {
	var rules []*Rule
	byName := map[string]int{}
	for i, line := range strings.Split(src, "\n") {
		line = spec.StripComment(line)
		if strings.TrimSpace(line) == "" {
			continue
		}
		r, err := ParseRule(line, i+1)
		if err != nil {
			return nil, err
		}
		if prev, dup := byName[r.Name]; dup {
			return nil, fmt.Errorf("alert: line %d: rule %q already defined on line %d", i+1, r.Name, prev)
		}
		byName[r.Name] = i + 1
		rules = append(rules, r)
	}
	return rules, nil
}
