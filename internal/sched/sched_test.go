package sched

import (
	"testing"
	"testing/quick"

	"likwid/internal/hwdef"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 2, 3)
	if !m.Has(0) || m.Has(1) || !m.Has(3) {
		t.Fatalf("mask membership broken: %v", m)
	}
	if m.Count() != 3 {
		t.Errorf("count = %d, want 3", m.Count())
	}
	m = m.Clear(2)
	if m.Has(2) || m.Count() != 2 {
		t.Errorf("clear failed: %v", m)
	}
	if MaskAll(4) != MaskOf(0, 1, 2, 3) {
		t.Error("MaskAll(4) wrong")
	}
	if MaskAll(64) != ^Mask(0) {
		t.Error("MaskAll(64) must cover all bits")
	}
}

func TestMaskString(t *testing.T) {
	cases := map[string]Mask{
		"0-3":     MaskOf(0, 1, 2, 3),
		"0,2":     MaskOf(0, 2),
		"0-1,8":   MaskOf(0, 1, 8),
		"5":       MaskOf(5),
		"(empty)": 0,
	}
	for want, m := range cases {
		if got := m.String(); got != want {
			t.Errorf("mask %b string = %q, want %q", uint64(m), got, want)
		}
	}
}

func TestMaskRoundtripProperty(t *testing.T) {
	f := func(v uint64) bool {
		m := Mask(v)
		back := MaskOf(m.CPUs()...)
		return back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpawnPlacesOnIdleCPU(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 1)
	seen := map[int]bool{}
	for i := 0; i < 24; i++ {
		tk := k.Spawn("w", nil)
		if tk.CPU < 0 || tk.CPU >= 24 {
			t.Fatalf("task placed on cpu %d", tk.CPU)
		}
		if seen[tk.CPU] {
			t.Fatalf("two tasks share cpu %d while idle CPUs remain", tk.CPU)
		}
		seen[tk.CPU] = true
	}
}

func TestCompactPolicyFillsParentSocketFirst(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicyCompact, 7)
	master := k.Spawn("master", nil)
	// Compact placement starts the master at socket 0, cpu 0.
	if s := k.SocketOf(master.CPU); s != 0 {
		t.Fatalf("master on socket %d, want 0", s)
	}
	// The first 11 children must fill socket 0's 12 hardware threads
	// (physical cores 0-5 then SMT siblings 12-17) before socket 1.
	for i := 0; i < 11; i++ {
		c := k.Spawn("w", master)
		if got := k.SocketOf(c.CPU); got != 0 {
			t.Fatalf("child %d on socket %d, want 0 (compact fills parent socket)", i, got)
		}
	}
	spill := k.Spawn("w", master)
	if got := k.SocketOf(spill.CPU); got != 1 {
		t.Errorf("12th child on socket %d, want 1 (spill)", got)
	}
}

func TestCompactFillsSMTSiblingPairs(t *testing.T) {
	// Compact placement walks sibling-adjacent enumeration: both hardware
	// threads of core 0 before core 1 — the thread-numbering trap of the
	// paper's introduction.  Master on cpu 0, then 12 (its sibling), 1, 13.
	k := New(hwdef.WestmereEP, PolicyCompact, 7)
	master := k.Spawn("master", nil)
	want := []int{0, 12, 1, 13, 2}
	cpus := []int{master.CPU}
	for i := 0; i < 4; i++ {
		cpus = append(cpus, k.Spawn("w", master).CPU)
	}
	for i, c := range cpus {
		if c != want[i] {
			t.Fatalf("compact placement = %v, want %v", cpus, want)
		}
	}
}

func TestSetAffinityMigrates(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 3)
	tk := k.Spawn("w", nil)
	if err := k.SetAffinity(tk, MaskOf(5)); err != nil {
		t.Fatal(err)
	}
	if tk.CPU != 5 || !tk.Pinned {
		t.Fatalf("task on cpu %d pinned=%v, want 5/true", tk.CPU, tk.Pinned)
	}
	if k.Load(5) != 1 {
		t.Errorf("load[5] = %d, want 1", k.Load(5))
	}
}

func TestSetAffinityErrors(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 3)
	tk := k.Spawn("w", nil)
	if err := k.SetAffinity(tk, 0); err == nil {
		t.Error("empty mask must fail")
	}
	if err := k.Pin(tk, 99); err == nil {
		t.Error("pin to nonexistent cpu must fail")
	}
}

func TestPinnedTasksNeverMigrate(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 3)
	pinned := k.Spawn("p", nil)
	if err := k.Pin(pinned, 2); err != nil {
		t.Fatal(err)
	}
	// Crowd cpu 2 to tempt the balancer.
	for i := 0; i < 4; i++ {
		other := k.Spawn("o", nil)
		if err := k.SetAffinity(other, MaskOf(2)); err != nil {
			t.Fatal(err)
		}
		other.Pinned = false // make them balancer-eligible
	}
	for i := 0; i < 200; i++ {
		k.Rebalance(0.5)
	}
	if pinned.CPU != 2 {
		t.Fatalf("pinned task migrated to cpu %d", pinned.CPU)
	}
}

func TestRebalancePullsFromOverloadedCPU(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 11)
	a := k.Spawn("a", nil)
	b := k.Spawn("b", nil)
	if err := k.SetAffinity(a, MaskAll(24)); err != nil {
		t.Fatal(err)
	}
	if err := k.SetAffinity(b, MaskAll(24)); err != nil {
		t.Fatal(err)
	}
	// Force both on cpu 0.
	for _, tk := range []*Task{a, b} {
		if tk.CPU != 0 {
			k.SetAffinity(tk, MaskOf(0))
			k.SetAffinity(tk, MaskAll(24))
			tk.Pinned = false
			// SetAffinity to the full mask keeps the current cpu; put it
			// back on 0 via the load bookkeeping check below.
		}
	}
	// However they ended up, collapse them onto cpu 0 deterministically:
	for _, tk := range []*Task{a, b} {
		k.SetAffinity(tk, MaskOf(0))
		tk.Affinity = MaskAll(24)
		tk.Pinned = false
	}
	if k.Load(0) != 2 {
		t.Fatalf("setup failed: load[0] = %d, want 2", k.Load(0))
	}
	moved := false
	for i := 0; i < 500 && !moved; i++ {
		k.Rebalance(0.3)
		moved = k.Load(0) < 2
	}
	if !moved {
		t.Error("balancer never moved a task off an overloaded cpu")
	}
}

func TestSpawnTeamIntelShepherd(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 5)
	master := k.Spawn("a.out", nil)
	var hookOrder []string
	team, err := SpawnTeam(k, RuntimeIntelOMP, 4, master, func(i int, tk *Task) {
		hookOrder = append(hookOrder, tk.Name)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Intel: OMP_NUM_THREADS+1 threads created... the paper: master plus
	// N created, first created is the shepherd.
	if len(team.Created) != 4 {
		t.Fatalf("created %d threads, want 4 (shepherd + 3 workers)", len(team.Created))
	}
	if hookOrder[0] != "omp-shepherd" {
		t.Errorf("first created thread = %q, want the shepherd", hookOrder[0])
	}
	if len(team.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(team.Workers))
	}
	if team.Workers[0] != master {
		t.Error("master must be worker 0")
	}
	for _, w := range team.Workers {
		if w.Name == "omp-shepherd" {
			t.Error("shepherd must not be a worker")
		}
	}
}

func TestSpawnTeamGcc(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 5)
	master := k.Spawn("a.out", nil)
	team, err := SpawnTeam(k, RuntimeGccOMP, 4, master, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(team.Created) != 3 {
		t.Fatalf("gcc created %d threads, want 3 (N-1)", len(team.Created))
	}
	if len(team.Workers) != 4 || team.Workers[0] != master {
		t.Fatalf("workers wrong: %d", len(team.Workers))
	}
}

func TestSpawnTeamPthreads(t *testing.T) {
	k := New(hwdef.NehalemEP, PolicySpread, 5)
	master := k.Spawn("jacobi", nil)
	team, err := SpawnTeam(k, RuntimePthreads, 4, master, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(team.Created) != 4 || len(team.Workers) != 4 {
		t.Fatalf("pthreads team = %d created %d workers, want 4/4", len(team.Created), len(team.Workers))
	}
	for _, w := range team.Workers {
		if w == master {
			t.Error("pthreads master must not be a worker")
		}
	}
	team.Exit(k)
	if got := len(k.Tasks()); got != 1 {
		t.Errorf("after team exit %d tasks remain, want 1 (master)", got)
	}
}

func TestSpawnTeamErrors(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 5)
	if _, err := SpawnTeam(k, RuntimeGccOMP, 0, k.Spawn("m", nil), nil); err == nil {
		t.Error("zero workers must fail")
	}
	if _, err := SpawnTeam(k, RuntimeGccOMP, 2, nil, nil); err == nil {
		t.Error("nil master must fail")
	}
}

func TestParseRuntime(t *testing.T) {
	for s, want := range map[string]RuntimeModel{
		"intel": RuntimeIntelOMP, "gnu": RuntimeGccOMP, "gcc": RuntimeGccOMP,
		"pthreads": RuntimePthreads, "": RuntimePthreads,
	} {
		got, err := ParseRuntime(s)
		if err != nil || got != want {
			t.Errorf("ParseRuntime(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRuntime("rust"); err == nil {
		t.Error("unknown runtime must fail")
	}
}

func TestExitReleasesCPU(t *testing.T) {
	k := New(hwdef.WestmereEP, PolicySpread, 9)
	tk := k.Spawn("w", nil)
	cpu := tk.CPU
	k.Exit(tk)
	if k.Load(cpu) != 0 {
		t.Errorf("load[%d] = %d after exit, want 0", cpu, k.Load(cpu))
	}
	k.Exit(tk) // double exit is a no-op
}
