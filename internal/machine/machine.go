// Package machine assembles the simulated node: architecture definition,
// CPUID views, MSR space, OS scheduler and memory system — plus the event
// engine that executes workload phases and delivers hardware events into
// whatever counters the MSRs have armed.
//
// The engine is the stand-in for silicon: likwid-perfCtr programs
// PERFEVTSEL/FIXED_CTR_CTRL/uncore registers through the msr package
// exactly as on hardware, and this package increments the matching counter
// registers as simulated work proceeds.  Counting is strictly core-based:
// events are credited to the hardware thread (or socket, for uncore) where
// they happen, regardless of which task caused them — the property that
// makes affinity control necessary for sensible measurements (§II-A).
package machine

import (
	"fmt"
	"math"

	"likwid/internal/cpuid"
	"likwid/internal/hwdef"
	"likwid/internal/memsys"
	"likwid/internal/msr"
	"likwid/internal/sched"
)

// Machine is one simulated shared-memory node.
type Machine struct {
	Arch *hwdef.Arch
	MSRs *msr.Space
	CPUs []*cpuid.CPU
	OS   *sched.Kernel
	Mem  *memsys.System

	now float64 // simulated seconds

	// Reverse maps from event-select encodings to event names.
	coreByEnc   map[uint16]string
	uncoreByEnc map[uint16]string
	fixedNames  [3]string

	// residuals accumulate sub-integer counter deltas so that tiny event
	// counts (e.g. the single scalar SSE op of the paper's marker
	// listing) survive slicing exactly.
	residuals map[residKey]float64

	sliceHooks []SliceHook
}

type residKey struct {
	cpu int
	reg uint32
}

// SliceHook runs after every engine time slice; perfctr's multiplexing
// timer is implemented with one.
type SliceHook func(now float64)

// Options configure machine construction.
type Options struct {
	Policy sched.Policy
	Seed   int64
}

// New builds a node for the named architecture.
func New(a *hwdef.Arch, opts Options) *Machine {
	m := &Machine{
		Arch:        a,
		MSRs:        msr.NewSpace(a),
		CPUs:        cpuid.NewNode(a),
		OS:          sched.New(a, opts.Policy, opts.Seed),
		Mem:         memsys.New(a),
		coreByEnc:   make(map[uint16]string),
		uncoreByEnc: make(map[uint16]string),
		residuals:   make(map[residKey]float64),
	}
	for name, ev := range a.Events {
		switch ev.Domain {
		case hwdef.DomainPMC:
			m.coreByEnc[ev.EncodesAs()] = name
		case hwdef.DomainUncore:
			m.uncoreByEnc[ev.EncodesAs()] = name
		case hwdef.DomainFixed:
			if ev.FixedIndex >= 0 && ev.FixedIndex < 3 {
				m.fixedNames[ev.FixedIndex] = name
			}
		}
	}
	return m
}

// NewNamed is New for a registry architecture name.
func NewNamed(name string, opts Options) (*Machine, error) {
	a, err := hwdef.Lookup(name)
	if err != nil {
		return nil, err
	}
	return New(a, opts), nil
}

// Now returns the simulated time in seconds.
func (m *Machine) Now() float64 { return m.now }

// ClockMHz returns the core clock as the tools report it.
func (m *Machine) ClockMHz() float64 { return m.Arch.ClockMHz }

// AddSliceHook registers a callback run after every engine slice.
func (m *Machine) AddSliceHook(h SliceHook) { m.sliceHooks = append(m.sliceHooks, h) }

// SocketOf maps a logical processor to its socket.
func (m *Machine) SocketOf(cpu int) int { return m.OS.SocketOf(cpu) }

// firstCPUOfSocket picks the delivery device for socket-scope events; the
// uncore bank is shared, so any core of the socket works.
func (m *Machine) firstCPUOfSocket(socket int) int {
	for cpu := 0; cpu < m.OS.NumCPUs(); cpu++ {
		if m.OS.SocketOf(cpu) == socket {
			return cpu
		}
	}
	return 0
}

// Inject delivers a canonical event vector to one hardware thread
// immediately (socket-scope keys go to the thread's socket).  Workloads use
// it for exact one-shot counts such as loop-setup instructions.
func (m *Machine) Inject(cpu int, deltas Counts) error {
	if cpu < 0 || cpu >= m.OS.NumCPUs() {
		return fmt.Errorf("machine: inject on nonexistent cpu %d", cpu)
	}
	socket := make(Counts)
	for k, v := range deltas {
		if k.SocketScope() {
			socket[k] = v
		}
	}
	// Core counters see every key (they only match events they are armed
	// for, and per-core bus events on uncore-less parts need the traffic
	// keys); the socket's shared counters see the socket-scope subset.
	m.deliverCore(cpu, deltas)
	m.deliverSocket(m.SocketOf(cpu), socket)
	return nil
}

// deliverCore routes a canonical vector into the armed core counters of one
// hardware thread.
func (m *Machine) deliverCore(cpu int, deltas Counts) {
	if len(deltas) == 0 {
		return
	}
	dev, err := m.MSRs.Open(cpu)
	if err != nil {
		return
	}
	switch m.Arch.Vendor {
	case hwdef.Intel:
		global, _ := dev.Read(msr.IA32PerfGlobalCtl)
		for i := 0; i < m.Arch.NumPMC; i++ {
			if global&(1<<uint(i)) == 0 {
				continue
			}
			sel, _ := dev.Read(msr.IA32PerfEvtSel0 + uint32(i))
			code, umask, enabled := msr.EvtselFields(sel)
			if !enabled {
				continue
			}
			name, ok := m.coreByEnc[uint16(umask)<<8|code]
			if !ok {
				continue
			}
			m.bump(dev, cpu, msr.IA32PMC0+uint32(i), evaluate(name, deltas))
		}
		if m.Arch.HasFixedCtr {
			ctrl, _ := dev.Read(msr.IA32FixedCtrCtrl)
			for i := 0; i < 3; i++ {
				if ctrl>>(4*uint(i))&0x3 == 0 || global&(1<<(32+uint(i))) == 0 {
					continue
				}
				if m.fixedNames[i] == "" {
					continue
				}
				m.bump(dev, cpu, msr.IA32FixedCtr0+uint32(i), evaluate(m.fixedNames[i], deltas))
			}
		}
	case hwdef.AMD:
		for i := 0; i < m.Arch.NumPMC; i++ {
			sel, _ := dev.Read(msr.AMDPerfEvtSel0 + uint32(i))
			code, umask, enabled := msr.EvtselFields(sel)
			if !enabled {
				continue
			}
			name, ok := m.coreByEnc[uint16(umask)<<8|code]
			if !ok {
				continue
			}
			m.bump(dev, cpu, msr.AMDPMC0+uint32(i), evaluate(name, deltas))
		}
	}
}

// deliverSocket routes socket-scope events into the shared uncore counters,
// exactly once per socket.
func (m *Machine) deliverSocket(socket int, deltas Counts) {
	if len(deltas) == 0 || m.Arch.NumUncore == 0 {
		return
	}
	cpu := m.firstCPUOfSocket(socket)
	dev, err := m.MSRs.Open(cpu)
	if err != nil {
		return
	}
	global, _ := dev.Read(msr.UncGlobalCtl)
	for i := 0; i < m.Arch.NumUncore; i++ {
		if global&(1<<uint(i)) == 0 {
			continue
		}
		sel, _ := dev.Read(msr.UncPerfEvtSel + uint32(i))
		code, umask, enabled := msr.EvtselFields(sel)
		if !enabled {
			continue
		}
		name, ok := m.uncoreByEnc[uint16(umask)<<8|code]
		if !ok {
			continue
		}
		// Key the residual on the socket's delivery cpu so rotation of
		// event sets does not leak residue across counters.
		m.bump(dev, cpu, msr.UncPMC+uint32(i), evaluate(name, deltas))
	}
}

// bump adds a (possibly fractional) delta to a counter register, carrying
// the fractional residue forward so long runs lose nothing to slicing.
func (m *Machine) bump(dev *msr.Device, cpu int, reg uint32, delta float64) {
	if delta <= 0 {
		return
	}
	key := residKey{cpu: cpu, reg: reg}
	total := m.residuals[key] + delta
	whole := math.Floor(total)
	m.residuals[key] = total - whole
	if whole > 0 {
		_ = dev.Add(reg, uint64(whole))
	}
}
