package alert

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"likwid/internal/monitor"
)

func TestParseRuleGoodSpecs(t *testing.T) {
	tests := []struct {
		name string
		spec string
		want Rule
	}{
		{
			name: "issue example shape",
			spec: "mem_bw_low: avg(memory_bandwidth_mbytes_s, socket, 30s) < 2.0e9 for 60s",
			want: Rule{Name: "mem_bw_low", Fn: FnAvg, Metric: "memory_bandwidth_mbytes_s",
				Scope: monitor.ScopeSocket, ID: AllIDs, Lookback: 30, Cmp: CmpLT,
				Threshold: 2.0e9, For: 60},
		},
		{
			name: "source selector",
			spec: "node_bw: avg(nodeA-7/bandwidth, socket, 30s) < 2.0e9 for 60s",
			want: Rule{Name: "node_bw", Fn: FnAvg, Source: "nodeA-7", Metric: "bandwidth",
				Scope: monitor.ScopeSocket, ID: AllIDs, Lookback: 30, Cmp: CmpLT,
				Threshold: 2.0e9, For: 60},
		},
		{
			name: "source wildcard slice",
			spec: "rack_bw: min(rack1-*/bw, node, 30s) < 1 for 0s",
			want: Rule{Name: "rack_bw", Fn: FnMin, Source: "rack1-*", Metric: "bw",
				Scope: monitor.ScopeNode, ID: AllIDs, Lookback: 30, Cmp: CmpLT,
				Threshold: 1, For: 0},
		},
		{
			name: "reserved namespace stays a metric",
			spec: "threads: max(topo/socket_hw_threads, socket, 10s) > 12 for 0s",
			want: Rule{Name: "threads", Fn: FnMax, Metric: "topo/socket_hw_threads",
				Scope: monitor.ScopeSocket, ID: AllIDs, Lookback: 10, Cmp: CmpGT,
				Threshold: 12, For: 0},
		},
		{
			name: "quoted source forces the reserved word",
			spec: `odd: avg("event"/instr, node, 10s) > 1 for 0s`,
			want: Rule{Name: "odd", Fn: FnAvg, Source: "event", Metric: "instr",
				Scope: monitor.ScopeNode, ID: AllIDs, Lookback: 10, Cmp: CmpGT,
				Threshold: 1, For: 0},
		},
		{
			name: "quoted metric with slash is never split",
			spec: `q: avg("nodeA/bw", node, 10s) > 1 for 0s`,
			want: Rule{Name: "q", Fn: FnAvg, Metric: "nodeA/bw",
				Scope: monitor.ScopeNode, ID: AllIDs, Lookback: 10, Cmp: CmpGT,
				Threshold: 1, For: 0},
		},
		{
			name: "source with quoted metric",
			spec: `s: avg(nodeA/"DP MFlops/s", node, 10s) > 1 for 0s`,
			want: Rule{Name: "s", Fn: FnAvg, Source: "nodeA", Metric: "DP MFlops/s",
				Scope: monitor.ScopeNode, ID: AllIDs, Lookback: 10, Cmp: CmpGT,
				Threshold: 1, For: 0},
		},
		{
			name: "explicit id and every",
			spec: "hot0: max(temp, thread, 3, 10s) >= 95 for 0s every 5s",
			want: Rule{Name: "hot0", Fn: FnMax, Metric: "temp",
				Scope: monitor.ScopeThread, ID: 3, Lookback: 10, Cmp: CmpGE,
				Threshold: 95, For: 0, Every: 5 * time.Second},
		},
		{
			name: "quoted metric with spaces",
			spec: `flops_flat: rate("DP MFlops/s", node, 1m30s) <= 0 for 30s`,
			want: Rule{Name: "flops_flat", Fn: FnRate, Metric: "DP MFlops/s",
				Scope: monitor.ScopeNode, ID: AllIDs, Lookback: 90, Cmp: CmpLE,
				Threshold: 0, For: 30},
		},
		{
			name: "imbalance over sockets",
			spec: "bw_skew: imbalance(memory_bandwidth_mbytes_s, socket, 30s) > 0.5 for 1m",
			want: Rule{Name: "bw_skew", Fn: FnImbalance, Metric: "memory_bandwidth_mbytes_s",
				Scope: monitor.ScopeSocket, ID: AllIDs, Lookback: 30, Cmp: CmpGT,
				Threshold: 0.5, For: 60},
		},
		{
			name: "fleet wildcard",
			spec: "fleet_idle: avg(*/dp_mflops_s, node, 20s) < 1 for 40s",
			want: Rule{Name: "fleet_idle", Fn: FnAvg, Source: "*", Metric: "dp_mflops_s",
				Scope: monitor.ScopeNode, ID: AllIDs, Lookback: 20, Cmp: CmpLT,
				Threshold: 1, For: 40},
		},
		{
			name: "label matcher",
			spec: `job_bw: avg(bw{job="lbm"}, node, 30s) < 1 for 0s`,
			want: Rule{Name: "job_bw", Fn: FnAvg, Metric: "bw",
				Matchers: []LabelMatcher{{Name: "job", Value: "lbm"}},
				Scope:    monitor.ScopeNode, ID: AllIDs, Lookback: 30, Cmp: CmpLT,
				Threshold: 1, For: 0},
		},
		{
			name: "matchers sort canonically and compose with a source wildcard",
			spec: `fleet_job: avg(*/bw{job="lbm",cluster="em*"}, node, 30s) < 1 for 0s`,
			want: Rule{Name: "fleet_job", Fn: FnAvg, Source: "*", Metric: "bw",
				Matchers: []LabelMatcher{{Name: "cluster", Value: "em*"}, {Name: "job", Value: "lbm"}},
				Scope:    monitor.ScopeNode, ID: AllIDs, Lookback: 30, Cmp: CmpLT,
				Threshold: 1, For: 0},
		},
		{
			name: "quoted metric with matcher",
			spec: `qm: rate("DP MFlops/s"{job="lbm"}, node, 10s) <= 0 for 0s`,
			want: Rule{Name: "qm", Fn: FnRate, Metric: "DP MFlops/s",
				Matchers: []LabelMatcher{{Name: "job", Value: "lbm"}},
				Scope:    monitor.ScopeNode, ID: AllIDs, Lookback: 10, Cmp: CmpLE,
				Threshold: 0, For: 0},
		},
		{
			name: "compact whitespace",
			spec: "r:min(bw,node,1s)<1 for 0s",
			want: Rule{Name: "r", Fn: FnMin, Metric: "bw",
				Scope: monitor.ScopeNode, ID: AllIDs, Lookback: 1, Cmp: CmpLT,
				Threshold: 1, For: 0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseRule(tt.spec, 1)
			if err != nil {
				t.Fatalf("ParseRule(%q) failed: %v", tt.spec, err)
			}
			tt.want.Line = 1
			if !reflect.DeepEqual(*got, tt.want) {
				t.Errorf("ParseRule(%q)\n got %+v\nwant %+v", tt.spec, *got, tt.want)
			}
			// String() must reparse to the same rule (the fuzz invariant,
			// pinned here on readable cases).
			again, err := ParseRule(got.String(), 1)
			if err != nil {
				t.Fatalf("reparse of %q failed: %v", got.String(), err)
			}
			if !reflect.DeepEqual(again, got) {
				t.Errorf("round trip of %q changed the rule:\n got %+v\nwant %+v", got.String(), *again, *got)
			}
		})
	}
}

// TestParseRuleBadSpecs pins that malformed specs fail fast and the
// error carries a line:column position pointing at the offending token.
func TestParseRuleBadSpecs(t *testing.T) {
	tests := []struct {
		name    string
		spec    string
		wantErr string // substring
		wantPos string // "line:col" substring; "" = only check wantErr
	}{
		{"empty", "", "expected rule name", "1:1"},
		{"missing name", ": avg(bw, node, 1s) < 1 for 0s", "expected rule name", "1:1"},
		{"bad name chars", "a b: avg(bw, node, 1s) < 1 for 0s", `expected ":"`, "1:3"},
		{"name with slash", "a/b: avg(bw, node, 1s) < 1 for 0s", "bad rule name", "1:1"},
		{"missing colon", "r avg(bw, node, 1s) < 1 for 0s", `expected ":"`, "1:3"},
		{"unknown function", "r: foo(bw, node, 1s) < 1 for 0s", "unknown function", "1:4"},
		{"missing paren", "r: avg bw, node, 1s < 1 for 0s", `expected "("`, "1:8"},
		{"empty metric", "r: avg(, node, 1s) < 1 for 0s", "expected a metric", "1:8"},
		{"unterminated quote", `r: avg("bw, node, 1s) < 1 for 0s`, "unterminated quoted metric", "1:8"},
		{"bad scope", "r: avg(bw, galaxy, 1s) < 1 for 0s", "bad scope", "1:12"},
		{"negative id", "r: avg(bw, node, -1, 1s) < 1 for 0s", "id must not be negative", "1:18"},
		{"imbalance with id", "r: imbalance(bw, socket, 0, 1s) < 1 for 0s", "drop the id argument", "1:26"},
		{"bad lookback", "r: avg(bw, node, soon) < 1 for 0s", "bad lookback", "1:18"},
		{"zero lookback", "r: avg(bw, node, 0s) < 1 for 0s", "bad lookback", "1:18"},
		{"missing comparison", "r: avg(bw, node, 1s) 1 for 0s", "expected comparison", "1:22"},
		{"equals comparison", "r: avg(bw, node, 1s) = 1 for 0s", "expected comparison", "1:22"},
		{"bad threshold", "r: avg(bw, node, 1s) < high for 0s", "bad threshold", "1:24"},
		{"inf threshold", "r: avg(bw, node, 1s) < inf for 0s", "bad threshold", "1:24"},
		{"nan threshold", "r: avg(bw, node, 1s) < nan for 0s", "bad threshold", "1:24"},
		{"missing for", "r: avg(bw, node, 1s) < 1", `expected "for DURATION"`, ""},
		{"wrong keyword", "r: avg(bw, node, 1s) < 1 if 0s", `expected "for DURATION"`, "1:26"},
		{"bad hold", "r: avg(bw, node, 1s) < 1 for ever", "bad hold", "1:30"},
		{"negative hold", "r: avg(bw, node, 1s) < 1 for -5s", "must be positive", "1:30"},
		{"bad every keyword", "r: avg(bw, node, 1s) < 1 for 0s daily", `only "every DURATION"`, "1:33"},
		{"zero every", "r: avg(bw, node, 1s) < 1 for 0s every 0s", "must be positive", "1:39"},
		{"trailing junk", "r: avg(bw, node, 1s) < 1 for 0s every 5s oops", "unexpected trailing", ""},
		{"empty matcher block", "r: avg(bw{}, node, 1s) < 1 for 0s", "expected a label name", ""},
		{"unquoted matcher value", "r: avg(bw{job=lbm}, node, 1s) < 1 for 0s", "expected quoted string", ""},
		{"empty matcher value", `r: avg(bw{job=""}, node, 1s) < 1 for 0s`, "empty matcher value", ""},
		{"bad matcher name", `r: avg(bw{1job="x"}, node, 1s) < 1 for 0s`, "bad matcher label name", ""},
		{"duplicate matcher", `r: avg(bw{job="a",job="b"}, node, 1s) < 1 for 0s`, "duplicate matcher label", ""},
		{"reserved matcher name", `r: avg(bw{source="nodeA"}, node, 1s) < 1 for 0s`, "reserved", ""},
		{"unclosed matcher block", `r: avg(bw{job="a", node, 1s) < 1 for 0s`, `expected "="`, ""},
		{"missing equals", `r: avg(bw{job "a"}, node, 1s) < 1 for 0s`, `expected "="`, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseRule(tt.spec, 1)
			if err == nil {
				t.Fatalf("ParseRule(%q) succeeded, want error %q", tt.spec, tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error = %v, want substring %q", err, tt.wantErr)
			}
			if tt.wantPos != "" && !strings.Contains(err.Error(), "line "+tt.wantPos) {
				t.Errorf("error = %v, want position %q", err, tt.wantPos)
			}
		})
	}
}

func TestParseRulesFile(t *testing.T) {
	src := `
# fleet alerting
mem_bw_low: avg(memory_bandwidth_mbytes_s, socket, 30s) < 2000 for 60s

bw_skew: imbalance("memory bandwidth # not a comment", socket, 30s) > 0.5 for 1m  # trailing comment
`
	rules, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	if rules[0].Name != "mem_bw_low" || rules[0].Line != 3 {
		t.Errorf("rule 0 = %s on line %d, want mem_bw_low on line 3", rules[0].Name, rules[0].Line)
	}
	if rules[1].Metric != "memory bandwidth # not a comment" {
		t.Errorf("quoted '#' was treated as a comment: metric = %q", rules[1].Metric)
	}

	if rules, err := ParseRules("# only comments\n\n"); err != nil || len(rules) != 0 {
		t.Errorf("comment-only file = (%v, %v), want (no rules, nil)", rules, err)
	}

	// Errors carry the file line.
	_, err = ParseRules("ok: avg(bw, node, 1s) < 1 for 0s\nbroken: avg(bw, node) < 1 for 0s")
	if err == nil || !strings.Contains(err.Error(), "line 2:") {
		t.Errorf("multi-line error = %v, want a line 2 position", err)
	}

	// Duplicate names would share one history series: rejected.
	_, err = ParseRules("r: avg(bw, node, 1s) < 1 for 0s\nr: max(bw, node, 1s) > 9 for 0s")
	if err == nil || !strings.Contains(err.Error(), "already defined on line 1") {
		t.Errorf("duplicate rule error = %v, want 'already defined on line 1'", err)
	}
}

func TestRuleSelectorMatching(t *testing.T) {
	node := func(source, metric string) monitor.Key {
		return monitor.Key{Source: source, Metric: metric, Scope: monitor.ScopeNode}
	}
	tests := []struct {
		source, metric string // rule selector dimensions
		key            monitor.Key
		want           bool
	}{
		{"", "bw", node("", "bw"), true},
		{"", "bw", node("", "bandwidth"), false},
		{"", "bw", node("nodeA", "bw"), false},                                           // no source selector = local only
		{"", "memory_bandwidth_mbytes_s", node("", "Memory bandwidth [MBytes/s]"), true}, // sanitized form
		{"*", "bw", node("nodeA", "bw"), true},
		{"*", "bw", node("", "bw"), true}, // '*' spans the fleet, local included
		{"node*", "bw", node("nodeA", "bw"), true},
		{"node*", "bw", node("rack1", "bw"), false},
		{"nodeA", "bw", node("nodeA", "bw"), true},
		{"nodeA", "bw", node("nodeB", "bw"), false},
		{"nodeA", "mem*", node("nodeA", "memory_bandwidth_mbytes_s"), true},
		{"*", "alert/r", node("nodeA", "alert/r"), false}, // alert history never matches
		{"", "alert/r", node("", "alert/r"), false},
	}
	for _, tt := range tests {
		r := Rule{Source: tt.source, Metric: tt.metric}
		if got := r.matches(tt.key); got != tt.want {
			t.Errorf("selector (%q,%q) vs key %+v = %v, want %v", tt.source, tt.metric, tt.key, got, tt.want)
		}
	}
}
