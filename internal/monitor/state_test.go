package monitor

import (
	"reflect"
	"testing"
)

type journalRec struct {
	k Key
	p Point
}

// chanJournal mirrors the persist WAL's shape: a non-blocking handoff
// to a buffered channel, dropping when full.
type chanJournal struct {
	ch      chan journalRec
	dropped int
}

func (j *chanJournal) Record(k Key, p Point) {
	select {
	case j.ch <- journalRec{k, p}:
	default:
		j.dropped++
	}
}

func TestJournalSeesEveryAppendPath(t *testing.T) {
	st := NewStore(8)
	j := &chanJournal{ch: make(chan journalRec, 16)}
	st.SetJournal(j)

	k := Key{Metric: "bw", Scope: ScopeNode, ID: 0}
	st.Append(k, Point{Time: 1, Value: 10})
	st.Intern(k).Append(Point{Time: 2, Value: 20})
	st.AppendBatch(Batch{Samples: []Sample{{Metric: "bw", Scope: ScopeNode, ID: 0, Time: 3, Value: 30}}})

	if got := len(j.ch); got != 3 {
		t.Fatalf("journal saw %d records, want 3", got)
	}
	for i := 1; i <= 3; i++ {
		r := <-j.ch
		if r.k != k || r.p.Time != float64(i) || r.p.Value != float64(i*10) {
			t.Fatalf("record %d = %+v, want key %v time %d value %d", i, r, k, i, i*10)
		}
	}

	// Removing the journal stops observation without touching appends.
	st.SetJournal(nil)
	st.Append(k, Point{Time: 4, Value: 40})
	if len(j.ch) != 0 {
		t.Fatalf("journal still observed after SetJournal(nil)")
	}
	if p, ok := st.Latest(k); !ok || p.Time != 4 {
		t.Fatalf("append after SetJournal(nil) lost: %+v %v", p, ok)
	}
}

// TestAppendWithWALZeroAllocs pins the acceptance criterion: enabling
// the journal must not add allocations to the interned append path —
// the record is plain values handed to a buffered channel.
func TestAppendWithWALZeroAllocs(t *testing.T) {
	st := NewStore(1024)
	j := &chanJournal{ch: make(chan journalRec, 4)} // tiny: exercises the drop path too
	st.SetJournal(j)
	h := st.Intern(Key{Metric: "bw", Scope: ScopeNode, ID: 0})
	p := Point{Time: 1, Value: 2}
	if allocs := testing.AllocsPerRun(1000, func() { h.Append(p) }); allocs != 0 {
		t.Fatalf("Series.Append with journal allocates %.1f allocs/op, want 0", allocs)
	}
}

// stateTestStore builds a store with two cascading tiers and drives two
// series far enough that the rings wrap, buckets seal, a bucket
// cascades into the coarse tier, and both tiers hold open accumulators.
func stateTestStore(t *testing.T) (*Store, Key, Key) {
	t.Helper()
	st := NewStore(4, Tier{Resolution: 1, Capacity: 4}, Tier{Resolution: 4, Capacity: 2})
	gauge := Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, ID: 0}
	alert := Key{Metric: "alert/hot", Scope: ScopeNode, ID: 0}
	st.SetCompaction(alert, CompactLast)
	for i := 0; i < 40; i++ {
		ts := float64(i) * 0.25
		st.Append(gauge, Point{Time: ts, Value: float64(i)})
		st.Append(alert, Point{Time: ts, Value: float64(i % 2)})
	}
	return st, gauge, alert
}

func TestStateDumpRestoreRoundTrips(t *testing.T) {
	st, gauge, alert := stateTestStore(t)
	states := st.DumpState()
	if len(states) != 2 {
		t.Fatalf("DumpState returned %d series, want 2", len(states))
	}

	fresh := NewStore(4, Tier{Resolution: 1, Capacity: 4}, Tier{Resolution: 4, Capacity: 2})
	fresh.RestoreState(states)

	for _, k := range []Key{gauge, alert} {
		want := st.Window(k, 0, -1)
		got := fresh.Window(k, 0, -1)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("restored Window(%v) = %v, want %v", k, got, want)
		}
		for _, res := range []float64{1, 4} {
			wb := st.Buckets(k, res, 0, -1)
			gb := fresh.Buckets(k, res, 0, -1)
			if !reflect.DeepEqual(gb, wb) {
				t.Errorf("restored Buckets(%v, res=%v) = %v, want %v", k, res, gb, wb)
			}
		}
	}

	// The restored store keeps accumulating: appends continue the open
	// bucket (not a fresh one) and the cascade still works.
	p := Point{Time: 10.0, Value: 100}
	st.Append(gauge, p)
	fresh.Append(gauge, p)
	if got, want := fresh.Window(gauge, 0, -1), st.Window(gauge, 0, -1); !reflect.DeepEqual(got, want) {
		t.Errorf("post-restore append diverged: %v vs %v", got, want)
	}

	// Compaction mode survives: the alert series still seals last-value
	// buckets after restore.
	if st2 := fresh.DumpState(); len(st2) == 2 {
		for _, s := range st2 {
			want := CompactMean
			if s.Key == alert {
				want = CompactLast
			}
			if s.Compaction != want {
				t.Errorf("series %v restored compaction %v, want %v", s.Key, s.Compaction, want)
			}
		}
	}
}

// TestStateRestoreAdaptsToShape covers restores into a reshaped store:
// a smaller raw ring keeps the newest points, and a dumped tier whose
// resolution is no longer configured is dropped, not mis-folded.
func TestStateRestoreAdaptsToShape(t *testing.T) {
	st, gauge, _ := stateTestStore(t)
	states := st.DumpState()

	small := NewStore(2, Tier{Resolution: 1, Capacity: 4})
	small.RestoreState(states)

	want := st.Window(gauge, 0, -1)
	newest := want[len(want)-2:]
	got := small.Window(gauge, 0, -1)
	if len(got) < 2 || !reflect.DeepEqual(got[len(got)-2:], newest) {
		t.Errorf("small restore tail = %v, want suffix %v", got, newest)
	}
	if b := small.Buckets(gauge, 4, 0, -1); b != nil {
		t.Errorf("unconfigured tier resolution restored buckets: %v", b)
	}
	if wb, gb := st.Buckets(gauge, 1, 0, -1), small.Buckets(gauge, 1, 0, -1); !reflect.DeepEqual(gb, wb) {
		t.Errorf("matching tier diverged after reshape: %v vs %v", gb, wb)
	}
}
