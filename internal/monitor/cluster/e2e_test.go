package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"likwid/internal/monitor"
)

// shardNode is one mid-tier receiver of the federation tree: a store
// behind /ingest whose accepted batches re-push to the root through a
// forward dispatcher — the same wiring runReceiver builds for -forward.
type shardNode struct {
	store *monitor.Store
	h     *monitor.HTTPSink
	url   string
	fwd   *Sink
	disp  *monitor.Dispatcher
}

func newShardNode(t *testing.T, rootURL string) *shardNode {
	t.Helper()
	store, h, url := newReceiver(t)
	fwd, err := New(Options{
		Targets:      []string{rootURL},
		Policy:       PolicyFailover,
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	disp := monitor.NewDispatcher(4096, fwd)
	h.SetForward(func(b monitor.Batch) { disp.Publish(b) })
	return &shardNode{store: store, h: h, url: url, fwd: fwd, disp: disp}
}

// agentMetrics is the per-agent series population of the e2e: enough
// keys that both shards own some.
var agentMetrics = []string{"bw", "flops_dp", "cpi", "energy", "l3_ratio", "rapl", "clock", "ipc"}

// pushPhase writes one batch per tick over [from, to) carrying every
// metric; FlushSamples=1 means each write POSTs immediately.
func pushPhase(t *testing.T, s *Sink, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		tm := float64(i)
		samples := make([]monitor.Sample, 0, len(agentMetrics))
		for _, m := range agentMetrics {
			samples = append(samples, monitor.Sample{
				Metric: m, Scope: monitor.ScopeNode, ID: 0, Time: tm, Value: tm,
			})
		}
		_ = s.Write(monitor.Batch{Collector: "perfgroup", Time: tm, Samples: samples})
	}
}

// rootComplete reports whether the root store holds exactly the ticks
// [0, n) for every agent series, each timestamp once.
func rootComplete(root *monitor.Store, sources []string, n int) error {
	for _, src := range sources {
		for _, m := range agentMetrics {
			pts := root.Window(monitor.Key{Source: src, Metric: m, Scope: monitor.ScopeNode, ID: 0}, 0, -1)
			seen := map[float64]bool{}
			for _, p := range pts {
				if seen[p.Time] {
					return fmt.Errorf("%s/%s: timestamp %v appears twice at the root", src, m, p.Time)
				}
				seen[p.Time] = true
			}
			if len(seen) != n {
				var missing []float64
				for i := 0; i < n; i++ {
					if !seen[float64(i)] {
						missing = append(missing, float64(i))
					}
				}
				return fmt.Errorf("%s/%s: root has %d distinct ticks, want %d (missing %v)", src, m, len(seen), n, missing)
			}
		}
	}
	return nil
}

// TestFleetTopologyShardFailoverE2E is the acceptance run: two agents
// shard over a two-receiver pool, each receiver forwards to a root —
// the node → rack → cluster tree.  One shard is killed mid-stream; the
// agents must fail over, and the root's stitched window must hold every
// accepted tick of both agents with no duplicates and no drops.
func TestFleetTopologyShardFailoverE2E(t *testing.T) {
	rootStore, _, rootURL := newReceiver(t)
	shard1 := newShardNode(t, rootURL)
	shard2 := newShardNode(t, rootURL)

	newAgent := func(name string) *Sink {
		s, err := New(Options{
			Targets:      []string{shard1.url, shard2.url},
			Policy:       PolicyShard,
			Source:       name,
			FlushSamples: 1,
			RetryBase:    time.Millisecond,
			// Probes parked out of the run: the kill must be discovered by
			// the write path (passive markdown + reroute), deterministically
			// — probe-driven discovery has its own test.
			ProbeInterval: time.Hour,
			ProbeBackoff:  time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	agentA, agentB := newAgent("agentA"), newAgent("agentB")
	sources := []string{"agentA", "agentB"}

	// Phase 1: both shards alive.  Every series must land on exactly one
	// shard (the ring's owner), and everything must reach the root.
	pushPhase(t, agentA, 0, 25)
	pushPhase(t, agentB, 0, 25)
	split := 0
	for _, src := range sources {
		for _, m := range agentMetrics {
			k := monitor.Key{Source: src, Metric: m, Scope: monitor.ScopeNode, ID: 0}
			n1 := len(shard1.store.Window(k, 0, -1))
			n2 := len(shard2.store.Window(k, 0, -1))
			if n1+n2 != 25 || (n1 != 0 && n2 != 0) {
				t.Fatalf("%s/%s: shards hold %d+%d points, want 25 on exactly one", src, m, n1, n2)
			}
			if n2 == 25 {
				split++
			}
		}
	}
	if split == 0 || split == len(sources)*len(agentMetrics) {
		t.Fatalf("all %d series on one shard; partition did not spread", len(sources)*len(agentMetrics))
	}
	deadline := time.Now().Add(10 * time.Second)
	for rootComplete(rootStore, sources, 25) != nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := rootComplete(rootStore, sources, 25); err != nil {
		t.Fatalf("phase 1 never completed at the root: %v", err)
	}

	// Kill shard 1 mid-stream (listener down, hard).  Phase 2 writes must
	// fail over to shard 2 — including the failed flush's stranded
	// samples — and still reach the root.
	_ = shard1.h.Close()
	pushPhase(t, agentA, 25, 50)
	pushPhase(t, agentB, 25, 50)
	if err := agentA.Close(); err != nil {
		t.Errorf("agentA close: %v", err)
	}
	if err := agentB.Close(); err != nil {
		t.Errorf("agentB close: %v", err)
	}
	for rootComplete(rootStore, sources, 50) != nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := rootComplete(rootStore, sources, 50); err != nil {
		for _, src := range sources {
			for _, m := range agentMetrics {
				k := monitor.Key{Source: src, Metric: m, Scope: monitor.ScopeNode, ID: 0}
				t.Logf("%s/%s: shard1=%d shard2=%d root=%d", src, m,
					len(shard1.store.Window(k, 0, -1)), len(shard2.store.Window(k, 0, -1)),
					len(rootStore.Window(k, 0, -1)))
			}
		}
		t.Logf("shard2 fwd status: %+v", shard2.fwd.Status())
		t.Fatalf("root window incomplete after failover: %v", err)
	}

	// No accepted sample was lost, and the dead shard shows the reroute.
	for name, s := range map[string]*Sink{"agentA": agentA, "agentB": agentB} {
		if d := s.Dropped(); d != 0 {
			t.Errorf("%s dropped %d samples with a healthy shard available", name, d)
		}
		st := s.Status()
		if st[0].Healthy {
			t.Errorf("%s still believes the killed shard is healthy", name)
		}
		if st[0].Failovers == 0 && shardOwnedKeys(s, name) > 0 {
			t.Errorf("%s rerouted nothing off the killed shard", name)
		}
	}

	// Drain the forward pipelines; the root must not need them anymore.
	if err := shard2.disp.Close(); err != nil {
		t.Errorf("shard2 forward close: %v", err)
	}
	if d := shard2.fwd.Dropped(); d != 0 {
		t.Errorf("shard2 forward dropped %d samples", d)
	}
}

// shardOwnedKeys counts how many of an agent's series the pool's first
// target owned before any failure (full ring).
func shardOwnedKeys(s *Sink, source string) int {
	owned := 0
	first := s.Status()[0].Target
	for _, m := range agentMetrics {
		k := monitor.Key{Source: source, Metric: m, Scope: monitor.ScopeNode, ID: 0}
		if s.fullRing.LookupKey(k) == first {
			owned++
		}
	}
	return owned
}

// TestMirrorHAQueryDedupe is the second acceptance leg: an agent
// mirrors to an HA receiver pair, both mirrors forward to one root, so
// the root stores every point twice — and /query must still return each
// Key+timestamp exactly once.
func TestMirrorHAQueryDedupe(t *testing.T) {
	rootStore, rootH, rootURL := newReceiver(t)
	m1 := newShardNode(t, rootURL)
	m2 := newShardNode(t, rootURL)

	agent, err := New(Options{
		Targets:      []string{m1.url, m2.url},
		Policy:       PolicyMirror,
		Source:       "agentHA",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tm := float64(i)
		if err := agent.Write(monitor.Batch{Collector: "perfgroup", Time: tm, Samples: []monitor.Sample{
			{Metric: "bw", Scope: monitor.ScopeNode, ID: 0, Time: tm, Value: tm},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	// Both mirrors hold the full stream; the root eventually holds both
	// copies.
	k := monitor.Key{Source: "agentHA", Metric: "bw", Scope: monitor.ScopeNode, ID: 0}
	waitFor(t, 10*time.Second, func() bool {
		return len(rootStore.Window(k, 0, -1)) >= 40
	}, "root never received both mirrors' copies")

	// The store holds the duplicates (raw HA redundancy) ...
	if n := len(rootStore.Window(k, 0, -1)); n != 40 {
		t.Fatalf("root store has %d points, want 40 (two mirrored copies)", n)
	}
	// ... but /query collapses them: each timestamp exactly once.
	resp, err := http.Get("http://" + rootH.Addr() + "/query?source=agentHA&metric=bw&scope=node&id=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d: %s", resp.StatusCode, body)
	}
	var q struct {
		Points []monitor.Point `json:"points"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Points) != 20 {
		t.Fatalf("/query returned %d points, want 20 deduplicated", len(q.Points))
	}
	for i := 1; i < len(q.Points); i++ {
		if q.Points[i].Time <= q.Points[i-1].Time {
			t.Fatalf("/query points not strictly increasing at %d: %v after %v",
				i, q.Points[i].Time, q.Points[i-1].Time)
		}
	}
	_ = m1.disp.Close()
	_ = m2.disp.Close()
}
