package machine

import (
	"math"
	"testing"

	"likwid/internal/sched"
)

func streamlike() PerElem {
	return PerElem{Cycles: 0.95, MemReadBytes: 16, MemWriteBytes: 8, Streams: 3, Vector: true}
}

func TestOversubscriptionSlowsTasks(t *testing.T) {
	// Two compute-bound tasks timesharing one hardware thread take more
	// than twice as long as one (context-switch penalty).
	run := func(nTasks int) float64 {
		m := newWestmere(t)
		var works []*ThreadWork
		for i := 0; i < nTasks; i++ {
			task := m.OS.Spawn("w", nil)
			if err := m.OS.Pin(task, 0); err != nil {
				t.Fatal(err)
			}
			works = append(works, &ThreadWork{
				Task: task, Elems: 1e7, PerElem: PerElem{Cycles: 2, Vector: true},
			})
		}
		return m.RunPhase(works, 0)
	}
	one, two := run(1), run(2)
	if two < one*2 {
		t.Errorf("2 tasks on one cpu took %v vs %v for one; timesharing missing", two, one)
	}
	if two < one*2.05 {
		t.Errorf("no oversubscription penalty visible: %v vs %v", two, one)
	}
}

func TestSMTSiblingsShareCore(t *testing.T) {
	// Two vector tasks on SMT siblings of one core gain only the SMT
	// factor, not 2x.
	m := newWestmere(t)
	mk := func(cpu int) *ThreadWork {
		task := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(task, cpu); err != nil {
			t.Fatal(err)
		}
		return &ThreadWork{Task: task, Elems: 1e7, PerElem: PerElem{Cycles: 2, Vector: true}}
	}
	// cpu 0 and its sibling cpu 12.
	works := []*ThreadWork{mk(0), mk(12)}
	elapsed := m.RunPhase(works, 0)
	single := 2 * 1e7 / m.Arch.ClockHz()
	wantBoth := 2 * single / m.Arch.Perf.SMTVectorGain
	if math.Abs(elapsed-wantBoth) > wantBoth*0.05 {
		t.Errorf("SMT pair elapsed %v, want ≈ %v (gain %v)", elapsed, wantBoth, m.Arch.Perf.SMTVectorGain)
	}
}

func TestRemoteMemoryPenaltyEndToEnd(t *testing.T) {
	run := func(remote float64) float64 {
		m := newWestmere(t)
		task := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(task, 0); err != nil {
			t.Fatal(err)
		}
		pe := streamlike()
		pe.RemoteFraction = remote
		w := &ThreadWork{Task: task, Elems: 5e7, PerElem: pe}
		elapsed := m.RunPhase([]*ThreadWork{w}, 0)
		return 24 * 5e7 / elapsed
	}
	local, remote := run(0), run(1)
	if remote >= local {
		t.Fatalf("all-remote bandwidth %v >= local %v", remote, local)
	}
	want := local * m0RemoteFactor(t)
	if math.Abs(remote-want) > want*0.10 {
		t.Errorf("remote bandwidth %v, want ≈ %v", remote, want)
	}
}

func m0RemoteFactor(t *testing.T) float64 {
	t.Helper()
	m := newWestmere(t)
	return m.Arch.Perf.RemoteFactor
}

func TestExplicitMemBWCap(t *testing.T) {
	m := newWestmere(t)
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	pe := streamlike()
	pe.MemBWCap = 2e9
	w := &ThreadWork{Task: task, Elems: 2e7, PerElem: pe}
	elapsed := m.RunPhase([]*ThreadWork{w}, 0)
	bw := 24 * 2e7 / elapsed
	if math.Abs(bw-2e9) > 2e9*0.05 {
		t.Errorf("capped bandwidth = %v, want 2e9", bw)
	}
}

func TestL3BandwidthBound(t *testing.T) {
	// A task with pure L3 traffic is bound by the socket L3 bandwidth.
	m := newWestmere(t)
	var works []*ThreadWork
	for cpu := 0; cpu < 4; cpu++ {
		task := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(task, cpu); err != nil {
			t.Fatal(err)
		}
		works = append(works, &ThreadWork{
			Task: task, Elems: 1e8,
			PerElem: PerElem{Cycles: 0.1, L3Bytes: 24, Vector: true},
		})
	}
	elapsed := m.RunPhase(works, 0)
	l3bw := 4 * 24 * 1e8 / elapsed
	want := m.Arch.Perf.L3BW
	if math.Abs(l3bw-want) > want*0.06 {
		t.Errorf("aggregate L3 bandwidth = %v, want ≈ %v", l3bw, want)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		m, err := NewNamed("westmereEP", Options{Policy: sched.PolicySpread, Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		master := m.OS.Spawn("master", nil)
		team, err := sched.SpawnTeam(m.OS, sched.RuntimeIntelOMP, 6, master, nil)
		if err != nil {
			t.Fatal(err)
		}
		var works []*ThreadWork
		for _, w := range team.Workers {
			works = append(works, &ThreadWork{Task: w, Elems: 2e6, PerElem: streamlike()})
		}
		return m.RunPhase(works, 0)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different elapsed: %v vs %v", a, b)
	}
}

func TestUnpinnedMigrationChangesOutcomes(t *testing.T) {
	// Different seeds must produce different unpinned outcomes (the whole
	// premise of the variance figures).
	results := map[float64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		m, err := NewNamed("westmereEP", Options{Policy: sched.PolicySpread, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		master := m.OS.Spawn("master", nil)
		team, err := sched.SpawnTeam(m.OS, sched.RuntimeIntelOMP, 6, master, nil)
		if err != nil {
			t.Fatal(err)
		}
		var works []*ThreadWork
		for _, w := range team.Workers {
			works = append(works, &ThreadWork{Task: w, Elems: 2e6, PerElem: streamlike()})
		}
		results[m.RunPhase(works, 0)] = true
	}
	if len(results) < 3 {
		t.Errorf("only %d distinct unpinned outcomes over 8 seeds", len(results))
	}
}

func TestInjectValidation(t *testing.T) {
	m := newWestmere(t)
	if err := m.Inject(-1, Counts{EvInstr: 1}); err == nil {
		t.Error("negative cpu must fail")
	}
	if err := m.Inject(24, Counts{EvInstr: 1}); err == nil {
		t.Error("out-of-range cpu must fail")
	}
}

func TestZeroCycleWorkCompletesInstantly(t *testing.T) {
	m := newWestmere(t)
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	w := &ThreadWork{Task: task, Elems: 1e6, PerElem: PerElem{}}
	elapsed := m.RunPhase([]*ThreadWork{w}, 0)
	// One slice at most: work with no cost completes immediately.
	if elapsed > 2*DefaultSlice {
		t.Errorf("free work took %v", elapsed)
	}
	if w.Remaining() > 1e-9 {
		t.Error("work not completed")
	}
}
