package derive

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// fleetStore builds a store with a small fleet of flops_dp series:
//
//	nodeA/flops_dp{job=lbm}  points (0,10) (10,20)   mean 15, slope 1
//	nodeB/flops_dp{job=lbm}  point  (10,30)          mean 30
//	nodeC/flops_dp{job=cfd}  points (0,100) (10,100) mean 100, slope 0
func fleetStore(t *testing.T) *monitor.Store {
	t.Helper()
	st := monitor.NewStore(64)
	lbm, err := monitor.MakeLabels(map[string]string{"job": "lbm"})
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := monitor.MakeLabels(map[string]string{"job": "cfd"})
	if err != nil {
		t.Fatal(err)
	}
	a := monitor.Key{Source: "nodeA", Metric: "flops_dp", Scope: monitor.ScopeNode, Labels: lbm}
	b := monitor.Key{Source: "nodeB", Metric: "flops_dp", Scope: monitor.ScopeNode, Labels: lbm}
	c := monitor.Key{Source: "nodeC", Metric: "flops_dp", Scope: monitor.ScopeNode, Labels: cfd}
	st.Append(a, monitor.Point{Time: 0, Value: 10})
	st.Append(a, monitor.Point{Time: 10, Value: 20})
	st.Append(b, monitor.Point{Time: 10, Value: 30})
	st.Append(c, monitor.Point{Time: 0, Value: 100})
	st.Append(c, monitor.Point{Time: 10, Value: 100})
	return st
}

func mustRule(t *testing.T, line string) *Rule {
	t.Helper()
	r, err := ParseRule(line, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newTestEngine(t *testing.T, st *monitor.Store, rules ...*Rule) *Engine {
	t.Helper()
	e, err := NewEngine(Options{Store: st, Clock: monitor.NewFakeClock()}, rules)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func latestValue(t *testing.T, st *monitor.Store, k monitor.Key) float64 {
	t.Helper()
	p, ok := st.Latest(k)
	if !ok {
		t.Fatalf("no output series %v", k)
	}
	return p.Value
}

func TestEvalFns(t *testing.T) {
	tests := []struct {
		rule string
		want float64
	}{
		// Per-member window means 15, 30, 100 — sum adds them.
		{`out = sum(flops_dp) over 30s`, 145},
		{`out = avg(flops_dp) over 30s`, 145.0 / 3},
		// min/max are extrema across all member points.
		{`out = min(flops_dp) over 30s`, 10},
		{`out = max(flops_dp) over 30s`, 100},
		{`out = count(flops_dp) over 30s`, 3},
		// rate sums per-member slopes; nodeB's single point contributes
		// nothing (a slope needs two instants).
		{`out = rate(flops_dp) over 30s`, 1},
	}
	for _, tt := range tests {
		t.Run(tt.rule, func(t *testing.T) {
			st := fleetStore(t)
			e := newTestEngine(t, st, mustRule(t, tt.rule))
			e.EvalNow()
			out := monitor.Key{Metric: "out", Scope: monitor.ScopeNode}
			if got := latestValue(t, st, out); got != tt.want {
				t.Fatalf("value = %v, want %v", got, tt.want)
			}
			p, _ := st.Latest(out)
			if p.Time != 10 {
				t.Fatalf("emit time = %v, want the newest input time 10", p.Time)
			}
		})
	}
}

func TestEvalGroupBySource(t *testing.T) {
	st := fleetStore(t)
	e := newTestEngine(t, st, mustRule(t, `cluster_flops = sum(flops_dp) by (source) over 30s`))
	e.EvalNow()
	want := map[string]float64{"nodeA": 15, "nodeB": 30, "nodeC": 100}
	for source, v := range want {
		k := monitor.Key{Source: source, Metric: "cluster_flops", Scope: monitor.ScopeNode}
		if got := latestValue(t, st, k); got != v {
			t.Errorf("%s = %v, want %v", source, got, v)
		}
	}
	sts := e.RuleStatuses()
	if len(sts) != 1 || sts[0].Series != 3 || sts[0].Groups != 3 || sts[0].Emitted != 3 {
		t.Fatalf("status = %+v, want series=3 groups=3 emitted=3", sts)
	}
}

func TestEvalGroupByLabel(t *testing.T) {
	st := fleetStore(t)
	// An unlabelled series lands in the group without the label.
	bare := monitor.Key{Source: "nodeD", Metric: "flops_dp", Scope: monitor.ScopeNode}
	st.Append(bare, monitor.Point{Time: 10, Value: 7})

	e := newTestEngine(t, st, mustRule(t, `job_flops = sum(flops_dp) by (job) over 30s`))
	e.EvalNow()

	lbm, _ := monitor.MakeLabels(map[string]string{"job": "lbm"})
	cfd, _ := monitor.MakeLabels(map[string]string{"job": "cfd"})
	if got := latestValue(t, st, monitor.Key{Metric: "job_flops", Scope: monitor.ScopeNode, Labels: lbm}); got != 45 {
		t.Errorf("job=lbm = %v, want 45", got)
	}
	if got := latestValue(t, st, monitor.Key{Metric: "job_flops", Scope: monitor.ScopeNode, Labels: cfd}); got != 100 {
		t.Errorf("job=cfd = %v, want 100", got)
	}
	if got := latestValue(t, st, monitor.Key{Metric: "job_flops", Scope: monitor.ScopeNode}); got != 7 {
		t.Errorf("unlabelled group = %v, want 7", got)
	}
}

func TestEvalWindowExcludesOldPoints(t *testing.T) {
	st := monitor.NewStore(64)
	k := monitor.Key{Source: "nodeA", Metric: "bw", Scope: monitor.ScopeNode}
	st.Append(k, monitor.Point{Time: 0, Value: 1000}) // outside "over 30s" of t=100
	st.Append(k, monitor.Point{Time: 90, Value: 10})
	st.Append(k, monitor.Point{Time: 100, Value: 20})
	e := newTestEngine(t, st, mustRule(t, `out = avg(bw) over 30s`))
	e.EvalNow()
	if got := latestValue(t, st, monitor.Key{Metric: "out", Scope: monitor.ScopeNode}); got != 15 {
		t.Fatalf("avg = %v, want 15 (the t=0 point is outside the window)", got)
	}
}

func TestEvalDedupeGuard(t *testing.T) {
	st := fleetStore(t)
	e := newTestEngine(t, st, mustRule(t, `out = sum(flops_dp) over 30s`))
	out := monitor.Key{Metric: "out", Scope: monitor.ScopeNode}

	e.EvalNow()
	e.EvalNow() // inputs did not advance: no duplicate point
	if n := st.Len(out); n != 1 {
		t.Fatalf("output has %d points after idle re-eval, want 1", n)
	}

	a := monitor.Key{Source: "nodeA", Metric: "flops_dp", Scope: monitor.ScopeNode}
	lbm, _ := monitor.MakeLabels(map[string]string{"job": "lbm"})
	a.Labels = lbm
	st.Append(a, monitor.Point{Time: 20, Value: 40})
	e.EvalNow()
	if n := st.Len(out); n != 2 {
		t.Fatalf("output has %d points after inputs advanced, want 2", n)
	}
	sts := e.RuleStatuses()
	if sts[0].Evals != 3 || sts[0].Emitted != 2 {
		t.Fatalf("status = %+v, want evals=3 emitted=2", sts[0])
	}
}

func TestEvalChaining(t *testing.T) {
	st := fleetStore(t)
	rules, _, err := ParseFile(`
cluster_flops = sum(flops_dp) over 30s
sweep = count(*) over 30s
ramp = rate(cluster_flops) over 1m
`)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, st, rules...)
	e.EvalNow()
	// The wildcard sweep sees the 3 collected series, never cluster_flops.
	if got := latestValue(t, st, monitor.Key{Metric: "sweep", Scope: monitor.ScopeNode}); got != 3 {
		t.Fatalf("sweep = %v, want 3 (wildcard must skip derived outputs)", got)
	}
	// The explicit name feeds on the roll-up once it has two points.
	a := monitor.Key{Source: "nodeA", Metric: "flops_dp", Scope: monitor.ScopeNode}
	lbm, _ := monitor.MakeLabels(map[string]string{"job": "lbm"})
	a.Labels = lbm
	st.Append(a, monitor.Point{Time: 20, Value: 40})
	e.EvalNow()
	if _, ok := st.Latest(monitor.Key{Metric: "ramp", Scope: monitor.ScopeNode}); !ok {
		t.Fatal("ramp must chain on cluster_flops")
	}
}

func TestEvalNoMatchReportsError(t *testing.T) {
	st := monitor.NewStore(16)
	var mu sync.Mutex
	var errs []string
	e, err := NewEngine(Options{
		Store: st,
		Clock: monitor.NewFakeClock(),
		OnError: func(rule string, err error) {
			mu.Lock()
			errs = append(errs, rule+": "+err.Error())
			mu.Unlock()
		},
	}, []*Rule{mustRule(t, `out = sum(nothing) over 30s`)})
	if err != nil {
		t.Fatal(err)
	}
	e.EvalNow()
	sts := e.RuleStatuses()
	if !strings.Contains(sts[0].LastError, "no series matches") {
		t.Fatalf("last_error = %q, want a no-match report", sts[0].LastError)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 1 || !strings.Contains(errs[0], "out:") {
		t.Fatalf("OnError calls = %v", errs)
	}
}

func TestReloadKeepsBookkeeping(t *testing.T) {
	st := fleetStore(t)
	e := newTestEngine(t, st, mustRule(t, `out = sum(flops_dp) over 30s`))
	e.EvalNow()

	// Same spec + a new rule: "out" keeps its counters.
	e.Reload([]*Rule{
		mustRule(t, `out = sum(flops_dp) over 30s`),
		mustRule(t, `extra = count(flops_dp) over 30s`),
	})
	sts := e.RuleStatuses()
	if len(sts) != 2 || sts[0].Evals != 1 || sts[1].Evals != 0 {
		t.Fatalf("statuses after reload = %+v", sts)
	}

	// Dropping a rule drops its bookkeeping and its derived-set entry, so
	// a wildcard sweep may feed on the orphaned output series.
	e.Reload([]*Rule{mustRule(t, `sweep = count(*) over 30s`)})
	e.EvalNow()
	// 3 collected + the orphaned "out" output (no longer a live rule's
	// name, so the wildcard no longer skips it).
	if got := latestValue(t, st, monitor.Key{Metric: "sweep", Scope: monitor.ScopeNode}); got != 4 {
		t.Fatalf("sweep after reload = %v, want 4", got)
	}
}

// collectSink captures dispatched batches.
type collectSink struct {
	mu      sync.Mutex
	batches []monitor.Batch
}

func (c *collectSink) Name() string { return "collect" }
func (c *collectSink) Write(b monitor.Batch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches = append(c.batches, b)
	return nil
}
func (c *collectSink) Close() error { return nil }

func TestEvalPublishesBatch(t *testing.T) {
	st := fleetStore(t)
	sink := &collectSink{}
	d := monitor.NewDispatcher(8, sink)
	e, err := NewEngine(Options{
		Store:      st,
		Clock:      monitor.NewFakeClock(),
		Dispatcher: d,
	}, []*Rule{mustRule(t, `cluster_flops = sum(flops_dp) by (source) over 30s`)})
	if err != nil {
		t.Fatal(err)
	}
	e.EvalNow()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(sink.batches))
	}
	b := sink.batches[0]
	if b.Collector != "derive/cluster_flops" || len(b.Samples) != 3 || b.Time != 10 {
		t.Fatalf("batch = %+v, want derive/cluster_flops with 3 samples at t=10", b)
	}
	// Deterministic emit order: groups sorted by group key (source here).
	if b.Samples[0].Source != "nodeA" || b.Samples[2].Source != "nodeC" {
		t.Fatalf("batch order = %v %v %v, want nodeA..nodeC",
			b.Samples[0].Source, b.Samples[1].Source, b.Samples[2].Source)
	}
}

func TestEngineTelemetry(t *testing.T) {
	st := fleetStore(t)
	reg := telemetry.New()
	e, err := NewEngine(Options{
		Store:     st,
		Clock:     monitor.NewFakeClock(),
		Telemetry: reg,
	}, []*Rule{mustRule(t, `out = sum(flops_dp) over 30s`)})
	if err != nil {
		t.Fatal(err)
	}
	e.EvalNow()
	e.EvalNow()
	if v := reg.Counter("likwid_derive_evals_total").Value(); v != 2 {
		t.Errorf("evals_total = %v, want 2", v)
	}
	if v := reg.Counter("likwid_derive_emitted_total").Value(); v != 1 {
		t.Errorf("emitted_total = %v, want 1 (second eval deduped)", v)
	}
}

func TestRunEvaluatesOnCadence(t *testing.T) {
	st := fleetStore(t)
	clock := monitor.NewFakeClock()
	e, err := NewEngine(Options{Store: st, Clock: clock, DefaultEvery: 10 * time.Second},
		[]*Rule{mustRule(t, `out = sum(flops_dp) over 30s`)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { e.Run(ctx); close(done) }()

	out := monitor.Key{Metric: "out", Scope: monitor.ScopeNode}
	deadline := time.Now().Add(5 * time.Second)
	for {
		clock.Advance(10 * time.Second)
		if _, ok := st.Latest(out); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Run never evaluated the rule")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}
