package pin

import (
	"testing"

	"likwid/internal/hwdef"
)

func TestDomainsWestmere(t *testing.T) {
	domains := Domains(hwdef.WestmereEP)
	byTag := map[string][]int{}
	for _, d := range domains {
		byTag[d.Tag] = d.Procs
	}
	// Node domain: all 24, physical cores first.
	n := byTag["N"]
	if len(n) != 24 {
		t.Fatalf("N domain = %d procs, want 24", len(n))
	}
	for i := 0; i < 12; i++ {
		if n[i] != i {
			t.Fatalf("N domain physical part = %v", n[:12])
		}
	}
	if n[12] != 12 {
		t.Errorf("N domain SMT part starts at %d, want 12", n[12])
	}
	// Socket domains.
	s1 := byTag["S1"]
	want := []int{6, 7, 8, 9, 10, 11, 18, 19, 20, 21, 22, 23}
	for i, p := range want {
		if s1[i] != p {
			t.Fatalf("S1 = %v, want %v", s1, want)
		}
	}
	// LLC domains coincide with sockets on Westmere.
	if len(byTag["C0"]) != 12 || byTag["C0"][0] != 0 {
		t.Errorf("C0 = %v", byTag["C0"])
	}
	if len(byTag["C1"]) != 12 || byTag["C1"][0] != 6 {
		t.Errorf("C1 = %v", byTag["C1"])
	}
	// Memory domains mirror sockets.
	if len(byTag["M0"]) != 12 || byTag["M0"][0] != 0 {
		t.Errorf("M0 = %v", byTag["M0"])
	}
}

func TestDomainsCore2LLCGroups(t *testing.T) {
	// Core 2 Quad: L2 (LLC) shared per die pair -> C0 = {0,1}, C1 = {2,3}.
	domains := Domains(hwdef.Core2Quad)
	byTag := map[string][]int{}
	for _, d := range domains {
		byTag[d.Tag] = d.Procs
	}
	if got := byTag["C0"]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("C0 = %v, want [0 1]", got)
	}
	if got := byTag["C1"]; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("C1 = %v, want [2 3]", got)
	}
}

func TestParseCPUExpressionPhysicalFallback(t *testing.T) {
	got, err := ParseCPUExpression(hwdef.WestmereEP, "0-2,8")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 8}
	for i, p := range want {
		if got[i] != p {
			t.Fatalf("= %v, want %v", got, want)
		}
	}
}

func TestParseCPUExpressionSocketLogical(t *testing.T) {
	// S1:0-2 selects socket 1's first three *physical* cores: 6, 7, 8.
	got, err := ParseCPUExpression(hwdef.WestmereEP, "S1:0-2")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{6, 7, 8}
	if len(got) != 3 {
		t.Fatalf("= %v, want %v", got, want)
	}
	for i, p := range want {
		if got[i] != p {
			t.Fatalf("= %v, want %v", got, want)
		}
	}
	// Logical indices past the physical cores reach the SMT siblings.
	got, err = ParseCPUExpression(hwdef.WestmereEP, "S0:6-7")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 12 || got[1] != 13 {
		t.Errorf("S0:6-7 = %v, want [12 13] (SMT siblings)", got)
	}
}

func TestParseCPUExpressionChained(t *testing.T) {
	got, err := ParseCPUExpression(hwdef.WestmereEP, "S0:0-1@S1:0-1")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 6, 7}
	for i, p := range want {
		if got[i] != p {
			t.Fatalf("= %v, want %v", got, want)
		}
	}
}

func TestParseCPUExpressionErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"S9:0-1",     // no such socket
		"S0:0-99",    // outside the domain
		"S0",         // missing list — contains no colon, parsed as physical -> error
		"X0:0",       // unknown domain kind
		"S0:0@S0:0",  // duplicate processor
		"S0:",        // empty list
		"S0:0-1@@S1", // malformed chain
	} {
		if _, err := ParseCPUExpression(hwdef.WestmereEP, bad); err == nil {
			t.Errorf("expression %q must fail", bad)
		}
	}
}

func TestDomainByTag(t *testing.T) {
	d, err := DomainByTag(hwdef.Istanbul, "S1")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Procs) != 6 || d.Procs[0] != 6 {
		t.Errorf("Istanbul S1 = %v", d.Procs)
	}
	if _, err := DomainByTag(hwdef.Istanbul, "Q3"); err == nil {
		t.Error("unknown tag must fail")
	}
}
