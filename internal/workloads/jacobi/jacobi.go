// Package jacobi models the paper's second and third case studies: an
// iterative 3D Jacobi smoother with a 7-point stencil, built on POSIX
// threads, in three variants (§IV-B, §IV-C):
//
//   - Threaded: straightforward domain decomposition with temporal stores.
//     Every lattice-site update (LUP) reads the source line, write-allocates
//     and writes back the destination: 24 B/LUP of memory traffic.
//   - ThreadedNT: the same with non-temporal stores, eliminating the write
//     allocate: 16 B/LUP ("nontemporal stores save about 1/3 of the data
//     transfer volume").
//   - Wavefront: temporal blocking via pipeline-parallel processing [8]:
//     a thread group passes blocks through the shared L3, so only the
//     leading stream touches memory (~5.3 B/LUP), but a single stream
//     cannot saturate the bus — which is why the 4.5-fold traffic
//     reduction buys only a 1.7× speedup (Table II discussion).
//
// Placement is everything for the wavefront variant (Fig. 11): the thread
// group must share one L3.  Splitting the pipeline across sockets destroys
// the cache coupling — intermediate hand-offs cross QPI and go through
// memory — and performance drops below the naive threaded baseline.
package jacobi

import (
	"fmt"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/sched"
)

// Variant selects the stencil implementation.
type Variant int

// The three code versions of Table II.
const (
	Threaded Variant = iota
	ThreadedNT
	Wavefront
)

// String names the variant as in Table II.
func (v Variant) String() string {
	switch v {
	case ThreadedNT:
		return "threaded (NT)"
	case Wavefront:
		return "blocked"
	default:
		return "threaded"
	}
}

// Placement selects the thread-core mapping of Fig. 11.
type Placement int

// Placements.
const (
	// OneSocket pins the thread group to the physical cores of socket 0
	// (likwid-pin -c 0-3): the wavefront's shared-L3 coupling works.
	OneSocket Placement = iota
	// SplitPairs pins pairs of threads to different sockets: the
	// hazardous mapping of Fig. 11 (squares).
	SplitPairs
)

// Config is one Jacobi run.
type Config struct {
	Arch      *hwdef.Arch
	Variant   Variant
	Size      int // cubic grid edge length
	Iters     int // sweeps over the grid
	Threads   int // worker threads (4 in the paper's runs)
	Placement Placement
	Seed      int64
}

// Result of one run.
type Result struct {
	MLUPS      float64 // million lattice-site updates per second
	ElapsedSec float64
	LUPs       float64
}

// LUPs returns the total lattice updates of a configuration.
func (cfg Config) LUPs() float64 {
	n := float64(cfg.Size)
	return n * n * n * float64(cfg.Iters)
}

// TableIIConfig returns the configuration reproducing Table II: the
// wavefront sweet spot around N=300 with enough sweeps for ≈3.1e9 LUPs.
func TableIIConfig(a *hwdef.Arch, v Variant) Config {
	return Config{Arch: a, Variant: v, Size: 300, Iters: 116, Threads: 4, Placement: OneSocket}
}

// model builds the per-LUP cost vector and the pipeline efficiency for a
// configuration.  See DESIGN.md for the calibration; the building blocks:
//
//   - L3 fit: when both grids fit the shared L3 the memory traffic
//     disappears and the run is L3/core bound (small sizes in Fig. 11).
//   - Wavefront fill: the pipeline needs N wavefronts to fill/drain per
//     block, an efficiency of roughly N/(N+60) that costs core cycles.
//   - Block shrink: larger grids shrink the temporal block, growing the
//     wavefront's residual memory traffic.
func (cfg Config) model() (pe machine.PerElem, eff float64, err error) {
	if cfg.Size < 8 {
		return pe, 0, fmt.Errorf("jacobi: grid size %d too small", cfg.Size)
	}
	n := float64(cfg.Size)
	footprint := 2 * 8 * n * n * n // two grids of doubles
	llc, ok := cfg.Arch.LastLevelCache()
	if !ok {
		return pe, 0, fmt.Errorf("jacobi: %s has no last-level cache", cfg.Arch.Name)
	}
	fit := 0.9 * float64(llc.Size()) / footprint
	if fit > 1 {
		fit = 1
	}
	mem := 1 - fit

	eff = 1
	switch cfg.Variant {
	case Threaded:
		pe = machine.PerElem{
			Cycles:        1.8,
			MemReadBytes:  16 * mem, // source line + write allocate
			MemWriteBytes: 8 * mem,  // write-back
			L3Bytes:       24,
			Streams:       3,
			Vector:        true,
		}
	case ThreadedNT:
		pe = machine.PerElem{
			Cycles:       1.8,
			MemReadBytes: 8 * mem, // source line only
			MemNTBytes:   8,       // NT stores always go to memory
			L3Bytes:      16,
			Streams:      2,
			Vector:       true,
		}
	case Wavefront:
		eff = n / (n + 60) // pipeline fill/drain, boundary sync
		if cfg.Placement == SplitPairs {
			// The shared-L3 coupling is gone: intermediate hand-offs
			// bounce through memory with threaded-like traffic, and the
			// cross-socket loads throttle each core's fill buffers by
			// the QPI latency (the engine's remote bandwidth cap).
			pe = machine.PerElem{
				Cycles:         4.0,
				MemReadBytes:   16,
				MemWriteBytes:  8,
				RemoteFraction: 0.6,
				L3Bytes:        24,
				Streams:        2,
				Vector:         true,
			}
			break
		}
		// Correct pinning: only the leading stream misses to memory —
		// one stream for the whole thread group, expressed as a group
		// bandwidth cap split across the workers.  Larger grids shrink
		// the temporal block and leak more traffic.
		growth := 1.0
		if n > 350 {
			growth += 0.15 * (n - 350) / 150
		}
		pe = machine.PerElem{
			Cycles:        4.0,
			MemReadBytes:  2.65 * growth * mem,
			MemWriteBytes: 2.63 * growth * mem,
			L3Bytes:       24,
			Streams:       1,
			MemBWCap:      cfg.Arch.Perf.SingleStreamBW / float64(cfg.Threads),
			Vector:        true,
		}
	default:
		return pe, 0, fmt.Errorf("jacobi: unknown variant %d", cfg.Variant)
	}

	// Shared per-LUP instruction profile of the assembly kernels.
	pe.Counts = machine.Counts{
		machine.EvInstr:         12,
		machine.EvFlopsPackedDP: 3, // 6 flops/LUP packed
		machine.EvFlopsScalarDP: 1, // boundary remainder
		machine.EvLoads:         7,
		machine.EvStores:        1,
		machine.EvL1LinesIn:     24.0 / 64,
		machine.EvL2LinesIn:     24.0 / 64,
	}
	return pe, eff, nil
}

// cpuList returns the pin targets for the placement.
func (cfg Config) cpuList() ([]int, error) {
	a := cfg.Arch
	switch cfg.Placement {
	case SplitPairs:
		if a.Sockets < 2 {
			return nil, fmt.Errorf("jacobi: split placement needs two sockets")
		}
		var cpus []int
		half := cfg.Threads / 2
		for i := 0; i < half; i++ {
			cpus = append(cpus, i) // socket 0 physical cores
		}
		for i := 0; i < cfg.Threads-half; i++ {
			cpus = append(cpus, a.CoresPerSocket+i) // socket 1
		}
		return cpus, nil
	default:
		if cfg.Threads > a.CoresPerSocket {
			return nil, fmt.Errorf("jacobi: %d threads exceed one socket (%d cores)", cfg.Threads, a.CoresPerSocket)
		}
		var cpus []int
		for i := 0; i < cfg.Threads; i++ {
			cpus = append(cpus, i)
		}
		return cpus, nil
	}
}

// Instance is a prepared run: workloads can be executed on an externally
// owned machine so likwid-perfCtr can measure them (Table II).
type Instance struct {
	M     *machine.Machine
	Team  *sched.Team
	Works []*machine.ThreadWork
	cfg   Config
}

// Prepare builds the thread team (pinned per the placement) and the work
// descriptions on the given machine; a nil machine gets a fresh one.
func Prepare(cfg Config, m *machine.Machine) (*Instance, error) {
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("jacobi: need at least one thread")
	}
	if cfg.Iters < 1 {
		return nil, fmt.Errorf("jacobi: need at least one iteration")
	}
	if m == nil {
		m = machine.New(cfg.Arch, machine.Options{Policy: sched.PolicySpread, Seed: cfg.Seed})
	}
	pe, eff, err := cfg.model()
	if err != nil {
		return nil, err
	}
	cpus, err := cfg.cpuList()
	if err != nil {
		return nil, err
	}

	master := m.OS.Spawn("jacobi", nil)
	team, err := sched.SpawnTeam(m.OS, sched.RuntimePthreads, cfg.Threads, master, nil)
	if err != nil {
		return nil, err
	}
	for i, w := range team.Workers {
		if err := m.OS.Pin(w, cpus[i%len(cpus)]); err != nil {
			return nil, err
		}
	}

	// Pipeline efficiency: inflate the element count so fill/drain
	// bubbles cost core time, and scale the per-element quantities down
	// so event totals and traffic stay exact per true LUP.
	lups := cfg.LUPs()
	elemsPerThread := lups / eff / float64(cfg.Threads)
	scaled := pe
	scaled.MemReadBytes *= eff
	scaled.MemWriteBytes *= eff
	scaled.MemNTBytes *= eff
	scaled.L3Bytes *= eff
	scaled.Counts = make(machine.Counts, len(pe.Counts))
	for k, v := range pe.Counts {
		scaled.Counts[k] = v * eff
	}

	works := make([]*machine.ThreadWork, len(team.Workers))
	for i, w := range team.Workers {
		works[i] = &machine.ThreadWork{Task: w, Elems: elemsPerThread, PerElem: scaled}
	}
	return &Instance{M: m, Team: team, Works: works, cfg: cfg}, nil
}

// Run executes the prepared instance.
func (in *Instance) Run() (Result, error) {
	elapsed := in.M.RunPhase(in.Works, 0)
	if elapsed <= 0 {
		return Result{}, fmt.Errorf("jacobi: zero elapsed time")
	}
	lups := in.cfg.LUPs()
	return Result{
		MLUPS:      lups / elapsed / 1e6,
		ElapsedSec: elapsed,
		LUPs:       lups,
	}, nil
}

// Run prepares and executes in one step on a fresh machine.
func Run(cfg Config) (Result, error) {
	in, err := Prepare(cfg, nil)
	if err != nil {
		return Result{}, err
	}
	return in.Run()
}
