package derive

import (
	"fmt"
	"strings"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/spec"
)

// The derive spec language, one declaration per line:
//
//	NAME = FN([SOURCE/]METRIC[{LABEL="VALUE",...}][, SCOPE]) [by (DIM, ...)] over DUR [every DUR]
//
//	cluster_flops = sum(flops_dp{cluster="emmy"}) by (source) over 30s every 10s
//	fleet_bw      = avg(memory_bandwidth_mbytes_s, socket) over 1m
//	job_nodes     = count(*/dp_mflops_s) by (job) over 30s
//	ramp          = rate(cluster_flops) over 1m
//
// FN is sum | avg | min | max | count | rate; SCOPE is thread | core |
// socket | node (default node); DIM is "source" or a label name.  The
// selector follows the alert DSL's shape exactly — quoted metrics, '*'
// wildcards, {label="value"} matchers — but an omitted SOURCE matches
// every source (a roll-up sweeps the fleet), not only local series.
//
// The same file declares ingest routes, applied by the receiver before
// samples are interned:
//
//	route drop SELECTOR
//	route rename SELECTOR -> NEWMETRIC
//	route relabel SELECTOR set LABEL="VALUE"[, LABEL=""...]
//
//	route drop */cpu_temp_core*
//	route rename */DP_MFLOPS -> flops_dp
//	route relabel node*/flops_dp set cluster="emmy", rack=""
//
// A relabel with an empty value deletes the label.  Routes run in file
// order per sample; a drop ends the sample's processing and a rename
// feeds later routes.  Blank lines and '#' comments are ignored.
// Errors carry line:column positions so a typo in a 50-line file is
// findable.

// ParseRule parses one rule line; lineNo is the 1-based line for error
// positions.
func ParseRule(line string, lineNo int) (*Rule, error) {
	s := spec.New("derive", line, lineNo)

	name, col := s.Word()
	if name == "" {
		return nil, s.Errf(col, "expected rule name")
	}
	if !spec.ValidName(name) {
		return nil, s.Errf(col, "bad rule name %q (letters, digits, '_', '-', '.')", name)
	}
	if name == "route" {
		return nil, s.Errf(col, "\"route\" is the routing keyword, not a usable rule name")
	}
	if err := s.Expect('=', "after the rule name"); err != nil {
		return nil, err
	}

	fnWord, col := s.Word()
	fn, ok := parseFn(fnWord)
	if !ok {
		return nil, s.Errf(col, "unknown function %q (sum, avg, min, max, count, rate)", fnWord)
	}
	if err := s.Expect('(', "after the function"); err != nil {
		return nil, err
	}

	source, metric, col, err := s.Selector()
	if err != nil {
		return nil, err
	}
	if metric == "" {
		return nil, s.Errf(col, "expected a metric selector")
	}
	matchers, err := s.Matchers()
	if err != nil {
		return nil, err
	}

	scope := monitor.ScopeNode
	if s.Accept(',') {
		scopeWord, col := s.Word()
		if scope, err = monitor.ParseScope(scopeWord); err != nil {
			return nil, s.Errf(col, "bad scope %q (thread, core, socket, node)", scopeWord)
		}
	}
	if err := s.Expect(')', "after the selector"); err != nil {
		return nil, err
	}

	kw, col := s.Word()
	var by []string
	if kw == "by" {
		if by, err = parseBy(s); err != nil {
			return nil, err
		}
		kw, col = s.Word()
	}
	if kw != "over" {
		return nil, s.Errf(col, "expected \"over DURATION\", got %q", kw)
	}
	over, err := s.Duration("window (\"over\")", false)
	if err != nil {
		return nil, err
	}

	every := time.Duration(0)
	if !s.EOF() {
		kw, col := s.Word()
		if kw != "every" {
			return nil, s.Errf(col, "unexpected %q (only \"every DURATION\" may follow)", kw)
		}
		if every, err = s.Duration("evaluation (\"every\")", false); err != nil {
			return nil, err
		}
	}
	if !s.EOF() {
		w, col := s.Word()
		if w == "" {
			col = s.Col()
			w = string(s.Peek())
		}
		return nil, s.Errf(col, "unexpected trailing %q", w)
	}

	return &Rule{
		Name:     name,
		Fn:       fn,
		Source:   source,
		Metric:   metric,
		Matchers: matchers,
		Scope:    scope,
		By:       by,
		Over:     over.Seconds(),
		Every:    every,
		Line:     lineNo,
	}, nil
}

// parseBy reads the "(DIM, DIM, ...)" group clause after "by".
func parseBy(s *spec.Scanner) ([]string, error) {
	if err := s.Expect('(', "after \"by\""); err != nil {
		return nil, err
	}
	var by []string
	seen := map[string]bool{}
	for {
		dim, col := s.Word()
		if dim == "" {
			return nil, s.Errf(col, "expected a grouping dimension (\"source\" or a label name)")
		}
		if dim != BySource {
			if !monitor.ValidLabelName(dim) {
				return nil, s.Errf(col, "bad grouping label %q (letters, digits, '_'; not starting with a digit)", dim)
			}
			if monitor.ReservedLabelName(dim) {
				return nil, s.Errf(col, "grouping dimension %q is reserved; only \"source\" groups by the key itself", dim)
			}
		}
		if seen[dim] {
			return nil, s.Errf(col, "duplicate grouping dimension %q", dim)
		}
		seen[dim] = true
		by = append(by, dim)
		if s.Accept(',') {
			continue
		}
		break
	}
	if err := s.Expect(')', "after the grouping dimensions"); err != nil {
		return nil, err
	}
	return by, nil
}

// parseRoute parses one "route ACTION SELECTOR ..." line; the leading
// "route" word is already consumed.
func parseRoute(s *spec.Scanner, lineNo int) (monitor.IngestRoute, error) {
	var route monitor.IngestRoute
	route.Line = lineNo

	actionWord, col := s.Word()
	switch actionWord {
	case "drop":
		route.Action = monitor.RouteDrop
	case "rename":
		route.Action = monitor.RouteRename
	case "relabel":
		route.Action = monitor.RouteRelabel
	default:
		return route, s.Errf(col, "unknown route action %q (drop, rename, relabel)", actionWord)
	}

	source, metric, col, err := s.Selector()
	if err != nil {
		return route, err
	}
	if metric == "" {
		return route, s.Errf(col, "expected a metric selector")
	}
	route.Source, route.Metric = source, metric
	if route.Matchers, err = s.Matchers(); err != nil {
		return route, err
	}

	switch route.Action {
	case monitor.RouteRename:
		// "->": '-' is a word character, '>' a delimiter, so the arrow
		// reads as the word "-" followed by '>'.
		w, col := s.Word()
		if w != "-" {
			return route, s.Errf(col, "expected \"->\" after the selector, got %q", w)
		}
		if err := s.Expect('>', "completing \"->\""); err != nil {
			return route, err
		}
		name, col, err := renameTarget(s)
		if err != nil {
			return route, err
		}
		switch {
		case name == "":
			return route, s.Errf(col, "expected the new metric name after \"->\"")
		case strings.Contains(name, "*"):
			return route, s.Errf(col, "new metric name %q must be literal (no '*')", name)
		}
		if seg, _, found := strings.Cut(name, "/"); found && monitor.ReservedNamespace(seg) {
			return route, s.Errf(col, "new metric name %q lands in the reserved %s/ namespace", name, seg)
		}
		route.NewMetric = name
	case monitor.RouteRelabel:
		w, col := s.Word()
		if w != "set" {
			return route, s.Errf(col, "expected \"set LABEL=\\\"VALUE\\\"\" after the selector, got %q", w)
		}
		seen := map[string]bool{}
		for {
			name, col := s.Word()
			if name == "" {
				return route, s.Errf(col, "expected a label name to set")
			}
			if !monitor.ValidLabelName(name) {
				return route, s.Errf(col, "bad label name %q (letters, digits, '_'; not starting with a digit)", name)
			}
			if monitor.ReservedLabelName(name) {
				return route, s.Errf(col, "label name %q is reserved (the suite emits source/scope/id itself)", name)
			}
			if seen[name] {
				return route, s.Errf(col, "duplicate label %q in the set clause", name)
			}
			seen[name] = true
			if err := s.Expect('=', "after the label name"); err != nil {
				return route, err
			}
			value, vcol, err := s.Quoted()
			if err != nil {
				return route, err
			}
			// An empty value deletes the label; anything else must be a
			// value the store would accept — a route must never write a
			// label the wire would have 400'd.
			if value != "" {
				if err := monitor.CheckLabelMap(map[string]string{name: value}); err != nil {
					return route, s.Errf(vcol, "%v", err)
				}
			}
			route.Set = append(route.Set, monitor.Label{Name: name, Value: value})
			if s.Accept(',') {
				continue
			}
			break
		}
	}
	if !s.EOF() {
		w, col := s.Word()
		if w == "" {
			col = s.Col()
			w = string(s.Peek())
		}
		return route, s.Errf(col, "unexpected trailing %q", w)
	}
	route.Spec = RenderRoute(&route)
	return route, nil
}

// renameTarget reads the new metric name of a rename route: a bare
// word or a quoted name.
func renameTarget(s *spec.Scanner) (string, int, error) {
	if s.Peek() == '"' {
		return s.Quoted()
	}
	name, col := s.Word()
	return name, col, nil
}

// RenderRoute renders a route back in spec syntax (canonical).
func RenderRoute(r *monitor.IngestRoute) string {
	var b strings.Builder
	fmt.Fprintf(&b, "route %s %s", r.Action, spec.RenderSelector(r.Source, r.Metric, r.Matchers))
	switch r.Action {
	case monitor.RouteRename:
		fmt.Fprintf(&b, " -> %s", spec.QuoteMetric(r.NewMetric))
	case monitor.RouteRelabel:
		b.WriteString(" set ")
		for i, set := range r.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, `%s="%s"`, set.Name, set.Value)
		}
	}
	return b.String()
}

// ParseFile parses a whole derive file: rules and routes, one per
// line, blank lines and '#' comments ignored.  Duplicate rule names
// are rejected (they would write one output series from two
// definitions); routes keep file order.
func ParseFile(src string) ([]*Rule, []monitor.IngestRoute, error) {
	var rules []*Rule
	var routes []monitor.IngestRoute
	byName := map[string]int{}
	for i, line := range strings.Split(src, "\n") {
		line = spec.StripComment(line)
		if strings.TrimSpace(line) == "" {
			continue
		}
		s := spec.New("derive", line, i+1)
		if w, _ := s.Word(); w == "route" {
			route, err := parseRoute(s, i+1)
			if err != nil {
				return nil, nil, err
			}
			routes = append(routes, route)
			continue
		}
		r, err := ParseRule(line, i+1)
		if err != nil {
			return nil, nil, err
		}
		if prev, dup := byName[r.Name]; dup {
			return nil, nil, fmt.Errorf("derive: line %d: rule %q already defined on line %d", i+1, r.Name, prev)
		}
		byName[r.Name] = i + 1
		rules = append(rules, r)
	}
	return rules, routes, nil
}
