package cpuid

import "likwid/internal/hwdef"

// Leaf 0x4 — deterministic cache parameters (Intel, Core 2 and later).
//
// Each subleaf describes one cache.  Encoding per the SDM:
//
//	EAX[4:0]   cache type (0 terminates enumeration)
//	EAX[7:5]   cache level
//	EAX[8]     self-initializing
//	EAX[25:14] max *addressable* hardware threads sharing this cache - 1.
//	           This is the APIC-ID span of the sharing group, a power of
//	           two; on parts with non-contiguous core IDs (Westmere EP) it
//	           exceeds the actual thread count, and decoders must treat it
//	           as a mask width, not a population count.
//	EAX[31:26] max *addressable* processor cores in the package - 1 (the
//	           power-of-two span of the core-ID field, not a population
//	           count — decoders derive the SMT width from it)
//	EBX[11:0]  line size - 1
//	EBX[21:12] physical line partitions - 1
//	EBX[31:22] ways of associativity - 1
//	ECX        number of sets - 1
//	EDX[1]     cache inclusiveness
func (c *CPU) leaf4(subleaf uint32) Regs {
	caches := c.Arch.Caches
	if int(subleaf) >= len(caches) {
		return Regs{} // type 0: no more caches
	}
	cl := caches[subleaf]
	span := c.apicSpan(cl)
	coreSpan := uint32(1) << c.layout.CoreBits
	eax := uint32(cl.Type) | uint32(cl.Level)<<5 | 1<<8 |
		uint32(span-1)<<14 | (coreSpan-1)<<26
	ebx := uint32(cl.LineSize-1) | 0<<12 | uint32(cl.Assoc-1)<<22
	ecx := uint32(cl.Sets - 1)
	var edx uint32
	if cl.Inclusive {
		edx |= 1 << 1
	}
	return Regs{EAX: eax, EBX: ebx, ECX: ecx, EDX: edx}
}

// apicSpan computes the APIC-ID address span covered by one instance of the
// cache: caches shared by the whole package span the full package field;
// narrower caches span the SMT field times the (power-of-two) core group.
func (c *CPU) apicSpan(cl hwdef.CacheLevel) int {
	threadsPerSocket := c.Arch.CoresPerSocket * c.Arch.ThreadsPerCore
	if cl.SharedBy >= threadsPerSocket {
		return 1 << c.layout.PkgShift()
	}
	coresSharing := cl.SharedBy / c.Arch.ThreadsPerCore
	if coresSharing < 1 {
		coresSharing = 1
	}
	bits := c.layout.SMTBits + log2ceil(coresSharing)
	return 1 << bits
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// Leaf 0x2 — descriptor-byte cache reporting (Pentium M era).
//
// The low byte of EAX is the number of times CPUID must be executed with
// EAX=2 (always 1 here); every other byte of the four registers is a cache
// descriptor, valid when the register's bit 31 is clear.

// Descriptor is one leaf-0x2 cache descriptor.
type Descriptor struct {
	Level    int
	Type     hwdef.CacheType
	SizeKB   int
	Assoc    int
	LineSize int
}

// DescriptorTable is the subset of the Intel descriptor catalogue needed for
// the architectures in the registry.  The topology decoder uses it to turn
// leaf-0x2 bytes back into cache parameters.
var DescriptorTable = map[byte]Descriptor{
	0x2C: {Level: 1, Type: hwdef.DataCache, SizeKB: 32, Assoc: 8, LineSize: 64},
	0x30: {Level: 1, Type: hwdef.InstructionCache, SizeKB: 32, Assoc: 8, LineSize: 64},
	0x60: {Level: 1, Type: hwdef.DataCache, SizeKB: 16, Assoc: 8, LineSize: 64},
	0x7D: {Level: 2, Type: hwdef.UnifiedCache, SizeKB: 2048, Assoc: 8, LineSize: 64},
	0x7C: {Level: 2, Type: hwdef.UnifiedCache, SizeKB: 1024, Assoc: 8, LineSize: 64},
	0x85: {Level: 2, Type: hwdef.UnifiedCache, SizeKB: 2048, Assoc: 8, LineSize: 32},
}

// descriptorFor finds the table byte matching a cache level, or 0.
func descriptorFor(cl hwdef.CacheLevel) byte {
	for b, d := range DescriptorTable {
		if d.Level == cl.Level && d.Type == cl.Type && d.SizeKB == cl.SizeKB &&
			d.Assoc == cl.Assoc && d.LineSize == cl.LineSize {
			return b
		}
	}
	return 0
}

func (c *CPU) leaf2() Regs {
	bytes := []byte{0x01} // AL: run once
	for _, cl := range c.Arch.Caches {
		if b := descriptorFor(cl); b != 0 {
			bytes = append(bytes, b)
		}
	}
	for len(bytes) < 16 {
		bytes = append(bytes, 0x00)
	}
	packReg := func(b []byte) uint32 {
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	return Regs{
		EAX: packReg(bytes[0:4]),
		EBX: packReg(bytes[4:8]),
		ECX: packReg(bytes[8:12]),
		EDX: packReg(bytes[12:16]),
	}
}
