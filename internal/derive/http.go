package derive

import (
	"encoding/json"
	"net/http"

	"likwid/internal/monitor"
)

// The derive API, mounted onto the agent's HTTPSink next to /metrics
// and /query (HTTPSink.Handle keeps the monitor package free of a
// derive dependency):
//
//	GET /derive  per-rule bookkeeping (spec, cadence, evaluations,
//	             emitted samples, selector fan-out, last error) plus
//	             the ingest routes with their match counts
//
// Derived *data* needs no endpoint of its own: outputs are first-class
// store series, so /query?metric=NAME (or metric=family_*) windows
// them like any metric.

// statusResponse is the GET /derive payload.
type statusResponse struct {
	Rules  []RuleStatus          `json:"rules"`
	Routes []monitor.RouteStatus `json:"routes"`
}

// StatusHandler serves the engine's rule bookkeeping and, when routes
// is non-nil, the ingest routes' hit accounting.  Either part may be
// absent (a receiver can run routes without rules, an agent rules
// without routes), so both engine and routes may be nil.
func StatusHandler(e *Engine, routes func() []monitor.RouteStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		resp := statusResponse{Rules: []RuleStatus{}, Routes: []monitor.RouteStatus{}}
		if e != nil {
			if rs := e.RuleStatuses(); rs != nil {
				resp.Rules = rs
			}
		}
		if routes != nil {
			if sts := routes(); sts != nil {
				resp.Routes = sts
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}
