package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"likwid/internal/features"
	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/perfctr"
	"likwid/internal/topology"
)

func init() {
	mustRegister("perfgroup", newPerfGroupCollector)
	mustRegister("topology", newTopologyCollector)
	mustRegister("features", newFeaturesCollector)
	mustRegister("membw", newMemBWCollector)
}

// lockedNow reads simulated time under the shared machine mutex.
func lockedNow(mu *sync.Mutex, m *machine.Machine) float64 {
	if mu != nil {
		mu.Lock()
		defer mu.Unlock()
	}
	return m.Now()
}

// ---- perfgroup ------------------------------------------------------------

// compiledMetric is one derived metric ready for interval evaluation.
type compiledMetric struct {
	name   string // sanitized series name
	expr   *perfctr.Expr
	socket bool // formula references uncore events: socket scope
	mean   bool // intensive (no /time): combine by mean across domains
}

// PerfGroupCollector samples a preconfigured perfctr event group
// continuously: each tick advances simulated time, snapshots the live
// counters without stopping them, and converts the interval deltas into
// derived-metric samples — likwid-perfCtr's wrapper mode turned into an
// always-on loop.  Metrics whose formulas use uncore events are emitted at
// socket scope on the socket-lock leader columns; everything else is
// per-thread.
type PerfGroupCollector struct {
	name     string
	m        *machine.Machine
	mu       *sync.Mutex
	col      *perfctr.Collector
	group    perfctr.GroupDef
	metrics  []compiledMetric
	interval time.Duration
	advance  func(dt float64)
	raw      bool

	cpus     []int
	socketOf []int       // socket of each cpu column
	leader   map[int]int // socket -> leader column index

	prev     perfctr.Results
	prevTime float64
}

func newPerfGroupCollector(cfg Config) (Collector, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("monitor: perfgroup collector needs a machine")
	}
	groupName := cfg.Group
	if groupName == "" {
		groupName = "MEM_DP"
	}
	group, err := perfctr.GroupFor(cfg.Machine.Arch, groupName)
	if err != nil {
		return nil, err
	}
	cpus := cfg.cpusOrAll()
	specs := make([]perfctr.EventSpec, 0, len(group.Events))
	for _, ev := range group.Events {
		specs = append(specs, perfctr.EventSpec{Event: ev})
	}
	// Multiplexing on: a monitoring group must come up on any counter
	// inventory, trading accuracy for availability like the real agent.
	col, err := perfctr.NewCollector(cfg.Machine, cpus, specs, perfctr.Options{Multiplex: true})
	if err != nil {
		return nil, err
	}
	c := &PerfGroupCollector{
		name:     "perfgroup/" + group.Name,
		m:        cfg.Machine,
		mu:       cfg.MachineMu,
		col:      col,
		group:    group,
		interval: cfg.Interval,
		advance:  cfg.Advance,
		raw:      cfg.RawEvents,
		cpus:     cpus,
		leader:   map[int]int{},
	}
	if c.interval <= 0 {
		c.interval = time.Second
	}
	if c.advance == nil {
		c.advance = func(dt float64) { cfg.Machine.RunIdle(dt, 0) }
	}
	uncore := map[string]bool{}
	for name, ev := range cfg.Machine.Arch.Events {
		if ev.Domain == hwdef.DomainUncore {
			uncore[name] = true
		}
	}
	for _, mtr := range group.Metrics {
		expr, err := perfctr.CompileExpr(mtr.Formula)
		if err != nil {
			return nil, fmt.Errorf("monitor: group %s metric %q: %w", group.Name, mtr.Name, err)
		}
		cm := compiledMetric{name: SanitizeMetric(mtr.Name), expr: expr, mean: true}
		for _, v := range expr.Vars() {
			if uncore[v] {
				cm.socket = true
			}
			if v == "time" {
				cm.mean = false // a rate: additive across domain members
			}
		}
		c.metrics = append(c.metrics, cm)
	}
	c.socketOf = make([]int, len(cpus))
	for i, cpu := range cpus {
		s := cfg.Machine.SocketOf(cpu)
		c.socketOf[i] = s
		if li, ok := c.leader[s]; !ok || cpus[li] > cpu {
			c.leader[s] = i
		}
	}
	if err := col.Start(); err != nil {
		return nil, err
	}
	c.prev = col.Current()
	c.prevTime = cfg.Machine.Now()
	return c, nil
}

// Name identifies the collector including its group.
func (c *PerfGroupCollector) Name() string { return c.name }

// Scope is the finest domain the collector emits.
func (c *PerfGroupCollector) Scope() Scope { return ScopeThread }

// Interval is the sampling period.
func (c *PerfGroupCollector) Interval() time.Duration { return c.interval }

// MeanMetrics lists the intensive metrics (CPI, ratios) for aggregation.
func (c *PerfGroupCollector) MeanMetrics() []string {
	var out []string
	for _, m := range c.metrics {
		if m.mean {
			out = append(out, m.name)
		}
	}
	return out
}

// Group returns the resolved group definition.
func (c *PerfGroupCollector) Group() perfctr.GroupDef { return c.group }

// Collect advances simulated time by one interval, snapshots the counters,
// and emits the interval's derived metrics.
func (c *PerfGroupCollector) Collect(ctx context.Context) ([]Sample, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.advance(c.interval.Seconds())
	cur := c.col.Current()
	now := c.m.Now()
	dt := now - c.prevTime
	if dt <= 0 {
		return nil, nil
	}
	clock := c.m.Arch.ClockHz()

	// Per-column interval environments: event deltas plus the interval
	// wall time, so rate formulas yield per-second values.
	envs := make([]map[string]float64, len(c.cpus))
	for i := range c.cpus {
		env := map[string]float64{"time": dt, "clock": clock}
		for _, ev := range cur.Events {
			d := cur.Counts[ev][i]
			if prev, ok := c.prev.Counts[ev]; ok {
				d -= prev[i]
			}
			if d < 0 {
				d = 0 // multiplex extrapolation jitter: clamp like the timeline does
			}
			env[ev] = d
		}
		envs[i] = env
	}
	c.prev = cur
	c.prevTime = now

	var out []Sample
	for _, mtr := range c.metrics {
		if mtr.socket {
			for socket, li := range c.leader {
				v, err := mtr.expr.Eval(envs[li])
				if err != nil {
					continue
				}
				out = append(out, Sample{Metric: mtr.name, Scope: ScopeSocket, ID: socket, Time: now, Value: v})
			}
			continue
		}
		for i, cpu := range c.cpus {
			v, err := mtr.expr.Eval(envs[i])
			if err != nil {
				continue
			}
			out = append(out, Sample{Metric: mtr.name, Scope: ScopeThread, ID: cpu, Time: now, Value: v})
		}
	}
	if c.raw {
		for _, ev := range cur.Events {
			for i, cpu := range c.cpus {
				out = append(out, Sample{
					Metric: "event/" + ev, Scope: ScopeThread, ID: cpu,
					Time: now, Value: envs[i][ev] / dt,
				})
			}
		}
	}
	return out, nil
}

// Stop halts the underlying counter collector.
func (c *PerfGroupCollector) Stop() error {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.col.Stop()
}

// ---- topology -------------------------------------------------------------

// TopologyCollector emits the node's decoded shape as gauges: static, but
// published every interval so sinks and dashboards get a complete picture
// from any window of the stream.
type TopologyCollector struct {
	m        *machine.Machine
	mu       *sync.Mutex
	interval time.Duration
	info     *topology.Info
}

func newTopologyCollector(cfg Config) (Collector, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("monitor: topology collector needs a machine")
	}
	info, err := topology.Probe(cfg.Machine.CPUs, cfg.Machine.Arch.ClockMHz)
	if err != nil {
		return nil, err
	}
	iv := cfg.Interval
	if iv <= 0 {
		iv = time.Second
	}
	return &TopologyCollector{m: cfg.Machine, mu: cfg.MachineMu, interval: iv, info: info}, nil
}

func (c *TopologyCollector) Name() string            { return "topology" }
func (c *TopologyCollector) Scope() Scope            { return ScopeNode }
func (c *TopologyCollector) Interval() time.Duration { return c.interval }

// Collect publishes the topology gauges.
func (c *TopologyCollector) Collect(ctx context.Context) ([]Sample, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := lockedNow(c.mu, c.m)
	node := func(metric string, v float64) Sample {
		return Sample{Metric: metric, Scope: ScopeNode, Time: now, Value: v}
	}
	out := []Sample{
		node("topo/sockets", float64(c.info.Sockets)),
		node("topo/cores_per_socket", float64(c.info.CoresPerSocket)),
		node("topo/threads_per_core", float64(c.info.ThreadsPerCore)),
		node("topo/hw_threads", float64(len(c.info.Threads))),
		node("topo/clock_mhz", c.info.ClockMHz),
	}
	for socket, procs := range c.info.SocketGroups {
		out = append(out, Sample{
			Metric: "topo/socket_hw_threads", Scope: ScopeSocket, ID: socket,
			Time: now, Value: float64(len(procs)),
		})
	}
	return out, nil
}

// ---- features -------------------------------------------------------------

// FeaturesCollector watches the prefetcher state of IA32_MISC_ENABLE: a
// likwid-features toggle flipping mid-run shows up in the stream as a
// 0/1 step, which is exactly how such config drift is caught in practice.
type FeaturesCollector struct {
	m        *machine.Machine
	mu       *sync.Mutex
	tool     *features.Tool
	interval time.Duration
}

func newFeaturesCollector(cfg Config) (Collector, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("monitor: features collector needs a machine")
	}
	cpus := cfg.cpusOrAll()
	tool, err := features.New(cfg.Machine.MSRs, cfg.Machine.Arch, cpus[0])
	if err != nil {
		return nil, err
	}
	iv := cfg.Interval
	if iv <= 0 {
		iv = time.Second
	}
	return &FeaturesCollector{m: cfg.Machine, mu: cfg.MachineMu, tool: tool, interval: iv}, nil
}

func (c *FeaturesCollector) Name() string            { return "features" }
func (c *FeaturesCollector) Scope() Scope            { return ScopeNode }
func (c *FeaturesCollector) Interval() time.Duration { return c.interval }

// Collect reads the togglable feature states.
func (c *FeaturesCollector) Collect(ctx context.Context) ([]Sample, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	states, err := c.tool.List()
	if err != nil {
		return nil, err
	}
	now := c.m.Now()
	var out []Sample
	enabled := 0.0
	for _, st := range states {
		if !st.Togglable {
			continue
		}
		v := 0.0
		if st.Enabled {
			v = 1
			enabled++
		}
		out = append(out, Sample{
			Metric: "feature/" + SanitizeMetric(st.Name), Scope: ScopeNode,
			Time: now, Value: v,
		})
	}
	out = append(out, Sample{
		Metric: "feature/prefetchers_enabled", Scope: ScopeNode,
		Time: now, Value: enabled,
	})
	return out, nil
}

// ---- membw ----------------------------------------------------------------

// MemBWCollector publishes the memory system's capability envelope: the
// per-socket controller capacity and per-core stream ceilings the measured
// bandwidths should be read against (the saturation line of the paper's
// STREAM plots).
type MemBWCollector struct {
	m        *machine.Machine
	mu       *sync.Mutex
	interval time.Duration
	sockets  []int
}

func newMemBWCollector(cfg Config) (Collector, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("monitor: membw collector needs a machine")
	}
	if err := cfg.Machine.Mem.Validate(); err != nil {
		return nil, err
	}
	iv := cfg.Interval
	if iv <= 0 {
		iv = time.Second
	}
	seen := map[int]bool{}
	var sockets []int
	for _, cpu := range cfg.cpusOrAll() {
		s := cfg.Machine.SocketOf(cpu)
		if !seen[s] {
			seen[s] = true
			sockets = append(sockets, s)
		}
	}
	return &MemBWCollector{m: cfg.Machine, mu: cfg.MachineMu, interval: iv, sockets: sockets}, nil
}

func (c *MemBWCollector) Name() string            { return "membw" }
func (c *MemBWCollector) Scope() Scope            { return ScopeSocket }
func (c *MemBWCollector) Interval() time.Duration { return c.interval }

// MeanMetrics: capability ceilings are per-entity properties, not flows.
func (c *MemBWCollector) MeanMetrics() []string {
	return []string{"membw/single_stream_bytes", "membw/core_triad_bytes", "membw/core_scalar_bytes"}
}

// Collect publishes the bandwidth capability gauges.
func (c *MemBWCollector) Collect(ctx context.Context) ([]Sample, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := lockedNow(c.mu, c.m)
	perf := c.m.Arch.Perf
	var out []Sample
	for _, s := range c.sockets {
		out = append(out, Sample{
			Metric: "membw/socket_capacity_bytes", Scope: ScopeSocket, ID: s,
			Time: now, Value: perf.SocketMemBW,
		})
	}
	out = append(out,
		Sample{Metric: "membw/single_stream_bytes", Scope: ScopeNode, Time: now, Value: c.m.Mem.SingleStreamCap(1, true)},
		Sample{Metric: "membw/core_triad_bytes", Scope: ScopeNode, Time: now, Value: c.m.Mem.SingleStreamCap(3, true)},
		Sample{Metric: "membw/core_scalar_bytes", Scope: ScopeNode, Time: now, Value: c.m.Mem.SingleStreamCap(3, false)},
	)
	return out, nil
}
