// Package sched models the operating-system scheduler of the simulated
// node: task placement onto hardware threads, affinity masks, thread
// creation with per-runtime spawn patterns, and the migration noise that
// makes unpinned runs statistically unstable.
//
// This is the substrate likwid-pin works against.  The paper's Figs. 4-10
// are reproduced by exactly the mechanisms here: without pinning, placement
// follows a policy with randomness (so bandwidth varies run to run);
// with pinning, SetAffinity nails each task to one hardware thread.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"likwid/internal/apic"
	"likwid/internal/hwdef"
)

// Policy selects how the scheduler places new, unpinned tasks.
type Policy int

// Placement policies.
const (
	// PolicySpread places tasks uniformly at random among idle logical
	// CPUs (falling back to least-loaded), with a wake-affine bias: a
	// spawn burst frequently drops the child on its parent's CPU until
	// the balancer pulls it away.  It models a noisy busy-wait-heavy
	// runtime whose threads land anywhere — the behaviour behind the
	// broad unpinned variance of the Intel runs (Figs. 4, 9).
	PolicySpread Policy = iota
	// PolicyCompact places tasks near their parent, walking the parent's
	// socket in SMT-sibling-adjacent order (both hardware threads of
	// core 0, then core 1, …) before spilling to the next socket.  This
	// models runtimes that spawn quickly on systems whose BIOS numbers
	// sibling threads adjacently — exactly the numbering trap the paper's
	// introduction warns about — and is the behaviour behind gcc's
	// consistently poor low-thread-count results (Fig. 7).
	PolicyCompact Policy = iota
)

// wakeAffineProb is the chance a spawned task starts on its parent's CPU.
const wakeAffineProb = 0.35

// Task is one schedulable thread.
type Task struct {
	ID       int
	Name     string
	Affinity Mask
	CPU      int  // current hardware thread
	Pinned   bool // set once affinity is a single CPU; pinned tasks never migrate
}

// Kernel is the scheduler state of one node.
type Kernel struct {
	arch   *hwdef.Arch
	topo   []apic.ThreadInfo
	policy Policy
	rng    *rand.Rand
	tasks  map[int]*Task
	load   []int // runnable tasks per cpu
	nextID int
}

// New creates a scheduler for the architecture.  The seed makes each sample
// of a statistical experiment reproducible.
func New(a *hwdef.Arch, policy Policy, seed int64) *Kernel {
	return &Kernel{
		arch:   a,
		topo:   apic.Enumerate(a),
		policy: policy,
		rng:    rand.New(rand.NewSource(seed)),
		tasks:  make(map[int]*Task),
		load:   make([]int, a.HWThreads()),
	}
}

// NumCPUs returns the number of logical processors.
func (k *Kernel) NumCPUs() int { return len(k.load) }

// SocketOf returns the socket of a logical processor.
func (k *Kernel) SocketOf(cpu int) int { return k.topo[cpu].Socket }

// CoreOf returns (socket, coreIdx) identifying the physical core.
func (k *Kernel) CoreOf(cpu int) (int, int) {
	return k.topo[cpu].Socket, k.topo[cpu].CoreIdx
}

// SiblingsOf returns the logical CPUs sharing the physical core of cpu.
func (k *Kernel) SiblingsOf(cpu int) []int {
	var out []int
	s, c := k.CoreOf(cpu)
	for _, t := range k.topo {
		if t.Socket == s && t.CoreIdx == c {
			out = append(out, t.Proc)
		}
	}
	return out
}

// Load returns the number of runnable tasks on a cpu.
func (k *Kernel) Load(cpu int) int { return k.load[cpu] }

// Tasks returns all live tasks in creation (ID) order.
func (k *Kernel) Tasks() []*Task {
	out := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Spawn creates a task and places it.  A nil parent models a process start.
func (k *Kernel) Spawn(name string, parent *Task) *Task {
	t := &Task{
		ID:       k.nextID,
		Name:     name,
		Affinity: MaskAll(k.NumCPUs()),
		CPU:      -1,
	}
	k.nextID++
	k.tasks[t.ID] = t
	k.place(t, parent)
	return t
}

// Exit removes a task from the system.
func (k *Kernel) Exit(t *Task) {
	if _, ok := k.tasks[t.ID]; !ok {
		return
	}
	if t.CPU >= 0 {
		k.load[t.CPU]--
	}
	delete(k.tasks, t.ID)
}

// SetAffinity restricts a task to mask, migrating it if its current CPU is
// no longer allowed.  A single-CPU mask pins the task permanently, which is
// what likwid-pin's wrapper does per created thread.
func (k *Kernel) SetAffinity(t *Task, m Mask) error {
	if m == 0 {
		return fmt.Errorf("sched: empty affinity mask for task %d", t.ID)
	}
	allowed := m & MaskAll(k.NumCPUs())
	if allowed == 0 {
		return fmt.Errorf("sched: mask %s has no CPU on this node", m)
	}
	t.Affinity = allowed
	t.Pinned = allowed.Count() == 1
	if t.CPU < 0 || !allowed.Has(t.CPU) {
		k.migrate(t, k.leastLoaded(allowed.CPUs()))
	}
	return nil
}

// Pin is SetAffinity to exactly one processor.
func (k *Kernel) Pin(t *Task, cpu int) error {
	if cpu < 0 || cpu >= k.NumCPUs() {
		return fmt.Errorf("sched: pin to nonexistent cpu %d", cpu)
	}
	return k.SetAffinity(t, MaskOf(cpu))
}

func (k *Kernel) migrate(t *Task, cpu int) {
	if t.CPU == cpu {
		return
	}
	if t.CPU >= 0 {
		k.load[t.CPU]--
	}
	t.CPU = cpu
	k.load[cpu]++
}

// place performs initial placement according to the policy.
func (k *Kernel) place(t *Task, parent *Task) {
	allowed := t.Affinity.CPUs()
	var target int
	switch k.policy {
	case PolicyCompact:
		target = k.placeCompact(allowed, parent)
	default:
		target = k.placeSpread(allowed, parent)
	}
	t.CPU = target
	k.load[target]++
}

// placeSpread: wake-affine with probability wakeAffineProb, otherwise
// uniformly random among idle allowed CPUs; if none are idle, uniformly
// random among the least-loaded ones.
func (k *Kernel) placeSpread(allowed []int, parent *Task) int {
	if parent != nil && parent.CPU >= 0 && k.rng.Float64() < wakeAffineProb {
		for _, c := range allowed {
			if c == parent.CPU {
				return c
			}
		}
	}
	var idle []int
	for _, c := range allowed {
		if k.load[c] == 0 {
			idle = append(idle, c)
		}
	}
	if len(idle) > 0 {
		return idle[k.rng.Intn(len(idle))]
	}
	minLoad := k.load[allowed[0]]
	for _, c := range allowed[1:] {
		if k.load[c] < minLoad {
			minLoad = k.load[c]
		}
	}
	var light []int
	for _, c := range allowed {
		if k.load[c] == minLoad {
			light = append(light, c)
		}
	}
	return light[k.rng.Intn(len(light))]
}

// placeCompact: walk the parent's socket first in SMT-sibling-adjacent
// order (core 0 thread 0, core 0 thread 1, core 1 thread 0, …), then the
// remaining sockets; take the first idle CPU, falling back to the
// least-loaded.
func (k *Kernel) placeCompact(allowed []int, parent *Task) int {
	home := 0
	if parent != nil && parent.CPU >= 0 {
		home = k.SocketOf(parent.CPU)
	}
	allowedSet := MaskOf(allowed...)
	order := make([]int, 0, len(k.topo))
	for s := 0; s < k.arch.Sockets; s++ {
		socket := (home + s) % k.arch.Sockets
		for core := 0; core < k.arch.CoresPerSocket; core++ {
			for _, ti := range k.topo {
				if ti.Socket == socket && ti.CoreIdx == core && allowedSet.Has(ti.Proc) {
					order = append(order, ti.Proc)
				}
			}
		}
	}
	for _, c := range order {
		if k.load[c] == 0 {
			return c
		}
	}
	return k.leastLoaded(order)
}

func (k *Kernel) leastLoaded(cpus []int) int {
	best := cpus[0]
	for _, c := range cpus[1:] {
		if k.load[c] < k.load[best] {
			best = c
		}
	}
	return best
}

// Rebalance runs one load-balancer step: with probability prob per
// overloaded unpinned task, migrate it to an idle allowed CPU (idle cores
// pull work, as the Linux balancer does).  A much smaller background
// probability migrates even balanced tasks, modelling interrupts and
// competing system activity.
func (k *Kernel) Rebalance(prob float64) {
	// Deterministic iteration order: the balancer consumes randomness per
	// task, so map order would break seed reproducibility.
	for _, t := range k.Tasks() {
		if t.Pinned || t.CPU < 0 {
			continue
		}
		overloaded := k.load[t.CPU] > 1
		p := prob / 20 // background noise
		if overloaded {
			p = prob
		}
		if k.rng.Float64() >= p {
			continue
		}
		var idle []int
		for _, c := range t.Affinity.CPUs() {
			if k.load[c] == 0 {
				idle = append(idle, c)
			}
		}
		if len(idle) == 0 {
			continue
		}
		k.migrate(t, idle[k.rng.Intn(len(idle))])
	}
}
