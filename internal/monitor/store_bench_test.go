package monitor

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"likwid/internal/telemetry"
)

// The store benchmarks guard the hot identity path of the whole stack:
// every collector tick, every pushed batch, and every alert evaluation
// funnels through Append / Window keyed by monitor.Key.  CI runs them
// with -benchtime 1x as a smoke test so they cannot bit-rot; locally,
// `go test -bench Store ./internal/monitor` gives real numbers.

func benchKeys(n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{
			Metric: fmt.Sprintf("memory_bandwidth_mbytes_s_%d", i%8),
			Scope:  ScopeSocket,
			ID:     i % 4,
		}
	}
	return keys
}

// BenchmarkStoreAppend measures the single-series hot path: one point
// into one ring.
func BenchmarkStoreAppend(b *testing.B) {
	st := NewStore(1024)
	k := Key{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i)})
	}
}

// BenchmarkStoreAppendManySeries spreads appends over many series, the
// shape of a full perfgroup batch landing in the store.
func BenchmarkStoreAppendManySeries(b *testing.B) {
	st := NewStore(1024)
	keys := benchKeys(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append(keys[i%len(keys)], Point{Time: float64(i), Value: float64(i)})
	}
}

// BenchmarkStoreAppendLabeled measures the hot path with a labelled
// key: the interned Labels handle must keep the append at one atomic
// load plus one map access with zero allocations — hashing one extra
// pointer word, never re-encoding the label set.
func BenchmarkStoreAppendLabeled(b *testing.B) {
	st := NewStore(1024)
	ls, err := ParseLabelSpec("cluster=emmy,job=lbm")
	if err != nil {
		b.Fatal(err)
	}
	k := Key{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0, Labels: ls}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i)})
	}
}

// BenchmarkStoreAppendInstrumented is BenchmarkStoreAppend with the
// telemetry registry attached: instrumentation is pull-model (snapshot
// readers sum per-series counters; nothing atomic rides the append), so
// this must stay within noise of the uninstrumented number — the
// "observing must not perturb the observed" budget.
func BenchmarkStoreAppendInstrumented(b *testing.B) {
	st := NewStore(1024)
	st.Instrument(telemetry.New())
	k := Key{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i)})
	}
}

// BenchmarkStoreAppendTiered includes the retention cascade: the ring is
// small, so every append evicts into the downsampling tiers.
func BenchmarkStoreAppendTiered(b *testing.B) {
	st := NewStore(64, Tier{Resolution: 16, Capacity: 64}, Tier{Resolution: 256, Capacity: 64})
	k := Key{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i)})
	}
}

// BenchmarkStoreWindow measures the windowed read path the alert engine
// runs once per rule per evaluation.
func BenchmarkStoreWindow(b *testing.B) {
	st := NewStore(1024)
	k := Key{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0}
	for i := 0; i < 1024; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := st.Window(k, 512, 768); len(pts) == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkStoreLatest measures the point read behind /metrics and the
// engine's staleness probe.
func BenchmarkStoreLatest(b *testing.B) {
	st := NewStore(1024)
	k := Key{Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0}
	st.Append(k, Point{Time: 1, Value: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Latest(k); !ok {
			b.Fatal("missing point")
		}
	}
}

// benchIngestPayload renders one JSON-lines push batch: samples samples
// across series series, tagged with a per-agent source.
func benchIngestPayload(samples, series int) []byte {
	var buf bytes.Buffer
	for i := 0; i < samples; i++ {
		fmt.Fprintf(&buf,
			`{"time":%d,"collector":"perfgroup/MEM_DP","source":"node%d","metric":"memory_bandwidth_mbytes_s","scope":"socket","id":%d,"value":%d}`+"\n",
			i, i%4, i%series, i)
	}
	return buf.Bytes()
}

// BenchmarkReceiverFanIn measures the receiver's /ingest hot path: one
// pushed batch decoded, validated, and appended to the store — the
// fan-in cost per agent flush.
func BenchmarkReceiverFanIn(b *testing.B) {
	st := NewStore(1024)
	h := &HTTPSink{store: st, latest: map[Key]Sample{}}
	payload := benchIngestPayload(64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/x-ndjson")
		w := httptest.NewRecorder()
		h.handleIngest(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("ingest status %d", w.Code)
		}
	}
}
