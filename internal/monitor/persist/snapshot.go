package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"likwid/internal/monitor"
)

// snapshotVersion guards the on-disk schema; a reader refusing an
// unknown version fails loudly instead of mis-restoring.
const snapshotVersion = 1

// snapshotDoc is the on-disk snapshot: the store's full state as plain
// JSON.  Interned handles (Labels, Scope) travel in their wire shapes
// and are re-interned on load.
type snapshotDoc struct {
	Version int         `json:"version"`
	Series  []seriesDoc `json:"series"`
}

type seriesDoc struct {
	Source     string            `json:"source,omitempty"`
	Metric     string            `json:"metric"`
	Scope      string            `json:"scope"`
	ID         int               `json:"id"`
	Labels     map[string]string `json:"labels,omitempty"`
	Compaction string            `json:"compaction,omitempty"` // "last"; absent means mean
	Raw        []monitor.Point   `json:"raw"`
	Tiers      []tierDoc         `json:"tiers,omitempty"`
}

type tierDoc struct {
	Res     float64          `json:"res"`
	Buckets []monitor.Bucket `json:"buckets"`
	Open    *openDoc         `json:"open,omitempty"`
}

type openDoc struct {
	Start   float64   `json:"start"`
	Count   int       `json:"count"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Sum     float64   `json:"sum"`
	LastT   float64   `json:"last_t"`
	LastV   float64   `json:"last_v"`
	Medians []float64 `json:"medians"`
}

func toDoc(states []monitor.SeriesState) snapshotDoc {
	doc := snapshotDoc{Version: snapshotVersion, Series: make([]seriesDoc, 0, len(states))}
	for _, s := range states {
		sd := seriesDoc{
			Source: s.Key.Source,
			Metric: s.Key.Metric,
			Scope:  s.Key.Scope.String(),
			ID:     s.Key.ID,
			Labels: s.Key.Labels.Map(),
			Raw:    s.Raw,
		}
		if s.Compaction == monitor.CompactLast {
			sd.Compaction = "last"
		}
		for _, t := range s.Tiers {
			td := tierDoc{Res: t.Res, Buckets: t.Buckets}
			if o := t.Open; o != nil {
				td.Open = &openDoc{
					Start: o.Start, Count: o.Count,
					Min: o.Min, Max: o.Max, Sum: o.Sum,
					LastT: o.LastT, LastV: o.LastV,
					Medians: o.Medians,
				}
			}
			sd.Tiers = append(sd.Tiers, td)
		}
		doc.Series = append(doc.Series, sd)
	}
	return doc
}

func fromDoc(doc snapshotDoc) ([]monitor.SeriesState, error) {
	if doc.Version != snapshotVersion {
		return nil, fmt.Errorf("persist: snapshot version %d, this build reads %d", doc.Version, snapshotVersion)
	}
	states := make([]monitor.SeriesState, 0, len(doc.Series))
	for i, sd := range doc.Series {
		scope, err := monitor.ParseScope(sd.Scope)
		if err != nil {
			return nil, fmt.Errorf("persist: snapshot series %d: %w", i, err)
		}
		labels, err := monitor.MakeLabels(sd.Labels)
		if err != nil {
			return nil, fmt.Errorf("persist: snapshot series %d: %w", i, err)
		}
		state := monitor.SeriesState{
			Key: monitor.Key{Source: sd.Source, Metric: sd.Metric, Scope: scope, ID: sd.ID, Labels: labels},
			Raw: sd.Raw,
		}
		if sd.Compaction == "last" {
			state.Compaction = monitor.CompactLast
		}
		for _, td := range sd.Tiers {
			ts := monitor.TierState{Res: td.Res, Buckets: td.Buckets}
			if o := td.Open; o != nil {
				ts.Open = &monitor.OpenBucketState{
					Start: o.Start, Count: o.Count,
					Min: o.Min, Max: o.Max, Sum: o.Sum,
					LastT: o.LastT, LastV: o.LastV,
					Medians: o.Medians,
				}
			}
			state.Tiers = append(state.Tiers, ts)
		}
		states = append(states, state)
	}
	return states, nil
}

// writeSnapshot persists the states atomically: encode to a temp file
// in the same directory, fsync it, rename over the target, fsync the
// directory.  A crash at any step leaves either the old snapshot or the
// new one, never a torn file.
func writeSnapshot(path string, states []monitor.SeriesState) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(toDoc(states)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshot loads a snapshot; a missing file restores nothing.
func readSnapshot(path string) ([]monitor.SeriesState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc snapshotDoc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("persist: corrupt snapshot %s: %w", path, err)
	}
	return fromDoc(doc)
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
