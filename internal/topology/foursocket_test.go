package topology

import (
	"strings"
	"testing"

	"likwid/internal/hwdef"
)

func TestWestmereEXFourSockets(t *testing.T) {
	info := probe(t, "westmereEX")
	if info.Sockets != 4 || info.CoresPerSocket != 6 || info.ThreadsPerCore != 2 {
		t.Fatalf("geometry = %d/%d/%d, want 4/6/2",
			info.Sockets, info.CoresPerSocket, info.ThreadsPerCore)
	}
	if len(info.Threads) != 48 {
		t.Fatalf("threads = %d, want 48", len(info.Threads))
	}
	// Processors 0-5 socket 0 ... 18-23 socket 3; SMT siblings 24-47.
	if got := info.Threads[18].SocketID; got != 3 {
		t.Errorf("proc 18 socket = %d, want 3", got)
	}
	if got := info.Threads[42].SocketID; got != 3 {
		t.Errorf("proc 42 (SMT) socket = %d, want 3", got)
	}
	// Four L3 groups of 12 threads each.
	var l3 *Cache
	for i := range info.Caches {
		if info.Caches[i].Level == 3 {
			l3 = &info.Caches[i]
		}
	}
	if l3 == nil || len(l3.Groups) != 4 || l3.SharedBy != 12 {
		t.Fatalf("L3 = %+v", l3)
	}
	// NUMA: four domains with a 4x4 distance matrix.
	info.AttachNUMA(NUMAFromArch(hwdef.WestmereEX, info, 0))
	if len(info.NUMA) != 4 {
		t.Fatalf("NUMA domains = %d, want 4", len(info.NUMA))
	}
	for i, d := range info.NUMA {
		if len(d.Distances) != 4 {
			t.Fatalf("domain %d distances = %v", i, d.Distances)
		}
		for j, dist := range d.Distances {
			want := 21
			if i == j {
				want = 10
			}
			if dist != want {
				t.Errorf("distance[%d][%d] = %d, want %d", i, j, dist, want)
			}
		}
	}
	out := info.Render(RenderOptions{NUMA: true})
	if !strings.Contains(out, "NUMA domains: 4") {
		t.Error("render missing the 4-domain NUMA section")
	}
}

func TestBaniasLeaf2Decode(t *testing.T) {
	info := probe(t, "pentiumM-banias")
	found := map[int]int{}
	for _, c := range info.Caches {
		found[c.Level] = c.SizeKB
	}
	if found[1] != 32 || found[2] != 1024 {
		t.Errorf("Banias caches = %v, want L1 32kB / L2 1MB via descriptor 0x7C", found)
	}
}
