package monitor

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// PushOptions configure a push sink.  Zero values take the defaults
// noted per field.
type PushOptions struct {
	// URL is the receiver's ingest endpoint
	// (e.g. http://collector:8090/ingest).  Required.
	URL string
	// FlushSamples triggers a POST once this many samples are pending
	// (default 64).  Close always flushes the remainder.
	FlushSamples int
	// MaxBuffered bounds the pending samples kept across failed pushes
	// (default 4096); beyond it the oldest are dropped and counted, so a
	// dead receiver costs history, never memory.
	MaxBuffered int
	// MaxAttempts is the number of POST tries per flush (default 3).
	MaxAttempts int
	// RetryBase is the first retry backoff, doubling per attempt
	// (default 100 ms).
	RetryBase time.Duration
	// Source identifies this agent at the receiver: when set, it is
	// carried as the per-sample "source" field of the v2 wire schema and
	// lands in Key.Source at the receiver, so several agents pushing the
	// same group do not collapse into one series.  Samples that already
	// carry their own Source (a receiver re-pushing a fleet store) keep
	// it; this option only labels sourceless samples.  Empty means
	// unlabelled (single-agent setups).
	Source string
	// Context bounds the retry backoff: when it is cancelled (agent
	// shutdown), an in-flight flush stops sleeping between attempts, so
	// Close against a dead receiver returns promptly instead of walking
	// the whole backoff ladder.  Nil means never cancelled.
	Context context.Context
	// Client defaults to an http.Client with a 10 s timeout.
	Client *http.Client
}

func (o PushOptions) withDefaults() PushOptions {
	if o.FlushSamples <= 0 {
		o.FlushSamples = 64
	}
	if o.MaxBuffered <= 0 {
		o.MaxBuffered = 4096
	}
	if o.MaxBuffered < o.FlushSamples {
		o.MaxBuffered = o.FlushSamples
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return o
}

// PushSink ships batches to a remote receiver — the distributed half of
// the monitoring stack (Röhl et al., arXiv:1708.01476): every node agent
// pushes, one receiver aggregates.  Samples are encoded as JSON lines
// (the jsonl sink's exact record shape), gzipped, and POSTed to the
// receiver's /ingest endpoint with bounded retry and bounded buffering.
// Like every sink it runs on the dispatcher goroutine, so a slow
// receiver delays other sinks at most MaxAttempts backoffs per flush;
// the sampling path itself is protected by the dispatcher's
// drop-and-count queue.
type PushSink struct {
	opts    PushOptions
	pending []jsonSample

	sent    atomic.Uint64 // samples acknowledged by the receiver
	pushes  atomic.Uint64 // successful POSTs
	dropped atomic.Uint64 // samples evicted from the pending buffer
	retries atomic.Uint64 // failed POST attempts
}

// NewPushSink creates a push sink; it does not contact the receiver
// until the first flush, so agents come up even when the collector is
// still down.
func NewPushSink(opts PushOptions) (*PushSink, error) {
	if strings.TrimSpace(opts.URL) == "" {
		return nil, fmt.Errorf("monitor: push sink needs a receiver URL")
	}
	return &PushSink{opts: opts.withDefaults()}, nil
}

// Name implements Sink.
func (p *PushSink) Name() string { return "push" }

// Sent counts samples acknowledged by the receiver.
func (p *PushSink) Sent() uint64 { return p.sent.Load() }

// Pushes counts successful POSTs.
func (p *PushSink) Pushes() uint64 { return p.pushes.Load() }

// Dropped counts samples evicted from the pending buffer while the
// receiver was unreachable.
func (p *PushSink) Dropped() uint64 { return p.dropped.Load() }

// Retries counts failed POST attempts.
func (p *PushSink) Retries() uint64 { return p.retries.Load() }

// Write buffers the batch and flushes once FlushSamples are pending.  A
// flush that exhausts its attempts returns the error but keeps the
// samples buffered (bounded by MaxBuffered) for the next flush.
func (p *PushSink) Write(b Batch) error {
	// A batch's samples almost always share one interned label set:
	// reuse the previous sample's wire map (read-only downstream)
	// instead of rebuilding it per record.
	var (
		lastLs  Labels
		lastMap map[string]string
	)
	for _, sm := range b.Samples {
		source := sm.Source
		if source == "" {
			source = p.opts.Source
		}
		if sm.Labels != lastLs || lastMap == nil {
			lastLs, lastMap = sm.Labels, sm.Labels.Map()
		}
		p.pending = append(p.pending, jsonSample{
			Time:      sm.Time,
			Collector: b.Collector,
			Source:    source,
			Labels:    lastMap,
			Metric:    sm.Metric,
			Scope:     sm.Scope.String(),
			ID:        sm.ID,
			Value:     sm.Value,
		})
	}
	if over := len(p.pending) - p.opts.MaxBuffered; over > 0 {
		p.pending = p.pending[over:]
		p.dropped.Add(uint64(over))
	}
	if len(p.pending) < p.opts.FlushSamples {
		return nil
	}
	return p.flush()
}

// Close flushes the remainder and reports the last push error.
func (p *PushSink) Close() error {
	if len(p.pending) == 0 {
		return nil
	}
	return p.flush()
}

// encodePending renders the pending samples in the wire format: one JSON
// object per line, the same record shape the jsonl file sink writes.
func (p *PushSink) encodePending() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, js := range p.pending {
		if err := enc.Encode(js); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func (p *PushSink) flush() error {
	payload, err := p.encodePending()
	if err != nil {
		return err
	}
	var body bytes.Buffer
	zw := gzip.NewWriter(&body)
	if _, err := zw.Write(payload); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}

	err = RetryWithBackoff(p.opts.Context, p.opts.MaxAttempts, p.opts.RetryBase,
		func() { p.retries.Add(1) },
		func() error { return p.post(body.Bytes()) })
	if err != nil {
		return fmt.Errorf("monitor: push to %s failed after %d attempts: %w",
			p.opts.URL, p.opts.MaxAttempts, err)
	}
	n := len(p.pending)
	p.pending = p.pending[:0]
	p.sent.Add(uint64(n))
	p.pushes.Add(1)
	return nil
}

// RetryWithBackoff runs op up to maxAttempts times, sleeping base,
// 2*base, 4*base, ... between attempts — the suite's bounded-retry
// discipline, shared by the push sink and the alert webhook notifier so
// the backoff behavior cannot silently diverge.  onFail observes each
// failed attempt (e.g. a retry counter); the last error is returned when
// every attempt fails.
//
// The context bounds only the waiting, not the attempts: the first
// attempt always runs (a shutdown flush still gets its one try at the
// receiver), but a cancelled context aborts the backoff sleeps, so
// shutdown never blocks for the full ladder against a dead endpoint.
// A nil context never cancels.
func RetryWithBackoff(ctx context.Context, maxAttempts int, base time.Duration, onFail func(), op func() error) error {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if ctx == nil {
				time.Sleep(base << uint(attempt-1))
			} else {
				t := time.NewTimer(base << uint(attempt-1))
				select {
				case <-ctx.Done():
					t.Stop()
					return lastErr
				case <-t.C:
				}
			}
		}
		if lastErr = op(); lastErr == nil {
			return nil
		}
		if onFail != nil {
			onFail()
		}
	}
	return lastErr
}

func (p *PushSink) post(gzipped []byte) error {
	req, err := http.NewRequest(http.MethodPost, p.opts.URL, bytes.NewReader(gzipped))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("receiver returned %s", resp.Status)
	}
	return nil
}
