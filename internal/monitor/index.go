package monitor

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the store's inverted selector index: postings lists
// keyed by metric name (raw and sanitized form), source, and individual
// label pair, so a selector resolves in O(matched) instead of scanning
// every stored series.  The index is maintained incrementally on series
// creation — the rare cold path that already clones the key snapshot —
// and never touched by the per-sample append hot path, which stays one
// atomic load plus one map access with zero allocations.
//
// Every read surface funnels through Store.Select: /query's
// exact/wildcard/label fan-out, the /metrics sanitized-name reverse
// lookup, and the alert and derive engines' per-rule member resolution.
// The engines additionally cache their resolved key sets against the
// index generation (IndexGen), so on a warm store — new series are rare
// after warm-up — steady-state rule evaluation does zero matching work.

// Selector describes one read-path series selection, the common core of
// the /query parameters and the alert/derive DSL selectors.  The zero
// value selects local (sourceless) node-scope series of the empty
// metric — callers always set at least Metric.
type Selector struct {
	// Source is the agent pattern matched against Key.Source: exact, or
	// '*' wildcards.  Empty selects only local (sourceless) series —
	// the alert DSL reading — unless AnySource lifts it.
	Source string
	// AnySource matches every source, the derive DSL's reading of an
	// omitted source selector (a recorded rule sweeps the whole fleet).
	AnySource bool
	// Metric is the metric pattern: an exact name, a sanitized
	// exposition form ("memory_bandwidth_mbytes_s" finds "Memory
	// bandwidth [MBytes/s]"), or '*' wildcards.
	Metric string
	// QueryForm switches metric matching to the /query dialect: a
	// leading "likwid_" prefix is stripped for the sanitized
	// comparison, and wildcards also try the sanitized form.  The
	// default is the DSL dialect (alert and derive rules), where
	// wildcards match the raw name only.
	QueryForm bool
	// Labels are the label selectors: every named label must be present
	// with a matching value ('*' wildcards).  Nil matches every series,
	// labelled or not.
	Labels []Label
	// Scope restricts to one topology domain unless AnyScope is set.
	Scope    Scope
	AnyScope bool
	// ID restricts to one entity index unless AnyID is set.
	ID    int
	AnyID bool
}

// Match reports whether the selector picks one series key — the
// brute-force predicate Select is an index over.  Select's results are
// exactly the stored keys for which Match holds, in Keys() order.
func (sel Selector) Match(k Key) bool {
	if !sel.AnyScope && k.Scope != sel.Scope {
		return false
	}
	if !sel.AnyID && k.ID != sel.ID {
		return false
	}
	if !sel.AnySource && !MatchSource(sel.Source, k.Source) {
		return false
	}
	if !MatchLabels(sel.Labels, k.Labels) {
		return false
	}
	return sel.matchMetric(k.Metric)
}

// matchMetric matches the metric dimension in the selector's dialect.
func (sel Selector) matchMetric(name string) bool {
	if sel.QueryForm {
		want := strings.TrimPrefix(sel.Metric, "likwid_")
		if strings.Contains(sel.Metric, "*") {
			// A wildcard matches the raw name or its exposition form, so
			// metric=cluster_* finds a derived family and metric=memory_*
			// finds "Memory bandwidth [MBytes/s]" alike.
			return WildcardMatch(want, name) || WildcardMatch(want, SanitizeMetric(name))
		}
		return name == sel.Metric || SanitizeMetric(name) == want
	}
	return MatchMetric(sel.Metric, name)
}

// invertedIndex is the store's read-side key index.  Series get a
// stable ordinal in creation order; postings lists hold ordinals
// ascending (appends keep them sorted for free), and the canonical
// Keys() order is maintained incrementally as a sorted permutation plus
// its inverse (rank), so neither Keys nor Select ever sorts the full
// key space.
//
// The index has its own lock — writes ride the series-creation slow
// path (already serialized by Store.mu), reads are Select and Keys.
// The append hot path never touches it.
type invertedIndex struct {
	mu  sync.RWMutex
	gen atomic.Uint64 // bumped per created series; read lock-free

	keys   []Key   // by ordinal (creation order)
	sorted []int32 // ordinals in canonical Keys() order
	rank   []int32 // ordinal -> position in sorted

	byMetric    map[string][]int32
	bySanitized map[string][]int32
	bySource    map[string][]int32
	byLabel     map[Label][]int32

	postings int // total postings entries, for the /status gauge
}

func newInvertedIndex() *invertedIndex {
	return &invertedIndex{
		byMetric:    map[string][]int32{},
		bySanitized: map[string][]int32{},
		bySource:    map[string][]int32{},
		byLabel:     map[Label][]int32{},
	}
}

// keyLess is the canonical series order: source, metric, scope, id,
// labels — local series first, then one block per agent, unlabelled
// before labelled variants of the same series.  Labels.String is the
// interned canonical encoding, O(1) and allocation-free.
func keyLess(a, b Key) bool {
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	if a.Scope != b.Scope {
		return a.Scope < b.Scope
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Labels.String() < b.Labels.String()
}

// post appends one ordinal to every postings list the key belongs to.
// Ordinals only ever grow, so the lists stay sorted without sorting.
func (ix *invertedIndex) post(k Key, ord int32) {
	ix.byMetric[k.Metric] = append(ix.byMetric[k.Metric], ord)
	san := SanitizeMetric(k.Metric)
	ix.bySanitized[san] = append(ix.bySanitized[san], ord)
	ix.bySource[k.Source] = append(ix.bySource[k.Source], ord)
	n := 3
	if k.Labels.set != nil {
		for _, p := range k.Labels.set.pairs {
			ix.byLabel[p] = append(ix.byLabel[p], ord)
		}
		n += len(k.Labels.set.pairs)
	}
	ix.postings += n
}

// add indexes one new series key (the single-create path).  The sorted
// permutation takes a binary-searched insert; the rank shift is a tail
// rewrite — O(N) worst case, on a path that already clones an O(N)
// map snapshot.
func (ix *invertedIndex) add(k Key) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ord := int32(len(ix.keys))
	ix.keys = append(ix.keys, k)
	ix.post(k, ord)
	pos := sort.Search(len(ix.sorted), func(i int) bool {
		return keyLess(k, ix.keys[ix.sorted[i]])
	})
	ix.sorted = append(ix.sorted, 0)
	copy(ix.sorted[pos+1:], ix.sorted[pos:])
	ix.sorted[pos] = ord
	ix.rank = append(ix.rank, 0)
	for i := pos; i < len(ix.sorted); i++ {
		ix.rank[ix.sorted[i]] = int32(i)
	}
	ix.gen.Add(1)
}

// addMany indexes a batch of new keys in one pass: postings appends
// stay O(1) per key, and the canonical permutation is re-sorted once —
// the bulk path behind AppendBatch and RestoreState, so a 100k-series
// WAL replay or snapshot restore rebuilds the index in O(N log N)
// instead of N incremental inserts.
func (ix *invertedIndex) addMany(keys []Key) {
	if len(keys) == 0 {
		return
	}
	if len(keys) == 1 {
		ix.add(keys[0])
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, k := range keys {
		ord := int32(len(ix.keys))
		ix.keys = append(ix.keys, k)
		ix.post(k, ord)
		ix.sorted = append(ix.sorted, ord)
		ix.rank = append(ix.rank, 0)
	}
	sort.Slice(ix.sorted, func(i, j int) bool {
		return keyLess(ix.keys[ix.sorted[i]], ix.keys[ix.sorted[j]])
	})
	for i, ord := range ix.sorted {
		ix.rank[ord] = int32(i)
	}
	ix.gen.Add(uint64(len(keys)))
}

// sortedKeys copies the canonical key order — Keys() without a sort.
func (ix *invertedIndex) sortedKeys() []Key {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Key, len(ix.sorted))
	for i, ord := range ix.sorted {
		out[i] = ix.keys[ord]
	}
	return out
}

func (ix *invertedIndex) size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.postings
}

// IndexGen is the monotonic generation of the selector index.  It moves
// exactly when the stored key set grows, so read-side caches (the alert
// and derive engines' per-rule resolutions) can skip re-matching while
// it holds still: Select(sel) at one generation returns the same keys
// as at any later moment of the same generation.
func (st *Store) IndexGen() uint64 { return st.inv.gen.Load() }

// Select returns every stored series key the selector matches, in the
// canonical Keys() order, resolving through the inverted index: the
// exact dimensions of the selector (a non-wildcard metric, source, or
// label pair) pick candidate postings lists, their intersection is
// post-filtered by Match, and only the matched keys are sorted.  A
// selector with no exact dimension (metric and source both wildcarded,
// only wildcard label values) degenerates to a scan — there is nothing
// to index a '*' on.
func (st *Store) Select(sel Selector) []Key {
	ix := st.inv
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	cands, restricted := ix.candidates(sel)
	if !restricted {
		// Full scan, but in canonical order, so no sort afterwards.
		var out []Key
		for _, ord := range ix.sorted {
			if k := ix.keys[ord]; sel.Match(k) {
				out = append(out, k)
			}
		}
		return out
	}
	var ords []int32
	for _, ord := range cands {
		if sel.Match(ix.keys[ord]) {
			ords = append(ords, ord)
		}
	}
	sort.Slice(ords, func(i, j int) bool { return ix.rank[ords[i]] < ix.rank[ords[j]] })
	out := make([]Key, len(ords))
	for i, ord := range ords {
		out[i] = ix.keys[ord]
	}
	return out
}

// candidates resolves the selector's exact dimensions to a candidate
// postings intersection.  The lists are supersets per dimension (Match
// does the final word), but never miss a matching series: a
// non-wildcard metric pattern can only match keys whose raw or
// sanitized name equals the pattern's form, an exact source only keys
// posted under it, a non-wildcard label selector only keys carrying
// that exact pair.  restricted=false means no exact dimension exists
// and the caller must scan.
func (ix *invertedIndex) candidates(sel Selector) ([]int32, bool) {
	var cands []int32
	restricted := false
	narrow := func(p []int32) {
		if !restricted {
			cands, restricted = p, true
			return
		}
		cands = intersectPostings(cands, p)
	}
	if !strings.Contains(sel.Metric, "*") {
		if sel.QueryForm {
			narrow(unionPostings(ix.byMetric[sel.Metric],
				ix.bySanitized[strings.TrimPrefix(sel.Metric, "likwid_")]))
		} else {
			narrow(ix.bySanitized[SanitizeMetric(sel.Metric)])
		}
	}
	if !sel.AnySource && !strings.Contains(sel.Source, "*") {
		narrow(ix.bySource[sel.Source])
	}
	for _, l := range sel.Labels {
		if !strings.Contains(l.Value, "*") {
			narrow(ix.byLabel[l])
		}
	}
	return cands, restricted
}

// intersectPostings intersects two ascending ordinal lists.
func intersectPostings(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int32
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) {
			break
		}
		if b[j] == v {
			out = append(out, v)
			j++
		}
	}
	return out
}

// unionPostings merges two ascending ordinal lists, deduplicated.
func unionPostings(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
