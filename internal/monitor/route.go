package monitor

import (
	"fmt"
	"sync/atomic"

	"likwid/internal/telemetry"
)

// Ingest routing: the receiver's retag stage.  A fleet funnels pushes
// from dozens of agents through one /ingest endpoint; routes let the
// operator normalize that stream at the fan-in point — drop noisy
// series, rename metrics that differ across agent versions, stamp or
// strip labels — before anything is interned or stored.  Routes run in
// the decode aisle of handleIngest, on the raw wire representation
// (samples plus their uninterned label maps), so a dropped sample
// leaves no residue and a relabel never pays double interning.
//
// Routes are declared in the derive rule file (internal/derive parses
// them: "route drop ...", "route rename ... -> NAME", "route relabel
// ... set k=\"v\"") and handed to the sink as a Router via SetRouter.

// RouteAction is the transform an ingest route applies.
type RouteAction int

const (
	// RouteDrop discards matching samples.
	RouteDrop RouteAction = iota
	// RouteRename rewrites the metric name of matching samples.
	RouteRename
	// RouteRelabel sets (or, with an empty value, deletes) labels on
	// matching samples.
	RouteRelabel
)

var routeActionNames = [...]string{"drop", "rename", "relabel"}

// String returns the spec-language action name.
func (a RouteAction) String() string {
	if a < 0 || int(a) >= len(routeActionNames) {
		return fmt.Sprintf("action(%d)", int(a))
	}
	return routeActionNames[a]
}

// IngestRoute is one parsed routing transform.
type IngestRoute struct {
	// Source selects samples by pushing agent ('*' wildcards).  Empty
	// matches every source — a route is a fan-in transform, so unlike an
	// alert selector it has no "local only" reading.
	Source string
	// Metric selects samples by metric name: exact, '*' wildcards, or
	// sanitized-form equality (monitor.MatchMetric).
	Metric string
	// Matchers restrict the route to samples whose wire label map
	// carries every named label with a matching value ('*' wildcards).
	Matchers []Label
	// Action is the transform applied to matching samples.
	Action RouteAction
	// NewMetric is the replacement name (RouteRename only).
	NewMetric string
	// Set are the label assignments (RouteRelabel only); an empty Value
	// deletes the label.
	Set []Label
	// Spec is the route line in spec syntax, for status reporting.
	Spec string
	// Line is the 1-based line of the route in its spec file.
	Line int
}

// matches reports whether the route picks one wire sample.
func (r *IngestRoute) matches(s *Sample, labels map[string]string) bool {
	if r.Source != "" && !MatchSource(r.Source, s.Source) {
		return false
	}
	if !MatchLabelMap(r.Matchers, labels) {
		return false
	}
	return MatchMetric(r.Metric, s.Metric)
}

// routeState pairs a route with its hit accounting.
type routeState struct {
	route   IngestRoute
	matched atomic.Uint64
}

// Router applies an ordered route list to a decoded ingest batch.  It
// is immutable after construction — reload builds a new Router and the
// sink swaps the pointer — so Apply runs lock-free under concurrent
// ingest handlers; the per-route counters are atomics.
type Router struct {
	routes []*routeState

	// Registry counters by action, resolved by Instrument (nil until
	// then).  The registry dedups by id, so a reloaded Router's
	// Instrument returns the same underlying counters and fleet totals
	// survive route-file reloads.
	tRouted [len(routeActionNames)]*telemetry.Counter
}

// NewRouter builds a Router over an ordered route list.
func NewRouter(routes []IngestRoute) *Router {
	r := &Router{routes: make([]*routeState, len(routes))}
	for i := range routes {
		r.routes[i] = &routeState{route: routes[i]}
	}
	return r
}

// Len returns the number of routes.
func (r *Router) Len() int { return len(r.routes) }

// Instrument registers the routing counters on reg.
func (r *Router) Instrument(reg *telemetry.Registry) {
	for a, name := range routeActionNames {
		r.tRouted[a] = reg.Counter("likwid_ingest_routed_total", "action", name)
	}
}

// RouteStatus is one route's spec and hit accounting, the GET /derive
// status shape.
type RouteStatus struct {
	Spec    string `json:"spec"`
	Action  string `json:"action"`
	Matched uint64 `json:"matched"`
}

// Statuses lists every route with its match count, in route order.
func (r *Router) Statuses() []RouteStatus {
	out := make([]RouteStatus, len(r.routes))
	for i, rs := range r.routes {
		out[i] = RouteStatus{
			Spec:    rs.route.Spec,
			Action:  rs.route.Action.String(),
			Matched: rs.matched.Load(),
		}
	}
	return out
}

// Apply runs the route list over a decoded batch, in route order per
// sample: a drop ends that sample's processing; a rename feeds the new
// name to later routes; a relabel copies the wire label map before
// mutating it (v4 decode shares one map across a series group, and the
// untouched samples must keep their original labels).  The three
// slices are index-aligned and are compacted in place; the returned
// slices alias the inputs.
//
// A relabel that pushes a sample past the label-count cap rejects the
// whole batch (the ingest contract is all-or-nothing): the route file
// and the payload disagree, and silently dropping labels would hide
// it.
func (r *Router) Apply(samples []Sample, labelMaps []map[string]string, sentAts []float64) ([]Sample, []map[string]string, []float64, error) {
	if len(r.routes) == 0 {
		return samples, labelMaps, sentAts, nil
	}
	n := 0
	for i := range samples {
		s := samples[i]
		labels := labelMaps[i]
		dropped := false
		copied := false
		for _, rs := range r.routes {
			if !rs.route.matches(&s, labels) {
				continue
			}
			rs.matched.Add(1)
			if c := r.tRouted[rs.route.Action]; c != nil {
				c.Inc()
			}
			switch rs.route.Action {
			case RouteDrop:
				dropped = true
			case RouteRename:
				s.Metric = rs.route.NewMetric
			case RouteRelabel:
				if !copied {
					next := make(map[string]string, len(labels)+len(rs.route.Set))
					for k, v := range labels {
						next[k] = v
					}
					labels, copied = next, true
				}
				for _, set := range rs.route.Set {
					if set.Value == "" {
						delete(labels, set.Name)
					} else {
						labels[set.Name] = set.Value
					}
				}
			}
			if dropped {
				break
			}
		}
		if dropped {
			continue
		}
		if len(labels) > maxLabels {
			return nil, nil, nil, fmt.Errorf("monitor: route %q leaves sample labels %q over the limit of %d labels",
				routeFor(r, &s, labels), FormatLabelMap(labels), maxLabels)
		}
		samples[n], labelMaps[n], sentAts[n] = s, labels, sentAts[i]
		n++
	}
	return samples[:n], labelMaps[:n], sentAts[:n], nil
}

// routeFor names the last relabel route matching a sample, for the
// over-cap error message.
func routeFor(r *Router, s *Sample, labels map[string]string) string {
	spec := "?"
	for _, rs := range r.routes {
		if rs.route.Action == RouteRelabel && rs.route.matches(s, labels) {
			spec = rs.route.Spec
		}
	}
	return spec
}
