package derive

import (
	"fmt"
	"testing"

	"likwid/internal/monitor"
)

// benchEngine builds a 1000-series labelled store and one grouped
// roll-up rule over it — the shared fixture of the eval benchmarks.
func benchEngine(b *testing.B) (*Engine, *Rule) {
	b.Helper()
	st := monitor.NewStore(64)
	for n := 0; n < 1000; n++ {
		labels, err := monitor.MakeLabels(map[string]string{"job": fmt.Sprintf("job%d", n%8)})
		if err != nil {
			b.Fatal(err)
		}
		k := monitor.Key{
			Source: fmt.Sprintf("node%03d", n),
			Metric: "flops_dp",
			Scope:  monitor.ScopeNode,
			Labels: labels,
		}
		for i := 0; i < 30; i++ {
			st.Append(k, monitor.Point{Time: float64(i), Value: float64(n + i)})
		}
	}
	r, err := ParseRule(`cluster_flops = sum(flops_dp) by (job) over 30s`, 1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(Options{Store: st, Clock: monitor.NewFakeClock()}, []*Rule{r})
	if err != nil {
		b.Fatal(err)
	}
	return e, r
}

// BenchmarkDeriveEval evaluates one grouped roll-up over a 1000-series
// store — the cost of a single recorded-rule evaluation at fleet scale.
// The hit sub-benchmark is the steady state: the selector resolution
// (matched keys, grouping, interned output labels) is served from the
// per-rule cache while the store's index generation holds still.  The
// cold sub-benchmark invalidates the cache every iteration, measuring
// the full re-resolution through the selector index — the price paid
// when new series appear.  Evaluation reads the store through the same
// index and window paths as any reader; the append hot path (pinned at
// 0 allocs/op by the monitor benchmarks) is never entered.
func BenchmarkDeriveEval(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e, _ := benchEngine(b)
		e.EvalNow() // warm: first eval emits outputs and caches resolution
		e.EvalNow() // second: generation settled after the emitted series
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.EvalNow()
		}
	})
	b.Run("cold", func(b *testing.B) {
		e, _ := benchEngine(b)
		e.EvalNow()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.invalidateResolutions()
			e.EvalNow()
		}
	})
}
