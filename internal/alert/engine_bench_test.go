package alert

import (
	"fmt"
	"testing"

	"likwid/internal/monitor"
)

// populateFleetStore bulk-loads n series shaped like a fleet receiver:
// n/100 metrics × 25 sources × 4 core ids, one point each.
func populateFleetStore(tb testing.TB, n int) *monitor.Store {
	tb.Helper()
	st := monitor.NewStore(8)
	metrics := n / 100
	if metrics < 1 {
		metrics = 1
	}
	var b monitor.Batch
	for m := 0; m < metrics; m++ {
		for s := 0; s < 25; s++ {
			for id := 0; id < 4; id++ {
				b.Samples = append(b.Samples, monitor.Sample{
					Source: fmt.Sprintf("node%02d", s),
					Metric: fmt.Sprintf("metric_%03d", m),
					Scope:  monitor.ScopeCore, ID: id,
					Time: 1, Value: 1,
				})
			}
		}
	}
	st.AppendBatch(b)
	return st
}

// TestEvalAllocsSteadyState is the regression pin for the satellite
// fix: once a rule's resolution is cached and its window buffer warm,
// an evaluation over an unchanged store must not allocate — no fresh
// []monitor.Key per eval, no fresh window per series.
func TestEvalAllocsSteadyState(t *testing.T) {
	store := monitor.NewStore(64)
	appendNode(store, "bw", 0, 10, 1, 50)
	rules, err := ParseRules("hot: avg(bw, node, 10s) > 1e12 for 0s")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Options{Store: store}, rules)
	if err != nil {
		t.Fatal(err)
	}
	r := rules[0]
	e.evalRule(r) // warm the resolution cache and window buffer
	allocs := testing.AllocsPerRun(1000, func() { e.evalRule(r) })
	if allocs > 0 {
		t.Fatalf("steady-state evalRule allocates %.1f objects/eval, want 0", allocs)
	}
}

// BenchmarkAlertEvalLargeStore evaluates one fleet-wide rule (wildcard
// source, exact metric: ~1% of the store matches) at receiver scale.
// The cached sub-benchmark is the steady state — resolution served from
// the per-rule cache; cold re-resolves through the index every eval,
// the price paid when the index generation moves.
func BenchmarkAlertEvalLargeStore(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		store := populateFleetStore(b, n)
		rules, err := ParseRules("hot: avg(node*/metric_000, core, 10s) > 1e12 for 0s")
		if err != nil {
			b.Fatal(err)
		}
		e, err := NewEngine(Options{Store: store}, rules)
		if err != nil {
			b.Fatal(err)
		}
		r := rules[0]
		b.Run(fmt.Sprintf("series=%d/cached", n), func(b *testing.B) {
			e.evalRule(r) // warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.evalRule(r)
			}
		})
		b.Run(fmt.Sprintf("series=%d/cold", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.mu.Lock()
				e.state[r.Name].resValid = false
				e.mu.Unlock()
				e.evalRule(r)
			}
		})
	}
}
