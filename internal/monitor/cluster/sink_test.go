package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"likwid/internal/monitor"
)

// newReceiver boots a real receiver (store + HTTP sink on a loopback
// port) and returns its store, sink, and ingest URL.
func newReceiver(t *testing.T) (*monitor.Store, *monitor.HTTPSink, string) {
	t.Helper()
	store := monitor.NewStore(256)
	h, err := monitor.NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return store, h, "http://" + h.Addr() + "/ingest"
}

// deadURL returns an ingest URL nothing listens on: bind a port, close
// it, keep the address.
func deadURL(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return "http://" + addr + "/ingest"
}

// batchOf builds a one-sample batch for metric at time tm.
func batchOf(metric string, tm, v float64) monitor.Batch {
	return monitor.Batch{Collector: "test", Time: tm, Samples: []monitor.Sample{
		{Metric: metric, Scope: monitor.ScopeNode, ID: 0, Time: tm, Value: v},
	}}
}

// window fetches one series' points from a receiver store under the
// agent identity the cluster sink stamps.
func window(store *monitor.Store, source, metric string) []monitor.Point {
	return store.Window(monitor.Key{Source: source, Metric: metric, Scope: monitor.ScopeNode, ID: 0}, 0, -1)
}

// TestClusterShardPartitioning pins the tentpole invariant: under shard
// policy every series lands on exactly the receiver the ring assigns it,
// and a realistic metric population splits across the pool.
func TestClusterShardPartitioning(t *testing.T) {
	store1, _, url1 := newReceiver(t)
	store2, _, url2 := newReceiver(t)
	s, err := New(Options{
		Targets:      []string{url1, url2},
		Policy:       PolicyShard,
		Source:       "agent",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics := make([]string, 40)
	for i := range metrics {
		metrics[i] = "m" + string(rune('a'+i/10)) + string(rune('0'+i%10))
		if err := s.Write(batchOf(metrics[i], 1, float64(i))); err != nil {
			t.Fatalf("write %s: %v", metrics[i], err)
		}
	}
	ring := s.Ring()
	stores := map[string]*monitor.Store{hostOf(t, url1): store1, hostOf(t, url2): store2}
	both := map[string]bool{}
	for _, m := range metrics {
		owner := ring.LookupKey(monitor.Key{Source: "agent", Metric: m, Scope: monitor.ScopeNode, ID: 0})
		both[owner] = true
		for name, st := range stores {
			got := len(window(st, "agent", m))
			want := 0
			if name == owner {
				want = 1
			}
			if got != want {
				t.Errorf("metric %s on %s: %d points, want %d (owner %s)", m, name, got, want, owner)
			}
		}
	}
	if len(both) != 2 {
		t.Errorf("40 series landed on %d of 2 targets; partition did not spread", len(both))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := s.Dropped(); d != 0 {
		t.Errorf("dropped %d samples with every target healthy", d)
	}
}

// hostOf extracts a target's pool-member name from its ingest URL.
func hostOf(t *testing.T, url string) string {
	t.Helper()
	u, err := normalizeTarget(url)
	if err != nil {
		t.Fatal(err)
	}
	return u.name
}

// TestClusterFailover pins the ordered-fallback policy: everything goes
// to the primary while it lives; when it dies mid-stream the stranded
// pending re-routes to the standby and nothing is lost.
func TestClusterFailover(t *testing.T) {
	store1, h1, url1 := newReceiver(t)
	store2, _, url2 := newReceiver(t)
	s, err := New(Options{
		Targets:      []string{url1, url2},
		Policy:       PolicyFailover,
		Source:       "agent",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Write(batchOf("bw", float64(i), float64(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if n := len(window(store1, "agent", "bw")); n != 10 {
		t.Fatalf("primary has %d points, want 10", n)
	}
	if n := len(window(store2, "agent", "bw")); n != 0 {
		t.Fatalf("standby has %d points before failover, want 0", n)
	}
	// Kill the primary mid-stream; the next write must fail over.
	_ = h1.Close()
	for i := 10; i < 20; i++ {
		_ = s.Write(batchOf("bw", float64(i), float64(i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(window(store2, "agent", "bw")); n != 10 {
		t.Errorf("standby has %d points after failover, want 10", n)
	}
	st := s.Status()
	if st[0].Failovers == 0 {
		t.Error("primary shows no failovers after dying mid-stream")
	}
	if st[0].Healthy {
		t.Error("primary still marked healthy after failed writes")
	}
	if d := s.Dropped(); d != 0 {
		t.Errorf("failover dropped %d samples with a healthy standby", d)
	}
}

// TestClusterShardMidPassFailureKeepsHealthyParts pins a loss bug:
// when one batch partitions across two targets and the dead target's
// part is attempted first, the healthy target's part of the same pass
// must still be delivered — not abandoned along with the reroute.
func TestClusterShardMidPassFailureKeepsHealthyParts(t *testing.T) {
	_, h1, url1 := newReceiver(t)
	store2, _, url2 := newReceiver(t)
	s, err := New(Options{
		Targets:      []string{url1, url2},
		Policy:       PolicyShard,
		Source:       "agent",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
		// Parked probes: the kill must be discovered by the write pass
		// under test, not raced away by a prober.
		ProbeInterval: time.Hour,
		ProbeBackoff:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One metric owned by each target, so a single batch partitions
	// across both with the (about to die) first target's part first.
	ring := s.Ring()
	name1, name2 := hostOf(t, url1), hostOf(t, url2)
	var m1, m2 string
	for i := 0; m1 == "" || m2 == ""; i++ {
		m := fmt.Sprintf("metric%03d", i)
		switch ring.LookupKey(monitor.Key{Source: "agent", Metric: m, Scope: monitor.ScopeNode, ID: 0}) {
		case name1:
			if m1 == "" {
				m1 = m
			}
		case name2:
			if m2 == "" {
				m2 = m
			}
		}
	}
	_ = h1.Close()
	if err := s.Write(monitor.Batch{Collector: "test", Time: 1, Samples: []monitor.Sample{
		{Metric: m1, Scope: monitor.ScopeNode, ID: 0, Time: 1, Value: 1},
		{Metric: m2, Scope: monitor.ScopeNode, ID: 0, Time: 1, Value: 2},
	}}); err != nil {
		t.Fatalf("write after reroute: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(window(store2, "agent", m1)); n != 1 {
		t.Errorf("dead target's series has %d points on the survivor, want 1 (reroute)", n)
	}
	if n := len(window(store2, "agent", m2)); n != 1 {
		t.Errorf("healthy target's series has %d points, want 1 (same-pass delivery)", n)
	}
	if d := s.Dropped(); d != 0 {
		t.Errorf("mid-pass failure dropped %d samples", d)
	}
}

// TestClusterMirrorBufferAndCatchUp pins the HA policy: every target
// gets the full stream; a down mirror buffers (bounded) and catches up
// when it recovers — no reroute, no loss.
func TestClusterMirrorBufferAndCatchUp(t *testing.T) {
	store1, _, url1 := newReceiver(t)
	store2, _, url2 := newReceiver(t)
	s, err := New(Options{
		Targets:      []string{url1, url2},
		Policy:       PolicyMirror,
		Source:       "agent",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Write(batchOf("bw", float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n1, n2 := len(window(store1, "agent", "bw")), len(window(store2, "agent", "bw")); n1 != 5 || n2 != 5 {
		t.Fatalf("mirrors have %d/%d points, want 5/5", n1, n2)
	}
	// Mirror 2 goes down: writes keep flowing to mirror 1 and buffer for
	// mirror 2.
	if err := s.SetHealthy(hostOf(t, url2), false); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		if err := s.Write(batchOf("bw", float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n1, n2 := len(window(store1, "agent", "bw")), len(window(store2, "agent", "bw")); n1 != 10 || n2 != 5 {
		t.Fatalf("mirrors have %d/%d points during outage, want 10/5", n1, n2)
	}
	// Recovery: the next write ships the buffered backlog too.
	if err := s.SetHealthy(hostOf(t, url2), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(batchOf("bw", 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n1, n2 := len(window(store1, "agent", "bw")), len(window(store2, "agent", "bw")); n1 != 11 || n2 != 11 {
		t.Errorf("mirrors have %d/%d points after recovery, want 11/11", n1, n2)
	}
	if d := s.Dropped(); d != 0 {
		t.Errorf("mirror catch-up dropped %d samples", d)
	}
}

// TestClusterProbeTransitions pins the health checker: a dead target is
// discovered by probing alone (no write needed), and a recovered one
// re-enters the ring without intervention.
func TestClusterProbeTransitions(t *testing.T) {
	_, _, url1 := newReceiver(t)
	dead := deadURL(t)
	s, err := New(Options{
		Targets:       []string{url1, dead},
		Policy:        PolicyShard,
		ProbeInterval: 10 * time.Millisecond,
		ProbeBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	// The prober must discover the dead target on its own.
	waitFor(t, time.Second, func() bool {
		st := s.Status()
		return !st[1].Healthy && s.Ring().Len() == 1
	}, "prober never marked the dead target unhealthy")

	// Force the live target down; the prober must bring it back.
	if err := s.SetHealthy(hostOf(t, url1), false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		return s.Status()[0].Healthy && s.Ring().Len() == 1
	}, "prober never recovered the healthy target")

	if err := s.SetHealthy("no-such-target", true); err == nil {
		t.Error("SetHealthy accepted an unknown target")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestClusterCloseDrains pins the graceful-drain satellite: samples
// buffered against a dead primary at shutdown re-route to the healthy
// standby instead of being counted as drops.
func TestClusterCloseDrains(t *testing.T) {
	dead := deadURL(t)
	store2, _, url2 := newReceiver(t)
	s, err := New(Options{
		Targets:      []string{dead, url2},
		Policy:       PolicyFailover,
		Source:       "agent",
		FlushSamples: 1000, // never auto-flush: everything rides on Close
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Write(batchOf("bw", float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(window(store2, "agent", "bw")); n != 0 {
		t.Fatalf("standby has %d points before close, want 0 (nothing flushed yet)", n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := len(window(store2, "agent", "bw")); n != 10 {
		t.Errorf("standby has %d points after drain, want 10", n)
	}
	if d := s.Dropped(); d != 0 {
		t.Errorf("drain dropped %d samples with a healthy standby", d)
	}
}

// TestClusterSingletonKeepsRetryLadder pins the satellite cap's flip
// side: a pool of one has nothing to fail over to, so it must keep the
// full retry ladder instead of the single-attempt fast path.
func TestClusterSingletonKeepsRetryLadder(t *testing.T) {
	dead := deadURL(t)
	s, err := New(Options{
		Targets:      []string{dead},
		Policy:       PolicyFailover,
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Write(batchOf("bw", 0, 0))
	if r := s.Status()[0].Retries; r < 2 {
		t.Errorf("singleton pool made %d attempts, want the full ladder (>=3)", r+1)
	}
	_ = s.Close()
}
