package marker

import (
	"math"
	"strings"
	"testing"

	"likwid/internal/machine"
	"likwid/internal/perfctr"
	"likwid/internal/sched"
)

// fixture builds a Core 2 Quad machine with a FLOPS_DP collector running on
// cores 0-3, mirroring the marker-mode listing of the paper.
type fixture struct {
	m   *machine.Machine
	col *perfctr.Collector
	mk  *Marker
	g   perfctr.GroupDef
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	m, err := machine.NewNamed("core2", machine.Options{Policy: sched.PolicySpread, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g, err := perfctr.GroupFor(m.Arch, "FLOPS_DP")
	if err != nil {
		t.Fatal(err)
	}
	var specs []perfctr.EventSpec
	for _, ev := range g.Events {
		specs = append(specs, perfctr.EventSpec{Event: ev})
	}
	col, err := perfctr.NewCollector(m, []int{0, 1, 2, 3}, specs, perfctr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	mk, err := New(col, m.Arch.ClockHz(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{m: m, col: col, mk: mk, g: g}
}

// runOn executes a burst of packed-DP work pinned on the given cpu.
func (f *fixture) runOn(t *testing.T, cpu int, elems float64) {
	t.Helper()
	task := f.m.OS.Spawn("w", nil)
	if err := f.m.OS.Pin(task, cpu); err != nil {
		t.Fatal(err)
	}
	f.m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{
			Cycles: 2,
			Counts: machine.Counts{machine.EvInstr: 3, machine.EvFlopsPackedDP: 1},
			Vector: true,
		},
	}}, 0)
	f.m.OS.Exit(task)
}

func TestRegionAccumulation(t *testing.T) {
	f := newFixture(t)
	id := f.mk.RegisterRegion("Accum")
	// Two Start/Stop rounds on core 0 must accumulate.
	for round := 0; round < 2; round++ {
		if err := f.mk.StartRegion(0, 0); err != nil {
			t.Fatal(err)
		}
		f.runOn(t, 0, 1e6)
		if err := f.mk.StopRegion(0, 0, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.mk.Close(); err != nil {
		t.Fatal(err)
	}
	r := f.mk.Regions()[id]
	got := r.Counts["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"][0]
	if math.Abs(got-2e6) > 2 {
		t.Errorf("accumulated packed count = %v, want 2e6", got)
	}
	if r.Calls != 2 {
		t.Errorf("calls = %d, want 2", r.Calls)
	}
	if r.Time[0] <= 0 {
		t.Error("region time must be positive")
	}
}

func TestRegionExcludesOutsideWork(t *testing.T) {
	f := newFixture(t)
	id := f.mk.RegisterRegion("Main")
	f.runOn(t, 0, 5e5) // before the region: must not count
	if err := f.mk.StartRegion(0, 0); err != nil {
		t.Fatal(err)
	}
	f.runOn(t, 0, 1e6)
	if err := f.mk.StopRegion(0, 0, id); err != nil {
		t.Fatal(err)
	}
	f.runOn(t, 0, 7e5) // after the region: must not count
	got := f.mk.Regions()[id].Counts["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"][0]
	if math.Abs(got-1e6) > 2 {
		t.Errorf("region count = %v, want 1e6 (region must bracket exactly)", got)
	}
}

func TestNestingRejected(t *testing.T) {
	f := newFixture(t)
	f.mk.RegisterRegion("A")
	if err := f.mk.StartRegion(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.mk.StartRegion(0, 0); err == nil {
		t.Fatal("nested StartRegion must fail")
	}
	// A different thread can still measure concurrently.
	if err := f.mk.StartRegion(1, 1); err != nil {
		t.Errorf("independent thread rejected: %v", err)
	}
}

func TestStopWithoutStart(t *testing.T) {
	f := newFixture(t)
	id := f.mk.RegisterRegion("A")
	if err := f.mk.StopRegion(0, 0, id); err == nil {
		t.Fatal("StopRegion without StartRegion must fail")
	}
}

func TestStopOnDifferentCore(t *testing.T) {
	f := newFixture(t)
	id := f.mk.RegisterRegion("A")
	f.mk.StartRegion(0, 0)
	if err := f.mk.StopRegion(0, 1, id); err == nil {
		t.Fatal("stopping on a different core must fail")
	}
}

func TestCloseWithOpenRegion(t *testing.T) {
	f := newFixture(t)
	f.mk.RegisterRegion("A")
	f.mk.StartRegion(2, 2)
	if err := f.mk.Close(); err == nil {
		t.Fatal("Close with a dangling region must fail")
	}
}

func TestRegisterRegionIdempotent(t *testing.T) {
	f := newFixture(t)
	a := f.mk.RegisterRegion("Main")
	b := f.mk.RegisterRegion("Main")
	if a != b {
		t.Errorf("same name registered twice: ids %d and %d", a, b)
	}
}

func TestInvalidThreadAndRegionIDs(t *testing.T) {
	f := newFixture(t)
	id := f.mk.RegisterRegion("A")
	if err := f.mk.StartRegion(99, 0); err == nil {
		t.Error("thread id out of range must fail")
	}
	if err := f.mk.StartRegion(0, 17); err == nil {
		t.Error("unmeasured core must fail")
	}
	f.mk.StartRegion(0, 0)
	if err := f.mk.StopRegion(0, 0, id+5); err == nil {
		t.Error("unknown region id must fail")
	}
}

func TestMarkerReportFormat(t *testing.T) {
	f := newFixture(t)
	init := f.mk.RegisterRegion("Init")
	bench := f.mk.RegisterRegion("Benchmark")
	// Small init burst, larger benchmark burst on every core — the shape
	// of the paper's listing.
	for cpu := 0; cpu < 4; cpu++ {
		if err := f.mk.StartRegion(cpu, cpu); err != nil {
			t.Fatal(err)
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		f.runOn(t, cpu, 1e4)
	}
	for cpu := 0; cpu < 4; cpu++ {
		if err := f.mk.StopRegion(cpu, cpu, init); err != nil {
			t.Fatal(err)
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		f.mk.StartRegion(cpu, cpu)
		f.runOn(t, cpu, 4e6)
		f.mk.StopRegion(cpu, cpu, bench)
	}
	if err := f.mk.Close(); err != nil {
		t.Fatal(err)
	}
	out := f.mk.Report(&f.g)
	for _, want := range []string{
		"Region: Init",
		"Region: Benchmark",
		"| Event",
		"| core 0 | core 1 | core 2 | core 3 |",
		"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
		"| Metric",
		"Runtime [s]",
		"CPI",
		"DP MFlops/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The benchmark region must show more packed ops than init.
	ri, rb := f.mk.Regions()[init], f.mk.Regions()[bench]
	if rb.Counts["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"][2] <= ri.Counts["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"][2] {
		t.Error("benchmark region must dominate init region")
	}
}

func TestNewMarkerValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := New(f.col, 1e9, 0); err == nil {
		t.Error("zero threads must fail")
	}
}
