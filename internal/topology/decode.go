// Package topology implements the core of likwid-topology: it recovers the
// hardware thread and cache topology of a node purely from CPUID register
// images, and renders the reports the tool prints (plain text and ASCII
// art).
//
// The decoder deliberately never inspects the hwdef definition behind the
// emulated CPUID: like the real tool it sees only the instruction's output.
// Three decode paths are implemented, matching §II-B of the paper:
//
//   - Intel leaf 0xB (Nehalem and later): field widths straight from the
//     extended topology leaf.
//   - Intel legacy (Core 2, Atom): logical-per-package from leaf 0x1 and
//     cores-per-package from leaf 0x4.
//   - AMD: core count from extended leaf 0x80000008.
//
// Cache parameters come from leaf 0x4 (deterministic cache parameters),
// leaf 0x2 (descriptor table, Pentium M), or the AMD extended leaves.
package topology

import (
	"fmt"
	"sort"

	"likwid/internal/cpuid"
	"likwid/internal/hwdef"
)

// Thread is one hardware thread's position as printed by likwid-topology:
// HWThread (OS processor ID), thread slot in its core, physical core ID and
// socket.
type Thread struct {
	Proc     int
	ThreadID int
	CoreID   int
	SocketID int
	APICID   uint32
}

// Cache is one decoded data/unified cache level with its sharing groups.
type Cache struct {
	Level     int
	Type      hwdef.CacheType
	SizeKB    int
	Assoc     int
	Sets      int
	LineSize  int
	Inclusive bool
	// SharedBy is the observed number of hardware threads per instance.
	SharedBy int
	// Groups lists, per cache instance, the OS processor IDs sharing it,
	// ordered by APIC ID as the paper's listings are.
	Groups [][]int
	// spanThreads is the APIC-ID span of one instance (power of two),
	// recorded during decode and consumed when building Groups.
	spanThreads int
}

// Info is the complete decoded node topology.
type Info struct {
	CPUName        string
	Vendor         hwdef.Vendor
	Family         int
	Model          int
	Stepping       int
	ClockMHz       float64
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	Threads        []Thread
	// SocketGroups lists the processors of each socket ordered by APIC ID
	// (SMT siblings adjacent), the order of the paper's "Socket 0: (...)"
	// lines.
	SocketGroups [][]int
	Caches       []Cache
	// NUMA is the OS-provided locality layout, attached via AttachNUMA
	// (NUMA is sysfs information, not CPUID output).
	NUMA []NUMADomain
}

// Probe decodes the topology of a node given one CPUID view per hardware
// thread (indexed by OS processor ID) and the measured core clock.
func Probe(cpus []*cpuid.CPU, clockMHz float64) (*Info, error) {
	if len(cpus) == 0 {
		return nil, fmt.Errorf("topology: no processors")
	}
	info := &Info{ClockMHz: clockMHz}

	leaf0 := cpus[0].Query(0, 0)
	info.Vendor = vendorFromLeaf0(leaf0)
	leaf1 := cpus[0].Query(1, 0)
	info.Family, info.Model, info.Stepping = cpuid.DecodeSignature(leaf1.EAX)
	info.CPUName = brandString(cpus[0])

	smtBits, coreBits, err := fieldWidths(cpus[0], info.Vendor)
	if err != nil {
		return nil, err
	}
	pkgShift := smtBits + coreBits

	// Slice every thread's APIC ID.
	info.Threads = make([]Thread, len(cpus))
	for proc, c := range cpus {
		id := apicID(c)
		info.Threads[proc] = Thread{
			Proc:     proc,
			ThreadID: int(id) & (1<<smtBits - 1),
			CoreID:   int(id>>smtBits) & (1<<coreBits - 1),
			SocketID: int(id >> pkgShift),
			APICID:   id,
		}
	}

	// Socket census.
	sockets := map[int][]int{}
	coresSeen := map[[2]int]bool{}
	threadsPerCore := map[[2]int]int{}
	for _, t := range info.Threads {
		sockets[t.SocketID] = append(sockets[t.SocketID], t.Proc)
		coresSeen[[2]int{t.SocketID, t.CoreID}] = true
		threadsPerCore[[2]int{t.SocketID, t.CoreID}]++
	}
	info.Sockets = len(sockets)
	info.CoresPerSocket = len(coresSeen) / len(sockets)
	for _, n := range threadsPerCore {
		info.ThreadsPerCore = n
		break
	}

	socketIDs := make([]int, 0, len(sockets))
	for id := range sockets {
		socketIDs = append(socketIDs, id)
	}
	sort.Ints(socketIDs)
	for _, id := range socketIDs {
		procs := sockets[id]
		sortByAPIC(procs, info.Threads)
		info.SocketGroups = append(info.SocketGroups, procs)
	}

	caches, err := decodeCaches(cpus[0], info.Vendor, pkgShift)
	if err != nil {
		return nil, err
	}
	// Build sharing groups for every data/unified level.
	for i := range caches {
		buildGroups(&caches[i], info)
	}
	info.Caches = caches
	return info, nil
}

func vendorFromLeaf0(r cpuid.Regs) hwdef.Vendor {
	s := unpack4(r.EBX) + unpack4(r.EDX) + unpack4(r.ECX)
	if s == "AuthenticAMD" {
		return hwdef.AMD
	}
	return hwdef.Intel
}

func unpack4(v uint32) string {
	return string([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

func brandString(c *cpuid.CPU) string {
	max := c.Query(0x80000000, 0).EAX
	if max < 0x80000004 {
		return "Unknown Processor"
	}
	var s string
	for leaf := uint32(0x80000002); leaf <= 0x80000004; leaf++ {
		r := c.Query(leaf, 0)
		s += unpack4(r.EAX) + unpack4(r.EBX) + unpack4(r.ECX) + unpack4(r.EDX)
	}
	// Trim NUL padding.
	for len(s) > 0 && s[len(s)-1] == 0 {
		s = s[:len(s)-1]
	}
	return s
}

// apicID returns the APIC ID of the queried thread, preferring the x2APIC
// ID of leaf 0xB over the 8-bit initial APIC ID of leaf 0x1.
func apicID(c *cpuid.CPU) uint32 {
	if c.Query(0, 0).EAX >= 0xB {
		if r := c.Query(0xB, 0); r.EBX != 0 {
			return r.EDX
		}
	}
	return c.Query(1, 0).EBX >> 24
}

// fieldWidths determines (smtBits, coreBits) of the APIC ID via the
// appropriate per-vendor decode path.
func fieldWidths(c *cpuid.CPU, vendor hwdef.Vendor) (smtBits, coreBits int, err error) {
	maxLeaf := c.Query(0, 0).EAX
	if vendor == hwdef.Intel && maxLeaf >= 0xB {
		if sub0 := c.Query(0xB, 0); sub0.EBX != 0 {
			smtShift := int(sub0.EAX & 0x1F)
			sub1 := c.Query(0xB, 1)
			pkgShift := int(sub1.EAX & 0x1F)
			return smtShift, pkgShift - smtShift, nil
		}
	}
	leaf1 := c.Query(1, 0)
	logical := int(leaf1.EBX >> 16 & 0xFF)
	if logical == 0 {
		logical = 1
	}
	if vendor == hwdef.AMD {
		cores := 1
		if c.Query(0x80000000, 0).EAX >= 0x80000008 {
			cores = int(c.Query(0x80000008, 0).ECX&0xFF) + 1
		}
		smtWidth := logical / cores
		if smtWidth < 1 {
			smtWidth = 1
		}
		return ceilLog2(smtWidth), ceilLog2(cores), nil
	}
	// Intel legacy path: cores per package from leaf 4.
	cores := 1
	if maxLeaf >= 4 {
		if r := c.Query(4, 0); r.EAX&0x1F != 0 {
			cores = int(r.EAX>>26&0x3F) + 1
		}
	}
	smtWidth := logical / cores
	if smtWidth < 1 {
		smtWidth = 1
	}
	// The leaf-1 logical count is the *addressable* span, so coreBits must
	// cover logical/smtWidth addresses, not just `cores`.
	coreSpan := logical / smtWidth
	if coreSpan < cores {
		coreSpan = cores
	}
	return ceilLog2(smtWidth), ceilLog2(coreSpan), nil
}

func ceilLog2(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

func sortByAPIC(procs []int, threads []Thread) {
	sort.Slice(procs, func(i, j int) bool {
		return threads[procs[i]].APICID < threads[procs[j]].APICID
	})
}

// buildGroups partitions processors into sharing groups for one cache.
// Threads share a cache instance when their APIC IDs agree above the cache's
// span mask; the span is a power of two so the mask is exact.
func buildGroups(c *Cache, info *Info) {
	span := c.spanThreads
	if span <= 0 {
		span = 1
	}
	maskBits := ceilLog2(span)
	groups := map[uint32][]int{}
	var keys []uint32
	for _, t := range info.Threads {
		key := t.APICID >> maskBits
		if _, seen := groups[key]; !seen {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], t.Proc)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	c.Groups = c.Groups[:0]
	maxLen := 0
	for _, k := range keys {
		procs := groups[k]
		sortByAPIC(procs, info.Threads)
		c.Groups = append(c.Groups, procs)
		if len(procs) > maxLen {
			maxLen = len(procs)
		}
	}
	c.SharedBy = maxLen
}
