package cli

import (
	"strings"
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/pin"
	"likwid/internal/sched"
	"likwid/internal/workloads/jacobi"
	"likwid/internal/workloads/stream"
)

func TestParseWorkloadTriad(t *testing.T) {
	w, err := ParseWorkload("triad")
	if err != nil || w.Kind != "triad" || w.Compiler != stream.ICC || w.Elems != 2e7 {
		t.Fatalf("triad = %+v, %v", w, err)
	}
	w, err = ParseWorkload("triad:5000000")
	if err != nil || w.Elems != 5e6 {
		t.Fatalf("triad:N = %+v, %v", w, err)
	}
	w, err = ParseWorkload("triad-gcc")
	if err != nil || w.Compiler != stream.GCC {
		t.Fatalf("triad-gcc = %+v, %v", w, err)
	}
}

func TestParseWorkloadJacobi(t *testing.T) {
	w, err := ParseWorkload("jacobi:nt:200:5")
	if err != nil || w.Variant != jacobi.ThreadedNT || w.Size != 200 || w.Iters != 5 {
		t.Fatalf("jacobi = %+v, %v", w, err)
	}
	w, err = ParseWorkload("jacobi")
	if err != nil || w.Variant != jacobi.Wavefront {
		t.Fatalf("jacobi default = %+v, %v", w, err)
	}
}

func TestParseWorkloadSleep(t *testing.T) {
	w, err := ParseWorkload("sleep:0.5")
	if err != nil || w.Seconds != 0.5 {
		t.Fatalf("sleep = %+v, %v", w, err)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	for _, bad := range []string{
		"", "fortnite", "triad:-5", "triad:x",
		"jacobi:warp", "jacobi:nt:4", "jacobi:nt:100:0",
		"sleep:0", "sleep:x",
	} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("workload %q must fail", bad)
		}
	}
}

func TestRunTriadPinned(t *testing.T) {
	m := machine.New(hwdef.WestmereEP, machine.Options{Seed: 3})
	p, err := pin.New(m.OS, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := ParseWorkload("triad:4000000")
	res, err := w.Run(m, 4, sched.RuntimeGccOMP, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary, "MB/s") {
		t.Errorf("summary = %q", res.Summary)
	}
	for i, worker := range res.Team.Workers {
		if worker.CPU != i {
			t.Errorf("worker %d on cpu %d, want %d", i, worker.CPU, i)
		}
	}
}

func TestRunJacobi(t *testing.T) {
	m := machine.New(hwdef.NehalemEP, machine.Options{Seed: 3})
	w, _ := ParseWorkload("jacobi:nt:100:3")
	res, err := w.Run(m, 4, sched.RuntimePthreads, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary, "MLUPS") {
		t.Errorf("summary = %q", res.Summary)
	}
}

func TestRunSleepAdvancesClock(t *testing.T) {
	m := machine.New(hwdef.WestmereEP, machine.Options{Seed: 3})
	w, _ := ParseWorkload("sleep:0.25")
	before := m.Now()
	if _, err := w.Run(m, 1, sched.RuntimePthreads, nil); err != nil {
		t.Fatal(err)
	}
	if m.Now()-before < 0.24 {
		t.Errorf("sleep advanced clock by %v, want ≈ 0.25", m.Now()-before)
	}
}
