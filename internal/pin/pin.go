// Package pin implements the core of likwid-pin: enforcing thread-core
// affinity "from the outside", without source changes, by interposing on
// thread creation (the pthread_create library-preload mechanism of Fig. 3)
// and walking a user-given core list.  Skip masks exclude runtime-internal
// threads — the Intel OpenMP shepherd (mask 0x1) or MPI shepherd threads
// (e.g. 0x3 for Intel MPI + Intel OpenMP) — from pinning.
package pin

import (
	"fmt"
	"strconv"
	"strings"

	"likwid/internal/sched"
)

// ParseCPUList parses the -c argument: comma-separated processor IDs and
// ranges, e.g. "0-3", "0,2,4-7".
func ParseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("pin: empty cpu list")
	}
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("pin: empty entry in cpu list %q", s)
		}
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi = part[:i], part[i+1:]
		}
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("pin: bad cpu %q in list %q", lo, s)
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("pin: bad cpu %q in list %q", hi, s)
		}
		if a < 0 || b < a {
			return nil, fmt.Errorf("pin: invalid range %q in list %q", part, s)
		}
		for c := a; c <= b; c++ {
			if seen[c] {
				return nil, fmt.Errorf("pin: cpu %d appears twice in list %q", c, s)
			}
			seen[c] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// ParseSkipMask parses the -s argument, a hex bit pattern like "0x3": bit i
// set means the i-th created thread is not pinned.
func ParseSkipMask(s string) (uint64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X"))
	if s == "" {
		return 0, fmt.Errorf("pin: empty skip mask")
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("pin: bad skip mask %q: %w", s, err)
	}
	return v, nil
}

// SkipMaskFor returns the default skip mask for a threading runtime: the
// Intel OpenMP implementation needs its first created thread (the shepherd)
// skipped, the others none.
func SkipMaskFor(model sched.RuntimeModel) uint64 {
	if model == sched.RuntimeIntelOMP {
		return 0x1
	}
	return 0x0
}

// Event records one pinning decision, for diagnostics and the Fig. 3
// mechanism bench.
type Event struct {
	CreateIndex int
	TaskID      int
	TaskName    string
	CPU         int  // target processor, -1 when skipped or overflowed
	Skipped     bool // excluded by the skip mask
	Overflowed  bool // core list exhausted
}

// String renders one pin decision.
func (e Event) String() string {
	switch {
	case e.Skipped:
		return fmt.Sprintf("thread %d (%s): skipped by mask", e.CreateIndex, e.TaskName)
	case e.Overflowed:
		return fmt.Sprintf("thread %d (%s): core list exhausted, left unpinned", e.CreateIndex, e.TaskName)
	default:
		return fmt.Sprintf("thread %d (%s): pinned to core %d", e.CreateIndex, e.TaskName, e.CPU)
	}
}

// Pinner walks a core list, pinning the launching process and then each
// created thread in turn.
type Pinner struct {
	kern  *sched.Kernel
	cores []int
	skip  uint64
	next  int
	log   []Event
	// Env is the environment the wrapper exports to the application;
	// likwid-pin sets KMP_AFFINITY=disabled automatically so the Intel
	// runtime's own pinning cannot interfere (§II-C).
	Env map[string]string
}

// New builds a Pinner for a core list and skip mask.
func New(kern *sched.Kernel, cores []int, skipMask uint64) (*Pinner, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("pin: empty core list")
	}
	for _, c := range cores {
		if c < 0 || c >= kern.NumCPUs() {
			return nil, fmt.Errorf("pin: core %d does not exist (node has %d)", c, kern.NumCPUs())
		}
	}
	return &Pinner{
		kern:  kern,
		cores: append([]int(nil), cores...),
		skip:  skipMask,
		Env:   map[string]string{"KMP_AFFINITY": "disabled"},
	}, nil
}

// PinProcess pins the launching process (the master thread) to the first
// core of the list, consuming it.
func (p *Pinner) PinProcess(t *sched.Task) error {
	if p.next != 0 {
		return fmt.Errorf("pin: process must be pinned before any threads")
	}
	if err := p.kern.Pin(t, p.cores[0]); err != nil {
		return err
	}
	p.next = 1
	return nil
}

// Hook returns the pthread_create interposition callback: created thread i
// is skipped if skip-mask bit i is set, otherwise pinned to the next core
// in the list.
func (p *Pinner) Hook() sched.SpawnHook {
	return func(createIndex int, t *sched.Task) {
		ev := Event{CreateIndex: createIndex, TaskID: t.ID, TaskName: t.Name, CPU: -1}
		defer func() { p.log = append(p.log, ev) }()
		if p.skip&(1<<uint(createIndex)) != 0 {
			ev.Skipped = true
			return
		}
		if p.next >= len(p.cores) {
			ev.Overflowed = true
			return
		}
		cpu := p.cores[p.next]
		if err := p.kern.Pin(t, cpu); err != nil {
			ev.Overflowed = true
			return
		}
		p.next++
		ev.CPU = cpu
	}
}

// Log returns the pin decisions made so far.
func (p *Pinner) Log() []Event { return append([]Event(nil), p.log...) }

// Remaining returns how many cores of the list are still unused.
func (p *Pinner) Remaining() int { return len(p.cores) - p.next }
