package derive

import (
	"fmt"
	"testing"

	"likwid/internal/monitor"
)

// BenchmarkDeriveEval evaluates one grouped roll-up over a 1000-series
// store — the cost of a single recorded-rule evaluation at fleet scale.
// Evaluation reads the store through the same lock-free index and
// window paths as any reader; the store's append hot path (pinned at 0
// allocs/op by the monitor benchmarks) is never entered.
func BenchmarkDeriveEval(b *testing.B) {
	st := monitor.NewStore(64)
	for n := 0; n < 1000; n++ {
		labels, err := monitor.MakeLabels(map[string]string{"job": fmt.Sprintf("job%d", n%8)})
		if err != nil {
			b.Fatal(err)
		}
		k := monitor.Key{
			Source: fmt.Sprintf("node%03d", n),
			Metric: "flops_dp",
			Scope:  monitor.ScopeNode,
			Labels: labels,
		}
		for i := 0; i < 30; i++ {
			st.Append(k, monitor.Point{Time: float64(i), Value: float64(n + i)})
		}
	}
	r, err := ParseRule(`cluster_flops = sum(flops_dp) by (job) over 30s`, 1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(Options{Store: st, Clock: monitor.NewFakeClock()}, []*Rule{r})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvalNow()
	}
}
