package monitor

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// v4WireSamples is a fixture exercising grouping (two series), labels,
// sent_at stamps and irregular values.
func v4WireSamples() []jsonSample {
	return []jsonSample{
		{Time: 0.5, SentAt: 100, Collector: "perfgroup/MEM_DP", Source: "nodeA-7",
			Labels: map[string]string{"job": "lbm", "rack": "r1"},
			Metric: "dp_mflops_s", Scope: "thread", ID: 0, Value: 571.25},
		{Time: 1.0, SentAt: 100, Collector: "perfgroup/MEM_DP", Source: "nodeA-7",
			Labels: map[string]string{"job": "lbm", "rack": "r1"},
			Metric: "dp_mflops_s", Scope: "thread", ID: 0, Value: 570.75},
		{Time: 1.5, SentAt: 100.5, Collector: "perfgroup/MEM_DP", Source: "nodeA-7",
			Labels: map[string]string{"job": "lbm", "rack": "r1"},
			Metric: "dp_mflops_s", Scope: "thread", ID: 0, Value: 571.25},
		{Time: 0.5, SentAt: 100, Collector: "perfgroup/MEM_DP", Source: "nodeB-9",
			Metric: "memory_bandwidth_mbytes_s", Scope: "socket", ID: 0, Value: 13714.285},
		{Time: 1.0, SentAt: 100, Collector: "perfgroup/MEM_DP", Source: "nodeB-9",
			Metric: "memory_bandwidth_mbytes_s", Scope: "socket", ID: 0, Value: 13710},
	}
}

// TestV4RoundTrip pins the codec end to end: encode → decode returns the
// samples in order with the exact times, values, label maps and sent_at
// stamps the JSON-lines decoder would have produced.
func TestV4RoundTrip(t *testing.T) {
	in := v4WireSamples()
	payload, err := encodeV4(in)
	if err != nil {
		t.Fatal(err)
	}
	samples, labelMaps, sentAts, err := decodeV4(bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("decodeV4: %v", err)
	}
	// Grouping reorders across series (group-major) but keeps arrival
	// order within a series; the fixture is already group-major, so the
	// decode must match it one to one.
	if len(samples) != len(in) || len(labelMaps) != len(in) || len(sentAts) != len(in) {
		t.Fatalf("decode = %d samples / %d maps / %d stamps, want %d each",
			len(samples), len(labelMaps), len(sentAts), len(in))
	}
	for i, js := range in {
		s := samples[i]
		if s.Source != js.Source || s.Metric != js.Metric || s.Scope.String() != js.Scope ||
			s.ID != js.ID || s.Time != js.Time || s.Value != js.Value {
			t.Errorf("sample %d = %+v, want the encoding of %+v", i, s, js)
		}
		if s.Labels != (Labels{}) {
			t.Errorf("sample %d has interned labels %v, want unset (decode must not intern)", i, s.Labels)
		}
		if FormatLabelMap(labelMaps[i]) != FormatLabelMap(js.Labels) {
			t.Errorf("sample %d labels = %v, want %v", i, labelMaps[i], js.Labels)
		}
		if sentAts[i] != js.SentAt {
			t.Errorf("sample %d sent_at = %v, want %v", i, sentAts[i], js.SentAt)
		}
	}
}

// TestV4ColumnCodecsRoundTripRandom sweeps the two column codecs with
// random data: the delta-of-delta timestamp codec must be lossless for
// arbitrary float64s (it runs over bit patterns, not values), and the
// Gorilla XOR value codec likewise.
func TestV4ColumnCodecsRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(5) {
			case 0:
				vals[i] = float64(i) * 0.1 // regular ramp
			case 1:
				vals[i] = math.Float64frombits(rng.Uint64()) // arbitrary bits (incl. NaN)
			case 2:
				vals[i] = 0
			case 3:
				vals[i] = -rng.Float64() * 1e12
			default:
				vals[i] = rng.NormFloat64()
			}
		}
		got, err := decodeDeltaColumn(encodeDeltaColumn(vals), n)
		if err != nil {
			t.Fatalf("trial %d: delta decode: %v", trial, err)
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("trial %d: delta entry %d = %x, want %x",
					trial, i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
		got, err = decodeXORColumn(encodeXORColumn(vals), n)
		if err != nil {
			t.Fatalf("trial %d: xor decode: %v", trial, err)
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("trial %d: xor entry %d = %x, want %x",
					trial, i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
	}
}

// TestV4DecodeRejectsMalformed is the all-or-nothing contract on the
// binary path: structural damage and invalid record content both reject
// the whole payload.
func TestV4DecodeRejectsMalformed(t *testing.T) {
	valid, err := encodeV4(v4WireSamples())
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"empty":          {},
		"wrong magic":    []byte("LKW3garbage"),
		"json body":      []byte(`{"time":1,"metric":"bw","scope":"node","id":0,"value":1}`),
		"truncated":      valid[:len(valid)-3],
		"trailing bytes": append(append([]byte{}, valid...), 0xAA),
		"magic only":     []byte("LKW4"),
	}
	for name, payload := range bad {
		if _, _, _, err := decodeV4(bytes.NewReader(payload)); err == nil {
			t.Errorf("%s: decodeV4 succeeded, want error", name)
		}
	}

	// Invalid record content: NaN value, negative time, bad scope, empty
	// metric — the encoder does not validate (it is fed already-validated
	// samples), so encoding them exercises the decoder's screens.
	for name, js := range map[string]jsonSample{
		"NaN value":     {Time: 1, Metric: "bw", Scope: "node", Value: math.NaN()},
		"Inf value":     {Time: 1, Metric: "bw", Scope: "node", Value: math.Inf(1)},
		"negative time": {Time: -1, Metric: "bw", Scope: "node", Value: 1},
		"NaN time":      {Time: math.NaN(), Metric: "bw", Scope: "node", Value: 1},
		"bad scope":     {Time: 1, Metric: "bw", Scope: "galaxy", Value: 1},
		"empty metric":  {Time: 1, Metric: "   ", Scope: "node", Value: 1},
		"bad label":     {Time: 1, Metric: "bw", Scope: "node", Value: 1, Labels: map[string]string{"bad name": "x"}},
	} {
		payload, err := encodeV4([]jsonSample{js})
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, _, _, err := decodeV4(bytes.NewReader(payload)); err == nil {
			t.Errorf("%s: decodeV4 accepted invalid record", name)
		}
	}
}

// TestV4IngestEndToEnd posts a v4 payload (identity and gzipped) at a
// live receiver and checks the samples land on the same keys a v3
// JSON-lines push would use — including the v1 prefix shim for
// sourceless groups.
func TestV4IngestEndToEnd(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()

	payload, err := encodeV4(v4WireSamples())
	if err != nil {
		t.Fatal(err)
	}
	code, body := postIngest4(t, base, payload, false)
	if code != http.StatusOK {
		t.Fatalf("v4 ingest = %d %q", code, body)
	}
	var resp ingestResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil || resp.Accepted != 5 {
		t.Fatalf("v4 ingest response = %q (err %v), want accepted 5", body, err)
	}
	labels, err := MakeLabels(map[string]string{"job": "lbm", "rack": "r1"})
	if err != nil {
		t.Fatal(err)
	}
	kA := Key{Source: "nodeA-7", Metric: "dp_mflops_s", Scope: ScopeThread, ID: 0, Labels: labels}
	if pts := store.Window(kA, 0, -1); len(pts) != 3 || pts[0].Value != 571.25 {
		t.Errorf("labelled series = %+v, want the 3 nodeA points", pts)
	}
	kB := Key{Source: "nodeB-9", Metric: "memory_bandwidth_mbytes_s", Scope: ScopeSocket, ID: 0}
	if pts := store.Window(kB, 0, -1); len(pts) != 2 || pts[1].Value != 13710 {
		t.Errorf("socket series = %+v, want the 2 nodeB points", pts)
	}

	// Gzipped v4: the Content-Encoding layer composes with the binary
	// Content-Type.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	v1shim, err := encodeV4([]jsonSample{
		{Time: 9, Collector: "c", Metric: "nodeC/bw", Scope: "node", ID: 0, Value: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(v1shim); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if code, body := postIngest4(t, base, gz.Bytes(), true); code != http.StatusOK {
		t.Fatalf("gzipped v4 ingest = %d %q", code, body)
	}
	kC := Key{Source: "nodeC", Metric: "bw", Scope: ScopeNode, ID: 0}
	if p, ok := store.Latest(kC); !ok || p.Value != 42 {
		t.Errorf("v1-shimmed v4 sample = %+v (%v), want value 42 under source nodeC", p, ok)
	}

	// A malformed v4 body is a 400, all-or-nothing.
	before := len(store.Keys())
	if code, _ := postIngest4(t, base, []byte("LKW4\xff\xff\xff"), false); code != http.StatusBadRequest {
		t.Errorf("malformed v4 ingest = %d, want 400", code)
	}
	if after := len(store.Keys()); after != before {
		t.Errorf("malformed v4 ingest left %d new series behind", after-before)
	}
}

// postIngest4 is postIngest with the v4 Content-Type.
func postIngest4(t *testing.T, base string, body []byte, gzipped bool) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", V4ContentType)
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestPushSinkWireFormatGoldenV4 pins the v4 wire bytes: the push sink
// in WireV4 mode posts the binary payload identity-encoded under the v4
// Content-Type, and the bytes are deterministic.
func TestPushSinkWireFormatGoldenV4(t *testing.T) {
	rec := &captureReceiver{}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	p, err := NewPushSink(PushOptions{
		URL: srv.URL, FlushSamples: 1 << 20, Source: "nodeA-7",
		Format: WireV4, Now: epochClock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range goldenBatches() {
		if err := p.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.payloads) != 1 {
		t.Fatalf("receiver saw %d pushes, want 1", len(rec.payloads))
	}
	h := rec.headers[0]
	if h.Get("Content-Type") != V4ContentType || h.Get("Content-Encoding") != "" {
		t.Errorf("v4 push headers = type %q enc %q, want %s / identity",
			h.Get("Content-Type"), h.Get("Content-Encoding"), V4ContentType)
	}
	checkGolden(t, "push_batch_v4.golden", rec.payloads[0])
}

// TestV4PushReceiveEndToEnd runs the real pipeline on the v4 wire: push
// sink in WireV4 mode → live receiver → store windows.
func TestV4PushReceiveEndToEnd(t *testing.T) {
	h, store := newTestHTTPSink(t)
	p, err := NewPushSink(PushOptions{
		URL: "http://" + h.Addr() + "/ingest", FlushSamples: 1,
		Source: "agentX", Format: WireV4, Now: epochClock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range goldenBatches() {
		if err := p.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.Sent(); got != 8 {
		t.Fatalf("Sent = %d, want all 8 samples", got)
	}
	k := Key{Source: "agentX", Metric: "dp_mflops_s", Scope: ScopeThread, ID: 0}
	pts := store.Window(k, 0, -1)
	if len(pts) != 2 || pts[0].Value != 571.25 || pts[1].Value != 570.75 {
		t.Errorf("received series = %+v, want both thread-0 points", pts)
	}
}

// TestV4WireDensity is the acceptance gate: on a realistic ingest batch
// (regularly sampled series, slowly-moving values) the v4 wire must
// spend at least 3× fewer bytes per sample than gzipped v3 JSON lines.
func TestV4WireDensity(t *testing.T) {
	samples := densityWireSamples(8, 512)
	v4, err := encodeV4(samples)
	if err != nil {
		t.Fatal(err)
	}
	var v3 bytes.Buffer
	zw := gzip.NewWriter(&v3)
	enc := json.NewEncoder(zw)
	for _, js := range samples {
		if err := enc.Encode(js); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	n := float64(len(samples))
	v4per, v3per := float64(len(v4))/n, float64(v3.Len())/n
	t.Logf("bytes/sample: v4 %.2f, v3 gzip %.2f (%.1fx)", v4per, v3per, v3per/v4per)
	if v4per*3 > v3per {
		t.Errorf("v4 = %.2f bytes/sample vs v3 gzip %.2f — want ≥3x denser", v4per, v3per)
	}

	// And the round trip still holds at this size.
	decoded, _, _, err := decodeV4(bytes.NewReader(v4))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(decoded), len(samples))
	}
}

// TestV4FuzzCorpusSeeds keeps the checked-in FuzzIngestV4 seed corpus in
// sync with the encoder: -update regenerates the files, a normal run
// asserts each is present and parses as a Go fuzz corpus entry.
func TestV4FuzzCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzIngestV4")
	seeds := fuzzV4Seeds()
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, seed := range seeds {
			entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nbool(%v)\n", seed.Body, seed.Gzip)
			if err := os.WriteFile(filepath.Join(dir, "seed_"+name), []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for name := range seeds {
		data, err := os.ReadFile(filepath.Join(dir, "seed_"+name))
		if err != nil {
			t.Fatalf("missing corpus seed (run with -update): %v", err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n[]byte(")) {
			t.Errorf("seed_%s is not a fuzz corpus entry:\n%s", name, data)
		}
	}
}

// densityWireSamples models a steady fleet flush: nSeries series sampled
// every 125 ms (exact in binary, like the suite's other fixtures),
// quantized values that hold for several ticks between steps (monitoring
// series are sampled faster than they change), sent_at constant per
// flush — the shape the columnar codecs are built for.
func densityWireSamples(nSeries, nTicks int) []jsonSample {
	rng := rand.New(rand.NewSource(3))
	out := make([]jsonSample, 0, nSeries*nTicks)
	for s := 0; s < nSeries; s++ {
		v := 1000 + float64(rng.Intn(100))
		for i := 0; i < nTicks; i++ {
			if i%8 == 0 {
				v += float64(rng.Intn(11) - 5)
			}
			out = append(out, jsonSample{
				Time:      float64(i) * 0.125,
				SentAt:    1700000000,
				Collector: "perfgroup/MEM_DP",
				Source:    "node42",
				Labels:    map[string]string{"job": "lbm"},
				Metric:    "memory_bandwidth_mbytes_s",
				Scope:     "thread",
				ID:        s,
				Value:     v,
			})
		}
	}
	return out
}
