package experiments

import (
	"fmt"
	"strings"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/perfctr"
	"likwid/internal/workloads/jacobi"
)

// Fig11Point is one grid size of Fig. 11 with the three curves.
type Fig11Point struct {
	Size             int
	WavefrontOneSock float64 // circles: wavefront 1x4, one socket
	WavefrontSplit   float64 // squares: wavefront, 2 threads per socket
	ThreadedBaseline float64 // triangles: threaded with NT stores
}

// Fig11Sizes is the default sweep of the figure (50..500).
func Fig11Sizes() []int {
	var sizes []int
	for n := 50; n <= 500; n += 50 {
		sizes = append(sizes, n)
	}
	return sizes
}

// Fig11 reproduces "Performance of an optimized 3D Jacobi smoother versus
// linear problem size on a dual-socket Intel Nehalem EP node".
func Fig11(sizes []int, iters int) ([]Fig11Point, error) {
	arch, err := hwdef.Lookup("nehalemEP")
	if err != nil {
		return nil, err
	}
	if iters < 1 {
		iters = 20
	}
	var out []Fig11Point
	for _, size := range sizes {
		pt := Fig11Point{Size: size}
		runs := []struct {
			target    *float64
			variant   jacobi.Variant
			placement jacobi.Placement
		}{
			{&pt.WavefrontOneSock, jacobi.Wavefront, jacobi.OneSocket},
			{&pt.WavefrontSplit, jacobi.Wavefront, jacobi.SplitPairs},
			{&pt.ThreadedBaseline, jacobi.ThreadedNT, jacobi.OneSocket},
		}
		for _, r := range runs {
			res, err := jacobi.Run(jacobi.Config{
				Arch: arch, Variant: r.variant, Size: size, Iters: iters,
				Threads: 4, Placement: r.placement,
			})
			if err != nil {
				return nil, fmt.Errorf("fig 11, size %d: %w", size, err)
			}
			*r.target = res.MLUPS
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderFig11 prints the three series.
func RenderFig11(points []Fig11Point) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 11: 3D Jacobi smoother vs linear problem size, Nehalem EP [MLUPS]")
	fmt.Fprintf(&b, "%8s %18s %18s %18s\n", "size", "wavefront 1x4", "wavefront split", "threaded (NT)")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %18.0f %18.0f %18.0f\n",
			p.Size, p.WavefrontOneSock, p.WavefrontSplit, p.ThreadedBaseline)
	}
	return b.String()
}

// TableIIRow is one column of the paper's Table II, measured with
// likwid-perfCtr's uncore counters (socket lock engaged).
type TableIIRow struct {
	Variant     string
	L3LinesIn   float64
	L3LinesOut  float64
	VolumeGB    float64 // (in + out) * 64 B, the paper's accounting
	MLUPS       float64
	PaperVolume float64
	PaperMLUPS  float64
}

// paperTableII holds the published reference values.
var paperTableII = map[jacobi.Variant]struct {
	linesIn, linesOut, volume, mlups float64
}{
	jacobi.Threaded:   {5.91e8, 5.87e8, 75.39, 784},
	jacobi.ThreadedNT: {3.44e8, 3.43e8, 43.97, 1032},
	jacobi.Wavefront:  {1.30e8, 1.29e8, 16.57, 1331},
}

// TableII reproduces the uncore measurement of §IV-C: the three Jacobi
// variants on one Nehalem EP socket, L3 lines in/out from the socket's
// uncore counters.
func TableII() ([]TableIIRow, error) {
	arch, err := hwdef.Lookup("nehalemEP")
	if err != nil {
		return nil, err
	}
	variants := []jacobi.Variant{jacobi.Threaded, jacobi.ThreadedNT, jacobi.Wavefront}
	var rows []TableIIRow
	for _, variant := range variants {
		cfg := jacobi.TableIIConfig(arch, variant)
		m := machine.New(arch, machine.Options{Seed: 1})
		specs, err := perfctr.ParseEventList("UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1")
		if err != nil {
			return nil, err
		}
		col, err := perfctr.NewCollector(m, []int{0, 1, 2, 3}, specs, perfctr.Options{})
		if err != nil {
			return nil, err
		}
		inst, err := jacobi.Prepare(cfg, m)
		if err != nil {
			return nil, err
		}
		if err := col.Start(); err != nil {
			return nil, err
		}
		res, err := inst.Run()
		if err != nil {
			return nil, err
		}
		if err := col.Stop(); err != nil {
			return nil, err
		}
		r := col.Read()
		linesIn := r.Counts["UNC_L3_LINES_IN_ANY"][0] // socket leader column
		linesOut := r.Counts["UNC_L3_LINES_OUT_ANY"][0]
		paper := paperTableII[variant]
		rows = append(rows, TableIIRow{
			Variant:     variant.String(),
			L3LinesIn:   linesIn,
			L3LinesOut:  linesOut,
			VolumeGB:    (linesIn + linesOut) * 64 / 1e9,
			MLUPS:       res.MLUPS,
			PaperVolume: paper.volume,
			PaperMLUPS:  paper.mlups,
		})
	}
	return rows, nil
}

// RenderTableII prints the measured-vs-paper table.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table II: likwid-perfCtr measurements on one Nehalem EP socket")
	fmt.Fprintf(&b, "%-28s %14s %14s %14s\n", "", rows[0].Variant, rows[1].Variant, rows[2].Variant)
	line := func(name string, f func(TableIIRow) string) {
		fmt.Fprintf(&b, "%-28s %14s %14s %14s\n", name, f(rows[0]), f(rows[1]), f(rows[2]))
	}
	line("UNC_L3_LINES_IN_ANY", func(r TableIIRow) string { return fmt.Sprintf("%.2e", r.L3LinesIn) })
	line("UNC_L3_LINES_OUT_ANY", func(r TableIIRow) string { return fmt.Sprintf("%.2e", r.L3LinesOut) })
	line("Total data volume [GB]", func(r TableIIRow) string { return fmt.Sprintf("%.2f", r.VolumeGB) })
	line("Performance [MLUPS]", func(r TableIIRow) string { return fmt.Sprintf("%.0f", r.MLUPS) })
	line("Paper volume [GB]", func(r TableIIRow) string { return fmt.Sprintf("%.2f", r.PaperVolume) })
	line("Paper performance [MLUPS]", func(r TableIIRow) string { return fmt.Sprintf("%.0f", r.PaperMLUPS) })
	return b.String()
}
