package monitor

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"likwid/internal/stats"
)

// Tier configures one downsampled retention level of the store.  Raw
// points evicted from a series' ring buffer are folded into buckets of
// the finest tier's Resolution simulated seconds, and buckets evicted
// from tier N's ring cascade into tier N+1 instead of being dropped;
// each series keeps the newest Capacity buckets per tier, so total
// retention per series is genuinely additive:
// raw_capacity * interval + sum(Resolution * Capacity) seconds.
type Tier struct {
	Resolution float64 // bucket width in simulated seconds
	Capacity   int     // buckets retained per series
}

// Span is the simulated time covered by a full tier.
func (t Tier) Span() float64 { return t.Resolution * float64(t.Capacity) }

// tierDuration converts a resolution in (possibly fractional) seconds
// back to the duration it was parsed from.  The product res*1e9 is not
// always exactly representable (0.3*1e9 rounds to 299999999.99999994),
// so it must be rounded, not truncated: truncation renders "299.999999ms"
// and breaks the ParseTiers(tiers.String()) round-trip for sub-second
// and odd resolutions.
func tierDuration(res float64) time.Duration {
	return time.Duration(math.Round(res * float64(time.Second)))
}

// String renders the tier in the -tiers spec syntax.  It round-trips:
// ParseTiers(t.String()) yields t back for any tier ParseTiers accepts.
func (t Tier) String() string {
	return fmt.Sprintf("%s:%d", tierDuration(t.Resolution), t.Capacity)
}

// ParseTiers parses a tier spec: comma-separated RESOLUTION:CAPACITY
// pairs with ascending resolutions, e.g. "10s:360,1m:720,5m:576"
// (1 h of 10 s buckets, 12 h of 1 m buckets, 48 h of 5 m buckets).
// An empty spec means no downsampling.
func ParseTiers(spec string) ([]Tier, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var tiers []Tier
	for _, part := range strings.Split(spec, ",") {
		resStr, capStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("monitor: bad tier %q (want RESOLUTION:CAPACITY, e.g. 10s:360)", part)
		}
		d, err := time.ParseDuration(resStr)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("monitor: bad tier resolution %q (want a positive duration like 10s)", resStr)
		}
		n, err := strconv.Atoi(capStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("monitor: bad tier capacity %q (want a positive bucket count)", capStr)
		}
		tiers = append(tiers, Tier{Resolution: d.Seconds(), Capacity: n})
	}
	for i := 1; i < len(tiers); i++ {
		if tiers[i].Resolution <= tiers[i-1].Resolution {
			return nil, fmt.Errorf("monitor: tier resolutions must ascend (%v after %v)",
				tierDuration(tiers[i].Resolution), tierDuration(tiers[i-1].Resolution))
		}
	}
	return tiers, nil
}

// Bucket is one compacted aggregate of raw points over [Start, Start+Res).
type Bucket struct {
	Start  float64 `json:"start"`
	Res    float64 `json:"res"`
	Count  int     `json:"count"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
	Avg    float64 `json:"avg"`
}

// End is the exclusive upper time bound of the bucket.
func (b Bucket) End() float64 { return b.Start + b.Res }

// Point renders the bucket as one windowed point (bucket start, average),
// the shape stitched Window queries return for downsampled ranges.
func (b Bucket) Point() Point { return Point{Time: b.Start, Value: b.Avg} }

// tierRing is one series' ring of sealed buckets at one resolution, plus
// the open bucket still accumulating absorbed data.  Compaction cascades:
// raw evictions feed the finest tier, and a bucket evicted from tier N's
// ring is absorbed into tier N+1 (count-weighted) instead of being
// dropped, so total retention is genuinely additive across tiers.  It is
// guarded by the owning series' mutex.
type tierRing struct {
	res  float64
	buf  []Bucket
	head int
	n    int
	next *tierRing // cascade target for evicted buckets; nil on the coarsest

	// step switches the sealed bucket's windowed value (Avg and Median)
	// to the chronologically newest member — last-value semantics for
	// sparse 0/1 state series (Store.SetCompaction, CompactLast), where
	// averaging a 1→0 transition pair into 0.5 would be noise.  Min,
	// max and count stay exact either way.
	step bool

	// seals counts buckets sealed into the ring — the store-level
	// "tier compactions" self-metric, summed by Store.Stats under the
	// same series mutex that guards the rest of the ring.
	seals uint64

	// Open-bucket accumulator.  Min/max/sum/count merge exactly whether
	// the input is a raw point or a cascaded bucket; the median is exact
	// for raw points and a median-of-medians estimate for cascades.
	open         bool
	openStart    float64
	count        int
	min, max     float64
	sum          float64
	lastT, lastV float64 // newest member by time, for step compaction
	medians      []float64
}

func newTierRing(t Tier) *tierRing {
	return &tierRing{res: t.Resolution, buf: make([]Bucket, t.Capacity)}
}

// bucketStart aligns a timestamp down to its bucket boundary.
func (t *tierRing) bucketStart(at float64) float64 {
	return math.Floor(at/t.res) * t.res
}

// rollOver seals the open bucket when data at time "at" crosses its
// boundary and (re)opens the accumulator.  Late data (older than the
// open bucket) is folded into the open bucket rather than dropped,
// trading exact alignment for completeness.
func (t *tierRing) rollOver(at float64) {
	bs := t.bucketStart(at)
	if t.open && bs > t.openStart {
		t.seal()
	}
	if !t.open {
		t.open = true
		t.openStart = bs
		t.count = 0
		t.sum = 0
		t.min = math.Inf(1)
		t.max = math.Inf(-1)
		t.lastT = math.Inf(-1)
		t.medians = t.medians[:0]
	}
}

// absorb folds one evicted raw point into the tier.
func (t *tierRing) absorb(p Point) {
	t.rollOver(p.Time)
	t.count++
	t.sum += p.Value
	t.min = math.Min(t.min, p.Value)
	t.max = math.Max(t.max, p.Value)
	if p.Time >= t.lastT {
		t.lastT, t.lastV = p.Time, p.Value
	}
	t.medians = append(t.medians, p.Value)
}

// absorbBucket folds a bucket evicted from the finer tier into this one:
// min/max merge, the average stays count-weighted exact, the median
// degrades to a median of the members' medians.  For step series the
// finer bucket's Avg already is its last value, so last-of-lasts keeps
// the semantics through the cascade.
func (t *tierRing) absorbBucket(b Bucket) {
	if b.Count <= 0 {
		return
	}
	t.rollOver(b.Start)
	t.count += b.Count
	t.sum += b.Avg * float64(b.Count)
	t.min = math.Min(t.min, b.Min)
	t.max = math.Max(t.max, b.Max)
	if b.Start >= t.lastT {
		t.lastT, t.lastV = b.Start, b.Avg
	}
	t.medians = append(t.medians, b.Median)
}

// seal pushes the open bucket into the ring; the bucket the ring evicts
// to make room cascades into the next-coarser tier.
func (t *tierRing) seal() {
	if !t.open {
		return
	}
	t.open = false
	if t.count == 0 {
		return
	}
	// Sealing runs under the series write lock and owns the scratch
	// buffer, so the in-place (allocation-free) summary is safe here.
	t.seals++
	b := t.bucket(stats.SummarizeInPlace(t.medians).Median)
	if evicted, full := t.push(b); full && t.next != nil {
		t.next.absorbBucket(evicted)
	}
}

// push inserts a sealed bucket, returning the bucket it evicted (and
// whether one was evicted) once the ring is full.
func (t *tierRing) push(b Bucket) (Bucket, bool) {
	var evicted Bucket
	full := t.n == len(t.buf)
	if full {
		evicted = t.buf[t.head]
	}
	t.buf[t.head] = b
	t.head = (t.head + 1) % len(t.buf)
	if !full {
		t.n++
	}
	return evicted, full
}

// bucket shapes the open accumulator into a Bucket.  Step series report
// the newest member as both Avg and Median — the state at the bucket
// end — so windowed queries over downsampled alert history never show
// values that were never recorded.
func (t *tierRing) bucket(median float64) Bucket {
	avg := t.sum / float64(t.count)
	if t.step {
		avg, median = t.lastV, t.lastV
	}
	return Bucket{
		Start:  t.openStart,
		Res:    t.res,
		Count:  t.count,
		Min:    t.min,
		Median: median,
		Max:    t.max,
		Avg:    avg,
	}
}

// snapshot copies the sealed buckets oldest-first, appending the open
// bucket as a provisional aggregate so fresh evictions stay queryable.
func (t *tierRing) snapshot() []Bucket {
	out := make([]Bucket, 0, t.n+1)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	if t.open && t.count > 0 {
		// Snapshots run under a shared read lock: the copying summary
		// keeps concurrent readers from sorting the scratch buffer.
		out = append(out, t.bucket(stats.Summarize(t.medians).Median))
	}
	return out
}

// Tiers returns the store's downsampling configuration (nil when the
// store keeps raw rings only).
func (st *Store) Tiers() []Tier { return append([]Tier(nil), st.tiers...) }

// Buckets returns one series' downsampled buckets at the given tier
// resolution with Start in [from, to], oldest first (to < 0 means until
// the newest bucket).  The newest bucket may be provisional (still
// accumulating); resolutions not configured as a tier return nil.
func (st *Store) Buckets(k Key, resolution, from, to float64) []Bucket {
	s := st.lookup(k)
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, t := range s.tiers {
		if t.res != resolution {
			continue
		}
		all := t.snapshot()
		out := all[:0:0]
		for _, b := range all {
			if b.Start < from || (to >= 0 && b.Start > to) {
				continue
			}
			out = append(out, b)
		}
		return out
	}
	return nil
}

// stitch merges downsampled history below the raw coverage boundary with
// the raw points themselves: each age range is served by the finest
// level that still retains it (raw where available, then tier by tier
// toward the coarsest).  A bucket is kept when it starts strictly below
// the boundary: its members are evictions, all older than the retained
// raw points, so the result stays non-overlapping and time-ordered.
// (Skipping on End() > cover instead would drop the bucket holding data
// older than — but within one resolution of — the oldest raw point,
// losing e.g. a point that falls exactly on a sealed bucket's End.)
func stitch(raw []Point, tiers [][]Bucket, from, to float64) []Point {
	cover := math.Inf(1)
	if len(raw) > 0 {
		cover = raw[0].Time
	}
	var older []Point
	for _, buckets := range tiers {
		lowest := cover
		for i := len(buckets) - 1; i >= 0; i-- {
			b := buckets[i]
			if b.Start >= cover {
				continue
			}
			if b.Start < lowest {
				lowest = b.Start
			}
			if b.Start < from || (to >= 0 && b.Start > to) {
				continue
			}
			older = append(older, b.Point())
		}
		cover = lowest
	}
	sort.Slice(older, func(i, j int) bool { return older[i].Time < older[j].Time })
	out := make([]Point, 0, len(older)+len(raw))
	out = append(out, older...)
	for _, p := range raw {
		if p.Time < from || (to >= 0 && p.Time > to) {
			continue
		}
		out = append(out, p)
	}
	return out
}
