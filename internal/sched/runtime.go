package sched

import "fmt"

// RuntimeModel identifies the threading runtime creating a parallel team.
// The paper's likwid-pin must know it because each runtime creates a
// different set of threads around the workers (§II-C): Intel OpenMP spawns
// OMP_NUM_THREADS+1 POSIX threads whose first is an unpinnable shepherd,
// gcc OpenMP spawns OMP_NUM_THREADS-1, and raw pthreads programs spawn
// exactly what they ask for.
type RuntimeModel int

// Supported runtimes (likwid-pin -t).
const (
	RuntimePthreads RuntimeModel = iota
	RuntimeIntelOMP
	RuntimeGccOMP
)

// String returns the likwid-pin -t spelling.
func (r RuntimeModel) String() string {
	switch r {
	case RuntimeIntelOMP:
		return "intel"
	case RuntimeGccOMP:
		return "gnu"
	default:
		return "pthreads"
	}
}

// ParseRuntime parses a likwid-pin -t argument.
func ParseRuntime(s string) (RuntimeModel, error) {
	switch s {
	case "intel":
		return RuntimeIntelOMP, nil
	case "gnu", "gcc":
		return RuntimeGccOMP, nil
	case "pthreads", "posix", "":
		return RuntimePthreads, nil
	default:
		return 0, fmt.Errorf("sched: unknown threading runtime %q", s)
	}
}

// SpawnHook is the interposition point of likwid-pin: it is invoked for
// every pthread_create call with the creation index (0 for the first thread
// the process creates) and the new task, before the task runs.  This is the
// library-preload mechanism of Fig. 3 in the paper.
type SpawnHook func(createIndex int, t *Task)

// Team is one parallel region's thread set.
type Team struct {
	Runtime RuntimeModel
	Master  *Task
	Created []*Task // every pthread_create result, in creation order
	Workers []*Task // the tasks that execute the parallel work
}

// SpawnTeam creates the threads of a parallel region with nThreads workers
// under the given runtime model, invoking hook at every thread creation —
// exactly where the real likwid-pin's pthread_create wrapper runs.
func SpawnTeam(k *Kernel, model RuntimeModel, nThreads int, master *Task, hook SpawnHook) (*Team, error) {
	if nThreads < 1 {
		return nil, fmt.Errorf("sched: team needs at least one worker, got %d", nThreads)
	}
	if master == nil {
		return nil, fmt.Errorf("sched: team needs a master task")
	}
	team := &Team{Runtime: model, Master: master}
	create := func(name string) *Task {
		t := k.Spawn(name, master)
		if hook != nil {
			hook(len(team.Created), t)
		}
		team.Created = append(team.Created, t)
		return t
	}
	switch model {
	case RuntimeIntelOMP:
		// Master works; the first created thread is the shepherd and
		// must not be counted (or pinned) as a worker.
		create("omp-shepherd")
		team.Workers = append(team.Workers, master)
		for i := 1; i < nThreads; i++ {
			team.Workers = append(team.Workers, create(fmt.Sprintf("omp-worker-%d", i)))
		}
	case RuntimeGccOMP:
		team.Workers = append(team.Workers, master)
		for i := 1; i < nThreads; i++ {
			team.Workers = append(team.Workers, create(fmt.Sprintf("omp-worker-%d", i)))
		}
	default: // pthreads: the program creates exactly nThreads workers
		for i := 0; i < nThreads; i++ {
			team.Workers = append(team.Workers, create(fmt.Sprintf("pthread-%d", i)))
		}
	}
	return team, nil
}

// Exit tears the team down (master survives).
func (team *Team) Exit(k *Kernel) {
	for _, t := range team.Created {
		k.Exit(t)
	}
}
