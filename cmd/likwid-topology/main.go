// likwid-topology prints the hardware thread and cache topology of a
// simulated node, decoded from emulated CPUID registers exactly as the
// original tool decodes the instruction (§II-B of the paper).
//
// Usage:
//
//	likwid-topology [-a arch] [-c] [-g] [-n] [-x]
//
//	-a arch   node architecture (default westmereEP); see -l
//	-c        extended cache parameters
//	-g        ASCII-art cache/socket diagram
//	-n        include NUMA domains (memory, distances)
//	-x        emit the report as XML instead of text
//	-l        list modeled architectures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"likwid"
	"likwid/internal/topology"
)

func main() {
	arch := flag.String("a", "westmereEP", "node architecture")
	extended := flag.Bool("c", false, "show extended cache parameters")
	art := flag.Bool("g", false, "print ASCII-art topology")
	numa := flag.Bool("n", false, "include NUMA domains")
	asXML := flag.Bool("x", false, "emit XML")
	list := flag.Bool("l", false, "list modeled architectures")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-topology:", err)
		os.Exit(1)
	}
	if *list {
		fmt.Println(strings.Join(likwid.Architectures(), "\n"))
		return
	}
	node, err := likwid.Open(*arch)
	if err != nil {
		fail(err)
	}
	topo, err := node.Topology()
	if err != nil {
		fail(err)
	}
	if *numa || *asXML {
		topo.AttachNUMA(topology.NUMAFromArch(node.Arch(), topo, 0))
	}
	if *asXML {
		out, err := topo.XML()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
		return
	}
	fmt.Print(topo.Render(likwid.TopologyOptions{
		ExtendedCaches: *extended, ASCIIArt: *art, NUMA: *numa,
	}))
}
