package monitor

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fakeCollector ticks a counter and optionally fails.
type fakeCollector struct {
	name     string
	interval time.Duration
	calls    atomic.Int64
	failures int64 // fail the first N calls
	value    float64
}

func (f *fakeCollector) Name() string            { return f.name }
func (f *fakeCollector) Scope() Scope            { return ScopeNode }
func (f *fakeCollector) Interval() time.Duration { return f.interval }

func (f *fakeCollector) Collect(ctx context.Context) ([]Sample, error) {
	n := f.calls.Add(1)
	if n <= f.failures {
		return nil, errors.New("transient failure")
	}
	return []Sample{{Metric: f.name, Scope: ScopeNode, Time: float64(n), Value: f.value}}, nil
}

// waitForWaiters blocks until the fake clock has n armed timers — i.e. the
// scheduler goroutines are parked in After and an Advance will be seen.
func waitForWaiters(t *testing.T, fc *FakeClock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fc.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d armed timers (have %d)", n, fc.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerTicksOnFakeClock(t *testing.T) {
	fc := NewFakeClock()
	st := NewStore(16)
	c := &fakeCollector{name: "fake", interval: time.Second, value: 42}
	s := NewScheduler(SchedulerOptions{Clock: fc, Store: st})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	for i := 0; i < 3; i++ {
		waitForWaiters(t, fc, 1)
		fc.Advance(time.Second)
		// The next After arms only once the tick was processed.
		waitForWaiters(t, fc, 1)
	}
	cancel()
	<-done

	if got := c.calls.Load(); got != 3 {
		t.Errorf("Collect called %d times, want 3", got)
	}
	k := Key{Metric: "fake", Scope: ScopeNode, ID: 0}
	if n := st.Len(k); n != 3 {
		t.Errorf("store holds %d points, want 3", n)
	}
	stats := s.Stats()
	if len(stats) != 1 || stats[0].Batches != 3 || stats[0].Samples != 3 {
		t.Errorf("Stats = %+v, want 3 batches / 3 samples", stats)
	}
}

func TestSchedulerCancellationStopsTicks(t *testing.T) {
	fc := NewFakeClock()
	c := &fakeCollector{name: "fake", interval: time.Second}
	s := NewScheduler(SchedulerOptions{Clock: fc})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()
	waitForWaiters(t, fc, 1)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if got := c.calls.Load(); got != 0 {
		t.Errorf("Collect called %d times after pure cancellation, want 0", got)
	}
}

func TestSchedulerErrorBackoff(t *testing.T) {
	fc := NewFakeClock()
	var reported atomic.Int64
	c := &fakeCollector{name: "flaky", interval: time.Second, failures: 2}
	s := NewScheduler(SchedulerOptions{
		Clock:      fc,
		MaxBackoff: 8 * time.Second,
		OnError:    func(string, error) { reported.Add(1) },
	})
	s.Add(c)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	// Tick 1 fails -> backoff doubles to 2 s.
	waitForWaiters(t, fc, 1)
	fc.Advance(time.Second)
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 1 {
		t.Fatalf("after first tick: %d calls, want 1", got)
	}
	// 1 s is not enough any more: the timer needs the full 2 s.
	fc.Advance(time.Second)
	time.Sleep(5 * time.Millisecond)
	if got := c.calls.Load(); got != 1 {
		t.Fatalf("backoff ignored: %d calls after 1s, want still 1", got)
	}
	fc.Advance(time.Second) // completes the 2 s backoff -> second failure
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 2 {
		t.Fatalf("after backoff tick: %d calls, want 2", got)
	}
	// Third call succeeds after a 4 s backoff and resets to the interval.
	fc.Advance(4 * time.Second)
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 3 {
		t.Fatalf("after second backoff: %d calls, want 3", got)
	}
	fc.Advance(time.Second) // back to the 1 s interval
	waitForWaiters(t, fc, 1)
	if got := c.calls.Load(); got != 4 {
		t.Fatalf("after recovery: %d calls, want 4 (interval reset)", got)
	}
	cancel()
	<-done

	stats := s.Stats()
	if stats[0].Errors != 2 {
		t.Errorf("Errors = %d, want 2", stats[0].Errors)
	}
	if reported.Load() != 2 {
		t.Errorf("OnError observed %d failures, want 2", reported.Load())
	}
}

func TestFakeClockAdvanceFiresDueTimersOnly(t *testing.T) {
	fc := NewFakeClock()
	short := fc.After(time.Second)
	long := fc.After(3 * time.Second)
	fc.Advance(time.Second)
	select {
	case <-short:
	default:
		t.Fatal("1 s timer did not fire after 1 s advance")
	}
	select {
	case <-long:
		t.Fatal("3 s timer fired after only 1 s")
	default:
	}
	fc.Advance(2 * time.Second)
	select {
	case <-long:
	default:
		t.Fatal("3 s timer did not fire after 3 s total")
	}
}
