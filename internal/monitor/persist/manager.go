package persist

import (
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// Options tunes a Manager.  The zero value is usable: one-minute
// snapshots, a 4096-record WAL buffer, no logging, no telemetry.
type Options struct {
	// SnapshotInterval is the period of the background ring/tier
	// snapshot (and WAL truncation).  <= 0 means the one-minute default.
	SnapshotInterval time.Duration
	// WALBuffer is the journal channel depth; records beyond it are
	// dropped (and counted) rather than blocking appends.  <= 0 means
	// 4096 — one push-sink flush.
	WALBuffer int
	// Logger receives recovery and failure events; nil stays silent.
	Logger *slog.Logger
	// Registry, when set, receives the persistence self-metrics (WAL
	// fsync latency and counters, snapshot duration, replay counters).
	// It must be passed at Open so the WAL writer observes from its
	// first fsync without a start-up race.
	Registry *telemetry.Registry
}

// Manager owns one store's durability state directory:
//
//	snapshot.json — the last full ring/tier snapshot (atomic rename)
//	wal.log       — appends since that snapshot, CRC-framed
//	wal.prev      — the pre-rotation log, present only mid-snapshot
//
// Open restores snapshot + WAL into the store and installs the journal;
// a background loop then snapshots every SnapshotInterval, truncating
// the WAL each time (rotate first, dump second, so nothing falls
// between — the overlap is deduped on the next replay instead).
type Manager struct {
	dir   string
	store *monitor.Store
	opts  Options
	wal   *wal

	stop     chan struct{}
	wg       sync.WaitGroup
	closedMu sync.Mutex
	closed   bool

	snapshots    atomic.Uint64
	snapDuration atomic.Uint64 // float64 bits, seconds of the last snapshot

	replayed         atomic.Uint64
	replaySkipped    atomic.Uint64
	replayInvalid    atomic.Uint64
	replayTruncBytes atomic.Uint64
}

func (m *Manager) snapshotPath() string { return filepath.Join(m.dir, "snapshot.json") }
func (m *Manager) walPath() string      { return filepath.Join(m.dir, "wal.log") }
func (m *Manager) walPrevPath() string  { return filepath.Join(m.dir, "wal.prev") }

// Open restores dir's snapshot and WAL into st, installs the append
// journal, and starts the WAL writer and the snapshot loop.  It must
// run before st serves traffic: replayed points bypass the journal, so
// anything appended concurrently could be interleaved into the replay.
func Open(dir string, st *monitor.Store, opts Options) (*Manager, error) {
	if opts.SnapshotInterval <= 0 {
		opts.SnapshotInterval = time.Minute
	}
	if opts.WALBuffer <= 0 {
		opts.WALBuffer = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, store: st, opts: opts, stop: make(chan struct{})}

	// Restore: snapshot first, then both WAL generations in write order.
	states, err := readSnapshot(m.snapshotPath())
	if err != nil {
		return nil, err
	}
	st.RestoreState(states)

	// The replay dedupe guard: a record at or before a series' newest
	// restored time is already inside the snapshot (the rotate-then-dump
	// overlap, or a wal.prev left by a crash after the snapshot rename).
	newest := make(map[monitor.Key]float64, len(states))
	for _, s := range states {
		if len(s.Raw) > 0 {
			newest[s.Key] = s.Raw[len(s.Raw)-1].Time
		}
	}
	apply := func(e walEntry) error {
		k, err := entryKey(e)
		if err != nil {
			m.replayInvalid.Add(1)
			return nil
		}
		if last, ok := newest[k]; ok && e.Time <= last {
			m.replaySkipped.Add(1)
			return nil
		}
		newest[k] = e.Time
		st.Append(k, monitor.Point{Time: e.Time, Value: e.Value})
		m.replayed.Add(1)
		return nil
	}
	for _, path := range []string{m.walPrevPath(), m.walPath()} {
		applied, truncated, err := replayWAL(path, apply)
		if err != nil {
			return nil, fmt.Errorf("persist: replaying %s: %w", path, err)
		}
		m.replayTruncBytes.Add(uint64(truncated))
		if (applied > 0 || truncated > 0) && opts.Logger != nil {
			opts.Logger.Info("replayed write-ahead log",
				"path", path, "records", applied, "truncated_bytes", truncated)
		}
	}

	// Journal from here on.  The fsync observer is wired before the
	// writer goroutine starts, so telemetry sees the first commit.
	w, err := openWAL(m.walPath(), opts.WALBuffer)
	if err != nil {
		return nil, err
	}
	m.wal = w
	if opts.Logger != nil {
		w.fail = func(err error) { opts.Logger.Error("WAL write failed", "err", err) }
	}
	if reg := opts.Registry; reg != nil {
		h := reg.Histogram("likwid_wal_fsync_seconds",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
		w.observeFsync = h.Observe
		m.instrument(reg)
	}
	st.SetJournal(w)

	m.wg.Add(1)
	go m.loop()
	return m, nil
}

func (m *Manager) loop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := m.Snapshot(); err != nil && m.opts.Logger != nil {
				m.opts.Logger.Error("snapshot failed", "err", err)
			}
		case <-m.stop:
			return
		}
	}
}

// Snapshot rotates the WAL, dumps the store and atomically replaces the
// on-disk snapshot, then discards the rotated log — its records are all
// inside the dump.  Appends keep flowing throughout; records landing
// between the rotation and the dump exist in both the new WAL and the
// snapshot, which the next boot's replay guard dedupes.
func (m *Manager) Snapshot() error {
	start := time.Now()
	if err := m.wal.rotate(m.walPrevPath(), m.walPath()); err != nil {
		return fmt.Errorf("persist: rotating WAL: %w", err)
	}
	if err := writeSnapshot(m.snapshotPath(), m.store.DumpState()); err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := os.Remove(m.walPrevPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("persist: removing rotated WAL: %w", err)
	}
	m.snapshots.Add(1)
	m.snapDuration.Store(math.Float64bits(time.Since(start).Seconds()))
	return nil
}

// Close detaches the journal, takes a final snapshot (leaving an empty
// WAL, so the next boot restores without replay) and stops the writer.
// Call it after appends have stopped — after the scheduler and ingest
// paths have shut down.
func (m *Manager) Close() error {
	m.closedMu.Lock()
	if m.closed {
		m.closedMu.Unlock()
		return nil
	}
	m.closed = true
	m.closedMu.Unlock()

	m.store.SetJournal(nil)
	close(m.stop)
	m.wg.Wait()
	// Drain the writer before dumping: a record still queued during the
	// rotation would otherwise land in the fresh WAL as a duplicate of
	// what the snapshot is about to capture.
	m.wal.stop()
	snapErr := m.Snapshot()
	if err := m.wal.closeFile(); err != nil {
		return err
	}
	return snapErr
}

// instrument registers the manager's self-metrics alongside the WAL's.
func (m *Manager) instrument(reg *telemetry.Registry) {
	m.wal.instrument(reg)
	reg.CounterFunc("likwid_snapshots_total", func() float64 {
		return float64(m.snapshots.Load())
	})
	reg.GaugeFunc("likwid_snapshot_duration_seconds", func() float64 {
		return math.Float64frombits(m.snapDuration.Load())
	})
	reg.CounterFunc("likwid_replay_records_total", func() float64 {
		return float64(m.replayed.Load())
	})
	reg.CounterFunc("likwid_replay_skipped_total", func() float64 {
		return float64(m.replaySkipped.Load())
	})
	reg.CounterFunc("likwid_replay_invalid_total", func() float64 {
		return float64(m.replayInvalid.Load())
	})
	reg.CounterFunc("likwid_replay_truncated_bytes_total", func() float64 {
		return float64(m.replayTruncBytes.Load())
	})
}
