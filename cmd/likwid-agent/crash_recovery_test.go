package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoveryAcrossRestart is the end-to-end durability check: a
// real likwid-agent receiver with -wal is fed half a series, SIGKILLed
// (no shutdown path runs — the WAL is all that survives), restarted on
// the same state directory, fed the other half, and must serve the
// complete stitched window as if it had never died.
func TestCrashRecoveryAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the agent binary")
	}
	bin := buildAgent(t)
	walDir := filepath.Join(t.TempDir(), "state")

	// Snapshots are pushed out of the picture (1h): this test pins the
	// WAL-only recovery path; the snapshot path has its own unit tests.
	args := []string{
		"-receiver", "127.0.0.1:0",
		"-wal", walDir, "-snapshot-interval", "1h",
		"-retain", "64", "-tiers", "4s:32",
	}

	// First life: ingest times 0..49, crash hard.
	proc, base := startReceiver(t, bin, args)
	ingestRange(t, base, 0, 50)
	if got := queryPoints(t, base, 0); len(got) != 50 {
		t.Fatalf("pre-crash query returned %d points, want 50", len(got))
	}
	waitBWRecords(t, filepath.Join(walDir, "wal.log"), 50)
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = proc.Wait()

	// Second life: the 50 pre-crash points must be back before any new
	// ingest, then the other half lands on the same series.
	proc2, base2 := startReceiver(t, bin, args)
	defer func() {
		proc2.Process.Kill()
		proc2.Wait()
	}()
	restored := queryPoints(t, base2, 0)
	if len(restored) != 50 {
		t.Fatalf("restored query returned %d points, want 50: %v", len(restored), restored)
	}
	for i, p := range restored {
		if p.Time != float64(i) || p.Value != float64(i) {
			t.Fatalf("restored point %d = %+v, want time=value=%d", i, p, i)
		}
	}
	ingestRange(t, base2, 50, 100)

	// 100 appends into a 64-point ring: times 36..99 stay raw, 0..35
	// compact into 4s buckets — the stitched window is 9 bucket averages
	// (4k, 4k+1.5) followed by the 64 raw points.
	got := queryPoints(t, base2, 0)
	type pt struct{ Time, Value float64 }
	var want []pt
	for k := 0; k < 9; k++ {
		want = append(want, pt{float64(4 * k), float64(4*k) + 1.5})
	}
	for i := 36; i < 100; i++ {
		want = append(want, pt{float64(i), float64(i)})
	}
	if len(got) != len(want) {
		t.Fatalf("stitched window has %d points, want %d: %v", len(got), len(want), got)
	}
	for i, p := range got {
		if p.Time != want[i].Time || p.Value != want[i].Value {
			t.Fatalf("stitched point %d = %+v, want %+v", i, p, want[i])
		}
	}
}

// buildAgent compiles the binary under test once per test run.
func buildAgent(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "likwid-agent")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building agent: %v\n%s", err, out)
	}
	return bin
}

// startReceiver launches the binary and scrapes the actual listen
// address (the :0 port) from its startup log line.
func startReceiver(t *testing.T, bin string, args []string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	var logged sync.Mutex
	var lines []string
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logged.Lock()
			lines = append(lines, line)
			logged.Unlock()
			if i := strings.Index(line, "receiver listening"); i >= 0 {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						select {
						case addrCh <- a:
						default:
						}
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		base := "http://" + addr
		waitHealthy(t, base)
		return cmd, base
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		logged.Lock()
		defer logged.Unlock()
		t.Fatalf("receiver never logged its listen address; log:\n%s", strings.Join(lines, "\n"))
		return nil, ""
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("receiver at %s never became healthy", base)
}

// ingestRange POSTs one v2 JSON-lines batch with times [from, to).
func ingestRange(t *testing.T, base string, from, to int) {
	t.Helper()
	var body bytes.Buffer
	for i := from; i < to; i++ {
		fmt.Fprintf(&body, `{"time":%d,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":%d}`+"\n", i, i)
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %d: %s", resp.StatusCode, out)
	}
}

func queryPoints(t *testing.T, base string, from float64) []struct{ Time, Value float64 } {
	t.Helper()
	url := fmt.Sprintf("%s/query?source=nodeA&metric=bw&scope=node&id=0&from=%g", base, from)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Points []struct{ Time, Value float64 } `json:"points"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("query body %q: %v", body, err)
	}
	return out.Points
}

// waitBWRecords polls the WAL until n ingested bw records are framed
// whole on disk — only then is the SIGKILL guaranteed recoverable.
// (The receiver's self-telemetry series share the log, so frames are
// filtered by metric.)
func waitBWRecords(t *testing.T, path string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if countBWRecords(t, path) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("WAL %s never reached %d bw records (now %d)", path, n, countBWRecords(t, path))
}

// countBWRecords counts whole CRC-framed WAL records for metric "bw"
// without modifying the file (safe against a log mid-write).
func countBWRecords(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for len(b) >= 8 {
		size := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if size > 1<<20 || len(b) < 8+int(size) {
			break
		}
		payload := b[8 : 8+size]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var e struct {
			Metric string `json:"metric"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Metric == "bw" {
			n++
		}
		b = b[8+size:]
	}
	return n
}
