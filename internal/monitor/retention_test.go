package monitor

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestParseTiers(t *testing.T) {
	tiers, err := ParseTiers("10s:360, 1m:720,5m:576")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tier{{10, 360}, {60, 720}, {300, 576}}
	if len(tiers) != len(want) {
		t.Fatalf("tiers = %+v, want %+v", tiers, want)
	}
	for i := range want {
		if tiers[i] != want[i] {
			t.Errorf("tier %d = %+v, want %+v", i, tiers[i], want[i])
		}
	}
	if tiers[0].Span() != 3600 {
		t.Errorf("10s:360 span = %v, want 3600", tiers[0].Span())
	}
	if got := tiers[1].String(); got != "1m0s:720" {
		t.Errorf("tier String = %q", got)
	}

	if tiers, err := ParseTiers(""); err != nil || tiers != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", tiers, err)
	}
	for _, bad := range []string{"10s", "x:5", "10s:x", "10s:0", "10s:-3", "-10s:5", "0s:5", "1m:10,10s:10", "10s:5,10s:5"} {
		if _, err := ParseTiers(bad); err == nil {
			t.Errorf("ParseTiers(%q) succeeded, want error", bad)
		}
	}
}

// TestTierStringRoundTrips pins Tier.String against float rounding:
// ParseTiers(tier.String()) must yield the tier back exactly.  The old
// truncating conversion rendered 300ms as "299.999999ms" (0.3*1e9 is not
// exactly representable), so specs with sub-second or odd resolutions
// did not survive a render/re-parse cycle.
func TestTierStringRoundTrips(t *testing.T) {
	specs := []string{
		"300ms", "100ms", "250ms", "1.5s", "2.5ms", "333ms", "250us",
		"10s", "1m", "1m30s", "5m", "1h", "12h", "7s", "1ns",
	}
	for _, s := range specs {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad test duration %q: %v", s, err)
		}
		tier := Tier{Resolution: d.Seconds(), Capacity: 7}
		got, err := ParseTiers(tier.String())
		if err != nil {
			t.Errorf("ParseTiers(%q.String() = %q) failed: %v", s, tier.String(), err)
			continue
		}
		if len(got) != 1 || got[0] != tier {
			t.Errorf("round trip of %q: %q parsed back to %+v, want %+v", s, tier.String(), got, tier)
		}
	}

	// Property sweep: random positive durations round-trip too, and a
	// whole multi-tier spec survives render/re-parse as a unit.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := time.Duration(1 + rng.Int63n(int64(24*time.Hour)))
		tier := Tier{Resolution: d.Seconds(), Capacity: 1 + rng.Intn(1000)}
		got, err := ParseTiers(tier.String())
		if err != nil || len(got) != 1 || got[0] != tier {
			t.Fatalf("trial %d: %v (res %v) rendered %q, parsed back to (%+v, %v)",
				trial, tier, d, tier.String(), got, err)
		}
	}
	tiers, err := ParseTiers("300ms:10,1.5s:20,1m:30")
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, tier := range tiers {
		parts = append(parts, tier.String())
	}
	again, err := ParseTiers(strings.Join(parts, ","))
	if err != nil {
		t.Fatalf("re-parse of rendered spec %q failed: %v", strings.Join(parts, ","), err)
	}
	if len(again) != len(tiers) {
		t.Fatalf("re-parse = %+v, want %+v", again, tiers)
	}
	for i := range tiers {
		if again[i] != tiers[i] {
			t.Errorf("tier %d round trip = %+v, want %+v", i, again[i], tiers[i])
		}
	}
}

// TestWindowBoundaryPointAtBucketEnd is the stitch coverage-boundary
// regression: a raw point whose timestamp falls exactly on a sealed tier
// bucket's End() — it is the first member of the next (still open)
// bucket — must come back from Window exactly once.  The old stitch
// skipped any bucket with End() > cover, which dropped the open bucket
// holding that point even though all its members are older than the
// retained raw ring.
func TestWindowBoundaryPointAtBucketEnd(t *testing.T) {
	// Ring of 4, 1 s buckets.  Appends at t = 0, 0.25, ..., 2.0 (exact in
	// binary), values = index: the ring keeps t = 1.25..2.0, evictions
	// cover t = 0..1.0 → sealed bucket [0,1) plus an open bucket [1,2)
	// whose only member is the point at exactly t = 1.0 (the sealed
	// bucket's End).
	st := NewStore(4, Tier{Resolution: 1, Capacity: 8})
	k := key("bw")
	for i := 0; i <= 8; i++ {
		st.Append(k, Point{Time: float64(i) * 0.25, Value: float64(i)})
	}
	pts := st.Window(k, 0, -1)
	if len(pts) != 6 {
		t.Fatalf("stitched window = %+v, want 6 points (sealed bucket, open bucket, 4 raw)", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("window not strictly time-ordered at %d: %+v", i, pts)
		}
	}
	var atBoundary int
	for _, p := range pts {
		if p.Time == 1.0 {
			atBoundary++
			if p.Value != 4 {
				t.Errorf("boundary point = %+v, want the t=1.0 append (value 4) exactly", p)
			}
		}
	}
	if atBoundary != 1 {
		t.Errorf("point at t=1.0 appears %d times, want exactly once", atBoundary)
	}
	// The sealed bucket and the raw tail are untouched by the fix.
	if pts[0].Time != 0 || pts[0].Value != 1.5 {
		t.Errorf("sealed bucket point = %+v, want t=0 avg=1.5", pts[0])
	}
	for i, p := range pts[2:] {
		if want := (Point{Time: 1.25 + 0.25*float64(i), Value: float64(i + 5)}); p != want {
			t.Errorf("raw point %d = %+v, want %+v", i, p, want)
		}
	}
}

// TestCompactionFoldsEvictedPoints pins the compaction arithmetic: evicted
// raw points land in stats buckets, surviving raw points do not.
func TestCompactionFoldsEvictedPoints(t *testing.T) {
	// Raw ring of 4; 1-second buckets.  Times step by 0.25 (exact in
	// binary) so bucket membership has no float noise.
	st := NewStore(4, Tier{Resolution: 1, Capacity: 8})
	k := key("bw")
	values := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}
	for i, v := range values {
		st.Append(k, Point{Time: float64(i) * 0.25, Value: v})
	}
	// 12 appended, ring keeps the last 4: evicted are values[0:8],
	// covering t = 0 .. 1.75 → bucket [0,1) sealed with values[0:4],
	// bucket [1,2) provisional with values[4:8].
	buckets := st.Buckets(k, 1, 0, -1)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v, want 2", buckets)
	}
	b0 := buckets[0]
	if b0.Start != 0 || b0.Count != 4 || b0.Min != 1 || b0.Max != 4 || b0.Avg != 2.25 || b0.Median != 2 {
		t.Errorf("bucket 0 = %+v, want start=0 count=4 min=1 med=2 max=4 avg=2.25", b0)
	}
	b1 := buckets[1]
	if b1.Start != 1 || b1.Count != 4 || b1.Min != 2 || b1.Max != 9 || b1.Avg != 5.5 {
		t.Errorf("bucket 1 = %+v, want start=1 count=4 min=2 max=9 avg=5.5", b1)
	}
	// Unconfigured resolutions and unknown series return nil.
	if got := st.Buckets(k, 2, 0, -1); got != nil {
		t.Errorf("Buckets at unconfigured resolution = %+v, want nil", got)
	}
	if got := st.Buckets(key("nope"), 1, 0, -1); got != nil {
		t.Errorf("Buckets of unknown series = %+v, want nil", got)
	}
}

func TestUniformStreamBucketCountMatchesResolution(t *testing.T) {
	// 0.125 s sampling into 1 s buckets: every sealed bucket holds
	// exactly 8 points.
	st := NewStore(16, Tier{Resolution: 1, Capacity: 64})
	k := key("bw")
	const dt = 0.125
	for i := 0; i < 400; i++ {
		st.Append(k, Point{Time: float64(i) * dt, Value: float64(i)})
	}
	buckets := st.Buckets(k, 1, 0, -1)
	if len(buckets) < 10 {
		t.Fatalf("only %d buckets compacted", len(buckets))
	}
	for i, b := range buckets[:len(buckets)-1] { // last may be provisional
		if b.Count != 8 {
			t.Errorf("bucket %d (start %v) Count = %d, want 8 (res/interval)", i, b.Start, b.Count)
		}
		if b.Start != float64(i) {
			t.Errorf("bucket %d Start = %v, want %d", i, b.Start, i)
		}
	}
}

func TestTierRingEvictsOldestBuckets(t *testing.T) {
	st := NewStore(2, Tier{Resolution: 1, Capacity: 4})
	k := key("bw")
	for i := 0; i < 40; i++ {
		st.Append(k, Point{Time: float64(i) * 0.5, Value: float64(i)})
	}
	buckets := st.Buckets(k, 1, 0, -1)
	// 4 sealed + possibly 1 provisional; the oldest buckets are gone.
	if len(buckets) < 4 || len(buckets) > 5 {
		t.Fatalf("buckets = %d, want 4 or 5", len(buckets))
	}
	if buckets[0].Start < 13 {
		t.Errorf("oldest retained bucket starts at %v, want the early buckets evicted", buckets[0].Start)
	}
}

func TestWindowStitchesTiersWithRaw(t *testing.T) {
	st := NewStore(8, Tier{Resolution: 1, Capacity: 8}, Tier{Resolution: 4, Capacity: 8})
	k := key("bw")
	const dt = 0.5
	n := 100 // t = 0 .. 49.5
	for i := 0; i < n; i++ {
		st.Append(k, Point{Time: float64(i) * dt, Value: float64(i)})
	}
	// Raw keeps t = 46 .. 49.5.  The 1 s tier keeps its newest 8 sealed
	// buckets below that; the 4 s tier covers older ranges still.
	pts := st.Window(k, 0, -1)
	if len(pts) == 0 {
		t.Fatal("stitched window is empty")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("window not strictly time-ordered at %d: %v after %v", i, pts[i].Time, pts[i-1].Time)
		}
	}
	// The newest 8 points are the raw ring verbatim.
	rawPart := pts[len(pts)-8:]
	for i, p := range rawPart {
		wantT := float64(n-8+i) * dt
		if p.Time != wantT || p.Value != float64(n-8+i) {
			t.Errorf("raw point %d = %+v, want t=%v v=%v", i, p, wantT, n-8+i)
		}
	}
	// Older points are bucket averages: values ramp linearly, so each
	// 1 s bucket of the ramp averages its own midpoint and stays
	// monotonic too.
	downPart := pts[:len(pts)-8]
	if len(downPart) == 0 {
		t.Fatal("no downsampled points stitched in")
	}
	for i := 1; i < len(downPart); i++ {
		if downPart[i].Value <= downPart[i-1].Value {
			t.Errorf("downsampled ramp not monotonic at %d: %+v after %+v", i, downPart[i], downPart[i-1])
		}
	}
	// A window restricted to the downsampled past touches no raw point.
	past := st.Window(k, 10, 20)
	for _, p := range past {
		if p.Time < 10 || p.Time > 20 {
			t.Errorf("windowed point %v outside [10,20]", p.Time)
		}
	}
	if len(past) == 0 {
		t.Error("past window returned nothing despite tier coverage")
	}
}

// TestCompactionPropertyInvariants is the randomized sweep: for random
// point streams, every bucket keeps min ≤ median/avg ≤ max with the
// right point count, and stitched windows stay non-overlapping and
// time-ordered across tier boundaries.
func TestCompactionPropertyInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rawCap := 4 + rng.Intn(60)
		tiers := []Tier{
			{Resolution: 1, Capacity: 8 + rng.Intn(32)},
			{Resolution: 5, Capacity: 8 + rng.Intn(32)},
		}
		st := NewStore(rawCap, tiers...)
		k := key("rand")
		n := 200 + rng.Intn(800)
		// Exact-binary 0.25 s steps: bucket membership is deterministic,
		// so sealed 1 s buckets must hold exactly 4 points.
		var minV, maxV = math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 100
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
			st.Append(k, Point{Time: float64(i) * 0.25, Value: v})
		}
		for _, tier := range tiers {
			buckets := st.Buckets(k, tier.Resolution, 0, -1)
			for i, b := range buckets {
				if !(b.Min <= b.Avg && b.Avg <= b.Max) {
					t.Fatalf("seed %d res %v bucket %d: min %v ≤ avg %v ≤ max %v violated",
						seed, tier.Resolution, i, b.Min, b.Avg, b.Max)
				}
				if !(b.Min <= b.Median && b.Median <= b.Max) {
					t.Fatalf("seed %d res %v bucket %d: min %v ≤ median %v ≤ max %v violated",
						seed, tier.Resolution, i, b.Min, b.Median, b.Max)
				}
				if b.Min < minV || b.Max > maxV {
					t.Fatalf("seed %d res %v bucket %d: [%v,%v] outside the appended value range [%v,%v]",
						seed, tier.Resolution, i, b.Min, b.Max, minV, maxV)
				}
				if b.Count <= 0 || b.Count > int(tier.Resolution/0.25) {
					t.Fatalf("seed %d res %v bucket %d: count %d outside (0, %d]",
						seed, tier.Resolution, i, b.Count, int(tier.Resolution/0.25))
				}
				if i < len(buckets)-1 && b.Count != int(tier.Resolution/0.25) {
					t.Fatalf("seed %d res %v sealed bucket %d: count %d, want %d (resolution/interval)",
						seed, tier.Resolution, i, b.Count, int(tier.Resolution/0.25))
				}
				if i > 0 && b.Start < buckets[i-1].End() {
					t.Fatalf("seed %d res %v buckets overlap: %d starts %v before %v",
						seed, tier.Resolution, i, b.Start, buckets[i-1].End())
				}
			}
		}
		// Random windows, including ones spanning raw and both tiers.
		for trial := 0; trial < 10; trial++ {
			from := rng.Float64() * float64(n) * 0.25
			to := from + rng.Float64()*float64(n)*0.25
			if trial == 0 {
				from, to = 0, -1 // the full stitched range
			}
			pts := st.Window(k, from, to)
			for i, p := range pts {
				if p.Time < from || (to >= 0 && p.Time > to) {
					t.Fatalf("seed %d window [%v,%v]: point %v out of range", seed, from, to, p.Time)
				}
				if i > 0 && p.Time <= pts[i-1].Time {
					t.Fatalf("seed %d window [%v,%v]: times not strictly ascending at %d (%v after %v)",
						seed, from, to, i, p.Time, pts[i-1].Time)
				}
			}
			if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time }) {
				t.Fatalf("seed %d window [%v,%v] not sorted", seed, from, to)
			}
		}
	}
}

// TestCascadingTierCompaction pins the cascade: buckets evicted from the
// finest tier's ring compact into the next tier (count-weighted) instead
// of being dropped, and the tiers cover disjoint, contiguous age ranges.
func TestCascadingTierCompaction(t *testing.T) {
	// Raw ring of 4; 1 s buckets (cap 4) cascading into 4 s buckets
	// (cap 16).  128 points at exact-binary 0.25 s steps, values = index.
	st := NewStore(4, Tier{Resolution: 1, Capacity: 4}, Tier{Resolution: 4, Capacity: 16})
	k := key("bw")
	for i := 0; i < 128; i++ {
		st.Append(k, Point{Time: float64(i) * 0.25, Value: float64(i)})
	}

	// The coarse tier was fed exclusively by fine-tier evictions; its
	// first bucket aggregates the four 1 s buckets of [0,4): exact count,
	// min, max and count-weighted average; the median is the median of
	// the member buckets' medians (1.5, 5.5, 9.5, 13.5).
	coarse := st.Buckets(k, 4, 0, -1)
	if len(coarse) == 0 {
		t.Fatal("no cascaded buckets in the coarse tier")
	}
	b0 := coarse[0]
	if b0.Start != 0 || b0.Count != 16 || b0.Min != 0 || b0.Max != 15 || b0.Avg != 7.5 || b0.Median != 7.5 {
		t.Errorf("cascaded bucket = %+v, want start=0 count=16 min=0 max=15 avg=7.5 median=7.5", b0)
	}

	// Disjoint coverage: every sealed coarse bucket is older than the
	// oldest retained fine bucket (before the cascade, the coarse tier
	// re-absorbed raw evictions and overlapped the fine tier's range).
	fine := st.Buckets(k, 1, 0, -1)
	if len(fine) == 0 {
		t.Fatal("no buckets in the fine tier")
	}
	sealedCoarse := coarse[:len(coarse)-1] // last may be provisional
	for i, b := range sealedCoarse {
		if b.End() > fine[0].Start {
			t.Errorf("coarse bucket %d [%v,%v) overlaps the fine tier (oldest fine start %v)",
				i, b.Start, b.End(), fine[0].Start)
		}
	}

	// Nothing was lost to tier evictions: the stitched full window still
	// reaches back to t=0.
	pts := st.Window(k, 0, -1)
	if len(pts) == 0 || pts[0].Time != 0 {
		t.Fatalf("stitched window starts at %v, want 0 (history dropped in the cascade?)",
			pts[0].Time)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("stitched window not strictly ordered at %d", i)
		}
	}
}

// TestCascadeTerminatesAtCoarsestTier pins that the coarsest tier still
// drops its evictions (there is nowhere coarser to cascade to).
func TestCascadeTerminatesAtCoarsestTier(t *testing.T) {
	st := NewStore(2, Tier{Resolution: 1, Capacity: 2})
	k := key("bw")
	for i := 0; i < 80; i++ {
		st.Append(k, Point{Time: float64(i) * 0.5, Value: float64(i)})
	}
	buckets := st.Buckets(k, 1, 0, -1)
	if len(buckets) < 2 || len(buckets) > 3 {
		t.Fatalf("buckets = %d, want 2 sealed (+1 provisional)", len(buckets))
	}
	if buckets[0].Start < 30 {
		t.Errorf("oldest bucket starts at %v, want early buckets evicted for good", buckets[0].Start)
	}
}

// TestStoreWithoutTiersKeepsLegacyWindow pins that a tierless store's
// Window is unchanged: raw points only, silently truncated history.
func TestStoreWithoutTiersKeepsLegacyWindow(t *testing.T) {
	st := NewStore(4)
	k := key("bw")
	for i := 0; i < 10; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i)})
	}
	pts := st.Window(k, 0, -1)
	if len(pts) != 4 || pts[0].Time != 6 {
		t.Fatalf("tierless window = %+v, want raw points 6..9", pts)
	}
	if st.Tiers() != nil {
		t.Errorf("Tiers() = %v, want nil", st.Tiers())
	}
}

func TestConcurrentAppendsWithTiers(t *testing.T) {
	st := NewStore(32, Tier{Resolution: 1, Capacity: 16})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			k := Key{Metric: "m", Scope: ScopeThread, ID: g}
			for i := 0; i < 400; i++ {
				st.Append(k, Point{Time: float64(i) * 0.25, Value: float64(i)})
				if i%10 == 0 {
					st.Window(k, 0, -1)
					st.Buckets(k, 1, 0, -1)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	for g := 0; g < 8; g++ {
		k := Key{Metric: "m", Scope: ScopeThread, ID: g}
		if n := len(st.Buckets(k, 1, 0, -1)); n == 0 {
			t.Errorf("series %d has no compacted buckets", g)
		}
	}
}

// TestStepCompactionKeepsLastValue pins CompactLast: a sparse 0/1
// transition series (alert history) compacts each bucket to its newest
// member — the state at the bucket end — instead of averaging a 1→0
// pair into 0.5 noise.  Min/max stay exact either way.
func TestStepCompactionKeepsLastValue(t *testing.T) {
	appendTransitions := func(st *Store, k Key) {
		// Fire (1) and resolve (0) inside bucket [0,10), then keep the
		// series moving so both transition points evict into the tier.
		for i, p := range []Point{
			{Time: 1, Value: 1}, {Time: 2, Value: 0},
			{Time: 11, Value: 1}, {Time: 12, Value: 0},
			{Time: 21, Value: 1}, {Time: 22, Value: 0},
		} {
			_ = i
			st.Append(k, p)
		}
	}
	k := Key{Metric: "alert/bw_low", Scope: ScopeNode, ID: 0}

	step := NewStore(2, Tier{Resolution: 10, Capacity: 8})
	step.SetCompaction(k, CompactLast)
	appendTransitions(step, k)
	buckets := step.Buckets(k, 10, 0, -1)
	if len(buckets) == 0 {
		t.Fatal("no buckets compacted")
	}
	for _, b := range buckets {
		if b.Avg != 0 && b.Avg != 1 {
			t.Errorf("step bucket [%v,%v) avg = %v, want a recorded 0/1 state", b.Start, b.End(), b.Avg)
		}
		if b.Median != b.Avg {
			t.Errorf("step bucket [%v,%v) median = %v, want the last value %v", b.Start, b.End(), b.Median, b.Avg)
		}
	}
	if b := buckets[0]; b.Start != 0 || b.Avg != 0 || b.Min != 0 || b.Max != 1 || b.Count != 2 {
		t.Errorf("bucket [0,10) = %+v, want last=0 with exact min 0 / max 1 / count 2", b)
	}
	for _, p := range step.Window(k, 0, -1) {
		if p.Value != 0 && p.Value != 1 {
			t.Errorf("stitched window point %+v shows a value never recorded", p)
		}
	}

	// Contrast: the default mean compaction of the same data does show
	// the 0.5 average CompactLast exists to avoid.
	mean := NewStore(2, Tier{Resolution: 10, Capacity: 8})
	appendTransitions(mean, k)
	mb := mean.Buckets(k, 10, 0, -1)
	if len(mb) == 0 || mb[0].Avg != 0.5 {
		t.Fatalf("mean buckets = %+v, want the first to average to 0.5", mb)
	}
}

// TestStepCompactionSurvivesCascade checks last-of-lasts through the
// tier cascade: buckets evicted from the finest step tier keep
// last-value semantics in the coarser tier.
func TestStepCompactionSurvivesCascade(t *testing.T) {
	k := Key{Metric: "alert/r", Scope: ScopeNode, ID: 0}
	st := NewStore(1, Tier{Resolution: 1, Capacity: 2}, Tier{Resolution: 10, Capacity: 8})
	st.SetCompaction(k, CompactLast)
	// One transition pair per 1s bucket: 1 at t+0.2, 0 at t+0.7.
	for i := 0; i < 40; i++ {
		tm := float64(i / 2)
		v := float64((i + 1) % 2)
		if v == 1 {
			st.Append(k, Point{Time: tm + 0.2, Value: 1})
		} else {
			st.Append(k, Point{Time: tm + 0.7, Value: 0})
		}
	}
	coarse := st.Buckets(k, 10, 0, -1)
	if len(coarse) == 0 {
		t.Fatal("cascade produced no coarse buckets")
	}
	for _, b := range coarse {
		if b.Avg != 0 && b.Avg != 1 {
			t.Errorf("cascaded bucket [%v,%v) avg = %v, want a recorded 0/1 state", b.Start, b.End(), b.Avg)
		}
	}
}
