// Package alert is the rule layer over the monitoring subsystem: it
// turns the store's windowed queries into operator-facing signals, the
// step the LIKWID Monitoring Stack (Röhl et al., arXiv:1708.01476) takes
// from collecting node metrics to acting on them.  User-defined rules
//
//	mem_bw_low: avg(memory_bandwidth_mbytes_s, socket, 30s) < 2000 for 60s
//
// are parsed into a small AST, evaluated on a per-rule cadence against
// monitor.Store windows by a stateful engine (pending → firing →
// resolved, deduplicated per series), and transitions fan out to
// pluggable notifiers (log, JSON lines, webhook) behind a bounded queue.
// Firing and resolved transitions are also recorded back into the store
// as "alert/<name>" series, so alert history is queryable and retained
// like any other metric.
package alert

import (
	"fmt"
	"strings"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/spec"
)

// Fn is the window function of a rule expression.
type Fn int

const (
	// FnAvg is the mean of the points in the lookback window.
	FnAvg Fn = iota
	// FnMin is the smallest point in the lookback window.
	FnMin
	// FnMax is the largest point in the lookback window.
	FnMax
	// FnRate is the per-second slope across the lookback window:
	// (last - first) / (t_last - t_first).
	FnRate
	// FnImbalance is (max - min) / |mean| of the per-series window
	// averages across every series the selector matches — the
	// load-imbalance signal of the paper's multicore view, as one number.
	FnImbalance
)

var fnNames = [...]string{"avg", "min", "max", "rate", "imbalance"}

// String returns the spec-language name of the function.
func (f Fn) String() string {
	if f < 0 || int(f) >= len(fnNames) {
		return fmt.Sprintf("fn(%d)", int(f))
	}
	return fnNames[f]
}

// parseFn resolves a function name.
func parseFn(name string) (Fn, bool) {
	for i, n := range fnNames {
		if n == name {
			return Fn(i), true
		}
	}
	return 0, false
}

// Cmp is the threshold comparison of a rule.
type Cmp int

const (
	// CmpLT fires when the expression drops below the threshold.
	CmpLT Cmp = iota
	// CmpLE fires at or below the threshold.
	CmpLE
	// CmpGT fires above the threshold.
	CmpGT
	// CmpGE fires at or above the threshold.
	CmpGE
)

var cmpNames = [...]string{"<", "<=", ">", ">="}

// String returns the comparison operator.
func (c Cmp) String() string {
	if c < 0 || int(c) >= len(cmpNames) {
		return fmt.Sprintf("cmp(%d)", int(c))
	}
	return cmpNames[c]
}

// holds reports whether value cmp threshold is true.
func (c Cmp) holds(value, threshold float64) bool {
	switch c {
	case CmpLT:
		return value < threshold
	case CmpLE:
		return value <= threshold
	case CmpGT:
		return value > threshold
	case CmpGE:
		return value >= threshold
	}
	return false
}

// AllIDs is the Rule.ID sentinel selecting every id of the scope.
const AllIDs = -1

// LabelMatcher is one {name="value"} clause of a rule selector.  Value
// may use '*' wildcards; a series matches when it carries the label and
// the value matches.  It is monitor's selector pair, so rule matchers
// evaluate through monitor.MatchLabels — one implementation of the
// label-selector semantics for the DSL and /query alike.
type LabelMatcher = monitor.Label

// Rule is one parsed alerting rule.
//
// Lookback and For are simulated seconds — the store's time axis — so a
// rule's windows and hold times line up with the data regardless of how
// fast wall time runs.  Every is wall time: it is the evaluation cadence
// of the engine, not a property of the data.
type Rule struct {
	// Name identifies the rule; it becomes the "alert/<name>" history
	// series and the dedup key of its alert instances.
	Name string
	// Fn is the window function applied to the selected series.
	Fn Fn
	// Source selects series by the measuring agent — its own
	// wildcard-able dimension matched against Key.Source, never parsed
	// out of the metric name.  Empty selects only local (sourceless)
	// series; "*" follows a whole fleet on a receiver, "node*" a slice
	// of it.  In spec syntax it precedes the metric:
	// avg(*/dp_mflops_s, node, 30s).
	Source string
	// Metric selects series by name.  '*' wildcards match any run of
	// characters.  Non-wildcard selectors also match sanitized forms
	// ("memory_bandwidth_mbytes_s" finds "Memory bandwidth [MBytes/s]").
	Metric string
	// Matchers restrict the selector to series whose label set carries
	// every named label with a matching value ('*' wildcards allowed).
	// In spec syntax they suffix the metric: avg(bw{job="lbm"}, node,
	// 30s).  Matchers are kept sorted by name, so rendered specs are
	// canonical.  Empty matches every series, labelled or not.
	Matchers []LabelMatcher
	// Scope restricts the selector to one topology domain.
	Scope monitor.Scope
	// ID restricts the selector to one entity; AllIDs matches every id,
	// evaluating the rule once per matching series.
	ID int
	// Lookback is the window length in simulated seconds.
	Lookback float64
	// Cmp compares the window function's value against Threshold.
	Cmp Cmp
	// Threshold is the comparison constant.
	Threshold float64
	// For is how long (simulated seconds) the condition must hold before
	// the alert fires; 0 fires on the first true evaluation.
	For float64
	// Every overrides the engine's evaluation cadence for this rule
	// (wall time); 0 uses the engine default.
	Every time.Duration
	// Line is the 1-based line of the rule in its spec file.
	Line int
}

// String renders the rule back in spec syntax.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s(%s, %s", r.Name, r.Fn, r.selector(), r.Scope)
	if r.ID != AllIDs {
		fmt.Fprintf(&b, ", %d", r.ID)
	}
	fmt.Fprintf(&b, ", %s) %s %g for %s", spec.FormatSeconds(r.Lookback), r.Cmp, r.Threshold, spec.FormatSeconds(r.For))
	if r.Every > 0 {
		fmt.Fprintf(&b, " every %s", r.Every)
	}
	return b.String()
}

// selector renders the rule's [SOURCE/]METRIC{matchers} selector so
// that the parser reads it back into the same (Source, Metric,
// Matchers) triple.
func (r *Rule) selector() string {
	return spec.RenderSelector(r.Source, r.Metric, r.Matchers)
}

// matches reports whether the rule's selector picks a stored series:
// the source dimension first (exact, or '*' wildcards; empty = local
// only), then the label matchers, then the metric.  Alert history
// series never match: a wildcard rule must not alert on its own output.
func (r *Rule) matches(k monitor.Key) bool {
	if strings.HasPrefix(k.Metric, "alert/") {
		return false
	}
	if !monitor.MatchSource(r.Source, k.Source) {
		return false
	}
	if !monitor.MatchLabels(r.Matchers, k.Labels) {
		return false
	}
	return monitor.MatchMetric(r.Metric, k.Metric)
}

// State is one alert instance's position in the lifecycle.
type State int

const (
	// StatePending means the condition is true but has not yet held for
	// the rule's "for" duration.
	StatePending State = iota
	// StateFiring means the condition has held long enough; the firing
	// transition has been notified and recorded.
	StateFiring
)

var stateNames = [...]string{"pending", "firing"}

// String returns the lowercase state name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// Event is one firing or resolved transition, the unit delivered to
// notifiers and exposed on the webhook wire (as JSON).
type Event struct {
	// Rule is the rule name.
	Rule string `json:"rule"`
	// State is "firing" or "resolved".
	State string `json:"state"`
	// Source, Metric, Scope, ID and Labels identify the series instance
	// that transitioned (for imbalance rules, the selector itself).
	// Source is empty for local series; Labels is omitted for
	// unlabelled ones.
	Source string            `json:"source,omitempty"`
	Metric string            `json:"metric"`
	Scope  string            `json:"scope"`
	ID     int               `json:"id"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the expression value at the transition.
	Value float64 `json:"value"`
	// Threshold echoes the rule threshold the value crossed.
	Threshold float64 `json:"threshold"`
	// Time is the simulated time of the transition.
	Time float64 `json:"time"`
	// Since is the simulated time the alert started firing (resolved
	// events only).
	Since float64 `json:"since,omitempty"`
	// Spec is the rule in spec syntax, for self-describing payloads.
	Spec string `json:"spec"`
	// Instances carries the member events of a grouped delivery (the
	// Grouper's coalescing window): N nodes tripping one rule within
	// group_wait arrive as one event with N instances.  Empty on direct
	// deliveries; members never nest further.
	Instances []Event `json:"instances,omitempty"`
}

// EventStateFiring and EventStateResolved are the Event.State values.
const (
	EventStateFiring   = "firing"
	EventStateResolved = "resolved"
)
