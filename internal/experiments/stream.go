// Package experiments contains one driver per table and figure of the
// paper's evaluation, producing the same rows/series the paper reports.
// The cmd/likwid-repro binary prints them; bench_test.go at the module root
// regenerates each one as a benchmark.
package experiments

import (
	"fmt"
	"strings"

	"likwid/internal/hwdef"
	"likwid/internal/stats"
	"likwid/internal/workloads/stream"
)

// StreamPoint is one box of a STREAM figure: the bandwidth distribution at
// one thread count.
type StreamPoint struct {
	Threads int
	Stats   stats.Summary
}

// StreamSpec describes one of the paper's STREAM case-study figures.
type StreamSpec struct {
	ID         string // "Fig. 4"
	Caption    string
	ArchName   string
	Compiler   stream.Compiler
	Mode       stream.PinMode
	MaxThreads int
	Samples    int // samples per thread count (paper: 100)
	SeedBase   int64
}

// The seven STREAM figures of §IV-A.
var (
	Fig4 = StreamSpec{
		ID: "Fig. 4", Caption: "STREAM triad, icc, Westmere 2-socket, not pinned",
		ArchName: "westmereEP", Compiler: stream.ICC, Mode: stream.Unpinned,
		MaxThreads: 24, Samples: 100, SeedBase: 40,
	}
	Fig5 = StreamSpec{
		ID: "Fig. 5", Caption: "STREAM triad, icc, pinned round-robin across sockets (likwid-pin)",
		ArchName: "westmereEP", Compiler: stream.ICC, Mode: stream.PinScatter,
		MaxThreads: 24, Samples: 100, SeedBase: 50,
	}
	Fig6 = StreamSpec{
		ID: "Fig. 6", Caption: "STREAM triad, icc, Intel OpenMP affinity KMP_AFFINITY=scatter",
		ArchName: "westmereEP", Compiler: stream.ICC, Mode: stream.RuntimeScatter,
		MaxThreads: 24, Samples: 100, SeedBase: 60,
	}
	Fig7 = StreamSpec{
		ID: "Fig. 7", Caption: "STREAM triad, gcc, not pinned",
		ArchName: "westmereEP", Compiler: stream.GCC, Mode: stream.Unpinned,
		MaxThreads: 24, Samples: 100, SeedBase: 70,
	}
	Fig8 = StreamSpec{
		ID: "Fig. 8", Caption: "STREAM triad, gcc, pinned with likwid-pin",
		ArchName: "westmereEP", Compiler: stream.GCC, Mode: stream.PinScatter,
		MaxThreads: 24, Samples: 100, SeedBase: 80,
	}
	Fig9 = StreamSpec{
		ID: "Fig. 9", Caption: "STREAM triad, icc, AMD Istanbul 2-socket, not pinned",
		ArchName: "istanbul", Compiler: stream.ICC, Mode: stream.Unpinned,
		MaxThreads: 12, Samples: 100, SeedBase: 90,
	}
	Fig10 = StreamSpec{
		ID: "Fig. 10", Caption: "STREAM triad, icc, AMD Istanbul, pinned with likwid-pin",
		ArchName: "istanbul", Compiler: stream.ICC, Mode: stream.PinScatter,
		MaxThreads: 12, Samples: 100, SeedBase: 100,
	}
)

// StreamFigures lists the specs in paper order.
func StreamFigures() []StreamSpec {
	return []StreamSpec{Fig4, Fig5, Fig6, Fig7, Fig8, Fig9, Fig10}
}

// Run produces the figure's series: one box-plot summary per thread count.
func (s StreamSpec) Run() ([]StreamPoint, error) {
	arch, err := hwdef.Lookup(s.ArchName)
	if err != nil {
		return nil, err
	}
	samples := s.Samples
	if samples < 1 {
		samples = 100
	}
	points := make([]StreamPoint, 0, s.MaxThreads)
	for threads := 1; threads <= s.MaxThreads; threads++ {
		bw, err := stream.RunSamples(stream.Config{
			Arch:     arch,
			Compiler: s.Compiler,
			Threads:  threads,
			Mode:     s.Mode,
			Seed:     s.SeedBase + int64(threads),
		}, samples)
		if err != nil {
			return nil, fmt.Errorf("%s, %d threads: %w", s.ID, threads, err)
		}
		points = append(points, StreamPoint{Threads: threads, Stats: stats.Summarize(bw)})
	}
	return points, nil
}

// Render prints the series as the rows behind the paper's box plot.
func (s StreamSpec) Render(points []StreamPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", s.ID, s.Caption)
	fmt.Fprintf(&b, "%8s %10s %10s %10s %10s %10s   [MB/s, %d samples]\n",
		"threads", "min", "q1", "median", "q3", "max", points[0].Stats.N)
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %10.0f %10.0f %10.0f %10.0f %10.0f\n",
			p.Threads, p.Stats.Min, p.Stats.Q1, p.Stats.Median, p.Stats.Q3, p.Stats.Max)
	}
	return b.String()
}
