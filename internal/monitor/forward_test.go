package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingJournal counts Record calls — the double-journal detector.
type countingJournal struct{ records atomic.Uint64 }

func (j *countingJournal) Record(Key, Point) { j.records.Add(1) }

// TestForwardHookSingleJournal pins the federation-hop persistence
// invariant: a receiver with a forward hook journals each accepted
// sample exactly once (at ingest), and the hook sees the same samples —
// already source-resolved — without appending anything a second time.
func TestForwardHookSingleJournal(t *testing.T) {
	store := NewStore(64)
	journal := &countingJournal{}
	store.SetJournal(journal)
	h, err := NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var mu sync.Mutex
	var forwarded []Sample
	h.SetForward(func(b Batch) {
		mu.Lock()
		forwarded = append(forwarded, b.Samples...)
		mu.Unlock()
	})

	push, err := NewPushSink(PushOptions{
		URL:          "http://" + h.Addr() + "/ingest",
		FlushSamples: 1,
		RetryBase:    time.Millisecond,
		Source:       "node7",
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		tm := float64(i)
		if err := push.Write(Batch{Collector: "perfgroup", Time: tm, Samples: []Sample{
			{Metric: "bw", Scope: ScopeNode, ID: 0, Time: tm, Value: tm},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := push.Close(); err != nil {
		t.Fatal(err)
	}

	// The hook runs inside the ingest handler, before the POST is acked,
	// so by now every sample has been both journaled and forwarded.
	if got := journal.records.Load(); got != n {
		t.Errorf("journal recorded %d appends, want exactly %d (forwarding must not double-journal)", got, n)
	}
	mu.Lock()
	if len(forwarded) != n {
		t.Fatalf("forward hook saw %d samples, want %d", len(forwarded), n)
	}
	for _, sm := range forwarded {
		if sm.Source != "node7" {
			t.Fatalf("forwarded sample source = %q, want the resolved agent identity", sm.Source)
		}
	}
	mu.Unlock()

	// SetForward(nil) disarms the hook.
	h.SetForward(nil)
	if err := pushOne(t, h.Addr()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(forwarded) != n {
		t.Errorf("disarmed hook still received samples (%d > %d)", len(forwarded), n)
	}
}

// pushOne ships a single sample to a receiver.
func pushOne(t *testing.T, addr string) error {
	t.Helper()
	p, err := NewPushSink(PushOptions{
		URL: "http://" + addr + "/ingest", FlushSamples: 1, RetryBase: time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := p.Write(Batch{Collector: "x", Time: 99, Samples: []Sample{
		{Metric: "bw", Scope: ScopeNode, Time: 99, Value: 1},
	}}); err != nil {
		return err
	}
	return p.Close()
}

// TestDedupePoints pins the HA-pair query semantics: same-timestamp
// runs collapse to their last point (latest write wins, matching the
// /metrics snapshot), distinct timestamps survive untouched.
func TestDedupePoints(t *testing.T) {
	cases := []struct {
		name string
		in   []Point
		want []Point
	}{
		{name: "empty", in: nil, want: nil},
		{name: "no dupes", in: []Point{{1, 10}, {2, 20}}, want: []Point{{1, 10}, {2, 20}}},
		{
			name: "mirrored pair",
			in:   []Point{{1, 10}, {1, 10}, {2, 20}, {2, 20}},
			want: []Point{{1, 10}, {2, 20}},
		},
		{
			name: "last of a run wins",
			in:   []Point{{1, 10}, {1, 11}, {1, 12}, {3, 30}},
			want: []Point{{1, 12}, {3, 30}},
		},
		{name: "all one timestamp", in: []Point{{5, 1}, {5, 2}, {5, 3}}, want: []Point{{5, 3}}},
	}
	for _, c := range cases {
		got := dedupePoints(append([]Point(nil), c.in...))
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: point %d = %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

// TestPushSinkTakePending pins the failover building block: pending
// wire records decode back into identical samples (resolved source,
// scope, labels intact) and leave the buffer empty.
func TestPushSinkTakePending(t *testing.T) {
	p, err := NewPushSink(PushOptions{
		URL:          "http://127.0.0.1:1/ingest", // never contacted
		FlushSamples: 1000,
		Source:       "nodeX",
	})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := MakeLabels(map[string]string{"job": "lbm"})
	if err != nil {
		t.Fatal(err)
	}
	p.Buffer(Batch{Collector: "perfgroup", Time: 1, Samples: []Sample{
		{Metric: "bw", Scope: ScopeSocket, ID: 1, Labels: ls, Time: 1, Value: 42},
		{Source: "other", Metric: "bw", Scope: ScopeNode, ID: 0, Time: 2, Value: 43},
	}})
	got := p.TakePending()
	if len(got) != 2 || p.Pending() != 0 {
		t.Fatalf("TakePending returned %d samples, %d left; want 2 and 0", len(got), p.Pending())
	}
	if got[0].Source != "nodeX" || got[0].Scope != ScopeSocket || got[0].ID != 1 ||
		got[0].Labels.String() != "job=lbm" || got[0].Value != 42 {
		t.Errorf("decoded sample 0 = %+v, want the original with resolved source", got[0])
	}
	if got[1].Source != "other" {
		t.Errorf("sample with its own source came back as %q, want other", got[1].Source)
	}
	if p.TakePending() != nil {
		t.Error("TakePending on an empty buffer returned samples")
	}
}
