// Package telemetry is the suite's self-metrics subsystem: the monitor
// measures nodes, telemetry measures the monitor.  It provides atomic
// counters, gauges and fixed-bucket histograms behind a registry whose
// snapshot is deterministic, so the agent's own internals (queue drops,
// ingest rejects, flush latencies) become observable series instead of
// write-only fields — the "measure the measurement" discipline of the
// HPM best-practices literature, applied to the monitoring stack itself.
//
// Design constraints, in order:
//
//  1. Near-zero hot-path cost.  An instrumented code path holds a
//     *Counter / *Gauge / *Histogram pointer resolved once at wiring
//     time; every update is one or two uncontended atomic operations
//     and never allocates.  Registry lookups (mutex + map) happen only
//     at registration.
//  2. Pull, don't push.  Components that already keep cheap internal
//     accounting (the store's per-series counters, the dispatcher's
//     drop counter) register read-on-snapshot funcs instead of paying a
//     second write per event.
//  3. Deterministic snapshots.  Snapshot output is sorted by metric
//     identity and timestamped through an injectable clock, so tests
//     pin it exactly and /status diffs cleanly.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types in snapshots.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

// String returns the lowercase kind name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Counter is a monotonically increasing counter.  The zero value is
// usable; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable value.  The zero value is usable; all methods are
// safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta (a CAS loop, so concurrent Adds never
// lose updates).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: counts per upper bound plus
// an overflow bucket, a total count, and a sum.  Observe is a handful of
// atomic adds with no allocation; bounds are fixed at construction so
// the hot path never rebalances.  All methods are concurrency-safe.
type Histogram struct {
	bounds []float64 // ascending upper bounds (inclusive)
	counts []atomic.Uint64
	over   atomic.Uint64 // observations above the last bound
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram validates and copies the bounds.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("telemetry: histogram bounds must ascend")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
}

// Observe records one value.  Non-finite values are dropped (a NaN
// latency is a bug upstream, and poisoning the sum would hide every
// later observation), values beyond the last bound land in the overflow
// bucket — Observe never panics.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	// Linear scan: bucket slices are short (≤ ~16) and the early bounds
	// catch most observations, so this beats a branchy binary search.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Common bucket layouts.  Exponential duration ladders cover the stack's
// scales: a store append is tens of nanoseconds, a gzip POST tens of
// milliseconds, a retry ladder tens of seconds.
var (
	// DurationBuckets spans 1 µs .. 10 s for operation latencies.
	DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
	// SizeBuckets spans 1 .. 32768 for sample/batch counts.
	SizeBuckets = []float64{1, 8, 64, 512, 4096, 32768}
	// ByteBuckets spans 256 B .. 8 MiB for payload sizes.
	ByteBuckets = []float64{256, 4096, 65536, 1 << 20, 8 << 20}
	// SkewBuckets is symmetric around zero for clock-skew seconds: a
	// pushed batch's sent_at can be behind or ahead of the receiver.
	SkewBuckets = []float64{-60, -10, -1, -0.1, 0, 0.1, 1, 10, 60}
)

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	labels []Label // name-sorted pairs
	id     string  // name + canonical label encoding
	kind   Kind

	c  *Counter
	g  *Gauge
	fn func() float64 // read-on-snapshot value (CounterFunc/GaugeFunc)
	h  *Histogram
}

// Label is one name/value pair of a metric's identity.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Registry holds named, labelled instruments.  Registration (mutex +
// map) is the cold path: callers resolve their instruments once at
// wiring time and hold the pointers.  Re-registering the same identity
// returns the same instrument; re-registering it as a different kind
// panics — that is a programming error, like registering two collectors
// under one name.
type Registry struct {
	mu      sync.Mutex
	now     func() time.Time
	start   time.Time
	metrics map[string]*metric
}

// New creates a registry on the wall clock.
func New() *Registry { return NewWithClock(time.Now) }

// NewWithClock creates a registry whose uptime and snapshot timestamps
// come from now — the deterministic-test entry point.
func NewWithClock(now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	return &Registry{now: now, start: now(), metrics: map[string]*metric{}}
}

// metricID renders the canonical identity: name{k=v,k=v} with sorted
// label names.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// parsePairs turns variadic alternating key/value strings into sorted
// label pairs.
func parsePairs(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("telemetry: labels must be alternating name, value pairs")
	}
	if len(kv) == 0 {
		return nil
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if kv[i] == "" {
			panic("telemetry: empty label name")
		}
		labels = append(labels, Label{Name: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	for i := 1; i < len(labels); i++ {
		if labels[i].Name == labels[i-1].Name {
			panic("telemetry: duplicate label name " + labels[i].Name)
		}
	}
	return labels
}

// register resolves-or-creates one metric under the lock.
func (r *Registry) register(name string, kind Kind, kv []string, build func(*metric)) *metric {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	labels := parsePairs(kv)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as a %s, not a %s", id, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: labels, id: id, kind: kind}
	build(m)
	r.metrics[id] = m
	return m
}

// Counter resolves (creating if needed) a counter.  kv is alternating
// label name/value pairs, e.g. Counter("likwid_sink_dropped_total",
// "sink", "push").
func (r *Registry) Counter(name string, kv ...string) *Counter {
	m := r.register(name, KindCounter, kv, func(m *metric) { m.c = &Counter{} })
	if m.c == nil {
		panic("telemetry: " + m.id + " is a counter func, not a writable counter")
	}
	return m.c
}

// CounterFunc registers a counter whose value is read at snapshot time —
// for components that already keep their own cheap accounting.
// Registering an identity twice keeps the first func.
func (r *Registry) CounterFunc(name string, f func() float64, kv ...string) {
	r.register(name, KindCounter, kv, func(m *metric) { m.fn = f })
}

// Gauge resolves (creating if needed) a gauge.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	m := r.register(name, KindGauge, kv, func(m *metric) { m.g = &Gauge{} })
	if m.g == nil {
		panic("telemetry: " + m.id + " is a gauge func, not a writable gauge")
	}
	return m.g
}

// GaugeFunc registers a gauge whose value is read at snapshot time.
// Registering an identity twice keeps the first func.
func (r *Registry) GaugeFunc(name string, f func() float64, kv ...string) {
	r.register(name, KindGauge, kv, func(m *metric) { m.fn = f })
}

// Histogram resolves (creating if needed) a fixed-bucket histogram.
// Bounds must ascend; re-resolving an identity ignores the new bounds
// and returns the existing instrument.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	m := r.register(name, KindHistogram, kv, func(m *metric) { m.h = newHistogram(bounds) })
	return m.h
}

// BucketCount is one histogram bucket in snapshot shape: the count of
// observations at or below UpperBound (non-cumulative per bucket).
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MetricValue is one instrument's state in snapshot shape.  Counter and
// gauge values ride in Value; histograms carry Count/Sum/Buckets with
// observations beyond the last bound in Overflow (kept separate so the
// JSON never needs a +Inf bound).
type MetricValue struct {
	Name     string            `json:"name"`
	Labels   map[string]string `json:"labels,omitempty"`
	Kind     string            `json:"kind"`
	Value    float64           `json:"value"`
	Count    uint64            `json:"count,omitempty"`
	Sum      float64           `json:"sum,omitempty"`
	Buckets  []BucketCount     `json:"buckets,omitempty"`
	Overflow uint64            `json:"overflow,omitempty"`
}

// Snapshot is one deterministic cut of the registry.
type Snapshot struct {
	// UptimeSeconds is the registry's age on its own clock.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Metrics is sorted by name, then canonical label identity.
	Metrics []MetricValue `json:"metrics"`
}

// Uptime returns seconds since the registry was created, on its clock —
// the time axis self-metric series are published on.
func (r *Registry) Uptime() float64 {
	r.mu.Lock()
	now := r.now()
	r.mu.Unlock()
	return now.Sub(r.start).Seconds()
}

// Snapshot captures every instrument, sorted by identity.  Funcs run
// outside the registry lock (they may take component locks of their
// own); atomic instruments are read without coordination, so a snapshot
// is a consistent ordering, not a consistent instant — exactly the
// guarantee scrape-based monitoring has always had.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	uptime := r.now().Sub(r.start).Seconds()
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].id < ms[j].id
	})
	out := Snapshot{UptimeSeconds: uptime, Metrics: make([]MetricValue, 0, len(ms))}
	for _, m := range ms {
		mv := MetricValue{Name: m.name, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			mv.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				mv.Labels[l.Name] = l.Value
			}
		}
		switch {
		case m.fn != nil:
			mv.Value = m.fn()
		case m.c != nil:
			mv.Value = float64(m.c.Value())
		case m.g != nil:
			mv.Value = m.g.Value()
		case m.h != nil:
			mv.Count = m.h.count.Load()
			mv.Sum = m.h.Sum()
			mv.Buckets = make([]BucketCount, len(m.h.bounds))
			for i, b := range m.h.bounds {
				mv.Buckets[i] = BucketCount{UpperBound: b, Count: m.h.counts[i].Load()}
			}
			mv.Overflow = m.h.over.Load()
		}
		out.Metrics = append(out.Metrics, mv)
	}
	return out
}
