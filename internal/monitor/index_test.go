package monitor

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// bruteSelect is the differential-test ground truth: the pre-index read
// path, reimplemented from the matching primitives (not from
// Selector.Match, which the index post-filters with — a shared bug
// would be invisible).  It scans every stored key and sorts with the
// original Keys() comparator.
func bruteSelect(st *Store, sel Selector) []Key {
	var out []Key
	st.ForEachKey(func(k Key) {
		if bruteMatch(sel, k) {
			out = append(out, k)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Labels.String() < out[j].Labels.String()
	})
	return out
}

func bruteMatch(sel Selector, k Key) bool {
	if !sel.AnyScope && k.Scope != sel.Scope {
		return false
	}
	if !sel.AnyID && k.ID != sel.ID {
		return false
	}
	if !sel.AnySource && !MatchSource(sel.Source, k.Source) {
		return false
	}
	if !MatchLabels(sel.Labels, k.Labels) {
		return false
	}
	if sel.QueryForm {
		// The /query dialect, verbatim from the pre-index queryKeys.
		want := strings.TrimPrefix(sel.Metric, "likwid_")
		if strings.Contains(sel.Metric, "*") {
			return WildcardMatch(want, k.Metric) || WildcardMatch(want, SanitizeMetric(k.Metric))
		}
		return k.Metric == sel.Metric || SanitizeMetric(k.Metric) == want
	}
	return MatchMetric(sel.Metric, k.Metric)
}

func keysEqual(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustLabelMap(t testing.TB, m map[string]string) Labels {
	t.Helper()
	l, err := MakeLabels(m)
	if err != nil {
		t.Fatalf("MakeLabels(%v): %v", m, err)
	}
	return l
}

// selectorPool builds the selector corpus the differential test sweeps:
// every dialect (DSL and QueryForm), exact and wildcard metrics,
// sanitized forms, sources, label matchers, scope and id variants.
func selectorPool(t testing.TB) []Selector {
	var sels []Selector
	sources := []string{"", "*", "node*", "nodeA", "self", "zzz"}
	metrics := []string{
		"bw", "*", "flops*", "*flops*", "DP MFlops/s", "dp_mflops_s",
		"likwid_bw", "memory_bandwidth_mbytes_s", "alert/hot", "nope",
	}
	labelSets := [][]Label{
		nil,
		{{Name: "job", Value: "a"}},
		{{Name: "job", Value: "*"}},
		{{Name: "cluster", Value: "em*"}},
		{{Name: "job", Value: "a"}, {Name: "cluster", Value: "emmy"}},
		{{Name: "job", Value: "zz"}},
	}
	for _, src := range sources {
		for _, m := range metrics {
			for _, ls := range labelSets {
				for _, qf := range []bool{false, true} {
					sels = append(sels, Selector{
						Source: src, Metric: m, QueryForm: qf, Labels: ls,
						Scope: ScopeNode, ID: 0,
					})
				}
			}
		}
	}
	// Scope/ID/AnySource variants on a few bases.
	sels = append(sels,
		Selector{Metric: "*", AnySource: true, Scope: ScopeSocket, ID: 1},
		Selector{Metric: "bw", AnySource: true, AnyScope: true, AnyID: true},
		Selector{Metric: "*", Source: "*", AnyScope: true, AnyID: true, QueryForm: true},
		Selector{Metric: "flops_dp", AnySource: true, Scope: ScopeCore, AnyID: true},
		Selector{Metric: "alert/*", Source: "*", Scope: ScopeNode, AnyID: true},
	)
	return sels
}

// keyPool is the universe of series keys the randomized stores draw
// from: every dimension the index shards on, including metrics whose
// raw and sanitized forms differ, alert histories, and a raw name that
// collides with the likwid_ exposition prefix.
func keyPool(t testing.TB) []Key {
	sources := []string{"", "nodeA", "nodeB", "node1", "self"}
	metrics := []string{
		"bw", "flops_dp", "DP MFlops/s", "Memory bandwidth [MBytes/s]",
		"alert/hot", "likwid_bw", "cluster_flops",
	}
	labels := []Labels{
		{},
		mustLabelMap(t, map[string]string{"job": "a"}),
		mustLabelMap(t, map[string]string{"job": "b"}),
		mustLabelMap(t, map[string]string{"cluster": "emmy"}),
		mustLabelMap(t, map[string]string{"job": "a", "cluster": "emmy"}),
	}
	type sid struct {
		scope Scope
		id    int
	}
	sids := []sid{{ScopeNode, 0}, {ScopeSocket, 0}, {ScopeSocket, 1}, {ScopeCore, 2}}
	var pool []Key
	for _, src := range sources {
		for _, m := range metrics {
			for _, l := range labels {
				for _, si := range sids {
					pool = append(pool, Key{Source: src, Metric: m, Scope: si.scope, ID: si.id, Labels: l})
				}
			}
		}
	}
	return pool
}

// TestSelectMatchesBruteForce is the differential property test: for
// randomized stores and the full selector corpus, Select must return
// exactly what the brute-force primitive scan returns — same keys, same
// order.
func TestSelectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := keyPool(t)
	sels := selectorPool(t)
	for trial := 0; trial < 40; trial++ {
		st := NewStore(8)
		// A random subset, inserted in random order: singles exercise the
		// incremental insert, a leading batch the bulk path.
		perm := rng.Perm(len(pool))
		n := 1 + rng.Intn(len(pool)-1)
		if trial%2 == 0 {
			var b Batch
			for _, pi := range perm[:n/2] {
				k := pool[pi]
				b.Samples = append(b.Samples, Sample{
					Source: k.Source, Metric: k.Metric, Scope: k.Scope,
					ID: k.ID, Labels: k.Labels, Time: 1, Value: 1,
				})
			}
			st.AppendBatch(b)
			perm = perm[n/2:]
			n -= n / 2
		}
		for _, pi := range perm[:n] {
			st.Append(pool[pi], Point{Time: 1, Value: 1})
		}
		for _, sel := range sels {
			got := st.Select(sel)
			want := bruteSelect(st, sel)
			if !keysEqual(got, want) {
				t.Fatalf("trial %d: Select(%+v)\n got  %v\n want %v", trial, sel, got, want)
			}
		}
	}
}

// TestKeysCanonicalOrder pins Keys() to the documented order now that
// it is read off the index instead of sorted per call.
func TestKeysCanonicalOrder(t *testing.T) {
	st := NewStore(4)
	rng := rand.New(rand.NewSource(2))
	pool := keyPool(t)
	for _, pi := range rng.Perm(len(pool))[:60] {
		st.Append(pool[pi], Point{Time: 1, Value: 1})
	}
	keys := st.Keys()
	for i := 1; i < len(keys); i++ {
		if !keyLess(keys[i-1], keys[i]) {
			t.Fatalf("Keys() out of order at %d: %v !< %v", i, keys[i-1], keys[i])
		}
	}
	// Order survives the bulk-insert path too.
	var b Batch
	for _, pi := range rng.Perm(len(pool))[:80] {
		k := pool[pi]
		b.Samples = append(b.Samples, Sample{
			Source: k.Source, Metric: k.Metric, Scope: k.Scope,
			ID: k.ID, Labels: k.Labels, Time: 2, Value: 2,
		})
	}
	st.AppendBatch(b)
	keys = st.Keys()
	for i := 1; i < len(keys); i++ {
		if !keyLess(keys[i-1], keys[i]) {
			t.Fatalf("Keys() out of order after batch at %d: %v !< %v", i, keys[i-1], keys[i])
		}
	}
}

// TestIndexGeneration pins the cache-invalidation contract: the
// generation moves exactly when the key set grows, via either create
// path, and holds still across appends to existing series.
func TestIndexGeneration(t *testing.T) {
	st := NewStore(4)
	if g := st.IndexGen(); g != 0 {
		t.Fatalf("fresh store generation = %d, want 0", g)
	}
	k := Key{Metric: "bw", Scope: ScopeNode}
	st.Append(k, Point{Time: 1, Value: 1})
	g1 := st.IndexGen()
	if g1 == 0 {
		t.Fatal("generation did not move on series creation")
	}
	st.Append(k, Point{Time: 2, Value: 2})
	if g := st.IndexGen(); g != g1 {
		t.Fatalf("generation moved on plain append: %d -> %d", g1, g)
	}
	st.AppendBatch(Batch{Samples: []Sample{
		{Metric: "bw2", Scope: ScopeNode, Time: 1, Value: 1},
		{Metric: "bw3", Scope: ScopeNode, Time: 1, Value: 1},
		{Metric: "bw", Scope: ScopeNode, Time: 3, Value: 3}, // existing
	}})
	if g := st.IndexGen(); g != g1+2 {
		t.Fatalf("generation after batch = %d, want %d", g, g1+2)
	}
}

// TestRestoreStateRebuildsIndex pins the WAL/snapshot replay contract:
// a restored store must serve Select over the replayed keys and have a
// moved generation.
func TestRestoreStateRebuildsIndex(t *testing.T) {
	src := NewStore(8)
	for i := 0; i < 5; i++ {
		src.Append(Key{Source: "nodeA", Metric: fmt.Sprintf("m%d", i), Scope: ScopeNode},
			Point{Time: float64(i), Value: 1})
	}
	dst := NewStore(8)
	dst.RestoreState(src.DumpState())
	if g := dst.IndexGen(); g == 0 {
		t.Fatal("restored store generation still 0")
	}
	got := dst.Select(Selector{Source: "nodeA", Metric: "m3", Scope: ScopeNode})
	if len(got) != 1 || got[0].Metric != "m3" {
		t.Fatalf("Select on restored store = %v", got)
	}
	if got := dst.Select(Selector{Source: "*", Metric: "m*", Scope: ScopeNode}); len(got) != 5 {
		t.Fatalf("wildcard Select on restored store matched %d series, want 5", len(got))
	}
}

// populateLargeStore bulk-loads n series (n/100 metrics × 25 sources ×
// 4 ids) with one point each.
func populateLargeStore(tb testing.TB, n int) *Store {
	tb.Helper()
	st := NewStore(8)
	metrics := n / 100
	if metrics < 1 {
		metrics = 1
	}
	var b Batch
	for m := 0; m < metrics; m++ {
		for s := 0; s < 25; s++ {
			for id := 0; id < 4; id++ {
				b.Samples = append(b.Samples, Sample{
					Source: fmt.Sprintf("node%02d", s),
					Metric: fmt.Sprintf("metric_%03d", m),
					Scope:  ScopeCore, ID: id,
					Time: 1, Value: 1,
				})
			}
		}
	}
	st.AppendBatch(b)
	return st
}

// TestSelectIndexedSpeedup is the perf guard: at 10k series, resolving
// an exact selector through the index must beat the brute-force scan by
// at least 10× (in practice it is orders of magnitude).  Medians of
// repeated runs keep CI noise out of the ratio.
func TestSelectIndexedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in -short")
	}
	st := populateLargeStore(t, 10000)
	sel := Selector{Source: "node07", Metric: "metric_042", Scope: ScopeCore, ID: 2}
	if got := st.Select(sel); len(got) != 1 {
		t.Fatalf("guard selector matched %d series, want 1", len(got))
	}

	const rounds, iters = 5, 50
	median := func(f func()) time.Duration {
		times := make([]time.Duration, 0, rounds)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			times = append(times, time.Since(start))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[rounds/2]
	}
	indexed := median(func() { st.Select(sel) })
	brute := median(func() { bruteSelect(st, sel) })
	ratio := float64(brute) / float64(indexed)
	t.Logf("10k series: brute %v, indexed %v (%.0f×)", brute, indexed, ratio)
	if ratio < 10 {
		t.Fatalf("indexed Select only %.1f× faster than brute force, want >= 10×", ratio)
	}
}
