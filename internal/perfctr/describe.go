package perfctr

import (
	"fmt"
	"strings"

	"likwid/internal/hwdef"
)

// Describe renders the event-set → hardware-event → counter mapping of this
// collector, the relationship Fig. 2 of the paper illustrates.  Each
// multiplex set prints as one block.
func (c *Collector) Describe() string {
	var b strings.Builder
	if len(c.fixed) > 0 {
		fmt.Fprintln(&b, "fixed counters (always counted):")
		for _, e := range c.fixed {
			fmt.Fprintf(&b, "  FIXC%d <- %s\n", e.Slot, e.Name)
		}
	}
	for i, set := range c.sets {
		if len(c.sets) > 1 {
			fmt.Fprintf(&b, "event set %d (multiplexed round-robin):\n", i)
		} else {
			fmt.Fprintln(&b, "event set:")
		}
		for _, e := range set.pmc {
			fmt.Fprintf(&b, "  PMC%d  <- %s (event %#04x, umask %#02x)\n",
				e.Slot, e.Name, e.Ev.Code, e.Ev.Umask)
		}
		for _, e := range set.uncore {
			fmt.Fprintf(&b, "  UPMC%d <- %s (event %#04x, umask %#02x, socket lock)\n",
				e.Slot, e.Name, e.Ev.Code, e.Ev.Umask)
		}
		if len(set.pmc) == 0 && len(set.uncore) == 0 {
			fmt.Fprintln(&b, "  (fixed counters only)")
		}
	}
	leaders := c.socketLeaders()
	if len(leaders) > 0 && c.M.Arch.NumUncore > 0 {
		strs := make([]string, len(leaders))
		for i, l := range leaders {
			strs[i] = fmt.Sprint(l)
		}
		fmt.Fprintf(&b, "socket locks held by cores: %s\n", strings.Join(strs, ", "))
	}
	return b.String()
}

// HasUncoreEvents reports whether any scheduled event needs the per-socket
// counters.
func (c *Collector) HasUncoreEvents() bool {
	for _, set := range c.sets {
		if len(set.uncore) > 0 {
			return true
		}
	}
	return false
}

// EventDomain returns the counter domain of a measured event name.
func (c *Collector) EventDomain(name string) (hwdef.CounterDomain, bool) {
	ev, ok := c.M.Arch.Events[name]
	if !ok {
		return 0, false
	}
	return ev.Domain, true
}
