package topology

import (
	"fmt"
	"strings"

	"likwid/internal/hwdef"
)

// NUMA support — the feature the paper lists as the important missing piece
// of likwid-topology ("An important feature missing in likwid-topology is
// to include NUMA information in the output", §V).
//
// NUMA locality is operating-system information (ACPI SRAT/SLIT via sysfs
// on Linux), not CPUID output, so it is attached to a decoded topology from
// the machine side rather than decoded from registers.

// NUMADomain is one ccNUMA locality domain.
type NUMADomain struct {
	ID         int
	Processors []int // OS processor IDs, APIC order (SMT siblings adjacent)
	TotalMemMB int
	FreeMemMB  int
	// Distances to every domain in ID order (ACPI SLIT row: 10 = local).
	Distances []int
}

// NUMAFromArch synthesizes the OS view of the NUMA layout for an
// architecture: one domain per socket (the layout of every ccNUMA system
// the paper evaluates), classic SLIT distances 10/21, and memPerDomainMB of
// memory per domain (a default of 12 GiB when zero).
func NUMAFromArch(a *hwdef.Arch, info *Info, memPerDomainMB int) []NUMADomain {
	if memPerDomainMB <= 0 {
		memPerDomainMB = 12288
	}
	domains := make([]NUMADomain, 0, a.Sockets)
	for s := 0; s < len(info.SocketGroups); s++ {
		distances := make([]int, len(info.SocketGroups))
		for d := range distances {
			if d == s {
				distances[d] = 10
			} else {
				distances[d] = 21
			}
		}
		domains = append(domains, NUMADomain{
			ID:         s,
			Processors: append([]int(nil), info.SocketGroups[s]...),
			TotalMemMB: memPerDomainMB,
			FreeMemMB:  memPerDomainMB,
			Distances:  distances,
		})
	}
	return domains
}

// AttachNUMA adds the OS-provided NUMA layout to a decoded topology so the
// renderer includes the "NUMA Topology" section.
func (info *Info) AttachNUMA(domains []NUMADomain) { info.NUMA = domains }

// RenderNUMA prints the NUMA section in the style of the tool's other
// sections.
func (info *Info) RenderNUMA() string {
	if len(info.NUMA) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintln(&b, starRule)
	fmt.Fprintln(&b, "NUMA Topology")
	fmt.Fprintln(&b, starRule)
	fmt.Fprintf(&b, "NUMA domains: %d\n", len(info.NUMA))
	fmt.Fprintln(&b, thinRule)
	for _, d := range info.NUMA {
		fmt.Fprintf(&b, "Domain %d:\n", d.ID)
		fmt.Fprintf(&b, "Processors: %s\n", groupString(d.Processors))
		fmt.Fprintf(&b, "Memory: %d MB free of total %d MB\n", d.FreeMemMB, d.TotalMemMB)
		dist := make([]string, len(d.Distances))
		for i, v := range d.Distances {
			dist[i] = fmt.Sprint(v)
		}
		fmt.Fprintf(&b, "Distances: %s\n", strings.Join(dist, " "))
		fmt.Fprintln(&b, thinRule)
	}
	return b.String()
}
