package topology

import (
	"strings"
	"testing"

	"likwid/internal/cpuid"
	"likwid/internal/hwdef"
)

func TestNUMAFromArch(t *testing.T) {
	info := probe(t, "westmereEP")
	domains := NUMAFromArch(hwdef.WestmereEP, info, 24576)
	if len(domains) != 2 {
		t.Fatalf("domains = %d, want 2", len(domains))
	}
	d0 := domains[0]
	if len(d0.Processors) != 12 {
		t.Errorf("domain 0 has %d processors, want 12", len(d0.Processors))
	}
	if d0.Processors[0] != 0 || d0.Processors[1] != 12 {
		t.Errorf("domain 0 processors start %v, want APIC order (0 12 ...)", d0.Processors[:2])
	}
	if d0.TotalMemMB != 24576 {
		t.Errorf("mem = %d, want 24576", d0.TotalMemMB)
	}
	if d0.Distances[0] != 10 || d0.Distances[1] != 21 {
		t.Errorf("distances = %v, want [10 21]", d0.Distances)
	}
	if domains[1].Distances[0] != 21 || domains[1].Distances[1] != 10 {
		t.Errorf("domain 1 distances = %v, want [21 10]", domains[1].Distances)
	}
}

func TestRenderNUMASection(t *testing.T) {
	info := probe(t, "westmereEP")
	info.AttachNUMA(NUMAFromArch(hwdef.WestmereEP, info, 0))
	out := info.Render(RenderOptions{NUMA: true})
	for _, want := range []string{
		"NUMA Topology",
		"NUMA domains: 2",
		"Domain 0:",
		"Processors: ( 0 12 1 13 2 14 3 15 4 16 5 17 )",
		"Memory: 12288 MB free of total 12288 MB",
		"Distances: 10 21",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("NUMA section missing %q", want)
		}
	}
	// Without the option the section stays out.
	plain := info.Render(RenderOptions{})
	if strings.Contains(plain, "NUMA Topology") {
		t.Error("NUMA section rendered without the option")
	}
}

func TestXMLRoundtrip(t *testing.T) {
	info := probe(t, "westmereEP")
	info.AttachNUMA(NUMAFromArch(hwdef.WestmereEP, info, 0))
	out, err := info.XML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<?xml", "<topology>", "<name>Intel Xeon (Westmere EP) processor</name>",
		`<thread id="0" smt="0" core="0" socket="0"`,
		`<cache level="3" type="Unified cache">`,
		"<sharedBy>12</sharedBy>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XML missing %q", want)
		}
	}
	doc, err := ParseXML([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	s, c, th := doc.Geometry()
	if s != 2 || c != 6 || th != 2 {
		t.Errorf("XML roundtrip geometry = %d/%d/%d", s, c, th)
	}
	if len(doc.Threads) != 24 {
		t.Errorf("XML threads = %d, want 24", len(doc.Threads))
	}
	if len(doc.Caches) != 3 {
		t.Errorf("XML caches = %d, want 3", len(doc.Caches))
	}
}

func TestXMLForAllArchs(t *testing.T) {
	for _, name := range hwdef.Names() {
		a, _ := hwdef.Lookup(name)
		info, err := Probe(cpuid.NewNode(a), a.ClockMHz)
		if err != nil {
			t.Fatal(err)
		}
		out, err := info.XML()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if _, err := ParseXML([]byte(out)); err != nil {
			t.Errorf("%s: roundtrip: %v", name, err)
		}
	}
}
