package experiments

import (
	"fmt"
	"strings"

	"likwid/internal/cpuid"
	"likwid/internal/features"
	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/marker"
	"likwid/internal/perfctr"
	"likwid/internal/pin"
	"likwid/internal/sched"
	"likwid/internal/topology"
)

// Fig1Topology reproduces Fig. 1 / the §II-B listing: the thread and cache
// topology report of a node, with extended cache parameters and ASCII art.
func Fig1Topology(archName string) (string, error) {
	arch, err := hwdef.Lookup(archName)
	if err != nil {
		return "", err
	}
	info, err := topology.Probe(cpuid.NewNode(arch), arch.ClockMHz)
	if err != nil {
		return "", err
	}
	return info.Render(topology.RenderOptions{ExtendedCaches: true, ASCIIArt: true}), nil
}

// Fig2GroupMapping reproduces Fig. 2: the interaction between an event set
// (group), its hardware events, and the performance counters they are
// scheduled on.
func Fig2GroupMapping(archName, group string) (string, error) {
	arch, err := hwdef.Lookup(archName)
	if err != nil {
		return "", err
	}
	g, err := perfctr.GroupFor(arch, group)
	if err != nil {
		return "", err
	}
	m := machine.New(arch, machine.Options{Seed: 1})
	var specs []perfctr.EventSpec
	for _, ev := range g.Events {
		specs = append(specs, perfctr.EventSpec{Event: ev})
	}
	col, err := perfctr.NewCollector(m, []int{0}, specs, perfctr.Options{Multiplex: true})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: event set %s on %s (%s)\n", g.Name, arch.Name, g.Function)
	b.WriteString(col.Describe())
	fmt.Fprintln(&b, "derived metrics:")
	for _, mtr := range g.Metrics {
		fmt.Fprintf(&b, "  %-28s = %s\n", mtr.Name, mtr.Formula)
	}
	return b.String(), nil
}

// Fig3PinMechanism reproduces Fig. 3: likwid-pin's interposition on thread
// creation, shown as the pin decisions for an Intel OpenMP team with the
// shepherd skip mask.
func Fig3PinMechanism() (string, error) {
	arch := hwdef.WestmereEP
	m := machine.New(arch, machine.Options{Policy: sched.PolicySpread, Seed: 3})
	cores, err := pin.ParseCPUList("0-3")
	if err != nil {
		return "", err
	}
	p, err := pin.New(m.OS, cores, pin.SkipMaskFor(sched.RuntimeIntelOMP))
	if err != nil {
		return "", err
	}
	master := m.OS.Spawn("a.out", nil)
	if err := p.PinProcess(master); err != nil {
		return "", err
	}
	team, err := sched.SpawnTeam(m.OS, sched.RuntimeIntelOMP, 4, master, p.Hook())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 3: likwid-pin mechanism — $ likwid-pin -c 0-3 -t intel ./a.out")
	fmt.Fprintf(&b, "process pinned to core %d (KMP_AFFINITY=%s)\n", master.CPU, p.Env["KMP_AFFINITY"])
	for _, ev := range p.Log() {
		fmt.Fprintf(&b, "pthread_create wrapper: %s\n", ev.String())
	}
	fmt.Fprintf(&b, "worker placement:")
	for i, w := range team.Workers {
		fmt.Fprintf(&b, " worker%d->core%d", i, w.CPU)
	}
	fmt.Fprintln(&b)
	return b.String(), nil
}

// MarkerListing reproduces the §II-A marker-mode output: FLOPS_DP measured
// on the four cores of a Core 2 Quad with regions "Init" and "Benchmark".
func MarkerListing() (string, error) {
	arch := hwdef.Core2Quad
	m := machine.New(arch, machine.Options{Policy: sched.PolicySpread, Seed: 5})
	g, err := perfctr.GroupFor(arch, "FLOPS_DP")
	if err != nil {
		return "", err
	}
	var specs []perfctr.EventSpec
	for _, ev := range g.Events {
		specs = append(specs, perfctr.EventSpec{Event: ev})
	}
	cpus := []int{0, 1, 2, 3}
	col, err := perfctr.NewCollector(m, cpus, specs, perfctr.Options{})
	if err != nil {
		return "", err
	}
	if err := col.Start(); err != nil {
		return "", err
	}
	mk, err := marker.New(col, arch.ClockHz(), 4)
	if err != nil {
		return "", err
	}
	initID := mk.RegisterRegion("Init")
	benchID := mk.RegisterRegion("Benchmark")

	// Four pinned worker threads, as the paper's example program has.
	var tasks []*sched.Task
	for _, cpu := range cpus {
		t := m.OS.Spawn(fmt.Sprintf("worker-%d", cpu), nil)
		if err := m.OS.Pin(t, cpu); err != nil {
			return "", err
		}
		tasks = append(tasks, t)
	}
	runBurst := func(elems float64, packedPerElem float64) error {
		var works []*machine.ThreadWork
		for _, t := range tasks {
			works = append(works, &machine.ThreadWork{
				Task: t, Elems: elems,
				PerElem: machine.PerElem{
					Cycles: 1.5,
					Counts: machine.Counts{
						machine.EvInstr:         2,
						machine.EvFlopsPackedDP: packedPerElem,
					},
					Vector: true,
				},
			})
		}
		m.RunPhase(works, 0)
		return nil
	}
	// Init region: tiny scalar setup (the listing's near-zero counts).
	for tid, cpu := range cpus {
		if err := mk.StartRegion(tid, cpu); err != nil {
			return "", err
		}
	}
	// One scalar SSE op per core, exactly as in the paper's Init region.
	for _, cpu := range cpus {
		if err := m.Inject(cpu, machine.Counts{
			machine.EvInstr: 330000, machine.EvCycles: 420000, machine.EvFlopsScalarDP: 1,
		}); err != nil {
			return "", err
		}
	}
	for tid, cpu := range cpus {
		if err := mk.StopRegion(tid, cpu, initID); err != nil {
			return "", err
		}
	}
	// Benchmark region: the packed-SSE triad burst.
	for tid, cpu := range cpus {
		if err := mk.StartRegion(tid, cpu); err != nil {
			return "", err
		}
	}
	if err := runBurst(8.192e6, 1); err != nil {
		return "", err
	}
	for tid, cpu := range cpus {
		if err := mk.StopRegion(tid, cpu, benchID); err != nil {
			return "", err
		}
	}
	if err := mk.Close(); err != nil {
		return "", err
	}
	if err := col.Stop(); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "$ likwid-perfCtr -c 0-3 -g FLOPS_DP -m ./a.out\n")
	b.WriteString(perfctr.Header(arch.ModelName, arch.ClockMHz))
	fmt.Fprintf(&b, "Measuring group FLOPS_DP\n")
	b.WriteString(strings.Repeat("-", 61) + "\n")
	b.WriteString(mk.Report(&g))
	return b.String(), nil
}

// EventGroupTable reproduces the §II-A table of preconfigured event sets.
func EventGroupTable(archName string) (string, error) {
	arch, err := hwdef.Lookup(archName)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Preconfigured event sets on %s:\n", arch.Name)
	fmt.Fprintf(&b, "%-10s %s\n", "Event set", "Function")
	for _, name := range perfctr.GroupNames(arch) {
		g, err := perfctr.GroupFor(arch, name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %s\n", g.Name, g.Function)
	}
	return b.String(), nil
}

// FeaturesListing reproduces the §II-D likwid-features output, including
// the paper's toggle example (-u CL_PREFETCHER).
func FeaturesListing() (string, error) {
	arch := hwdef.Core2Duo65
	m := machine.New(arch, machine.Options{Seed: 1})
	tool, err := features.New(m.MSRs, arch, 0)
	if err != nil {
		return "", err
	}
	before, err := tool.Render()
	if err != nil {
		return "", err
	}
	if err := tool.Disable("CL_PREFETCHER"); err != nil {
		return "", err
	}
	on, err := tool.Enabled("CL_PREFETCHER")
	if err != nil {
		return "", err
	}
	state := "disabled"
	if on {
		state = "enabled"
	}
	var b strings.Builder
	fmt.Fprintln(&b, "$ likwid-features")
	b.WriteString(before)
	fmt.Fprintln(&b, "$ likwid-features -u CL_PREFETCHER")
	fmt.Fprintf(&b, "CL_PREFETCHER: %s\n", state)
	return b.String(), nil
}
