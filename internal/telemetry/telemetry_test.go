package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterSemantics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Value = %v, want 1.5", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	// Dropped, never counted, never poisoning the sum.
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5 (non-finite observations dropped)", got)
	}
	if got := h.Sum(); got != 105.65 {
		t.Errorf("Sum = %v, want 105.65", got)
	}
	want := []uint64{2, 1, 1} // <=0.1: {0.05, 0.1}, <=1: {0.5}, <=10: {5}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.over.Load(); got != 1 {
		t.Errorf("overflow = %d, want 1 (the 100)", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {1, 0.5},
		"nan":        {math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

// TestConcurrentIncrements hammers every instrument kind from many
// goroutines — the -race guarantee that hot-path instrumentation can be
// dropped into any pipeline stage without a lock.
func TestConcurrentIncrements(t *testing.T) {
	r := New()
	c := r.Counter("ops_total")
	g := r.Gauge("depth")
	h := r.Histogram("latency_seconds", DurationBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d (CAS adds must not lose updates)", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), float64(workers*per)*0.001; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := New()
	a := r.Counter("drops_total", "sink", "push")
	b := r.Counter("drops_total", "sink", "push")
	if a != b {
		t.Error("same identity resolved two counters")
	}
	other := r.Counter("drops_total", "sink", "csv")
	if a == other {
		t.Error("different label values collapsed into one counter")
	}
	// Label order must not matter for identity.
	x := r.Gauge("g", "b", "2", "a", "1")
	y := r.Gauge("g", "a", "1", "b", "2")
	if x != y {
		t.Error("label order changed the metric identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

// TestSnapshotDeterministic pins the snapshot contract with a fake
// clock: identical registration and update sequences produce identical
// snapshots, sorted by metric identity, with the uptime taken from the
// injected clock.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		now := time.Unix(1000, 0)
		r := NewWithClock(func() time.Time { return now })
		// Register in a scrambled order; the snapshot must sort.
		r.Counter("zeta_total", "stage", "gzip").Add(3)
		r.Gauge("alpha_depth").Set(7)
		r.Histogram("mid_seconds", []float64{0.1, 1}).Observe(0.5)
		r.Counter("zeta_total", "stage", "raw").Add(9)
		r.GaugeFunc("beta_series", func() float64 { return 11 })
		now = now.Add(90 * time.Second)
		return r.Snapshot()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical builds produced different snapshots:\n%+v\n%+v", a, b)
	}
	if a.UptimeSeconds != 90 {
		t.Errorf("uptime = %v, want 90 (the fake clock's advance)", a.UptimeSeconds)
	}
	var names []string
	for _, m := range a.Metrics {
		names = append(names, metricID(m.Name, nil)+"|"+m.Kind)
	}
	wantOrder := []string{"alpha_depth|gauge", "beta_series|gauge", "mid_seconds|histogram", "zeta_total|counter", "zeta_total|counter"}
	if !reflect.DeepEqual(names, wantOrder) {
		t.Errorf("snapshot order = %v, want %v", names, wantOrder)
	}
	// The two zeta variants stay distinct and sorted by label identity.
	if a.Metrics[3].Labels["stage"] != "gzip" || a.Metrics[4].Labels["stage"] != "raw" {
		t.Errorf("labelled variants out of order: %+v / %+v", a.Metrics[3], a.Metrics[4])
	}
	if a.Metrics[2].Count != 1 || a.Metrics[2].Sum != 0.5 {
		t.Errorf("histogram snapshot = %+v, want count 1 sum 0.5", a.Metrics[2])
	}
}

func TestSnapshotFuncsReadLive(t *testing.T) {
	r := New()
	v := 1.0
	var mu sync.Mutex
	r.GaugeFunc("live", func() float64 { mu.Lock(); defer mu.Unlock(); return v })
	if got := r.Snapshot().Metrics[0].Value; got != 1 {
		t.Fatalf("first snapshot = %v", got)
	}
	mu.Lock()
	v = 2
	mu.Unlock()
	if got := r.Snapshot().Metrics[0].Value; got != 2 {
		t.Errorf("second snapshot = %v, want the updated 2", got)
	}
}

func TestStatusHandler(t *testing.T) {
	now := time.Unix(0, 0)
	r := NewWithClock(func() time.Time { return now })
	r.Counter("likwid_ingest_rejected_total", "reason", "decode").Add(4)
	now = now.Add(30 * time.Second)

	srv := httptest.NewServer(StatusHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if st.Status != "ok" || st.UptimeSeconds != 30 {
		t.Errorf("status = %q uptime = %v, want ok/30", st.Status, st.UptimeSeconds)
	}
	if st.Go.Goroutines <= 0 || st.Go.Version == "" {
		t.Errorf("go stats missing: %+v", st.Go)
	}
	if len(st.Metrics) != 1 || st.Metrics[0].Value != 4 {
		t.Errorf("metrics = %+v, want the one counter at 4", st.Metrics)
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /status = %d, want 405", post.StatusCode)
	}
}
