package monitor

import (
	"context"
	"time"

	"likwid/internal/telemetry"
)

// SelfSource is the Key.Source of the agent's own telemetry series.
// Self-metrics live in the store as "self/likwid_*": the source
// dimension keeps them out of every hardware collector's namespace, the
// alert DSL selects them as self/likwid_... like any fleet source, and
// a push sink rewrites "self" to the agent's own push identity so two
// agents' self series never collide at a receiver.
const SelfSource = "self"

// SelfCollector republishes a telemetry registry's snapshot as store
// samples — the monitor monitoring itself.  Each counter and gauge
// becomes one series named after the metric; a histogram becomes its
// _count and _sum series (rates and means are what the alert DSL works
// on; per-bucket series would multiply cardinality for little alerting
// value — the full buckets stay visible on /status).  Metric labels
// (stage=, collector=, reason=, peer=) carry over as the series' label
// set, so /query label selectors slice them.
//
// Samples are stamped with the registry's uptime as their simulated
// time: monotone, deterministic under a fake clock, and aligned across
// every self series.
type SelfCollector struct {
	reg      *telemetry.Registry
	interval time.Duration

	// labelMemo interns each metric identity's label set once; the
	// snapshot re-presents the same identities every tick, so steady
	// state does one map hit per metric instead of an intern per tick.
	labelMemo map[string]Labels
}

// NewSelfCollector publishes reg's instruments every interval (default
// 10 s).
func NewSelfCollector(reg *telemetry.Registry, interval time.Duration) *SelfCollector {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &SelfCollector{reg: reg, interval: interval, labelMemo: map[string]Labels{}}
}

// Name implements Collector.
func (c *SelfCollector) Name() string { return "self" }

// Scope implements Collector: self-metrics are per-process, node scope.
func (c *SelfCollector) Scope() Scope { return ScopeNode }

// Interval implements Collector.
func (c *SelfCollector) Interval() time.Duration { return c.interval }

// labelsFor resolves (memoized) the interned label set of one metric.
func (c *SelfCollector) labelsFor(id string, m map[string]string) Labels {
	if ls, ok := c.labelMemo[id]; ok {
		return ls
	}
	ls, err := MakeLabels(m)
	if err != nil {
		// Telemetry label names are chosen by this codebase, so this is
		// a programming error (e.g. a reserved name); publish unlabelled
		// rather than dropping the series.
		ls = Labels{}
	}
	c.labelMemo[id] = ls
	return ls
}

// Collect implements Collector: one snapshot, one sample per counter or
// gauge, two (_count, _sum) per histogram.
func (c *SelfCollector) Collect(_ context.Context) ([]Sample, error) {
	snap := c.reg.Snapshot()
	now := snap.UptimeSeconds
	out := make([]Sample, 0, len(snap.Metrics))
	emit := func(metric string, labels Labels, v float64) {
		out = append(out, Sample{
			Source: SelfSource,
			Metric: metric,
			Scope:  ScopeNode,
			ID:     0,
			Time:   now,
			Value:  v,
			Labels: labels,
		})
	}
	for _, m := range snap.Metrics {
		id := m.Name + "{" + FormatLabelMap(m.Labels) + "}"
		ls := c.labelsFor(id, m.Labels)
		if m.Kind == telemetry.KindHistogram.String() {
			emit(m.Name+"_count", ls, float64(m.Count))
			emit(m.Name+"_sum", ls, m.Sum)
			continue
		}
		emit(m.Name, ls, m.Value)
	}
	return out, nil
}
