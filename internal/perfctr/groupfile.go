package perfctr

import (
	"fmt"
	"strings"

	"likwid/internal/hwdef"
)

// Custom performance-group definitions in the LIKWID text format.  The
// original tool ships its preconfigured groups as small text files and
// users add their own; this parser accepts the same shape:
//
//	SHORT  Double precision MFlops/s
//	EVENTSET
//	PMC0  SIMD_COMP_INST_RETIRED_PACKED_DOUBLE
//	PMC1  SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE
//	METRICS
//	DP MFlops/s  1.0E-06*(PMC0*2+PMC1)/time
//	LONG
//	Free-text documentation, ignored by the parser.
//
// Metric formulas reference *counters* (PMC0, FIXC1, UPMC0) as in the
// original format; the parser rewrites them to event names so the formula
// engine can evaluate measurement results.  FIXC0/FIXC1 resolve to the
// always-counted INSTR_RETIRED_ANY / CPU_CLK_UNHALTED_CORE; "time" and
// "clock" pass through.
func ParseGroupFile(a *hwdef.Arch, name, src string) (GroupDef, error) {
	g := GroupDef{Name: name}
	counterToEvent := map[string]string{
		"FIXC0": "INSTR_RETIRED_ANY",
		"FIXC1": "CPU_CLK_UNHALTED_CORE",
		"FIXC2": "CPU_CLK_UNHALTED_REF",
	}

	section := ""
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "SHORT"):
			g.Function = strings.TrimSpace(strings.TrimPrefix(line, "SHORT"))
			continue
		case line == "EVENTSET":
			section = "EVENTSET"
			continue
		case line == "METRICS":
			section = "METRICS"
			continue
		case line == "LONG":
			section = "LONG"
			continue
		}
		switch section {
		case "EVENTSET":
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return g, fmt.Errorf("perfctr: group %s line %d: want 'COUNTER EVENT', got %q", name, lineNo+1, line)
			}
			counter, event := fields[0], fields[1]
			if _, err := a.EventByName(event); err != nil {
				return g, fmt.Errorf("perfctr: group %s line %d: %w", name, lineNo+1, err)
			}
			if prev, dup := counterToEvent[counter]; dup && prev != event {
				return g, fmt.Errorf("perfctr: group %s line %d: counter %s assigned twice", name, lineNo+1, counter)
			}
			counterToEvent[counter] = event
			if !strings.HasPrefix(counter, "FIXC") {
				g.Events = append(g.Events, event)
			}
		case "METRICS":
			metricName, formula, err := splitMetricLine(line)
			if err != nil {
				return g, fmt.Errorf("perfctr: group %s line %d: %w", name, lineNo+1, err)
			}
			rewritten, err := rewriteCounters(formula, counterToEvent)
			if err != nil {
				return g, fmt.Errorf("perfctr: group %s line %d: %w", name, lineNo+1, err)
			}
			if _, err := CompileExpr(rewritten); err != nil {
				return g, fmt.Errorf("perfctr: group %s line %d: %w", name, lineNo+1, err)
			}
			g.Metrics = append(g.Metrics, Metric{Name: metricName, Formula: rewritten})
		case "LONG":
			// Documentation text, ignored.
		default:
			return g, fmt.Errorf("perfctr: group %s line %d: content outside any section: %q", name, lineNo+1, line)
		}
	}
	if len(g.Events) == 0 && len(g.Metrics) == 0 {
		return g, fmt.Errorf("perfctr: group %s: no EVENTSET or METRICS section", name)
	}
	return g, nil
}

// splitMetricLine separates "<metric name>  <formula>": the formula is the
// final whitespace-separated token (formulas contain no spaces in the
// LIKWID format).
func splitMetricLine(line string) (name, formula string, err error) {
	idx := strings.LastIndexAny(line, " \t")
	if idx < 0 {
		return "", "", fmt.Errorf("metric line needs a name and a formula: %q", line)
	}
	name = strings.TrimSpace(line[:idx])
	formula = strings.TrimSpace(line[idx+1:])
	if name == "" || formula == "" {
		return "", "", fmt.Errorf("metric line needs a name and a formula: %q", line)
	}
	return name, formula, nil
}

// rewriteCounters substitutes counter identifiers in a formula with their
// event names, leaving numbers, operators and the time/clock variables.
func rewriteCounters(formula string, counterToEvent map[string]string) (string, error) {
	expr, err := CompileExpr(formula)
	if err != nil {
		return "", err
	}
	out := formula
	for _, v := range expr.Vars() {
		if v == "time" || v == "clock" {
			continue
		}
		event, ok := counterToEvent[v]
		if !ok {
			return "", fmt.Errorf("formula references counter %q which is not in EVENTSET", v)
		}
		out = replaceIdent(out, v, event)
	}
	return out, nil
}

// replaceIdent replaces whole-identifier occurrences of old with new.
func replaceIdent(s, old, new string) string {
	isIdent := func(b byte) bool {
		return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], old) {
			beforeOK := i == 0 || !isIdent(s[i-1])
			afterOK := i+len(old) >= len(s) || !isIdent(s[i+len(old)])
			if beforeOK && afterOK {
				b.WriteString(new)
				i += len(old)
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}
