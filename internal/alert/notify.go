package alert

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// Notifier delivers one firing/resolved event.  Notifiers are driven by
// a single Fanout goroutine (the sink idiom), so implementations need no
// locking against each other; Close flushes and releases resources.
type Notifier interface {
	Name() string
	Notify(ev Event) error
	Close() error
}

// Fanout delivers events to notifiers asynchronously through a bounded
// channel.  Publish never blocks rule evaluation: when the queue is full
// the event is dropped and counted — a slow webhook costs notifications,
// never evaluation cadence.
type Fanout struct {
	// mu guards closed and the channel send against a concurrent Close,
	// exactly like the sink dispatcher: publishers hold it shared, Close
	// exclusively, so the channel is never closed mid-send.
	mu        sync.RWMutex
	closed    bool
	ch        chan Event
	notifiers []Notifier
	delivered atomic.Uint64
	dropped   atomic.Uint64
	errs      atomic.Uint64
	done      chan struct{}
	once      sync.Once

	logger atomic.Pointer[slog.Logger]
}

// NewFanout starts the delivery goroutine; buffer is the bounded queue
// depth (default 64 when <= 0).
func NewFanout(buffer int, notifiers ...Notifier) *Fanout {
	if buffer <= 0 {
		buffer = 64
	}
	f := &Fanout{
		ch:        make(chan Event, buffer),
		notifiers: notifiers,
		done:      make(chan struct{}),
	}
	go f.loop()
	return f
}

func (f *Fanout) loop() {
	defer close(f.done)
	for ev := range f.ch {
		ok := true
		for _, n := range f.notifiers {
			if err := n.Notify(ev); err != nil {
				f.errs.Add(1)
				ok = false
				if log := f.logger.Load(); log != nil {
					log.Warn("notifier delivery failed",
						"notifier", n.Name(), "rule", ev.Rule, "state", ev.State, "err", err)
				}
			}
		}
		if ok {
			f.delivered.Add(1)
		}
	}
}

// Publish enqueues an event without blocking; it reports false (and
// counts the drop) when the queue is full or the fanout is closed.
func (f *Fanout) Publish(ev Event) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.countDrop()
		return false
	}
	select {
	case f.ch <- ev:
		return true
	default:
		f.countDrop()
		return false
	}
}

// countDrop counts one dropped event, warning only on the first — the
// dispatcher's rate-limiting discipline: the counter carries the rate,
// the log carries the fact.
func (f *Fanout) countDrop() {
	if f.dropped.Add(1) == 1 {
		if log := f.logger.Load(); log != nil {
			log.Warn("notifier queue full, dropping events (counted, further drops not logged)",
				"capacity", cap(f.ch))
		}
	}
}

// SetLogger routes drop and delivery-failure warnings; nil (the
// default) keeps the fanout silent, counters only.
func (f *Fanout) SetLogger(log *slog.Logger) { f.logger.Store(log) }

// Instrument registers the fanout's self-metrics on reg.
func (f *Fanout) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("likwid_notifier_queue_depth", func() float64 { return float64(len(f.ch)) })
	reg.GaugeFunc("likwid_notifier_queue_capacity", func() float64 { return float64(cap(f.ch)) })
	reg.CounterFunc("likwid_notifier_delivered_total", func() float64 { return float64(f.delivered.Load()) })
	reg.CounterFunc("likwid_notifier_dropped_total", func() float64 { return float64(f.dropped.Load()) })
	reg.CounterFunc("likwid_notifier_errors_total", func() float64 { return float64(f.errs.Load()) })
}

// Delivered counts events delivered to every notifier without error.
func (f *Fanout) Delivered() uint64 { return f.delivered.Load() }

// Dropped counts events rejected by the overflow policy.
func (f *Fanout) Dropped() uint64 { return f.dropped.Load() }

// Errors counts individual notifier failures.
func (f *Fanout) Errors() uint64 { return f.errs.Load() }

// Closed reports whether the fanout has been shut down — the "notifiers
// up" half of a readiness probe.
func (f *Fanout) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Close drains the queue, closes every notifier, and returns the first
// notifier close error.
func (f *Fanout) Close() error {
	var err error
	f.once.Do(func() {
		f.mu.Lock()
		f.closed = true
		close(f.ch)
		f.mu.Unlock()
		<-f.done
		for _, n := range f.notifiers {
			if cerr := n.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// ---- log notifier ---------------------------------------------------------

// logNotifier writes one human-readable line per event.
type logNotifier struct {
	w io.Writer
}

// NewLogNotifier writes one line per transition to w, e.g.
//
//	alert firing mem_bw_low memory_bandwidth_mbytes_s socket/0 value=1833.1 threshold=2000 t=63.0
//
// Fleet events carry their agent as a source=NAME field after the
// metric, and labelled events their label set as labels{k=v,k=v}.
func NewLogNotifier(w io.Writer) Notifier { return &logNotifier{w: w} }

func (l *logNotifier) Name() string { return "log" }

func (l *logNotifier) Notify(ev Event) error {
	source := ""
	if ev.Source != "" {
		source = " source=" + ev.Source
	}
	labels := ""
	if len(ev.Labels) > 0 {
		labels = " labels{" + monitor.FormatLabelMap(ev.Labels) + "}"
	}
	grouped := ""
	if len(ev.Instances) > 0 {
		grouped = fmt.Sprintf(" instances=%d", len(ev.Instances))
	}
	_, err := fmt.Fprintf(l.w, "alert %s %s %s%s%s %s/%d value=%g threshold=%g t=%.3f%s\n",
		ev.State, ev.Rule, ev.Metric, source, labels, ev.Scope, ev.ID, ev.Value, ev.Threshold, ev.Time, grouped)
	return err
}

func (l *logNotifier) Close() error { return nil }

// ---- JSON-lines notifier --------------------------------------------------

type jsonlNotifier struct {
	w *bufio.Writer
	c io.Closer
}

// NewJSONLNotifier writes one JSON event per line to w, closing c (which
// may be nil) on Close — the audit-trail twin of the jsonl metric sink.
func NewJSONLNotifier(w io.Writer, c io.Closer) Notifier {
	return &jsonlNotifier{w: bufio.NewWriter(w), c: c}
}

func (n *jsonlNotifier) Name() string { return "jsonl" }

func (n *jsonlNotifier) Notify(ev Event) error {
	if err := json.NewEncoder(n.w).Encode(ev); err != nil {
		return err
	}
	return n.w.Flush()
}

func (n *jsonlNotifier) Close() error {
	if err := n.w.Flush(); err != nil {
		return err
	}
	if n.c != nil {
		return n.c.Close()
	}
	return nil
}

// ---- webhook notifier -----------------------------------------------------

// WebhookOptions configure a webhook notifier.  Zero values take the
// defaults noted per field (the push sink's retry discipline).
type WebhookOptions struct {
	// URL receives one POST per event with a JSON Event body.  Required.
	URL string
	// MaxAttempts is the number of POST tries per event (default 3).
	MaxAttempts int
	// RetryBase is the first retry backoff, doubling per attempt
	// (default 100 ms).
	RetryBase time.Duration
	// Context bounds the retry backoff: when it is cancelled (agent
	// shutdown), delivery stops sleeping between attempts, so draining
	// the fanout against a dead endpoint cannot stall shutdown for the
	// whole backoff ladder.  Nil means never cancelled.
	Context context.Context
	// Client defaults to an http.Client with a 10 s timeout.
	Client *http.Client
	// Logger receives delivery-failure warnings; nil stays silent.
	Logger *slog.Logger
}

func (o WebhookOptions) withDefaults() WebhookOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return o
}

// WebhookNotifier POSTs each event as JSON with bounded retry/backoff.
// It runs on the fanout goroutine, so a dead endpoint delays other
// notifiers at most MaxAttempts backoffs per event; rule evaluation is
// protected by the fanout's drop-and-count queue.
type WebhookNotifier struct {
	opts    WebhookOptions
	sent    atomic.Uint64
	retries atomic.Uint64
}

// NewWebhookNotifier creates a webhook notifier; it does not contact the
// endpoint until the first event.
func NewWebhookNotifier(opts WebhookOptions) (*WebhookNotifier, error) {
	if strings.TrimSpace(opts.URL) == "" {
		return nil, fmt.Errorf("alert: webhook notifier needs a URL")
	}
	return &WebhookNotifier{opts: opts.withDefaults()}, nil
}

// Name implements Notifier.
func (n *WebhookNotifier) Name() string { return "webhook" }

// Sent counts events acknowledged by the endpoint.
func (n *WebhookNotifier) Sent() uint64 { return n.sent.Load() }

// Retries counts failed POST attempts.
func (n *WebhookNotifier) Retries() uint64 { return n.retries.Load() }

// SetLogger routes delivery-failure warnings; nil (the default) stays
// silent.  Wiring time only: call it before the notifier is handed to a
// fanout.
func (n *WebhookNotifier) SetLogger(log *slog.Logger) { n.opts.Logger = log }

// Notify POSTs the event, retrying with the push sink's bounded
// exponential backoff.
func (n *WebhookNotifier) Notify(ev Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	err = monitor.RetryWithBackoff(n.opts.Context, n.opts.MaxAttempts, n.opts.RetryBase,
		func() { n.retries.Add(1) },
		func() error { return n.post(payload) })
	if err != nil {
		if n.opts.Logger != nil {
			n.opts.Logger.Warn("webhook delivery failed",
				"url", n.opts.URL, "rule", ev.Rule, "attempts", n.opts.MaxAttempts, "err", err)
		}
		return fmt.Errorf("alert: webhook %s failed after %d attempts: %w",
			n.opts.URL, n.opts.MaxAttempts, err)
	}
	n.sent.Add(1)
	return nil
}

func (n *WebhookNotifier) post(payload []byte) error {
	resp, err := n.opts.Client.Post(n.opts.URL, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("endpoint returned %s", resp.Status)
	}
	return nil
}

// Close implements Notifier.
func (n *WebhookNotifier) Close() error { return nil }

// ---- notifier spec parsing ------------------------------------------------

// ParseNotifier builds a notifier from an agent -notify specification:
//
//	stdout               one human-readable line per transition on stdout
//	jsonl:PATH           JSON-lines event log
//	webhook:URL          POST each event as JSON (http:// or https://)
//
// The context bounds the webhook notifier's retry backoff (the agent's
// shutdown path); nil means never cancelled.
func ParseNotifier(ctx context.Context, spec string) (Notifier, error) {
	if err := ValidateNotifierSpec(spec); err != nil {
		return nil, err
	}
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "stdout", "log":
		return NewLogNotifier(os.Stdout), nil
	case "jsonl":
		f, err := os.Create(arg)
		if err != nil {
			return nil, fmt.Errorf("alert: notifier %q: %w", spec, err)
		}
		return NewJSONLNotifier(f, f), nil
	default: // "webhook", already validated
		return NewWebhookNotifier(WebhookOptions{URL: arg, Context: ctx})
	}
}

// ValidateNotifierSpec checks a -notify specification's shape without
// side effects, so agent configuration fails fast.  ParseNotifier runs
// it first, keeping the two in lockstep.
func ValidateNotifierSpec(spec string) error {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "stdout", "log":
		return nil
	case "jsonl":
		if arg == "" {
			return fmt.Errorf("alert: notifier %q needs a file path (jsonl:PATH)", spec)
		}
		return nil
	case "webhook":
		if !strings.HasPrefix(arg, "http://") && !strings.HasPrefix(arg, "https://") {
			return fmt.Errorf("alert: notifier %q needs an http(s) URL (webhook:http://host/path)", spec)
		}
		return nil
	default:
		return fmt.Errorf("alert: unknown notifier kind %q (stdout, jsonl:PATH, webhook:URL)", spec)
	}
}
