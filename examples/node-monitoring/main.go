// Node-monitoring: the paper's side-effect use of likwid-perfCtr as a
// monitoring tool for a complete shared-memory node (§II-A), grown into
// the continuous agent of the monitoring subsystem: collectors wrap the
// tools, a scheduler samples them on an interval, samples are rolled up
// per topology domain into a ring-buffer store, and batches fan out to
// sinks.
//
// A "foreign" background job streams on two cores of each socket of a
// Westmere node while the agent samples the MEM_DP group — core-based
// counting picks up whatever runs on each core, whoever started it, and
// the socket roll-ups show which controller the traffic hits.
//
// Run with: go run ./examples/node-monitoring
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"likwid"
	"likwid/internal/alert"
	"likwid/internal/machine"
	"likwid/internal/monitor"
	"likwid/internal/monitor/cluster"
	"likwid/internal/monitor/persist"
	"likwid/internal/topology"
)

func main() {
	node, err := likwid.Open("westmereEP")
	if err != nil {
		log.Fatal(err)
	}

	// The background job the monitor did not start: streaming tasks
	// pinned to cores 2, 3 (socket 0) and 8, 9 (socket 1).  Each agent
	// tick runs one interval's worth of this work to advance simulated
	// time — the "sleep 1" of the paper replaced by a live node.
	var works []*likwid.ThreadWork
	for _, cpu := range []int{2, 3, 8, 9} {
		t := node.Spawn(fmt.Sprintf("background-%d", cpu))
		if err := node.M.OS.Pin(t, cpu); err != nil {
			log.Fatal(err)
		}
		works = append(works, &likwid.ThreadWork{
			Task: t,
			PerElem: likwid.PerElem{
				Cycles:       1.0,
				Counts:       machine.Counts{machine.EvInstr: 3, machine.EvFlopsPackedDP: 1},
				MemReadBytes: 16, MemWriteBytes: 8,
				Streams: 3, Vector: true,
			},
		})
	}
	advance := func(dt float64) {
		for _, w := range works {
			w.Elems = 2e7 * dt / 0.05 // ≈ one interval of streaming work
			w.Done = 0
			w.FinishTime = 0
		}
		if elapsed := node.M.RunPhase(works, 0); elapsed < dt {
			node.M.RunIdle(dt-elapsed, 0)
		}
	}

	// Wire the subsystem: perfgroup collector → aggregator → tiered
	// store + table sink (socket and node scopes only).  The raw ring is
	// kept deliberately tiny here so the retention engine shows its
	// hand: evicted raw points compact into 0.1 s min/median/max/avg
	// buckets instead of vanishing.
	cfg := monitor.Config{
		Machine:   node.M,
		MachineMu: new(sync.Mutex),
		Group:     "MEM_DP",
		Interval:  50 * time.Millisecond,
		Advance:   advance,
	}
	col, err := monitor.DefaultRegistry.Build("perfgroup", cfg)
	if err != nil {
		log.Fatal(err)
	}
	info, err := topology.Probe(node.M.CPUs, node.M.Arch.ClockMHz)
	if err != nil {
		log.Fatal(err)
	}
	store := monitor.NewStore(4, monitor.Tier{Resolution: 0.1, Capacity: 64})
	dispatcher := monitor.NewDispatcher(16, monitor.NewTableSink(os.Stdout, monitor.ScopeSocket, monitor.ScopeNode))
	sched := monitor.NewScheduler(monitor.SchedulerOptions{
		Store:      store,
		Aggregator: monitor.NewAggregator(info, nil),
		Dispatcher: dispatcher,
	})
	sched.Add(col)

	fmt.Printf("continuous monitoring of %s, MEM_DP group, 50 ms interval:\n\n", node)
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	sched.Run(ctx)
	if stopper, ok := col.(interface{ Stop() error }); ok {
		_ = stopper.Stop()
	}
	if err := dispatcher.Close(); err != nil {
		log.Fatal(err)
	}

	// Windowed queries against the tiered store: the stitched window
	// spans downsampled history (bucket averages) plus the raw tail, and
	// the socket bandwidth series shows both controllers carrying the
	// traffic.
	fmt.Println("\nsocket memory-bandwidth series from the store (downsampled + raw):")
	for _, socket := range []int{0, 1} {
		key := monitor.Key{Metric: "memory_bandwidth_mbytes_s", Scope: monitor.ScopeSocket, ID: socket}
		points := store.Window(key, 0, -1)
		fmt.Printf("  socket %d: %d stitched points", socket, len(points))
		if len(points) > 0 {
			last := points[len(points)-1]
			fmt.Printf(", latest %.0f MB/s at t=%.2f s", last.Value, last.Time)
		}
		fmt.Println()
		for _, b := range store.Buckets(key, 0.1, 0, -1) {
			fmt.Printf("    bucket [%.1f,%.1f): n=%d min=%.0f med=%.0f max=%.0f avg=%.0f MB/s\n",
				b.Start, b.End(), b.Count, b.Min, b.Median, b.Max, b.Avg)
		}
	}
	fmt.Println("\nthe busy cores show up in thread-scope series; memory traffic")
	fmt.Println("appears once per socket under the socket lock, the node roll-up")
	fmt.Println("sums both controllers, and history older than the raw ring")
	fmt.Println("survives as min/median/max/avg buckets instead of vanishing.")

	// The alerting layer as a library: rules over the same store.  The
	// first rule is satisfied by the streaming job (bandwidth present),
	// the second watches the paper's imbalance signal; firing and
	// resolved transitions are also recorded as alert/<name> series.
	// likwid-agent runs the same engine from a rule file (-rules,
	// examples/node-monitoring/alerts.rules) with stdout / JSON-lines /
	// webhook notifiers.
	rules, err := alert.ParseRules(`
bw_present: avg(memory_bandwidth_mbytes_s, node, 1s) > 1 for 0s
bw_skew:    imbalance(memory_bandwidth_mbytes_s, socket, 1s) > 0.5 for 0s
`)
	if err != nil {
		log.Fatal(err)
	}
	fanout := alert.NewFanout(16, alert.NewLogNotifier(os.Stdout))
	engine, err := alert.NewEngine(alert.Options{Store: store, Fanout: fanout}, rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalert rules over the store ('for 0s': firing on the first true evaluation):")
	engine.EvalNow()
	engine.EvalNow() // continued firing is deduplicated: no second notification
	if err := fanout.Close(); err != nil {
		log.Fatal(err)
	}
	for _, inst := range engine.Alerts() {
		fmt.Printf("  %s: %s (value %.0f vs threshold %.0f)\n",
			inst.Rule, inst.State, inst.Value, inst.Threshold)
	}
	histKey := monitor.Key{Metric: "alert/bw_present", Scope: monitor.ScopeNode, ID: 0}
	if p, ok := store.Latest(histKey); ok {
		fmt.Printf("  history series alert/bw_present: value %.0f at t=%.2f s\n", p.Value, p.Time)
	}

	// ---- labelled two-agent fleet ------------------------------------
	// The structured-label dimension end to end: a receiver stamps the
	// machine-room identity (cluster=emmy) as an ingest default, two
	// "agents" push the same metric labelled with their jobs (the
	// `likwid-agent -labels job=...` stamp), and the merged store slices
	// by label — /query?label.job=lbm — across sources.
	fmt.Println("\nlabelled fleet: two agents, one receiver, sliced by job label:")
	fleetStore := monitor.NewStore(64)
	recv, err := monitor.NewHTTPSink("127.0.0.1:0", fleetStore)
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	clusterLabel, err := monitor.ParseLabelSpec("cluster=emmy")
	if err != nil {
		log.Fatal(err)
	}
	recv.SetIngestLabels(clusterLabel)
	for agent, jobSpec := range map[string]string{"nodeA": "job=lbm", "nodeB": "job=ep"} {
		job, err := monitor.ParseLabelSpec(jobSpec)
		if err != nil {
			log.Fatal(err)
		}
		push, err := monitor.NewPushSink(monitor.PushOptions{
			URL: "http://" + recv.Addr() + "/ingest", FlushSamples: 1, Source: agent,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			_ = push.Write(monitor.Batch{Collector: "perfgroup", Time: float64(i), Samples: []monitor.Sample{
				{Metric: "memory_bandwidth_mbytes_s", Scope: monitor.ScopeNode, ID: 0,
					Labels: job, Time: float64(i), Value: 10000 + float64(len(agent)*i)},
			}})
		}
		if err := push.Close(); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Get("http://" + recv.Addr() + "/query?metric=memory_bandwidth_mbytes_s&scope=node&source=*&label.job=lbm")
	if err != nil {
		log.Fatal(err)
	}
	var sliced struct {
		Series []struct {
			Source string            `json:"source"`
			Labels map[string]string `json:"labels"`
			Points []monitor.Point   `json:"points"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sliced); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for _, s := range sliced.Series {
		fmt.Printf("  label.job=lbm matched source=%s labels=%v with %d points\n",
			s.Source, s.Labels, len(s.Points))
	}
	fmt.Println("  (each agent's job= label survives under the receiver's cluster= default;")
	fmt.Println("   the same selectors work in alert rules: avg(*/bw{job=\"lbm\"}, node, 30s) < ...)")

	// ---- fleet topology: sharded pool + federation tree --------------
	// The cluster layer as a library (the `likwid-agent -sink
	// push:rack1:8090,rack2:8090` / `-receiver ... -forward` wiring): an
	// agent shards its stream over two mid-tier receivers by consistent
	// hash, both forward every accepted batch to a root — the node →
	// rack → cluster tree.  Then one rack dies mid-stream and the pool
	// fails the stranded series over, so the root stays complete.
	fmt.Println("\nfleet topology: agent shards over two receivers, both forwarding to a root:")
	rootStore := monitor.NewStore(64)
	rootRecv, err := monitor.NewHTTPSink("127.0.0.1:0", rootStore)
	if err != nil {
		log.Fatal(err)
	}
	defer rootRecv.Close()
	newRack := func() (*monitor.Store, *monitor.HTTPSink, *monitor.Dispatcher) {
		st := monitor.NewStore(64)
		h, err := monitor.NewHTTPSink("127.0.0.1:0", st)
		if err != nil {
			log.Fatal(err)
		}
		fwd, err := cluster.New(cluster.Options{
			Targets: []string{"http://" + rootRecv.Addr() + "/ingest"},
			Policy:  cluster.PolicyFailover, FlushSamples: 1, RetryBase: time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		d := monitor.NewDispatcher(64, fwd)
		h.SetForward(func(b monitor.Batch) { d.Publish(b) })
		return st, h, d
	}
	rack1Store, rack1, rack1Fwd := newRack()
	rack2Store, rack2, rack2Fwd := newRack()
	defer rack2.Close()

	fleetMetrics := []string{"bw", "flops_dp", "cpi", "energy", "clock", "ipc"}
	pool, err := cluster.New(cluster.Options{
		Targets: []string{"http://" + rack1.Addr() + "/ingest", "http://" + rack2.Addr() + "/ingest"},
		Policy:  cluster.PolicyShard, Source: "nodeC", FlushSamples: 1, RetryBase: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	pushTicks := func(from, to int) {
		for i := from; i < to; i++ {
			samples := make([]monitor.Sample, 0, len(fleetMetrics))
			for _, m := range fleetMetrics {
				samples = append(samples, monitor.Sample{
					Metric: m, Scope: monitor.ScopeNode, ID: 0, Time: float64(i), Value: float64(i),
				})
			}
			_ = pool.Write(monitor.Batch{Collector: "perfgroup", Time: float64(i), Samples: samples})
		}
	}
	countSeries := func(st *monitor.Store) int {
		n := 0
		for _, m := range fleetMetrics {
			if len(st.Window(monitor.Key{Source: "nodeC", Metric: m, Scope: monitor.ScopeNode, ID: 0}, 0, -1)) > 0 {
				n++
			}
		}
		return n
	}
	rootComplete := func(ticks int) bool {
		for _, m := range fleetMetrics {
			k := monitor.Key{Source: "nodeC", Metric: m, Scope: monitor.ScopeNode, ID: 0}
			if len(rootStore.Window(k, 0, -1)) != ticks {
				return false
			}
		}
		return true
	}
	waitRoot := func(ticks int) {
		deadline := time.Now().Add(5 * time.Second)
		for !rootComplete(ticks) && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}

	pushTicks(0, 10) // both racks alive: the ring splits the series
	fmt.Printf("  shard split: rack1 owns %d series, rack2 owns %d of %d\n",
		countSeries(rack1Store), countSeries(rack2Store), len(fleetMetrics))
	waitRoot(10)
	fmt.Printf("  root window complete after 10 ticks: %v\n", rootComplete(10))

	rack1.Close() // rack 1 dies mid-stream; its series fail over to rack 2
	_ = rack1Fwd.Close()
	pushTicks(10, 20)
	if err := pool.Close(); err != nil { // graceful drain: flush + reroute
		log.Fatal(err)
	}
	waitRoot(20)
	var failedOver uint64
	for _, ts := range pool.Status() {
		failedOver += ts.Failovers
	}
	fmt.Printf("  rack1 killed mid-stream: %d failover event(s), %d samples dropped\n",
		failedOver, pool.Dropped())
	fmt.Printf("  root window still complete at 20 ticks: %v\n", rootComplete(20))
	if err := rack2Fwd.Close(); err != nil {
		log.Fatal(err)
	}

	// ---- durability: surviving a restart -----------------------------
	// With -wal DIR a real agent or receiver journals every append and
	// snapshots its rings and tiers, so a restart — or a crash — resumes
	// with history intact.  The same persist.Manager as a library: write
	// through one manager, tear the "process" down, and a second manager
	// on the same directory hands a fresh store the full window back.
	fmt.Println("\ndurability: the store survives a restart (-wal DIR on a real agent):")
	stateDir, err := os.MkdirTemp("", "likwid-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	k := monitor.Key{Metric: "memory_bandwidth_mbytes_s", Scope: monitor.ScopeNode, ID: 0}
	before := monitor.NewStore(64, monitor.Tier{Resolution: 10, Capacity: 8})
	pm, err := persist.Open(stateDir, before, persist.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		before.Append(k, monitor.Point{Time: float64(i), Value: 20000 + float64(i)})
	}
	if err := pm.Close(); err != nil { // the "restart": first life ends
		log.Fatal(err)
	}
	after := monitor.NewStore(64, monitor.Tier{Resolution: 10, Capacity: 8})
	pm2, err := persist.Open(stateDir, after, persist.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pm2.Close()
	restored := after.Window(k, 0, -1)
	fmt.Printf("  restored %d of 5 points after restart; newest t=%.0f value=%.0f\n",
		len(restored), restored[len(restored)-1].Time, restored[len(restored)-1].Value)
}
