package perfctr

import (
	"fmt"
	"strings"

	"likwid/internal/stats"
)

// Timeline mode: time-resolved counter measurement, the -d option the
// LIKWID suite grew after the paper.  A slice hook samples the running
// collector every interval of simulated time and stores per-interval
// deltas, turning the wrapper's single summary into a series — useful for
// watching a workload's phases without marker instrumentation.

// TimelinePoint is one sampling interval.
type TimelinePoint struct {
	// Time is the simulated timestamp at the end of the interval.
	Time float64
	// Deltas are per-event per-cpu-column count increments within the
	// interval.
	Deltas map[string][]float64
}

// Timeline samples a collector at a fixed simulated-time interval.
type Timeline struct {
	col      *Collector
	interval float64
	lastTime float64
	last     Results
	points   []TimelinePoint
	active   bool
}

// NewTimeline attaches a sampler to a (started or about-to-start)
// collector; interval is simulated seconds (default 10 ms).
func NewTimeline(col *Collector, interval float64) (*Timeline, error) {
	if interval <= 0 {
		interval = 0.010
	}
	tl := &Timeline{col: col, interval: interval, active: true}
	tl.last = col.Current()
	tl.lastTime = col.M.Now()
	col.M.AddSliceHook(tl.hook)
	return tl, nil
}

func (tl *Timeline) hook(now float64) {
	if !tl.active || now-tl.lastTime < tl.interval {
		return
	}
	cur := tl.col.Current()
	point := TimelinePoint{Time: now, Deltas: map[string][]float64{}}
	for ev, vals := range cur.Counts {
		prev := tl.last.Counts[ev]
		deltas := make([]float64, len(vals))
		for i := range vals {
			d := vals[i]
			if prev != nil {
				d -= prev[i]
			}
			if d < 0 {
				d = 0 // counter was reset between samples (set rotation)
			}
			deltas[i] = d
		}
		point.Deltas[ev] = deltas
	}
	tl.points = append(tl.points, point)
	tl.last = cur
	tl.lastTime = now
}

// Stop detaches the sampler (the hook stays registered but inert).
func (tl *Timeline) Stop() { tl.active = false }

// Points returns the recorded intervals.
func (tl *Timeline) Points() []TimelinePoint { return tl.points }

// Series extracts one event's per-interval totals (summed over the
// measured cpus), e.g. the memory-bandwidth trace of a run.
func (tl *Timeline) Series(event string) ([]float64, error) {
	found := false
	for _, ev := range tl.col.EventNames() {
		if ev == event {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("perfctr: timeline has no event %q", event)
	}
	out := make([]float64, len(tl.points))
	for i, p := range tl.points {
		var sum float64
		for _, v := range p.Deltas[event] {
			sum += v
		}
		out[i] = sum
	}
	return out, nil
}

// Summary returns the box-plot statistics of one event's per-interval
// totals (summed over the measured cpus) — the same stats.Summarize the
// experiment drivers and the monitoring agent's aggregator use, so the
// one-shot and continuous paths report distributions identically.
func (tl *Timeline) Summary(event string) (stats.Summary, error) {
	series, err := tl.Series(event)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarize(series), nil
}

// RenderTimeline prints per-interval rows of one event per cpu column.
func (tl *Timeline) RenderTimeline(event string) (string, error) {
	if _, err := tl.Series(event); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline of %s (interval %.3f s)\n", event, tl.interval)
	fmt.Fprintf(&b, "%10s", "t[s]")
	for _, cpu := range tl.col.CPUs() {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("core %d", cpu))
	}
	fmt.Fprintln(&b)
	for _, p := range tl.points {
		fmt.Fprintf(&b, "%10.3f", p.Time)
		for i := range tl.col.CPUs() {
			fmt.Fprintf(&b, " %12.0f", p.Deltas[event][i])
		}
		fmt.Fprintln(&b)
	}
	if sum, err := tl.Summary(event); err == nil && sum.N > 0 {
		fmt.Fprintf(&b, "per-interval totals: min=%.0f median=%.0f max=%.0f (n=%d)\n",
			sum.Min, sum.Median, sum.Max, sum.N)
	}
	return b.String(), nil
}
