package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testEvent() Event {
	return Event{
		Rule: "bw_low", State: EventStateFiring, Metric: "bw", Scope: "socket",
		ID: 1, Value: 1833.125, Threshold: 2000, Time: 63,
		Spec: "bw_low: avg(bw, socket, 30s) < 2000 for 1m0s",
	}
}

func TestLogNotifierFormat(t *testing.T) {
	var buf bytes.Buffer
	n := NewLogNotifier(&buf)
	if err := n.Notify(testEvent()); err != nil {
		t.Fatal(err)
	}
	want := "alert firing bw_low bw socket/1 value=1833.125 threshold=2000 t=63.000\n"
	if buf.String() != want {
		t.Errorf("log line = %q, want %q", buf.String(), want)
	}
}

func TestJSONLNotifierRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n := NewJSONLNotifier(&buf, nil)
	if err := n.Notify(testEvent()); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("jsonl line is not valid JSON: %v (%q)", err, buf.String())
	}
	if !reflect.DeepEqual(got, testEvent()) {
		t.Errorf("decoded = %+v, want %+v", got, testEvent())
	}
}

// TestWebhookNotifierRetries pins the retry/backoff discipline: a flaky
// endpoint is retried and the event eventually lands.
func TestWebhookNotifierRetries(t *testing.T) {
	var calls atomic.Int64
	var got Event
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	n, err := NewWebhookNotifier(WebhookOptions{URL: srv.URL, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Notify(testEvent()); err != nil {
		t.Fatalf("Notify failed despite retries: %v", err)
	}
	if calls.Load() != 3 || n.Retries() != 2 || n.Sent() != 1 {
		t.Errorf("calls=%d retries=%d sent=%d, want 3/2/1", calls.Load(), n.Retries(), n.Sent())
	}
	if got.Rule != "bw_low" || got.State != EventStateFiring {
		t.Errorf("delivered event = %+v", got)
	}

	// A permanently dead endpoint exhausts its attempts and errors.
	srv.Close()
	if err := n.Notify(testEvent()); err == nil {
		t.Error("Notify to a dead endpoint succeeded, want error")
	}
}

// failingNotifier always errors, for the fanout error accounting.
type failingNotifier struct{}

func (failingNotifier) Name() string       { return "fail" }
func (failingNotifier) Notify(Event) error { return errors.New("nope") }
func (failingNotifier) Close() error       { return nil }

func TestFanoutDeliveryAndCounts(t *testing.T) {
	cap := &captureNotifier{}
	f := NewFanout(4, cap, failingNotifier{})
	for i := 0; i < 3; i++ {
		if !f.Publish(testEvent()) {
			t.Fatalf("publish %d rejected", i)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(cap.snapshot()); got != 3 {
		t.Errorf("capture got %d events, want 3", got)
	}
	if f.Errors() != 3 {
		t.Errorf("errors = %d, want 3 (one per event from the failing notifier)", f.Errors())
	}
	if f.Delivered() != 0 {
		t.Errorf("delivered = %d, want 0 (every event had a failing notifier)", f.Delivered())
	}
	// Publishing after close drops and counts.
	if f.Publish(testEvent()) {
		t.Error("publish after close succeeded")
	}
	if f.Dropped() == 0 {
		t.Error("post-close publish not counted as dropped")
	}
}

func TestParseNotifierSpecs(t *testing.T) {
	dir := t.TempDir()
	good := []string{"stdout", "log", "jsonl:" + dir + "/events.jsonl", "webhook:http://localhost:1/hook"}
	for _, spec := range good {
		n, err := ParseNotifier(context.Background(), spec)
		if err != nil {
			t.Errorf("ParseNotifier(%q) failed: %v", spec, err)
			continue
		}
		_ = n.Close()
	}
	bad := map[string]string{
		"jsonl":           "file path",
		"webhook:ftp://x": "http(s) URL",
		"webhook:host":    "http(s) URL",
		"pagerduty:key":   "unknown notifier kind",
	}
	for spec, wantErr := range bad {
		if err := ValidateNotifierSpec(spec); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("ValidateNotifierSpec(%q) = %v, want %q", spec, err, wantErr)
		}
	}
}
