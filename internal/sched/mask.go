package sched

import (
	"fmt"
	"math/bits"
	"strings"
)

// Mask is a CPU affinity mask over up to 64 logical processors — the
// sched_setaffinity cpu_set_t of the model.  The zero Mask is empty.
type Mask uint64

// MaskAll returns a mask covering processors 0..n-1.
func MaskAll(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<n - 1
}

// MaskOf builds a mask from an explicit processor list.
func MaskOf(cpus ...int) Mask {
	var m Mask
	for _, c := range cpus {
		m = m.Set(c)
	}
	return m
}

// Set returns the mask with cpu added.
func (m Mask) Set(cpu int) Mask { return m | 1<<uint(cpu) }

// Clear returns the mask with cpu removed.
func (m Mask) Clear(cpu int) Mask { return m &^ (1 << uint(cpu)) }

// Has reports whether cpu is in the mask.
func (m Mask) Has(cpu int) bool { return m&(1<<uint(cpu)) != 0 }

// Count returns the number of processors in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// CPUs lists the processors in the mask in ascending order.
func (m Mask) CPUs() []int {
	out := make([]int, 0, m.Count())
	for m != 0 {
		c := bits.TrailingZeros64(uint64(m))
		out = append(out, c)
		m = m.Clear(c)
	}
	return out
}

// String formats the mask as a compact range list ("0-3,8").
func (m Mask) String() string {
	cpus := m.CPUs()
	if len(cpus) == 0 {
		return "(empty)"
	}
	var parts []string
	start, prev := cpus[0], cpus[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprint(start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, c := range cpus[1:] {
		if c == prev+1 {
			prev = c
			continue
		}
		flush()
		start, prev = c, c
	}
	flush()
	return strings.Join(parts, ",")
}
