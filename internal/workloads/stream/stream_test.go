package stream

import (
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/stats"
)

func samples(t *testing.T, cfg Config, n int) stats.Summary {
	t.Helper()
	bw, err := RunSamples(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Summarize(bw)
}

func TestScatterList(t *testing.T) {
	list := ScatterList(hwdef.WestmereEP)
	if len(list) != 24 {
		t.Fatalf("scatter list has %d entries, want 24", len(list))
	}
	// Round-robin over sockets, physical cores first: 0, 6, 1, 7, ...
	want := []int{0, 6, 1, 7, 2, 8}
	for i, w := range want {
		if list[i] != w {
			t.Fatalf("scatter list = %v..., want %v...", list[:6], want)
		}
	}
	// SMT siblings come after all physical cores.
	if list[12] != 12 || list[13] != 18 {
		t.Errorf("SMT part of scatter list wrong: %v", list[12:16])
	}
}

// TestPinnedSingleThreadBandwidth checks the single-core calibration point.
func TestPinnedSingleThreadBandwidth(t *testing.T) {
	s := samples(t, Config{
		Arch: hwdef.WestmereEP, Compiler: ICC, Threads: 1, Mode: PinScatter, Seed: 1,
	}, 3)
	want := hwdef.WestmereEP.Perf.CoreTriadBW / 1e6 // MB/s
	if s.Median < want*0.9 || s.Median > want*1.1 {
		t.Fatalf("1-thread pinned bandwidth = %v MB/s, want ≈ %v", s.Median, want)
	}
	// Pinned runs must be stable.
	if s.IQR() > s.Median*0.02 {
		t.Errorf("pinned run IQR = %v of median %v; pinning must kill variance", s.IQR(), s.Median)
	}
}

// TestPinnedSaturatesNode: Fig. 5's plateau at ~41 GB/s with 6+ threads.
func TestPinnedSaturatesNode(t *testing.T) {
	for _, threads := range []int{6, 12, 24} {
		s := samples(t, Config{
			Arch: hwdef.WestmereEP, Compiler: ICC, Threads: threads, Mode: PinScatter, Seed: 2,
		}, 3)
		want := 2 * hwdef.WestmereEP.Perf.SocketMemBW / 1e6
		if s.Median < want*0.88 || s.Median > want*1.05 {
			t.Errorf("%d threads pinned = %v MB/s, want ≈ %v (node saturation)", threads, s.Median, want)
		}
	}
}

// TestUnpinnedVarianceIcc: Fig. 4's key qualitative feature — unpinned runs
// vary wildly at low thread counts.
func TestUnpinnedVarianceIcc(t *testing.T) {
	unpinned := samples(t, Config{
		Arch: hwdef.WestmereEP, Compiler: ICC, Threads: 4, Mode: Unpinned, Seed: 3,
	}, 40)
	pinned := samples(t, Config{
		Arch: hwdef.WestmereEP, Compiler: ICC, Threads: 4, Mode: PinScatter, Seed: 3,
	}, 10)
	if unpinned.IQR() < pinned.IQR()*4 {
		t.Errorf("unpinned IQR %v not much larger than pinned %v", unpinned.IQR(), pinned.IQR())
	}
	if unpinned.Max > pinned.Max*1.1 {
		t.Errorf("unpinned max %v exceeds pinned %v", unpinned.Max, pinned.Max)
	}
	// Some samples land both sockets (good), some one socket (bad): the
	// spread must cover at least the single-socket/both-socket gap.
	if unpinned.Min > hwdef.WestmereEP.Perf.SocketMemBW/1e6*1.15 {
		t.Errorf("unpinned min %v never hit single-socket territory", unpinned.Min)
	}
}

// TestGccClusteredPlacementIsBadAtLowCounts: Fig. 7 — gcc's compact spawn
// keeps low thread counts on one socket, so results are consistently poor.
func TestGccClusteredPlacementIsBadAtLowCounts(t *testing.T) {
	gcc := samples(t, Config{
		Arch: hwdef.WestmereEP, Compiler: GCC, Threads: 4, Mode: Unpinned, Seed: 4,
	}, 30)
	oneSocket := hwdef.WestmereEP.Perf.SocketMemBW / 1e6
	if gcc.Q3 > oneSocket*1.2 {
		t.Errorf("gcc unpinned q3 = %v, want pinned to one socket (~%v)", gcc.Q3, oneSocket)
	}
	// And pinning fixes it (Fig. 8): both sockets reachable.
	pinned := samples(t, Config{
		Arch: hwdef.WestmereEP, Compiler: GCC, Threads: 4, Mode: PinScatter, Seed: 4,
	}, 5)
	if pinned.Median < gcc.Median*1.4 {
		t.Errorf("pinning gcc should roughly double low-count bandwidth: unpinned %v pinned %v",
			gcc.Median, pinned.Median)
	}
}

// TestRuntimeScatterMatchesLikwidPin: Fig. 6 ≈ Fig. 5.
func TestRuntimeScatterMatchesLikwidPin(t *testing.T) {
	for _, threads := range []int{2, 8} {
		likwid := samples(t, Config{
			Arch: hwdef.WestmereEP, Compiler: ICC, Threads: threads, Mode: PinScatter, Seed: 5,
		}, 3)
		kmp := samples(t, Config{
			Arch: hwdef.WestmereEP, Compiler: ICC, Threads: threads, Mode: RuntimeScatter, Seed: 5,
		}, 3)
		ratio := kmp.Median / likwid.Median
		if ratio < 0.93 || ratio > 1.07 {
			t.Errorf("%d threads: KMP scatter %v vs likwid-pin %v (ratio %v)",
				threads, kmp.Median, likwid.Median, ratio)
		}
	}
}

// TestIstanbulPinned: Fig. 10 — near-linear scaling to the node plateau.
func TestIstanbulPinned(t *testing.T) {
	one := samples(t, Config{Arch: hwdef.Istanbul, Compiler: ICC, Threads: 1, Mode: PinScatter, Seed: 6}, 3)
	twelve := samples(t, Config{Arch: hwdef.Istanbul, Compiler: ICC, Threads: 12, Mode: PinScatter, Seed: 6}, 3)
	wantOne := hwdef.Istanbul.Perf.CoreTriadBW / 1e6
	if one.Median < wantOne*0.9 || one.Median > wantOne*1.1 {
		t.Errorf("Istanbul 1 thread = %v, want ≈ %v", one.Median, wantOne)
	}
	wantNode := 2 * hwdef.Istanbul.Perf.SocketMemBW / 1e6
	if twelve.Median < wantNode*0.85 {
		t.Errorf("Istanbul 12 threads = %v, want ≈ %v", twelve.Median, wantNode)
	}
	// Unpinned Istanbul varies (Fig. 9).
	unpinned := samples(t, Config{Arch: hwdef.Istanbul, Compiler: ICC, Threads: 6, Mode: Unpinned, Seed: 6}, 30)
	if unpinned.IQR() < twelve.Median*0.03 {
		t.Errorf("Istanbul unpinned IQR = %v, too stable", unpinned.IQR())
	}
}

// TestSMTPinningOrder: with 12 pinned threads every physical core is busy;
// adding SMT siblings (24) must not collapse bandwidth.
func TestSMTPinningOrder(t *testing.T) {
	twelve := samples(t, Config{Arch: hwdef.WestmereEP, Compiler: ICC, Threads: 12, Mode: PinScatter, Seed: 7}, 3)
	twentyFour := samples(t, Config{Arch: hwdef.WestmereEP, Compiler: ICC, Threads: 24, Mode: PinScatter, Seed: 7}, 3)
	if twentyFour.Median < twelve.Median*0.9 {
		t.Errorf("SMT oversubscription collapsed bandwidth: 12=%v 24=%v", twelve.Median, twentyFour.Median)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Arch: nil, Threads: 1}); err == nil {
		t.Error("nil arch must fail")
	}
	if _, err := Run(Config{Arch: hwdef.WestmereEP, Threads: 0}); err == nil {
		t.Error("zero threads must fail")
	}
}

func TestWorkerCount(t *testing.T) {
	r, err := Run(Config{Arch: hwdef.WestmereEP, Compiler: ICC, Threads: 5, Mode: PinScatter, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WorkerCPUs) != 5 {
		t.Errorf("worker cpus = %v, want 5 entries", r.WorkerCPUs)
	}
	// Scatter pinning: workers on alternating sockets 0,6,1,7,2.
	want := []int{0, 6, 1, 7, 2}
	for i, w := range want {
		if r.WorkerCPUs[i] != w {
			t.Errorf("worker %d on cpu %d, want %d", i, r.WorkerCPUs[i], w)
		}
	}
}
