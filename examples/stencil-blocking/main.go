// Stencil-blocking: the paper's case studies 2 and 3 (§IV-B, §IV-C).
//
// Runs the three Jacobi variants on one Nehalem EP socket under
// likwid-perfCtr with the uncore L3 events of Table II (socket lock
// engaged), then demonstrates the Fig. 11 pinning hazard: splitting the
// wavefront thread group across sockets reverses the optimization.
//
// Run with: go run ./examples/stencil-blocking
package main

import (
	"fmt"
	"log"

	"likwid"
	"likwid/internal/perfctr"
	"likwid/internal/workloads/jacobi"
)

func main() {
	arch, err := likwid.LookupArch("nehalemEP")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table II reproduction: Jacobi variants on one Nehalem EP socket")
	fmt.Printf("%-14s %14s %14s %12s %10s\n",
		"variant", "L3 lines in", "L3 lines out", "volume [GB]", "MLUPS")
	for _, variant := range []jacobi.Variant{jacobi.Threaded, jacobi.ThreadedNT, jacobi.Wavefront} {
		node, err := likwid.Open("nehalemEP")
		if err != nil {
			log.Fatal(err)
		}
		col, _, err := node.NewCollector([]int{0, 1, 2, 3},
			"UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1",
			likwid.CollectorOptions{})
		if err != nil {
			log.Fatal(err)
		}
		inst, err := jacobi.Prepare(jacobi.TableIIConfig(arch, variant), node.M)
		if err != nil {
			log.Fatal(err)
		}
		if err := col.Start(); err != nil {
			log.Fatal(err)
		}
		res, err := inst.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := col.Stop(); err != nil {
			log.Fatal(err)
		}
		r := col.Read()
		in := r.Counts["UNC_L3_LINES_IN_ANY"][0] // socket-leader column
		out := r.Counts["UNC_L3_LINES_OUT_ANY"][0]
		fmt.Printf("%-14s %14.3e %14.3e %12.2f %10.0f\n",
			variant, in, out, (in+out)*64/1e9, res.MLUPS)
	}

	fmt.Println("\nFig. 11 pinning hazard (N=300):")
	for _, c := range []struct {
		label     string
		placement jacobi.Placement
		variant   jacobi.Variant
	}{
		{"wavefront, one socket (correct)", jacobi.OneSocket, jacobi.Wavefront},
		{"wavefront, split pairs (wrong) ", jacobi.SplitPairs, jacobi.Wavefront},
		{"threaded NT baseline           ", jacobi.OneSocket, jacobi.ThreadedNT},
	} {
		res, err := jacobi.Run(jacobi.Config{
			Arch: arch, Variant: c.variant, Size: 300, Iters: 30,
			Threads: 4, Placement: c.placement,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s %8.0f MLUPS\n", c.label, res.MLUPS)
	}
	fmt.Println("\nWrong pinning drops the optimized code below the naive baseline —")
	fmt.Println("the shared L3 coupling only exists inside one socket.")

	// For reference, the counter -> event mapping in use (Fig. 2).
	node, _ := likwid.Open("nehalemEP")
	col, _, err := node.NewCollector([]int{0},
		"UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1", likwid.CollectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncounter assignment:")
	fmt.Print(indent(col.Describe()))
	_ = perfctr.Options{}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
