package monitor

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"likwid/internal/cli"
	"likwid/internal/telemetry"
)

// Sink receives metric batches.  Sinks are driven by a single dispatcher
// goroutine, so implementations need no internal locking against each
// other; Close flushes and releases resources.
type Sink interface {
	Name() string
	Write(b Batch) error
	Close() error
}

// Dispatcher fans batches out to sinks asynchronously through a bounded
// channel.  Publish never blocks the sampling path: when the channel is
// full the batch is dropped and counted — a slow sink costs data points,
// never timing.
type Dispatcher struct {
	// mu guards the closed flag and the channel send against a
	// concurrent Close: publishers hold it shared, Close exclusively, so
	// the channel can never be closed mid-send.
	mu      sync.RWMutex
	closed  bool
	ch      chan Batch
	sinks   []Sink
	dropped atomic.Uint64
	written atomic.Uint64
	errs    atomic.Uint64
	done    chan struct{}
	once    sync.Once

	logger atomic.Pointer[slog.Logger]
	// writeSeconds times each sink's Write, one histogram per sink name,
	// resolved at Instrument time (nil entries until then — the loop
	// checks, so an uninstrumented dispatcher pays one nil test).
	writeSeconds atomic.Pointer[map[string]*telemetry.Histogram]
}

// NewDispatcher starts the fan-out goroutine; buffer is the bounded queue
// depth (default 64 when <= 0).
func NewDispatcher(buffer int, sinks ...Sink) *Dispatcher {
	if buffer <= 0 {
		buffer = 64
	}
	d := &Dispatcher{
		ch:    make(chan Batch, buffer),
		sinks: sinks,
		done:  make(chan struct{}),
	}
	go d.loop()
	return d
}

func (d *Dispatcher) loop() {
	defer close(d.done)
	for b := range d.ch {
		hists := d.writeSeconds.Load()
		delivered := true
		for _, s := range d.sinks {
			var start time.Time
			if hists != nil {
				start = time.Now()
			}
			err := s.Write(b)
			if hists != nil {
				if h := (*hists)[s.Name()]; h != nil {
					h.Observe(time.Since(start).Seconds())
				}
			}
			if err != nil {
				d.errs.Add(1)
				delivered = false
				if log := d.logger.Load(); log != nil {
					log.Warn("sink write failed", "sink", s.Name(), "collector", b.Collector, "err", err)
				}
			}
		}
		if delivered {
			d.written.Add(1)
		}
	}
}

// Publish enqueues a batch without blocking; it reports false (and counts
// the drop) when the queue is full or the dispatcher is closed.
func (d *Dispatcher) Publish(b Batch) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		d.countDrop()
		return false
	}
	select {
	case d.ch <- b:
		return true
	default:
		d.countDrop()
		return false
	}
}

// countDrop counts one dropped batch and warns once — the first drop is
// the signal ("this sink cannot keep up"); every further drop is the
// same fact again, visible as the counter, not as log spam.
func (d *Dispatcher) countDrop() {
	if d.dropped.Add(1) == 1 {
		if log := d.logger.Load(); log != nil {
			log.Warn("sink queue full, dropping batches (counted, further drops not logged)",
				"capacity", cap(d.ch))
		}
	}
}

// SetLogger routes the dispatcher's drop and sink-failure warnings; nil
// (the default) keeps it silent, counters only.
func (d *Dispatcher) SetLogger(log *slog.Logger) { d.logger.Store(log) }

// QueueDepth reports the batches currently waiting in the bounded queue.
func (d *Dispatcher) QueueDepth() int { return len(d.ch) }

// QueueCap reports the bounded queue's capacity.
func (d *Dispatcher) QueueCap() int { return cap(d.ch) }

// Instrument registers the dispatcher's self-metrics on reg: queue
// occupancy gauges, drop/write/error counters, and one flush-latency
// histogram per attached sink.
func (d *Dispatcher) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("likwid_sink_queue_depth", func() float64 { return float64(len(d.ch)) })
	reg.GaugeFunc("likwid_sink_queue_capacity", func() float64 { return float64(cap(d.ch)) })
	reg.CounterFunc("likwid_sink_dropped_total", func() float64 { return float64(d.dropped.Load()) })
	reg.CounterFunc("likwid_sink_written_total", func() float64 { return float64(d.written.Load()) })
	reg.CounterFunc("likwid_sink_errors_total", func() float64 { return float64(d.errs.Load()) })
	hists := make(map[string]*telemetry.Histogram, len(d.sinks))
	for _, s := range d.sinks {
		if _, dup := hists[s.Name()]; dup {
			continue // two sinks of one kind share the histogram
		}
		hists[s.Name()] = reg.Histogram("likwid_sink_write_seconds", telemetry.DurationBuckets, "sink", s.Name())
	}
	d.writeSeconds.Store(&hists)
}

// Dropped counts batches rejected by the overflow policy.
func (d *Dispatcher) Dropped() uint64 { return d.dropped.Load() }

// Written counts batches delivered successfully to every sink.
func (d *Dispatcher) Written() uint64 { return d.written.Load() }

// SinkErrors counts individual sink write failures.
func (d *Dispatcher) SinkErrors() uint64 { return d.errs.Load() }

// Close drains the queue, closes every sink, and returns the first sink
// close error.
func (d *Dispatcher) Close() error {
	var err error
	d.once.Do(func() {
		d.mu.Lock()
		d.closed = true
		close(d.ch)
		d.mu.Unlock()
		<-d.done
		for _, s := range d.sinks {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// formatValue renders sample values identically in CSV and JSON lines, so
// the two file formats stay diffable against each other.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func formatTime(t float64) string { return strconv.FormatFloat(t, 'f', 6, 64) }

// ---- table sink -----------------------------------------------------------

// tableSink renders each batch as the suite's bordered ASCII table.
type tableSink struct {
	w      io.Writer
	scopes map[Scope]bool // nil = all scopes
}

// NewTableSink writes bordered tables to w; when scopes are given only
// samples of those domains are shown (the usual choice: socket + node).
func NewTableSink(w io.Writer, scopes ...Scope) Sink {
	ts := &tableSink{w: w}
	if len(scopes) > 0 {
		ts.scopes = map[Scope]bool{}
		for _, s := range scopes {
			ts.scopes[s] = true
		}
	}
	return ts
}

func (t *tableSink) Name() string { return "table" }

func (t *tableSink) Write(b Batch) error {
	// Fleet batches (any sample with a source) get a Source column,
	// labelled batches a Labels column; plain local batches keep the
	// compact four-column table.
	sourced, labelled := false, false
	for _, s := range b.Samples {
		if s.Source != "" {
			sourced = true
		}
		if !s.Labels.Empty() {
			labelled = true
		}
	}
	head := []string{"Metric", "Scope", "ID", "Value"}
	if labelled {
		head = append([]string{"Labels"}, head...)
	}
	if sourced {
		head = append([]string{"Source"}, head...)
	}
	tab := cli.NewTable(head...)
	rows := 0
	for _, s := range b.Samples {
		if t.scopes != nil && !t.scopes[s.Scope] {
			continue
		}
		row := []string{s.Metric, s.Scope.String(), strconv.Itoa(s.ID), cli.FormatMetric(s.Value)}
		if labelled {
			row = append([]string{s.Labels.String()}, row...)
		}
		if sourced {
			row = append([]string{s.Source}, row...)
		}
		tab.AddRow(row...)
		rows++
	}
	if rows == 0 {
		return nil
	}
	_, err := fmt.Fprintf(t.w, "%s t=%.3f s\n%s", b.Collector, b.Time, tab.String())
	return err
}

func (t *tableSink) Close() error { return nil }

// ---- CSV sink -------------------------------------------------------------

// csvSink appends one row per sample: time,collector,metric,scope,id,value.
// Streams carrying fleet samples (a source on any sample of the first
// non-empty batch) add a source column after collector, and labelled
// streams a labels column after that (the canonical "k=v,k=v" set,
// CSV-quoted); a local agent's file keeps the compact six-column schema.
type csvSink struct {
	name     string
	w        *bufio.Writer
	c        io.Closer
	head     bool
	sourced  bool
	labelled bool
}

// NewCSVSink writes CSV to w, closing c (which may be nil) on Close.
func NewCSVSink(w io.Writer, c io.Closer) Sink {
	return &csvSink{name: "csv", w: bufio.NewWriter(w), c: c}
}

func (s *csvSink) Name() string { return s.name }

func (s *csvSink) Write(b Batch) error {
	if !s.head {
		if len(b.Samples) == 0 {
			return nil // an empty batch must not fix the schema
		}
		s.head = true
		for _, sm := range b.Samples {
			if sm.Source != "" {
				s.sourced = true
			}
			if !sm.Labels.Empty() {
				s.labelled = true
			}
		}
		header := "time,collector"
		if s.sourced {
			header += ",source"
		}
		if s.labelled {
			header += ",labels"
		}
		header += ",metric,scope,id,value\n"
		if _, err := s.w.WriteString(header); err != nil {
			return err
		}
	}
	for _, sm := range b.Samples {
		row := formatTime(sm.Time) + "," + b.Collector
		if s.sourced {
			row += "," + sm.Source
		}
		if s.labelled {
			// The canonical set contains commas between pairs: CSV-quote
			// the cell so it stays one column.
			row += ","
			if ls := sm.Labels.String(); ls != "" {
				row += `"` + ls + `"`
			}
		}
		if _, err := fmt.Fprintf(s.w, "%s,%s,%s,%d,%s\n",
			row, sm.Metric, sm.Scope, sm.ID, formatValue(sm.Value)); err != nil {
			return err
		}
	}
	return s.w.Flush()
}

func (s *csvSink) Close() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// ---- JSON-lines sink ------------------------------------------------------

type jsonlSink struct {
	w *bufio.Writer
	c io.Closer
}

// NewJSONLSink writes one JSON object per sample to w, closing c (which
// may be nil) on Close.
func NewJSONLSink(w io.Writer, c io.Closer) Sink {
	return &jsonlSink{w: bufio.NewWriter(w), c: c}
}

// jsonSample fixes the field order of the line protocol — the v3 wire
// schema shared by the jsonl file sink and the push→ingest pipeline.
// Source is the measuring agent's identity as its own field; the
// receiver stores it as Key.Source, so two agents emitting the same
// group stay distinct series without any metric-name mangling.  (The
// legacy v1 form smuggled the source as a "SOURCE/metric" prefix; the
// ingest endpoint still accepts it through the SplitSourceMetric shim.)
// Labels is the v3 addition: the sample's structured label set as a
// JSON object, omitted when empty — so a v2 record is exactly a v3
// record with no labels, and old payloads land on unchanged keys.
// SentAt is the push sink's wall-clock enqueue time in Unix seconds,
// omitted when zero: receivers subtract it from their own clock to
// histogram wire+queue latency and clock skew per source, and records
// without it (file sinks, old agents, hand-rolled payloads) decode
// exactly as before.
type jsonSample struct {
	Time      float64           `json:"time"`
	SentAt    float64           `json:"sent_at,omitempty"`
	Collector string            `json:"collector"`
	Source    string            `json:"source,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
	Metric    string            `json:"metric"`
	Scope     string            `json:"scope"`
	ID        int               `json:"id"`
	Value     float64           `json:"value"`
}

func (s *jsonlSink) Name() string { return "jsonl" }

func (s *jsonlSink) Write(b Batch) error {
	enc := json.NewEncoder(s.w)
	// Reuse one wire map per run of samples sharing an interned label
	// set (the encoder only reads it).
	var (
		lastLs  Labels
		lastMap map[string]string
	)
	for _, sm := range b.Samples {
		if sm.Labels != lastLs || lastMap == nil {
			lastLs, lastMap = sm.Labels, sm.Labels.Map()
		}
		err := enc.Encode(jsonSample{
			Time:      sm.Time,
			Collector: b.Collector,
			Source:    sm.Source,
			Labels:    lastMap,
			Metric:    sm.Metric,
			Scope:     sm.Scope.String(),
			ID:        sm.ID,
			Value:     sm.Value,
		})
		if err != nil {
			return err
		}
	}
	return s.w.Flush()
}

func (s *jsonlSink) Close() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// ---- sink spec parsing ----------------------------------------------------

// ParseSink builds a sink from an agent -sink specification:
//
//	stdout               bordered tables (socket + node scopes) on stdout
//	csv:PATH             CSV file, one row per sample
//	jsonl:PATH           JSON lines file, one object per sample
//	http:ADDR            in-process HTTP server (e.g. http::8090) serving
//	                     /metrics, /query and /ingest from the store
//	push:URL             batch, gzip and POST samples to a remote
//	                     receiver's /ingest endpoint (push:host:port or
//	                     push:http://host:port/ingest)
//	pushv4:URL           like push, but on the v4 binary columnar wire —
//	                     the receiver must understand its Content-Type
//	                     (upgrade receivers before agents)
//
// The store parameter backs the HTTP sink's /query and /ingest endpoints
// and may be nil for the file and push sinks.  The context bounds the
// push sink's retry backoff (the agent's shutdown path); nil means never
// cancelled.
func ParseSink(ctx context.Context, spec string, store *Store) (Sink, error) {
	if err := ValidateSinkSpec(spec); err != nil {
		return nil, err
	}
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "stdout", "table":
		return NewTableSink(os.Stdout, ScopeSocket, ScopeNode), nil
	case "csv", "jsonl":
		f, err := os.Create(arg)
		if err != nil {
			return nil, fmt.Errorf("monitor: sink %q: %w", spec, err)
		}
		if kind == "csv" {
			return NewCSVSink(f, f), nil
		}
		return NewJSONLSink(f, f), nil
	case "http":
		return NewHTTPSink(arg, store)
	default: // "push"/"pushv4", already validated
		url, _ := normalizePushURL(arg)
		format := WireJSON
		if kind == "pushv4" {
			format = WireV4
		}
		return NewPushSink(PushOptions{URL: url, Source: defaultPushSource(), Context: ctx, Format: format})
	}
}

// normalizePushURL fills in the scheme and /ingest path a bare
// "push:host:port" spec leaves out.
func normalizePushURL(arg string) (string, error) {
	if arg == "" {
		return "", fmt.Errorf("push sink needs a receiver URL (push:HOST:PORT or push:http://HOST:PORT/ingest)")
	}
	if strings.Contains(arg, ",") {
		return "", fmt.Errorf("push sink URL %q holds several targets; multi-target pools (shard@, mirror@, failover@) are cluster sink specs (internal/monitor/cluster)", arg)
	}
	if !strings.Contains(arg, "://") {
		arg = "http://" + arg
	}
	scheme, rest, _ := strings.Cut(arg, "://")
	if scheme != "http" && scheme != "https" {
		return "", fmt.Errorf("push sink URL must be http or https, got %q", scheme)
	}
	if rest == "" || strings.HasPrefix(rest, "/") {
		return "", fmt.Errorf("push sink URL %q has no host", arg)
	}
	if !strings.Contains(rest, "/") {
		arg += "/ingest"
	}
	return arg, nil
}

// NormalizePushURL is the exported form of the push-spec URL
// normalization, shared with the cluster sink's multi-target specs so
// one grammar ("host:port" or a full http(s) URL, /ingest defaulted)
// cannot drift between the single- and multi-target paths.
func NormalizePushURL(arg string) (string, error) { return normalizePushURL(arg) }

// ValidateSinkSpec checks a -sink specification's shape without side
// effects (no files created, no sockets bound), so agent configuration
// can fail fast before any collector comes up.  ParseSink runs it first,
// keeping the two in lockstep.
func ValidateSinkSpec(spec string) error {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "stdout", "table":
		return nil
	case "csv", "jsonl":
		if arg == "" {
			return fmt.Errorf("monitor: sink %q needs a file path (%s:PATH)", spec, kind)
		}
		return nil
	case "http":
		if arg == "" {
			return fmt.Errorf("monitor: sink %q needs a listen address (http:HOST:PORT)", spec)
		}
		return nil
	case "push", "pushv4":
		if _, err := normalizePushURL(arg); err != nil {
			return fmt.Errorf("monitor: sink %q: %w", spec, err)
		}
		return nil
	default:
		return fmt.Errorf("monitor: unknown sink kind %q (stdout, csv:PATH, jsonl:PATH, http:ADDR, push:URL, pushv4:URL)", spec)
	}
}

// DefaultPushSource identifies this agent process at a receiver
// (hostname-pid), so two agents pushing the same metric names stay
// distinct series.  The cluster sink and the receiver's -forward re-push
// use the same identity rule, so a series keeps one source per
// originating process however many hops it crosses.
func DefaultPushSource() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "agent"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// defaultPushSource is kept as the internal spelling.
func defaultPushSource() string { return DefaultPushSource() }
