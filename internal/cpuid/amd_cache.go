package cpuid

import "likwid/internal/hwdef"

// AMD cache descriptor leaves 0x80000005 (L1) and 0x80000006 (L2/L3).
//
// Leaf 0x80000005:
//
//	ECX = L1D: [31:24] size KiB, [23:16] associativity, [15:8] lines/tag, [7:0] line size
//	EDX = L1I: same layout
//
// Leaf 0x80000006:
//
//	ECX = L2: [31:16] size KiB, [15:12] assoc (encoded), [11:8] lines/tag, [7:0] line size
//	EDX = L3: [31:18] size / 512 KiB, [15:12] assoc (encoded), [7:0] line size

// amdAssocEncode maps a ways count to the 4-bit AMD associativity field.
var amdAssocEncode = map[int]uint32{
	1: 0x1, 2: 0x2, 4: 0x4, 6: 0x5, 8: 0x6, 16: 0x8,
	32: 0xA, 48: 0xB, 64: 0xC, 96: 0xD, 128: 0xE,
}

// AMDAssocDecode is the inverse mapping used by the topology decoder.
var AMDAssocDecode = map[uint32]int{}

func init() {
	for ways, enc := range amdAssocEncode {
		AMDAssocDecode[enc] = ways
	}
}

func (c *CPU) cacheOf(level int, typ hwdef.CacheType) (hwdef.CacheLevel, bool) {
	for _, cl := range c.Arch.Caches {
		if cl.Level == level && cl.Type == typ {
			return cl, true
		}
	}
	return hwdef.CacheLevel{}, false
}

func (c *CPU) amdL1() Regs {
	var regs Regs
	if d, ok := c.cacheOf(1, hwdef.DataCache); ok {
		regs.ECX = uint32(d.SizeKB)<<24 | uint32(d.Assoc)<<16 | 1<<8 | uint32(d.LineSize)
	}
	if i, ok := c.cacheOf(1, hwdef.InstructionCache); ok {
		regs.EDX = uint32(i.SizeKB)<<24 | uint32(i.Assoc)<<16 | 1<<8 | uint32(i.LineSize)
	}
	return regs
}

func (c *CPU) amdL2L3() Regs {
	var regs Regs
	if l2, ok := c.cacheOf(2, hwdef.UnifiedCache); ok {
		regs.ECX = uint32(l2.SizeKB)<<16 | amdAssocEncode[l2.Assoc]<<12 | uint32(l2.LineSize)
	}
	if l3, ok := c.cacheOf(3, hwdef.UnifiedCache); ok {
		units := uint32(l3.SizeKB / 512)
		regs.EDX = units<<18 | amdAssocEncode[l3.Assoc]<<12 | uint32(l3.LineSize)
	}
	return regs
}
