// Package msr simulates the Linux "msr" kernel module: one device file per
// hardware thread through which model-specific registers are read and
// written, exactly how likwid-perfCtr and likwid-features program real
// hardware (the paper, §II-A: "likwid-perfCtr uses the Linux msr module to
// modify the MSRs from user space").
//
// The register map per architecture mirrors the silicon:
//
//   - Intel core counters: IA32_PERFEVTSELx/IA32_PMCx, the fixed counters
//     IA32_FIXED_CTRx with IA32_FIXED_CTR_CTRL, IA32_PERF_GLOBAL_CTRL, and
//     IA32_MISC_ENABLE (prefetcher and feature control).
//   - Nehalem/Westmere uncore: a per-socket block (MSR_UNCORE_*) that is
//     shared state — every core of a socket sees the same uncore registers.
//     That sharing is what makes socket locks necessary in perfctr.
//   - AMD: four PERFEVTSEL/PERFCTR pairs in the 0xC001_00xx range; on K10
//     the northbridge counters are likewise a per-socket shared block.
package msr

import (
	"fmt"
	"sync"

	"likwid/internal/hwdef"
)

// Register addresses (Intel SDM / AMD BKDG numbering).
const (
	IA32PerfEvtSel0   = 0x186
	IA32PMC0          = 0x0C1
	IA32FixedCtr0     = 0x309
	IA32FixedCtrCtrl  = 0x38D
	IA32PerfGlobalCtl = 0x38F
	IA32MiscEnable    = 0x1A0

	UncGlobalCtl  = 0x391
	UncPerfEvtSel = 0x3C0
	UncPMC        = 0x3B0

	AMDPerfEvtSel0 = 0xC0010000
	AMDPMC0        = 0xC0010004
)

// CounterMask keeps counters at the architectural 48-bit width.
const CounterMask = (uint64(1) << 48) - 1

// Event-select register fields (common Intel/AMD layout).
const (
	EvtselUsr    = 1 << 16
	EvtselOS     = 1 << 17
	EvtselEnable = 1 << 22
)

// EvtselEncode builds an event-select value for (code, umask) counting in
// user and kernel mode with the enable bit set.
func EvtselEncode(code uint16, umask uint8) uint64 {
	return uint64(code&0xFF) | uint64(umask)<<8 | EvtselUsr | EvtselOS | EvtselEnable
}

// EvtselFields unpacks an event-select register value.
func EvtselFields(v uint64) (code uint16, umask uint8, enabled bool) {
	return uint16(v & 0xFF), uint8(v >> 8 & 0xFF), v&EvtselEnable != 0
}

// Device is one /dev/cpu/N/msr analogue.  All methods are safe for
// concurrent use.
type Device struct {
	cpu  int
	mu   *sync.Mutex // socket-wide lock: uncore registers are shared
	regs map[uint32]*uint64
}

// Space is the MSR register space of a whole node.
type Space struct {
	arch *hwdef.Arch
	devs []*Device
}

// NewSpace builds the register space for an architecture, with per-socket
// shared storage behind the uncore addresses.
func NewSpace(a *hwdef.Arch) *Space {
	s := &Space{arch: a}

	// Per-socket shared banks and locks.
	uncoreBanks := make([]map[uint32]*uint64, a.Sockets)
	sockLocks := make([]*sync.Mutex, a.Sockets)
	for sk := 0; sk < a.Sockets; sk++ {
		sockLocks[sk] = new(sync.Mutex)
		bank := make(map[uint32]*uint64)
		if a.NumUncore > 0 {
			bank[UncGlobalCtl] = new(uint64)
			for i := 0; i < a.NumUncore; i++ {
				bank[UncPerfEvtSel+uint32(i)] = new(uint64)
				bank[UncPMC+uint32(i)] = new(uint64)
			}
		}
		uncoreBanks[sk] = bank
	}

	n := a.HWThreads()
	s.devs = make([]*Device, n)
	for cpu := 0; cpu < n; cpu++ {
		// OS processor IDs enumerate socket-major within one SMT layer:
		// derive the socket the same way apic.Enumerate assigns it.
		socket := (cpu / a.CoresPerSocket) % a.Sockets
		regs := make(map[uint32]*uint64)
		switch a.Vendor {
		case hwdef.Intel:
			for i := 0; i < a.NumPMC; i++ {
				regs[IA32PerfEvtSel0+uint32(i)] = new(uint64)
				regs[IA32PMC0+uint32(i)] = new(uint64)
			}
			if a.HasFixedCtr {
				for i := 0; i < 3; i++ {
					regs[IA32FixedCtr0+uint32(i)] = new(uint64)
				}
				regs[IA32FixedCtrCtrl] = new(uint64)
			}
			ctl := new(uint64)
			regs[IA32PerfGlobalCtl] = ctl
			misc := new(uint64)
			*misc = defaultMiscEnable
			regs[IA32MiscEnable] = misc
		case hwdef.AMD:
			for i := 0; i < a.NumPMC; i++ {
				regs[AMDPerfEvtSel0+uint32(i)] = new(uint64)
				regs[AMDPMC0+uint32(i)] = new(uint64)
			}
		}
		for addr, p := range uncoreBanks[socket] {
			regs[addr] = p
		}
		s.devs[cpu] = &Device{cpu: cpu, mu: sockLocks[socket], regs: regs}
	}
	return s
}

// Default IA32_MISC_ENABLE: prefetcher-disable bits clear (prefetchers on),
// fast strings, automatic thermal control, perfmon available, Enhanced
// SpeedStep and MONITOR/MWAIT enabled — the state the likwid-features
// listing in the paper shows.
const defaultMiscEnable = 1<<0 | 1<<3 | 1<<7 | 1<<16 | 1<<18

// Open returns the device of one hardware thread, like opening
// /dev/cpu/<cpu>/msr.
func (s *Space) Open(cpu int) (*Device, error) {
	if cpu < 0 || cpu >= len(s.devs) {
		return nil, fmt.Errorf("msr: no such device /dev/cpu/%d/msr", cpu)
	}
	return s.devs[cpu], nil
}

// NumCPUs returns the number of device files in the space.
func (s *Space) NumCPUs() int { return len(s.devs) }

// CPU returns the processor ID this device belongs to.
func (d *Device) CPU() int { return d.cpu }

// Read returns the value of a register, failing for unimplemented addresses
// exactly as a real pread on the msr device would fail with EIO.
func (d *Device) Read(reg uint32) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.regs[reg]
	if !ok {
		return 0, fmt.Errorf("msr: cpu %d: read of unimplemented register %#x", d.cpu, reg)
	}
	return *p, nil
}

// Write stores a value into a register.
func (d *Device) Write(reg uint32, v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.regs[reg]
	if !ok {
		return fmt.Errorf("msr: cpu %d: write of unimplemented register %#x", d.cpu, reg)
	}
	*p = v
	return nil
}

// Add increments a counter register, wrapping at the architectural width.
// The machine's event engine is the only caller.
func (d *Device) Add(reg uint32, delta uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.regs[reg]
	if !ok {
		return fmt.Errorf("msr: cpu %d: increment of unimplemented register %#x", d.cpu, reg)
	}
	*p = (*p + delta) & CounterMask
	return nil
}

// SetBits ORs mask into a register; ClearBits removes it.  Used by
// likwid-features for the prefetcher-control bits.
func (d *Device) SetBits(reg uint32, mask uint64) error {
	v, err := d.Read(reg)
	if err != nil {
		return err
	}
	return d.Write(reg, v|mask)
}

// ClearBits clears the bits in mask.
func (d *Device) ClearBits(reg uint32, mask uint64) error {
	v, err := d.Read(reg)
	if err != nil {
		return err
	}
	return d.Write(reg, v&^mask)
}
