package derive

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"likwid/internal/monitor"
)

func TestParseRuleForms(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want Rule
	}{
		{
			name: "issue example",
			in:   `cluster_flops = sum(flops_dp{cluster="emmy"}) by (source) over 30s every 10s`,
			want: Rule{
				Name: "cluster_flops", Fn: FnSum, Metric: "flops_dp",
				Matchers: []monitor.Label{{Name: "cluster", Value: "emmy"}},
				Scope:    monitor.ScopeNode, By: []string{"source"},
				Over: 30, Every: 10 * time.Second,
			},
		},
		{
			name: "scoped selector",
			in:   `fleet_bw = avg(memory_bandwidth_mbytes_s, socket) over 1m`,
			want: Rule{
				Name: "fleet_bw", Fn: FnAvg, Metric: "memory_bandwidth_mbytes_s",
				Scope: monitor.ScopeSocket, Over: 60,
			},
		},
		{
			name: "source wildcard and label group",
			in:   `job_nodes = count(node*/dp_mflops_s) by (job, partition) over 30s`,
			want: Rule{
				Name: "job_nodes", Fn: FnCount, Source: "node*", Metric: "dp_mflops_s",
				Scope: monitor.ScopeNode, By: []string{"job", "partition"}, Over: 30,
			},
		},
		{
			name: "quoted metric with spaces",
			in:   `ramp = rate("DP MFlops/s") over 90s`,
			want: Rule{
				Name: "ramp", Fn: FnRate, Metric: "DP MFlops/s",
				Scope: monitor.ScopeNode, Over: 90,
			},
		},
		{
			name: "min and max",
			in:   `floor = min(*/bw) over 10s`,
			want: Rule{
				Name: "floor", Fn: FnMin, Source: "*", Metric: "bw",
				Scope: monitor.ScopeNode, Over: 10,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := ParseRule(tt.in, 1)
			if err != nil {
				t.Fatal(err)
			}
			tt.want.Line = 1
			if !reflect.DeepEqual(*r, tt.want) {
				t.Fatalf("rule = %+v, want %+v", *r, tt.want)
			}
		})
	}
}

func TestParseRuleRoundTrip(t *testing.T) {
	ins := []string{
		`cluster_flops = sum(flops_dp{cluster="emmy"}) by (source) over 30s every 10s`,
		`fleet_bw = avg(memory_bandwidth_mbytes_s, socket) over 1m`,
		`job_nodes = count(node*/dp_mflops_s) by (job, partition) over 30s`,
		`ramp = rate("DP MFlops/s") over 1m30s`,
	}
	for _, in := range ins {
		r, err := ParseRule(in, 1)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		rendered := r.String()
		r2, err := ParseRule(rendered, 1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		if r2.String() != rendered {
			t.Errorf("round trip diverged:\n  first  %q\n  second %q", rendered, r2.String())
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	tests := []struct {
		in   string
		frag string // expected error fragment
	}{
		{``, "expected rule name"},
		{`x y`, `expected "="`},
		{`x = frob(bw) over 30s`, "unknown function"},
		{`x = sum() over 30s`, "expected a metric selector"},
		{`x = sum(bw, galaxy) over 30s`, "bad scope"},
		{`x = sum(bw) over`, "expected window"},
		{`x = sum(bw) over 0s`, "must be positive"},
		{`x = sum(bw) by () over 30s`, "expected a grouping dimension"},
		{`x = sum(bw) by (scope) over 30s`, "reserved"},
		{`x = sum(bw) by (job, job) over 30s`, "duplicate grouping"},
		{`x = sum(bw) by (9bad) over 30s`, "bad grouping label"},
		{`x = sum(bw) over 30s every`, "expected evaluation"},
		{`x = sum(bw) over 30s nonsense`, `unexpected "nonsense"`},
		{`x = sum(bw) over 30s every 10s trailing`, "unexpected trailing"},
		{`route = sum(bw) over 30s`, "routing keyword"},
		{`x = sum(bw{source="a"}) over 30s`, "reserved"},
	}
	for _, tt := range tests {
		_, err := ParseRule(tt.in, 3)
		if err == nil {
			t.Errorf("%q: parsed, want error containing %q", tt.in, tt.frag)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("%q: error %q, want fragment %q", tt.in, err, tt.frag)
		}
		if !strings.HasPrefix(err.Error(), "derive: line 3:") {
			t.Errorf("%q: error %q lacks the derive line prefix", tt.in, err)
		}
	}
}

func TestParseFileRulesAndRoutes(t *testing.T) {
	src := `
# cluster roll-ups
cluster_flops = sum(flops_dp) by (source) over 30s

route drop */cpu_temp*
route rename */DP_MFLOPS -> flops_dp
route relabel node*/flops_dp{job="lbm"} set cluster="emmy", rack=""

fleet_nodes = count(*/flops_dp) over 30s every 5s
`
	rules, routes, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "cluster_flops" || rules[1].Name != "fleet_nodes" {
		t.Fatalf("rules = %+v, want cluster_flops + fleet_nodes", rules)
	}
	if len(routes) != 3 {
		t.Fatalf("routes = %+v, want 3", routes)
	}
	if routes[0].Action != monitor.RouteDrop || routes[0].Source != "*" || routes[0].Metric != "cpu_temp*" {
		t.Errorf("drop route = %+v", routes[0])
	}
	if routes[1].Action != monitor.RouteRename || routes[1].NewMetric != "flops_dp" {
		t.Errorf("rename route = %+v", routes[1])
	}
	rl := routes[2]
	if rl.Action != monitor.RouteRelabel || len(rl.Set) != 2 ||
		rl.Set[0] != (monitor.Label{Name: "cluster", Value: "emmy"}) ||
		rl.Set[1] != (monitor.Label{Name: "rack", Value: ""}) {
		t.Errorf("relabel route = %+v", rl)
	}
	if len(rl.Matchers) != 1 || rl.Matchers[0] != (monitor.Label{Name: "job", Value: "lbm"}) {
		t.Errorf("relabel matchers = %+v", rl.Matchers)
	}
	// Route specs round-trip through the renderer.
	for _, route := range routes {
		_, reparsed, err := ParseFile(route.Spec)
		if err != nil {
			t.Fatalf("re-parse %q: %v", route.Spec, err)
		}
		if len(reparsed) != 1 || reparsed[0].Spec != route.Spec {
			t.Errorf("route round trip diverged: %q vs %+v", route.Spec, reparsed)
		}
	}
}

func TestParseFileDuplicateRule(t *testing.T) {
	_, _, err := ParseFile("x = sum(bw) over 30s\nx = avg(bw) over 30s\n")
	if err == nil || !strings.Contains(err.Error(), "already defined") {
		t.Fatalf("duplicate rule err = %v", err)
	}
}

func TestParseRouteErrors(t *testing.T) {
	tests := []struct {
		in   string
		frag string
	}{
		{`route squash bw`, "unknown route action"},
		{`route drop`, "expected a metric selector"},
		{`route rename bw`, `expected "->"`},
		{`route rename bw -> `, "expected the new metric name"},
		{`route rename bw -> new*`, "must be literal"},
		{`route rename bw -> "alert/x"`, "reserved"},
		{`route relabel bw`, `expected "set`},
		{`route relabel bw set`, "expected a label name"},
		{`route relabel bw set source="x"`, "reserved"},
		{`route relabel bw set job="a,b"`, "bad value"},
		{`route drop bw trailing`, "unexpected trailing"},
	}
	for _, tt := range tests {
		_, _, err := ParseFile(tt.in)
		if err == nil {
			t.Errorf("%q: parsed, want error containing %q", tt.in, tt.frag)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("%q: error %q, want fragment %q", tt.in, err, tt.frag)
		}
	}
}

func TestRuleMatches(t *testing.T) {
	lbm, _ := monitor.MakeLabels(map[string]string{"job": "lbm"})
	r := &Rule{Name: "out", Fn: FnSum, Metric: "bw", Scope: monitor.ScopeNode, Over: 30}
	derived := map[string]bool{"out": true, "other_out": true}

	if !r.Matches(monitor.Key{Source: "nodeA", Metric: "bw", Scope: monitor.ScopeNode}, derived) {
		t.Error("omitted source must match remote series (fleet roll-up)")
	}
	if !r.Matches(monitor.Key{Metric: "bw", Scope: monitor.ScopeNode, Labels: lbm}, derived) {
		t.Error("omitted source must match local series too")
	}
	if r.Matches(monitor.Key{Metric: "out", Scope: monitor.ScopeNode}, derived) {
		t.Error("a rule must not match its own output")
	}
	if r.Matches(monitor.Key{Metric: "bw", Scope: monitor.ScopeSocket}, derived) {
		t.Error("scope mismatch must not match")
	}

	wild := &Rule{Name: "sweep", Fn: FnCount, Metric: "*", Scope: monitor.ScopeNode, Over: 30}
	if wild.Matches(monitor.Key{Metric: "alert/mem_bw_low", Scope: monitor.ScopeNode}, derived) {
		t.Error("wildcard must not match alert histories")
	}
	if wild.Matches(monitor.Key{Metric: "other_out", Scope: monitor.ScopeNode}, derived) {
		t.Error("wildcard must not match other rules' outputs")
	}
	chain := &Rule{Name: "c", Fn: FnRate, Metric: "other_out", Scope: monitor.ScopeNode, Over: 30}
	if !chain.Matches(monitor.Key{Metric: "other_out", Scope: monitor.ScopeNode}, derived) {
		t.Error("an explicit name must match another rule's output (chaining)")
	}
}
