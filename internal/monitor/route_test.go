package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"likwid/internal/telemetry"
)

func routeBatch() ([]Sample, []map[string]string, []float64) {
	samples := []Sample{
		{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Time: 1, Value: 10},
		{Source: "nodeA", Metric: "noise", Scope: ScopeNode, Time: 1, Value: 1},
		{Source: "nodeB", Metric: "bw_old", Scope: ScopeNode, Time: 1, Value: 20},
	}
	labelMaps := []map[string]string{
		{"job": "lbm"},
		{"job": "lbm"},
		nil,
	}
	return samples, labelMaps, []float64{1, 2, 3}
}

func TestRouterDrop(t *testing.T) {
	r := NewRouter([]IngestRoute{{Metric: "noise", Action: RouteDrop, Spec: "route drop noise"}})
	samples, labelMaps, sentAts := routeBatch()
	samples, labelMaps, sentAts, err := r.Apply(samples, labelMaps, sentAts)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || len(labelMaps) != 2 || len(sentAts) != 2 {
		t.Fatalf("want 2 samples after drop, got %d", len(samples))
	}
	for _, s := range samples {
		if s.Metric == "noise" {
			t.Fatalf("dropped metric still present: %+v", s)
		}
	}
	// The parallel slices must stay aligned: nodeB's sent_at is 3.
	if samples[1].Source != "nodeB" || sentAts[1] != 3 {
		t.Fatalf("slices misaligned after drop: %+v sentAt=%v", samples[1], sentAts[1])
	}
	if st := r.Statuses(); len(st) != 1 || st[0].Matched != 1 || st[0].Action != "drop" {
		t.Fatalf("bad route status: %+v", st)
	}
}

func TestRouterRename(t *testing.T) {
	r := NewRouter([]IngestRoute{{Metric: "bw_old", Action: RouteRename, NewMetric: "bw"}})
	samples, labelMaps, sentAts := routeBatch()
	samples, _, _, err := r.Apply(samples, labelMaps, sentAts)
	if err != nil {
		t.Fatal(err)
	}
	if samples[2].Metric != "bw" {
		t.Fatalf("rename did not apply: %+v", samples[2])
	}
	if samples[0].Metric != "bw" || samples[1].Metric != "noise" {
		t.Fatalf("rename touched non-matching samples: %+v", samples[:2])
	}
}

func TestRouterRelabelCopiesSharedMaps(t *testing.T) {
	shared := map[string]string{"job": "lbm"}
	samples := []Sample{
		{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Time: 1, Value: 10},
		{Source: "nodeB", Metric: "bw", Scope: ScopeNode, Time: 1, Value: 20},
	}
	labelMaps := []map[string]string{shared, shared} // v4 decode shares maps
	r := NewRouter([]IngestRoute{{
		Source: "nodeA", Metric: "bw", Action: RouteRelabel,
		Set: []Label{{Name: "cluster", Value: "emmy"}, {Name: "job", Value: ""}},
	}})
	_, labelMaps, _, err := r.Apply(samples, labelMaps, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := labelMaps[0]; got["cluster"] != "emmy" || got["job"] != "" {
		t.Fatalf("relabel did not apply: %v", got)
	}
	if got := labelMaps[1]; got["cluster"] != "" || got["job"] != "lbm" {
		t.Fatalf("relabel mutated the shared map of a non-matching sample: %v", got)
	}
	if shared["cluster"] != "" {
		t.Fatalf("relabel mutated the shared wire map in place: %v", shared)
	}
}

func TestRouterOrderAndChaining(t *testing.T) {
	// A rename feeds later routes: bw_old -> bw, then bw is retagged.
	r := NewRouter([]IngestRoute{
		{Metric: "bw_old", Action: RouteRename, NewMetric: "bw"},
		{Metric: "bw", Action: RouteRelabel, Set: []Label{{Name: "cluster", Value: "emmy"}}},
	})
	samples, labelMaps, sentAts := routeBatch()
	samples, labelMaps, _, err := r.Apply(samples, labelMaps, sentAts)
	if err != nil {
		t.Fatal(err)
	}
	if samples[2].Metric != "bw" || labelMaps[2]["cluster"] != "emmy" {
		t.Fatalf("chained routes did not apply: %+v labels=%v", samples[2], labelMaps[2])
	}
}

func TestRouterMatchDimensions(t *testing.T) {
	// Source wildcard + label matcher + sanitized metric matching.
	r := NewRouter([]IngestRoute{{
		Source: "node*", Metric: "memory_bandwidth_mbytes_s",
		Matchers: []Label{{Name: "job", Value: "l*"}},
		Action:   RouteDrop,
	}})
	samples := []Sample{
		{Source: "nodeA", Metric: "Memory bandwidth [MBytes/s]", Scope: ScopeNode, Time: 1, Value: 1},
		{Source: "nodeA", Metric: "Memory bandwidth [MBytes/s]", Scope: ScopeNode, Time: 1, Value: 1},
		{Source: "rack1", Metric: "Memory bandwidth [MBytes/s]", Scope: ScopeNode, Time: 1, Value: 1},
	}
	labelMaps := []map[string]string{{"job": "lbm"}, {"job": "xhpl"}, {"job": "lbm"}}
	samples, _, _, err := r.Apply(samples, labelMaps, make([]float64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("want 2 survivors (wrong job, wrong source), got %d", len(samples))
	}
}

func TestRouterRelabelOverCapRejects(t *testing.T) {
	var set []Label
	for i := 0; i < maxLabels; i++ {
		set = append(set, Label{Name: fmt.Sprintf("l%02d", i), Value: "x"})
	}
	r := NewRouter([]IngestRoute{{Metric: "bw", Action: RouteRelabel, Set: set, Spec: "route relabel bw set ..."}})
	samples := []Sample{{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Time: 1, Value: 1}}
	labelMaps := []map[string]string{{"job": "lbm"}} // 1 + maxLabels > maxLabels
	if _, _, _, err := r.Apply(samples, labelMaps, []float64{0}); err == nil {
		t.Fatal("over-cap relabel accepted")
	}
}

func TestRouterInstrument(t *testing.T) {
	reg := telemetry.New()
	r := NewRouter([]IngestRoute{{Metric: "noise", Action: RouteDrop}})
	r.Instrument(reg)
	samples, labelMaps, sentAts := routeBatch()
	if _, _, _, err := r.Apply(samples, labelMaps, sentAts); err != nil {
		t.Fatal(err)
	}
	// Reload: a fresh Router re-instruments onto the same registry
	// counters (identity dedup), so fleet totals survive route reloads.
	r2 := NewRouter([]IngestRoute{{Metric: "noise", Action: RouteDrop}})
	r2.Instrument(reg)
	samples, labelMaps, sentAts = routeBatch()
	if _, _, _, err := r2.Apply(samples, labelMaps, sentAts); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("likwid_ingest_routed_total", "action", "drop").Value(); got != 2 {
		t.Fatalf("routed counter = %d, want 2 across reload", got)
	}
}

// TestIngestRouting drives the routing stage through the real /ingest
// handler: a drop, a rename and a relabel route reshape a pushed batch
// before it reaches the store, and the response accounts only for the
// survivors.
func TestIngestRouting(t *testing.T) {
	h, store := newTestHTTPSink(t)
	h.SetRouter(NewRouter([]IngestRoute{
		{Metric: "noise", Action: RouteDrop},
		{Metric: "bw_old", Action: RouteRename, NewMetric: "bw"},
		{Metric: "bw", Action: RouteRelabel, Set: []Label{{Name: "cluster", Value: "emmy"}}},
	}))
	payload := []byte(`{"source":"nodeA","metric":"noise","scope":"node","id":0,"time":1,"value":1}
{"source":"nodeA","metric":"bw_old","scope":"node","id":0,"time":1,"value":10}
`)
	code, body := postIngest(t, "http://"+h.Addr(), payload, false)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d %q", code, body)
	}
	var resp ingestResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1 (drop excluded)", resp.Accepted)
	}
	keys := store.Keys()
	if len(keys) != 1 {
		t.Fatalf("store keys = %+v, want exactly the renamed+retagged series", keys)
	}
	k := keys[0]
	if k.Metric != "bw" {
		t.Errorf("metric = %q, want renamed \"bw\"", k.Metric)
	}
	if v, ok := k.Labels.Get("cluster"); !ok || v != "emmy" {
		t.Errorf("labels = %v, want cluster=emmy from the relabel route", k.Labels.Map())
	}
	// SetRouter(nil) removes the stage: the dropped metric now lands.
	h.SetRouter(nil)
	noise := []byte(`{"source":"nodeA","metric":"noise","scope":"node","id":0,"time":2,"value":1}` + "\n")
	if code, body := postIngest(t, "http://"+h.Addr(), noise, false); code != http.StatusOK {
		t.Fatalf("unrouted ingest = %d %q", code, body)
	}
	if n := len(store.Keys()); n != 2 {
		t.Fatalf("store has %d series after removing the router, want 2", n)
	}
}

// TestQueryMetricWildcard covers the /query metric '*' suffix-wildcard:
// one response entry per matching series, fanning out across sources by
// default, composable with source= and label selectors.
func TestQueryMetricWildcard(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	lbm, _ := MakeLabels(map[string]string{"job": "lbm"})
	store.Append(Key{Source: "nodeA", Metric: "cluster_flops", Scope: ScopeNode, Labels: lbm}, Point{Time: 1, Value: 1})
	store.Append(Key{Source: "nodeB", Metric: "cluster_bw", Scope: ScopeNode}, Point{Time: 1, Value: 2})
	store.Append(Key{Source: "nodeB", Metric: "other", Scope: ScopeNode}, Point{Time: 1, Value: 3})

	// Family wildcard, no source: fans out across the fleet.
	code, body := get(t, base+"/query?metric=cluster_*&scope=node")
	if code != http.StatusOK {
		t.Fatalf("/query metric=cluster_* status %d: %s", code, body)
	}
	var many querySeriesResponse
	if err := json.Unmarshal([]byte(body), &many); err != nil {
		t.Fatal(err)
	}
	if len(many.Series) != 2 {
		t.Fatalf("metric=cluster_* returned %d series, want 2: %s", len(many.Series), body)
	}
	for _, s := range many.Series {
		if s.Metric != "cluster_flops" && s.Metric != "cluster_bw" {
			t.Errorf("unexpected series %+v", s)
		}
	}

	// Composed with an exact source.
	code, body = get(t, base+"/query?metric=cluster_*&scope=node&source=nodeA")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &many); err != nil {
		t.Fatal(err)
	}
	if len(many.Series) != 1 || many.Series[0].Metric != "cluster_flops" {
		t.Fatalf("metric=cluster_*&source=nodeA = %s, want nodeA's series only", body)
	}

	// Composed with a label selector.
	code, body = get(t, base+"/query?metric=cluster_*&scope=node&label.job=lbm")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &many); err != nil {
		t.Fatal(err)
	}
	if len(many.Series) != 1 || many.Series[0].Metric != "cluster_flops" {
		t.Fatalf("metric=cluster_*&label.job=lbm = %s, want the labelled series only", body)
	}

	// A wildcard also matches sanitized exposition names.
	store.Append(Key{Source: "nodeC", Metric: "Memory bandwidth [MBytes/s]", Scope: ScopeNode}, Point{Time: 1, Value: 4})
	code, body = get(t, base+"/query?metric=memory_*&scope=node")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &many); err != nil {
		t.Fatal(err)
	}
	if len(many.Series) != 1 || many.Series[0].Metric != "Memory bandwidth [MBytes/s]" {
		t.Fatalf("metric=memory_* = %s, want the display-named series", body)
	}
}
