package persist

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

func testStore() *monitor.Store {
	return monitor.NewStore(4, monitor.Tier{Resolution: 1, Capacity: 4})
}

func testKey() monitor.Key {
	labels, err := monitor.MakeLabels(map[string]string{"job": "lbm"})
	if err != nil {
		panic(err)
	}
	return monitor.Key{Source: "nodeA", Metric: "bw", Scope: monitor.ScopeNode, ID: 0, Labels: labels}
}

// walFrames counts the whole CRC-framed records currently in a WAL
// file without touching it — unlike replayWAL it never truncates, so
// it is safe to run against a log mid-write.
func walFrames(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for len(b) >= 8 {
		size := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if size > walMaxRecord || len(b) < 8+int(size) {
			break
		}
		if crc32.ChecksumIEEE(b[8:8+size]) != sum {
			break
		}
		b = b[8+size:]
		n++
	}
	return n
}

// waitWALFrames polls until the WAL holds n whole records — the
// fsync-on-idle writer commits each drained batch, so this bounds the
// test without hooks into the writer.
func waitWALFrames(t *testing.T, path string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if walFrames(t, path) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("WAL %s never reached %d records (now %d)", path, n, walFrames(t, path))
}

func TestSnapshotRestoreRoundTrips(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	k := testKey()
	alert := monitor.Key{Metric: "alert/hot", Scope: monitor.ScopeNode, ID: 0}
	st.SetCompaction(alert, monitor.CompactLast)

	m, err := Open(dir, st, Options{Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		st.Append(k, monitor.Point{Time: float64(i) * 0.5, Value: float64(i)})
		st.Append(alert, monitor.Point{Time: float64(i) * 0.5, Value: float64(i % 2)})
	}
	if err := m.Close(); err != nil { // clean shutdown = final snapshot
		t.Fatal(err)
	}

	st2 := testStore()
	m2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// A clean shutdown leaves everything in the snapshot: nothing to replay.
	if got := m2.replayed.Load(); got != 0 {
		t.Errorf("clean restart replayed %d records, want 0", got)
	}
	for _, key := range []monitor.Key{k, alert} {
		want, got := st.Window(key, 0, -1), st2.Window(key, 0, -1)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("restored Window(%v) = %v, want %v", key, got, want)
		}
		wb, gb := st.Buckets(key, 1, 0, -1), st2.Buckets(key, 1, 0, -1)
		if !reflect.DeepEqual(gb, wb) {
			t.Errorf("restored Buckets(%v) = %v, want %v", key, gb, wb)
		}
	}
}

func TestWALReplayAfterUncleanShutdown(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	k := testKey()
	m, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		st.Append(k, monitor.Point{Time: float64(i), Value: float64(i * 10)})
	}
	waitWALFrames(t, m.walPath(), 6)
	// No Close: the process "crashes" here, leaving only the WAL behind.

	st2 := testStore()
	m2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.replayed.Load(); got != 6 {
		t.Fatalf("replayed %d records, want 6", got)
	}
	want := st.Window(k, 0, -1)
	if got := st2.Window(k, 0, -1); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed Window = %v, want %v", got, want)
	}
	_ = m.wal // keep the crashed manager alive past the reopen
}

// TestWALReplayAfterPartialWrite is the torn-tail case: a crash mid
// fsync leaves a half-written frame.  Replay must keep every whole
// record, truncate the torn bytes (counted, not fatal) and keep the
// log usable for new appends.
func TestWALReplayAfterPartialWrite(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	k := testKey()
	m, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		st.Append(k, monitor.Point{Time: float64(i), Value: float64(i)})
	}
	waitWALFrames(t, m.walPath(), 4)
	whole, err := os.Stat(m.walPath())
	if err != nil {
		t.Fatal(err)
	}

	// The crash: a frame header claiming more payload than was written.
	torn := []byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x'}
	f, err := os.OpenFile(m.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := testStore()
	m2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.replayed.Load(); got != 4 {
		t.Fatalf("replayed %d records, want 4", got)
	}
	if got := m2.replayTruncBytes.Load(); got != uint64(len(torn)) {
		t.Fatalf("truncated %d bytes, want %d", got, len(torn))
	}
	if stat, err := os.Stat(m2.walPath()); err != nil || stat.Size() != whole.Size() {
		t.Fatalf("WAL not truncated to last whole record: %v bytes, want %d (err %v)", stat.Size(), whole.Size(), err)
	}
	if got := len(st2.Window(k, 0, -1)); got != 4 {
		t.Fatalf("restored %d points, want 4", got)
	}

	// The truncated log keeps working: append, crash again, replay again.
	st2.Append(k, monitor.Point{Time: 9, Value: 9})
	waitWALFrames(t, m2.walPath(), 5)
	st3 := testStore()
	m3, err := Open(dir, st3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if got := len(st3.Window(k, 0, -1)); got != 5 {
		t.Fatalf("after second crash restored %d points, want 5", got)
	}
}

// appendFrame writes one CRC-framed entry — the test's stand-in for a
// WAL left by an older generation overlapping the snapshot.
func appendFrame(t *testing.T, path string, e walEntry) {
	t.Helper()
	payload, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
}

// TestReplaySkipsRecordsAlreadyInSnapshot pins the dedupe guard: a
// wal.prev surviving a crash between the snapshot rename and the
// rotated log's removal holds records the snapshot already contains —
// they must not be applied twice.
func TestReplaySkipsRecordsAlreadyInSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	k := testKey()
	m, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		st.Append(k, monitor.Point{Time: float64(i), Value: float64(i)})
	}
	if err := m.Close(); err != nil { // snapshot now holds times 1..3
		t.Fatal(err)
	}

	entry := func(tm, v float64) walEntry {
		return walEntry{Source: "nodeA", Metric: "bw", Scope: "node", ID: 0,
			Labels: map[string]string{"job": "lbm"}, Time: tm, Value: v}
	}
	// The crash left a stale wal.prev duplicating snapshot contents, and
	// a wal.log with one duplicate and one genuinely new record.
	appendFrame(t, filepath.Join(dir, "wal.prev"), entry(2, 2))
	appendFrame(t, filepath.Join(dir, "wal.prev"), entry(3, 3))
	appendFrame(t, filepath.Join(dir, "wal.log"), entry(3, 3))
	appendFrame(t, filepath.Join(dir, "wal.log"), entry(4, 4))

	st2 := testStore()
	m2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.replaySkipped.Load(); got != 3 {
		t.Errorf("skipped %d duplicate records, want 3", got)
	}
	if got := m2.replayed.Load(); got != 1 {
		t.Errorf("replayed %d records, want 1", got)
	}
	want := []monitor.Point{{Time: 1, Value: 1}, {Time: 2, Value: 2}, {Time: 3, Value: 3}, {Time: 4, Value: 4}}
	if got := st2.Window(k, 0, -1); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored Window = %v, want %v", got, want)
	}
}

// TestPeriodicSnapshotTruncatesWAL drives the background loop with a
// short interval: after a snapshot lands, the WAL starts over and the
// rotated generation is gone.
func TestPeriodicSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	k := testKey()
	m, err := Open(dir, st, Options{SnapshotInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		st.Append(k, monitor.Point{Time: float64(i), Value: float64(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.snapshots.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if m.snapshots.Load() == 0 {
		t.Fatal("background snapshot never ran")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if stat, err := os.Stat(m.walPath()); err != nil || stat.Size() != 0 {
		t.Fatalf("WAL after snapshot+close = %v bytes, want 0 (err %v)", stat.Size(), err)
	}
	if _, err := os.Stat(m.walPrevPath()); !os.IsNotExist(err) {
		t.Fatalf("rotated WAL generation still present: %v", err)
	}
	st2 := testStore()
	m2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := len(st2.Window(k, 0, -1)); got != 8 {
		t.Fatalf("restored %d points, want 8", got)
	}
}
