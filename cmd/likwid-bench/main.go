// likwid-bench is the low-level benchmarking tool the paper names as
// future work: it runs streaming microkernels over a sweep of working-set
// sizes through the trace-driven cache simulator and prints a "bandwidth
// map" of the node's cache and memory bottlenecks.
//
// Usage:
//
//	likwid-bench [-a arch] [-k kernel] [-p] [-sizes s1,s2,...]
//
//	-a arch     node architecture (default core2)
//	-k kernel   load | store | store_nt | copy | update | daxpy | triad
//	            or "all" for the full map
//	-p          disable all hardware prefetchers (likwid-features -u ...)
//	-n N        thread-group size (N > 1 runs per-thread private caches
//	            over the shared last-level caches)
//	-sizes      explicit working-set sizes in KiB
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"likwid"
	"likwid/internal/workloads/kernels"
)

func main() {
	archName := flag.String("a", "core2", "node architecture")
	kernelName := flag.String("k", "all", "kernel name or 'all'")
	noPrefetch := flag.Bool("p", false, "disable all hardware prefetchers")
	nThreads := flag.Int("n", 1, "thread-group size")
	sizeList := flag.String("sizes", "", "working-set sizes in KiB, comma separated")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-bench:", err)
		os.Exit(1)
	}
	arch, err := likwid.LookupArch(*archName)
	if err != nil {
		fail(err)
	}

	var sizes []int
	if *sizeList == "" {
		sizes = kernels.DefaultSizes(arch)
	} else {
		for _, s := range strings.Split(*sizeList, ",") {
			kb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || kb < 1 {
				fail(fmt.Errorf("bad size %q", s))
			}
			sizes = append(sizes, kb*1024)
		}
	}

	// Wire the kernel's prefetch units to core 0's live IA32_MISC_ENABLE
	// and use likwid-features to toggle them, exactly as a user combines
	// the two tools on real hardware.
	node, err := likwid.Open(*archName)
	if err != nil {
		fail(err)
	}
	gates, err := node.PrefetchGates(0)
	if err != nil {
		fail(err)
	}
	if *noPrefetch {
		tool, err := node.Features(0)
		if err != nil {
			fail(err)
		}
		for _, name := range tool.ToggleNames() {
			if err := tool.Disable(name); err != nil {
				fail(err)
			}
		}
	}

	var list []kernels.Kernel
	if *kernelName == "all" {
		list = kernels.Catalogue
	} else {
		k, err := kernels.ByName(*kernelName)
		if err != nil {
			fail(err)
		}
		list = []kernels.Kernel{k}
	}

	fmt.Printf("likwid-bench bandwidth map: %s, %d thread(s) (prefetchers disabled: %v)\n",
		arch.ModelName, *nThreads, *noPrefetch)
	fmt.Printf("%-10s", "kernel")
	for _, ws := range sizes {
		fmt.Printf(" %9s", sizeLabel(ws))
	}
	fmt.Println("   [MB/s]")
	for _, k := range list {
		fmt.Printf("%-10s", k.Name)
		for _, ws := range sizes {
			var p kernels.Point
			if *nThreads > 1 {
				p, err = kernels.RunThreads(arch, k, ws, *nThreads, gates)
			} else {
				p, err = kernels.Run(arch, k, ws, gates)
			}
			if err != nil {
				fail(err)
			}
			fmt.Printf(" %9.0f", p.BandwidthMBs)
		}
		fmt.Println()
	}
}

func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%dMB", bytes>>20)
	default:
		return fmt.Sprintf("%dkB", bytes>>10)
	}
}
