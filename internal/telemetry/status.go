package telemetry

import (
	"encoding/json"
	"net/http"
	"runtime"
)

// GoStats is the Go runtime's view of the process for /status.
type GoStats struct {
	Version        string `json:"version"`
	Goroutines     int    `json:"goroutines"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	TotalAllocs    uint64 `json:"total_alloc_bytes"`
	NumGC          uint32 `json:"num_gc"`
	PauseTotalNs   uint64 `json:"gc_pause_total_ns"`
}

// Status is the GET /status payload: one registry snapshot plus the Go
// runtime's own accounting — "are you keeping up?" in one request.
type Status struct {
	Status        string        `json:"status"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Go            GoStats       `json:"go"`
	Metrics       []MetricValue `json:"metrics"`
}

// ReadStatus builds the status document from a snapshot of reg.
func ReadStatus(reg *Registry) Status {
	snap := reg.Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Status{
		Status:        "ok",
		UptimeSeconds: snap.UptimeSeconds,
		Go: GoStats{
			Version:        runtime.Version(),
			Goroutines:     runtime.NumGoroutine(),
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
			HeapAllocBytes: ms.HeapAlloc,
			HeapSysBytes:   ms.HeapSys,
			TotalAllocs:    ms.TotalAlloc,
			NumGC:          ms.NumGC,
			PauseTotalNs:   ms.PauseTotalNs,
		},
		Metrics: snap.Metrics,
	}
}

// StatusHandler serves the registry as GET /status JSON.  Mount it on
// any HTTP mux (likwid-agent mounts it on every http sink and on the
// receiver endpoint).
func StatusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ReadStatus(reg))
	})
}
