package machine

// Canonical hardware-event kinds produced by the execution engine.
// Workloads express their per-element behaviour in these keys; the
// synthesis table below translates them into the architecture-specific
// event names that perfctr programs into counters, so the same workload
// measures correctly on every modeled processor.
type Ev int

// Canonical events.  Core-scope events are delivered to the hardware thread
// they occur on; socket-scope events (L3, memory controller) are delivered
// once per socket to the shared uncore counters.
const (
	EvInstr Ev = iota
	EvCycles
	EvCyclesRef
	EvFlopsPackedDP // packed double-precision SSE instructions
	EvFlopsScalarDP
	EvFlopsPackedSP
	EvFlopsScalarSP
	EvLoads
	EvStores
	EvBranches
	EvBranchMisses
	EvTLBMisses
	EvL1LinesIn
	EvL1LinesOut
	EvL2LinesIn
	EvL2LinesOut
	// Socket scope from here on.
	EvL3LinesIn
	EvL3LinesOut
	EvL3Hits
	EvL3Misses
	EvMemReadLines
	EvMemWriteLines
	evCount
)

// SocketScope reports whether the event is counted per socket (uncore)
// rather than per hardware thread.
func (e Ev) SocketScope() bool { return e >= EvL3LinesIn }

// Counts is a per-element (or per-slice) canonical event vector.
type Counts map[Ev]float64

// Term contributes Weight × canonical-count to an architectural event.
type Term struct {
	Key    Ev
	Weight float64
}

// synthesis maps architectural event names to linear combinations of
// canonical events.  Event names are unique across vendor families, so one
// table serves every architecture; names an architecture does not define
// are simply never queried for it.
//
// Deliberate fidelity notes:
//   - Nehalem's FP_COMP_OPS_EXE_SSE_FP_PACKED counts packed ops of *both*
//     precisions, exactly the documented inaccuracy of the real FLOPS
//     groups on that core.
//   - K10's RETIRED_SSE_OPERATIONS_* count FLOPs, not instructions, hence
//     the 2×/4× weights.
var synthesis = map[string][]Term{
	// Unified across vendors.
	"INSTR_RETIRED_ANY":       {{EvInstr, 1}},
	"CPU_CLK_UNHALTED_CORE":   {{EvCycles, 1}},
	"CPU_CLK_UNHALTED_REF":    {{EvCyclesRef, 1}},
	"BR_INST_RETIRED_ANY":     {{EvBranches, 1}},
	"BR_INST_RETIRED_MISPRED": {{EvBranchMisses, 1}},
	"DTLB_MISSES_ANY":         {{EvTLBMisses, 1}},

	// Intel Core 2 / Atom.
	"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE": {{EvFlopsPackedDP, 1}},
	"SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE": {{EvFlopsScalarDP, 1}},
	"SIMD_COMP_INST_RETIRED_PACKED_SINGLE": {{EvFlopsPackedSP, 1}},
	"SIMD_COMP_INST_RETIRED_SCALAR_SINGLE": {{EvFlopsScalarSP, 1}},
	"L1D_REPL":                             {{EvL1LinesIn, 1}},
	"L1D_M_EVICT":                          {{EvL1LinesOut, 1}},
	"L1D_ALL_REF":                          {{EvLoads, 1}, {EvStores, 1}},
	"L2_LINES_IN_ANY":                      {{EvL2LinesIn, 1}},
	"L2_LINES_OUT_ANY":                     {{EvL2LinesOut, 1}},
	"L2_RQSTS_REFERENCES":                  {{EvL1LinesIn, 1}, {EvL1LinesOut, 1}},
	"L2_RQSTS_MISS":                        {{EvL2LinesIn, 1}},
	"BUS_TRANS_MEM_ALL":                    {{EvMemReadLines, 1}, {EvMemWriteLines, 1}},
	"INST_RETIRED_LOADS":                   {{EvLoads, 1}},
	"INST_RETIRED_STORES":                  {{EvStores, 1}},

	// Intel Pentium M.
	"EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DOUBLE": {{EvFlopsPackedDP, 1}},
	"EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DOUBLE": {{EvFlopsScalarDP, 1}},
	"EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SINGLE": {{EvFlopsPackedSP, 1}},
	"EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_SINGLE": {{EvFlopsScalarSP, 1}},
	"DCU_LINES_IN": {{EvL1LinesIn, 1}},

	// Intel Nehalem / Westmere core.
	"FP_COMP_OPS_EXE_SSE_FP_PACKED":        {{EvFlopsPackedDP, 1}, {EvFlopsPackedSP, 1}},
	"FP_COMP_OPS_EXE_SSE_FP_SCALAR":        {{EvFlopsScalarDP, 1}, {EvFlopsScalarSP, 1}},
	"FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION": {{EvFlopsPackedSP, 1}, {EvFlopsScalarSP, 1}},
	"FP_COMP_OPS_EXE_SSE_DOUBLE_PRECISION": {{EvFlopsPackedDP, 1}, {EvFlopsScalarDP, 1}},
	"MEM_INST_RETIRED_LOADS":               {{EvLoads, 1}},
	"MEM_INST_RETIRED_STORES":              {{EvStores, 1}},

	// Intel Nehalem / Westmere uncore.
	"UNC_L3_LINES_IN_ANY":      {{EvL3LinesIn, 1}},
	"UNC_L3_LINES_OUT_ANY":     {{EvL3LinesOut, 1}},
	"UNC_L3_HITS_ANY":          {{EvL3Hits, 1}},
	"UNC_L3_MISS_ANY":          {{EvL3Misses, 1}},
	"UNC_QMC_NORMAL_READS_ANY": {{EvMemReadLines, 1}},
	"UNC_QMC_WRITES_FULL_ANY":  {{EvMemWriteLines, 1}},

	// AMD K8 / K10 core.
	"RETIRED_SSE_OPERATIONS_PACKED_DOUBLE": {{EvFlopsPackedDP, 2}},
	"RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE": {{EvFlopsScalarDP, 1}},
	"RETIRED_SSE_OPERATIONS_PACKED_SINGLE": {{EvFlopsPackedSP, 4}},
	"RETIRED_SSE_OPERATIONS_SCALAR_SINGLE": {{EvFlopsScalarSP, 1}},
	"DATA_CACHE_ACCESSES":                  {{EvLoads, 1}, {EvStores, 1}},
	"DATA_CACHE_REFILLS_ALL":               {{EvL1LinesIn, 1}},
	"DATA_CACHE_EVICTED_ALL":               {{EvL1LinesOut, 1}},
	"L2_FILL_ALL":                          {{EvL2LinesIn, 1}},
	"L2_WRITEBACK_ALL":                     {{EvL2LinesOut, 1}},
	"L2_REQUESTS_ALL":                      {{EvL1LinesIn, 1}, {EvL1LinesOut, 1}},
	"L2_MISSES_ALL":                        {{EvL2LinesIn, 1}},
	"LS_DISPATCH_LOADS":                    {{EvLoads, 1}},
	"LS_DISPATCH_STORES":                   {{EvStores, 1}},

	// AMD K10 northbridge (socket scope).
	"UNC_L3_READ_REQUESTS_ALL": {{EvL3Hits, 1}, {EvL3Misses, 1}},
	"UNC_L3_MISSES_ALL":        {{EvL3Misses, 1}},
	"UNC_DRAM_ACCESSES_READS":  {{EvMemReadLines, 1}},
	"UNC_DRAM_ACCESSES_WRITES": {{EvMemWriteLines, 1}},
}

// evaluate computes an architectural event's delta from a canonical vector.
func evaluate(name string, deltas Counts) float64 {
	var sum float64
	for _, t := range synthesis[name] {
		if v, ok := deltas[t.Key]; ok {
			sum += t.Weight * v
		}
	}
	return sum
}
