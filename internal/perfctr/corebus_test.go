package perfctr

import (
	"math"
	"testing"

	"likwid/internal/machine"
)

// TestCore2MEMGroupCountsBusTraffic: on parts without uncore counters the
// MEM group measures memory traffic through per-core bus events
// (BUS_TRANS_MEM_ALL).  Regression test: traffic canonical events must
// reach core-domain counters, not only the (absent) uncore block.
func TestCore2MEMGroupCountsBusTraffic(t *testing.T) {
	m := newMachine(t, "core2")
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 1); err != nil {
		t.Fatal(err)
	}
	g, err := GroupFor(m.Arch, "MEM")
	if err != nil {
		t.Fatal(err)
	}
	var specs []EventSpec
	for _, ev := range g.Events {
		specs = append(specs, EventSpec{Event: ev})
	}
	col, err := NewCollector(m, []int{0, 1}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	const elems = 1e7
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{
			Cycles: 1, MemReadBytes: 16, MemWriteBytes: 8,
			Streams: 3, Vector: true,
		},
	}}, 0)
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	r := col.Read()
	bus := r.Counts["BUS_TRANS_MEM_ALL"]
	wantLines := 24 * elems / 64
	if math.Abs(bus[1]-wantLines) > wantLines*0.01 {
		t.Fatalf("BUS_TRANS_MEM_ALL on core 1 = %v, want ≈ %v", bus[1], wantLines)
	}
	if bus[0] != 0 {
		t.Errorf("idle core 0 counted %v bus transactions", bus[0])
	}
	// The derived bandwidth metric comes out as the true traffic rate.
	expr, _ := CompileExpr(g.Metrics[2].Formula)
	env := r.Env(1, m.Arch.ClockHz())
	mbs, err := expr.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	wantMBs := 1e-6 * wantLines * 64 / env["time"]
	if math.Abs(mbs-wantMBs) > wantMBs*0.02 {
		t.Errorf("MEM bandwidth metric = %v, want ≈ %v", mbs, wantMBs)
	}
}

// TestNehalemNoDoubleCounting: on parts *with* uncore counters the same
// traffic must appear exactly once in the uncore and never inflate core
// counters (no Nehalem core event matches traffic keys).
func TestNehalemNoDoubleCounting(t *testing.T) {
	m := newMachine(t, "nehalemEP")
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	specs, _ := ParseEventList("UNC_QMC_NORMAL_READS_ANY:UPMC0,L1D_REPL:PMC0")
	col, err := NewCollector(m, []int{0, 1}, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col.Start()
	const elems = 1e7
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{
			Cycles: 1, MemReadBytes: 16,
			Counts:  machine.Counts{machine.EvL1LinesIn: 0.25},
			Streams: 3, Vector: true,
		},
	}}, 0)
	col.Stop()
	r := col.Read()
	reads := r.Counts["UNC_QMC_NORMAL_READS_ANY"]
	wantLines := 16 * elems / 64
	if math.Abs(reads[0]-wantLines) > wantLines*0.01 {
		t.Errorf("uncore reads = %v, want %v (exactly once)", reads[0], wantLines)
	}
	l1 := r.Counts["L1D_REPL"]
	if math.Abs(l1[0]-elems*0.25) > elems*0.25*0.01 {
		t.Errorf("L1D_REPL = %v, want %v (untouched by traffic routing)", l1[0], elems*0.25)
	}
}
