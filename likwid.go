// Package likwid is the public facade of the LIKWID reproduction: a
// lightweight performance-oriented tool suite for (simulated) x86 multicore
// environments, after Treibig, Hager and Wellein, ICPP 2010.
//
// The package bundles the four tools of the paper around a simulated node:
//
//   - Topology — probe the hardware-thread and cache topology via emulated
//     CPUID (likwid-topology).
//   - Collector / Marker — program performance counters through simulated
//     MSR device files, with preconfigured event groups, derived metrics,
//     counter multiplexing and socket locks (likwid-perfCtr).
//   - Pinner — enforce thread-core affinity from the outside via the
//     thread-creation interposition hook (likwid-pin).
//   - Features — view and toggle hardware prefetchers through
//     IA32_MISC_ENABLE (likwid-features).
//
// Open a node for one of the modeled architectures, then use the tools:
//
//	node, err := likwid.Open("westmereEP")
//	...
//	topo, err := node.Topology()
//	fmt.Print(topo.Render(likwid.TopologyOptions{ExtendedCaches: true}))
//
// The heavy lifting lives in the internal packages; this package only
// re-exports the surface a downstream user needs.
package likwid

import (
	"fmt"

	"likwid/internal/cache"
	"likwid/internal/features"
	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/marker"
	"likwid/internal/msr"
	"likwid/internal/perfctr"
	"likwid/internal/pin"
	"likwid/internal/sched"
	"likwid/internal/topology"
)

// Re-exported types of the public API.
type (
	// Arch is an architecture definition from the registry.
	Arch = hwdef.Arch
	// Machine is the simulated node all tools operate on.
	Machine = machine.Machine
	// TopologyInfo is a decoded node topology (likwid-topology).
	TopologyInfo = topology.Info
	// TopologyOptions steer the topology report rendering.
	TopologyOptions = topology.RenderOptions
	// Collector measures performance counters (likwid-perfCtr).
	Collector = perfctr.Collector
	// CollectorOptions configure multiplexing.
	CollectorOptions = perfctr.Options
	// EventSpec is one EVENT[:COUNTER] selection.
	EventSpec = perfctr.EventSpec
	// Group is a preconfigured event set with derived metrics.
	Group = perfctr.GroupDef
	// Results are measured event counts per core.
	Results = perfctr.Results
	// Marker is the region-based instrumentation API.
	Marker = marker.Marker
	// Pinner enforces affinity on thread creation (likwid-pin).
	Pinner = pin.Pinner
	// Features controls prefetchers and reports CPU features.
	Features = features.Tool
	// Task is a schedulable thread of the simulated OS.
	Task = sched.Task
	// Team is one parallel region's thread set.
	Team = sched.Team
	// RuntimeModel identifies the threading runtime (-t of likwid-pin).
	RuntimeModel = sched.RuntimeModel
	// ThreadWork describes one thread's share of a workload phase.
	ThreadWork = machine.ThreadWork
	// PerElem is the per-element cost vector of a workload.
	PerElem = machine.PerElem
)

// Threading runtimes for SpawnTeam / likwid-pin -t.
const (
	RuntimePthreads = sched.RuntimePthreads
	RuntimeIntelOMP = sched.RuntimeIntelOMP
	RuntimeGccOMP   = sched.RuntimeGccOMP
)

// Architectures lists the modeled processor names.
func Architectures() []string { return hwdef.Names() }

// LookupArch resolves an architecture name.
func LookupArch(name string) (*Arch, error) { return hwdef.Lookup(name) }

// Node is an open simulated machine with the tool suite attached.
type Node struct {
	M *Machine
}

// Options configure Open.
type Options struct {
	// Seed drives the scheduler's randomness; equal seeds reproduce runs.
	Seed int64
	// Compact selects the compact (gcc-like) placement policy for
	// unpinned threads instead of the default spread policy.
	Compact bool
}

// Open builds a node for a registered architecture with defaults.
func Open(arch string) (*Node, error) { return OpenOptions(arch, Options{}) }

// OpenOptions builds a node with explicit options.
func OpenOptions(arch string, opts Options) (*Node, error) {
	policy := sched.PolicySpread
	if opts.Compact {
		policy = sched.PolicyCompact
	}
	m, err := machine.NewNamed(arch, machine.Options{Policy: policy, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	return &Node{M: m}, nil
}

// Arch returns the node's architecture definition.
func (n *Node) Arch() *Arch { return n.M.Arch }

// Topology probes the node the way likwid-topology does: from the CPUID
// register images only.
func (n *Node) Topology() (*TopologyInfo, error) {
	return topology.Probe(n.M.CPUs, n.M.Arch.ClockMHz)
}

// Groups lists the preconfigured event groups available on this node.
func (n *Node) Groups() []string { return perfctr.GroupNames(n.M.Arch) }

// Group resolves a named event group.
func (n *Node) Group(name string) (Group, error) { return perfctr.GroupFor(n.M.Arch, name) }

// ParseGroupFile parses a custom performance group in the LIKWID text
// format (SHORT / EVENTSET / METRICS / LONG sections, counter-name
// formulas).
func (n *Node) ParseGroupFile(name, src string) (Group, error) {
	return perfctr.ParseGroupFile(n.M.Arch, name, src)
}

// NewCollector schedules events (parsed from an EVENT[:COUNTER] list or a
// group name) on the given cores.
func (n *Node) NewCollector(cpus []int, eventsOrGroup string, opts CollectorOptions) (*Collector, *Group, error) {
	if g, err := perfctr.GroupFor(n.M.Arch, eventsOrGroup); err == nil {
		var specs []EventSpec
		for _, ev := range g.Events {
			specs = append(specs, EventSpec{Event: ev})
		}
		col, err := perfctr.NewCollector(n.M, cpus, specs, opts)
		if err != nil {
			return nil, nil, err
		}
		return col, &g, nil
	}
	specs, err := perfctr.ParseEventList(eventsOrGroup)
	if err != nil {
		return nil, nil, err
	}
	col, err := perfctr.NewCollector(n.M, cpus, specs, opts)
	if err != nil {
		return nil, nil, err
	}
	return col, nil, nil
}

// NewMarker opens a marker-API session over a running collector.
func (n *Node) NewMarker(col *Collector, nThreads int) (*Marker, error) {
	return marker.New(col, n.M.Arch.ClockHz(), nThreads)
}

// Features opens the likwid-features interface of one core.
func (n *Node) Features(cpu int) (*Features, error) {
	return features.New(n.M.MSRs, n.M.Arch, cpu)
}

// NewPinner builds a likwid-pin session for a core list and skip mask.
// The list accepts physical processor IDs ("0-3") or thread-domain
// expressions with logical core IDs ("S0:0-3", "S0:0-1@S1:0-1").
func (n *Node) NewPinner(cpuList string, skipMask uint64) (*Pinner, error) {
	cores, err := pin.ParseCPUExpression(n.M.Arch, cpuList)
	if err != nil {
		return nil, err
	}
	return pin.New(n.M.OS, cores, skipMask)
}

// NUMA returns the OS view of the node's locality domains and attaches it
// to the given topology for rendering.
func (n *Node) NUMA(topo *TopologyInfo) []topology.NUMADomain {
	domains := topology.NUMAFromArch(n.M.Arch, topo, 0)
	topo.AttachNUMA(domains)
	return domains
}

// PrefetchGates wires a cache hierarchy's prefetch units to the live
// IA32_MISC_ENABLE register of one core, so toggles made through the
// Features tool (likwid-features -e/-u) take effect on subsequent
// likwid-bench measurements — the coupling of §II-D.
func (n *Node) PrefetchGates(cpu int) (cache.PrefetchGates, error) {
	dev, err := n.M.MSRs.Open(cpu)
	if err != nil {
		return nil, err
	}
	gates := cache.PrefetchGates{}
	for _, p := range n.M.Arch.Prefetchers {
		bit := p.MiscEnableBit
		gates[p.Name] = func() bool {
			v, err := dev.Read(msr.IA32MiscEnable)
			if err != nil {
				return true
			}
			// Set bit disables the unit.
			return v&(1<<bit) == 0
		}
	}
	return gates, nil
}

// SkipMaskFor returns the default likwid-pin skip mask of a runtime.
func SkipMaskFor(model RuntimeModel) uint64 { return pin.SkipMaskFor(model) }

// Spawn creates a process-level task on the node.
func (n *Node) Spawn(name string) *Task { return n.M.OS.Spawn(name, nil) }

// SpawnTeam creates a parallel region under the given runtime model,
// invoking hook (e.g. a Pinner's Hook) at each thread creation.
func (n *Node) SpawnTeam(model RuntimeModel, nThreads int, master *Task, hook sched.SpawnHook) (*Team, error) {
	return sched.SpawnTeam(n.M.OS, model, nThreads, master, hook)
}

// Run executes workload phases to completion and returns elapsed seconds.
func (n *Node) Run(works []*ThreadWork) float64 { return n.M.RunPhase(works, 0) }

// Report renders measurement results as the perfCtr tables; group may be
// nil for the event table only.
func Report(node *Node, r Results, group *Group) string {
	return perfctr.Header(node.M.Arch.ModelName, node.M.Arch.ClockMHz) +
		perfctr.Report(r, group, node.M.Arch.ClockHz())
}

// MeasureGroup wraps the wrapper-mode flow: program the group on the cores,
// run the workload function, and return results plus the rendered report.
func (n *Node) MeasureGroup(cpus []int, group string, run func() error) (Results, string, error) {
	col, g, err := n.NewCollector(cpus, group, CollectorOptions{})
	if err != nil {
		return Results{}, "", err
	}
	if err := col.Start(); err != nil {
		return Results{}, "", err
	}
	if err := run(); err != nil {
		col.Stop()
		return Results{}, "", err
	}
	if err := col.Stop(); err != nil {
		return Results{}, "", err
	}
	r := col.Read()
	return r, Report(n, r, g), nil
}

// Version identifies the reproduction release.
const Version = "1.0.0 (reproduction of arXiv:1004.4431v3)"

// String summarizes the node.
func (n *Node) String() string {
	return fmt.Sprintf("%s: %d sockets x %d cores x %d threads @ %.2f GHz",
		n.M.Arch.ModelName, n.M.Arch.Sockets, n.M.Arch.CoresPerSocket,
		n.M.Arch.ThreadsPerCore, n.M.Arch.ClockMHz/1000)
}
