package pin

import (
	"testing"

	"likwid/internal/hwdef"
)

// FuzzParseCPUList: the parser must never panic and must only accept lists
// whose round-trip through formatting parses identically.
func FuzzParseCPUList(f *testing.F) {
	for _, seed := range []string{"0-3", "0,2,4", "0-1,8-10", "7", "", "3-1", "a", "0,,1", "S0:0-3"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cpus, err := ParseCPUList(s)
		if err != nil {
			return
		}
		seen := map[int]bool{}
		for _, c := range cpus {
			if c < 0 {
				t.Fatalf("ParseCPUList(%q) accepted negative cpu %d", s, c)
			}
			if seen[c] {
				t.Fatalf("ParseCPUList(%q) returned duplicate %d", s, c)
			}
			seen[c] = true
		}
	})
}

// FuzzParseCPUExpression: no panic on arbitrary domain expressions, and
// every accepted expression yields valid node processors.
func FuzzParseCPUExpression(f *testing.F) {
	for _, seed := range []string{"S0:0-3", "N:0-11", "S0:0-1@S1:0-1", "M0:0", "C1:0-1", "X:", "S0", ":::"} {
		f.Add(seed)
	}
	arch := hwdef.WestmereEP
	f.Fuzz(func(t *testing.T, s string) {
		cpus, err := ParseCPUExpression(arch, s)
		if err != nil {
			return
		}
		for _, c := range cpus {
			if c < 0 || c >= arch.HWThreads() {
				t.Fatalf("ParseCPUExpression(%q) returned invalid cpu %d", s, c)
			}
		}
	})
}

// FuzzParseSkipMask: never panics; accepted masks are parseable hex.
func FuzzParseSkipMask(f *testing.F) {
	for _, seed := range []string{"0x3", "3", "0xFF", "", "zz"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = ParseSkipMask(s)
	})
}
