package cluster

import (
	"math"
	"sort"
	"time"

	"likwid/internal/monitor"
)

// Downsampler is a sink decorator for federation hops: it buckets each
// series' samples into fixed windows and forwards one averaged sample
// per window — CompactMean semantics applied on the wire, so a rack
// receiver can forward its node feeds upward at, say, 1/10th the point
// rate and the cluster root stores the coarse tier without ever seeing
// the fine one.  Like every sink it is driven by a single dispatcher
// goroutine.
type Downsampler struct {
	every float64 // window width in (simulated) seconds
	next  monitor.Sink
	acc   map[monitor.Key]*bucketAcc
}

// bucketAcc accumulates one series' open window.
type bucketAcc struct {
	start  float64
	count  int
	sum    float64
	latest float64 // newest sample time seen, stamps the flush batch
}

// NewDownsampler wraps next, averaging each series into every-sized
// windows before forwarding.  every <= 0 returns next unwrapped.
func NewDownsampler(every time.Duration, next monitor.Sink) monitor.Sink {
	if every <= 0 {
		return next
	}
	return &Downsampler{every: every.Seconds(), next: next, acc: make(map[monitor.Key]*bucketAcc)}
}

// Name implements monitor.Sink.
func (d *Downsampler) Name() string { return "downsample(" + d.next.Name() + ")" }

// windowStart aligns a sample time to its window's left edge.
func (d *Downsampler) windowStart(t float64) float64 {
	return math.Floor(t/d.every) * d.every
}

// Write folds the batch into the open windows and forwards every window
// the batch's samples have moved past.
func (d *Downsampler) Write(b monitor.Batch) error {
	var out []monitor.Sample
	for _, sm := range b.Samples {
		k := sm.Key()
		a, ok := d.acc[k]
		if !ok {
			a = &bucketAcc{start: d.windowStart(sm.Time)}
			d.acc[k] = a
		}
		// A sample at or past the window's end closes it: emit the
		// average and open the window the sample belongs to.  Late
		// samples (older than the open window) fold into it rather than
		// resurrecting a closed one — a forwarding hop is a lossy tier
		// by design, not a store.
		if a.count > 0 && sm.Time >= a.start+d.every {
			out = append(out, a.emit(k))
			a.start = d.windowStart(sm.Time)
		}
		a.count++
		a.sum += sm.Value
		if sm.Time > a.latest {
			a.latest = sm.Time
		}
	}
	if len(out) == 0 {
		return nil
	}
	return d.next.Write(monitor.Batch{Collector: b.Collector, Time: b.Time, Samples: out})
}

// emit renders the open window as one averaged sample and resets the
// accumulator for the next window.
func (a *bucketAcc) emit(k monitor.Key) monitor.Sample {
	sm := monitor.Sample{
		Source: k.Source,
		Metric: k.Metric,
		Scope:  k.Scope,
		ID:     k.ID,
		Labels: k.Labels,
		Time:   a.start,
		Value:  a.sum / float64(a.count),
	}
	a.count, a.sum = 0, 0
	return sm
}

// Close flushes every open window downstream, then closes the wrapped
// sink — the graceful-drain path: a receiver draining on SIGTERM
// forwards its partial windows instead of dropping them.
func (d *Downsampler) Close() error {
	keys := make([]monitor.Key, 0, len(d.acc))
	for k, a := range d.acc {
		if a.count > 0 {
			keys = append(keys, k)
		}
	}
	// Deterministic flush order: map iteration must not decide the wire
	// order two runs of the same shutdown produce.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Labels.String() < b.Labels.String()
	})
	var samples []monitor.Sample
	var last float64
	for _, k := range keys {
		a := d.acc[k]
		if a.latest > last {
			last = a.latest
		}
		samples = append(samples, a.emit(k))
	}
	var firstErr error
	if len(samples) > 0 {
		if err := d.next.Write(monitor.Batch{Collector: "downsample/flush", Time: last, Samples: samples}); err != nil {
			firstErr = err
		}
	}
	if err := d.next.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
