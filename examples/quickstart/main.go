// Quickstart: the §II-A workflow of the paper as a library user sees it.
//
//  1. Open a simulated node and probe its topology (likwid-topology).
//  2. Measure the FLOPS_DP group on four cores while a pinned compute
//     kernel runs, using the marker API with two named regions ("Init" and
//     "Benchmark") — the paper's marker-mode listing.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"likwid"
	"likwid/internal/machine"
)

func main() {
	node, err := likwid.Open("core2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node:", node)

	// --- likwid-topology, as a library ---------------------------------
	topo, err := node.Topology()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded: %d sockets, %d cores/socket, %d threads/core\n",
		topo.Sockets, topo.CoresPerSocket, topo.ThreadsPerCore)
	for _, c := range topo.Caches {
		fmt.Printf("  L%d: %d kB shared by %d threads\n", c.Level, c.SizeKB, c.SharedBy)
	}

	// --- likwid-perfCtr marker mode ------------------------------------
	cpus := []int{0, 1, 2, 3}
	col, group, err := node.NewCollector(cpus, "FLOPS_DP", likwid.CollectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Start(); err != nil {
		log.Fatal(err)
	}
	mk, err := node.NewMarker(col, len(cpus))
	if err != nil {
		log.Fatal(err)
	}
	initRegion := mk.RegisterRegion("Init")
	benchRegion := mk.RegisterRegion("Benchmark")

	// Spawn one pinned worker per measured core, like likwid-pin would.
	var tasks []*likwid.Task
	for _, cpu := range cpus {
		t := node.Spawn(fmt.Sprintf("worker-%d", cpu))
		if err := node.M.OS.Pin(t, cpu); err != nil {
			log.Fatal(err)
		}
		tasks = append(tasks, t)
	}
	burst := func(elems float64) {
		var works []*likwid.ThreadWork
		for _, t := range tasks {
			works = append(works, &likwid.ThreadWork{
				Task: t, Elems: elems,
				PerElem: likwid.PerElem{
					Cycles: 1.5,
					Counts: machine.Counts{
						machine.EvInstr:         3,
						machine.EvFlopsPackedDP: 1,
					},
					Vector: true,
				},
			})
		}
		node.Run(works)
	}

	// Region "Init": a short setup burst.
	for tid, cpu := range cpus {
		must(mk.StartRegion(tid, cpu))
	}
	burst(1e5)
	for tid, cpu := range cpus {
		must(mk.StopRegion(tid, cpu, initRegion))
	}
	// Region "Benchmark": the measured kernel, accumulated over two calls.
	for round := 0; round < 2; round++ {
		for tid, cpu := range cpus {
			must(mk.StartRegion(tid, cpu))
		}
		burst(4.096e6)
		for tid, cpu := range cpus {
			must(mk.StopRegion(tid, cpu, benchRegion))
		}
	}
	must(mk.Close())
	must(col.Stop())

	fmt.Print(mk.Report(group))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
