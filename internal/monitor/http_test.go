package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func newTestHTTPSink(t *testing.T) (*HTTPSink, *Store) {
	t.Helper()
	store := NewStore(16)
	h, err := NewHTTPSink("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h, store
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPSinkMetricsAndQuery(t *testing.T) {
	h, store := newTestHTTPSink(t)
	batch := goldenBatches()[0]
	store.AppendBatch(batch)
	if err := h.Write(batch); err != nil {
		t.Fatal(err)
	}
	base := "http://" + h.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `likwid_memory_bandwidth_mbytes_s{scope="socket",id="0"} 13714.3`) {
		t.Errorf("/metrics missing socket bandwidth line:\n%s", body)
	}
	if !strings.Contains(body, `likwid_dp_mflops_s{scope="thread",id="0"} 571.25`) {
		t.Errorf("/metrics missing thread flops line:\n%s", body)
	}

	code, body = get(t, base+"/query?metric=memory_bandwidth_mbytes_s&scope=socket&id=0")
	if code != http.StatusOK {
		t.Fatalf("/query status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad /query JSON %q: %v", body, err)
	}
	if len(resp.Points) != 1 || resp.Points[0].Value != 13714.285 {
		t.Errorf("/query points = %+v, want one 13714.285", resp.Points)
	}

	// The sanitized exposition name resolves to the stored metric too.
	code, body = get(t, base+"/query?metric=likwid_memory_bandwidth_mbytes_s&scope=socket&id=0")
	if code != http.StatusOK {
		t.Fatalf("/query by exposition name status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil || len(resp.Points) != 1 {
		t.Errorf("/query by exposition name = %q (err %v)", body, err)
	}

	if code, _ = get(t, base+"/query"); code != http.StatusBadRequest {
		t.Errorf("/query without metric: status %d, want 400", code)
	}
	if code, _ = get(t, base+"/query?metric=x&scope=galaxy"); code != http.StatusBadRequest {
		t.Errorf("/query with bad scope: status %d, want 400", code)
	}
	if code, _ = get(t, base+"/query?metric=x&from=1.5x"); code != http.StatusBadRequest {
		t.Errorf("/query with bad from: status %d, want 400", code)
	}
	if code, _ = get(t, base+"/query?metric=x&to=nope"); code != http.StatusBadRequest {
		t.Errorf("/query with bad to: status %d, want 400", code)
	}
	if code, body = get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
}

func TestHTTPSinkWindowedQuery(t *testing.T) {
	h, store := newTestHTTPSink(t)
	k := Key{Metric: "bw", Scope: ScopeNode, ID: 0}
	for i := 0; i < 6; i++ {
		store.Append(k, Point{Time: float64(i), Value: float64(i * 10)})
	}
	code, body := get(t, "http://"+h.Addr()+"/query?metric=bw&scope=node&from=2&to=4")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 3 || resp.Points[0].Time != 2 || resp.Points[2].Time != 4 {
		t.Errorf("windowed points = %+v, want times 2..4", resp.Points)
	}
}
